package partfeas

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestInstanceValidateNamesOffendingMachine(t *testing.T) {
	ts, _ := demoInstance()
	for _, tc := range []struct {
		name  string
		speed float64
	}{
		{"nan", math.NaN()},
		{"inf", math.Inf(1)},
		{"zero", 0},
		{"negative", -2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPlatform(1, tc.speed, 4) // NewPlatform itself cannot reject
			in := Instance{Tasks: ts, Platform: p, Scheduler: EDF}
			err := in.Validate()
			if err == nil {
				t.Fatalf("speed %v accepted", tc.speed)
			}
			if !strings.Contains(err.Error(), "machine 1") {
				t.Errorf("error %q does not name machine 1", err)
			}
		})
	}
}

// The bugfix: bad speeds must surface eagerly from every public entry
// point, not from a distant internal Validate.
func TestEagerValidationAtEntryPoints(t *testing.T) {
	ts, _ := demoInstance()
	bad := NewPlatform(1, math.NaN())
	in := Instance{Tasks: ts, Platform: bad, Scheduler: EDF}
	check := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: NaN speed accepted", name)
		}
		if !strings.Contains(err.Error(), "machine 1") {
			t.Errorf("%s: error %q does not name machine 1", name, err)
		}
	}
	_, err := Test(ts, bad, EDF, 1)
	check("Test", err)
	_, err = NewTester(ts, bad, EDF)
	check("NewTester", err)
	_, err = TestCtx(context.Background(), in, 1)
	check("TestCtx", err)
	_, _, err = MinAlphaCtx(context.Background(), in, 0.5, 4, 1e-6)
	check("MinAlphaCtx", err)
	_, _, err = SimulateCtx(context.Background(), in, SimulateOptions{Assignment: []int{0, 0, 0, 0, 0}, Alpha: 1})
	check("SimulateCtx", err)
}

func TestInstanceValidateScheduler(t *testing.T) {
	ts, p := demoInstance()
	if err := (Instance{Tasks: ts, Platform: p, Scheduler: Scheduler(7)}).Validate(); err == nil {
		t.Error("scheduler 7 accepted")
	}
}

// The context-first entry points must decide identically to the
// pre-redesign API.
func TestCtxEntryPointsMatchLegacy(t *testing.T) {
	ts, p := demoInstance()
	ctx := context.Background()
	for _, sch := range []Scheduler{EDF, RMS} {
		in := Instance{Tasks: ts, Platform: p, Scheduler: sch}
		for _, alpha := range []float64{0.5, 1, 2, 2.98} {
			legacy, err := Test(ts, p, sch, alpha)
			if err != nil {
				t.Fatal(err)
			}
			got, err := TestCtx(ctx, in, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(legacy, got) {
				t.Errorf("%v α=%v: TestCtx %+v != Test %+v", sch, alpha, got, legacy)
			}
		}
		la, lok, err := MinAlpha(ts, p, sch, 0.1, 4, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		ga, gok, err := MinAlphaCtx(ctx, in, 0.1, 4, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if la != ga || lok != gok {
			t.Errorf("%v: MinAlphaCtx (%v, %v) != MinAlpha (%v, %v)", sch, ga, gok, la, lok)
		}
	}
}

func TestSimulateCtxMatchesDeprecatedVariants(t *testing.T) {
	ts, p := demoInstance()
	rep, err := Test(ts, p, EDF, 1)
	if err != nil || !rep.Accepted {
		t.Fatal("demo must be accepted")
	}
	asg := append([]int(nil), rep.Partition.Assignment...)
	ctx := context.Background()
	in := Instance{Tasks: ts, Platform: p, Scheduler: EDF}

	legacy, err := Simulate(ts, p, asg, PolicyEDF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, traces, err := SimulateCtx(ctx, in, SimulateOptions{Assignment: asg, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if traces != nil {
		t.Error("untraced run returned traces")
	}
	if !reflect.DeepEqual(legacy, got) {
		t.Errorf("SimulateCtx diverges from Simulate:\n%+v\n%+v", got, legacy)
	}

	legacyRes, legacyTr, err := SimulateTraced(ts, p, asg, PolicyEDF, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, gotTr, err := SimulateCtx(ctx, in, SimulateOptions{Assignment: asg, Alpha: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyRes, gotRes) || !reflect.DeepEqual(legacyTr, gotTr) {
		t.Error("traced SimulateCtx diverges from SimulateTraced")
	}

	// RMS maps to PolicyRM.
	repRMS, err := Test(ts, p, RMS, 2)
	if err != nil || !repRMS.Accepted {
		t.Fatal("RMS at α=2 must accept the demo")
	}
	asgRMS := append([]int(nil), repRMS.Partition.Assignment...)
	legacyRMS, err := Simulate(ts, p, asgRMS, PolicyRM, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotRMS, _, err := SimulateCtx(ctx, Instance{Tasks: ts, Platform: p, Scheduler: RMS},
		SimulateOptions{Assignment: asgRMS, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyRMS, gotRMS) {
		t.Error("RMS SimulateCtx diverges from Simulate(PolicyRM)")
	}
}

func TestCtxEntryPointsObserveCancellation(t *testing.T) {
	ts, p := demoInstance()
	in := Instance{Tasks: ts, Platform: p, Scheduler: EDF}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TestCtx(ctx, in, 1); !IsCanceled(err) {
		t.Errorf("TestCtx on cancelled ctx: %v", err)
	}
	if _, _, err := MinAlphaCtx(ctx, in, 0.1, 4, 1e-9); !IsCanceled(err) {
		t.Errorf("MinAlphaCtx on cancelled ctx: %v", err)
	}
	asg := []int{0, 0, 0, 0, 0}
	if _, _, err := SimulateCtx(ctx, in, SimulateOptions{Assignment: asg, Alpha: 4}); !IsCanceled(err) {
		t.Errorf("SimulateCtx on cancelled ctx: %v", err)
	}
}

func TestInstancePolicyMapping(t *testing.T) {
	if (Instance{Scheduler: EDF}).Policy() != PolicyEDF {
		t.Error("EDF should replay under PolicyEDF")
	}
	if (Instance{Scheduler: RMS}).Policy() != PolicyRM {
		t.Error("RMS should replay under PolicyRM")
	}
}
