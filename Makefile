GO ?= go

.PHONY: ci vet build test race fuzz bench benchjson

## ci: the full verification gate — vet, build, unit tests, race detector,
## and a short fuzz smoke of the partition invariants.
ci: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: 10-second smoke of the partition-engine invariant fuzzer.
fuzz:
	$(GO) test ./internal/partition -run Fuzz -fuzz=FuzzPartitionInvariants -fuzztime=10s

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## benchjson: record the benchmark suite to results/BENCH_1.json for
## cross-PR perf tracking.
benchjson:
	$(GO) run ./cmd/benchjson -benchtime 0.3s -o results/BENCH_1.json
