GO ?= go

.PHONY: ci vet build test race faultsmoke servesmoke loadsmoke crashsmoke arenasmoke clustersmoke fuzz bench benchsmoke benchjson bench5 bench6 bench7 bench8 bench9 bench10

## ci: the full verification gate — vet, build, unit tests, race detector,
## the fault-injection matrix, the admission-server smoke, an open-loop
## load-generator smoke, the durability crash-recovery smoke, the policy
## arena smoke, a short fuzz smoke of the partition invariants, and a
## one-iteration benchmark smoke (catches benchmarks whose setup asserts
## fail).
ci: vet build test race faultsmoke servesmoke loadsmoke crashsmoke arenasmoke clustersmoke fuzz benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 300s ./...

race:
	$(GO) test -race -timeout 600s ./...

## faultsmoke: the robustness matrix under the race detector —
## deterministic fault injection (cancel-mid-search, panic-in-pool,
## interrupt-then-resume), degradation paths and checkpoint round-trips.
faultsmoke:
	$(GO) test -race -timeout 120s -count=1 \
		-run 'Cancel|Panic|Degrade|Checkpoint|FaultInjection|Budget|Leak|RunTrials|ForEachTrial|RunAllCtx|RunCtx|AnalyzeCtx' \
		./internal/exact ./internal/sim ./internal/experiments ./internal/faultinject ./internal/pipeline .

## servesmoke: the admission-control server end to end under the race
## detector — ephemeral port, concurrent clients byte-compared against
## direct library calls, mid-flight client hang-up, cache-hit metrics,
## graceful drain and goroutine-leak checks, plus the session/handler
## suites and the command's own SIGINT drain test.
servesmoke:
	$(GO) test -race -timeout 120s -count=1 ./internal/service ./cmd/serve

## loadsmoke: a short open-loop Poisson run against an in-process server.
## Every request in the mix answers 200 on a healthy server, so loadgen's
## default -max-errors 0 makes any error a nonzero exit.
loadsmoke:
	$(GO) run ./cmd/loadgen -rate 400 -duration 2s -clients 8

## crashsmoke: the durability matrix under the race detector, -short
## subset — WAL torn-write corpus, injected crash points in append /
## fsync / rotate / snapshot / replay, byte-identical recovery, degraded
## read-only mode and the clean-drain zero-replay check.
crashsmoke:
	$(GO) test -race -short -timeout 120s -count=1 \
		-run 'WAL|Torn|Snapshot|Injected|Durab|Crash|Degraded|Drain|Replay|Recovery' \
		./internal/oplog ./internal/service

## arenasmoke: race every canonical placement policy on the churn preset
## (tenant + machine churn) under the race detector — the worker-count
## determinism and lane-differential-replay tests run here — then drive
## the CLI once end to end.
arenasmoke:
	$(GO) test -race -timeout 120s -count=1 ./internal/arena ./cmd/arena
	$(GO) run ./cmd/arena -preset churn -workers 8

## clustersmoke: the sharded-cluster suite under the race detector — the
## consistent-hash ring properties (golden mapping, uniformity,
## bounded relocation), the epoch-fenced migration determinism and
## crash matrix, and an in-process 3-replica cluster behind a
## coordinator with one forced migration and one replica crash + WAL
## restart.
clustersmoke:
	$(GO) test -race -timeout 180s -count=1 \
		-run 'Ring|Cluster|Migrat' \
		./internal/cluster ./internal/service

## fuzz: short smokes of the partition-engine invariant fuzzer and the
## rational arithmetic differential fuzzer (covers the Add/Cmp fast paths).
fuzz:
	$(GO) test ./internal/partition -run Fuzz -fuzz=FuzzPartitionInvariants -fuzztime=10s
	$(GO) test ./internal/rational -run Fuzz -fuzz=FuzzArithmetic -fuzztime=5s

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## benchsmoke: run every benchmark exactly once — cheap assurance that
## benchmark setup assertions (acceptance, miss-free instances) hold.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

## benchjson: record the benchmark suite to results/BENCH_1.json for
## cross-PR perf tracking.
benchjson:
	$(GO) run ./cmd/benchjson -benchtime 0.3s -o results/BENCH_1.json

## bench5: record the online-engine benchmarks (incremental admit vs full
## re-solve, repartition planning) to results/BENCH_5.json.
bench5:
	$(GO) run ./cmd/benchjson -pkg ./internal/online -benchtime 0.3s \
		-note 'online engine: incremental admit vs full re-solve (m=64, n=1000)' \
		-o results/BENCH_5.json

## bench6: record the checkpointed-replay + batch-admission benchmarks to
## results/BENCH_6.json, gated against the BENCH_5 baseline — the gate
## only fails on regressions (tail admit must not get slower); the ~10x
## interior improvement and the new batch benchmark pass through.
bench6:
	$(GO) run ./cmd/benchjson -pkg ./internal/online -benchtime 0.3s \
		-note 'checkpointed suffix replay + batch admission (m=64, n=1000)' \
		-baseline results/BENCH_5.json -max-regress 0.25 \
		-o results/BENCH_6.json

## bench7: record the tiered constrained-deadline admission benchmarks to
## results/BENCH_7.json, gated against the BENCH_6 baseline — the gate
## fails if any implicit-path benchmark regresses; the new
## BenchmarkOnlineAdmitDBF tiered/exact variants (with their
## cheap-tier-rate export) pass through as additions.
bench7:
	$(GO) run ./cmd/benchjson -pkg ./internal/online -benchtime 0.3s \
		-note 'tiered DBF admission: tiered (k=8) vs exact-only (k=0), constrained deadlines (m=64, n=1000)' \
		-baseline results/BENCH_6.json -max-regress 0.25 \
		-o results/BENCH_7.json

## bench8: record the durability benchmarks (WAL append throughput,
## snapshotless cold-open recovery) alongside the online-engine suite to
## results/BENCH_8.json, gated against the BENCH_7 baseline — the gate
## fails if any engine benchmark regresses (durability is opt-in and must
## cost nothing when off); the new BenchmarkWALAppend / BenchmarkRecovery
## entries pass through as additions.
bench8:
	$(GO) run ./cmd/benchjson -pkg "./internal/online ./internal/oplog ./internal/service" -benchtime 0.3s \
		-note 'durable sessions: WAL append modes, crash recovery; engine suite unchanged' \
		-baseline results/BENCH_7.json -max-regress 0.25 \
		-o results/BENCH_8.json

## bench9: record the policy-arena benchmarks (per-tick lane cost by
## policy) alongside the online-engine suite to results/BENCH_9.json,
## gated against the BENCH_8 baseline — the gate fails if any engine
## benchmark regresses (the Policy interface must not tax the tail admit
## path); the new BenchmarkArenaTick entries pass through as additions.
bench9:
	$(GO) run ./cmd/benchjson -pkg "./internal/online ./internal/arena" -benchtime 0.3s \
		-note 'policy arena: pluggable placement policies; engine suite unchanged' \
		-baseline results/BENCH_8.json -max-regress 0.25 \
		-o results/BENCH_9.json

## bench10: record the cluster benchmarks (coordinator-forwarded admit
## vs direct, one full epoch-fenced session migration) alongside the
## online-engine suite to results/BENCH_10.json, gated against the
## BENCH_9 baseline — the gate fails if any engine benchmark regresses
## (clustering is a separate layer and must not tax the engine); the new
## BenchmarkDirectAdmit / BenchmarkForwardedAdmit /
## BenchmarkSessionMigration entries pass through as additions.
bench10:
	$(GO) run ./cmd/benchjson -pkg "./internal/online ./internal/cluster" -benchtime 0.3s \
		-note 'sharded cluster: forwarded vs direct admit, epoch-fenced migration; engine suite unchanged' \
		-baseline results/BENCH_9.json -max-regress 0.25 \
		-o results/BENCH_10.json
