package partfeas

import (
	"context"
	"fmt"

	"partfeas/internal/core"
	"partfeas/internal/exact"
	"partfeas/internal/fractional"
	"partfeas/internal/machine"
	"partfeas/internal/openshop"
	"partfeas/internal/pipeline"
	"partfeas/internal/sim"
	"partfeas/internal/task"
)

// PipelineError is the structured error every cancellable entry point
// returns on interruption: it names the pipeline stage, the trial and
// machine indices where applicable, and wraps the cause (so errors.Is
// against context.Canceled / context.DeadlineExceeded works through it).
// Recovered worker panics surface as a PipelineError wrapping ErrPanic
// with the panicking goroutine's stack attached.
type PipelineError = pipeline.Error

// ErrPanic is the sentinel wrapped by PipelineErrors born from recovered
// worker panics.
var ErrPanic = pipeline.ErrPanic

// ErrBudgetExceeded is the sentinel the exact partitioned adversary
// wraps when its node budget runs out. PartitionedMinScaling surfaces
// it as an error; AnalyzeCtx instead degrades to the certified
// incumbent bound (Analysis.Degraded) and never returns it.
var ErrBudgetExceeded = exact.ErrBudgetExceeded

// IsCanceled reports whether err is due to context cancellation or
// deadline expiry, looking through any PipelineError wrapping.
func IsCanceled(err error) bool { return pipeline.Canceled(err) }

// Task is one implicit-deadline sporadic task (WCET C, period/deadline P).
type Task = task.Task

// TaskSet is an ordered collection of tasks.
type TaskSet = task.Set

// Machine is one processor of a uniform platform.
type Machine = machine.Machine

// Platform is a set of related machines with speeds.
type Platform = machine.Platform

// NewPlatform builds a platform from raw speeds, naming machines m0, m1, ….
func NewPlatform(speeds ...float64) Platform { return machine.New(speeds...) }

// Scheduler selects the per-machine policy of the feasibility test.
type Scheduler = core.Scheduler

// Per-machine scheduling policies.
const (
	// EDF pairs the test with the exact utilization admission.
	EDF = core.EDF
	// RMS pairs the test with the Liu–Layland admission.
	RMS = core.RMS
)

// Theorem identifies one of the paper's four approximation results.
type Theorem = core.Theorem

// The paper's four theorems.
const (
	// TheoremI1 is FF-EDF vs the partitioned optimum, α = 2.
	TheoremI1 = core.TheoremI1
	// TheoremI2 is FF-RMS vs the partitioned optimum, α ≈ 2.414.
	TheoremI2 = core.TheoremI2
	// TheoremI3 is FF-EDF vs the migratory LP bound, α = 2.98.
	TheoremI3 = core.TheoremI3
	// TheoremI4 is FF-RMS vs the migratory LP bound, α = 3.34.
	TheoremI4 = core.TheoremI4
)

// Theorems lists all four results in paper order.
var Theorems = core.Theorems

// Report is the outcome of one feasibility test run, including the
// witness partition (or the failing task on rejection).
type Report = core.Report

// Test runs the paper's first-fit feasibility test for the scheduler at
// speed augmentation alpha. It is TestCtx without a deadline; both
// validate the instance eagerly, so a platform built from bad speeds
// (NewPlatform accepts anything) fails here with the offending machine
// index named.
func Test(ts TaskSet, p Platform, sch Scheduler, alpha float64) (Report, error) {
	return TestCtx(context.Background(), Instance{Tasks: ts, Platform: p, Scheduler: sch}, alpha)
}

// TestTheorem runs the test at the theorem's proved augmentation factor.
// Rejection certifies the theorem's adversary cannot schedule the set at
// the original speeds.
func TestTheorem(ts TaskSet, p Platform, thm Theorem) (Report, error) {
	return core.TestTheorem(ts, p, thm)
}

// MinAlpha bisects for the smallest augmentation in [lo, hi] at which the
// test accepts; ok is false when even hi does not suffice.
func MinAlpha(ts TaskSet, p Platform, sch Scheduler, lo, hi, tol float64) (alpha float64, ok bool, err error) {
	return core.MinAlpha(ts, p, sch, lo, hi, tol)
}

// Tester answers the feasibility test for one (task set, platform,
// scheduler) triple at many augmentations, reusing precomputed sort
// orders and scratch buffers so a repeat query allocates nothing. Use it
// instead of Test when probing the same instance repeatedly (bisections,
// sensitivity sweeps, admission-control loops). Not safe for concurrent
// use; construct one per goroutine.
type Tester = core.Tester

// NewTester builds a reusable Tester for the instance, validating it
// eagerly (bad machine speeds are reported here, by index, rather than
// surfacing later).
func NewTester(ts TaskSet, p Platform, sch Scheduler) (*Tester, error) {
	if err := (Instance{Tasks: ts, Platform: p, Scheduler: sch}).Validate(); err != nil {
		return nil, err
	}
	return core.NewTester(ts, p, sch)
}

// PartitionedMinScaling returns σ_part: the minimal uniform platform
// scaling under which some partition fits (exact branch-and-bound,
// parallelized across GOMAXPROCS; exponential worst case — intended for
// n ≲ 20).
func PartitionedMinScaling(ts TaskSet, p Platform) (float64, error) {
	res, err := exact.MinScalingParallel(ts, p, exact.Options{})
	if err != nil {
		return 0, err
	}
	return res.Sigma, nil
}

// MigratoryMinScaling returns σ_LP: the minimal uniform platform scaling
// under which the paper's migratory LP is feasible (closed form,
// O(n log n + m log m)).
func MigratoryMinScaling(ts TaskSet, p Platform) (float64, error) {
	return fractional.MinScaling(ts, p)
}

// Policy selects the simulated per-machine discipline.
type Policy = sim.Policy

// Simulation policies.
const (
	// PolicyEDF simulates earliest-deadline-first.
	PolicyEDF = sim.PolicyEDF
	// PolicyRM simulates rate-monotonic fixed priorities.
	PolicyRM = sim.PolicyRM
)

// SimulationResult aggregates per-machine deadline-miss reports.
type SimulationResult = sim.PlatformResult

// ArrivalModel generates release times for simulated sporadic tasks; see
// sim.PeriodicArrivals and sim.JitteredArrivals.
type ArrivalModel = sim.ArrivalModel

// JitteredArrivals is a deterministic sparser-than-periodic sporadic
// arrival model for SimulateOpts.
type JitteredArrivals = sim.JitteredArrivals

// Simulate replays a partition (assignment[i] = machine of task i) under
// synchronous periodic releases with exact rational timestamps. alpha
// scales machine speeds, matching a Report produced at that augmentation.
// horizon <= 0 selects one hyperperiod.
//
// Deprecated: use SimulateCtx, which unifies the four Simulate variants
// behind one context-aware entry point. This wrapper runs
// SimulateCtx(context.Background(), …) with the policy's matching
// scheduler and is decision-identical.
func Simulate(ts TaskSet, p Platform, assignment []int, policy Policy, alpha float64, horizon int64) (SimulationResult, error) {
	res, _, err := SimulateCtx(context.Background(),
		Instance{Tasks: ts, Platform: p, Scheduler: schedulerForPolicy(policy)},
		SimulateOptions{Assignment: assignment, Alpha: alpha, Horizon: horizon})
	return res, err
}

// SimulateOpts is Simulate with an explicit arrival model and worker
// count.
//
// Deprecated: use SimulateCtx. The opts struct is shared; this wrapper
// honors opts.Ctx for callers that set it.
func SimulateOpts(ts TaskSet, p Platform, assignment []int, policy Policy, alpha float64, horizon int64, opts SimulateOptions) (SimulationResult, error) {
	opts.Assignment, opts.Alpha, opts.Horizon, opts.Trace = assignment, alpha, horizon, false
	res, _, err := SimulateCtx(opts.Ctx,
		Instance{Tasks: ts, Platform: p, Scheduler: schedulerForPolicy(policy)}, opts)
	return res, err
}

// Trace records the execution segments of one simulated machine.
type Trace = sim.Trace

// SimulateTraced is Simulate plus one execution trace per machine, for
// Gantt rendering and schedule audits.
//
// Deprecated: use SimulateCtx with SimulateOptions.Trace set.
func SimulateTraced(ts TaskSet, p Platform, assignment []int, policy Policy, alpha float64, horizon int64) (SimulationResult, []*Trace, error) {
	return SimulateCtx(context.Background(),
		Instance{Tasks: ts, Platform: p, Scheduler: schedulerForPolicy(policy)},
		SimulateOptions{Assignment: assignment, Alpha: alpha, Horizon: horizon, Trace: true})
}

// SimulateTracedOpts is SimulateTraced with an explicit arrival model,
// worker count and context.
//
// Deprecated: use SimulateCtx with SimulateOptions.Trace set. This
// wrapper honors opts.Ctx for callers that set it.
func SimulateTracedOpts(ts TaskSet, p Platform, assignment []int, policy Policy, alpha float64, horizon int64, opts SimulateOptions) (SimulationResult, []*Trace, error) {
	opts.Assignment, opts.Alpha, opts.Horizon, opts.Trace = assignment, alpha, horizon, true
	return SimulateCtx(opts.Ctx,
		Instance{Tasks: ts, Platform: p, Scheduler: schedulerForPolicy(policy)}, opts)
}

// Gantt renders per-machine traces as an ASCII chart over [0, horizon)
// using width character cells; labels[i] names task i.
func Gantt(traces []*Trace, labels []string, horizon int64, width int) string {
	return sim.Gantt(traces, labels, horizon, width)
}

// MaxWCET returns the largest integer WCET for task i at which the test
// still accepts (all other tasks unchanged) — per-task execution-time
// headroom for WCET budgeting. ok is false when the set is rejected as
// given.
func MaxWCET(ts TaskSet, p Platform, sch Scheduler, alpha float64, i int) (wcet int64, ok bool, err error) {
	return core.MaxWCET(ts, p, sch, alpha, i)
}

// WCETHeadroom returns MaxWCET_i / C_i for every task (NaN entries when
// the set is rejected as given).
func WCETHeadroom(ts TaskSet, p Platform, sch Scheduler, alpha float64) ([]float64, error) {
	return core.WCETHeadroom(ts, p, sch, alpha)
}

// CyclicSchedule is a migrating schedule template executed in every unit
// window: a sequence of matching slices produced by open-shop
// decomposition of an LP witness.
type CyclicSchedule = openshop.Schedule

// MigratorySchedule makes the migratory adversary constructive: it solves
// the paper's LP for the instance and decomposes the witness into an
// explicit cyclic migrating schedule that meets every deadline. ok is
// false when the LP is infeasible (no migrating scheduler can succeed at
// these speeds).
func MigratorySchedule(ts TaskSet, p Platform) (sched *CyclicSchedule, ok bool, err error) {
	feasible, u, err := fractional.SolveLP(ts, p)
	if err != nil || !feasible {
		return nil, false, err
	}
	s, err := openshop.FromLP(u, p, 1e-9)
	if err != nil {
		return nil, false, err
	}
	if err := openshop.VerifyDeadlines(s, ts, p, 1e-5); err != nil {
		return nil, false, fmt.Errorf("partfeas: constructed schedule failed verification: %w", err)
	}
	return s, true, nil
}

// Analysis bundles everything partfeas can say about one instance.
type Analysis struct {
	// SigmaPartitioned is σ_part. When SigmaPartitionedExact is false the
	// exact search was interrupted (node budget or ctx deadline) and
	// SigmaPartitioned is instead the certified upper bound the search
	// degraded to — at worst the polynomial LPT-greedy bound, never 0.
	SigmaPartitioned      float64
	SigmaPartitionedExact bool
	// Degraded is true when any component of the analysis fell back to a
	// polynomial bound instead of an exact answer (currently only the
	// partitioned adversary can degrade).
	Degraded bool
	// SigmaMigratory is σ_LP.
	SigmaMigratory float64
	// Reports holds the outcome of each theorem's test, indexed like
	// Theorems.
	Reports [4]Report
	// MinAlphaEDF and MinAlphaRMS are the smallest augmentations at which
	// each test accepts (0 when not found below the searched ceiling).
	MinAlphaEDF float64
	MinAlphaRMS float64
}

// AnalyzeOptions tunes AnalyzeCtx.
type AnalyzeOptions struct {
	// ExactBudget overrides the exact adversary's node budget when
	// positive (exhaustion degrades the analysis instead of failing it).
	ExactBudget int64
	// ExactWorkers bounds the exact adversary's worker goroutines; zero
	// means GOMAXPROCS.
	ExactWorkers int
}

// Analyze runs the four theorem tests, both adversary scalings and the
// minimal-α measurements for one instance.
func Analyze(ts TaskSet, p Platform) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), ts, p, AnalyzeOptions{})
}

// AnalyzeCtx is Analyze with cooperative cancellation and graceful
// degradation. A ctx deadline (or exact node-budget exhaustion) does not
// fail the analysis: the exact partitioned adversary degrades to its
// certified incumbent bound and the Analysis is marked Degraded.
// Explicit cancellation aborts the whole analysis with a PipelineError
// wrapping context.Canceled.
func AnalyzeCtx(ctx context.Context, ts TaskSet, p Platform, opts AnalyzeOptions) (*Analysis, error) {
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("partfeas: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("partfeas: %w", err)
	}
	a := &Analysis{}
	var err error
	a.SigmaMigratory, err = fractional.MinScaling(ts, p)
	if err != nil {
		return nil, err
	}
	// The exact adversary is the only exponential stage; run it bounded so
	// budget or deadline exhaustion degrades to the incumbent bound
	// (seeded by the polynomial LPT greedy) instead of failing.
	exres, err := exact.SearchParallelBounded(ctx, ts, p, exact.Options{
		NodeBudget: opts.ExactBudget,
		Workers:    opts.ExactWorkers,
	})
	if err != nil {
		return nil, err
	}
	a.SigmaPartitioned = exres.Sigma
	a.SigmaPartitionedExact = !exres.Degraded
	a.Degraded = exres.Degraded
	// A deadline is a budget for the exponential stage, not an abort: once
	// it has fired the remaining stages (all polynomial, microseconds) run
	// unconstrained so the caller still gets a complete, Degraded
	// analysis. Explicit cancellation still aborts below.
	if ctx.Err() == context.DeadlineExceeded {
		ctx = context.Background()
	}
	// One solver per scheduler serves the four theorem tests and both
	// bisections: the sort orders are computed twice instead of the ~60
	// times the naive per-query path pays.
	testerEDF, err := core.NewTester(ts, p, core.EDF)
	if err != nil {
		return nil, err
	}
	testerRMS, err := core.NewTester(ts, p, core.RMS)
	if err != nil {
		return nil, err
	}
	for i, thm := range Theorems {
		if cerr := ctx.Err(); cerr != nil {
			return nil, pipeline.New(pipeline.StageAnalyze, "theorem tests", cerr)
		}
		tester := testerEDF
		if thm.Scheduler() == core.RMS {
			tester = testerRMS
		}
		rep, err := tester.Test(thm.Alpha())
		if err != nil {
			return nil, err
		}
		// Reports outlive the next query, so detach the witness from the
		// tester's scratch.
		rep.Partition = rep.Partition.Clone()
		a.Reports[i] = rep
	}
	// Search ceilings follow from the theorems: the EDF test accepts by
	// α = 2.98·σ_LP, the RMS test by 3.34·σ_LP.
	lo := a.SigmaMigratory / 2
	a.MinAlphaEDF, _, err = testerEDF.MinAlphaCtx(ctx, lo, 2.98*a.SigmaMigratory*(1+1e-6), 1e-6)
	if err != nil {
		return nil, err
	}
	a.MinAlphaRMS, _, err = testerRMS.MinAlphaCtx(ctx, lo, 3.34*a.SigmaMigratory*(1+1e-6), 1e-6)
	if err != nil {
		return nil, err
	}
	return a, nil
}
