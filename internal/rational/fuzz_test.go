package rational

import (
	"math/big"
	"testing"
)

// FuzzArithmetic cross-checks every operation against math/big: results
// are either exact or reported as overflow, never silently wrong.
func FuzzArithmetic(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4))
	f.Add(int64(-7), int64(3), int64(22), int64(7))
	f.Add(int64(1)<<40, int64(3), int64(-5), int64(1)<<35)
	f.Add(int64(0), int64(1), int64(0), int64(1))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		a, err := New(an, ad)
		if err != nil {
			return
		}
		b, err := New(bn, bd)
		if err != nil {
			return
		}
		ba := big.NewRat(a.Num(), a.Den())
		bb := big.NewRat(b.Num(), b.Den())

		if got, err := a.Add(b); err == nil {
			want := new(big.Rat).Add(ba, bb)
			if big.NewRat(got.Num(), got.Den()).Cmp(want) != 0 {
				t.Fatalf("%v + %v = %v, want %v", a, b, got, want)
			}
			if !got.Valid() {
				t.Fatalf("Add result not canonical: %v", got)
			}
		}
		if got, err := a.Mul(b); err == nil {
			want := new(big.Rat).Mul(ba, bb)
			if big.NewRat(got.Num(), got.Den()).Cmp(want) != 0 {
				t.Fatalf("%v * %v = %v, want %v", a, b, got, want)
			}
		}
		if !b.IsZero() {
			if got, err := a.Div(b); err == nil {
				want := new(big.Rat).Quo(ba, bb)
				if big.NewRat(got.Num(), got.Den()).Cmp(want) != 0 {
					t.Fatalf("%v / %v = %v, want %v", a, b, got, want)
				}
			}
		}
		if got, want := a.Cmp(b), ba.Cmp(bb); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
		}
	})
}

// FuzzFromFloat checks the continued-fraction conversion stays within its
// stated error and round-trips nice fractions exactly.
func FuzzFromFloat(f *testing.F) {
	f.Add(0.5)
	f.Add(2.25)
	f.Add(1.0 / 3)
	f.Add(0.0)
	f.Add(1e9)
	f.Fuzz(func(t *testing.T, x float64) {
		r, err := FromFloat(x)
		if err != nil {
			return
		}
		got := r.Float64()
		diff := got - x
		if diff < 0 {
			diff = -diff
		}
		bound := 1e-9
		if ax := x; ax < 0 {
			ax = -ax
		}
		if x != 0 {
			ax := x
			if ax < 0 {
				ax = -ax
			}
			if ax > 1 {
				bound = 1e-9 * ax
			}
		}
		if diff > bound {
			t.Fatalf("FromFloat(%v) = %v (%v), error %v", x, r, got, diff)
		}
	})
}
