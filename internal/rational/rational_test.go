package rational

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBig(r Rat) *big.Rat { return big.NewRat(r.Num(), r.Den()) }

func TestNewCanonical(t *testing.T) {
	tests := []struct {
		num, den int64
		wantN    int64
		wantD    int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{7, 7, 1, 1},
		{-9, 3, -3, 1},
		{math.MaxInt64, math.MaxInt64, 1, 1},
		{math.MinInt64, 2, math.MinInt64 / 2, 1},
		{math.MinInt64, math.MinInt64, 1, 1},
	}
	for _, tc := range tests {
		r, err := New(tc.num, tc.den)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", tc.num, tc.den, err)
		}
		if r.Num() != tc.wantN || r.Den() != tc.wantD {
			t.Errorf("New(%d, %d) = %v, want %d/%d", tc.num, tc.den, r, tc.wantN, tc.wantD)
		}
		if !r.Valid() {
			t.Errorf("New(%d, %d) = %v not canonical", tc.num, tc.den, r)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(1, 0); err != ErrDivByZero {
		t.Errorf("New(1, 0) err = %v, want ErrDivByZero", err)
	}
	if _, err := New(math.MinInt64, 1); err != nil {
		t.Errorf("New(MinInt64, 1) unexpected err %v", err)
	}
	if _, err := New(math.MinInt64, 3); err != nil {
		// -2^63/3 is canonical already and representable.
		t.Errorf("New(MinInt64, 3) err = %v", err)
	}
	// 1/MinInt64 canonicalizes to -1/2^63, whose denominator exceeds
	// MaxInt64: must be reported as overflow, never silently wrong.
	if _, err := New(1, math.MinInt64); err != ErrOverflow {
		t.Errorf("New(1, MinInt64) err = %v, want ErrOverflow", err)
	}
}

func TestZeroOneHelpers(t *testing.T) {
	if !Zero().IsZero() || Zero().Sign() != 0 {
		t.Error("Zero() broken")
	}
	if One().Num() != 1 || One().Den() != 1 || One().Sign() != 1 {
		t.Error("One() broken")
	}
	if FromInt(-3).Sign() != -1 {
		t.Error("FromInt sign broken")
	}
	var zero Rat
	if zero.Valid() {
		t.Error("zero value Rat must be invalid")
	}
}

func TestStringAndFloat(t *testing.T) {
	if got := MustNew(3, 4).String(); got != "3/4" {
		t.Errorf("String = %q", got)
	}
	if got := FromInt(-7).String(); got != "-7" {
		t.Errorf("String = %q", got)
	}
	if got := MustNew(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64 = %v", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1, 0) did not panic")
		}
	}()
	MustNew(1, 0)
}

func TestArithmeticBasics(t *testing.T) {
	half := MustNew(1, 2)
	third := MustNew(1, 3)

	sum, err := half.Add(third)
	if err != nil || !sum.Equal(MustNew(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v (%v), want 5/6", sum, err)
	}
	diff, err := half.Sub(third)
	if err != nil || !diff.Equal(MustNew(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v (%v), want 1/6", diff, err)
	}
	prod, err := half.Mul(third)
	if err != nil || !prod.Equal(MustNew(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v (%v), want 1/6", prod, err)
	}
	quot, err := half.Div(third)
	if err != nil || !quot.Equal(MustNew(3, 2)) {
		t.Errorf("1/2 / 1/3 = %v (%v), want 3/2", quot, err)
	}
	if _, err := half.Div(Zero()); err != ErrDivByZero {
		t.Errorf("div by zero err = %v", err)
	}
}

func TestNegOfNegativeDen(t *testing.T) {
	r := MustNew(3, -4)
	if !r.Equal(MustNew(-3, 4)) {
		t.Fatalf("canonicalization failed: %v", r)
	}
	if !r.Neg().Equal(MustNew(3, 4)) {
		t.Errorf("Neg = %v", r.Neg())
	}
}

func TestDivNegativeDivisorCanonical(t *testing.T) {
	q, err := MustNew(1, 2).Div(MustNew(-1, 3))
	if err != nil || !q.Equal(MustNew(-3, 2)) {
		t.Errorf("1/2 / -1/3 = %v (%v), want -3/2", q, err)
	}
	if !q.Valid() {
		t.Errorf("result not canonical: %v", q)
	}
}

func TestFloorCeil(t *testing.T) {
	tests := []struct {
		r     Rat
		floor int64
		ceil  int64
	}{
		{MustNew(7, 2), 3, 4},
		{MustNew(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{Zero(), 0, 0},
		{MustNew(1, 3), 0, 1},
		{MustNew(-1, 3), -1, 0},
	}
	for _, tc := range tests {
		if got := tc.r.Floor(); got != tc.floor {
			t.Errorf("Floor(%v) = %d, want %d", tc.r, got, tc.floor)
		}
		if got := tc.r.Ceil(); got != tc.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", tc.r, got, tc.ceil)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	got, err := CeilDiv(MustNew(7, 1), MustNew(2, 1))
	if err != nil || got != 4 {
		t.Errorf("CeilDiv(7, 2) = %d (%v), want 4", got, err)
	}
	got, err = CeilDiv(MustNew(6, 1), MustNew(2, 1))
	if err != nil || got != 3 {
		t.Errorf("CeilDiv(6, 2) = %d (%v), want 3", got, err)
	}
	if _, err := CeilDiv(One(), Zero()); err == nil {
		t.Error("CeilDiv by zero should fail")
	}
	if _, err := CeilDiv(One(), FromInt(-2)); err == nil {
		t.Error("CeilDiv by negative should fail")
	}
}

func TestMinMaxSum(t *testing.T) {
	a, b := MustNew(1, 3), MustNew(1, 2)
	if !Min(a, b).Equal(a) || !Max(a, b).Equal(b) {
		t.Error("Min/Max broken")
	}
	s, err := Sum(a, b, FromInt(1))
	if err != nil || !s.Equal(MustNew(11, 6)) {
		t.Errorf("Sum = %v (%v), want 11/6", s, err)
	}
}

func TestCmpExactAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a := MustNew(rng.Int63n(2_000_001)-1_000_000, rng.Int63n(1_000_000)+1)
		b := MustNew(rng.Int63n(2_000_001)-1_000_000, rng.Int63n(1_000_000)+1)
		if got, want := a.Cmp(b), mustBig(a).Cmp(mustBig(b)); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}

// TestCmpLargeOperands exercises the 128-bit comparison path where the naive
// cross-multiplication overflows int64.
func TestCmpLargeOperands(t *testing.T) {
	a := MustNew(math.MaxInt64, math.MaxInt64-1)
	b := MustNew(math.MaxInt64-1, math.MaxInt64-2)
	if got, want := a.Cmp(b), mustBig(a).Cmp(mustBig(b)); got != want {
		t.Fatalf("Cmp = %d, want %d", got, want)
	}
	if a.Cmp(a) != 0 {
		t.Error("self compare != 0")
	}
}

func randRat(rng *rand.Rand, bound int64) Rat {
	return MustNew(rng.Int63n(2*bound+1)-bound, rng.Int63n(bound)+1)
}

func TestArithmeticAgainstBigRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a := randRat(rng, 1_000_000)
		b := randRat(rng, 1_000_000)

		if s, err := a.Add(b); err == nil {
			want := new(big.Rat).Add(mustBig(a), mustBig(b))
			if mustBig(s).Cmp(want) != 0 {
				t.Fatalf("%v + %v = %v, want %v", a, b, s, want)
			}
			if !s.Valid() {
				t.Fatalf("Add result not canonical: %v", s)
			}
		}
		if p, err := a.Mul(b); err == nil {
			want := new(big.Rat).Mul(mustBig(a), mustBig(b))
			if mustBig(p).Cmp(want) != 0 {
				t.Fatalf("%v * %v = %v, want %v", a, b, p, want)
			}
		}
		if !b.IsZero() {
			if q, err := a.Div(b); err == nil {
				want := new(big.Rat).Quo(mustBig(a), mustBig(b))
				if mustBig(q).Cmp(want) != 0 {
					t.Fatalf("%v / %v = %v, want %v", a, b, q, want)
				}
			}
		}
	}
}

// TestArithmeticAgainstBigHuge stresses near-overflow operands: results are
// either exact (matching big.Rat) or reported as ErrOverflow — never silently
// wrong.
func TestArithmeticAgainstBigHuge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	huge := int64(math.MaxInt64 / 2)
	for i := 0; i < 5000; i++ {
		a := randRat(rng, huge)
		b := randRat(rng, huge)
		if s, err := a.Add(b); err == nil {
			want := new(big.Rat).Add(mustBig(a), mustBig(b))
			if mustBig(s).Cmp(want) != 0 {
				t.Fatalf("%v + %v = %v, want %v", a, b, s, want)
			}
		}
		if p, err := a.Mul(b); err == nil {
			want := new(big.Rat).Mul(mustBig(a), mustBig(b))
			if mustBig(p).Cmp(want) != 0 {
				t.Fatalf("%v * %v = %v, want %v", a, b, p, want)
			}
		}
	}
}

func TestOverflowDetected(t *testing.T) {
	big1 := MustNew(math.MaxInt64, 1)
	if _, err := big1.Add(big1); err != ErrOverflow {
		t.Errorf("MaxInt64 + MaxInt64 err = %v, want ErrOverflow", err)
	}
	if _, err := big1.Mul(big1); err != ErrOverflow {
		t.Errorf("MaxInt64 * MaxInt64 err = %v, want ErrOverflow", err)
	}
	// Denominator blowup: 1/p * 1/q with coprime huge p, q.
	p := MustNew(1, math.MaxInt64)
	q := MustNew(1, math.MaxInt64-2) // MaxInt64 and MaxInt64-2 share no factor 2; likely coprime
	if _, err := p.Mul(q); err != ErrOverflow {
		t.Errorf("tiny*tiny denominator overflow err = %v, want ErrOverflow", err)
	}
}

// Property: Add is commutative and associative where defined.
func TestQuickAddLaws(t *testing.T) {
	f := func(an, bn, cn int32, adRaw, bdRaw, cdRaw uint16) bool {
		ad, bd, cd := int64(adRaw)+1, int64(bdRaw)+1, int64(cdRaw)+1
		a, b, c := MustNew(int64(an), ad), MustNew(int64(bn), bd), MustNew(int64(cn), cd)
		ab, err1 := a.Add(b)
		ba, err2 := b.Add(a)
		if err1 != nil || err2 != nil {
			return err1 == err2
		}
		if !ab.Equal(ba) {
			return false
		}
		abc1, err1 := ab.Add(c)
		bc, err2 := b.Add(c)
		if err2 != nil {
			return true
		}
		abc2, err3 := a.Add(bc)
		if err1 != nil || err3 != nil {
			return true
		}
		return abc1.Equal(abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a - a == 0 and a + (-a) == 0.
func TestQuickAdditiveInverse(t *testing.T) {
	f := func(an int64, adRaw uint32) bool {
		ad := int64(adRaw) + 1
		a, err := New(an, ad)
		if err != nil {
			return true
		}
		d, err := a.Sub(a)
		if err != nil || !d.IsZero() {
			return false
		}
		z, err := a.Add(a.Neg())
		return err == nil && z.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: (a*b)/b == a for b != 0.
func TestQuickMulDivRoundTrip(t *testing.T) {
	f := func(an, bn int32, adRaw, bdRaw uint16) bool {
		ad, bd := int64(adRaw)+1, int64(bdRaw)+1
		a, b := MustNew(int64(an), ad), MustNew(int64(bn), bd)
		if b.IsZero() {
			return true
		}
		p, err := a.Mul(b)
		if err != nil {
			return true
		}
		q, err := p.Div(b)
		return err == nil && q.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: results are always canonical.
func TestQuickCanonical(t *testing.T) {
	f := func(an, bn int64, adRaw, bdRaw uint32) bool {
		a, err := New(an, int64(adRaw)+1)
		if err != nil {
			return true
		}
		b, err := New(bn, int64(bdRaw)+1)
		if err != nil {
			return true
		}
		for _, op := range []func(Rat) (Rat, error){a.Add, a.Sub, a.Mul, a.Div} {
			r, err := op(b)
			if err == nil && !r.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Floor(r) <= r < Floor(r)+1 and Ceil(r)-1 < r <= Ceil(r).
func TestQuickFloorCeilBracket(t *testing.T) {
	f := func(n int32, dRaw uint16) bool {
		d := int64(dRaw) + 1
		r := MustNew(int64(n), d)
		fl, ce := FromInt(r.Floor()), FromInt(r.Ceil())
		if r.Cmp(fl) < 0 || r.Cmp(ce) > 0 {
			return false
		}
		flPlus1, _ := fl.Add(One())
		cemin1, _ := ce.Sub(One())
		return r.Less(flPlus1) && cemin1.Less(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	x := MustNew(355, 113)
	y := MustNew(22, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.Add(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	x := MustNew(355, 113)
	y := MustNew(22, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.Mul(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCmp(b *testing.B) {
	x := MustNew(math.MaxInt64, math.MaxInt64-1)
	y := MustNew(math.MaxInt64-1, math.MaxInt64-2)
	for i := 0; i < b.N; i++ {
		x.Cmp(y)
	}
}

// TestAddFastPaths pins the equal-denominator and integer-operand fast
// paths, including the overflow boundaries where they must fall through
// to the general 128-bit path with unchanged behavior.
func TestAddFastPaths(t *testing.T) {
	cases := []struct {
		a, b    Rat
		want    Rat
		wantErr bool
	}{
		// Integer + integer.
		{FromInt(3), FromInt(4), FromInt(7), false},
		{FromInt(math.MaxInt64), FromInt(-1), FromInt(math.MaxInt64 - 1), false},
		// Integer + integer overflowing int64: still ErrOverflow.
		{FromInt(math.MaxInt64), FromInt(1), Rat{}, true},
		// Sum of exactly MinInt64: canon128 has always rejected
		// |num| = 2^63, and the fast path must preserve that.
		{FromInt(math.MinInt64 + 1), FromInt(-1), Rat{}, true},
		// Equal denominators, reducing and non-reducing.
		{MustNew(1, 4), MustNew(1, 4), MustNew(1, 2), false},
		{MustNew(1, 4), MustNew(2, 4), MustNew(3, 4), false},
		{MustNew(3, 7), MustNew(-3, 7), Zero(), false},
		// Equal denominators whose numerator sum overflows int64 but
		// reduces back into range: general path must still succeed.
		{MustNew(math.MaxInt64, 2), MustNew(math.MaxInt64, 2), FromInt(math.MaxInt64), false},
		// Integer + fraction: canonical without reduction.
		{FromInt(2), MustNew(1, 3), MustNew(7, 3), false},
		{MustNew(1, 3), FromInt(-2), MustNew(-5, 3), false},
		// Integer + fraction overflowing: ErrOverflow preserved.
		{FromInt(math.MaxInt64), MustNew(1, 2), Rat{}, true},
	}
	for _, c := range cases {
		got, err := c.a.Add(c.b)
		if c.wantErr {
			if err == nil {
				t.Errorf("%v + %v = %v, want overflow", c.a, c.b, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v + %v: %v", c.a, c.b, err)
			continue
		}
		if !got.Equal(c.want) || !got.Valid() {
			t.Errorf("%v + %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCmpFastPath pins the equal-denominator comparison shortcut.
func TestCmpFastPath(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{FromInt(2), FromInt(3), -1},
		{FromInt(3), FromInt(3), 0},
		{FromInt(-3), FromInt(-4), 1},
		{MustNew(1, 5), MustNew(3, 5), -1},
		{MustNew(math.MaxInt64, 7), MustNew(math.MaxInt64-7, 7), 1},
		{MustNew(1, 2), MustNew(1, 3), 1}, // different dens: general path
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Cmp(c.a); got != -c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

// BenchmarkAddInt measures the integer fast path the simulator's event
// arithmetic rides on.
func BenchmarkAddInt(b *testing.B) {
	x := FromInt(123456)
	y := FromInt(789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.Add(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCmpInt measures the equal-denominator comparison fast path.
func BenchmarkCmpInt(b *testing.B) {
	x := FromInt(123456)
	y := FromInt(123457)
	for i := 0; i < b.N; i++ {
		x.Cmp(y)
	}
}
