package rational

import (
	"fmt"
	"math"
)

// maxFromFloatDen bounds the denominator FromFloat will produce. Large
// enough to represent any "nice" speed value (multiples of 1e-9) exactly,
// small enough that downstream products stay far from int64 overflow.
const maxFromFloatDen = 1_000_000_000

// FromFloat converts a float64 to the rational with the smallest
// denominator that matches it to within 1e-12 relative error, using
// continued-fraction (Stern–Brocot) expansion. Values like 0.5, 2.25 or
// 1/3 within float precision convert to the exact small fraction.
//
// It returns an error for NaN, infinities, and magnitudes too large for
// int64.
func FromFloat(f float64) (Rat, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Rat{}, fmt.Errorf("rational: FromFloat(%v): not finite", f)
	}
	if f == 0 {
		return Zero(), nil
	}
	neg := f < 0
	x := math.Abs(f)
	if x > float64(math.MaxInt64)/2 {
		return Rat{}, fmt.Errorf("rational: FromFloat(%v): %w", f, ErrOverflow)
	}

	// Continued-fraction expansion with convergents h_k / k_k.
	var (
		h0, k0 = int64(0), int64(1) // h_{-1}/k_{-1}
		h1, k1 = int64(1), int64(0) // h_0/k_0 seeded so first step yields floor(x)/1
		rem    = x
	)
	for i := 0; i < 64; i++ {
		a := math.Floor(rem)
		if a > float64(math.MaxInt64)/4 {
			break
		}
		ai := int64(a)
		h2 := ai*h1 + h0
		k2 := ai*k1 + k0
		if k2 > maxFromFloatDen || h2 < 0 || k2 < 0 {
			break
		}
		h0, k0, h1, k1 = h1, k1, h2, k2
		approx := float64(h1) / float64(k1)
		if math.Abs(approx-x) <= 1e-12*x {
			break
		}
		frac := rem - a
		if frac < 1e-15 {
			break
		}
		rem = 1 / frac
	}
	if k1 == 0 {
		return Rat{}, fmt.Errorf("rational: FromFloat(%v): no convergent", f)
	}
	if math.Abs(float64(h1)/float64(k1)-x) > 1e-9*math.Max(x, 1) {
		return Rat{}, fmt.Errorf("rational: FromFloat(%v): best approximation %d/%d too coarse", f, h1, k1)
	}
	if neg {
		h1 = -h1
	}
	return New(h1, k1)
}
