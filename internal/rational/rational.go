// Package rational implements exact rational arithmetic on int64
// numerators and denominators with explicit overflow detection.
//
// The discrete-event simulator (internal/sim) uses Rat for event
// timestamps so that job releases, preemptions and deadline checks over a
// full hyperperiod are exact: no float drift, no epsilon comparisons.
// Machine speeds are rationals, worst-case execution times and periods are
// integers, so every event time is representable as a ratio of bounded
// integers.
//
// All values are kept in canonical form: the denominator is strictly
// positive and gcd(|num|, den) == 1. The zero value of Rat is NOT valid
// (its denominator is zero); construct values with New, FromInt or
// FromFloat.
package rational

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrOverflow is returned when the exact result of an operation cannot be
// represented with int64 numerator and denominator even after reduction.
var ErrOverflow = errors.New("rational: int64 overflow")

// ErrDivByZero is returned on division by an exactly zero rational.
var ErrDivByZero = errors.New("rational: division by zero")

// Rat is an exact rational number num/den in canonical form.
type Rat struct {
	num int64
	den int64 // > 0 for valid values
}

// Zero is the rational 0/1.
func Zero() Rat { return Rat{0, 1} }

// One is the rational 1/1.
func One() Rat { return Rat{1, 1} }

// New returns the canonical rational num/den.
// It returns ErrDivByZero when den == 0 and ErrOverflow when the canonical
// form does not fit (only possible for num or den equal to math.MinInt64).
func New(num, den int64) (Rat, error) {
	if den == 0 {
		return Rat{}, ErrDivByZero
	}
	if num == 0 {
		return Rat{0, 1}, nil
	}
	if num == math.MinInt64 || den == math.MinInt64 {
		// |MinInt64| is not representable; reduce first via uint64 gcd.
		g := gcd64(absU(num), absU(den))
		un, ud := absU(num)/g, absU(den)/g
		neg := (num < 0) != (den < 0)
		if un > math.MaxInt64 || ud > math.MaxInt64 {
			if neg && un == math.MaxInt64+1 && ud <= math.MaxInt64 {
				return Rat{math.MinInt64, int64(ud)}, nil
			}
			return Rat{}, ErrOverflow
		}
		n, d := int64(un), int64(ud)
		if neg {
			n = -n
		}
		return Rat{n, d}, nil
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := int64(gcd64(absU(num), uint64(den)))
	return Rat{num / g, den / g}, nil
}

// MustNew is New, panicking on error. Intended for constants in tests and
// literals known to be valid.
func MustNew(num, den int64) Rat {
	r, err := New(num, den)
	if err != nil {
		panic(fmt.Sprintf("rational.MustNew(%d, %d): %v", num, den, err))
	}
	return r
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Num returns the canonical numerator.
func (r Rat) Num() int64 { return r.num }

// Den returns the canonical (positive) denominator.
func (r Rat) Den() int64 { return r.den }

// Valid reports whether r is in canonical form with a positive denominator.
func (r Rat) Valid() bool {
	if r.den <= 0 {
		return false
	}
	if r.num == 0 {
		return r.den == 1
	}
	return gcd64(absU(r.num), uint64(r.den)) == 1
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// Sign returns -1, 0 or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// Neg returns -r. Negation never overflows for canonical values except the
// unreachable |num| == MinInt64 case, which New rejects.
func (r Rat) Neg() Rat { return Rat{-r.num, r.den} }

// Float64 returns the nearest float64 to r.
func (r Rat) Float64() float64 { return float64(r.num) / float64(r.den) }

// String renders r as "num/den", or "num" when den == 1.
func (r Rat) String() string {
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// Cmp compares r and s exactly, returning -1, 0 or +1.
func (r Rat) Cmp(s Rat) int {
	// Fast path: equal denominators (covering the dominant case of two
	// integers, den == 1) compare by numerator alone. Event timestamps in
	// the simulator are integers whenever speeds are, so this skips the
	// 128-bit cross-multiplication on the hot comparison path.
	if r.den == s.den {
		switch {
		case r.num < s.num:
			return -1
		case r.num > s.num:
			return 1
		default:
			return 0
		}
	}
	// Compare r.num*s.den with s.num*r.den in 128 bits.
	lhHi, lhLo := mul64(r.num, s.den)
	rhHi, rhLo := mul64(s.num, r.den)
	return cmp128(lhHi, lhLo, rhHi, rhLo)
}

// Less reports r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Equal reports r == s (exact).
func (r Rat) Equal(s Rat) bool { return r.num == s.num && r.den == s.den }

// Add returns r + s exactly.
//
// Two fast paths cover the simulator's dominant operand shapes without
// changing overflow behavior — any intermediate that does not fit int64
// falls through to the general 128-bit path, which reduces before
// deciding overflow exactly as before:
//
//   - equal denominators (including integer + integer): one checked add
//     and one 64-bit gcd, no 128-bit arithmetic;
//   - one integer operand: the result (r.num*s.den + s.num)/s.den is
//     already canonical because gcd(s.num, s.den) == 1, so no gcd at all.
func (r Rat) Add(s Rat) (Rat, error) {
	if r.den == s.den {
		if sum, ok := add64(r.num, s.num); ok {
			if r.den == 1 {
				return Rat{sum, 1}, nil
			}
			g := int64(gcd64(absU(sum), uint64(r.den)))
			return Rat{sum / g, r.den / g}, nil
		}
	} else if r.den == 1 {
		if p, ok := mul64Fits(r.num, s.den); ok {
			if sum, ok := add64(p, s.num); ok {
				return Rat{sum, s.den}, nil
			}
		}
	} else if s.den == 1 {
		if p, ok := mul64Fits(s.num, r.den); ok {
			if sum, ok := add64(p, r.num); ok {
				return Rat{sum, r.den}, nil
			}
		}
	}
	// r.num/r.den + s.num/s.den = (r.num*(L/r.den) + s.num*(L/s.den)) / L
	// with L = lcm(r.den, s.den).
	g := int64(gcd64(uint64(r.den), uint64(s.den)))
	db := s.den / g
	lnHi, lnLo := mul64(r.num, db)
	rnHi, rnLo := mul64(s.num, r.den/g)
	sumHi, sumLo, carry := add128(lnHi, lnLo, rnHi, rnLo)
	if carry {
		return Rat{}, ErrOverflow
	}
	ldHi, ldLo := mul64(r.den, db)
	return canon128(sumHi, sumLo, ldHi, ldLo)
}

// Sub returns r - s exactly.
func (r Rat) Sub(s Rat) (Rat, error) { return r.Add(s.Neg()) }

// Mul returns r * s exactly.
func (r Rat) Mul(s Rat) (Rat, error) {
	// Cross-reduce first to keep intermediates small.
	g1 := int64(gcd64(absU(r.num), uint64(s.den)))
	g2 := int64(gcd64(absU(s.num), uint64(r.den)))
	nHi, nLo := mul64(r.num/g1, s.num/g2)
	dHi, dLo := mul64(r.den/g2, s.den/g1)
	return canon128(nHi, nLo, dHi, dLo)
}

// Div returns r / s exactly. It returns ErrDivByZero when s is zero.
func (r Rat) Div(s Rat) (Rat, error) {
	if s.num == 0 {
		return Rat{}, ErrDivByZero
	}
	inv := Rat{s.den, s.num}
	if inv.den < 0 {
		inv.num, inv.den = -inv.num, -inv.den
	}
	return r.Mul(inv)
}

// MulInt returns r * n exactly.
func (r Rat) MulInt(n int64) (Rat, error) { return r.Mul(FromInt(n)) }

// DivInt returns r / n exactly.
func (r Rat) DivInt(n int64) (Rat, error) { return r.Div(FromInt(n)) }

// Min returns the smaller of r and s.
func Min(r, s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Sum adds all values, returning the exact total.
func Sum(vs ...Rat) (Rat, error) {
	total := Zero()
	var err error
	for _, v := range vs {
		total, err = total.Add(v)
		if err != nil {
			return Rat{}, err
		}
	}
	return total, nil
}

// CeilDiv returns ceil(r / s) as an int64, for positive s.
// It is the number of whole periods of length s needed to cover r,
// used by response-time analysis and job counting.
func CeilDiv(r, s Rat) (int64, error) {
	if s.Sign() <= 0 {
		return 0, fmt.Errorf("rational: CeilDiv by non-positive %v", s)
	}
	q, err := r.Div(s)
	if err != nil {
		return 0, err
	}
	return q.Ceil(), nil
}

// Floor returns the greatest integer <= r.
func (r Rat) Floor() int64 {
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the least integer >= r.
func (r Rat) Ceil() int64 {
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// --- 128-bit helpers -------------------------------------------------------

// mul64 returns the signed 128-bit product of a and b as (hi, lo), where the
// value is hi*2^64 + lo interpreted in two's complement.
func mul64(a, b int64) (hi int64, lo uint64) {
	uhi, ulo := bits.Mul64(uint64(a), uint64(b))
	// Convert unsigned 128-bit product of two's-complement inputs to signed:
	// subtract b<<64 when a < 0, subtract a<<64 when b < 0.
	shi := int64(uhi)
	if a < 0 {
		shi -= b
	}
	if b < 0 {
		shi -= a
	}
	return shi, ulo
}

// add64 returns a + b and whether the sum is usable as a canonical
// numerator. A sum of exactly MinInt64 is reported as not fitting even
// though int64 holds it: the general path's canon128 rejects |num| = 2^63
// (it cannot be negated), so fast paths must defer those sums to it to
// keep overflow behavior identical.
func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	if s == math.MinInt64 {
		return 0, false
	}
	return s, true
}

// mul64Fits returns a * b and whether the product fits in int64.
func mul64Fits(a, b int64) (int64, bool) {
	hi, lo := mul64(a, b)
	// The 128-bit product fits iff the high word is the sign extension of
	// the low word.
	if hi != int64(lo)>>63 {
		return 0, false
	}
	return int64(lo), true
}

// add128 adds two signed 128-bit values, reporting signed overflow.
func add128(aHi int64, aLo uint64, bHi int64, bLo uint64) (hi int64, lo uint64, overflow bool) {
	lo, c := bits.Add64(aLo, bLo, 0)
	hi = aHi + bHi + int64(c)
	// Signed overflow: operands same sign, result different sign.
	if (aHi < 0) == (bHi < 0) && (hi < 0) != (aHi < 0) {
		// Adding the carry cannot flip an otherwise-safe sign because the
		// low word absorbs it; any flip here is a real overflow.
		return hi, lo, true
	}
	return hi, lo, false
}

// cmp128 compares signed 128-bit values.
func cmp128(aHi int64, aLo uint64, bHi int64, bLo uint64) int {
	if aHi != bHi {
		if aHi < bHi {
			return -1
		}
		return 1
	}
	if aLo != bLo {
		if aLo < bLo {
			return -1
		}
		return 1
	}
	return 0
}

// neg128 negates a signed 128-bit value.
func neg128(hi int64, lo uint64) (int64, uint64) {
	nlo := ^lo + 1
	nhi := ^hi
	if nlo == 0 {
		nhi++
	}
	return nhi, nlo
}

// abs128 returns |v| as unsigned 128 bits plus the original sign.
func abs128(hi int64, lo uint64) (uhi, ulo uint64, neg bool) {
	if hi < 0 || (hi == 0 && false) {
		h, l := neg128(hi, lo)
		return uint64(h), l, true
	}
	return uint64(hi), lo, false
}

// canon128 reduces the signed 128-bit fraction num/den to a canonical Rat,
// or reports overflow when the reduced value does not fit int64/int64.
func canon128(nHi int64, nLo uint64, dHi int64, dLo uint64) (Rat, error) {
	if dHi == 0 && dLo == 0 {
		return Rat{}, ErrDivByZero
	}
	unHi, unLo, nNeg := abs128(nHi, nLo)
	udHi, udLo, dNeg := abs128(dHi, dLo)
	if unHi == 0 && unLo == 0 {
		return Rat{0, 1}, nil
	}
	g1, g0 := gcd128(unHi, unLo, udHi, udLo)
	unHi, unLo = divmod128by128(unHi, unLo, g1, g0)
	udHi, udLo = divmod128by128(udHi, udLo, g1, g0)
	if unHi != 0 || udHi != 0 || unLo > math.MaxInt64 || udLo > math.MaxInt64 {
		return Rat{}, ErrOverflow
	}
	n, d := int64(unLo), int64(udLo)
	if nNeg != dNeg {
		n = -n
	}
	return Rat{n, d}, nil
}

// gcd64 computes gcd of two uint64 values (binary not needed; Euclid is fine).
func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func absU(v int64) uint64 {
	if v < 0 {
		return uint64(-(v + 1)) + 1 // handles MinInt64
	}
	return uint64(v)
}

// --- unsigned 128-bit gcd & division ----------------------------------------

// gcd128 computes gcd of two unsigned 128-bit values via Euclid using
// 128-by-128 remainder.
func gcd128(aHi, aLo, bHi, bLo uint64) (uint64, uint64) {
	for bHi != 0 || bLo != 0 {
		rHi, rLo := mod128(aHi, aLo, bHi, bLo)
		aHi, aLo, bHi, bLo = bHi, bLo, rHi, rLo
	}
	if aHi == 0 && aLo == 0 {
		return 0, 1
	}
	return aHi, aLo
}

// mod128 computes a mod b for unsigned 128-bit a, b (b != 0) via binary long
// division.
func mod128(aHi, aLo, bHi, bLo uint64) (uint64, uint64) {
	if bHi == 0 {
		// Divide 128 by 64 using bits.Div64 in two steps.
		if bLo == 0 {
			panic("rational: mod128 by zero")
		}
		r := aHi % bLo
		_, rem := bits.Div64(r, aLo, bLo)
		return 0, rem
	}
	// b has a high word: at most one subtraction loop step count bounded by 64.
	// Use shift-subtract long division.
	rHi, rLo := aHi, aLo
	shift := leading128(bHi, bLo) - leading128(rHi, rLo)
	if shift < 0 {
		return rHi, rLo
	}
	sbHi, sbLo := shl128(bHi, bLo, uint(shift))
	for i := shift; i >= 0; i-- {
		if cmpU128(rHi, rLo, sbHi, sbLo) >= 0 {
			rHi, rLo = subU128(rHi, rLo, sbHi, sbLo)
		}
		sbHi, sbLo = shr128(sbHi, sbLo, 1)
	}
	return rHi, rLo
}

// divmod128by128 returns a / b (quotient only) for unsigned 128-bit values,
// assuming the division is exact or truncating.
func divmod128by128(aHi, aLo, bHi, bLo uint64) (uint64, uint64) {
	if bHi == 0 && bLo == 1 {
		return aHi, aLo
	}
	qHi, qLo := uint64(0), uint64(0)
	rHi, rLo := aHi, aLo
	shift := leading128(bHi, bLo) - leading128(rHi, rLo)
	if shift < 0 {
		return 0, 0
	}
	sbHi, sbLo := shl128(bHi, bLo, uint(shift))
	for i := shift; i >= 0; i-- {
		qHi, qLo = shl128(qHi, qLo, 1)
		if cmpU128(rHi, rLo, sbHi, sbLo) >= 0 {
			rHi, rLo = subU128(rHi, rLo, sbHi, sbLo)
			qLo |= 1
		}
		sbHi, sbLo = shr128(sbHi, sbLo, 1)
	}
	return qHi, qLo
}

func leading128(hi, lo uint64) int {
	if hi != 0 {
		return bits.LeadingZeros64(hi)
	}
	return 64 + bits.LeadingZeros64(lo)
}

func shl128(hi, lo uint64, n uint) (uint64, uint64) {
	if n == 0 {
		return hi, lo
	}
	if n >= 128 {
		return 0, 0
	}
	if n >= 64 {
		return lo << (n - 64), 0
	}
	return hi<<n | lo>>(64-n), lo << n
}

func shr128(hi, lo uint64, n uint) (uint64, uint64) {
	if n == 0 {
		return hi, lo
	}
	if n >= 128 {
		return 0, 0
	}
	if n >= 64 {
		return 0, hi >> (n - 64)
	}
	return hi >> n, lo>>n | hi<<(64-n)
}

func cmpU128(aHi, aLo, bHi, bLo uint64) int {
	if aHi != bHi {
		if aHi < bHi {
			return -1
		}
		return 1
	}
	if aLo != bLo {
		if aLo < bLo {
			return -1
		}
		return 1
	}
	return 0
}

func subU128(aHi, aLo, bHi, bLo uint64) (uint64, uint64) {
	lo, borrow := bits.Sub64(aLo, bLo, 0)
	hi, _ := bits.Sub64(aHi, bHi, borrow)
	return hi, lo
}
