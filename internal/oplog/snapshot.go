package oplog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"partfeas/internal/faultinject"
)

// Snapshots are single files snap-<op index, 16 hex digits>.pfs holding
// an opaque payload (the service's serialized store state) after all ops
// with index <= the file's index were applied:
//
//	[magic: 8][index: uint64 LE][payload length: uint32 LE]
//	[CRC-32C of payload: uint32 LE][payload]
//
// They are written atomically (temp + fsync + rename + dir fsync), so a
// crash mid-write leaves only a .tmp file, which loading ignores.
const (
	snapMagic     = "PFSNAP01"
	snapHeaderLen = 24
)

// WriteSnapshot atomically persists payload as the snapshot for index.
// Snapshots are read back whole by name, so the per-record WAL
// allocation bound (maxPayloadLen) does not apply here; the only limit
// is the format's uint32 length field — a large store must still be
// able to snapshot, or the WAL would grow without bound.
func WriteSnapshot(dir string, index uint64, payload []byte) error {
	if uint64(len(payload)) > math.MaxUint32 {
		return fmt.Errorf("oplog: snapshot payload %d bytes exceeds format limit", len(payload))
	}
	buf := make([]byte, 0, snapHeaderLen+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, index)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)

	final := filepath.Join(dir, snapshotName(index))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: snapshot: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("oplog: snapshot: %w", werr)
	}
	// Injected crash after the temp file is durable but before the
	// rename: recovery must fall back to the previous snapshot.
	if plan, ok := faultinject.CheckErr(faultinject.SiteSnapshotWrite, int64(index)); ok {
		return fmt.Errorf("oplog: snapshot: %w", injectedErr(plan.Err))
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oplog: snapshot: %w", err)
	}
	return syncDir(dir)
}

// LoadSnapshot returns the newest snapshot that passes validation, or
// index 0 with a nil payload when none exists. Corrupt snapshots are
// skipped (counted in skipped) and the next older one is tried — the
// fallback the recovery tests exercise by flipping bytes in the newest
// file. Replay gap detection catches the case where every snapshot is
// damaged but the WAL no longer reaches back to index 1.
func LoadSnapshot(dir string) (index uint64, payload []byte, skipped int, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, 0, nil
		}
		return 0, nil, 0, fmt.Errorf("oplog: load snapshot: %w", err)
	}
	var idxs []uint64
	for _, e := range ents {
		if idx, ok := parseSnapshotName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	for _, idx := range idxs {
		payload, err := readSnapshot(filepath.Join(dir, snapshotName(idx)), idx)
		if err != nil {
			skipped++
			continue
		}
		return idx, payload, skipped, nil
	}
	return 0, nil, skipped, nil
}

// PruneSnapshots removes all but the newest keep snapshots. The service
// keeps two: the newest for fast recovery, the previous as the fallback
// — and truncates the WAL only through the OLDER one, so the newest is
// always re-derivable from disk.
func PruneSnapshots(dir string, keep int) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("oplog: prune snapshots: %w", err)
	}
	var idxs []uint64
	for _, e := range ents {
		if idx, ok := parseSnapshotName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	for _, idx := range idxs[min(keep, len(idxs)):] {
		if err := os.Remove(filepath.Join(dir, snapshotName(idx))); err != nil {
			return fmt.Errorf("oplog: prune snapshots: %w", err)
		}
	}
	return nil
}

func readSnapshot(path string, wantIndex uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oplog: read snapshot: %w", err)
	}
	if len(data) < snapHeaderLen {
		return nil, fmt.Errorf("%w: snapshot header truncated", ErrCorrupt)
	}
	if string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, data[:8])
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != wantIndex {
		return nil, fmt.Errorf("%w: snapshot index %d does not match name (%d)", ErrCorrupt, got, wantIndex)
	}
	n := binary.LittleEndian.Uint32(data[16:])
	crc := binary.LittleEndian.Uint32(data[20:])
	if int(n) != len(data)-snapHeaderLen {
		return nil, fmt.Errorf("%w: snapshot payload length %d, have %d bytes", ErrCorrupt, n, len(data)-snapHeaderLen)
	}
	payload := data[snapHeaderLen:]
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, fmt.Errorf("%w: snapshot checksum %08x, want %08x", ErrCorrupt, got, crc)
	}
	return payload, nil
}

func snapshotName(index uint64) string {
	return fmt.Sprintf("snap-%016x.pfs", index)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".pfs") {
		return 0, false
	}
	var idx uint64
	if _, err := fmt.Sscanf(name, "snap-%016x.pfs", &idx); err != nil {
		return 0, false
	}
	return idx, true
}
