package oplog

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWALReader feeds arbitrary bytes to the full segment-reading path
// (Open with its torn-tail truncation, then Replay). Invariants:
//
//  1. the reader never panics, whatever the bytes;
//  2. every op Replay surfaces survives an encode/decode round trip —
//     damage is either rejected or invisible, never a mutated op;
//  3. after Open, a reopen of the same directory is clean (truncation
//     reached a stable fixed point).
func FuzzWALReader(f *testing.F) {
	// Seed with a valid segment, a truncation, and a bit flip.
	var clean []byte
	clean = append(clean, segMagic...)
	clean = binary.LittleEndian.AppendUint64(clean, 1)
	for i, op := range sampleOps() {
		op.Index = uint64(i + 1)
		clean = appendFrame(clean, &op)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		w, err := Open(dir, Options{})
		if err != nil {
			return // loud rejection is fine
		}
		var ops []Op
		err = w.Replay(1, func(op *Op) error {
			c := *op
			c.Machines = append([]Machine(nil), op.Machines...)
			c.Tasks = append([]Task(nil), op.Tasks...)
			ops = append(ops, c)
			return nil
		})
		w.Close()
		if err != nil {
			return
		}
		for i := range ops {
			frame := appendFrame(nil, &ops[i])
			var back Op
			if _, err := decodeFrame(frame, &back); err != nil {
				t.Fatalf("op %d does not survive re-encode: %v", i, err)
			}
			if !reflect.DeepEqual(back, ops[i]) {
				t.Fatalf("op %d unstable round trip:\n got %+v\nwant %+v", i, back, ops[i])
			}
			if ops[i].Index != uint64(i+1) {
				t.Fatalf("op %d carries index %d", i, ops[i].Index)
			}
		}
		// Idempotence: Open already truncated; a second Open must
		// accept the directory and replay the identical sequence.
		w2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after truncation failed: %v", err)
		}
		count := 0
		err = w2.Replay(1, func(*Op) error { count++; return nil })
		w2.Close()
		if err != nil || count != len(ops) {
			t.Fatalf("reopen replayed %d ops (err %v), want %d", count, err, len(ops))
		}
	})
}
