package oplog

import (
	"testing"
	"time"
)

// BenchmarkWALAppend measures the acknowledgement-path cost of a durable
// append: "group" is the service default (write per append, fsync on a
// background interval — the loss window documented in the README),
// "every" fsyncs inside each append (no loss window).
func BenchmarkWALAppend(b *testing.B) {
	op := Op{
		Type: TypeAdmit, Session: "s-1",
		Tasks: []Task{{Name: "bench-task", WCET: 2, Period: 20, Deadline: 20}},
	}
	run := func(b *testing.B, opts Options) {
		w, err := Open(b.TempDir(), opts)
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Append(&op); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	}
	b.Run("group", func(b *testing.B) { run(b, Options{FsyncInterval: 5 * time.Millisecond}) })
	b.Run("every", func(b *testing.B) { run(b, Options{}) })
}
