package oplog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"partfeas/internal/faultinject"
)

// sampleOps exercises every op type and every field at least once.
func sampleOps() []Op {
	return []Op{
		{
			Type: TypeCreate, Session: "s-1", Alpha: 0.85, Scheduler: "edf",
			Machines:  []Machine{{Name: "m0", Speed: 1}, {Speed: 2.5}, {Name: "m2", Speed: 0.75}},
			Placement: "arrival", DeadlineModel: "constrained", Force: true,
			Tasks: []Task{{Name: "t0", WCET: 2, Period: 10, Deadline: 8}},
		},
		{Type: TypeAdmit, Session: "s-1", Tasks: []Task{{Name: "t1", WCET: 2, Period: 20, Deadline: 20}}},
		{
			Type: TypeAdmitBatch, Session: "s-1", BatchMode: "best_effort",
			Tasks: []Task{{Name: "t2", WCET: 1, Period: 5}, {Name: "t3", WCET: 3, Period: 30}},
		},
		{Type: TypeUpdateWCET, Session: "s-1", Target: 1, WCET: 4},
		{Type: TypeRemove, Session: "s-1", Target: 0},
		{Type: TypeRepartition, Session: "s-1", Target: 16},
		{Type: TypeDestroy, Session: "s-1"},
		{Type: TypeMigrateOut, Session: "s-1", Peer: "http://127.0.0.1:9001", Epoch: 3, Snapshot: []byte(`{"id":"s-1"}`)},
		{Type: TypeMigrateIn, Session: "s-1", Peer: "http://127.0.0.1:9002", Epoch: 3, Snapshot: []byte{0, 1, 2, 255}},
	}
}

// TestDecodeV1Compat proves pre-cluster (version 1) records still decode:
// a v1 payload is byte-for-byte a v2 payload with zero migration fields
// minus the three trailing zero bytes, with the version byte rewritten.
func TestDecodeV1Compat(t *testing.T) {
	for _, want := range sampleOps() {
		if want.Type == TypeMigrateOut || want.Type == TypeMigrateIn {
			continue // these types never existed in v1 logs
		}
		want.Index = 7
		want.Epoch, want.Peer, want.Snapshot = 0, "", nil
		payload := appendPayload(nil, &want)
		v1 := append([]byte(nil), payload[:len(payload)-3]...)
		v1[0] = recordVersionV1
		var got Op
		if err := decodePayload(v1, &got); err != nil {
			t.Fatalf("%s: decode v1: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: v1 round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleOps() {
		want.Index = 42
		frame := appendFrame(nil, &want)
		var got Op
		n, err := decodeFrame(frame, &got)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		if n != len(frame) {
			t.Errorf("%s: consumed %d of %d bytes", want.Type, n, len(frame))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	op := Op{Type: TypeAdmit, Session: "s"}
	payload := appendPayload(nil, &op)
	payload = append(payload, 0)
	if err := decodePayload(payload, &Op{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	frame := appendFrame(nil, &Op{Type: TypeAdmit, Session: "session"})
	for cut := 0; cut < len(frame); cut++ {
		if _, err := decodeFrame(frame[:cut], &Op{}); !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: err = %v, want ErrShortRecord or ErrCorrupt", cut, err)
		}
	}
}

// appendAll appends ops, asserting assigned indices are sequential from
// the WAL's starting next index.
func appendAll(t *testing.T, w *WAL, ops []Op) {
	t.Helper()
	start := w.NextIndex()
	for i := range ops {
		idx, err := w.Append(&ops[i])
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if idx != start+uint64(i) {
			t.Fatalf("append %d: index %d, want %d", i, idx, start+uint64(i))
		}
	}
}

// replayAll reopens dir and returns every op from index start.
func replayAll(t *testing.T, dir string, start uint64, opts Options) []Op {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	var got []Op
	if err := w.Replay(start, func(op *Op) error {
		c := *op
		c.Machines = append([]Machine(nil), op.Machines...)
		c.Tasks = append([]Task(nil), op.Tasks...)
		got = append(got, c)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestWALAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := sampleOps()
	appendAll(t, w, ops)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := replayAll(t, dir, 1, Options{})
	if len(got) != len(ops) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		want := ops[i]
		want.Index = uint64(i + 1)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("op %d:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256}
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := w.Append(&Op{Type: TypeAdmit, Session: "s-1", Tasks: []Task{{Name: "task", WCET: 1, Period: 10}}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("no rotation happened: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, 1, opts)
	if len(got) != n {
		t.Fatalf("replayed %d ops across segments, want %d", len(got), n)
	}
	for i, op := range got {
		if op.Index != uint64(i+1) {
			t.Fatalf("op %d has index %d", i, op.Index)
		}
	}
}

func TestWALGroupCommitVisibleAfterReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{FsyncInterval: time.Hour}) // ticker never fires
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, sampleOps())
	if st := w.Stats(); st.Fsyncs != 0 {
		t.Fatalf("fsyncs = %d before interval elapsed, want 0", st.Fsyncs)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Fsyncs != 1 {
		t.Fatalf("fsyncs = %d after explicit Sync, want 1", st.Fsyncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir, 1, Options{}); len(got) != len(sampleOps()) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(sampleOps()))
	}
}

func TestWALStartOptionForEmptyDir(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Start: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	idx, err := w.Append(&Op{Type: TypeDestroy, Session: "s"})
	if err != nil || idx != 17 {
		t.Fatalf("first index = %d, err %v; want 17", idx, err)
	}
}

func TestTruncateThroughAndGapDetection(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256}
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := w.Append(&Op{Type: TypeAdmit, Session: "s-1", Tasks: []Task{{Name: "task", WCET: 1, Period: 10}}}); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := w.Stats().Segments
	if segsBefore < 3 {
		t.Fatalf("want >=3 segments, got %d", segsBefore)
	}
	// Find a cut point that actually drops the first segment.
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	cut := segs[1].first // all of segment 0 is <= cut-1... use second seg start
	if err := w.TruncateThrough(cut - 1); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Segments; got != segsBefore-1 {
		t.Fatalf("segments after truncate = %d, want %d", got, segsBefore-1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay from the truncation point succeeds...
	got := replayAll(t, dir, cut, opts)
	if len(got) != n-int(cut-1) {
		t.Fatalf("replayed %d ops from %d, want %d", len(got), cut, n-int(cut-1))
	}
	// ...but replay from 1 reports the gap loudly.
	w2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	err = w2.Replay(1, func(*Op) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("replay across truncated history: err = %v, want gap error", err)
	}
}

// TestTornWriteCorpus is the satellite corpus: a WAL whose final record
// is truncated at every byte offset, and bit-flipped at every byte of
// the final record, must either recover exactly to the previous op or
// fail loudly — never surface a half-applied or altered op.
func TestTornWriteCorpus(t *testing.T) {
	base := t.TempDir()
	w, err := Open(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := sampleOps()
	appendAll(t, w, ops)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(base)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %d (%v)", len(segs), err)
	}
	clean, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record's start offset.
	off := segHeaderLen
	var op Op
	for i := 0; i < len(ops)-1; i++ {
		n, err := decodeFrame(clean[off:], &op)
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	lastStart := off

	check := func(t *testing.T, data []byte, wantFull bool) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0].path)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, Options{})
		if err != nil {
			return // loud failure is acceptable
		}
		defer w.Close()
		var got []Op
		err = w.Replay(1, func(o *Op) error {
			c := *o
			c.Machines = append([]Machine(nil), o.Machines...)
			c.Tasks = append([]Task(nil), o.Tasks...)
			got = append(got, c)
			return nil
		})
		if err != nil {
			return // loud failure is acceptable
		}
		wantN := len(ops) - 1
		if wantFull {
			wantN = len(ops)
		}
		if len(got) != wantN {
			t.Fatalf("recovered %d ops, want %d", len(got), wantN)
		}
		for i, g := range got {
			want := ops[i]
			want.Index = uint64(i + 1)
			if !reflect.DeepEqual(g, want) {
				t.Fatalf("op %d altered by damage:\n got %+v\nwant %+v", i, g, want)
			}
		}
		if w.NextIndex() != uint64(wantN+1) {
			t.Fatalf("next index %d after recovery, want %d", w.NextIndex(), wantN+1)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := lastStart; cut < len(clean); cut++ {
			data := append([]byte(nil), clean[:cut]...)
			check(t, data, false)
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for pos := lastStart; pos < len(clean); pos++ {
			data := append([]byte(nil), clean...)
			data[pos] ^= 0x40
			check(t, data, false)
		}
	})
	t.Run("intact", func(t *testing.T) {
		check(t, clean, true)
	})
}

func TestMidHistoryCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256}
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append(&Op{Type: TypeAdmit, Session: "s-1", Tasks: []Task{{Name: "task", WCET: 1, Period: 10}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %d (%v)", len(segs), err)
	}
	// Damage a record body in the FIRST (non-tail) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+frameHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, opts); err == nil {
		t.Fatal("Open accepted mid-history corruption")
	}
}

func TestSnapshotWriteLoadFallbackPrune(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 10, []byte("state@10")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 20, []byte("state@20")); err != nil {
		t.Fatal(err)
	}
	idx, payload, skipped, err := LoadSnapshot(dir)
	if err != nil || idx != 20 || string(payload) != "state@20" || skipped != 0 {
		t.Fatalf("load = (%d, %q, %d, %v), want (20, state@20, 0, nil)", idx, payload, skipped, err)
	}
	// Corrupt the newest: loader must fall back to the older one.
	path := filepath.Join(dir, snapshotName(20))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	idx, payload, skipped, err = LoadSnapshot(dir)
	if err != nil || idx != 10 || string(payload) != "state@10" || skipped != 1 {
		t.Fatalf("fallback load = (%d, %q, %d, %v), want (10, state@10, 1, nil)", idx, payload, skipped, err)
	}
	// Prune keeps the newest two files (even though one is damaged —
	// pruning is by name, validation happens at load).
	if err := WriteSnapshot(dir, 30, []byte("state@30")); err != nil {
		t.Fatal(err)
	}
	if err := PruneSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(10))); !os.IsNotExist(err) {
		t.Fatalf("snapshot 10 survived prune: %v", err)
	}
	idx, payload, _, err = LoadSnapshot(dir)
	if err != nil || idx != 30 || string(payload) != "state@30" {
		t.Fatalf("post-prune load = (%d, %q, %v)", idx, payload, err)
	}
}

// TestSnapshotLargerThanRecordCap pins that the WAL's per-record
// allocation bound (maxPayloadLen) does not apply to snapshot files: a
// store whose serialized state exceeds it must still snapshot, or the
// WAL would grow without bound once the store is large enough.
func TestSnapshotLargerThanRecordCap(t *testing.T) {
	if testing.Short() {
		t.Skip("writes a >64 MiB snapshot")
	}
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("0123456789abcdef"), maxPayloadLen/16+1)
	if err := WriteSnapshot(dir, 7, payload); err != nil {
		t.Fatalf("WriteSnapshot(%d bytes): %v", len(payload), err)
	}
	idx, got, skipped, err := LoadSnapshot(dir)
	if err != nil || idx != 7 || skipped != 0 {
		t.Fatalf("load = (%d, _, %d, %v), want (7, _, 0, nil)", idx, skipped, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large snapshot payload corrupted on round-trip")
	}
}

func TestLoadSnapshotEmptyDir(t *testing.T) {
	idx, payload, skipped, err := LoadSnapshot(t.TempDir())
	if idx != 0 || payload != nil || skipped != 0 || err != nil {
		t.Fatalf("empty dir load = (%d, %v, %d, %v)", idx, payload, skipped, err)
	}
	idx, payload, _, err = LoadSnapshot(filepath.Join(t.TempDir(), "missing"))
	if idx != 0 || payload != nil || err != nil {
		t.Fatalf("missing dir load = (%d, %v, %v)", idx, payload, err)
	}
}

// --- fault injection at the WAL layer ---

func TestInjectedAppendTornWrite(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, sampleOps()[:3])
	off := faultinject.Activate(faultinject.Plan{
		Site: faultinject.SiteWALAppend, N: 4, Partial: 5,
	})
	defer off()
	if _, err := w.Append(&Op{Type: TypeRemove, Session: "s-1", Target: 0}); err == nil {
		t.Fatal("injected append fault did not surface")
	}
	// Sticky: the WAL is failed now.
	if _, err := w.Append(&Op{Type: TypeDestroy, Session: "s-1"}); err == nil {
		t.Fatal("WAL accepted append after failure")
	}
	if !w.Stats().Failed {
		t.Fatal("Stats.Failed = false after append failure")
	}
	w.Close()
	// The 5 torn bytes on disk must vanish on reopen.
	got := replayAll(t, dir, 1, Options{})
	if len(got) != 3 {
		t.Fatalf("recovered %d ops after torn write, want 3", len(got))
	}
}

func TestInjectedAppendFullWriteUnacked(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, sampleOps()[:2])
	off := faultinject.Activate(faultinject.Plan{
		Site: faultinject.SiteWALAppend, N: 3, Partial: 1 << 20,
	})
	defer off()
	if _, err := w.Append(&Op{Type: TypeRemove, Session: "s-1", Target: 0}); err == nil {
		t.Fatal("injected append fault did not surface")
	}
	w.Close()
	// The record was fully written before the injected failure: it is
	// durable but unacknowledged, so recovery MAY legitimately see it.
	got := replayAll(t, dir, 1, Options{})
	if len(got) != 3 {
		t.Fatalf("recovered %d ops, want 3 (durable-but-unacked record)", len(got))
	}
}

func TestInjectedFsyncFailureLatches(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{}) // fsync per append
	if err != nil {
		t.Fatal(err)
	}
	off := faultinject.Activate(faultinject.Plan{Site: faultinject.SiteWALFsync, Nth: 2})
	defer off()
	if _, err := w.Append(&Op{Type: TypeCreate, Session: "s-1", Scheduler: "edf", Machines: []Machine{{Speed: 1}}, Alpha: 1}); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := w.Append(&Op{Type: TypeDestroy, Session: "s-1"}); err == nil {
		t.Fatal("injected fsync fault did not surface")
	}
	if !w.Stats().Failed {
		t.Fatal("fsync failure did not latch")
	}
	w.Close()
	// Both records were written; both may be recovered.
	if got := replayAll(t, dir, 1, Options{}); len(got) != 2 {
		t.Fatalf("recovered %d ops, want 2", len(got))
	}
}

func TestInjectedRotateFailure(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	off := faultinject.Activate(faultinject.Plan{Site: faultinject.SiteWALRotate, Nth: 1})
	defer off()
	var acked int
	for i := 0; i < 20; i++ {
		if _, err := w.Append(&Op{Type: TypeAdmit, Session: "s-1", Tasks: []Task{{Name: "task", WCET: 1, Period: 10}}}); err != nil {
			break
		}
		acked++
	}
	if acked == 20 {
		t.Fatal("rotate fault never fired")
	}
	w.Close()
	if got := replayAll(t, dir, 1, Options{}); len(got) != acked {
		t.Fatalf("recovered %d ops, want the %d acked", len(got), acked)
	}
}

func TestInjectedSnapshotCrashFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 5, []byte("state@5")); err != nil {
		t.Fatal(err)
	}
	off := faultinject.Activate(faultinject.Plan{Site: faultinject.SiteSnapshotWrite, N: 9})
	defer off()
	if err := WriteSnapshot(dir, 9, []byte("state@9")); err == nil {
		t.Fatal("injected snapshot crash did not surface")
	}
	idx, payload, _, err := LoadSnapshot(dir)
	if err != nil || idx != 5 || string(payload) != "state@5" {
		t.Fatalf("load after crashed snapshot = (%d, %q, %v), want (5, state@5, nil)", idx, payload, err)
	}
}
