package oplog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"partfeas/internal/faultinject"
)

// Segment files are named wal-<first op index, 16 hex digits>.log and
// start with a 16-byte header: an 8-byte magic and the first index again
// as fixed 64-bit LE (so a renamed file is detected).
const (
	segMagic     = "PFWALOG1"
	segHeaderLen = 16

	defaultSegmentBytes = 4 << 20
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("oplog: wal closed")

// Options configures a WAL.
type Options struct {
	// FsyncInterval selects the commit mode. Zero means fsync on every
	// append (no loss window, slowest). Positive means group commit: the
	// write syscall still happens inside every Append — so a process
	// crash loses nothing acknowledged — but fsync runs on a background
	// ticker, so a power loss can drop up to one interval of
	// acknowledged ops. The service documents this as the loss window.
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (default 4 MiB). A segment
	// may exceed it by at most one record.
	SegmentBytes int64
	// Start is the index the first op gets when the directory has no
	// segments (default 1). Recovery passes snapshotIndex+1 so a WAL
	// whose segments were fully truncated resumes at the right index.
	Start uint64
}

// Stats is a point-in-time snapshot of WAL counters, exported by the
// service as the partfeas_wal_* metrics family.
type Stats struct {
	Appends      uint64 // records appended this process lifetime
	Fsyncs       uint64 // fsync calls issued
	Rotations    uint64 // segment rotations
	NextIndex    uint64 // index the next append will get
	SegmentBytes int64  // size of the active segment
	Segments     int    // live segment files
	Failed       bool   // sticky failure latched (WAL is read-only)
}

// WAL is an append-only segmented write-ahead log. All methods are safe
// for concurrent use, except Replay, which must complete before the
// first concurrent Append.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes written to the active segment
	next     uint64   // index of the next record
	dirty    bool     // unsynced writes pending
	failed   error    // sticky failure; WAL refuses writes once set
	closed   bool
	buf      []byte // frame scratch
	segments int

	appends   uint64
	fsyncs    uint64
	rotations uint64

	stopSync chan struct{}
	syncDone chan struct{}
}

type segInfo struct {
	path  string
	first uint64
}

// Open validates the WAL directory, truncates a torn tail on the last
// segment, and returns a writer positioned after the last intact record.
// Corruption anywhere except the tail of the last segment is a loud
// error: it means history was damaged, and replay from it would be a lie.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.Start == 0 {
		opts.Start = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oplog: open: %w", err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, segments: len(segs)}
	if len(segs) == 0 {
		if err := w.createSegmentLocked(opts.Start); err != nil {
			return nil, err
		}
		w.next = opts.Start
	} else {
		next := segs[0].first
		for i, seg := range segs {
			if seg.first != next {
				return nil, fmt.Errorf("oplog: segment %s starts at index %d, want %d (gap)", filepath.Base(seg.path), seg.first, next)
			}
			end, last, err := scanSegment(seg, i == len(segs)-1)
			if err != nil {
				return nil, err
			}
			next = end
			if i == len(segs)-1 {
				f, err := os.OpenFile(seg.path, os.O_RDWR, 0)
				if err != nil {
					return nil, fmt.Errorf("oplog: open: %w", err)
				}
				if err := f.Truncate(last); err != nil {
					f.Close()
					return nil, fmt.Errorf("oplog: truncate torn tail: %w", err)
				}
				if _, err := f.Seek(last, 0); err != nil {
					f.Close()
					return nil, fmt.Errorf("oplog: open: %w", err)
				}
				w.f, w.size = f, last
			}
		}
		w.next = next
	}
	if opts.FsyncInterval > 0 {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop(opts.FsyncInterval)
	}
	return w, nil
}

// scanSegment walks one segment's records, verifying checksums and index
// continuity. It returns the index after the last intact record and the
// byte offset where intact data ends. Damage is tolerated (reported via
// the returned offset, for truncation) only when tail is true.
func scanSegment(seg segInfo, tail bool) (next uint64, end int64, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("oplog: open: %w", err)
	}
	if err := checkSegHeader(data, seg.first); err != nil {
		return 0, 0, fmt.Errorf("oplog: segment %s: %w", filepath.Base(seg.path), err)
	}
	off := int64(segHeaderLen)
	idx := seg.first
	var op Op
	for int(off) < len(data) {
		n, err := decodeFrame(data[off:], &op)
		if err != nil {
			if tail && (errors.Is(err, ErrShortRecord) || errors.Is(err, ErrCorrupt)) {
				return idx, off, nil // torn tail: caller truncates here
			}
			return 0, 0, fmt.Errorf("oplog: segment %s offset %d: %w", filepath.Base(seg.path), off, err)
		}
		if op.Index != idx {
			return 0, 0, fmt.Errorf("oplog: segment %s offset %d: record index %d, want %d", filepath.Base(seg.path), off, op.Index, idx)
		}
		idx++
		off += int64(n)
	}
	return idx, off, nil
}

// Append assigns the next index to op, encodes it, and writes the frame
// to the active segment. When it returns nil the record has reached the
// file (a process crash cannot lose it); with FsyncInterval 0 it has
// also been fsynced. This return is the service's acknowledgement point.
// Any write or sync failure latches the WAL failed: all later appends
// are refused, which the service surfaces as degraded read-only mode.
func (w *WAL) Append(op *Op) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	if w.closed {
		return 0, ErrClosed
	}
	idx := w.next
	op.Index = idx
	w.buf = appendFrame(w.buf[:0], op)
	frame := w.buf
	if w.size+int64(len(frame)) > w.opts.SegmentBytes && w.size > segHeaderLen {
		if err := w.rotateLocked(idx); err != nil {
			return 0, err
		}
	}
	if plan, ok := faultinject.CheckErr(faultinject.SiteWALAppend, int64(idx)); ok {
		if plan.Partial > 0 {
			nb := plan.Partial
			if nb > len(frame) {
				nb = len(frame)
			}
			w.f.Write(frame[:nb]) // the simulated torn write; error irrelevant
		}
		return 0, w.fail("append", injectedErr(plan.Err))
	}
	if _, err := w.f.Write(frame); err != nil {
		return 0, w.fail("append", err)
	}
	w.size += int64(len(frame))
	w.next = idx + 1
	w.dirty = true
	w.appends++
	if w.opts.FsyncInterval == 0 {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// Sync forces an fsync of any pending writes. The graceful-drain path
// calls it to flush the group-commit window before snapshotting.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.failed != nil {
		return w.failed
	}
	if !w.dirty {
		return nil
	}
	if plan, ok := faultinject.CheckErr(faultinject.SiteWALFsync, int64(w.next-1)); ok {
		return w.fail("fsync", injectedErr(plan.Err))
	}
	if err := w.f.Sync(); err != nil {
		return w.fail("fsync", err)
	}
	w.dirty = false
	w.fsyncs++
	return nil
}

func (w *WAL) syncLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	defer close(w.syncDone)
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// rotateLocked syncs and closes the active segment and starts a new one
// whose first index is idx. Old records are always durable before any
// record lands in the new segment.
func (w *WAL) rotateLocked(idx uint64) error {
	if plan, ok := faultinject.CheckErr(faultinject.SiteWALRotate, int64(idx)); ok {
		return w.fail("rotate", injectedErr(plan.Err))
	}
	if w.dirty {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return w.fail("rotate", err)
	}
	w.f = nil
	if err := w.createSegmentLocked(idx); err != nil {
		w.failed = err
		return err
	}
	w.rotations++
	return nil
}

// createSegmentLocked creates wal-<first>.log with its header, fsyncs
// it, and fsyncs the directory so the file name itself is durable.
func (w *WAL) createSegmentLocked(first uint64) error {
	path := filepath.Join(w.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: create segment: %w", err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("oplog: create segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("oplog: create segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, segHeaderLen
	w.segments++
	return nil
}

// Replay streams every intact record with index >= start, in order,
// through fn. It must run before any concurrent Append. A first
// available record above start is a gap — history the snapshot does not
// cover was truncated — and fails loudly rather than replaying a lie.
func (w *WAL) Replay(start uint64, fn func(*Op) error) error {
	segs, err := segmentFiles(w.dir)
	if err != nil {
		return err
	}
	expected := start
	var op Op
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("oplog: replay: %w", err)
		}
		if err := checkSegHeader(data, seg.first); err != nil {
			return fmt.Errorf("oplog: segment %s: %w", filepath.Base(seg.path), err)
		}
		off := segHeaderLen
		for off < len(data) {
			n, err := decodeFrame(data[off:], &op)
			if err != nil {
				// Open already truncated the torn tail; damage here is
				// either a new IO error or mid-history corruption.
				return fmt.Errorf("oplog: replay: segment %s offset %d: %w", filepath.Base(seg.path), off, err)
			}
			off += n
			if op.Index < start {
				continue
			}
			if op.Index != expected {
				return fmt.Errorf("oplog: replay: record index %d, want %d (gap)", op.Index, expected)
			}
			faultinject.Hit(faultinject.SiteWALReplay, int64(op.Index))
			if err := fn(&op); err != nil {
				return fmt.Errorf("oplog: replay op %d (%s): %w", op.Index, op.Type, err)
			}
			expected++
		}
	}
	return nil
}

// TruncateThrough removes whole segments whose records all have index
// <= index. The active segment is never removed. The caller invokes it
// after a snapshot at `index` is durable — and, because two snapshots
// are retained, passes the OLDER snapshot's index, so the newest
// snapshot stays re-derivable from disk even if it later turns corrupt.
func (w *WAL) TruncateThrough(index uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := segmentFiles(w.dir)
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].first > index+1 {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return fmt.Errorf("oplog: truncate: %w", err)
		}
		w.segments--
		removed = true
	}
	if removed {
		return syncDir(w.dir)
	}
	return nil
}

// NextIndex returns the index the next Append will assign.
func (w *WAL) NextIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Stats returns current counters for the metrics exporter.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Appends:      w.appends,
		Fsyncs:       w.fsyncs,
		Rotations:    w.rotations,
		NextIndex:    w.next,
		SegmentBytes: w.size,
		Segments:     w.segments,
		Failed:       w.failed != nil,
	}
}

// Close stops the group-commit ticker, issues a final fsync, and closes
// the active segment. The final sync error is returned so a drain can
// report an incomplete flush.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	stop := w.stopSync
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.syncDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	if err != nil && !errors.Is(err, w.failed) {
		return err
	}
	return err
}

// Crash closes the WAL abruptly, issuing no final fsync — exactly the
// on-disk state a process kill leaves behind (completed write syscalls
// survive, the group-commit window may not). For crash-simulation
// harnesses only.
func (w *WAL) Crash() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	stop := w.stopSync
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.syncDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// fail latches the sticky failure and returns it.
func (w *WAL) fail(stage string, err error) error {
	w.failed = fmt.Errorf("oplog: %s: %w", stage, err)
	return w.failed
}

func injectedErr(err error) error {
	if err != nil {
		return err
	}
	return errors.New("injected failure")
}

func segmentName(first uint64) string {
	return fmt.Sprintf("wal-%016x.log", first)
}

func segmentFiles(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("oplog: list segments: %w", err)
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(name, "wal-%016x.log", &first); err != nil {
			return nil, fmt.Errorf("oplog: unrecognized segment name %q", name)
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

func checkSegHeader(data []byte, first uint64) error {
	if len(data) < segHeaderLen {
		return fmt.Errorf("%w: segment header truncated", ErrCorrupt)
	}
	if string(data[:8]) != segMagic {
		return fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, data[:8])
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != first {
		return fmt.Errorf("%w: header first index %d does not match name (%d)", ErrCorrupt, got, first)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("oplog: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("oplog: sync dir: %w", err)
	}
	return nil
}
