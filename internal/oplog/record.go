// Package oplog provides the durability layer for the admission service:
// a versioned, checksummed binary record format for every session-mutating
// operation, an append-only segmented write-ahead log with group-commit
// fsync, and atomic snapshots keyed by last-applied op index.
//
// The contract with the layer above is log-then-apply: a mutation is
// encoded as an Op, appended to the WAL (the acknowledgement point), and
// only then applied to in-memory state. Because every mutation of the
// online engine is deterministic, replaying the op sequence through the
// same code paths reconstructs byte-identical state — which is what the
// recovery tests assert.
//
// On disk a record is framed as
//
//	[payload length: uint32 LE][CRC-32C of payload: uint32 LE][payload]
//
// and the payload itself starts with a version byte and an op-type byte,
// followed by the op fields in a fixed order (uvarints, length-prefixed
// strings, IEEE-754 bit patterns as fixed 64-bit LE). Every field is
// always present regardless of op type; the cost is a few bytes per
// record and the payoff is a single codec with no per-type branching to
// keep in sync.
package oplog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Type identifies which session mutation a record describes.
type Type uint8

// The op types. Values are part of the on-disk format: never reorder.
const (
	typeInvalid Type = iota
	// TypeCreate records a session creation, including the id the store
	// assigned, so replay reconstructs identical ids.
	TypeCreate
	// TypeAdmit records a single task admission (Tasks has one entry).
	TypeAdmit
	// TypeAdmitBatch records a batch admission (including coalesced
	// single admits, which commit as one best-effort batch).
	TypeAdmitBatch
	// TypeRemove records a task removal; Target is the task index.
	TypeRemove
	// TypeUpdateWCET records a WCET update; Target (task index) and WCET.
	TypeUpdateWCET
	// TypeRepartition records an applied repartition plan. Replaying it
	// re-plans and re-applies, which is deterministic for a given state.
	TypeRepartition
	// TypeDestroy records a session deletion.
	TypeDestroy
	// TypeMigrateOut records a session's ownership handoff to another
	// replica (Peer), fencing it locally. Snapshot carries the session's
	// final encoded state so a crashed source can re-drive the transfer
	// idempotently; Epoch is the ownership epoch the destination assumes.
	TypeMigrateOut
	// TypeMigrateIn records a session's arrival from another replica:
	// Snapshot is the post-replay state the destination activated, Epoch
	// the ownership epoch it now holds.
	TypeMigrateIn

	typeMax
)

func (t Type) String() string {
	switch t {
	case TypeCreate:
		return "create"
	case TypeAdmit:
		return "admit"
	case TypeAdmitBatch:
		return "admit-batch"
	case TypeRemove:
		return "remove"
	case TypeUpdateWCET:
		return "update-wcet"
	case TypeRepartition:
		return "repartition"
	case TypeDestroy:
		return "destroy"
	case TypeMigrateOut:
		return "migrate-out"
	case TypeMigrateIn:
		return "migrate-in"
	default:
		return fmt.Sprintf("oplog.Type(%d)", uint8(t))
	}
}

// Task is one task as it appears inside an op: the admission parameters,
// not engine state. Deadline is 0 for implicit-deadline sessions.
type Task struct {
	Name     string
	WCET     int64
	Period   int64
	Deadline int64
}

// Machine is one platform machine of a TypeCreate op.
type Machine struct {
	Name  string
	Speed float64
}

// Op is one session-mutating operation. Index is assigned by the WAL at
// append time and is strictly sequential; replay verifies the sequence.
type Op struct {
	Index   uint64
	Type    Type
	Session string

	// Create parameters.
	Alpha         float64
	Scheduler     string // "edf" | "rms"
	Machines      []Machine
	Placement     string // "sorted" | "arrival"
	DeadlineModel string // "" (implicit) | "constrained"
	Force         bool

	// Admission payloads: one entry for TypeAdmit and the initial set of
	// TypeCreate, any number for TypeAdmitBatch.
	Tasks     []Task
	BatchMode string // "" | "all_or_nothing" | "best_effort"

	// Target is the op-specific small integer: the task index for
	// TypeRemove / TypeUpdateWCET, max_moves for TypeRepartition.
	Target int
	// WCET is TypeUpdateWCET's new worst-case execution time.
	WCET int64

	// Migration fields (version 2; zero on records decoded from v1).
	// Epoch is the ownership epoch a TypeMigrateOut cedes or a
	// TypeMigrateIn assumes; Peer is the counterpart replica's base URL;
	// Snapshot is the session's encoded final state at the handoff.
	Epoch    uint64
	Peer     string
	Snapshot []byte
}

const (
	// recordVersion is what new records are written as. Version 2 added
	// the migration fields (Epoch, Peer, Snapshot); version 1 records
	// decode with those fields zero, so pre-cluster WALs replay unchanged.
	recordVersion   = 2
	recordVersionV1 = 1

	// frameHeaderLen is the length + checksum prefix of every record.
	frameHeaderLen = 8

	// maxPayloadLen bounds a single record; anything larger is treated
	// as corruption rather than attempted as an allocation.
	maxPayloadLen = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrCorrupt wraps all forms of payload damage;
// ErrShortRecord means the frame itself is incomplete (a torn tail).
var (
	ErrCorrupt     = errors.New("oplog: corrupt record")
	ErrShortRecord = errors.New("oplog: short record")
)

// appendPayload encodes op (without the frame) onto buf and returns the
// extended slice.
func appendPayload(buf []byte, op *Op) []byte {
	buf = append(buf, recordVersion, byte(op.Type))
	buf = binary.AppendUvarint(buf, op.Index)
	buf = appendString(buf, op.Session)
	buf = appendF64(buf, op.Alpha)
	buf = appendString(buf, op.Scheduler)
	buf = binary.AppendUvarint(buf, uint64(len(op.Machines)))
	for i := range op.Machines {
		buf = appendString(buf, op.Machines[i].Name)
		buf = appendF64(buf, op.Machines[i].Speed)
	}
	buf = appendString(buf, op.Placement)
	buf = appendString(buf, op.DeadlineModel)
	buf = appendBool(buf, op.Force)
	buf = binary.AppendUvarint(buf, uint64(len(op.Tasks)))
	for i := range op.Tasks {
		t := &op.Tasks[i]
		buf = appendString(buf, t.Name)
		buf = binary.AppendUvarint(buf, uint64(t.WCET))
		buf = binary.AppendUvarint(buf, uint64(t.Period))
		buf = binary.AppendUvarint(buf, uint64(t.Deadline))
	}
	buf = appendString(buf, op.BatchMode)
	buf = binary.AppendUvarint(buf, uint64(op.Target))
	buf = binary.AppendUvarint(buf, uint64(op.WCET))
	buf = binary.AppendUvarint(buf, op.Epoch)
	buf = appendString(buf, op.Peer)
	buf = binary.AppendUvarint(buf, uint64(len(op.Snapshot)))
	buf = append(buf, op.Snapshot...)
	return buf
}

// appendFrame encodes op with its length + checksum frame onto buf.
func appendFrame(buf []byte, op *Op) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = appendPayload(buf, op)
	payload := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// decodePayload decodes a verified payload into op. It rejects trailing
// bytes, unknown versions/types, and truncated fields, all as ErrCorrupt.
func decodePayload(payload []byte, op *Op) error {
	d := decoder{buf: payload}
	ver := d.byte()
	typ := d.byte()
	if d.err == nil && ver != recordVersion && ver != recordVersionV1 {
		return fmt.Errorf("%w: record version %d, want %d or %d", ErrCorrupt, ver, recordVersionV1, recordVersion)
	}
	if d.err == nil && (Type(typ) <= typeInvalid || Type(typ) >= typeMax) {
		return fmt.Errorf("%w: unknown op type %d", ErrCorrupt, typ)
	}
	op.Type = Type(typ)
	op.Index = d.uvarint()
	op.Session = d.str()
	op.Alpha = d.f64()
	op.Scheduler = d.str()
	nsp := d.uvarint()
	if d.err == nil && nsp > uint64(len(d.buf)-d.off)/9 {
		// 9 = minimum encoded machine size (1-byte name length + 8).
		return fmt.Errorf("%w: machines length %d exceeds record", ErrCorrupt, nsp)
	}
	op.Machines = nil
	if nsp > 0 && d.err == nil {
		op.Machines = make([]Machine, nsp)
		for i := range op.Machines {
			op.Machines[i].Name = d.str()
			op.Machines[i].Speed = d.f64()
		}
	}
	op.Placement = d.str()
	op.DeadlineModel = d.str()
	op.Force = d.bool()
	nt := d.uvarint()
	if d.err == nil && nt > uint64(len(d.buf)-d.off)/4 {
		// 4 = minimum encoded task size (1-byte name length + 3 uvarints).
		return fmt.Errorf("%w: tasks length %d exceeds record", ErrCorrupt, nt)
	}
	op.Tasks = nil
	if nt > 0 && d.err == nil {
		op.Tasks = make([]Task, nt)
		for i := range op.Tasks {
			t := &op.Tasks[i]
			t.Name = d.str()
			t.WCET = int64(d.uvarint())
			t.Period = int64(d.uvarint())
			t.Deadline = int64(d.uvarint())
		}
	}
	op.BatchMode = d.str()
	op.Target = int(d.uvarint())
	op.WCET = int64(d.uvarint())
	op.Epoch = 0
	op.Peer = ""
	op.Snapshot = nil
	if ver >= recordVersion {
		op.Epoch = d.uvarint()
		op.Peer = d.str()
		op.Snapshot = d.bytes()
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// decodeFrame parses one framed record from buf. It returns the number
// of bytes consumed. ErrShortRecord means buf ends mid-record (a torn
// tail if buf is the end of a segment); ErrCorrupt means the frame is
// complete but damaged.
func decodeFrame(buf []byte, op *Op) (int, error) {
	if len(buf) < frameHeaderLen {
		return 0, ErrShortRecord
	}
	n := binary.LittleEndian.Uint32(buf)
	crc := binary.LittleEndian.Uint32(buf[4:])
	if n > maxPayloadLen {
		return 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, n)
	}
	if uint32(len(buf)-frameHeaderLen) < n {
		return 0, ErrShortRecord
	}
	payload := buf[frameHeaderLen : frameHeaderLen+int(n)]
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, crc)
	}
	if err := decodePayload(payload, op); err != nil {
		return 0, err
	}
	return frameHeaderLen + int(n), nil
}

// decoder reads the fixed-order payload fields with a sticky error, so
// the field decoders stay branch-free at the call sites.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload at offset %d", ErrCorrupt, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
	d.off += int(n)
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}
