package task

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		task    Task
		wantErr bool
	}{
		{"ok", Task{Name: "a", WCET: 1, Period: 10}, false},
		{"zero wcet", Task{WCET: 0, Period: 10}, true},
		{"negative wcet", Task{WCET: -1, Period: 10}, true},
		{"zero period", Task{WCET: 1, Period: 0}, true},
		{"negative period", Task{WCET: 1, Period: -5}, true},
		{"over-utilized ok (u>1 allowed at model level)", Task{WCET: 20, Period: 10}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.task.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestUtilization(t *testing.T) {
	tk := Task{WCET: 3, Period: 4}
	if got := tk.Utilization(); got != 0.75 {
		t.Errorf("Utilization = %v, want 0.75", got)
	}
	r := tk.UtilizationRat()
	if r.Num() != 3 || r.Den() != 4 {
		t.Errorf("UtilizationRat = %v, want 3/4", r)
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{}).Validate(); err == nil {
		t.Error("empty set must fail validation")
	}
	s := Set{{WCET: 1, Period: 2}, {WCET: 0, Period: 2}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "task 1") {
		t.Errorf("Validate err = %v, want index-1 failure", err)
	}
}

func TestTotalUtilization(t *testing.T) {
	s := Set{{WCET: 1, Period: 2}, {WCET: 1, Period: 4}, {WCET: 1, Period: 4}}
	if got := s.TotalUtilization(); math.Abs(got-1.0) > 1e-15 {
		t.Errorf("TotalUtilization = %v, want 1", got)
	}
	r, err := s.TotalUtilizationRat()
	if err != nil || r.Num() != 1 || r.Den() != 1 {
		t.Errorf("TotalUtilizationRat = %v (%v), want 1", r, err)
	}
}

func TestMaxUtilizationAndUtilizations(t *testing.T) {
	s := Set{{WCET: 1, Period: 10}, {WCET: 9, Period: 10}, {WCET: 1, Period: 2}}
	if got := s.MaxUtilization(); got != 0.9 {
		t.Errorf("MaxUtilization = %v, want 0.9", got)
	}
	us := s.Utilizations()
	if len(us) != 3 || us[0] != 0.1 || us[1] != 0.9 || us[2] != 0.5 {
		t.Errorf("Utilizations = %v", us)
	}
	if (Set{}).MaxUtilization() != 0 {
		t.Error("MaxUtilization of empty set should be 0")
	}
}

func TestSortedByUtilizationDesc(t *testing.T) {
	s := Set{
		{Name: "low", WCET: 1, Period: 10},
		{Name: "high", WCET: 9, Period: 10},
		{Name: "mid", WCET: 5, Period: 10},
	}
	got := s.SortedByUtilizationDesc()
	wantOrder := []string{"high", "mid", "low"}
	for i, name := range wantOrder {
		if got[i].Name != name {
			t.Errorf("position %d = %s, want %s", i, got[i].Name, name)
		}
	}
	// Original untouched.
	if s[0].Name != "low" {
		t.Error("SortedByUtilizationDesc mutated its receiver")
	}
	if !got.IsSortedByUtilizationDesc() {
		t.Error("IsSortedByUtilizationDesc false on sorted set")
	}
	if s.IsSortedByUtilizationDesc() {
		t.Error("IsSortedByUtilizationDesc true on unsorted set")
	}
}

func TestSortTieBreakDeterministic(t *testing.T) {
	// Equal utilizations 2/4 and 1/2: tie broken by smaller period.
	s := Set{{Name: "b", WCET: 2, Period: 4}, {Name: "a", WCET: 1, Period: 2}}
	got := s.SortedByUtilizationDesc()
	if got[0].Name != "a" || got[1].Name != "b" {
		t.Errorf("tie-break order = %v", got)
	}
}

func TestSortExactComparisonNoFloatTies(t *testing.T) {
	// 1/3 vs 333333333/1000000000: floats would call these nearly equal;
	// exact comparison must put 1/3 (larger) first.
	s := Set{
		{Name: "approx", WCET: 333333333, Period: 1000000000},
		{Name: "exact", WCET: 1, Period: 3},
	}
	got := s.SortedByUtilizationDesc()
	if got[0].Name != "exact" {
		t.Errorf("exact 1/3 should sort before 0.333333333, got order %v", got)
	}
}

func TestHyperperiod(t *testing.T) {
	s := Set{{WCET: 1, Period: 4}, {WCET: 1, Period: 6}, {WCET: 1, Period: 10}}
	hp, err := s.Hyperperiod()
	if err != nil || hp != 60 {
		t.Errorf("Hyperperiod = %d (%v), want 60", hp, err)
	}
	if _, err := (Set{}).Hyperperiod(); err == nil {
		t.Error("Hyperperiod of empty set should fail")
	}
	// Overflow: periods are large coprimes.
	big := Set{
		{WCET: 1, Period: math.MaxInt64 / 2},
		{WCET: 1, Period: math.MaxInt64/2 - 1},
	}
	if _, err := big.Hyperperiod(); err == nil {
		t.Error("Hyperperiod overflow not detected")
	}
}

func TestHyperperiodOverflowBoundary(t *testing.T) {
	// A product that lands exactly at 2^62 must succeed — the overflow
	// guard must not reject representable hyperperiods.
	exact := Set{{WCET: 1, Period: 1 << 31}, {WCET: 1, Period: 1 << 31}, {WCET: 1, Period: 2}}
	hp, err := exact.Hyperperiod()
	if err != nil || hp != 1<<31 {
		t.Errorf("equal periods: hp = %d (%v), want %d", hp, err, int64(1<<31))
	}
	atLimit := Set{{WCET: 1, Period: 1 << 31}, {WCET: 1, Period: (1 << 31) + 1}}
	hp, err = atLimit.Hyperperiod()
	want := int64(1<<31) * ((1 << 31) + 1) // coprime, product < 2^63
	if err != nil || hp != want {
		t.Errorf("at-limit coprimes: hp = %d (%v), want %d", hp, err, want)
	}
	// One more coprime factor pushes past int64; the error must name the
	// period that overflowed rather than wrap around silently.
	over := append(Set{}, atLimit...)
	over = append(over, Task{WCET: 1, Period: 99991})
	_, err = over.Hyperperiod()
	if err == nil {
		t.Fatal("overflow not detected")
	}
	if !strings.Contains(err.Error(), "99991") {
		t.Errorf("overflow error %q does not name the offending period", err)
	}
	// Overflow must be detected regardless of task order.
	front := Set{over[2], over[0], over[1]}
	if _, err := front.Hyperperiod(); err == nil {
		t.Error("overflow not detected with large periods last")
	}
}

func TestFromUtilizations(t *testing.T) {
	s, err := FromUtilizations([]float64{0.5, 0.25}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].WCET != 50 || s[1].WCET != 25 {
		t.Errorf("WCETs = %d, %d", s[0].WCET, s[1].WCET)
	}
	if _, err := FromUtilizations([]float64{0.5}, 0); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := FromUtilizations([]float64{-1}, 10); err == nil {
		t.Error("negative utilization should fail")
	}
	if _, err := FromUtilizations([]float64{math.NaN()}, 10); err == nil {
		t.Error("NaN utilization should fail")
	}
	// Tiny utilization clamps to WCET 1.
	s, err = FromUtilizations([]float64{1e-9}, 10)
	if err != nil || s[0].WCET != 1 {
		t.Errorf("clamp failed: %v (%v)", s, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Set{{Name: "x", WCET: 1, Period: 2}}
	c := s.Clone()
	c[0].Name = "y"
	if s[0].Name != "x" {
		t.Error("Clone shares backing storage")
	}
}

func TestStrings(t *testing.T) {
	tk := Task{Name: "t", WCET: 2, Period: 5}
	if got := tk.String(); got != "t(C=2,P=5)" {
		t.Errorf("Task.String = %q", got)
	}
	anon := Task{WCET: 1, Period: 2}
	if !strings.Contains(anon.String(), "unnamed") {
		t.Errorf("anonymous String = %q", anon.String())
	}
	s := Set{tk}
	if got := s.String(); got != "{t(C=2,P=5)}" {
		t.Errorf("Set.String = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := Set{
		{Name: "audio", WCET: 2, Period: 10},
		{Name: "video", WCET: 7, Period: 33},
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("task %d = %+v, want %+v", i, got[i], s[i])
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"tasks":[{"wcet":0,"period":5}]}`,
		`{"tasks":[]}`,
		`{"bogus":1}`,
		`not json`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) accepted invalid input", in)
		}
	}
}

// Property: sorting is idempotent and preserves multiset of tasks.
func TestQuickSortProperties(t *testing.T) {
	f := func(raw []struct {
		C uint16
		P uint16
	}) bool {
		if len(raw) == 0 {
			return true
		}
		s := make(Set, len(raw))
		for i, r := range raw {
			s[i] = Task{WCET: int64(r.C) + 1, Period: int64(r.P) + 1}
		}
		sorted := s.SortedByUtilizationDesc()
		if !sorted.IsSortedByUtilizationDesc() {
			return false
		}
		again := sorted.SortedByUtilizationDesc()
		for i := range sorted {
			if sorted[i] != again[i] {
				return false
			}
		}
		// Multiset preserved: compare total utilization and counts.
		if len(sorted) != len(s) {
			return false
		}
		count := map[Task]int{}
		for _, tk := range s {
			count[tk]++
		}
		for _, tk := range sorted {
			count[tk]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: TotalUtilization (float) tracks TotalUtilizationRat (exact)
// to within a few ulps.
func TestQuickUtilizationAgreement(t *testing.T) {
	f := func(raw []struct {
		C uint8
		P uint8
	}) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		s := make(Set, len(raw))
		for i, r := range raw {
			s[i] = Task{WCET: int64(r.C) + 1, Period: int64(r.P) + 1}
		}
		exact, err := s.TotalUtilizationRat()
		if err != nil {
			return true
		}
		return math.Abs(s.TotalUtilization()-exact.Float64()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
