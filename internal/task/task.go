// Package task models implicit-deadline sporadic task systems.
//
// A sporadic task τ_i releases an infinite sequence of jobs. Consecutive
// releases of τ_i are separated by at least its period P_i, each job needs
// up to C_i units of work on a unit-speed machine, and must finish within
// P_i time units of its release (implicit deadline). The utilization
// w_i = C_i / P_i is the only parameter the paper's feasibility tests look
// at; the simulator additionally uses the exact integer C_i and P_i.
package task

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"partfeas/internal/rational"
)

// Task is one implicit-deadline sporadic task. WCET and Period are in
// integer time units on a unit-speed machine; on a machine of speed s the
// task's jobs need WCET/s time.
type Task struct {
	// Name optionally identifies the task in reports. May be empty.
	Name string
	// WCET is the worst-case execution time C_i (> 0).
	WCET int64
	// Period is the minimum inter-release separation and relative
	// deadline P_i (> 0).
	Period int64
}

// Validate reports whether the task parameters are well-formed.
func (t Task) Validate() error {
	if t.WCET <= 0 {
		return fmt.Errorf("task %s: WCET %d must be positive", t.label(), t.WCET)
	}
	if t.Period <= 0 {
		return fmt.Errorf("task %s: period %d must be positive", t.label(), t.Period)
	}
	return nil
}

func (t Task) label() string {
	if t.Name == "" {
		return "(unnamed)"
	}
	return t.Name
}

// Utilization returns w_i = C_i / P_i as a float64.
func (t Task) Utilization() float64 { return float64(t.WCET) / float64(t.Period) }

// UtilizationRat returns w_i exactly.
func (t Task) UtilizationRat() rational.Rat {
	return rational.MustNew(t.WCET, t.Period)
}

// String renders the task as "name(C/P)".
func (t Task) String() string {
	return fmt.Sprintf("%s(C=%d,P=%d)", t.label(), t.WCET, t.Period)
}

// Set is an ordered collection of tasks. The order is significant to the
// partitioning algorithm: the paper's algorithm sorts by non-increasing
// utilization before first-fit.
type Set []Task

// Validate checks every task in the set.
func (s Set) Validate() error {
	if len(s) == 0 {
		return errors.New("task set: empty")
	}
	for i, t := range s {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	return nil
}

// TotalUtilization returns Σ w_i.
func (s Set) TotalUtilization() float64 {
	// Kahan summation: utilization sums feed directly into feasibility
	// comparisons, so keep the error at one ulp rather than n ulps.
	var sum, comp float64
	for _, t := range s {
		y := t.Utilization() - comp
		v := sum + y
		comp = (v - sum) - y
		sum = v
	}
	return sum
}

// TotalUtilizationRat returns Σ w_i exactly.
func (s Set) TotalUtilizationRat() (rational.Rat, error) {
	total := rational.Zero()
	var err error
	for _, t := range s {
		total, err = total.Add(t.UtilizationRat())
		if err != nil {
			return rational.Rat{}, fmt.Errorf("task set utilization: %w", err)
		}
	}
	return total, nil
}

// MaxUtilization returns max_i w_i, or 0 for an empty set.
func (s Set) MaxUtilization() float64 {
	maxU := 0.0
	for _, t := range s {
		if u := t.Utilization(); u > maxU {
			maxU = u
		}
	}
	return maxU
}

// Utilizations returns the slice of w_i in set order.
func (s Set) Utilizations() []float64 {
	us := make([]float64, len(s))
	for i, t := range s {
		us[i] = t.Utilization()
	}
	return us
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// SortedByUtilizationDesc returns a copy sorted by non-increasing
// utilization (w_i >= w_{i+1}), the task order the paper's algorithm
// requires. Ties break by smaller period first, then by name, so the order
// is deterministic.
func (s Set) SortedByUtilizationDesc() Set {
	c := s.Clone()
	sort.SliceStable(c, func(i, j int) bool {
		// Exact comparison: w_i > w_j iff C_i * P_j > C_j * P_i.
		ci := c[i].UtilizationRat().Cmp(c[j].UtilizationRat())
		if ci != 0 {
			return ci > 0
		}
		if c[i].Period != c[j].Period {
			return c[i].Period < c[j].Period
		}
		return c[i].Name < c[j].Name
	})
	return c
}

// IsSortedByUtilizationDesc reports whether the set is already in the
// paper's task order.
func (s Set) IsSortedByUtilizationDesc() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].UtilizationRat().Cmp(s[i].UtilizationRat()) < 0 {
			return false
		}
	}
	return true
}

// Hyperperiod returns lcm of all periods, or an error if it overflows
// int64. The simulator uses this as its horizon: for synchronous periodic
// arrivals of implicit-deadline tasks, a miss-free hyperperiod certifies
// the infinite schedule.
func (s Set) Hyperperiod() (int64, error) {
	if len(s) == 0 {
		return 0, errors.New("task set: hyperperiod of empty set")
	}
	l := int64(1)
	for _, t := range s {
		g := gcd(l, t.Period)
		q := l / g
		if q != 0 && t.Period > math.MaxInt64/q {
			return 0, fmt.Errorf("task set: hyperperiod overflows int64 (at period %d)", t.Period)
		}
		l = q * t.Period
	}
	return l, nil
}

// String renders the set compactly.
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FromUtilizations builds a task set from utilization values, assigning
// each task the given period and WCET = round(u * period). Utilities
// outside (0, 1] per unit period are clamped to at least WCET 1. This is a
// convenience for tests and generators that think in utilizations.
func FromUtilizations(us []float64, period int64) (Set, error) {
	if period <= 0 {
		return nil, fmt.Errorf("task: FromUtilizations period %d must be positive", period)
	}
	s := make(Set, len(us))
	for i, u := range us {
		if u <= 0 || math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, fmt.Errorf("task: FromUtilizations utilization %v at index %d invalid", u, i)
		}
		c := int64(math.Round(u * float64(period)))
		if c < 1 {
			c = 1
		}
		s[i] = Task{Name: fmt.Sprintf("t%d", i), WCET: c, Period: period}
	}
	return s, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		a = -a
	}
	if a == 0 {
		return 1
	}
	return a
}
