package task

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON shape for a task set. Kept separate from
// Task so the wire format can evolve without touching the model.
type fileFormat struct {
	Tasks []taskJSON `json:"tasks"`
}

type taskJSON struct {
	Name   string `json:"name,omitempty"`
	WCET   int64  `json:"wcet"`
	Period int64  `json:"period"`
}

// WriteJSON serializes the set as indented JSON.
func (s Set) WriteJSON(w io.Writer) error {
	ff := fileFormat{Tasks: make([]taskJSON, len(s))}
	for i, t := range s {
		ff.Tasks[i] = taskJSON{Name: t.Name, WCET: t.WCET, Period: t.Period}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("task: encoding set: %w", err)
	}
	return nil
}

// ReadJSON parses a task set previously written by WriteJSON and validates
// it.
func ReadJSON(r io.Reader) (Set, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("task: decoding set: %w", err)
	}
	s := make(Set, len(ff.Tasks))
	for i, t := range ff.Tasks {
		s[i] = Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
