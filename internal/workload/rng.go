// Package workload generates synthetic task sets and platforms for the
// experiment suite.
//
// The paper has no evaluation section, so these generators define the
// reproduction's workloads (DESIGN.md §5): UUniFast and friends for
// utilizations, log-uniform and divisor-grid periods, and uniform /
// geometric / big.LITTLE speed families for platforms. Everything is
// driven by an explicit SplitMix64 state so runs are bit-reproducible
// from a recorded seed.
package workload

import "math"

// RNG is a small, fast, deterministic generator (SplitMix64). The zero
// value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("workload: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Split derives an independent generator, so parallel experiment shards
// can share one recorded seed without sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
