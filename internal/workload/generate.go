package workload

import (
	"fmt"
	"math"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// UUniFast draws n utilizations summing to totalU, uniformly over the
// simplex (Bini & Buttazzo's UUniFast). totalU may exceed 1; per-task
// values may exceed 1 when totalU > 1 — callers that need caps should use
// UUniFastCapped.
func UUniFast(rng *RNG, n int, totalU float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: UUniFast n %d must be positive", n)
	}
	if totalU <= 0 || math.IsNaN(totalU) || math.IsInf(totalU, 0) {
		return nil, fmt.Errorf("workload: UUniFast totalU %v must be positive and finite", totalU)
	}
	us := make([]float64, n)
	sum := totalU
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		us[i] = sum - next
		sum = next
	}
	us[n-1] = sum
	return us, nil
}

// UUniFastCapped retries UUniFast until every utilization is at most cap
// (e.g. 1.0 so every task fits a unit-speed machine). It fails when
// totalU > n*cap (impossible) or after too many rejections.
func UUniFastCapped(rng *RNG, n int, totalU, cap float64) ([]float64, error) {
	if cap <= 0 {
		return nil, fmt.Errorf("workload: cap %v must be positive", cap)
	}
	if totalU > float64(n)*cap {
		return nil, fmt.Errorf("workload: totalU %v > n·cap %v", totalU, float64(n)*cap)
	}
	const maxTries = 10_000
	for try := 0; try < maxTries; try++ {
		us, err := UUniFast(rng, n, totalU)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, u := range us {
			if u > cap {
				ok = false
				break
			}
		}
		if ok {
			return us, nil
		}
	}
	return nil, fmt.Errorf("workload: UUniFastCapped gave up after %d tries (totalU=%v n=%d cap=%v)", maxTries, totalU, n, cap)
}

// BimodalUtilizations draws n utilizations where each task is light with
// probability pLight — light tasks uniform in [lightLo, lightHi), heavy
// tasks uniform in [heavyLo, heavyHi). This is the classic "a few big
// tasks among many small ones" shape that stresses first-fit.
func BimodalUtilizations(rng *RNG, n int, pLight, lightLo, lightHi, heavyLo, heavyHi float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: bimodal n %d must be positive", n)
	}
	if pLight < 0 || pLight > 1 {
		return nil, fmt.Errorf("workload: pLight %v must be in [0,1]", pLight)
	}
	if lightLo <= 0 || lightHi < lightLo || heavyLo <= 0 || heavyHi < heavyLo {
		return nil, fmt.Errorf("workload: bimodal ranges invalid: [%v,%v) [%v,%v)", lightLo, lightHi, heavyLo, heavyHi)
	}
	us := make([]float64, n)
	for i := range us {
		if rng.Float64() < pLight {
			us[i] = rng.Range(lightLo, lightHi)
		} else {
			us[i] = rng.Range(heavyLo, heavyHi)
		}
	}
	return us, nil
}

// ExponentialUtilizations draws n utilizations from an exponential with
// the given mean, clamped to [floor, cap].
func ExponentialUtilizations(rng *RNG, n int, mean, floor, cap float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: exponential n %d must be positive", n)
	}
	if mean <= 0 || floor <= 0 || cap < floor {
		return nil, fmt.Errorf("workload: exponential params invalid: mean=%v floor=%v cap=%v", mean, floor, cap)
	}
	us := make([]float64, n)
	for i := range us {
		u := rng.Exp(mean)
		if u < floor {
			u = floor
		}
		if u > cap {
			u = cap
		}
		us[i] = u
	}
	return us, nil
}

// LogUniformPeriod draws an integer period log-uniformly from [lo, hi],
// the standard way to get realistic period spreads over decades.
func LogUniformPeriod(rng *RNG, lo, hi int64) (int64, error) {
	if lo <= 0 || hi < lo {
		return 0, fmt.Errorf("workload: log-uniform period range [%d, %d] invalid", lo, hi)
	}
	if lo == hi {
		return lo, nil
	}
	v := math.Exp(rng.Range(math.Log(float64(lo)), math.Log(float64(hi)+1)))
	p := int64(v)
	if p < lo {
		p = lo
	}
	if p > hi {
		p = hi
	}
	return p, nil
}

// DivisorGridPeriods draws periods from the divisors of base (default
// 2520 = 2³·3²·5·7 when base <= 0), keeping hyperperiods bounded by base —
// essential for exact simulation over a hyperperiod.
func DivisorGridPeriods(rng *RNG, n int, base int64) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: divisor-grid n %d must be positive", n)
	}
	if base <= 0 {
		base = 2520
	}
	var divs []int64
	for d := int64(1); d*d <= base; d++ {
		if base%d == 0 {
			divs = append(divs, d)
			if d != base/d {
				divs = append(divs, base/d)
			}
		}
	}
	// Drop period 1: WCET must be >= 1 so u would be pinned to 1.
	filtered := divs[:0]
	for _, d := range divs {
		if d > 1 {
			filtered = append(filtered, d)
		}
	}
	ps := make([]int64, n)
	for i := range ps {
		ps[i] = filtered[rng.Intn(len(filtered))]
	}
	return ps, nil
}

// TasksFromUtilizations pairs utilizations with periods, setting
// WCET = max(1, round(u·P)). Periods may be nil, in which case every task
// gets the given default period.
func TasksFromUtilizations(us []float64, periods []int64, defaultPeriod int64) (task.Set, error) {
	if len(us) == 0 {
		return nil, fmt.Errorf("workload: no utilizations")
	}
	if periods != nil && len(periods) != len(us) {
		return nil, fmt.Errorf("workload: %d periods for %d utilizations", len(periods), len(us))
	}
	ts := make(task.Set, len(us))
	for i, u := range us {
		if u <= 0 || math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, fmt.Errorf("workload: utilization %v at %d invalid", u, i)
		}
		p := defaultPeriod
		if periods != nil {
			p = periods[i]
		}
		if p <= 0 {
			return nil, fmt.Errorf("workload: period %d at %d invalid", p, i)
		}
		c := int64(math.Round(u * float64(p)))
		if c < 1 {
			c = 1
		}
		ts[i] = task.Task{Name: fmt.Sprintf("t%d", i), WCET: c, Period: p}
	}
	return ts, nil
}

// SpeedFamily names a platform speed distribution.
type SpeedFamily int

const (
	// SpeedsUniform draws speeds uniformly from [0.5, 4).
	SpeedsUniform SpeedFamily = iota
	// SpeedsGeometric spaces speeds geometrically: 1, r, r², … with
	// r = 1.8 — a wide heterogeneity spread.
	SpeedsGeometric
	// SpeedsBigLittle builds two clusters: ~25% big cores at speed 4,
	// the rest little cores at speed 1 — the architecture the paper's
	// introduction motivates.
	SpeedsBigLittle
	// SpeedsIdentical is the homogeneous baseline: all speed 1.
	SpeedsIdentical
)

// SpeedFamilies lists all families for sweeps.
var SpeedFamilies = []SpeedFamily{SpeedsUniform, SpeedsGeometric, SpeedsBigLittle, SpeedsIdentical}

func (f SpeedFamily) String() string {
	switch f {
	case SpeedsUniform:
		return "uniform"
	case SpeedsGeometric:
		return "geometric"
	case SpeedsBigLittle:
		return "big.LITTLE"
	case SpeedsIdentical:
		return "identical"
	default:
		return fmt.Sprintf("SpeedFamily(%d)", int(f))
	}
}

// Platform draws an m-machine platform from the family.
func (f SpeedFamily) Platform(rng *RNG, m int) (machine.Platform, error) {
	if m <= 0 {
		return nil, fmt.Errorf("workload: platform size %d must be positive", m)
	}
	speeds := make([]float64, m)
	switch f {
	case SpeedsUniform:
		for j := range speeds {
			speeds[j] = rng.Range(0.5, 4)
		}
	case SpeedsGeometric:
		s := 1.0
		for j := range speeds {
			speeds[j] = s
			s *= 1.8
		}
	case SpeedsBigLittle:
		nBig := (m + 3) / 4
		for j := range speeds {
			if j < nBig {
				speeds[j] = 4
			} else {
				speeds[j] = 1
			}
		}
	case SpeedsIdentical:
		for j := range speeds {
			speeds[j] = 1
		}
	default:
		return nil, fmt.Errorf("workload: unknown speed family %d", int(f))
	}
	return machine.New(speeds...), nil
}

// UtilizationFamily names a task utilization distribution.
type UtilizationFamily int

const (
	// UtilUUniFast spreads a total utilization budget uniformly over the
	// simplex.
	UtilUUniFast UtilizationFamily = iota
	// UtilBimodal mixes 80% light tasks in [0.05, 0.3) with 20% heavy in
	// [0.5, 1.2).
	UtilBimodal
	// UtilExponential draws exponential(0.35) clamped to [0.02, 1.5].
	UtilExponential
)

// UtilizationFamilies lists all families for sweeps.
var UtilizationFamilies = []UtilizationFamily{UtilUUniFast, UtilBimodal, UtilExponential}

func (f UtilizationFamily) String() string {
	switch f {
	case UtilUUniFast:
		return "uunifast"
	case UtilBimodal:
		return "bimodal"
	case UtilExponential:
		return "exponential"
	default:
		return fmt.Sprintf("UtilizationFamily(%d)", int(f))
	}
}

// Utilizations draws n utilizations. For UtilUUniFast the budget parameter
// is the simplex total; the other families ignore it.
func (f UtilizationFamily) Utilizations(rng *RNG, n int, budget float64) ([]float64, error) {
	switch f {
	case UtilUUniFast:
		return UUniFast(rng, n, budget)
	case UtilBimodal:
		return BimodalUtilizations(rng, n, 0.8, 0.05, 0.3, 0.5, 1.2)
	case UtilExponential:
		return ExponentialUtilizations(rng, n, 0.35, 0.02, 1.5)
	default:
		return nil, fmt.Errorf("workload: unknown utilization family %d", int(f))
	}
}

// AutomotivePeriods draws periods from the distribution reported for
// real automotive engine-management workloads (Kramer, Ziegenbein &
// Hamann, WATERS 2015): values in milliseconds with strongly non-uniform
// weights — most runnables live at 10/20/100 ms. Using 1 time unit = 1 ms
// keeps WCETs integral.
func AutomotivePeriods(rng *RNG, n int) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: automotive n %d must be positive", n)
	}
	type bucket struct {
		period int64
		weight int // per-mille
	}
	buckets := []bucket{
		{1, 30}, {2, 20}, {5, 20}, {10, 250}, {20, 250},
		{50, 30}, {100, 200}, {200, 150}, {1000, 50},
	}
	total := 0
	for _, b := range buckets {
		total += b.weight
	}
	ps := make([]int64, n)
	for i := range ps {
		r := rng.Intn(total)
		for _, b := range buckets {
			if r < b.weight {
				ps[i] = b.period
				break
			}
			r -= b.weight
		}
	}
	return ps, nil
}
