package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGInt63nAndRangeAndExp(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(100); v < 0 || v >= 100 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v := r.Range(2, 3); v < 2 || v >= 3 {
			t.Fatalf("Range out of range: %v", v)
		}
		if v := r.Exp(1.0); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp invalid: %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	r.Int63n(0)
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(17)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream mirrors parent")
	}
}

func TestUUniFastSumsAndUniform(t *testing.T) {
	r := NewRNG(19)
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(20)
		total := 0.1 + r.Float64()*4
		us, err := UUniFast(r, n, total)
		if err != nil {
			t.Fatal(err)
		}
		if len(us) != n {
			t.Fatalf("len = %d", len(us))
		}
		sum := 0.0
		for _, u := range us {
			if u < 0 {
				t.Fatalf("negative utilization %v", u)
			}
			sum += u
		}
		if math.Abs(sum-total) > 1e-9*(1+total) {
			t.Fatalf("sum = %v, want %v", sum, total)
		}
	}
}

func TestUUniFastErrors(t *testing.T) {
	r := NewRNG(23)
	if _, err := UUniFast(r, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := UUniFast(r, 3, -1); err == nil {
		t.Error("negative total should fail")
	}
	if _, err := UUniFast(r, 3, math.NaN()); err == nil {
		t.Error("NaN total should fail")
	}
}

func TestUUniFastCapped(t *testing.T) {
	r := NewRNG(29)
	us, err := UUniFastCapped(r, 8, 3.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range us {
		if u > 1.0 {
			t.Fatalf("utilization %v exceeds cap", u)
		}
	}
	if _, err := UUniFastCapped(r, 2, 3.0, 1.0); err == nil {
		t.Error("impossible cap should fail")
	}
	if _, err := UUniFastCapped(r, 2, 3.0, -1); err == nil {
		t.Error("negative cap should fail")
	}
}

func TestBimodal(t *testing.T) {
	r := NewRNG(31)
	us, err := BimodalUtilizations(r, 1000, 0.8, 0.05, 0.3, 0.5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	light, heavy := 0, 0
	for _, u := range us {
		switch {
		case u >= 0.05 && u < 0.3:
			light++
		case u >= 0.5 && u < 1.2:
			heavy++
		default:
			t.Fatalf("utilization %v outside both modes", u)
		}
	}
	if light < 700 || light > 900 {
		t.Errorf("light fraction %d/1000, want ≈800", light)
	}
	if _, err := BimodalUtilizations(r, 0, 0.5, 0.1, 0.2, 0.5, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := BimodalUtilizations(r, 5, 1.5, 0.1, 0.2, 0.5, 1); err == nil {
		t.Error("pLight>1 should fail")
	}
	if _, err := BimodalUtilizations(r, 5, 0.5, 0.3, 0.2, 0.5, 1); err == nil {
		t.Error("inverted light range should fail")
	}
}

func TestExponentialUtilizations(t *testing.T) {
	r := NewRNG(37)
	us, err := ExponentialUtilizations(r, 1000, 0.35, 0.02, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range us {
		if u < 0.02 || u > 1.5 {
			t.Fatalf("utilization %v outside clamp", u)
		}
	}
	if _, err := ExponentialUtilizations(r, 0, 0.35, 0.02, 1.5); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ExponentialUtilizations(r, 5, -1, 0.02, 1.5); err == nil {
		t.Error("negative mean should fail")
	}
}

func TestLogUniformPeriod(t *testing.T) {
	r := NewRNG(41)
	seenLow, seenHigh := false, false
	for i := 0; i < 5000; i++ {
		p, err := LogUniformPeriod(r, 10, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if p < 10 || p > 1000 {
			t.Fatalf("period %d out of range", p)
		}
		if p < 32 {
			seenLow = true
		}
		if p > 316 {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Error("log-uniform periods did not span decades")
	}
	if p, err := LogUniformPeriod(r, 5, 5); err != nil || p != 5 {
		t.Errorf("degenerate range: %d (%v)", p, err)
	}
	if _, err := LogUniformPeriod(r, 0, 10); err == nil {
		t.Error("lo=0 should fail")
	}
	if _, err := LogUniformPeriod(r, 10, 5); err == nil {
		t.Error("hi<lo should fail")
	}
}

func TestDivisorGridPeriods(t *testing.T) {
	r := NewRNG(43)
	ps, err := DivisorGridPeriods(r, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p <= 1 || 2520%p != 0 {
			t.Fatalf("period %d not a proper divisor of 2520", p)
		}
	}
	if _, err := DivisorGridPeriods(r, 0, 0); err == nil {
		t.Error("n=0 should fail")
	}
	ps, err = DivisorGridPeriods(r, 50, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p <= 1 || 60%p != 0 {
			t.Fatalf("period %d not a proper divisor of 60", p)
		}
	}
}

func TestTasksFromUtilizations(t *testing.T) {
	ts, err := TasksFromUtilizations([]float64{0.5, 0.25}, []int64{100, 200}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].WCET != 50 || ts[1].WCET != 50 {
		t.Errorf("WCETs = %d, %d", ts[0].WCET, ts[1].WCET)
	}
	ts, err = TasksFromUtilizations([]float64{0.5}, nil, 10)
	if err != nil || ts[0].Period != 10 {
		t.Errorf("default period: %+v (%v)", ts, err)
	}
	if _, err := TasksFromUtilizations(nil, nil, 10); err == nil {
		t.Error("empty should fail")
	}
	if _, err := TasksFromUtilizations([]float64{0.5}, []int64{1, 2}, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := TasksFromUtilizations([]float64{-1}, nil, 10); err == nil {
		t.Error("negative utilization should fail")
	}
	if _, err := TasksFromUtilizations([]float64{0.5}, []int64{0}, 0); err == nil {
		t.Error("zero period should fail")
	}
}

func TestSpeedFamilies(t *testing.T) {
	r := NewRNG(47)
	for _, f := range SpeedFamilies {
		if f.String() == "" {
			t.Error("empty family name")
		}
		p, err := f.Platform(r, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != 8 {
			t.Errorf("%v: %d machines", f, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
	if _, err := SpeedsUniform.Platform(r, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := SpeedFamily(99).Platform(r, 3); err == nil {
		t.Error("unknown family should fail")
	}
	if SpeedFamily(99).String() == "" {
		t.Error("unknown family string")
	}
	// big.LITTLE has exactly two speed levels with big minority.
	p, err := SpeedsBigLittle.Platform(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, little := 0, 0
	for _, m := range p {
		switch m.Speed {
		case 4:
			big++
		case 1:
			little++
		default:
			t.Fatalf("unexpected speed %v", m.Speed)
		}
	}
	if big != 2 || little != 6 {
		t.Errorf("big.LITTLE split %d/%d, want 2/6", big, little)
	}
}

func TestUtilizationFamilies(t *testing.T) {
	r := NewRNG(53)
	for _, f := range UtilizationFamilies {
		if f.String() == "" {
			t.Error("empty family name")
		}
		us, err := f.Utilizations(r, 16, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if len(us) != 16 {
			t.Errorf("%v: %d utils", f, len(us))
		}
		for _, u := range us {
			if u <= 0 {
				t.Errorf("%v: non-positive utilization %v", f, u)
			}
		}
	}
	if _, err := UtilizationFamily(99).Utilizations(r, 4, 1); err == nil {
		t.Error("unknown family should fail")
	}
	if UtilizationFamily(99).String() == "" {
		t.Error("unknown family string")
	}
}

// Property: UUniFast output is deterministic given the RNG state.
func TestQuickUUniFastDeterministic(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		a, err1 := UUniFast(NewRNG(seed), n, 2.0)
		b, err2 := UUniFast(NewRNG(seed), n, 2.0)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAutomotivePeriods(t *testing.T) {
	r := NewRNG(59)
	ps, err := AutomotivePeriods(r, 5000)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[int64]int{1: 0, 2: 0, 5: 0, 10: 0, 20: 0, 50: 0, 100: 0, 200: 0, 1000: 0}
	for _, p := range ps {
		if _, ok := valid[p]; !ok {
			t.Fatalf("period %d not in the automotive grid", p)
		}
		valid[p]++
	}
	// 10 ms and 20 ms should dominate (≈25% each).
	if valid[10] < 1000 || valid[20] < 1000 {
		t.Errorf("10/20ms counts %d/%d, want ≈1250 each", valid[10], valid[20])
	}
	if valid[1] > 300 {
		t.Errorf("1ms count %d, want ≈150", valid[1])
	}
	if _, err := AutomotivePeriods(r, 0); err == nil {
		t.Error("n=0 accepted")
	}
}
