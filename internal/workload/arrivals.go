package workload

import (
	"fmt"
	"math"
)

// Poisson draws a Poisson(mean) variate with Knuth's product method,
// splitting large means into chunks of at most 500 so exp(-mean) never
// underflows. Cost is O(mean) uniforms per draw — fine for per-tick
// arrival counts, wrong for mean ≫ 10⁴. mean ≤ 0 returns 0.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 || math.IsNaN(mean) {
		return 0
	}
	n := 0
	for mean > 0 {
		chunk := mean
		if chunk > 500 {
			chunk = 500
		}
		mean -= chunk
		l := math.Exp(-chunk)
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				break
			}
			n++
		}
	}
	return n
}

// ParetoBounded draws from the bounded Pareto distribution on [lo, hi]
// with tail index alpha, by inverting the CDF
//
//	F(x) = (1 − (lo/x)^α) / (1 − (lo/hi)^α).
//
// Small alpha (≈1–1.5) gives the heavy-tailed utilization mixes that
// stress bin-packing heuristics: most draws hug lo, rare draws near hi.
func (r *RNG) ParetoBounded(alpha, lo, hi float64) (float64, error) {
	if !(alpha > 0) || math.IsInf(alpha, 0) {
		return 0, fmt.Errorf("workload: pareto alpha %v must be positive and finite", alpha)
	}
	if !(lo > 0) || hi < lo || math.IsInf(hi, 0) {
		return 0, fmt.Errorf("workload: pareto bounds [%v, %v] invalid", lo, hi)
	}
	if lo == hi {
		return lo, nil
	}
	u := r.Float64()
	ratio := math.Pow(lo/hi, alpha)
	x := lo / math.Pow(1-u*(1-ratio), 1/alpha)
	// Guard the open-interval edge: float error can nudge past hi.
	return math.Min(x, hi), nil
}
