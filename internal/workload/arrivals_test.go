package workload

import (
	"math"
	"testing"
)

func TestPoissonMoments(t *testing.T) {
	rng := NewRNG(7)
	for _, mean := range []float64{0.3, 2, 17, 900} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(rng.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v): sample mean %v", mean, got)
		}
	}
	if rng.Poisson(0) != 0 || rng.Poisson(-3) != 0 || rng.Poisson(math.NaN()) != 0 {
		t.Errorf("degenerate means must draw 0")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 200; i++ {
		if x, y := a.Poisson(5), b.Poisson(5); x != y {
			t.Fatalf("draw %d: %d vs %d", i, x, y)
		}
	}
}

func TestParetoBounded(t *testing.T) {
	rng := NewRNG(3)
	lo, hi := 0.05, 0.9
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		x, err := rng.ParetoBounded(1.3, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if x < lo || x > hi {
			t.Fatalf("draw %v outside [%v, %v]", x, lo, hi)
		}
		sum += x
	}
	// Heavy tail with index 1.3 on this range: mean well below the
	// midpoint but above lo.
	mean := sum / n
	if mean < lo || mean > (lo+hi)/2 {
		t.Errorf("pareto sample mean %v not left-skewed in [%v, %v]", mean, lo, hi)
	}
	if x, err := rng.ParetoBounded(2, 0.3, 0.3); err != nil || x != 0.3 {
		t.Errorf("degenerate range: x=%v err=%v", x, err)
	}
	for _, bad := range [][3]float64{{0, 1, 2}, {-1, 1, 2}, {2, 0, 1}, {2, 2, 1}, {2, 1, math.Inf(1)}} {
		if _, err := rng.ParetoBounded(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("ParetoBounded(%v) accepted", bad)
		}
	}
}
