// Package pipeline defines the structured error type the long-running
// analysis layers (experiment sweeps, partition simulation, exact search,
// Analyze bisections) return when a stage is cancelled, times out, or a
// worker panics.
//
// The type answers the three questions an operator of an interrupted run
// asks — which stage failed, which unit of work (trial or machine) it was
// processing, and why — while still composing with errors.Is/As: the
// cause is reachable through Unwrap, so errors.Is(err, context.Canceled)
// and friends keep working through any number of wrapping layers.
package pipeline

import (
	"context"
	"errors"
	"fmt"
)

// Well-known stage names. Stages are plain strings so higher layers can
// introduce their own without a registry; these constants cover the
// stages instrumented by this module.
const (
	// StageExperiment is the Monte-Carlo trial executor
	// (internal/experiments runTrials).
	StageExperiment = "experiment"
	// StageSimulate is the partition replay fan-out (internal/sim).
	StageSimulate = "simulate"
	// StageExact is the branch-and-bound adversary search
	// (internal/exact).
	StageExact = "exact"
	// StageAnalyze is the top-level Analyze pipeline (partfeas).
	StageAnalyze = "analyze"
)

// Error locates a failure within the analysis pipeline.
type Error struct {
	// Stage names the pipeline stage (StageExperiment, …).
	Stage string
	// Op optionally narrows the stage: the experiment name, the analysis
	// sub-step, etc. May be empty.
	Op string
	// Trial is the trial index being processed, or -1 when the failure is
	// not tied to one trial.
	Trial int
	// Machine is the machine index being replayed, or -1 when the failure
	// is not tied to one machine.
	Machine int
	// Stack holds the goroutine stack captured at a recovered panic; nil
	// for ordinary errors.
	Stack []byte
	// Err is the cause (context.Canceled, context.DeadlineExceeded, a
	// recovered panic wrapped by FromPanic, …).
	Err error
}

// New builds a pipeline error with no trial/machine attribution.
func New(stage, op string, err error) *Error {
	return &Error{Stage: stage, Op: op, Trial: -1, Machine: -1, Err: err}
}

// AtTrial attributes the error to one trial index.
func (e *Error) AtTrial(trial int) *Error { e.Trial = trial; return e }

// AtMachine attributes the error to one machine index.
func (e *Error) AtMachine(machine int) *Error { e.Machine = machine; return e }

// Error implements error.
func (e *Error) Error() string {
	s := "pipeline: " + e.Stage
	if e.Op != "" {
		s += " (" + e.Op + ")"
	}
	if e.Trial >= 0 {
		s += fmt.Sprintf(" trial %d", e.Trial)
	}
	if e.Machine >= 0 {
		s += fmt.Sprintf(" machine %d", e.Machine)
	}
	return s + ": " + e.Err.Error()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// ErrPanic marks causes that originate from a recovered worker panic.
// Test for it with errors.Is(err, pipeline.ErrPanic).
var ErrPanic = errors.New("worker panic")

// FromPanic converts a recovered panic value and its captured stack into
// a structured pipeline error. The cause chain carries ErrPanic so
// callers can distinguish poisoned work items from ordinary failures.
func FromPanic(stage, op string, v any, stack []byte) *Error {
	e := New(stage, op, fmt.Errorf("%w: %v", ErrPanic, v))
	e.Stack = stack
	return e
}

// Canceled reports whether err is (or wraps) a context cancellation or
// deadline expiry.
func Canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
