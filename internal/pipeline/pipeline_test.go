package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorFormattingAndUnwrap(t *testing.T) {
	cause := errors.New("boom")
	e := New(StageExperiment, "E1/uunifast", cause).AtTrial(17)
	msg := e.Error()
	for _, want := range []string{"experiment", "E1/uunifast", "trial 17", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "machine") {
		t.Errorf("message %q mentions machine for a trial-only error", msg)
	}
	if !errors.Is(e, cause) {
		t.Error("cause not reachable through Unwrap")
	}
	var pe *Error
	if !errors.As(fmt.Errorf("wrapped: %w", e), &pe) || pe.Trial != 17 {
		t.Error("errors.As failed to recover the pipeline error")
	}
}

func TestMachineAttribution(t *testing.T) {
	e := New(StageSimulate, "", context.Canceled).AtMachine(3)
	if !strings.Contains(e.Error(), "machine 3") {
		t.Errorf("message %q missing machine", e.Error())
	}
	if strings.Contains(e.Error(), "trial") {
		t.Errorf("message %q mentions trial", e.Error())
	}
}

func TestFromPanic(t *testing.T) {
	e := FromPanic(StageExperiment, "E9", "kaboom", []byte("stack trace here"))
	if !errors.Is(e, ErrPanic) {
		t.Error("panic cause not marked with ErrPanic")
	}
	if !strings.Contains(e.Error(), "kaboom") {
		t.Errorf("message %q missing payload", e.Error())
	}
	if len(e.Stack) == 0 {
		t.Error("stack not captured")
	}
}

func TestCanceled(t *testing.T) {
	if !Canceled(New(StageExact, "", context.Canceled)) {
		t.Error("wrapped context.Canceled not detected")
	}
	if !Canceled(fmt.Errorf("outer: %w", context.DeadlineExceeded)) {
		t.Error("wrapped deadline not detected")
	}
	if Canceled(errors.New("other")) {
		t.Error("unrelated error reported as cancelled")
	}
}
