// Package stats provides the summary statistics the experiment harness
// reports: five-number-style summaries with percentiles, and fixed-bin
// histograms for ratio distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count              int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary
// (Count 0); NaNs in the input are rejected with an error so silent
// propagation cannot corrupt experiment tables.
func Summarize(xs []float64) (Summary, error) {
	var s Summary
	if len(xs) == 0 {
		return s, nil
	}
	sorted := append([]float64(nil), xs...)
	for _, x := range sorted {
		if math.IsNaN(x) {
			return s, fmt.Errorf("stats: NaN observation")
		}
	}
	sort.Float64s(sorted)
	s.Count = len(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.Count)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.Count > 1 {
		s.Std = math.Sqrt(ss / float64(s.Count-1))
	}
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s, nil
}

// Percentile returns the p-quantile (p in [0,1]) of an already-sorted
// sample using linear interpolation between closest ranks. It returns NaN
// for an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f",
		s.Count, s.Mean, s.Std, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside
// land in the clamping edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram bins %d must be positive", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) invalid", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Render draws the histogram as fixed-width text rows, one per bin, with
// a proportional bar of at most barWidth characters.
func (h *Histogram) Render(barWidth int) string {
	if barWidth <= 0 {
		barWidth = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*width
		bar := 0
		if maxC > 0 {
			bar = c * barWidth / maxC
		}
		fmt.Fprintf(&b, "[%7.3f, %7.3f) %6d %s\n", lo, lo+width, c, strings.Repeat("#", bar))
	}
	return b.String()
}
