package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s, err := Summarize(nil)
	if err != nil || s.Count != 0 {
		t.Errorf("empty summary = %+v (%v)", s, err)
	}
	if s.String() != "n=0" {
		t.Errorf("empty string = %q", s.String())
	}
}

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 || s.Mean != 7 || s.P99 != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeRejectsNaN(t *testing.T) {
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN not rejected")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {-0.5, 10}, {1.5, 40},
		{0.5, 25}, // interpolated between 20 and 30
		{1.0 / 3, 20},
	}
	for _, tc := range tests {
		if got := Percentile(sorted, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// Bins: [0,2): 0, 1.9, -3 → 3; [2,4): 2 → 1; [4,6): 5 → 1; [8,10): 9.9, 42 → 2.
	want := []int{3, 1, 1, 0, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Errorf("render:\n%s", out)
	}
	if h.Render(0) == "" {
		t.Error("default bar width render empty")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range should fail")
	}
}

// Property: Min <= P50 <= P95 <= Max and Mean within [Min, Max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.P50+1e-9 && s.P50 <= s.P95+1e-9 && s.P95 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
