// Package openshop turns a feasible solution of the paper's migratory LP
// into an actual migrating schedule — the constructive half of the
// adversary that Theorems I.3/I.4 compare against.
//
// A feasible LP solution u gives each task i a per-unit-time machine
// profile: it should spend t[i][j] = u_{i,j}/s_j time on machine j in
// every unit window. The LP constraints say exactly that every row sum
// (a task's total busy fraction) and every column sum (a machine's busy
// fraction) is at most 1. By the classic preemptive open-shop theorem
// (Gonzalez & Sahni 1976; equivalently a Birkhoff–von Neumann
// decomposition after padding), any such matrix decomposes into at most
// n·m + n + m "slices": partial matchings with durations summing to at
// most 1. Executing the slices back to back inside every unit window
// yields a schedule where
//
//   - no task ever runs on two machines at once (a slice is a matching),
//   - no machine ever runs two tasks at once,
//   - task i accrues Σ_j t[i][j]·s_j = Σ_j u_{i,j} = w_i work per window.
//
// With integer periods, every job of task τ_i = (C_i, P_i) spans exactly
// P_i whole windows and accrues w_i·P_i = C_i work by its deadline: the
// schedule meets every deadline of the synchronous periodic pattern, and
// therefore of any sporadic arrival sequence (each window is
// arrival-oblivious). Experiment E13 verifies this end to end.
package openshop

import (
	"fmt"
	"math"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// Slice is one time slice of the cyclic schedule: for Duration time
// units, task Assign[j] runs on machine j (-1 = machine idle).
type Slice struct {
	Duration float64
	Assign   []int
}

// Schedule is a cyclic template executed inside every unit-length window.
type Schedule struct {
	// Slices in execution order; durations sum to at most 1 (+ε).
	Slices []Slice
	// NumTasks and NumMachines record the dimensions.
	NumTasks    int
	NumMachines int
}

// TotalDuration returns the sum of slice durations.
func (s *Schedule) TotalDuration() float64 {
	total := 0.0
	for _, sl := range s.Slices {
		total += sl.Duration
	}
	return total
}

// WorkPerWindow returns the work each task accrues per unit window under
// the given machine speeds.
func (s *Schedule) WorkPerWindow(speeds []float64) []float64 {
	work := make([]float64, s.NumTasks)
	for _, sl := range s.Slices {
		for j, i := range sl.Assign {
			if i >= 0 {
				work[i] += sl.Duration * speeds[j]
			}
		}
	}
	return work
}

// Validate checks the structural invariants: matchings only, durations
// positive, total at most 1 + tol.
func (s *Schedule) Validate(tol float64) error {
	if tol <= 0 {
		tol = 1e-9
	}
	total := 0.0
	for k, sl := range s.Slices {
		if sl.Duration <= 0 {
			return fmt.Errorf("openshop: slice %d has non-positive duration %v", k, sl.Duration)
		}
		if len(sl.Assign) != s.NumMachines {
			return fmt.Errorf("openshop: slice %d has %d assignments, want %d", k, len(sl.Assign), s.NumMachines)
		}
		seen := make(map[int]bool, s.NumTasks)
		for j, i := range sl.Assign {
			if i == -1 {
				continue
			}
			if i < 0 || i >= s.NumTasks {
				return fmt.Errorf("openshop: slice %d machine %d has invalid task %d", k, j, i)
			}
			if seen[i] {
				return fmt.Errorf("openshop: slice %d runs task %d on two machines", k, i)
			}
			seen[i] = true
		}
		total += sl.Duration
	}
	if total > 1+tol {
		return fmt.Errorf("openshop: slice durations sum to %v > 1", total)
	}
	return nil
}

// Decompose builds the cyclic schedule from a per-window time matrix
// t[i][j] (time task i spends on machine j per unit window). Row sums
// and column sums must not exceed 1 (+tol); entries below tol are
// treated as zero.
func Decompose(t [][]float64, tol float64) (*Schedule, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	n := len(t)
	if n == 0 {
		return nil, fmt.Errorf("openshop: empty matrix")
	}
	m := len(t[0])
	// Working copy with cleanup, plus row/col sums.
	w := make([][]float64, n)
	rowSum := make([]float64, n)
	colSum := make([]float64, m)
	for i := range t {
		if len(t[i]) != m {
			return nil, fmt.Errorf("openshop: ragged matrix at row %d", i)
		}
		w[i] = make([]float64, m)
		for j, v := range t[i] {
			if v < -tol || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("openshop: invalid entry t[%d][%d] = %v", i, j, v)
			}
			if v > tol {
				w[i][j] = v
				rowSum[i] += v
				colSum[j] += v
			}
		}
	}
	for i, rs := range rowSum {
		if rs > 1+tol {
			return nil, fmt.Errorf("openshop: task %d over-committed: row sum %v > 1", i, rs)
		}
	}
	for j, cs := range colSum {
		if cs > 1+tol {
			return nil, fmt.Errorf("openshop: machine %d over-committed: column sum %v > 1", j, cs)
		}
	}

	// Pad to a square doubly stochastic matrix (Birkhoff–von Neumann):
	// rows beyond n and columns beyond m are dummies, and slack entries
	// top every row and column sum up to exactly C ≤ 1. A doubly
	// stochastic matrix always has a perfect matching on its positive
	// entries (Hall's condition via König), so peeling perfect matchings
	// at δ = the smallest matched entry terminates after at most q²
	// iterations with total duration exactly C.
	// Pad to size q = n + m so that all slack lives in dummy cells: rows
	// n..q-1 and columns m..q-1 are dummies, and a real row's slack may
	// only flow into dummy columns (never adding time to a real
	// task/machine pair).
	q := n + m
	a := make([][]float64, q)
	for i := range a {
		a[i] = make([]float64, q)
		if i < n {
			copy(a[i], w[i])
		}
	}
	// Target C: the largest row/column sum (≤ 1 after validation).
	C := 0.0
	for _, rs := range rowSum {
		if rs > C {
			C = rs
		}
	}
	for _, cs := range colSum {
		if cs > C {
			C = cs
		}
	}
	if C <= tol {
		return &Schedule{NumTasks: n, NumMachines: m}, nil
	}
	rDef := make([]float64, q) // deficiency to reach row sum C
	cDef := make([]float64, q)
	for i := 0; i < q; i++ {
		rDef[i] = C
		if i < n {
			rDef[i] = C - rowSum[i]
		}
	}
	for j := 0; j < q; j++ {
		cDef[j] = C
		if j < m {
			cDef[j] = C - colSum[j]
		}
	}
	// Three two-pointer fills over the allowed (non real×real) regions:
	// real rows × dummy cols, dummy rows × real cols, dummy × dummy.
	// Capacity accounting: dummy columns hold n·C total, enough for all
	// real-row slack; symmetrically for dummy rows; the residue of both
	// is the original mass, which the dummy×dummy block absorbs.
	fill := func(iLo, iHi, jLo, jHi int) {
		for i, j := iLo, jLo; i < iHi && j < jHi; {
			if rDef[i] <= tol {
				i++
				continue
			}
			if cDef[j] <= tol {
				j++
				continue
			}
			d := math.Min(rDef[i], cDef[j])
			a[i][j] += d
			rDef[i] -= d
			cDef[j] -= d
		}
	}
	fill(0, n, m, q) // real rows into dummy columns
	fill(n, q, 0, m) // dummy rows into real columns
	fill(n, q, m, q) // dummy rows into dummy columns

	sched := &Schedule{NumTasks: n, NumMachines: m}
	maxIter := q*q + q
	remaining := C
	for iter := 0; iter < maxIter && remaining > tol; iter++ {
		match := perfectMatching(a, tol)
		if match == nil {
			break // only numerical dust left
		}
		delta := math.Inf(1)
		for j, i := range match {
			if a[i][j] < delta {
				delta = a[i][j]
			}
		}
		if delta <= tol {
			break
		}
		if delta > remaining {
			delta = remaining
		}
		// Record only the real (task, machine) pairs; dummy rows leave
		// the machine idle and dummy columns leave the task idle.
		assign := make([]int, m)
		for j := range assign {
			assign[j] = -1
		}
		for j, i := range match {
			if j < m && i < n {
				assign[j] = i
			}
		}
		sched.Slices = append(sched.Slices, Slice{Duration: delta, Assign: assign})
		for j, i := range match {
			a[i][j] -= delta
			if a[i][j] < tol {
				a[i][j] = 0
			}
		}
		remaining -= delta
	}
	if remaining > 64*tol {
		return nil, fmt.Errorf("openshop: decomposition left %v of %v unscheduled", remaining, C)
	}
	if err := sched.Validate(64 * tol); err != nil {
		return nil, err
	}
	return sched, nil
}

// perfectMatching finds a perfect matching of the square matrix's
// bipartite support graph (entries > tol) via augmenting paths (Kuhn's
// algorithm), returning column→row, or nil when none exists.
func perfectMatching(a [][]float64, tol float64) []int {
	q := len(a)
	matchCol := make([]int, q) // column -> row
	matchRow := make([]int, q) // row -> column
	for j := range matchCol {
		matchCol[j] = -1
	}
	for i := range matchRow {
		matchRow[i] = -1
	}
	var tryKuhn func(i int, visited []bool) bool
	tryKuhn = func(i int, visited []bool) bool {
		for j := 0; j < q; j++ {
			if a[i][j] > tol && !visited[j] {
				visited[j] = true
				if matchCol[j] == -1 || tryKuhn(matchCol[j], visited) {
					matchCol[j] = i
					matchRow[i] = j
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < q; i++ {
		visited := make([]bool, q)
		if !tryKuhn(i, visited) {
			return nil
		}
	}
	return matchCol
}

// FromLP converts an LP witness u (utilization of task i on machine j)
// into the per-window time matrix t[i][j] = u[i][j]/s_j and decomposes
// it.
func FromLP(u [][]float64, p machine.Platform, tol float64) (*Schedule, error) {
	if len(u) == 0 {
		return nil, fmt.Errorf("openshop: empty witness")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("openshop: %w", err)
	}
	t := make([][]float64, len(u))
	for i := range u {
		if len(u[i]) != len(p) {
			return nil, fmt.Errorf("openshop: witness row %d has %d machines, want %d", i, len(u[i]), len(p))
		}
		t[i] = make([]float64, len(p))
		for j := range u[i] {
			t[i][j] = u[i][j] / p[j].Speed
		}
	}
	return Decompose(t, tol)
}

// VerifyDeadlines checks that executing the cyclic schedule on the given
// platform meets every deadline of the synchronous periodic pattern over
// one hyperperiod: each task must accrue at least C_i − tol·C_i work in
// every window of P_i consecutive unit windows. Since the schedule is
// identical in every window, this reduces to work-per-window ≥ w_i − tol.
func VerifyDeadlines(s *Schedule, ts task.Set, p machine.Platform, tol float64) error {
	if tol <= 0 {
		tol = 1e-6
	}
	if len(ts) != s.NumTasks || len(p) != s.NumMachines {
		return fmt.Errorf("openshop: dimensions %dx%d, want %dx%d", s.NumTasks, s.NumMachines, len(ts), len(p))
	}
	work := s.WorkPerWindow(p.Speeds())
	for i, t := range ts {
		need := t.Utilization()
		if work[i] < need-tol {
			return fmt.Errorf("openshop: task %d accrues %v per window, needs %v", i, work[i], need)
		}
	}
	return nil
}
