package openshop

import (
	"math"
	"testing"
)

// FuzzDecompose feeds arbitrary substochastic matrices to the Birkhoff
// peeling and checks the schedule reproduces the matrix exactly.
func FuzzDecompose(f *testing.F) {
	f.Add(uint8(2), uint8(2), int64(1))
	f.Add(uint8(5), uint8(3), int64(42))
	f.Add(uint8(1), uint8(4), int64(-9))
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint8, seed int64) {
		n := int(nRaw%7) + 1
		m := int(mRaw%6) + 1
		next := uint64(seed)
		rnd := func() float64 {
			next = next*6364136223846793005 + 1442695040888963407
			return float64(next>>11) / (1 << 53)
		}
		mat := make([][]float64, n)
		rowSum := make([]float64, n)
		colSum := make([]float64, m)
		for i := range mat {
			mat[i] = make([]float64, m)
			for j := range mat[i] {
				mat[i][j] = rnd()
				rowSum[i] += mat[i][j]
				colSum[j] += mat[i][j]
			}
		}
		scale := 1.0
		for _, rs := range rowSum {
			if rs > scale {
				scale = rs
			}
		}
		for _, cs := range colSum {
			if cs > scale {
				scale = cs
			}
		}
		scale *= 1.0001 // stay strictly inside the polytope
		for i := range mat {
			for j := range mat[i] {
				mat[i][j] /= scale
			}
		}
		s, err := Decompose(mat, 1e-12)
		if err != nil {
			t.Fatalf("valid matrix rejected: %v", err)
		}
		got := make([][]float64, n)
		for i := range got {
			got[i] = make([]float64, m)
		}
		for _, sl := range s.Slices {
			seen := map[int]bool{}
			for j, i := range sl.Assign {
				if i == -1 {
					continue
				}
				if seen[i] {
					t.Fatal("task on two machines in one slice")
				}
				seen[i] = true
				got[i][j] += sl.Duration
			}
		}
		for i := range mat {
			for j := range mat[i] {
				if math.Abs(got[i][j]-mat[i][j]) > 1e-6 {
					t.Fatalf("t[%d][%d] scheduled %v, want %v", i, j, got[i][j], mat[i][j])
				}
			}
		}
		if s.TotalDuration() > 1+1e-6 {
			t.Fatalf("duration %v > 1", s.TotalDuration())
		}
	})
}
