package openshop

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/fractional"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func TestDecomposeIdentityLike(t *testing.T) {
	// Two tasks, two machines, diagonal half-loads.
	mat := [][]float64{
		{0.5, 0},
		{0, 0.5},
	}
	s, err := Decompose(mat, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalDuration()-0.5) > 1e-9 {
		t.Errorf("duration = %v, want 0.5", s.TotalDuration())
	}
	work := s.WorkPerWindow([]float64{1, 1})
	if math.Abs(work[0]-0.5) > 1e-9 || math.Abs(work[1]-0.5) > 1e-9 {
		t.Errorf("work = %v", work)
	}
}

func TestDecomposeMigrationRequired(t *testing.T) {
	// Three tasks of rate 2/3 on two unit machines: every task must
	// migrate; the decomposition interleaves them within a unit window.
	mat := [][]float64{
		{2. / 3, 0},
		{0, 2. / 3},
		{1. / 3, 1. / 3},
	}
	s, err := Decompose(mat, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	work := s.WorkPerWindow([]float64{1, 1})
	for i, wv := range work {
		if math.Abs(wv-2./3) > 1e-9 {
			t.Errorf("task %d work %v, want 2/3", i, wv)
		}
	}
	if s.TotalDuration() > 1+1e-9 {
		t.Errorf("duration %v > 1", s.TotalDuration())
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(nil, 0); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := Decompose([][]float64{{0.5}, {0.5, 0.5}}, 0); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := Decompose([][]float64{{-0.5}}, 0); err == nil {
		t.Error("negative entry should fail")
	}
	if _, err := Decompose([][]float64{{math.NaN()}}, 0); err == nil {
		t.Error("NaN entry should fail")
	}
	if _, err := Decompose([][]float64{{0.7, 0.7}}, 0); err == nil {
		t.Error("row sum > 1 should fail")
	}
	if _, err := Decompose([][]float64{{0.7}, {0.7}}, 0); err == nil {
		t.Error("column sum > 1 should fail")
	}
}

func TestDecomposeZeroMatrix(t *testing.T) {
	s, err := Decompose([][]float64{{0, 0}, {0, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Slices) != 0 {
		t.Errorf("zero matrix produced %d slices", len(s.Slices))
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	s := &Schedule{NumTasks: 2, NumMachines: 2, Slices: []Slice{
		{Duration: 0.5, Assign: []int{0, 0}},
	}}
	if err := s.Validate(0); err == nil {
		t.Error("task on two machines not caught")
	}
	s = &Schedule{NumTasks: 1, NumMachines: 1, Slices: []Slice{
		{Duration: -1, Assign: []int{0}},
	}}
	if err := s.Validate(0); err == nil {
		t.Error("negative duration not caught")
	}
	s = &Schedule{NumTasks: 1, NumMachines: 1, Slices: []Slice{
		{Duration: 0.7, Assign: []int{0}},
		{Duration: 0.7, Assign: []int{0}},
	}}
	if err := s.Validate(0); err == nil {
		t.Error("duration > 1 not caught")
	}
	s = &Schedule{NumTasks: 1, NumMachines: 2, Slices: []Slice{
		{Duration: 0.5, Assign: []int{0}},
	}}
	if err := s.Validate(0); err == nil {
		t.Error("assignment length mismatch not caught")
	}
	s = &Schedule{NumTasks: 1, NumMachines: 1, Slices: []Slice{
		{Duration: 0.5, Assign: []int{7}},
	}}
	if err := s.Validate(0); err == nil {
		t.Error("out-of-range task not caught")
	}
}

// Random doubly-substochastic matrices always decompose, with exact
// per-task work and duration ≤ max(row sums, col sums).
func TestDecomposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(5)
		mat := make([][]float64, n)
		rowSum := make([]float64, n)
		colSum := make([]float64, m)
		for i := range mat {
			mat[i] = make([]float64, m)
			for j := range mat[i] {
				// Keep sums under 1: draw then rescale.
				mat[i][j] = rng.Float64()
				rowSum[i] += mat[i][j]
				colSum[j] += mat[i][j]
			}
		}
		scale := 1.0
		for _, rs := range rowSum {
			if rs > scale {
				scale = rs
			}
		}
		for _, cs := range colSum {
			if cs > scale {
				scale = cs
			}
		}
		scale *= 1 + rng.Float64() // random extra slack
		maxSum := 0.0
		for i := range mat {
			rs := 0.0
			for j := range mat[i] {
				mat[i][j] /= scale
				rs += mat[i][j]
			}
			if rs > maxSum {
				maxSum = rs
			}
		}
		for j := 0; j < m; j++ {
			cs := 0.0
			for i := 0; i < n; i++ {
				cs += mat[i][j]
			}
			if cs > maxSum {
				maxSum = cs
			}
		}
		s, err := Decompose(mat, 1e-12)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.TotalDuration() > maxSum+1e-7 {
			t.Fatalf("trial %d: duration %v > max sum %v", trial, s.TotalDuration(), maxSum)
		}
		// Per-(task, machine) time must match the matrix exactly.
		got := make([][]float64, n)
		for i := range got {
			got[i] = make([]float64, m)
		}
		for _, sl := range s.Slices {
			for j, i := range sl.Assign {
				if i >= 0 {
					got[i][j] += sl.Duration
				}
			}
		}
		for i := range mat {
			for j := range mat[i] {
				if math.Abs(got[i][j]-mat[i][j]) > 1e-7 {
					t.Fatalf("trial %d: t[%d][%d] scheduled %v, want %v", trial, i, j, got[i][j], mat[i][j])
				}
			}
		}
	}
}

// End to end: LP witness → schedule → deadlines verified, on the canonical
// migration-required instance.
func TestFromLPEndToEnd(t *testing.T) {
	ts := task.Set{
		{Name: "a", WCET: 2, Period: 3},
		{Name: "b", WCET: 2, Period: 3},
		{Name: "c", WCET: 2, Period: 3},
	}
	p := machine.New(1, 1)
	ok, u, err := fractional.SolveLP(ts, p)
	if err != nil || !ok {
		t.Fatalf("LP: %v (%v)", ok, err)
	}
	s, err := FromLP(u, p, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDeadlines(s, ts, p, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// Random feasible instances: the migratory adversary is constructive.
func TestFromLPRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	built := 0
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		ts, err := task.FromUtilizations(us, 1000)
		if err != nil {
			t.Fatal(err)
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		p := machine.New(speeds...)
		if !fractional.FeasibleHLS(ts, p) {
			continue
		}
		ok, u, err := fractional.SolveLP(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			// HLS says feasible but simplex disagrees: boundary noise.
			continue
		}
		s, err := FromLP(u, p, 1e-9)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyDeadlines(s, ts, p, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		built++
	}
	if built < 50 {
		t.Errorf("only %d feasible instances exercised", built)
	}
}

func TestFromLPErrors(t *testing.T) {
	p := machine.New(1)
	if _, err := FromLP(nil, p, 0); err == nil {
		t.Error("empty witness should fail")
	}
	if _, err := FromLP([][]float64{{0.5}}, machine.Platform{}, 0); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := FromLP([][]float64{{0.5, 0.5}}, p, 0); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestVerifyDeadlinesErrors(t *testing.T) {
	s := &Schedule{NumTasks: 1, NumMachines: 1}
	ts := task.Set{{WCET: 1, Period: 2}}
	p := machine.New(1)
	// Empty schedule accrues no work: must fail.
	if err := VerifyDeadlines(s, ts, p, 1e-6); err == nil {
		t.Error("under-provisioned schedule not caught")
	}
	if err := VerifyDeadlines(s, task.Set{{WCET: 1, Period: 2}, {WCET: 1, Period: 2}}, p, 0); err == nil {
		t.Error("dimension mismatch not caught")
	}
}

func BenchmarkDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n, m := 16, 8
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, m)
		for j := range mat[i] {
			mat[i][j] = rng.Float64() / float64(n)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(mat, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
