package partition

import (
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// FuzzPartitionInvariants drives the engine with arbitrary encoded
// instances and checks the structural invariants of every result: loads
// match assignments, accepted runs place every task, failed runs name a
// real τ_n, and EDF admission never overloads a machine.
func FuzzPartitionInvariants(f *testing.F) {
	f.Add(uint16(3), uint16(2), int64(100), uint8(0), uint8(0), uint8(0), false)
	f.Add(uint16(8), uint16(4), int64(977), uint8(1), uint8(1), uint8(1), true)
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed int64, hRaw, toRaw, moRaw uint8, rms bool) {
		n := int(nRaw%12) + 1
		m := int(mRaw%5) + 1
		if seed < 0 {
			seed = -seed
		}
		// Deterministic instance from the seed.
		next := uint64(seed)
		rnd := func(mod int64) int64 {
			next = next*6364136223846793005 + 1442695040888963407
			v := int64(next >> 33)
			return v % mod
		}
		ts := make(task.Set, n)
		for i := range ts {
			p := 2 + rnd(100)
			c := 1 + rnd(p)
			ts[i] = task.Task{WCET: c, Period: p}
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + float64(rnd(400))/100
		}
		p := machine.New(speeds...)

		var adm AdmissionTest = EDFAdmission{}
		if rms {
			adm = RMSLLAdmission{}
		}
		cfg := Config{
			Admission:    adm,
			Alpha:        1 + float64(rnd(300))/100,
			Heuristic:    Heuristic(int(hRaw) % 4),
			TaskOrder:    TaskOrder(int(toRaw) % 3),
			MachineOrder: MachineOrder(int(moRaw) % 3),
		}
		res, err := Partition(ts, p, cfg)
		if err != nil {
			t.Fatalf("valid instance errored: %v", err)
		}
		// Loads must equal the sum of assigned utilizations.
		loads := make([]float64, m)
		placed := 0
		for i, j := range res.Assignment {
			if j == -1 {
				continue
			}
			if j < 0 || j >= m {
				t.Fatalf("assignment out of range: %v", res.Assignment)
			}
			loads[j] += ts[i].Utilization()
			placed++
		}
		for j := range loads {
			diff := loads[j] - res.Loads[j]
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("loads inconsistent on machine %d: %v vs %v", j, loads[j], res.Loads[j])
			}
		}
		if res.Feasible {
			if placed != n || res.FailedTask != -1 {
				t.Fatalf("feasible but placed %d/%d, failed=%d", placed, n, res.FailedTask)
			}
			if _, ok := adm.(EDFAdmission); ok {
				for j := range loads {
					if loads[j] > cfg.Alpha*p[j].Speed+1e-9 {
						t.Fatalf("EDF overload on machine %d: %v > %v", j, loads[j], cfg.Alpha*p[j].Speed)
					}
				}
			}
		} else {
			if res.FailedTask < 0 || res.FailedTask >= n {
				t.Fatalf("failure without valid τ_n: %d", res.FailedTask)
			}
			if res.Assignment[res.FailedTask] != -1 {
				t.Fatalf("failed task has an assignment")
			}
		}
	})
}
