package partition

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// referencePartition is the naive engine the Solver replaced: it consults
// the stateless AdmissionTest.Fits on every probe and allocates all state
// per call. The differential tests below hold the Solver to byte-identical
// results against it across every admission test, heuristic and order.
func referencePartition(ts task.Set, p machine.Platform, cfg Config) (Result, error) {
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1
	}
	taskIdx, err := orderTasks(ts, cfg.TaskOrder)
	if err != nil {
		return Result{}, err
	}
	machIdx, err := orderMachines(p, cfg.MachineOrder)
	if err != nil {
		return Result{}, err
	}
	n, m := len(ts), len(p)
	res := Result{
		Assignment: make([]int, n),
		FailedTask: -1,
		Loads:      make([]float64, m),
		Alpha:      alpha,
	}
	for i := range res.Assignment {
		res.Assignment[i] = -1
	}
	assigned := make([]task.Set, m)
	cursor := 0
	for _, ti := range taskIdx {
		tk := ts[ti]
		chosen := -1
		switch cfg.Heuristic {
		case FirstFit:
			for _, mj := range machIdx {
				if cfg.Admission.Fits(assigned[mj], res.Loads[mj], tk, alpha*p[mj].Speed) {
					chosen = mj
					break
				}
			}
		case BestFit, WorstFit:
			bestVal := math.Inf(1)
			if cfg.Heuristic == WorstFit {
				bestVal = math.Inf(-1)
			}
			for _, mj := range machIdx {
				if !cfg.Admission.Fits(assigned[mj], res.Loads[mj], tk, alpha*p[mj].Speed) {
					continue
				}
				remaining := alpha*p[mj].Speed - res.Loads[mj] - tk.Utilization()
				if cfg.Heuristic == BestFit && remaining < bestVal {
					bestVal, chosen = remaining, mj
				}
				if cfg.Heuristic == WorstFit && remaining > bestVal {
					bestVal, chosen = remaining, mj
				}
			}
		case NextFit:
			for cursor < len(machIdx) {
				mj := machIdx[cursor]
				if cfg.Admission.Fits(assigned[mj], res.Loads[mj], tk, alpha*p[mj].Speed) {
					chosen = mj
					break
				}
				cursor++
			}
		}
		if chosen == -1 {
			res.FailedTask = ti
			return res, nil
		}
		res.Assignment[ti] = chosen
		res.Loads[chosen] += tk.Utilization()
		assigned[chosen] = append(assigned[chosen], tk)
	}
	res.Feasible = true
	return res, nil
}

// randInstance draws a random task set and platform straddling the
// feasibility boundary.
func randInstance(rng *rand.Rand) (task.Set, machine.Platform) {
	n := 1 + rng.Intn(14)
	m := 1 + rng.Intn(5)
	ts := make(task.Set, n)
	for i := range ts {
		p := int64(2 + rng.Intn(1000))
		c := 1 + rng.Int63n(p)
		ts[i] = task.Task{WCET: c, Period: p}
	}
	speeds := make([]float64, m)
	for j := range speeds {
		speeds[j] = 0.25 + 4*rng.Float64()
	}
	return ts, machine.New(speeds...)
}

func allConfigs(adm AdmissionTest) []Config {
	var cfgs []Config
	for _, h := range []Heuristic{FirstFit, BestFit, WorstFit, NextFit} {
		for _, to := range []TaskOrder{TasksByUtilizationDesc, TasksAsGiven, TasksByUtilizationAsc} {
			for _, mo := range []MachineOrder{MachinesBySpeedAsc, MachinesBySpeedDesc, MachinesAsGiven} {
				cfgs = append(cfgs, Config{Admission: adm, Heuristic: h, TaskOrder: to, MachineOrder: mo})
			}
		}
	}
	return cfgs
}

// TestSolverMatchesReferenceDifferential holds one reused Solver, queried
// at many augmentations in arbitrary order, to byte-identical Results
// against both the naive stateless engine and fresh Partition calls —
// across all four admission tests, every heuristic and both order
// ablations.
func TestSolverMatchesReferenceDifferential(t *testing.T) {
	admissions := []AdmissionTest{
		EDFAdmission{}, RMSLLAdmission{}, RMSHyperbolicAdmission{}, RMSExactAdmission{},
	}
	for _, adm := range admissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 7919))
			instances := 8
			if (adm == RMSExactAdmission{}) {
				instances = 3 // RTA per probe is slow; the fast paths get more coverage
			}
			for inst := 0; inst < instances; inst++ {
				ts, plat := randInstance(rng)
				for _, cfg := range allConfigs(adm) {
					s, err := NewSolver(ts, plat, cfg)
					if err != nil {
						t.Fatal(err)
					}
					// Deliberately non-monotone alpha sequence: scratch
					// reuse must not leak state between queries.
					for _, alpha := range []float64{1, 2.5, 0.6, 1.3, 1, 3.1} {
						got, err := s.Solve(alpha)
						if err != nil {
							t.Fatal(err)
						}
						cfg.Alpha = alpha
						want, err := referencePartition(ts, plat, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Clone(), want) {
							t.Fatalf("solver diverged from reference\ncfg=%+v alpha=%v\nts=%v plat=%v\ngot  %+v\nwant %+v",
								cfg, alpha, ts, plat, got, want)
						}
						fresh, err := Partition(ts, plat, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Clone(), fresh) {
							t.Fatalf("solver diverged from fresh Partition\ncfg=%+v alpha=%v", cfg, alpha)
						}
					}
				}
			}
		})
	}
}

// TestSolverUpdateWCET holds UpdateWCET + Solve to byte-identical Results
// against fresh Partition calls on the modified set, including the
// re-established task orders.
func TestSolverUpdateWCET(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, to := range []TaskOrder{TasksByUtilizationDesc, TasksAsGiven, TasksByUtilizationAsc} {
		for inst := 0; inst < 6; inst++ {
			ts, plat := randInstance(rng)
			cfg := Config{Admission: RMSLLAdmission{}, TaskOrder: to}
			s, err := NewSolver(ts, plat, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mod := ts.Clone()
			for step := 0; step < 12; step++ {
				i := rng.Intn(len(mod))
				c := 1 + rng.Int63n(mod[i].Period)
				if err := s.UpdateWCET(i, c); err != nil {
					t.Fatal(err)
				}
				mod[i].WCET = c
				got, err := s.Solve(1.7)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Alpha = 1.7
				want, err := Partition(mod, plat, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Clone(), want) {
					t.Fatalf("UpdateWCET diverged (order %v, step %d)\nmod=%v\ngot  %+v\nwant %+v",
						to, step, mod, got, want)
				}
			}
		}
	}
}

// TestSolverCopiesInputs verifies the solver is insulated from caller
// mutation of the task set and platform after construction.
func TestSolverCopiesInputs(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.4})
	p := machine.New(1, 1)
	s, err := NewSolver(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	beforeOwned := before.Clone()
	ts[0].WCET = ts[0].Period // caller corrupts inputs
	p[0].Speed = 1e-9
	after, err := s.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(beforeOwned, after.Clone()) {
		t.Fatal("solver state affected by caller mutation")
	}
}

// TestSolverValidation mirrors TestPartitionValidation for the reusable
// entry points.
func TestSolverValidation(t *testing.T) {
	ts := mustSet(t, []float64{0.5})
	p := machine.New(1)
	if _, err := NewSolver(task.Set{}, p, Paper(EDFAdmission{}, 1)); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := NewSolver(ts, machine.Platform{}, Paper(EDFAdmission{}, 1)); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := NewSolver(ts, p, Config{}); err == nil {
		t.Error("missing admission should fail")
	}
	if _, err := NewSolver(ts, p, Config{Admission: EDFAdmission{}, Heuristic: Heuristic(9)}); err == nil {
		t.Error("unknown heuristic should fail")
	}
	if _, err := NewSolver(ts, p, Config{Admission: EDFAdmission{}, TaskOrder: TaskOrder(9)}); err == nil {
		t.Error("unknown task order should fail")
	}
	if _, err := NewSolver(ts, p, Config{Admission: EDFAdmission{}, MachineOrder: MachineOrder(9)}); err == nil {
		t.Error("unknown machine order should fail")
	}
	s, err := NewSolver(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := s.Solve(alpha); err == nil {
			t.Errorf("alpha %v should fail", alpha)
		}
	}
	if _, err := s.Solve(0); err != nil {
		t.Errorf("alpha 0 means 1: %v", err)
	}
	if err := s.UpdateWCET(-1, 1); err == nil {
		t.Error("negative index should fail")
	}
	if err := s.UpdateWCET(0, 0); err == nil {
		t.Error("zero wcet should fail")
	}
}

// TestResultClone verifies Clone detaches from solver scratch.
func TestResultClone(t *testing.T) {
	ts := mustSet(t, []float64{0.9, 0.8})
	p := machine.New(1, 1)
	s, err := NewSolver(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	owned := r1.Clone()
	if _, err := s.Solve(0.25); err != nil { // overwrites scratch
		t.Fatal(err)
	}
	if owned.Loads[0] == 0 && owned.Loads[1] == 0 {
		t.Fatal("clone lost data")
	}
	want, err := Partition(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(owned, want) {
		t.Fatalf("clone %+v != fresh %+v", owned, want)
	}
}

// TestSolverReuseAllocationFree asserts the repeat-query contract: after
// the first call, Solve performs zero heap allocations for the built-in
// admission tests.
func TestSolverReuseAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts, plat := randInstance(rng)
	for _, adm := range []AdmissionTest{EDFAdmission{}, RMSLLAdmission{}, RMSHyperbolicAdmission{}} {
		s, err := NewSolver(ts, plat, Paper(adm, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(1.5); err != nil {
			t.Fatal(err)
		}
		alphas := []float64{0.7, 1, 1.5, 2, 3}
		avg := testing.AllocsPerRun(50, func() {
			for _, a := range alphas {
				if _, err := s.Solve(a); err != nil {
					t.Fatal(err)
				}
			}
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per 5 Solve calls, want 0", adm.Name(), avg)
		}
	}
}
