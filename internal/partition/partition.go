// Package partition implements the paper's partitioning algorithm (§III)
// and the baseline heuristics the experiments ablate against.
//
// The paper's algorithm: sort tasks by non-increasing utilization, sort
// machines by non-decreasing speed, and first-fit each task onto the
// earliest machine whose single-machine admission test still passes under
// speed augmentation α. The admission test is pluggable (EDF utilization,
// RMS Liu–Layland, hyperbolic, exact RTA), as are the fit heuristic and
// both sort orders, so a single engine expresses the paper's algorithm and
// every ablation variant.
package partition

import (
	"fmt"
	"sort"

	"partfeas/internal/machine"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

// AdmissionTest decides whether one more task fits on one machine.
// Implementations must be pure: same inputs, same answer.
type AdmissionTest interface {
	// Name identifies the test in reports ("edf", "rms-ll", …).
	Name() string
	// Fits reports whether tk can join the tasks already assigned to a
	// machine of the given (already speed-augmented) speed. assigned and
	// totalUtil describe the current state; totalUtil is maintained by
	// the engine so utilization-only tests avoid re-summing.
	Fits(assigned task.Set, totalUtil float64, tk task.Task, speed float64) bool
}

// EDFAdmission is the exact EDF test of Theorem II.2: Σ w ≤ s.
type EDFAdmission struct{}

// Name implements AdmissionTest.
func (EDFAdmission) Name() string { return "edf" }

// Fits implements AdmissionTest.
func (EDFAdmission) Fits(_ task.Set, totalUtil float64, tk task.Task, speed float64) bool {
	return totalUtil+tk.Utilization() <= speed
}

// RMSLLAdmission is the Liu–Layland sufficient test of Theorem II.3:
// Σ w ≤ (|S|+1)(2^{1/(|S|+1)} − 1)·s.
type RMSLLAdmission struct{}

// Name implements AdmissionTest.
func (RMSLLAdmission) Name() string { return "rms-ll" }

// Fits implements AdmissionTest.
func (RMSLLAdmission) Fits(assigned task.Set, totalUtil float64, tk task.Task, speed float64) bool {
	n := len(assigned) + 1
	return totalUtil+tk.Utilization() <= sched.LiuLaylandBound(n)*speed
}

// RMSHyperbolicAdmission is the Bini–Buttazzo hyperbolic sufficient test:
// Π (w_i/s + 1) ≤ 2. Strictly dominates Liu–Layland; used by the E11
// ablation.
type RMSHyperbolicAdmission struct{}

// Name implements AdmissionTest.
func (RMSHyperbolicAdmission) Name() string { return "rms-hyperbolic" }

// Fits implements AdmissionTest. The product is accumulated over the
// assigned tasks in placement order with the candidate's term applied
// last — the same left-fold the Solver maintains incrementally, so both
// paths round identically.
func (RMSHyperbolicAdmission) Fits(assigned task.Set, _ float64, tk task.Task, speed float64) bool {
	if speed <= 0 {
		return false
	}
	prod := 1.0
	for _, a := range assigned {
		prod *= a.Utilization()/speed + 1
		if prod > 2 {
			// Every factor is ≥ 1, so the full product can only be larger.
			return false
		}
	}
	return prod*(tk.Utilization()/speed+1) <= 2
}

// RMSExactAdmission runs exact response-time analysis — the strongest
// (necessary and sufficient) RM admission; used by the E11 ablation.
type RMSExactAdmission struct{}

// Name implements AdmissionTest.
func (RMSExactAdmission) Name() string { return "rms-exact" }

// Fits implements AdmissionTest.
func (RMSExactAdmission) Fits(assigned task.Set, _ float64, tk task.Task, speed float64) bool {
	candidate := make(task.Set, 0, len(assigned)+1)
	candidate = append(candidate, assigned...)
	candidate = append(candidate, tk)
	ok, err := sched.RMSFeasibleExact(candidate, speed)
	return err == nil && ok
}

// Heuristic selects which admissible machine receives the task.
type Heuristic int

const (
	// FirstFit takes the earliest admissible machine in machine order —
	// the paper's choice.
	FirstFit Heuristic = iota
	// BestFit takes the admissible machine with the least remaining
	// utilization capacity (α·s − load − w) after placement.
	BestFit
	// WorstFit takes the admissible machine with the most remaining
	// capacity after placement.
	WorstFit
	// NextFit keeps a cursor: it only considers the current machine and
	// moves forward (never back) when the task does not fit.
	NextFit
)

func (h Heuristic) String() string {
	switch h {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	case NextFit:
		return "next-fit"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// TaskOrder selects the order tasks are offered to the heuristic.
type TaskOrder int

const (
	// TasksByUtilizationDesc is the paper's order: w_i ≥ w_{i+1}.
	TasksByUtilizationDesc TaskOrder = iota
	// TasksAsGiven keeps the input order (ablation).
	TasksAsGiven
	// TasksByUtilizationAsc is the reverse of the paper's order (ablation).
	TasksByUtilizationAsc
)

func (o TaskOrder) String() string {
	switch o {
	case TasksByUtilizationDesc:
		return "util-desc"
	case TasksAsGiven:
		return "as-given"
	case TasksByUtilizationAsc:
		return "util-asc"
	default:
		return fmt.Sprintf("TaskOrder(%d)", int(o))
	}
}

// MachineOrder selects the order machines are scanned.
type MachineOrder int

const (
	// MachinesBySpeedAsc is the paper's order: slowest first.
	MachinesBySpeedAsc MachineOrder = iota
	// MachinesBySpeedDesc scans fastest first (ablation).
	MachinesBySpeedDesc
	// MachinesAsGiven keeps the input order (ablation).
	MachinesAsGiven
)

func (o MachineOrder) String() string {
	switch o {
	case MachinesBySpeedAsc:
		return "speed-asc"
	case MachinesBySpeedDesc:
		return "speed-desc"
	case MachinesAsGiven:
		return "as-given"
	default:
		return fmt.Sprintf("MachineOrder(%d)", int(o))
	}
}

// Config parameterizes one partitioning run.
type Config struct {
	// Admission is the per-machine schedulability test. Required.
	Admission AdmissionTest
	// Alpha is the speed augmentation α applied to every machine before
	// admission. Zero means 1 (no augmentation). The paper's algorithm
	// uses α ≥ 1; values in (0, 1) are accepted too — they model running
	// the test on a uniformly slower platform, which the ratio
	// measurements in internal/experiments need.
	Alpha float64
	// Heuristic defaults to FirstFit.
	Heuristic Heuristic
	// TaskOrder defaults to TasksByUtilizationDesc.
	TaskOrder TaskOrder
	// MachineOrder defaults to MachinesBySpeedAsc.
	MachineOrder MachineOrder
}

// Paper returns the paper's configuration for the given admission test and
// augmentation: first-fit, utilization-descending tasks, speed-ascending
// machines.
func Paper(admission AdmissionTest, alpha float64) Config {
	return Config{Admission: admission, Alpha: alpha}
}

// Result describes a partitioning attempt.
type Result struct {
	// Feasible is true when every task was placed.
	Feasible bool
	// Assignment maps each task index (input order) to its machine index
	// (input order), or -1 for tasks that were never placed. When the run
	// fails, tasks after the failing one are left unplaced, matching the
	// algorithm's "declare failure" semantics.
	Assignment []int
	// FailedTask is the input index of the task that could not be placed,
	// or -1 on success. This is the τ_n of the paper's analysis.
	FailedTask int
	// Loads holds the utilization assigned to each machine (input order).
	Loads []float64
	// Alpha echoes the augmentation used.
	Alpha float64
}

// MachineSets reconstructs the per-machine task sets from a result.
func (r Result) MachineSets(ts task.Set, m int) []task.Set {
	sets := make([]task.Set, m)
	for i, j := range r.Assignment {
		if j >= 0 {
			sets[j] = append(sets[j], ts[i])
		}
	}
	return sets
}

// Partition runs the configured algorithm once. It is a thin wrapper
// over Solver for one-shot callers; repeated queries on the same instance
// (bisection, sensitivity sweeps, trial loops) should construct a Solver
// and call Solve directly so the sort orders and scratch buffers are
// reused. The returned Result is owned by the caller.
func Partition(ts task.Set, p machine.Platform, cfg Config) (Result, error) {
	s, err := NewSolver(ts, p, cfg)
	if err != nil {
		return Result{}, err
	}
	// The solver is discarded, so the Result's aliasing of its scratch is
	// harmless: the caller becomes the sole owner.
	return s.Solve(cfg.Alpha)
}

// TaskLessUtilDesc is the paper's task order as a strict total order on
// input indices a, b of ts: utilization descending by exact rational
// comparison, ties broken by period, name, then input index. orderTasks,
// the Solver's incremental re-sort and the online engine's insertion
// search all use this single definition, which is what makes their
// placements byte-identical.
func TaskLessUtilDesc(ts task.Set, a, b int) bool {
	c := ts[a].UtilizationRat().Cmp(ts[b].UtilizationRat())
	if c != 0 {
		return c > 0
	}
	if ts[a].Period != ts[b].Period {
		return ts[a].Period < ts[b].Period
	}
	if ts[a].Name != ts[b].Name {
		return ts[a].Name < ts[b].Name
	}
	return a < b
}

// MachineLessSpeedAsc is the paper's machine scan order as a strict total
// order on input indices a, b of p: speed ascending, ties by input index.
func MachineLessSpeedAsc(p machine.Platform, a, b int) bool {
	if p[a].Speed != p[b].Speed {
		return p[a].Speed < p[b].Speed
	}
	return a < b
}

func orderTasks(ts task.Set, o TaskOrder) ([]int, error) {
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	switch o {
	case TasksAsGiven:
		return idx, nil
	case TasksByUtilizationDesc, TasksByUtilizationAsc:
		// Same exact-rational comparison as task.SortedByUtilizationDesc,
		// applied to the index permutation.
		sort.SliceStable(idx, func(a, b int) bool {
			return TaskLessUtilDesc(ts, idx[a], idx[b])
		})
		if o == TasksByUtilizationAsc {
			for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("partition: unknown task order %v", o)
	}
}

func orderMachines(p machine.Platform, o MachineOrder) ([]int, error) {
	idx := make([]int, len(p))
	for j := range idx {
		idx[j] = j
	}
	switch o {
	case MachinesAsGiven:
		return idx, nil
	case MachinesBySpeedAsc:
		sort.SliceStable(idx, func(a, b int) bool {
			return MachineLessSpeedAsc(p, idx[a], idx[b])
		})
		return idx, nil
	case MachinesBySpeedDesc:
		sort.SliceStable(idx, func(a, b int) bool {
			if p[idx[a]].Speed != p[idx[b]].Speed {
				return p[idx[a]].Speed > p[idx[b]].Speed
			}
			return idx[a] < idx[b]
		})
		return idx, nil
	default:
		return nil, fmt.Errorf("partition: unknown machine order %v", o)
	}
}
