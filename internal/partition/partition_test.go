package partition

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

func mustSet(t testing.TB, us []float64) task.Set {
	t.Helper()
	s, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdmissionNames(t *testing.T) {
	for _, tc := range []struct {
		a    AdmissionTest
		want string
	}{
		{EDFAdmission{}, "edf"},
		{RMSLLAdmission{}, "rms-ll"},
		{RMSHyperbolicAdmission{}, "rms-hyperbolic"},
		{RMSExactAdmission{}, "rms-exact"},
	} {
		if tc.a.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.a.Name(), tc.want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for _, s := range []string{
		FirstFit.String(), BestFit.String(), WorstFit.String(), NextFit.String(),
		TasksByUtilizationDesc.String(), TasksAsGiven.String(), TasksByUtilizationAsc.String(),
		MachinesBySpeedAsc.String(), MachinesBySpeedDesc.String(), MachinesAsGiven.String(),
	} {
		if s == "" || strings.Contains(s, "%") {
			t.Errorf("bad enum string %q", s)
		}
	}
	if Heuristic(99).String() != "Heuristic(99)" {
		t.Error("unknown heuristic string")
	}
}

func TestEDFAdmission(t *testing.T) {
	a := EDFAdmission{}
	tk := task.Task{WCET: 1, Period: 2} // w = 0.5
	if !a.Fits(nil, 0.5, tk, 1.0) {
		t.Error("0.5+0.5 <= 1 should fit")
	}
	if a.Fits(nil, 0.6, tk, 1.0) {
		t.Error("0.6+0.5 > 1 should not fit")
	}
}

func TestRMSLLAdmission(t *testing.T) {
	a := RMSLLAdmission{}
	tk := task.Task{WCET: 1, Period: 2} // w = 0.5
	// Empty machine: bound LL(1) = 1.
	if !a.Fits(nil, 0, tk, 0.5) {
		t.Error("single 0.5 task on speed 0.5 passes LL(1)")
	}
	// One task already there: bound LL(2) ≈ 0.828, so 1/3 + 1/2 ≈ 0.833
	// must be rejected while 1/4 + 1/2 = 0.75 passes.
	existing := task.Set{{WCET: 1, Period: 3}} // w = 1/3
	if a.Fits(existing, 1.0/3, tk, 1.0) {
		t.Error("1/3 + 1/2 = 0.833 > LL(2) = 0.828 should be rejected")
	}
	existing2 := task.Set{{WCET: 1, Period: 4}} // w = 1/4
	if !a.Fits(existing2, 0.25, tk, 1.0) {
		t.Error("1/4 + 1/2 = 0.75 <= LL(2) should fit")
	}
}

func TestRMSLLAdmissionBoundary(t *testing.T) {
	a := RMSLLAdmission{}
	// 0.4 + 0.4 = 0.8 <= 0.828: fits. 0.42+0.42 = 0.84 > 0.828: rejected.
	tk := task.Task{WCET: 40, Period: 100}
	if !a.Fits(task.Set{tk}, 0.4, tk, 1.0) {
		t.Error("0.8 should pass LL(2)")
	}
	tk2 := task.Task{WCET: 42, Period: 100}
	if a.Fits(task.Set{tk2}, 0.42, tk2, 1.0) {
		t.Error("0.84 should fail LL(2)")
	}
}

func TestPaperConfigDefaults(t *testing.T) {
	cfg := Paper(EDFAdmission{}, 2)
	if cfg.Heuristic != FirstFit || cfg.TaskOrder != TasksByUtilizationDesc ||
		cfg.MachineOrder != MachinesBySpeedAsc || cfg.Alpha != 2 {
		t.Errorf("Paper config = %+v", cfg)
	}
}

func TestPartitionValidation(t *testing.T) {
	ts := mustSet(t, []float64{0.5})
	p := machine.New(1)
	if _, err := Partition(task.Set{}, p, Paper(EDFAdmission{}, 1)); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := Partition(ts, machine.Platform{}, Paper(EDFAdmission{}, 1)); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := Partition(ts, p, Config{}); err == nil {
		t.Error("missing admission should fail")
	}
	if _, err := Partition(ts, p, Config{Admission: EDFAdmission{}, Alpha: -1}); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := Partition(ts, p, Config{Admission: EDFAdmission{}, Alpha: math.NaN()}); err == nil {
		t.Error("NaN alpha should fail")
	}
	if _, err := Partition(ts, p, Config{Admission: EDFAdmission{}, Heuristic: Heuristic(9)}); err == nil {
		t.Error("unknown heuristic should fail")
	}
	if _, err := Partition(ts, p, Config{Admission: EDFAdmission{}, TaskOrder: TaskOrder(9)}); err == nil {
		t.Error("unknown task order should fail")
	}
	if _, err := Partition(ts, p, Config{Admission: EDFAdmission{}, MachineOrder: MachineOrder(9)}); err == nil {
		t.Error("unknown machine order should fail")
	}
}

func TestPartitionSimpleSuccess(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.5, 0.5, 0.5})
	p := machine.New(1, 1)
	res, err := Partition(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.FailedTask != -1 {
		t.Fatalf("res = %+v, want feasible", res)
	}
	// Loads must be consistent with the assignment.
	for j, l := range res.Loads {
		if math.Abs(l-1.0) > 1e-9 {
			t.Errorf("machine %d load %v, want 1", j, l)
		}
	}
}

func TestPartitionDeclareFailure(t *testing.T) {
	// Three 2/3 tasks, two unit machines, no augmentation: no partition.
	ts := task.Set{
		{Name: "a", WCET: 2, Period: 3},
		{Name: "b", WCET: 2, Period: 3},
		{Name: "c", WCET: 2, Period: 3},
	}
	p := machine.New(1, 1)
	res, err := Partition(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || res.FailedTask == -1 {
		t.Fatalf("res = %+v, want failure", res)
	}
	// With α = 4/3 it fits (two tasks on one machine: 4/3 <= 4/3).
	res, err = Partition(ts, p, Paper(EDFAdmission{}, 4.0/3+1e-12))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("α=4/3: res = %+v, want feasible", res)
	}
}

func TestFirstFitPrefersSlowMachines(t *testing.T) {
	// Paper's order scans slowest machine first: a small task lands on the
	// slow machine even though the fast one also fits.
	ts := mustSet(t, []float64{0.1})
	p := machine.New(4, 0.5) // input order: fast, slow
	res, err := Partition(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != 1 {
		t.Errorf("task went to machine %d, want slow machine 1", res.Assignment[0])
	}
}

func TestMachineOrderAblation(t *testing.T) {
	ts := mustSet(t, []float64{0.1})
	p := machine.New(4, 0.5)
	cfg := Paper(EDFAdmission{}, 1)
	cfg.MachineOrder = MachinesBySpeedDesc
	res, err := Partition(ts, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != 0 {
		t.Errorf("speed-desc: task went to %d, want fast machine 0", res.Assignment[0])
	}
	cfg.MachineOrder = MachinesAsGiven
	res, err = Partition(ts, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != 0 {
		t.Errorf("as-given: task went to %d, want first machine 0", res.Assignment[0])
	}
}

func TestTaskOrderAblation(t *testing.T) {
	// Two tasks 0.9 and 0.2 on machines 1 and 0.25 (paper order: slow first).
	// Desc: 0.9 → needs speed ≥ 0.9 → machine speed 1; 0.2 → fits slow 0.25.
	// Asc: 0.2 → slow machine (0.2 <= 0.25); 0.9 → fast. Same partition here,
	// but as-given with order [0.2 big-first…] exercise index mapping.
	ts := mustSet(t, []float64{0.2, 0.9})
	p := machine.New(0.25, 1)
	cfg := Paper(EDFAdmission{}, 1)
	res, err := Partition(ts, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Assignment[0] != 0 || res.Assignment[1] != 1 {
		t.Errorf("desc: %+v", res)
	}
	cfg.TaskOrder = TasksByUtilizationAsc
	res, err = Partition(ts, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Assignment[0] != 0 || res.Assignment[1] != 1 {
		t.Errorf("asc: %+v", res)
	}
}

func TestBestFitWorstFit(t *testing.T) {
	// One task 0.5; machines (after augmentation 1) speeds 1 and 2.
	// Best-fit: remaining 0.5 vs 1.5 → picks machine 0 (speed 1).
	// Worst-fit: picks machine 1 (speed 2).
	ts := mustSet(t, []float64{0.5})
	p := machine.New(1, 2)
	cfgB := Paper(EDFAdmission{}, 1)
	cfgB.Heuristic = BestFit
	resB, err := Partition(ts, p, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Assignment[0] != 0 {
		t.Errorf("best-fit chose %d, want 0", resB.Assignment[0])
	}
	cfgW := Paper(EDFAdmission{}, 1)
	cfgW.Heuristic = WorstFit
	resW, err := Partition(ts, p, cfgW)
	if err != nil {
		t.Fatal(err)
	}
	if resW.Assignment[0] != 1 {
		t.Errorf("worst-fit chose %d, want 1", resW.Assignment[0])
	}
}

func TestNextFitNeverGoesBack(t *testing.T) {
	// Tasks 0.6, 0.6, 0.3 on two unit machines, next-fit, EDF, α=1.
	// t0 → m_slowest (both speed 1; first in order). t1: 1.2 > 1 → cursor
	// advances → m2. t2 (0.3): only current machine m2 considered: 0.9 ≤ 1 fits.
	ts := mustSet(t, []float64{0.6, 0.6, 0.3})
	p := machine.New(1, 1)
	cfg := Paper(EDFAdmission{}, 1)
	cfg.Heuristic = NextFit
	res, err := Partition(ts, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("res = %+v", res)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Error("two 0.6 tasks on same machine")
	}
	if res.Assignment[2] != res.Assignment[1] {
		t.Error("next-fit went backwards")
	}
	// And a case where first-fit succeeds but next-fit fails: tasks 0.9,
	// 0.4, 0.1 on speeds {0.5, 1}. First-fit places 0.9 on the fast
	// machine, 0.4 on the slow one, then goes *back* to the slow machine
	// for 0.1 (0.5 exactly). Next-fit's cursor has moved to the fast
	// machine after 0.9 and cannot return, and 0.4 overloads it.
	ts2 := mustSet(t, []float64{0.9, 0.4, 0.1})
	p2 := machine.New(0.5, 1)
	resFF, err := Partition(ts2, p2, Paper(EDFAdmission{}, 1))
	if err != nil || !resFF.Feasible {
		t.Fatalf("first-fit should succeed: %+v (%v)", resFF, err)
	}
	cfg2 := Paper(EDFAdmission{}, 1)
	cfg2.Heuristic = NextFit
	resNF, err := Partition(ts2, p2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if resNF.Feasible {
		t.Errorf("next-fit unexpectedly packed %+v", resNF)
	}
}

func TestMachineSets(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.4, 0.3})
	p := machine.New(1, 1)
	res, err := Partition(ts, p, Paper(EDFAdmission{}, 1))
	if err != nil || !res.Feasible {
		t.Fatalf("%+v (%v)", res, err)
	}
	sets := res.MachineSets(ts, len(p))
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total != len(ts) {
		t.Errorf("machine sets hold %d tasks, want %d", total, len(ts))
	}
}

// Invariant: whatever the configuration, a reported-feasible partition
// satisfies the admission test machine-wise when replayed.
func TestPartitionRespectsAdmission(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	admissions := []AdmissionTest{EDFAdmission{}, RMSLLAdmission{}, RMSHyperbolicAdmission{}, RMSExactAdmission{}}
	heuristics := []Heuristic{FirstFit, BestFit, WorstFit, NextFit}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		s := make(task.Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(100))
			c := int64(1 + rng.Intn(int(p)))
			s[i] = task.Task{WCET: c, Period: p}
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		p := machine.New(speeds...)
		cfg := Config{
			Admission: admissions[rng.Intn(len(admissions))],
			Alpha:     1 + rng.Float64()*2,
			Heuristic: heuristics[rng.Intn(len(heuristics))],
		}
		res, err := Partition(s, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		sets := res.MachineSets(s, m)
		for j, assigned := range sets {
			if len(assigned) == 0 {
				continue
			}
			speed := cfg.Alpha * p[j].Speed
			switch cfg.Admission.(type) {
			case EDFAdmission:
				if assigned.TotalUtilization() > speed+1e-9 {
					t.Fatalf("trial %d: EDF overload on %d: %v > %v", trial, j, assigned.TotalUtilization(), speed)
				}
			case RMSLLAdmission:
				if !sched.RMSFeasibleLLSet(assigned, speed+1e-12) {
					t.Fatalf("trial %d: LL violated on machine %d", trial, j)
				}
			case RMSHyperbolicAdmission:
				if !sched.RMSFeasibleHyperbolic(assigned, speed*(1+1e-12)) {
					t.Fatalf("trial %d: hyperbolic violated on machine %d", trial, j)
				}
			case RMSExactAdmission:
				ok, err := sched.RMSFeasibleExact(assigned, speed*(1+1e-12))
				if err != nil || !ok {
					t.Fatalf("trial %d: exact RTA violated on machine %d (%v)", trial, j, err)
				}
			}
		}
	}
}

// Invariant: increasing α never hurts first-fit EDF acceptance on the
// instances we generate (monotonicity is not a theorem for arbitrary
// instances, but for the paper's FF-EDF it holds: admission thresholds
// scale uniformly and first-fit decisions coarsen consistently). We treat
// violations as suspicious and verify a weaker, always-true property:
// feasibility at α implies feasibility at α' ≥ α via re-running.
func TestAlphaMonotoneEmpirically(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	violations := 0
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		r1, err := Partition(ts, p, Paper(EDFAdmission{}, 1.3))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Partition(ts, p, Paper(EDFAdmission{}, 2.1))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Feasible && !r2.Feasible {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("found %d α-monotonicity violations for FF-EDF", violations)
	}
}

func BenchmarkPartitionFFEDF(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	us := make([]float64, 256)
	for i := range us {
		us[i] = rng.Float64()
	}
	ts, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	speeds := make([]float64, 32)
	for j := range speeds {
		speeds[j] = 0.5 + rng.Float64()*4
	}
	p := machine.New(speeds...)
	cfg := Paper(EDFAdmission{}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(ts, p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
