package partition

import (
	"fmt"
	"math"

	"partfeas/internal/machine"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

// admissionKind selects the solver's fast path for the built-in admission
// tests; generic falls back to the AdmissionTest interface.
type admissionKind int

const (
	admGeneric admissionKind = iota
	admEDF
	admLL
	admHyperbolic
)

// Solver answers repeated partitioning queries for one (task set,
// platform, config) triple. Construction pays for everything that does not
// depend on α — input validation, the utilization-descending task order,
// the speed-ascending machine order, per-task utilizations — and Solve
// reuses scratch buffers across calls, so a repeat query allocates
// nothing. This is the engine behind bisection searches (core.MinAlpha),
// sensitivity sweeps (core.MaxWCET) and the Monte-Carlo experiment loops,
// all of which re-partition the same instance hundreds of times.
//
// For the built-in admission tests the solver also maintains per-machine
// aggregates incrementally: running utilization (EDF, Liu–Layland), task
// counts (Liu–Layland) and the Bini–Buttazzo product Π(w_i/s + 1)
// (hyperbolic), making every admission query O(1) instead of a rescan of
// the machine's assigned set. Custom AdmissionTest implementations still
// receive the full assigned set.
//
// A Solver is not safe for concurrent use; concurrent callers should each
// construct their own (construction is cheap — two sorts).
type Solver struct {
	ts   task.Set         // private copy; UpdateWCET mutates it
	p    machine.Platform // private copy
	cfg  Config
	kind admissionKind

	taskIdx []int     // task visit order (input indices)
	machIdx []int     // machine scan order (input indices)
	utils   []float64 // per-task utilization, input order

	// Scratch reused by every Solve; the returned Result aliases
	// assignment and loads.
	assignment []int
	loads      []float64
	speeds     []float64  // α-scaled speeds, input order
	counts     []int      // tasks per machine
	prods      []float64  // hyperbolic running product per machine
	assigned   []task.Set // per-machine sets, maintained only for admGeneric
}

// NewSolver validates the instance and configuration and precomputes the
// α-independent state. The task set and platform are copied, so later
// mutation by the caller does not affect the solver.
func NewSolver(ts task.Set, p machine.Platform, cfg Config) (*Solver, error) {
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if cfg.Admission == nil {
		return nil, fmt.Errorf("partition: admission test required")
	}
	switch cfg.Heuristic {
	case FirstFit, BestFit, WorstFit, NextFit:
	default:
		return nil, fmt.Errorf("partition: unknown heuristic %v", cfg.Heuristic)
	}

	s := &Solver{
		ts:  ts.Clone(),
		p:   append(machine.Platform(nil), p...),
		cfg: cfg,
	}
	switch cfg.Admission.(type) {
	case EDFAdmission:
		s.kind = admEDF
	case RMSLLAdmission:
		s.kind = admLL
	case RMSHyperbolicAdmission:
		s.kind = admHyperbolic
	default:
		s.kind = admGeneric
	}

	var err error
	if s.taskIdx, err = orderTasks(s.ts, cfg.TaskOrder); err != nil {
		return nil, err
	}
	if s.machIdx, err = orderMachines(s.p, cfg.MachineOrder); err != nil {
		return nil, err
	}

	n, m := len(s.ts), len(s.p)
	s.utils = make([]float64, n)
	for i, t := range s.ts {
		s.utils[i] = t.Utilization()
	}
	s.assignment = make([]int, n)
	s.loads = make([]float64, m)
	s.speeds = make([]float64, m)
	s.counts = make([]int, m)
	if s.kind == admHyperbolic {
		s.prods = make([]float64, m)
	}
	if s.kind == admGeneric {
		s.assigned = make([]task.Set, m)
		for j := range s.assigned {
			s.assigned[j] = make(task.Set, 0, n)
		}
	}
	return s, nil
}

// Solve runs the configured algorithm at augmentation alpha (zero means
// 1, matching Config.Alpha). The decisions — and the returned Result —
// are bit-identical to Partition with the same Config and Alpha = alpha.
//
// The returned Result's Assignment and Loads slices alias the solver's
// scratch buffers and are only valid until the next Solve or UpdateWCET
// call; use Result.Clone to retain one across queries.
func (s *Solver) Solve(alpha float64) (Result, error) {
	if alpha == 0 {
		alpha = 1
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return Result{}, fmt.Errorf("partition: alpha %v must be positive", alpha)
	}

	for i := range s.assignment {
		s.assignment[i] = -1
	}
	for j := range s.loads {
		s.loads[j] = 0
		s.speeds[j] = alpha * s.p[j].Speed
		s.counts[j] = 0
	}
	if s.kind == admHyperbolic {
		for j := range s.prods {
			s.prods[j] = 1
		}
	}
	if s.kind == admGeneric {
		for j := range s.assigned {
			s.assigned[j] = s.assigned[j][:0]
		}
	}

	res := Result{
		Assignment: s.assignment,
		FailedTask: -1,
		Loads:      s.loads,
		Alpha:      alpha,
	}
	cursor := 0 // for NextFit, position within machIdx

	for _, ti := range s.taskIdx {
		chosen := -1
		switch s.cfg.Heuristic {
		case FirstFit:
			for _, mj := range s.machIdx {
				if s.fits(mj, ti) {
					chosen = mj
					break
				}
			}
		case BestFit, WorstFit:
			bestVal := math.Inf(1)
			if s.cfg.Heuristic == WorstFit {
				bestVal = math.Inf(-1)
			}
			for _, mj := range s.machIdx {
				if !s.fits(mj, ti) {
					continue
				}
				remaining := s.speeds[mj] - s.loads[mj] - s.utils[ti]
				if s.cfg.Heuristic == BestFit && remaining < bestVal {
					bestVal, chosen = remaining, mj
				}
				if s.cfg.Heuristic == WorstFit && remaining > bestVal {
					bestVal, chosen = remaining, mj
				}
			}
		case NextFit:
			for cursor < len(s.machIdx) {
				mj := s.machIdx[cursor]
				if s.fits(mj, ti) {
					chosen = mj
					break
				}
				cursor++
			}
		}
		if chosen == -1 {
			res.FailedTask = ti
			return res, nil
		}
		s.place(chosen, ti)
	}
	res.Feasible = true
	return res, nil
}

// fits answers the admission query for task ti on machine mj from the
// incrementally maintained aggregates, falling back to the configured
// AdmissionTest for non-built-in tests. Each fast path evaluates exactly
// the expression of the corresponding AdmissionTest.Fits, in the same
// order, so the answers round identically.
func (s *Solver) fits(mj, ti int) bool {
	u := s.utils[ti]
	speed := s.speeds[mj]
	switch s.kind {
	case admEDF:
		return s.loads[mj]+u <= speed
	case admLL:
		return s.loads[mj]+u <= sched.LiuLaylandBound(s.counts[mj]+1)*speed
	case admHyperbolic:
		// prods[mj] is the left-fold of the assigned tasks' factors in
		// placement order — the same fold RMSHyperbolicAdmission.Fits
		// recomputes from scratch (its early exit never changes the
		// answer: every factor is ≥ 1).
		if speed <= 0 {
			return false
		}
		return s.prods[mj]*(u/speed+1) <= 2
	default:
		return s.cfg.Admission.Fits(s.assigned[mj], s.loads[mj], s.ts[ti], speed)
	}
}

// place records the assignment of task ti to machine mj and updates the
// per-machine aggregates.
func (s *Solver) place(mj, ti int) {
	s.assignment[ti] = mj
	s.loads[mj] += s.utils[ti]
	s.counts[mj]++
	switch s.kind {
	case admHyperbolic:
		s.prods[mj] *= s.utils[ti]/s.speeds[mj] + 1
	case admGeneric:
		s.assigned[mj] = append(s.assigned[mj], s.ts[ti])
	}
}

// UpdateWCET changes task i's worst-case execution time and re-establishes
// the task order, so subsequent Solve calls answer for the modified set —
// the repeated-query primitive behind WCET sensitivity analysis
// (core.MaxWCET). It invalidates Results returned by earlier Solve calls.
func (s *Solver) UpdateWCET(i int, wcet int64) error {
	if i < 0 || i >= len(s.ts) {
		return fmt.Errorf("partition: UpdateWCET task index %d out of range [0, %d)", i, len(s.ts))
	}
	if wcet <= 0 {
		return fmt.Errorf("partition: UpdateWCET wcet %d must be positive", wcet)
	}
	s.ts[i].WCET = wcet
	s.utils[i] = s.ts[i].Utilization()
	if s.cfg.TaskOrder != TasksAsGiven {
		s.reorderTasks()
	}
	return nil
}

// taskLessDesc is the utilization-descending comparison on input indices —
// the same total order orderTasks sorts by, so the insertion re-sort in
// reorderTasks reproduces exactly what a fresh sort would.
func (s *Solver) taskLessDesc(a, b int) bool {
	return TaskLessUtilDesc(s.ts, a, b)
}

// reorderTasks restores taskIdx to the configured order after a single
// utilization changed. Insertion sort is allocation-free and O(n) on the
// nearly-sorted permutations UpdateWCET produces; the comparison is a
// total order, so the result is the unique sorted permutation regardless
// of algorithm.
func (s *Solver) reorderTasks() {
	idx := s.taskIdx
	if s.cfg.TaskOrder == TasksByUtilizationAsc {
		// Sort descending (below), then reverse — matching orderTasks.
		for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && s.taskLessDesc(v, idx[j]) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
	if s.cfg.TaskOrder == TasksByUtilizationAsc {
		for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
}

// Clone returns a Result whose slices are owned by the caller, detached
// from any Solver scratch.
func (r Result) Clone() Result {
	r.Assignment = append([]int(nil), r.Assignment...)
	r.Loads = append([]float64(nil), r.Loads...)
	return r
}
