// Package machine models uniform (related) multiprocessor platforms.
//
// A platform is a set of m machines with speeds s_1 <= s_2 <= ... <= s_m.
// A task with worst-case execution time C runs for C/s time units on a
// machine of speed s. The paper's algorithm additionally works with a
// speed augmentation factor α >= 1: the algorithm's copy of machine j has
// speed α·s_j while the adversary's copy keeps speed s_j.
package machine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"partfeas/internal/rational"
)

// Machine is one processor of a uniform platform.
type Machine struct {
	// Name optionally identifies the machine in reports. May be empty.
	Name string
	// Speed is the processing rate relative to a unit-speed reference
	// (> 0). A job of WCET C completes after C/Speed time units.
	Speed float64
}

// Validate reports whether the machine is well-formed.
func (m Machine) Validate() error {
	if m.Speed <= 0 || math.IsNaN(m.Speed) || math.IsInf(m.Speed, 0) {
		return fmt.Errorf("machine %q: speed %v must be positive and finite", m.Name, m.Speed)
	}
	return nil
}

// ValidSpeed reports whether s is a legal machine speed: positive and
// finite. New does not reject bad speeds (it cannot return an error), so
// public entry points use this to fail eagerly instead of letting NaN or
// zero speeds surface from a distant internal Validate.
func ValidSpeed(s float64) bool {
	return s > 0 && !math.IsNaN(s) && !math.IsInf(s, 0)
}

// Platform is an ordered collection of machines. The paper's algorithm
// requires non-decreasing speed order; use SortedBySpeed to obtain it.
type Platform []Machine

// New builds a platform from raw speeds, naming machines m0, m1, ….
func New(speeds ...float64) Platform {
	p := make(Platform, len(speeds))
	for i, s := range speeds {
		p[i] = Machine{Name: fmt.Sprintf("m%d", i), Speed: s}
	}
	return p
}

// Validate checks every machine.
func (p Platform) Validate() error {
	if len(p) == 0 {
		return errors.New("platform: empty")
	}
	for i, m := range p {
		if !ValidSpeed(m.Speed) {
			return fmt.Errorf("machine %d (%q): speed %v must be positive and finite", i, m.Name, m.Speed)
		}
	}
	return nil
}

// Speeds returns the speed vector in platform order.
func (p Platform) Speeds() []float64 {
	ss := make([]float64, len(p))
	for i, m := range p {
		ss[i] = m.Speed
	}
	return ss
}

// TotalSpeed returns Σ s_j.
func (p Platform) TotalSpeed() float64 {
	var sum, comp float64
	for _, m := range p {
		y := m.Speed - comp
		v := sum + y
		comp = (v - sum) - y
		sum = v
	}
	return sum
}

// MaxSpeed returns the fastest machine's speed, or 0 for an empty platform.
func (p Platform) MaxSpeed() float64 {
	maxS := 0.0
	for _, m := range p {
		if m.Speed > maxS {
			maxS = m.Speed
		}
	}
	return maxS
}

// Clone returns a deep copy.
func (p Platform) Clone() Platform {
	c := make(Platform, len(p))
	copy(c, p)
	return c
}

// SortedBySpeed returns a copy in non-decreasing speed order (s_j <=
// s_{j+1}), the machine order the paper's algorithm requires. Ties break
// by name for determinism.
func (p Platform) SortedBySpeed() Platform {
	c := p.Clone()
	sort.SliceStable(c, func(i, j int) bool {
		if c[i].Speed != c[j].Speed {
			return c[i].Speed < c[j].Speed
		}
		return c[i].Name < c[j].Name
	})
	return c
}

// IsSortedBySpeed reports whether the platform is already in non-decreasing
// speed order.
func (p Platform) IsSortedBySpeed() bool {
	for j := 1; j < len(p); j++ {
		if p[j-1].Speed > p[j].Speed {
			return false
		}
	}
	return true
}

// Scaled returns a copy with every speed multiplied by alpha. This is the
// speed-augmented platform the algorithm schedules on.
func (p Platform) Scaled(alpha float64) Platform {
	c := p.Clone()
	for i := range c {
		c[i].Speed *= alpha
	}
	return c
}

// KFastestSpeedSum returns the total speed of the k fastest machines.
// It is used by the combinatorial LP feasibility condition. k is clamped
// to [0, len(p)].
func (p Platform) KFastestSpeedSum(k int) float64 {
	if k <= 0 {
		return 0
	}
	sorted := p.SortedBySpeed()
	if k > len(sorted) {
		k = len(sorted)
	}
	sum := 0.0
	for j := len(sorted) - k; j < len(sorted); j++ {
		sum += sorted[j].Speed
	}
	return sum
}

// String renders the platform compactly.
func (p Platform) String() string {
	parts := make([]string, len(p))
	for i, m := range p {
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("m%d", i)
		}
		parts[i] = fmt.Sprintf("%s(s=%g)", name, m.Speed)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// SpeedRat returns the machine's speed as an exact rational, used by the
// simulator. The float speed is converted via a continued-fraction
// approximation exact to within 1e-12 relative error; platforms intended
// for exact simulation should use speeds that are themselves ratios of
// small integers (e.g. 0.5, 1, 2.5).
func (m Machine) SpeedRat() (rational.Rat, error) {
	return rational.FromFloat(m.Speed)
}

// --- serialization ----------------------------------------------------------

type fileFormat struct {
	Machines []machineJSON `json:"machines"`
}

type machineJSON struct {
	Name  string  `json:"name,omitempty"`
	Speed float64 `json:"speed"`
}

// WriteJSON serializes the platform as indented JSON.
func (p Platform) WriteJSON(w io.Writer) error {
	ff := fileFormat{Machines: make([]machineJSON, len(p))}
	for i, m := range p {
		ff.Machines[i] = machineJSON{Name: m.Name, Speed: m.Speed}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("machine: encoding platform: %w", err)
	}
	return nil
}

// ReadJSON parses a platform previously written by WriteJSON and validates
// it.
func ReadJSON(r io.Reader) (Platform, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("machine: decoding platform: %w", err)
	}
	p := make(Platform, len(ff.Machines))
	for i, m := range ff.Machines {
		p[i] = Machine{Name: m.Name, Speed: m.Speed}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
