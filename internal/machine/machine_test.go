package machine

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMachineValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       Machine
		wantErr bool
	}{
		{"ok", Machine{Name: "big", Speed: 2.0}, false},
		{"zero", Machine{Speed: 0}, true},
		{"negative", Machine{Speed: -1}, true},
		{"nan", Machine{Speed: math.NaN()}, true},
		{"inf", Machine{Speed: math.Inf(1)}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestNewAndSpeeds(t *testing.T) {
	p := New(1, 2, 0.5)
	if len(p) != 3 {
		t.Fatalf("len = %d", len(p))
	}
	if p[0].Name != "m0" || p[2].Name != "m2" {
		t.Errorf("names = %v", p)
	}
	ss := p.Speeds()
	if ss[0] != 1 || ss[1] != 2 || ss[2] != 0.5 {
		t.Errorf("Speeds = %v", ss)
	}
}

func TestPlatformValidate(t *testing.T) {
	if err := (Platform{}).Validate(); err == nil {
		t.Error("empty platform must fail")
	}
	p := Platform{{Speed: 1}, {Speed: 0}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "machine 1") {
		t.Errorf("Validate err = %v", err)
	}
}

func TestTotalAndMaxSpeed(t *testing.T) {
	p := New(1, 2, 4)
	if got := p.TotalSpeed(); got != 7 {
		t.Errorf("TotalSpeed = %v", got)
	}
	if got := p.MaxSpeed(); got != 4 {
		t.Errorf("MaxSpeed = %v", got)
	}
	if (Platform{}).MaxSpeed() != 0 {
		t.Error("MaxSpeed of empty should be 0")
	}
}

func TestSortedBySpeed(t *testing.T) {
	p := New(4, 1, 2)
	s := p.SortedBySpeed()
	if !s.IsSortedBySpeed() {
		t.Error("not sorted")
	}
	if s[0].Speed != 1 || s[2].Speed != 4 {
		t.Errorf("sorted = %v", s)
	}
	if p[0].Speed != 4 {
		t.Error("SortedBySpeed mutated receiver")
	}
	if p.IsSortedBySpeed() {
		t.Error("IsSortedBySpeed true on unsorted")
	}
}

func TestScaled(t *testing.T) {
	p := New(1, 2)
	s := p.Scaled(3)
	if s[0].Speed != 3 || s[1].Speed != 6 {
		t.Errorf("Scaled = %v", s)
	}
	if p[0].Speed != 1 {
		t.Error("Scaled mutated receiver")
	}
}

func TestKFastestSpeedSum(t *testing.T) {
	p := New(3, 1, 2) // sorted: 1, 2, 3
	tests := []struct {
		k    int
		want float64
	}{
		{0, 0}, {-1, 0}, {1, 3}, {2, 5}, {3, 6}, {10, 6},
	}
	for _, tc := range tests {
		if got := p.KFastestSpeedSum(tc.k); got != tc.want {
			t.Errorf("KFastestSpeedSum(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	p := Platform{{Name: "little", Speed: 1}, {Speed: 2}}
	s := p.String()
	if !strings.Contains(s, "little(s=1)") || !strings.Contains(s, "m1(s=2)") {
		t.Errorf("String = %q", s)
	}
}

func TestSpeedRat(t *testing.T) {
	m := Machine{Speed: 0.5}
	r, err := m.SpeedRat()
	if err != nil || r.Num() != 1 || r.Den() != 2 {
		t.Errorf("SpeedRat(0.5) = %v (%v), want 1/2", r, err)
	}
	m = Machine{Speed: 2.25}
	r, err = m.SpeedRat()
	if err != nil || r.Num() != 9 || r.Den() != 4 {
		t.Errorf("SpeedRat(2.25) = %v (%v), want 9/4", r, err)
	}
	m = Machine{Speed: 1.0 / 3.0}
	r, err = m.SpeedRat()
	if err != nil || r.Num() != 1 || r.Den() != 3 {
		t.Errorf("SpeedRat(1/3) = %v (%v), want 1/3", r, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Platform{{Name: "big", Speed: 2}, {Name: "little", Speed: 0.5}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != p[0] || got[1] != p[1] {
		t.Errorf("round trip = %v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"machines":[{"speed":0}]}`,
		`{"machines":[]}`,
		`{"junk":true}`,
		`nope`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) accepted invalid input", in)
		}
	}
}

// Property: sorting is idempotent; scaling by alpha multiplies total speed
// by alpha.
func TestQuickPlatformProperties(t *testing.T) {
	f := func(raw []uint16, alphaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		speeds := make([]float64, len(raw))
		for i, r := range raw {
			speeds[i] = float64(r)/100 + 0.01
		}
		alpha := float64(alphaRaw)/16 + 1
		p := New(speeds...)
		s := p.SortedBySpeed()
		if !s.IsSortedBySpeed() {
			return false
		}
		again := s.SortedBySpeed()
		for i := range s {
			if s[i] != again[i] {
				return false
			}
		}
		scaled := p.Scaled(alpha)
		return math.Abs(scaled.TotalSpeed()-alpha*p.TotalSpeed()) < 1e-9*(1+p.TotalSpeed())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: KFastestSpeedSum is monotone in k and reaches TotalSpeed.
func TestQuickKFastestMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 30 {
			return true
		}
		speeds := make([]float64, len(raw))
		for i, r := range raw {
			speeds[i] = float64(r)/100 + 0.01
		}
		p := New(speeds...)
		prev := 0.0
		for k := 0; k <= len(p); k++ {
			cur := p.KFastestSpeedSum(k)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return math.Abs(prev-p.TotalSpeed()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
