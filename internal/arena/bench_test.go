package arena

import (
	"testing"

	"partfeas/internal/online"
)

// BenchmarkArenaTick measures the per-tick cost of driving one lane
// over the steady preset's stream, per policy. The stream is built once
// outside the timer; each iteration is one tick (the lane restarts when
// the stream is exhausted).
func BenchmarkArenaTick(b *testing.B) {
	sc, err := Preset("steady")
	if err != nil {
		b.Fatal(err)
	}
	sc.Ticks = 200
	st, err := BuildStream(sc)
	if err != nil {
		b.Fatal(err)
	}
	adm, err := admissionTest(sc.Admission)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"first_fit_sorted", "first_fit_arrival", "best_fit", "k_choices"} {
		pol, err := online.ParsePolicy(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var l *lane
			idx, tick := 0, 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if l == nil || tick == sc.Ticks {
					l = newLane(name, pol, adm, sc.Alpha, st.Platform, sc.Ticks)
					idx, tick = 0, 0
				}
				for idx < len(st.Events) && st.Events[idx].Tick == tick {
					if err := l.apply(st.Events[idx]); err != nil {
						b.Fatal(err)
					}
					idx++
				}
				l.endTick(tick)
				tick++
			}
		})
	}
}
