package arena

import (
	"fmt"
	"sync"

	"partfeas/internal/online"
	"partfeas/internal/partition"
)

// World binds one materialized stream to a set of policy lanes.
type World struct {
	sc    Scenario
	st    *Stream
	names []string
	pols  []online.Policy
	adm   partition.AdmissionTest

	// traceOps is the differential-test hook: when set, Run keeps each
	// lane's engine-op trace and final engine for replay comparison.
	traceOps    bool
	lastTraces  [][]laneOp
	lastEngines []*online.Engine
}

// NewWorld validates the scenario, materializes the stream once, and
// parses the policy names (online.ParsePolicy grammar, duplicates
// rejected — a duplicate lane would silently score twice).
func NewWorld(sc Scenario, policies []string) (*World, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("arena: no policies")
	}
	st, err := BuildStream(sc) // validates sc and fills defaults
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil { // re-run on our copy for the defaults
		return nil, err
	}
	adm, err := admissionTest(sc.Admission)
	if err != nil {
		return nil, err
	}
	w := &World{sc: sc, st: st, adm: adm}
	seen := make(map[string]bool)
	for _, name := range policies {
		pol, err := online.ParsePolicy(name)
		if err != nil {
			return nil, fmt.Errorf("arena: %w", err)
		}
		if seen[pol.Name()] {
			return nil, fmt.Errorf("arena: duplicate policy lane %q", pol.Name())
		}
		seen[pol.Name()] = true
		w.names = append(w.names, pol.Name())
		w.pols = append(w.pols, pol)
	}
	return w, nil
}

// Scenario returns the validated (defaults-filled) scenario.
func (w *World) Scenario() Scenario { return w.sc }

// Stream exposes the materialized stream (read-only by convention).
func (w *World) Stream() *Stream { return w.st }

// Lanes returns the canonical lane names in lane order.
func (w *World) Lanes() []string { return append([]string(nil), w.names...) }

// Run races every lane over the shared stream using the given number of
// workers (≤ 0 or > lanes is clamped). Workers only pick which lane
// runs next; a lane is always executed sequentially by one goroutine
// against its own engine, so Scores is byte-identical for any worker
// count. Latency is wall-clock and carries no such promise.
func (w *World) Run(workers int) (*RunResult, error) {
	n := len(w.pols)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	scores := make([][]TickScore, n)
	lats := make([][]TickLatency, n)
	errs := make([]error, n)
	w.lastTraces = make([][]laneOp, n)
	w.lastEngines = make([]*online.Engine, n)

	idx := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				l := newLane(w.names[i], w.pols[i], w.adm, w.sc.Alpha, w.st.Platform, w.st.Ticks)
				l.traceOn = w.traceOps
				errs[i] = l.run(w.st)
				scores[i] = l.scores
				lats[i] = l.lats
				if w.traceOps {
					w.lastTraces[i] = l.trace
					w.lastEngines[i] = l.e
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("arena: lane %s: %w", w.names[i], err)
		}
	}
	return &RunResult{Scenario: w.sc, Lanes: w.Lanes(), Scores: scores, Latency: lats}, nil
}
