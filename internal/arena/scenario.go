// Package arena races pluggable placement policies on one deterministic
// arrival stream.
//
// A World pre-generates a single event stream — task arrivals drawn
// from a Poisson, bursty (two-state MMPP) or diurnal process, per-task
// lifetimes (tenant churn), and machine down/up events — and feeds the
// identical stream to N lanes, one per policy. Each lane drives its own
// online.Engine and is scored per tick: cumulative acceptance ratio,
// migration count, machine-utilization spread, replay work visited, and
// wall-clock per-op latency quantiles. Everything except the wall-clock
// quantiles is a pure function of the Scenario, byte-identical at any
// worker count: lanes are mutually independent, so the worker pool only
// decides which lane runs when, never what a lane computes.
package arena

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"partfeas/internal/partition"
	"partfeas/internal/workload"
)

// ArrivalSpec describes the arrival process feeding the stream.
type ArrivalSpec struct {
	// Kind is "poisson" (constant rate), "bursty" (two-state Markov
	// modulated Poisson: calm at Rate, burst at BurstRate) or "diurnal"
	// (rate swings sinusoidally around Rate with period PeriodTicks).
	Kind string `json:"kind"`
	// Rate is the mean arrivals per tick in the base state (> 0).
	Rate float64 `json:"rate"`
	// BurstRate is the bursty in-burst rate; 0 means 4×Rate.
	BurstRate float64 `json:"burst_rate,omitempty"`
	// PBurst / PCalm are the bursty per-tick calm→burst and burst→calm
	// switch probabilities; 0 means 0.05 and 0.2.
	PBurst float64 `json:"p_burst,omitempty"`
	PCalm  float64 `json:"p_calm,omitempty"`
	// PeriodTicks is the diurnal sinusoid period; 0 means 100.
	PeriodTicks int `json:"period_ticks,omitempty"`
}

// UtilSpec describes the per-task utilization draw.
type UtilSpec struct {
	// Kind is "uniform" on [Lo, Hi], "pareto" (bounded Pareto on
	// [Lo, Hi] with tail index Alpha — heavy-tailed: mostly-small tasks
	// with rare elephants) or "bimodal" (80% in the bottom quarter of
	// [Lo, Hi], 20% in the top quarter).
	Kind string `json:"kind"`
	// Lo and Hi bound the draw; 0 values mean 0.05 and 0.9.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Alpha is the Pareto tail index; 0 means 1.3.
	Alpha float64 `json:"alpha,omitempty"`
}

// Scenario is the full deterministic description of one arena run. It
// is JSON-serializable so scenario files can be shared; Validate fills
// defaults in place, so the zero value of most fields is usable.
type Scenario struct {
	// Name labels the scenario in CSV and benchfmt output.
	Name string `json:"name,omitempty"`
	// Seed drives the single SplitMix64 stream everything is drawn
	// from; two runs with equal Scenario values are byte-identical.
	Seed uint64 `json:"seed"`
	// Ticks is the stream length (> 0).
	Ticks int `json:"ticks"`
	// Machines is the platform size (> 0).
	Machines int `json:"machines"`
	// Speeds is the workload speed family: "uniform", "geometric",
	// "big.LITTLE" or "identical"; "" means "uniform".
	Speeds string `json:"speeds,omitempty"`

	Arrival ArrivalSpec `json:"arrival"`
	Util    UtilSpec    `json:"util"`

	// PeriodLo / PeriodHi bound the log-uniform period draw; 0 values
	// mean 100 and 100000.
	PeriodLo int64 `json:"period_lo,omitempty"`
	PeriodHi int64 `json:"period_hi,omitempty"`

	// MeanLifetime is the mean resident lifetime in ticks (tenant
	// churn, exponential); ≤ 0 means tasks never depart.
	MeanLifetime float64 `json:"mean_lifetime,omitempty"`

	// PMachineDown / PMachineUp are per-machine per-tick probabilities
	// of a machine leaving / rejoining the platform. The stream never
	// takes the last machine down. 0 disables machine churn.
	PMachineDown float64 `json:"p_machine_down,omitempty"`
	PMachineUp   float64 `json:"p_machine_up,omitempty"`

	// Alpha is the engines' speed augmentation; 0 means 1.
	Alpha float64 `json:"alpha,omitempty"`
	// Admission is the implicit-deadline admission test every lane
	// uses: "edf", "rms_ll" or "rms_hyperbolic"; "" means "edf".
	Admission string `json:"admission,omitempty"`
}

// Validate checks the scenario and fills defaulted fields in place.
func (sc *Scenario) Validate() error {
	if sc.Ticks <= 0 {
		return fmt.Errorf("arena: ticks %d must be positive", sc.Ticks)
	}
	if sc.Machines <= 0 {
		return fmt.Errorf("arena: machines %d must be positive", sc.Machines)
	}
	if sc.Speeds == "" {
		sc.Speeds = "uniform"
	}
	if _, err := speedFamily(sc.Speeds); err != nil {
		return err
	}
	if sc.Arrival.Kind == "" {
		sc.Arrival.Kind = "poisson"
	}
	switch sc.Arrival.Kind {
	case "poisson":
	case "bursty":
		if sc.Arrival.BurstRate == 0 {
			sc.Arrival.BurstRate = 4 * sc.Arrival.Rate
		}
		if sc.Arrival.PBurst == 0 {
			sc.Arrival.PBurst = 0.05
		}
		if sc.Arrival.PCalm == 0 {
			sc.Arrival.PCalm = 0.2
		}
		if !prob(sc.Arrival.PBurst) || !prob(sc.Arrival.PCalm) {
			return fmt.Errorf("arena: bursty switch probabilities (%v, %v) must be in [0, 1]", sc.Arrival.PBurst, sc.Arrival.PCalm)
		}
		if sc.Arrival.BurstRate < 0 || math.IsNaN(sc.Arrival.BurstRate) {
			return fmt.Errorf("arena: burst rate %v must be non-negative", sc.Arrival.BurstRate)
		}
	case "diurnal":
		if sc.Arrival.PeriodTicks == 0 {
			sc.Arrival.PeriodTicks = 100
		}
		if sc.Arrival.PeriodTicks < 2 {
			return fmt.Errorf("arena: diurnal period %d ticks too short", sc.Arrival.PeriodTicks)
		}
	default:
		return fmt.Errorf("arena: unknown arrival kind %q (want poisson, bursty or diurnal)", sc.Arrival.Kind)
	}
	if !(sc.Arrival.Rate > 0) || math.IsInf(sc.Arrival.Rate, 0) {
		return fmt.Errorf("arena: arrival rate %v must be positive and finite", sc.Arrival.Rate)
	}

	if sc.Util.Kind == "" {
		sc.Util.Kind = "uniform"
	}
	if sc.Util.Lo == 0 {
		sc.Util.Lo = 0.05
	}
	if sc.Util.Hi == 0 {
		sc.Util.Hi = 0.9
	}
	if !(sc.Util.Lo > 0) || sc.Util.Hi < sc.Util.Lo || math.IsInf(sc.Util.Hi, 0) {
		return fmt.Errorf("arena: utilization bounds [%v, %v] invalid", sc.Util.Lo, sc.Util.Hi)
	}
	switch sc.Util.Kind {
	case "uniform", "bimodal":
	case "pareto":
		if sc.Util.Alpha == 0 {
			sc.Util.Alpha = 1.3
		}
		if !(sc.Util.Alpha > 0) || math.IsInf(sc.Util.Alpha, 0) {
			return fmt.Errorf("arena: pareto alpha %v must be positive and finite", sc.Util.Alpha)
		}
	default:
		return fmt.Errorf("arena: unknown utilization kind %q (want uniform, pareto or bimodal)", sc.Util.Kind)
	}

	if sc.PeriodLo == 0 {
		sc.PeriodLo = 100
	}
	if sc.PeriodHi == 0 {
		sc.PeriodHi = 100000
	}
	if sc.PeriodLo <= 0 || sc.PeriodHi < sc.PeriodLo {
		return fmt.Errorf("arena: period range [%d, %d] invalid", sc.PeriodLo, sc.PeriodHi)
	}
	if math.IsNaN(sc.MeanLifetime) || math.IsInf(sc.MeanLifetime, 0) {
		return fmt.Errorf("arena: mean lifetime %v invalid", sc.MeanLifetime)
	}
	if !prob(sc.PMachineDown) || !prob(sc.PMachineUp) {
		return fmt.Errorf("arena: machine churn probabilities (%v, %v) must be in [0, 1]", sc.PMachineDown, sc.PMachineUp)
	}
	if sc.PMachineDown > 0 && sc.PMachineUp == 0 {
		return fmt.Errorf("arena: machines can go down (p=%v) but never come back (p_machine_up=0)", sc.PMachineDown)
	}
	if sc.Alpha == 0 {
		sc.Alpha = 1
	}
	if !(sc.Alpha > 0) || math.IsInf(sc.Alpha, 0) {
		return fmt.Errorf("arena: alpha %v must be positive and finite", sc.Alpha)
	}
	if sc.Admission == "" {
		sc.Admission = "edf"
	}
	if _, err := admissionTest(sc.Admission); err != nil {
		return err
	}
	return nil
}

func prob(p float64) bool { return p >= 0 && p <= 1 && !math.IsNaN(p) }

func speedFamily(name string) (workload.SpeedFamily, error) {
	for _, f := range workload.SpeedFamilies {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("arena: unknown speed family %q (want uniform, geometric, big.LITTLE or identical)", name)
}

func admissionTest(name string) (partition.AdmissionTest, error) {
	switch name {
	case "edf":
		return partition.EDFAdmission{}, nil
	case "rms_ll":
		return partition.RMSLLAdmission{}, nil
	case "rms_hyperbolic":
		return partition.RMSHyperbolicAdmission{}, nil
	}
	return nil, fmt.Errorf("arena: unknown admission test %q (want edf, rms_ll or rms_hyperbolic)", name)
}

// Presets lists the built-in scenario names for help strings.
func Presets() []string {
	return []string{"smoke", "steady", "bursty", "diurnal", "churn", "heavytail"}
}

// Preset returns a named built-in scenario, validated.
func Preset(name string) (Scenario, error) {
	var sc Scenario
	switch name {
	case "smoke":
		sc = Scenario{Name: name, Seed: 1, Ticks: 60, Machines: 8,
			Arrival: ArrivalSpec{Kind: "poisson", Rate: 2}, MeanLifetime: 25}
	case "steady":
		sc = Scenario{Name: name, Seed: 42, Ticks: 400, Machines: 24,
			Arrival: ArrivalSpec{Kind: "poisson", Rate: 4}, MeanLifetime: 60}
	case "bursty":
		sc = Scenario{Name: name, Seed: 42, Ticks: 400, Machines: 24,
			Arrival: ArrivalSpec{Kind: "bursty", Rate: 2}, MeanLifetime: 60}
	case "diurnal":
		sc = Scenario{Name: name, Seed: 42, Ticks: 600, Machines: 24,
			Arrival: ArrivalSpec{Kind: "diurnal", Rate: 4, PeriodTicks: 200}, MeanLifetime: 60}
	case "churn":
		sc = Scenario{Name: name, Seed: 42, Ticks: 400, Machines: 16,
			Arrival: ArrivalSpec{Kind: "poisson", Rate: 3}, MeanLifetime: 40,
			PMachineDown: 0.01, PMachineUp: 0.08}
	case "heavytail":
		sc = Scenario{Name: name, Seed: 42, Ticks: 400, Machines: 24,
			Arrival: ArrivalSpec{Kind: "poisson", Rate: 4},
			Util:    UtilSpec{Kind: "pareto"}, MeanLifetime: 60}
	default:
		return Scenario{}, fmt.Errorf("arena: unknown preset %q (want one of smoke, steady, bursty, diurnal, churn, heavytail)", name)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("arena: %w", err)
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return Scenario{}, fmt.Errorf("arena: %s: %w", path, err)
	}
	if sc.Name == "" {
		sc.Name = path
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
