package arena

import (
	"fmt"
	"math"

	"partfeas/internal/machine"
	"partfeas/internal/task"
	"partfeas/internal/workload"
)

// EventKind discriminates stream events. The numeric order is the
// within-tick delivery order: machine churn first (so admissions see
// the tick's platform), then departures (freeing capacity), then
// arrivals.
type EventKind uint8

const (
	// EvMachineDown removes Machine from the platform; residents on it
	// are re-placed (lane rebuild) and may be evicted.
	EvMachineDown EventKind = iota
	// EvMachineUp returns Machine to the platform.
	EvMachineUp
	// EvDepart retires arrival Seq. Lanes that rejected Seq ignore it —
	// departures are keyed on the stream's global sequence number, not
	// on any lane's private engine ids, precisely so one stream can
	// drive lanes whose admission decisions diverge.
	EvDepart
	// EvAdmit offers Task (arrival number Seq) to every lane.
	EvAdmit
)

func (k EventKind) String() string {
	switch k {
	case EvMachineDown:
		return "machine_down"
	case EvMachineUp:
		return "machine_up"
	case EvDepart:
		return "depart"
	case EvAdmit:
		return "admit"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one element of the shared stream.
type Event struct {
	Tick    int
	Kind    EventKind
	Seq     int       // EvAdmit, EvDepart: global arrival sequence number
	Task    task.Task // EvAdmit only
	Machine int       // EvMachineDown, EvMachineUp: full-platform index
}

// Stream is the fully materialized event sequence plus the platform it
// runs on. Building it consumes the scenario's entire random budget up
// front, so lanes never touch the RNG and the stream is identical for
// every lane and worker count by construction.
type Stream struct {
	Platform machine.Platform // full platform, speed-ascending
	Events   []Event          // tick-major, within-tick order per EventKind
	Arrivals int              // total EvAdmit count
	Ticks    int
}

// BuildStream materializes the scenario. The same validated Scenario
// always yields the same stream, bit for bit.
func BuildStream(sc Scenario) (*Stream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := workload.NewRNG(sc.Seed)
	fam, err := speedFamily(sc.Speeds)
	if err != nil {
		return nil, err
	}
	plat, err := fam.Platform(rng, sc.Machines)
	if err != nil {
		return nil, err
	}
	plat = plat.SortedBySpeed() // the paper's scan order; subsets stay sorted

	st := &Stream{Platform: plat, Ticks: sc.Ticks}
	up := make([]bool, sc.Machines)
	for j := range up {
		up[j] = true
	}
	upCount := sc.Machines
	departAt := make(map[int][]int) // tick -> seqs, appended in seq order
	burst := false
	seq := 0

	for tick := 0; tick < sc.Ticks; tick++ {
		if sc.PMachineDown > 0 {
			for j := 0; j < sc.Machines; j++ {
				if up[j] {
					if upCount > 1 && rng.Float64() < sc.PMachineDown {
						up[j] = false
						upCount--
						st.Events = append(st.Events, Event{Tick: tick, Kind: EvMachineDown, Machine: j})
					}
				} else if rng.Float64() < sc.PMachineUp {
					up[j] = true
					upCount++
					st.Events = append(st.Events, Event{Tick: tick, Kind: EvMachineUp, Machine: j})
				}
			}
		}
		for _, s := range departAt[tick] {
			st.Events = append(st.Events, Event{Tick: tick, Kind: EvDepart, Seq: s})
		}
		delete(departAt, tick)

		rate := sc.Arrival.Rate
		switch sc.Arrival.Kind {
		case "bursty":
			if burst {
				if rng.Float64() < sc.Arrival.PCalm {
					burst = false
				}
			} else if rng.Float64() < sc.Arrival.PBurst {
				burst = true
			}
			if burst {
				rate = sc.Arrival.BurstRate
			}
		case "diurnal":
			rate *= 1 + 0.8*math.Sin(2*math.Pi*float64(tick)/float64(sc.Arrival.PeriodTicks))
			if rate < 0 {
				rate = 0
			}
		}
		for k := rng.Poisson(rate); k > 0; k-- {
			u, err := drawUtil(rng, sc.Util)
			if err != nil {
				return nil, err
			}
			p, err := workload.LogUniformPeriod(rng, sc.PeriodLo, sc.PeriodHi)
			if err != nil {
				return nil, err
			}
			w := int64(math.Round(u * float64(p)))
			if w < 1 {
				w = 1
			}
			t := task.Task{Name: fmt.Sprintf("a%d", seq), WCET: w, Period: p}
			st.Events = append(st.Events, Event{Tick: tick, Kind: EvAdmit, Seq: seq, Task: t})
			if sc.MeanLifetime > 0 {
				life := int(math.Round(rng.Exp(sc.MeanLifetime)))
				if life < 1 {
					life = 1 // departures land strictly after the arrival tick
				}
				if d := tick + life; d < sc.Ticks {
					departAt[d] = append(departAt[d], seq)
				}
			}
			seq++
		}
	}
	st.Arrivals = seq
	return st, nil
}

func drawUtil(rng *workload.RNG, u UtilSpec) (float64, error) {
	switch u.Kind {
	case "uniform":
		return rng.Range(u.Lo, u.Hi), nil
	case "pareto":
		return rng.ParetoBounded(u.Alpha, u.Lo, u.Hi)
	case "bimodal":
		q := (u.Hi - u.Lo) / 4
		if rng.Float64() < 0.8 {
			return rng.Range(u.Lo, u.Lo+q), nil
		}
		return rng.Range(u.Hi-q, u.Hi), nil
	}
	return 0, fmt.Errorf("arena: unknown utilization kind %q", u.Kind)
}
