package arena

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// TickScore is one lane's deterministic per-tick scorecard. Every field
// is a pure function of (Scenario, policy): the determinism tests hold
// Scores byte-identical across worker counts, so nothing wall-clock may
// ever live here — that is TickLatency's job.
type TickScore struct {
	Tick     int
	Offered  int // arrivals offered this tick
	Admitted int // arrivals accepted this tick
	Rejected int // arrivals refused this tick
	Departed int // residents retired by the stream this tick
	Evicted  int // residents dropped by a rebuild (churn / refused removal)
	Resident int // residents at tick end
	// Migrations counts residents whose machine changed since the
	// previous tick end — repartition hooks and churn rebuilds both
	// land here.
	Migrations int
	// Visited sums the engines' replay-visited positions this tick —
	// the arena's deterministic proxy for placement work.
	Visited int
	// AcceptanceCum is lifetime admitted/offered (1 before any offer).
	AcceptanceCum float64
	// UtilSpread is max−min of load/speed over the up machines at tick
	// end: 0 is perfectly balanced.
	UtilSpread float64
}

// TickLatency is one lane's wall-clock per-op latency quantiles for a
// tick, in nanoseconds. Ops counts the engine calls measured. It is
// reported, plotted and summarized — and deliberately excluded from
// every determinism check.
type TickLatency struct {
	Tick int
	Ops  int
	P50  float64
	P90  float64
	P99  float64
	Max  float64
}

func tickLatency(tick int, ns []float64) TickLatency {
	tl := TickLatency{Tick: tick, Ops: len(ns)}
	if len(ns) == 0 {
		return tl
	}
	s := append([]float64(nil), ns...)
	sort.Float64s(s)
	tl.P50 = quantile(s, 0.50)
	tl.P90 = quantile(s, 0.90)
	tl.P99 = quantile(s, 0.99)
	tl.Max = s[len(s)-1]
	return tl
}

// quantile reads the q-th quantile from an ascending slice by the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// LaneSummary aggregates one lane over the whole run.
type LaneSummary struct {
	Lane            string
	Offered         int
	Admitted        int
	Evicted         int
	Migrations      int
	Visited         int
	AcceptanceRatio float64 // lifetime admitted/offered
	MeanSpread      float64 // mean per-tick utilization spread
	FinalResident   int
	P99Ns           float64 // p99 over all measured ops
	Ops             int
}

// RunResult is everything a World run produced, indexed [lane][tick].
type RunResult struct {
	Scenario Scenario
	Lanes    []string
	Scores   [][]TickScore
	Latency  [][]TickLatency
}

// Summaries folds each lane's per-tick rows into one line. The P99 is
// re-derived from per-tick quantiles (max of tick p99s would overstate;
// we take the op-weighted mean as a stable, cheap summary).
func (r *RunResult) Summaries() []LaneSummary {
	out := make([]LaneSummary, len(r.Lanes))
	for i, name := range r.Lanes {
		s := LaneSummary{Lane: name}
		spreadSum := 0.0
		wp99 := 0.0
		for _, ts := range r.Scores[i] {
			s.Offered += ts.Offered
			s.Admitted += ts.Admitted
			s.Evicted += ts.Evicted
			s.Migrations += ts.Migrations
			s.Visited += ts.Visited
			spreadSum += ts.UtilSpread
			s.FinalResident = ts.Resident
		}
		for _, tl := range r.Latency[i] {
			s.Ops += tl.Ops
			wp99 += tl.P99 * float64(tl.Ops)
		}
		s.AcceptanceRatio = 1
		if s.Offered > 0 {
			s.AcceptanceRatio = float64(s.Admitted) / float64(s.Offered)
		}
		if n := len(r.Scores[i]); n > 0 {
			s.MeanSpread = spreadSum / float64(n)
		}
		if s.Ops > 0 {
			s.P99Ns = wp99 / float64(s.Ops)
		}
		out[i] = s
	}
	return out
}

// WriteCSV emits one row per lane per tick: the deterministic scorecard
// joined with the wall-clock latency columns.
func (r *RunResult) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "scenario,lane,tick,offered,admitted,rejected,departed,evicted,resident,migrations,visited,acceptance_cum,util_spread,ops,p50_ns,p90_ns,p99_ns,max_ns"); err != nil {
		return err
	}
	for i, name := range r.Lanes {
		for k, ts := range r.Scores[i] {
			tl := r.Latency[i][k]
			if _, err := fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%.0f,%.0f,%.0f,%.0f\n",
				r.Scenario.Name, name, ts.Tick, ts.Offered, ts.Admitted, ts.Rejected,
				ts.Departed, ts.Evicted, ts.Resident, ts.Migrations, ts.Visited,
				ts.AcceptanceCum, ts.UtilSpread,
				tl.Ops, tl.P50, tl.P90, tl.P99, tl.Max); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
