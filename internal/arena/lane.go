package arena

import (
	"errors"
	"fmt"
	"time"

	"partfeas/internal/machine"
	"partfeas/internal/online"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// laneOp records one call the lane actually made against its engine —
// the differential tests replay this trace against independently built
// engines and demand byte-identical observable state. Tracing is a test
// hook (World.traceOps); production runs record nothing.
type laneOp struct {
	kind uint8            // one of opFresh, opAdmit, opRemove, opDrop
	t    task.Task        // opFresh (seed task), opAdmit
	id   int              // opRemove: engine id
	plat machine.Platform // opFresh: the sub-platform the engine was built on
}

const (
	opFresh uint8 = iota // NewEngine with a single seed task
	opAdmit              // Admit(t) that returned admitted=true
	opRemove             // Remove(id) that returned ok=true
	opDrop               // last resident departed; engine discarded
)

// laneTask pairs a resident's stream sequence number with its task.
// The slice index of a laneTask IS its engine id: Admit appends, and a
// successful Remove(id) splices — exactly the engine's own id compaction
// — so the two stay aligned without consulting the engine.
type laneTask struct {
	seq int
	t   task.Task
}

// lane runs one policy over the shared stream. Lanes are mutually
// independent: each owns its engine, bookkeeping and score slices, so a
// worker pool can run any subset concurrently without synchronization.
type lane struct {
	name  string
	pol   online.Policy
	adm   partition.AdmissionTest
	alpha float64

	full  machine.Platform
	up    []bool
	upIdx []int // engine machine index -> full-platform index

	e   *online.Engine
	res []laneTask  // engine id -> resident
	id  map[int]int // seq -> engine id

	prev map[int]int // seq -> full machine index at previous tick end

	traceOn bool
	trace   []laneOp

	// per-tick accumulators, reset by endTick
	offered, admitted, rejected int
	departed, evicted           int
	visited                     int
	lat                         []float64 // per-op wall ns this tick

	offTotal, admTotal int

	scores []TickScore
	lats   []TickLatency
}

func newLane(name string, pol online.Policy, adm partition.AdmissionTest, alpha float64, full machine.Platform, ticks int) *lane {
	l := &lane{
		name: name, pol: pol, adm: adm, alpha: alpha,
		full: full.Clone(),
		up:   make([]bool, len(full)),
		id:   make(map[int]int),
		prev: make(map[int]int),
	}
	for j := range l.up {
		l.up[j] = true
	}
	l.rebuildUpIdx()
	l.scores = make([]TickScore, 0, ticks)
	l.lats = make([]TickLatency, 0, ticks)
	return l
}

func (l *lane) rebuildUpIdx() {
	l.upIdx = l.upIdx[:0]
	for j, u := range l.up {
		if u {
			l.upIdx = append(l.upIdx, j)
		}
	}
}

func (l *lane) subPlatform() machine.Platform {
	p := make(machine.Platform, 0, len(l.upIdx))
	for _, j := range l.upIdx {
		p = append(p, l.full[j])
	}
	return p
}

func (l *lane) record(op laneOp) {
	if l.traceOn {
		l.trace = append(l.trace, op)
	}
}

// apply feeds one stream event to the lane.
func (l *lane) apply(ev Event) error {
	switch ev.Kind {
	case EvMachineDown:
		if !l.up[ev.Machine] {
			return fmt.Errorf("arena: lane %s: machine %d already down", l.name, ev.Machine)
		}
		l.up[ev.Machine] = false
		l.rebuildUpIdx()
		return l.rebuild()
	case EvMachineUp:
		if l.up[ev.Machine] {
			return fmt.Errorf("arena: lane %s: machine %d already up", l.name, ev.Machine)
		}
		l.up[ev.Machine] = true
		l.rebuildUpIdx()
		return l.rebuild()
	case EvDepart:
		return l.depart(ev.Seq)
	case EvAdmit:
		return l.admit(ev.Seq, ev.Task)
	}
	return fmt.Errorf("arena: unknown event kind %v", ev.Kind)
}

func (l *lane) admit(seq int, t task.Task) error {
	l.offered++
	l.offTotal++
	if l.e == nil {
		plat := l.subPlatform()
		start := time.Now()
		e, err := online.NewEngine(task.Set{t}, plat, online.Options{
			Policy: l.pol, Admission: l.adm, Alpha: l.alpha,
		})
		l.lat = append(l.lat, float64(time.Since(start).Nanoseconds()))
		if err != nil {
			if errors.Is(err, online.ErrInfeasible) {
				l.rejected++
				return nil
			}
			return fmt.Errorf("arena: lane %s: %w", l.name, err)
		}
		l.record(laneOp{kind: opFresh, t: t, plat: plat})
		l.e = e
		l.res = append(l.res[:0], laneTask{seq: seq, t: t})
		clear(l.id)
		l.id[seq] = 0
		l.admitted++
		l.admTotal++
		return nil
	}
	start := time.Now()
	_, ok, err := l.e.Admit(t)
	l.lat = append(l.lat, float64(time.Since(start).Nanoseconds()))
	if err != nil {
		return fmt.Errorf("arena: lane %s: admit seq %d: %w", l.name, seq, err)
	}
	l.visited += l.e.LastOpStats().Visited
	if !ok {
		l.rejected++
		return nil
	}
	l.record(laneOp{kind: opAdmit, t: t})
	l.id[seq] = len(l.res)
	l.res = append(l.res, laneTask{seq: seq, t: t})
	l.admitted++
	l.admTotal++
	return nil
}

func (l *lane) depart(seq int) error {
	eid, resident := l.id[seq]
	if !resident {
		return nil // this lane rejected (or already evicted) the arrival
	}
	l.departed++
	if len(l.res) == 1 {
		// Engines refuse to drop their last resident (a task.Set must be
		// non-empty), so an empty lane is modeled as no engine at all.
		l.record(laneOp{kind: opDrop})
		l.e = nil
		l.res = l.res[:0]
		clear(l.id)
		delete(l.prev, seq)
		return nil
	}
	start := time.Now()
	_, ok, err := l.e.Remove(eid)
	l.lat = append(l.lat, float64(time.Since(start).Nanoseconds()))
	if err != nil {
		return fmt.Errorf("arena: lane %s: remove seq %d: %w", l.name, seq, err)
	}
	l.visited += l.e.LastOpStats().Visited
	if ok {
		l.record(laneOp{kind: opRemove, id: eid})
		l.res = append(l.res[:eid], l.res[eid+1:]...)
		delete(l.id, seq)
		for i := eid; i < len(l.res); i++ {
			l.id[l.res[i].seq] = i
		}
		delete(l.prev, seq)
		return nil
	}
	// The ordered policy may refuse a removal (first-fit is not monotone
	// in placement order: the survivors alone need not re-place). Fall
	// back to a rebuild without the departing task; survivors that no
	// longer fit are evicted.
	keep := make([]laneTask, 0, len(l.res)-1)
	for _, lt := range l.res {
		if lt.seq != seq {
			keep = append(keep, lt)
		}
	}
	l.res = keep
	delete(l.prev, seq)
	return l.rebuild()
}

// rebuild re-places the current residents from scratch on the current
// up-machine sub-platform by sequential re-admission in arrival order.
// Residents that no longer fit are evicted (scored, removed from the
// lane). Used for machine churn and for refused ordered removals.
func (l *lane) rebuild() error {
	keep := append([]laneTask(nil), l.res...)
	l.e = nil
	l.res = l.res[:0]
	clear(l.id)
	plat := l.subPlatform()
	for _, lt := range keep {
		if l.e == nil {
			start := time.Now()
			e, err := online.NewEngine(task.Set{lt.t}, plat, online.Options{
				Policy: l.pol, Admission: l.adm, Alpha: l.alpha,
			})
			l.lat = append(l.lat, float64(time.Since(start).Nanoseconds()))
			if err != nil {
				if errors.Is(err, online.ErrInfeasible) {
					l.evict(lt.seq)
					continue
				}
				return fmt.Errorf("arena: lane %s: rebuild: %w", l.name, err)
			}
			l.record(laneOp{kind: opFresh, t: lt.t, plat: plat})
			l.e = e
		} else {
			start := time.Now()
			_, ok, err := l.e.Admit(lt.t)
			l.lat = append(l.lat, float64(time.Since(start).Nanoseconds()))
			if err != nil {
				return fmt.Errorf("arena: lane %s: rebuild: %w", l.name, err)
			}
			l.visited += l.e.LastOpStats().Visited
			if !ok {
				l.evict(lt.seq)
				continue
			}
			l.record(laneOp{kind: opAdmit, t: lt.t})
		}
		l.id[lt.seq] = len(l.res)
		l.res = append(l.res, lt)
	}
	if l.e == nil {
		l.record(laneOp{kind: opDrop})
	}
	return nil
}

func (l *lane) evict(seq int) {
	l.evicted++
	delete(l.prev, seq)
}

// endTick closes the tick: migrations are the residents whose
// full-platform machine changed since the previous tick end (rebuilds
// and repartition hooks both show up here), and utilization spread is
// max−min of load/speed over the up machines.
func (l *lane) endTick(tick int) {
	migrations := 0
	spread := 0.0
	cur := make(map[int]int, len(l.res))
	if l.e != nil {
		r := l.e.Result()
		for eid, lt := range l.res {
			full := l.upIdx[r.Assignment[eid]]
			cur[lt.seq] = full
			if p, ok := l.prev[lt.seq]; ok && p != full {
				migrations++
			}
		}
		lo, hi := 0.0, 0.0
		for j := range r.Loads {
			u := r.Loads[j] / l.full[l.upIdx[j]].Speed
			if j == 0 || u < lo {
				lo = u
			}
			if j == 0 || u > hi {
				hi = u
			}
		}
		spread = hi - lo
	}
	l.prev = cur

	acc := 1.0
	if l.offTotal > 0 {
		acc = float64(l.admTotal) / float64(l.offTotal)
	}
	l.scores = append(l.scores, TickScore{
		Tick: tick, Offered: l.offered, Admitted: l.admitted,
		Rejected: l.rejected, Departed: l.departed, Evicted: l.evicted,
		Resident: len(l.res), Migrations: migrations, Visited: l.visited,
		AcceptanceCum: acc, UtilSpread: spread,
	})
	l.lats = append(l.lats, tickLatency(tick, l.lat))
	l.offered, l.admitted, l.rejected = 0, 0, 0
	l.departed, l.evicted, l.visited = 0, 0, 0
	l.lat = l.lat[:0]
}

// run drives the lane over the whole stream.
func (l *lane) run(st *Stream) error {
	i := 0
	for tick := 0; tick < st.Ticks; tick++ {
		for i < len(st.Events) && st.Events[i].Tick == tick {
			if err := l.apply(st.Events[i]); err != nil {
				return err
			}
			i++
		}
		l.endTick(tick)
	}
	return nil
}
