package arena

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"partfeas/internal/online"
	"partfeas/internal/task"
)

// allLanes exercises every canonical policy plus the repartition
// wrapper grammar in one arena.
var allLanes = []string{
	"first_fit_sorted", "first_fit_arrival", "best_fit", "worst_fit",
	"k_choices", "k_choices_4", "first_fit_arrival+repartition_25",
}

func TestStreamDeterministic(t *testing.T) {
	sc, err := Preset("churn")
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario built two different streams")
	}
	if a.Arrivals == 0 {
		t.Fatal("stream produced no arrivals")
	}
}

func TestStreamInvariants(t *testing.T) {
	for _, name := range Presets() {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := BuildStream(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		up := make([]bool, sc.Machines)
		upCount := sc.Machines
		for i := range up {
			up[i] = true
		}
		arrived := make(map[int]int) // seq -> tick
		departed := make(map[int]bool)
		lastTick := 0
		for _, ev := range st.Events {
			if ev.Tick < lastTick || ev.Tick >= sc.Ticks {
				t.Fatalf("%s: event tick %d out of order/range", name, ev.Tick)
			}
			lastTick = ev.Tick
			switch ev.Kind {
			case EvAdmit:
				if err := ev.Task.Validate(); err != nil {
					t.Fatalf("%s: seq %d: %v", name, ev.Seq, err)
				}
				if _, dup := arrived[ev.Seq]; dup {
					t.Fatalf("%s: seq %d arrives twice", name, ev.Seq)
				}
				arrived[ev.Seq] = ev.Tick
			case EvDepart:
				at, ok := arrived[ev.Seq]
				if !ok || departed[ev.Seq] {
					t.Fatalf("%s: seq %d departs unarrived or twice", name, ev.Seq)
				}
				if ev.Tick <= at {
					t.Fatalf("%s: seq %d departs at tick %d, arrived %d", name, ev.Seq, ev.Tick, at)
				}
				departed[ev.Seq] = true
			case EvMachineDown:
				if !up[ev.Machine] || upCount == 1 {
					t.Fatalf("%s: machine %d down while down or last", name, ev.Machine)
				}
				up[ev.Machine] = false
				upCount--
			case EvMachineUp:
				if up[ev.Machine] {
					t.Fatalf("%s: machine %d up while up", name, ev.Machine)
				}
				up[ev.Machine] = true
				upCount++
			}
		}
		if len(arrived) != st.Arrivals {
			t.Fatalf("%s: %d arrivals seen, header says %d", name, len(arrived), st.Arrivals)
		}
	}
}

// TestWorldDeterminism is the tentpole promise: the deterministic
// scorecard is byte-identical at any worker count.
func TestWorldDeterminism(t *testing.T) {
	for _, preset := range []string{"churn", "bursty"} {
		sc, err := Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		var ref *RunResult
		for _, workers := range []int{1, 2, 8} {
			w, err := NewWorld(sc, allLanes)
			if err != nil {
				t.Fatal(err)
			}
			res, err := w.Run(workers)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res.Lanes, ref.Lanes) {
				t.Fatalf("%s: lane names differ at %d workers", preset, workers)
			}
			for i := range ref.Lanes {
				if !scoresEqual(res.Scores[i], ref.Scores[i]) {
					t.Fatalf("%s: lane %s scores differ between 1 and %d workers", preset, ref.Lanes[i], workers)
				}
			}
		}
	}
}

// scoresEqual compares bitwise, including the float fields.
func scoresEqual(a, b []TickScore) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.Float64bits(x.AcceptanceCum) != math.Float64bits(y.AcceptanceCum) ||
			math.Float64bits(x.UtilSpread) != math.Float64bits(y.UtilSpread) {
			return false
		}
		x.AcceptanceCum, y.AcceptanceCum = 0, 0
		x.UtilSpread, y.UtilSpread = 0, 0
		if x != y {
			return false
		}
	}
	return true
}

// TestLaneDifferentialReplay replays every lane's recorded engine-op
// trace against independently constructed engines and demands the
// observable final state match byte for byte — each World lane is
// exactly a fresh engine driven with the same ops and policy.
func TestLaneDifferentialReplay(t *testing.T) {
	sc, err := Preset("churn")
	if err != nil {
		t.Fatal(err)
	}
	sc.Ticks = 150
	w, err := NewWorld(sc, allLanes)
	if err != nil {
		t.Fatal(err)
	}
	w.traceOps = true
	if _, err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	for i, name := range w.Lanes() {
		pol, err := online.ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		var e *online.Engine
		for k, op := range w.lastTraces[i] {
			switch op.kind {
			case opFresh:
				e, err = online.NewEngine(task.Set{op.t}, op.plat, online.Options{
					Policy: pol, Admission: w.adm, Alpha: sc.Alpha,
				})
				if err != nil {
					t.Fatalf("lane %s: replay op %d: %v", name, k, err)
				}
			case opAdmit:
				_, ok, err := e.Admit(op.t)
				if err != nil || !ok {
					t.Fatalf("lane %s: replay op %d: admitted=%v err=%v", name, k, ok, err)
				}
			case opRemove:
				_, ok, err := e.Remove(op.id)
				if err != nil || !ok {
					t.Fatalf("lane %s: replay op %d: removed=%v err=%v", name, k, ok, err)
				}
			case opDrop:
				e = nil
			}
		}
		want := w.lastEngines[i]
		if (e == nil) != (want == nil) {
			t.Fatalf("lane %s: replay engine nil=%v, lane engine nil=%v", name, e == nil, want == nil)
		}
		if e == nil {
			continue
		}
		if err := want.SelfCheck(); err != nil {
			t.Fatalf("lane %s: %v", name, err)
		}
		if !reflect.DeepEqual(e.Tasks(), want.Tasks()) {
			t.Fatalf("lane %s: replayed tasks differ", name)
		}
		if !reflect.DeepEqual(e.PlacedLists(), want.PlacedLists()) {
			t.Fatalf("lane %s: replayed placement differs", name)
		}
		gr, wr := e.Result(), want.Result()
		if !reflect.DeepEqual(gr.Assignment, wr.Assignment) {
			t.Fatalf("lane %s: replayed assignment differs", name)
		}
		for j := range wr.Loads {
			if math.Float64bits(gr.Loads[j]) != math.Float64bits(wr.Loads[j]) {
				t.Fatalf("lane %s: machine %d load %v vs %v (not bitwise equal)", name, j, gr.Loads[j], wr.Loads[j])
			}
		}
	}
}

func TestWorldRejectsBadInput(t *testing.T) {
	sc, _ := Preset("smoke")
	if _, err := NewWorld(sc, nil); err == nil {
		t.Error("no policies accepted")
	}
	if _, err := NewWorld(sc, []string{"quantum_fit"}); err == nil || !strings.Contains(err.Error(), "quantum_fit") {
		t.Errorf("unknown policy: %v", err)
	}
	if _, err := NewWorld(sc, []string{"best_fit", "best_fit"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate lane: %v", err)
	}
	bad := sc
	bad.Ticks = 0
	if _, err := NewWorld(bad, []string{"best_fit"}); err == nil {
		t.Error("zero ticks accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	base := func() Scenario {
		return Scenario{Ticks: 10, Machines: 2, Arrival: ArrivalSpec{Rate: 1}}
	}
	sc := base()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Speeds != "uniform" || sc.Arrival.Kind != "poisson" || sc.Util.Kind != "uniform" ||
		sc.Alpha != 1 || sc.Admission != "edf" || sc.PeriodLo != 100 || sc.PeriodHi != 100000 {
		t.Fatalf("defaults not filled: %+v", sc)
	}
	for _, mut := range []func(*Scenario){
		func(s *Scenario) { s.Machines = 0 },
		func(s *Scenario) { s.Arrival.Rate = 0 },
		func(s *Scenario) { s.Arrival.Kind = "lumpy" },
		func(s *Scenario) { s.Util.Kind = "trimodal" },
		func(s *Scenario) { s.Util.Lo = 0.5; s.Util.Hi = 0.2 },
		func(s *Scenario) { s.Speeds = "warp" },
		func(s *Scenario) { s.Admission = "vibes" },
		func(s *Scenario) { s.PMachineDown = 0.5 }, // no way back up
		func(s *Scenario) { s.PMachineDown = 1.5; s.PMachineUp = 0.1 },
		func(s *Scenario) { s.Alpha = -1 },
		func(s *Scenario) { s.PeriodLo = 500; s.PeriodHi = 400 },
	} {
		s := base()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("accepted %+v", s)
		}
	}
}

func TestPresetAndLoadScenario(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
	for _, name := range Presets() {
		if _, err := Preset(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(path, []byte(`{"seed": 7, "ticks": 20, "machines": 4, "arrival": {"kind": "bursty", "rate": 1.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != path || sc.Arrival.BurstRate != 6 {
		t.Fatalf("loaded scenario %+v", sc)
	}
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"ticks": -1`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(path); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestCSVAndSummaries(t *testing.T) {
	sc, err := Preset("smoke")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(sc, []string{"first_fit_sorted", "best_fit"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := 1 + 2*sc.Ticks
	if len(lines) != want {
		t.Fatalf("%d CSV lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[1], "smoke,first_fit_sorted,0,") {
		t.Fatalf("first row %q", lines[1])
	}
	sums := res.Summaries()
	if len(sums) != 2 {
		t.Fatalf("%d summaries", len(sums))
	}
	for _, s := range sums {
		if s.Offered == 0 || s.Admitted == 0 {
			t.Fatalf("lane %s saw no traffic: %+v", s.Lane, s)
		}
		if s.AcceptanceRatio < 0 || s.AcceptanceRatio > 1 {
			t.Fatalf("lane %s acceptance %v", s.Lane, s.AcceptanceRatio)
		}
		if s.Offered != sums[0].Offered {
			t.Fatalf("lanes saw different offered counts: %+v vs %+v", s, sums[0])
		}
	}
}
