package fractional

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func mustSet(t testing.TB, us []float64) task.Set {
	t.Helper()
	s, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildLPShape(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.25})
	p := machine.New(1, 2, 4)
	prob, err := BuildLP(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if prob.NumVars != 6 {
		t.Errorf("NumVars = %d, want 6", prob.NumVars)
	}
	// n equality + n task-parallelism + m machine-capacity constraints.
	if got, want := len(prob.Constraints), 2+2+3; got != want {
		t.Errorf("constraints = %d, want %d", got, want)
	}
}

func TestBuildLPValidates(t *testing.T) {
	if _, err := BuildLP(task.Set{}, machine.New(1)); err == nil {
		t.Error("empty task set should fail")
	}
	ts := mustSet(t, []float64{0.5})
	if _, err := BuildLP(ts, machine.Platform{}); err == nil {
		t.Error("empty platform should fail")
	}
}

func TestFeasibleLPSingleMachine(t *testing.T) {
	p := machine.New(1)
	ok, err := FeasibleLP(mustSet(t, []float64{0.5, 0.4}), p)
	if err != nil || !ok {
		t.Errorf("0.9 on speed 1: %v (%v), want feasible", ok, err)
	}
	ok, err = FeasibleLP(mustSet(t, []float64{0.6, 0.6}), p)
	if err != nil || ok {
		t.Errorf("1.2 on speed 1: %v (%v), want infeasible", ok, err)
	}
}

func TestFeasibleLPTaskTooBig(t *testing.T) {
	// A single task with utilization above the fastest machine is
	// infeasible no matter the total capacity: constraint (2) bites.
	p := machine.New(1, 1, 1, 1)
	ok, err := FeasibleLP(mustSet(t, []float64{1.5}), p)
	if err != nil || ok {
		t.Errorf("w=1.5 on unit machines: %v (%v), want infeasible", ok, err)
	}
	if FeasibleHLS(mustSet(t, []float64{1.5}), p) {
		t.Error("HLS should also reject w=1.5 on unit machines")
	}
}

func TestFeasibleMigratoryButNotPartitioned(t *testing.T) {
	// Three tasks of utilization 2/3 on two unit machines: total 2 = total
	// speed; fractional/migratory schedulable (McNaughton), but no
	// partition fits (two tasks on one machine = 4/3 > 1).
	ts := task.Set{
		{Name: "a", WCET: 2, Period: 3},
		{Name: "b", WCET: 2, Period: 3},
		{Name: "c", WCET: 2, Period: 3},
	}
	p := machine.New(1, 1)
	ok, err := FeasibleLP(ts, p)
	if err != nil || !ok {
		t.Errorf("LP: %v (%v), want feasible", ok, err)
	}
	if !FeasibleHLS(ts, p) {
		t.Error("HLS should accept three 2/3 tasks on two unit machines")
	}
}

func TestSolveLPWitness(t *testing.T) {
	ts := mustSet(t, []float64{0.8, 0.4})
	p := machine.New(1, 1)
	ok, u, err := SolveLP(ts, p)
	if err != nil || !ok {
		t.Fatalf("SolveLP: %v (%v)", ok, err)
	}
	// Witness must satisfy the constraints it encodes.
	for i := range ts {
		rowSum := 0.0
		timeFrac := 0.0
		for j := range p {
			if u[i][j] < -1e-7 {
				t.Errorf("u[%d][%d] = %v negative", i, j, u[i][j])
			}
			rowSum += u[i][j]
			timeFrac += u[i][j] / p[j].Speed
		}
		if math.Abs(rowSum-ts[i].Utilization()) > 1e-6 {
			t.Errorf("task %d placed %v, want %v", i, rowSum, ts[i].Utilization())
		}
		if timeFrac > 1+1e-6 {
			t.Errorf("task %d time fraction %v > 1", i, timeFrac)
		}
	}
	for j := range p {
		load := 0.0
		for i := range ts {
			load += u[i][j] / p[j].Speed
		}
		if load > 1+1e-6 {
			t.Errorf("machine %d overloaded: %v", j, load)
		}
	}
	// Infeasible instance returns ok=false, nil witness.
	ok, u, err = SolveLP(mustSet(t, []float64{0.9, 0.9, 0.9}), machine.New(1, 1))
	if err != nil || ok || u != nil {
		t.Errorf("infeasible SolveLP = %v, %v, %v", ok, u, err)
	}
}

func TestHLSBoundaryFeasible(t *testing.T) {
	// Exactly at capacity: total utilization == total speed.
	ts := mustSet(t, []float64{1, 0.5, 0.5})
	p := machine.New(1, 1)
	if !FeasibleHLS(ts, p) {
		t.Error("exact-capacity instance should be feasible")
	}
}

func TestHLSPrefixViolation(t *testing.T) {
	// Two big tasks vs one fast + one slow machine: w = {1.0, 1.0},
	// s = {1.9, 0.1}: prefix k=1: 1.0 <= 1.9 ok; total 2.0 <= 2.0 ok — feasible.
	ts := mustSet(t, []float64{1, 1})
	p := machine.New(1.9, 0.1)
	if !FeasibleHLS(ts, p) {
		t.Error("should be feasible (fractional)")
	}
	// w = {1.95, 0.05}: k=1 prefix: 1.95 > 1.9 → infeasible.
	ts2 := mustSet(t, []float64{1.95, 0.05})
	if FeasibleHLS(ts2, p) {
		t.Error("prefix violation should be infeasible")
	}
}

func TestHLSMoreTasksThanMachines(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.5, 0.5, 0.5})
	if !FeasibleHLS(ts, machine.New(1, 1)) {
		t.Error("four 0.5s on two unit machines should be feasible")
	}
	ts2 := mustSet(t, []float64{0.5, 0.5, 0.5, 0.5, 0.5})
	if FeasibleHLS(ts2, machine.New(1, 1)) {
		t.Error("total 2.5 on speed 2 should be infeasible")
	}
}

func TestHLSFewerTasksThanMachines(t *testing.T) {
	ts := mustSet(t, []float64{0.5})
	if !FeasibleHLS(ts, machine.New(1, 1, 1)) {
		t.Error("one small task on three machines should be feasible")
	}
}

// The headline property: HLS agrees with the simplex on random instances.
func TestHLSAgreesWithSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	agree := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()*1.5
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)

		// Skip instances within tolerance of the feasibility boundary,
		// where the two tests may legitimately disagree by float noise.
		sigma, err := MinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sigma-1) < 1e-6 {
			continue
		}

		hls := FeasibleHLS(ts, p)
		lpFeas, err := FeasibleLP(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if hls != lpFeas {
			t.Fatalf("trial %d: HLS=%v simplex=%v for %v on %v (σ=%v)",
				trial, hls, lpFeas, us, speeds, sigma)
		}
		agree++
	}
	if agree < 200 {
		t.Errorf("too few decisive trials: %d", agree)
	}
}

func TestMinScalingClosedForm(t *testing.T) {
	// Single machine: σ = total utilization / speed.
	ts := mustSet(t, []float64{0.5, 0.25})
	sigma, err := MinScaling(ts, machine.New(0.5))
	if err != nil || math.Abs(sigma-1.5) > 1e-9 {
		t.Errorf("σ = %v (%v), want 1.5", sigma, err)
	}
	// Big task dominates: w=1.5 vs fastest speed 1 → σ = 1.5.
	ts2 := mustSet(t, []float64{1.5, 0.1})
	sigma, err = MinScaling(ts2, machine.New(1, 1))
	if err != nil || math.Abs(sigma-1.5) > 1e-9 {
		t.Errorf("σ = %v (%v), want 1.5", sigma, err)
	}
	// Total dominates: four 0.75 on two unit machines → σ = 3/2.
	ts3 := mustSet(t, []float64{0.75, 0.75, 0.75, 0.75})
	sigma, err = MinScaling(ts3, machine.New(1, 1))
	if err != nil || math.Abs(sigma-1.5) > 1e-9 {
		t.Errorf("σ = %v (%v), want 1.5", sigma, err)
	}
}

func TestMinScalingValidates(t *testing.T) {
	if _, err := MinScaling(task.Set{}, machine.New(1)); err == nil {
		t.Error("empty set should fail")
	}
	ts := mustSet(t, []float64{0.5})
	if _, err := MinScaling(ts, machine.Platform{}); err == nil {
		t.Error("empty platform should fail")
	}
}

// Property: scaling the platform by σ_LP makes HLS feasible, and scaling
// by σ_LP/(1+ε) makes it infeasible — σ is genuinely minimal.
func TestMinScalingIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(5)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()*1.5
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		sigma, err := MinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if !FeasibleHLS(ts, p.Scaled(sigma*(1+1e-9))) {
			t.Fatalf("trial %d: infeasible at σ·(1+1e-9)=%v", trial, sigma)
		}
		if FeasibleHLS(ts, p.Scaled(sigma*(1-1e-6))) {
			t.Fatalf("trial %d: feasible below σ=%v", trial, sigma)
		}
	}
}

func BenchmarkFeasibleHLS(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	us := make([]float64, 200)
	for i := range us {
		us[i] = rng.Float64()
	}
	ts, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	speeds := make([]float64, 32)
	for j := range speeds {
		speeds[j] = 0.5 + rng.Float64()*4
	}
	p := machine.New(speeds...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeasibleHLS(ts, p)
	}
}

func BenchmarkFeasibleLPSimplex(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	us := make([]float64, 12)
	for i := range us {
		us[i] = rng.Float64()
	}
	ts, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	p := machine.New(0.5, 1, 2, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FeasibleLP(ts, p); err != nil {
			b.Fatal(err)
		}
	}
}
