// Package fractional implements the paper's fractional (migratory)
// adversary: the linear program (1)–(4) of §II and its combinatorial
// equivalent.
//
// The LP has a variable u_{i,j} for the utilization of task i assigned to
// machine j and requires
//
//	(1) ∀i: Σ_j u_{i,j}  = w_i          (all work placed)
//	(2) ∀i: Σ_j u_{i,j}/s_j ≤ 1         (a task never runs in parallel
//	                                     with itself)
//	(3) ∀j: Σ_i u_{i,j}/s_j ≤ 1         (machine capacity)
//	(4) u ≥ 0
//
// Feasibility of this LP is the classic necessary-and-sufficient condition
// for preemptive migratory scheduling on uniform machines (Horvath, Lam &
// Sethi 1977; Liu): with utilizations sorted non-increasingly and speeds
// non-increasingly,
//
//	Σ_{i≤k} w_i ≤ Σ_{j≤k} s_j  for k = 1..m−1,  and  Σ_i w_i ≤ Σ_j s_j.
//
// The package provides both: the LP built verbatim on internal/lp (the
// slow, independent oracle) and the O(n log n + m log m) combinatorial
// test, plus the closed-form minimal speed scaling σ_LP — the adversary
// strength used by experiments E3/E4/E5.
package fractional

import (
	"fmt"
	"math"
	"sort"

	"partfeas/internal/lp"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// BuildLP constructs the paper's LP for the given task set and platform.
// Variables are laid out row-major: u_{i,j} is variable i*m + j.
func BuildLP(ts task.Set, p machine.Platform) (*lp.Problem, error) {
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("fractional: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fractional: %w", err)
	}
	n, m := len(ts), len(p)
	prob := &lp.Problem{NumVars: n * m}

	// (1) ∀i: Σ_j u_{i,j} = w_i
	for i := 0; i < n; i++ {
		coeffs := make([]float64, n*m)
		for j := 0; j < m; j++ {
			coeffs[i*m+j] = 1
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: coeffs, Op: lp.EQ, RHS: ts[i].Utilization(),
		})
	}
	// (2) ∀i: Σ_j u_{i,j}/s_j <= 1
	for i := 0; i < n; i++ {
		coeffs := make([]float64, n*m)
		for j := 0; j < m; j++ {
			coeffs[i*m+j] = 1 / p[j].Speed
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: coeffs, Op: lp.LE, RHS: 1,
		})
	}
	// (3) ∀j: Σ_i u_{i,j}/s_j <= 1
	for j := 0; j < m; j++ {
		coeffs := make([]float64, n*m)
		for i := 0; i < n; i++ {
			coeffs[i*m+j] = 1 / p[j].Speed
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coeffs: coeffs, Op: lp.LE, RHS: 1,
		})
	}
	return prob, nil
}

// FeasibleLP checks the paper's LP by running the simplex solver. Exact up
// to lp.Eps; O((nm)^2·(n+m)) in practice. Prefer FeasibleHLS except in
// tests.
func FeasibleLP(ts task.Set, p machine.Platform) (bool, error) {
	prob, err := BuildLP(ts, p)
	if err != nil {
		return false, err
	}
	return lp.Feasible(prob)
}

// SolveLP solves the LP and, when feasible, returns the assignment matrix
// u with u[i][j] the utilization of task i placed on machine j.
func SolveLP(ts task.Set, p machine.Platform) (feasible bool, u [][]float64, err error) {
	prob, err := BuildLP(ts, p)
	if err != nil {
		return false, nil, err
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return false, nil, err
	}
	if sol.Status != lp.Optimal {
		return false, nil, nil
	}
	n, m := len(ts), len(p)
	u = make([][]float64, n)
	for i := 0; i < n; i++ {
		u[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			u[i][j] = sol.X[i*m+j]
		}
	}
	return true, u, nil
}

// FeasibleHLS checks the Horvath–Lam–Sethi condition: with utilizations
// and speeds both sorted non-increasingly, every prefix of the k largest
// utilizations must fit in the k fastest machines (k < m), and the total
// utilization must fit the total speed. Comparisons use a small relative
// tolerance so that instances constructed to sit exactly on the boundary
// count as feasible.
func FeasibleHLS(ts task.Set, p machine.Platform) bool {
	utils := ts.Utilizations()
	speeds := p.Speeds()
	return feasibleHLSRaw(utils, speeds)
}

func feasibleHLSRaw(utils, speeds []float64) bool {
	us := append([]float64(nil), utils...)
	ss := append([]float64(nil), speeds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(us)))
	sort.Sort(sort.Reverse(sort.Float64Slice(ss)))

	n, m := len(us), len(ss)
	wPrefix := 0.0
	sPrefix := 0.0
	for k := 0; k < m-1; k++ {
		if k < n {
			wPrefix += us[k]
		}
		sPrefix += ss[k]
		if wPrefix > sPrefix*(1+hlsTol)+hlsTol {
			return false
		}
	}
	wTotal := wPrefix
	for k := m - 1; k < n; k++ {
		wTotal += us[k]
	}
	sTotal := sPrefix
	if m >= 1 {
		sTotal += ss[m-1]
	}
	return wTotal <= sTotal*(1+hlsTol)+hlsTol
}

// hlsTol is the relative slack used by the combinatorial test so that
// boundary instances (total utilization exactly equal to total speed)
// evaluate feasible despite float rounding.
const hlsTol = 1e-12

// MinScaling returns σ_LP: the smallest factor σ such that the paper's LP
// is feasible on the platform with every speed multiplied by σ. By the
// HLS condition this has the closed form
//
//	σ_LP = max( W_total/S_total , max_{k<m} W_k/S_k )
//
// with W_k the sum of the k largest utilizations and S_k the sum of the k
// fastest speeds. σ_LP > 1 means the task set needs faster machines even
// for a migrating scheduler; σ_LP ≤ 1 means the LP adversary succeeds at
// the original speeds.
func MinScaling(ts task.Set, p machine.Platform) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, fmt.Errorf("fractional: %w", err)
	}
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("fractional: %w", err)
	}
	us := ts.Utilizations()
	ss := p.Speeds()
	sort.Sort(sort.Reverse(sort.Float64Slice(us)))
	sort.Sort(sort.Reverse(sort.Float64Slice(ss)))
	n, m := len(us), len(ss)

	sigma := 0.0
	wPrefix, sPrefix := 0.0, 0.0
	for k := 0; k < m-1; k++ {
		if k < n {
			wPrefix += us[k]
		}
		sPrefix += ss[k]
		if r := wPrefix / sPrefix; r > sigma {
			sigma = r
		}
	}
	wTotal := wPrefix
	for k := m - 1; k < n; k++ {
		wTotal += us[k]
	}
	sTotal := sPrefix + ss[m-1]
	if r := wTotal / sTotal; r > sigma {
		sigma = r
	}
	if sigma == 0 || math.IsNaN(sigma) {
		return 0, fmt.Errorf("fractional: degenerate scaling for %d tasks on %d machines", n, m)
	}
	return sigma, nil
}
