package online

// Placement policies: the machine-selection half of the engine's
// admission decision, extracted behind the Policy interface so
// alternative fit heuristics (best-fit, worst-fit, k-choices, periodic
// repartition) can race on the same engine machinery.
//
// The engine distinguishes exactly one ordered policy — FirstFitSorted,
// the paper's utilization-descending first-fit — whose state is a pure
// function of the resident multiset and whose interior mutations run
// through the checkpointed suffix replay. Every other policy is local:
// tasks are placed on arrival by one Select call against current
// aggregates and earlier placements are never revisited, so mutations
// are O(m) worst case with no replay. That split keeps the zero-alloc
// tail path and the replay machinery policy-agnostic: replay semantics
// are first-fit by construction and only the ordered policy uses them,
// while local policies plug in solely at the Select sites (initial
// placement, tail admits, local WCET re-admission).

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Policy chooses the machine a task is placed on. Implementations must
// be stateless and deterministic: the same View and task id must always
// yield the same machine, or restore/replay equivalence breaks. The
// built-in constructors (FirstFitSorted, FirstFitArrival, BestFit,
// WorstFit, KChoices, PeriodicRepartition) are the supported set; the
// engine's differential guarantees are stated per policy.
type Policy interface {
	// Name is the policy's canonical wire name (ParsePolicy inverse).
	Name() string
	// Ordered reports whether the policy maintains the paper's sorted
	// placement order. Exactly FirstFitSorted is ordered; ordered
	// engines replay interior mutations, local engines never do.
	Ordered() bool
	// Select returns the machine (input index) for task id against the
	// engine's current aggregates, or -1 when no machine admits it.
	// Select must not mutate engine state beyond what View's query
	// methods do internally (capacity-tree refresh, probe memoization).
	Select(v View, id int32) int
}

// View is the read-only window a Policy sees of the engine at selection
// time. Machines are exposed in scan order (speed-ascending, the
// paper's machine order); all queries answer against current
// aggregates, i.e. the machine states a tail placement folds onto.
type View struct{ e *Engine }

// Machines returns the number of machines.
func (v View) Machines() int { return len(v.e.machIdx) }

// MachineAt returns the input index of the machine at scan position pp.
func (v View) MachineAt(pp int) int { return v.e.machIdx[pp] }

// Util returns task id's utilization at the engine's augmentation.
func (v View) Util(id int32) float64 { return v.e.utils[id] }

// TaskParams returns task id's WCET and period (hash inputs for
// stateless randomized policies).
func (v View) TaskParams(id int32) (wcet, period int64) {
	t := v.e.tasks[id]
	return t.WCET, t.Period
}

// Fits answers the engine's admission query for task id on machine j —
// character-for-character the predicate first-fit runs.
func (v View) Fits(j int, id int32) bool { return v.e.fitsAgg(j, id) }

// Slack returns machine j's one-more-task capacity estimate (the same
// slack-inflated quantity the capacity tree keys on): the largest
// utilization the machine's admission bound still has room for, plus a
// vanishing tie-break slack. Deterministic, and monotone in load.
func (v View) Slack(j int) float64 { return v.e.nextCap(j) }

// Load returns machine j's current utilization fold.
func (v View) Load(j int) float64 { return v.e.machs[j].load() }

// Speed returns machine j's α-scaled speed.
func (v View) Speed(j int) float64 { return v.e.speeds[j] }

// FirstFit returns the first machine in scan order that admits task id
// (the capacity-tree probe with exact re-verification), or -1.
func (v View) FirstFit(id int32) int { return v.e.firstFitAgg(id) }

// firstFitSorted is the paper's policy: utilization-descending task
// order, speed-ascending first-fit. The engine's state under it is
// byte-identical to a fresh partition solve over the resident multiset.
type firstFitSorted struct{}

// FirstFitSorted returns the paper's sorted first-fit policy — the only
// ordered policy, and the default. Engines under it are byte-identical
// to fresh sorted solves (the pre-Policy SortedOrder behavior).
func FirstFitSorted() Policy { return firstFitSorted{} }

func (firstFitSorted) Name() string              { return "first_fit_sorted" }
func (firstFitSorted) Ordered() bool             { return true }
func (firstFitSorted) Select(v View, id int32) int { return v.FirstFit(id) }

// firstFitArrival places each task on the first machine that admits it,
// in arrival order, never revisiting earlier placements — the
// pre-Policy ArrivalOrder behavior.
type firstFitArrival struct{}

// FirstFitArrival returns local first-fit in arrival order (the
// pre-Policy ArrivalOrder behavior, byte-identical).
func FirstFitArrival() Policy { return firstFitArrival{} }

func (firstFitArrival) Name() string              { return "first_fit_arrival" }
func (firstFitArrival) Ordered() bool             { return false }
func (firstFitArrival) Select(v View, id int32) int { return v.FirstFit(id) }

// bestFit packs tightly: among admitting machines, the one with the
// least remaining one-more-task capacity (first in scan order on ties).
type bestFit struct{}

// BestFit returns the best-fit policy: the admitting machine with the
// smallest Slack, i.e. the tightest bin. Local (arrival-order) placement.
func BestFit() Policy { return bestFit{} }

func (bestFit) Name() string  { return "best_fit" }
func (bestFit) Ordered() bool { return false }

func (bestFit) Select(v View, id int32) int {
	best, bestSlack := -1, math.Inf(1)
	for pp, m := 0, v.Machines(); pp < m; pp++ {
		j := v.MachineAt(pp)
		if !v.Fits(j, id) {
			continue
		}
		if s := v.Slack(j); s < bestSlack {
			best, bestSlack = j, s
		}
	}
	return best
}

// worstFit balances: among admitting machines, the one with the most
// remaining one-more-task capacity (first in scan order on ties).
type worstFit struct{}

// WorstFit returns the worst-fit policy: the admitting machine with the
// largest Slack, i.e. the emptiest bin. Local (arrival-order) placement.
func WorstFit() Policy { return worstFit{} }

func (worstFit) Name() string  { return "worst_fit" }
func (worstFit) Ordered() bool { return false }

func (worstFit) Select(v View, id int32) int {
	best, bestSlack := -1, math.Inf(-1)
	for pp, m := 0, v.Machines(); pp < m; pp++ {
		j := v.MachineAt(pp)
		if !v.Fits(j, id) {
			continue
		}
		if s := v.Slack(j); s > bestSlack {
			best, bestSlack = j, s
		}
	}
	return best
}

// kChoices is the power-of-d-choices policy: d pseudo-random candidate
// machines drawn by a stateless hash of the task's identity, the
// emptiest admitting candidate wins, full first-fit as the fallback
// when no candidate admits (so the policy never rejects a task some
// machine could take). Statelessness — the hash reads only (id, WCET,
// period, trial, m) — keeps the decision a pure function of engine
// state, which is what lets snapshots restore and differential twins
// replay bit-identically without carrying RNG state.
type kChoices struct{ d int }

// KChoices returns the power-of-d-choices policy; d < 2 is clamped to 2
// (the classic power-of-two-choices).
func KChoices(d int) Policy {
	if d < 2 {
		d = 2
	}
	return kChoices{d: d}
}

func (k kChoices) Name() string {
	if k.d == 2 {
		return "k_choices"
	}
	return "k_choices_" + strconv.Itoa(k.d)
}

func (kChoices) Ordered() bool { return false }

func (k kChoices) Select(v View, id int32) int {
	m := v.Machines()
	w, p := v.TaskParams(id)
	seed := mix64(uint64(id)<<32 ^ uint64(w)*0x9E3779B97F4A7C15 ^ uint64(p))
	best, bestSlack := -1, math.Inf(-1)
	for t := 0; t < k.d; t++ {
		pp := int(mix64(seed+uint64(t)*0xBF58476D1CE4E5B9) % uint64(m))
		j := v.MachineAt(pp)
		if j == best || !v.Fits(j, id) {
			continue
		}
		if s := v.Slack(j); s > bestSlack {
			best, bestSlack = j, s
		}
	}
	if best >= 0 {
		return best
	}
	return v.FirstFit(id)
}

// mix64 is the SplitMix64 finalizer: a stateless avalanche over the
// candidate index so k-choices draws are deterministic functions of the
// task, not of any per-engine RNG stream.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// periodicRepartition wraps an inner local policy and, every `every`
// successful top-level mutations, folds the drift back: the engine
// plans a fresh sorted-first-fit repartition and applies it in full.
// Placement decisions between repartitions are the inner policy's.
type periodicRepartition struct {
	inner Policy
	every int
}

// PeriodicRepartition wraps inner with a full repartition to the
// paper's sorted first-fit after every `every` successful mutations
// (every < 1 is clamped to 1). The wrapped engine is local — earlier
// placements move only at repartition points — and the repair is
// best-effort: an infeasible or stale target leaves the current
// placement standing. Not supported on constrained-deadline engines
// (their reference solve is dbf.FirstFit; PlanRepartition refuses).
func PeriodicRepartition(inner Policy, every int) Policy {
	if every < 1 {
		every = 1
	}
	return periodicRepartition{inner: inner, every: every}
}

func (p periodicRepartition) Name() string {
	return p.inner.Name() + "+repartition_" + strconv.Itoa(p.every)
}

func (p periodicRepartition) Ordered() bool             { return false }
func (p periodicRepartition) Select(v View, id int32) int { return p.inner.Select(v, id) }

// repartitionEvery is the unexported marker NewEngine uses to arm the
// engine's post-commit repartition hook.
func (p periodicRepartition) repartitionEvery() int { return p.every }

type repartitioning interface{ repartitionEvery() int }

// policyNames is the canonical wire-name set, in documentation order.
const policyNames = "first_fit_sorted, first_fit_arrival, best_fit, worst_fit, k_choices"

// PolicyNames returns the canonical policy wire names accepted by
// ParsePolicy, for help strings and error messages.
func PolicyNames() string { return policyNames }

// ParsePolicy resolves a policy wire name. The empty string and the
// legacy order names "sorted" / "arrival" (what pre-Policy WALs and
// snapshots recorded) resolve to first_fit_sorted / first_fit_arrival;
// "k_choices_<d>" selects a non-default choice count, and a
// "<inner>+repartition_<n>" suffix wraps any non-ordered policy in
// PeriodicRepartition with cadence n — the grammar round-trips every
// Policy's Name().
func ParsePolicy(name string) (Policy, error) {
	if inner, rest, ok := strings.Cut(name, "+repartition_"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("unknown placement policy %q: repartition cadence %q must be a positive integer", name, rest)
		}
		ip, err := ParsePolicy(inner)
		if err != nil {
			return nil, err
		}
		if ip.Ordered() {
			return nil, fmt.Errorf("unknown placement policy %q: %s already tracks the sorted solve; repartition would be a no-op", name, ip.Name())
		}
		return PeriodicRepartition(ip, n), nil
	}
	switch name {
	case "", "first_fit_sorted", "sorted":
		return FirstFitSorted(), nil
	case "first_fit_arrival", "arrival":
		return FirstFitArrival(), nil
	case "best_fit":
		return BestFit(), nil
	case "worst_fit":
		return WorstFit(), nil
	case "k_choices":
		return KChoices(2), nil
	}
	if rest, ok := strings.CutPrefix(name, "k_choices_"); ok {
		if d, err := strconv.Atoi(rest); err == nil && d >= 2 {
			return KChoices(d), nil
		}
	}
	return nil, fmt.Errorf("unknown placement policy %q (want one of %s)", name, policyNames)
}
