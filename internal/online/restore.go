package online

import (
	"fmt"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// PlacedLists returns a deep copy of every machine's placed task ids in
// fold order, indexed by machine input index. Together with Tasks()
// (which fixes the id space) this captures everything Restore needs to
// rebuild the engine bit-for-bit: in SortedOrder the lists are
// redundant (state is a function of the multiset — the engine's core
// invariant), but in ArrivalOrder they are history: removals splice and
// WCET updates re-admit at the tail, so the same resident multiset can
// sit in many placements.
func (e *Engine) PlacedLists() [][]int32 {
	out := make([][]int32, len(e.machs))
	for j := range e.machs {
		out[j] = append([]int32(nil), e.machs[j].placed...)
	}
	return out
}

// Restore rebuilds an implicit-deadline engine from state captured by
// Tasks() and PlacedLists(). Under the ordered policy it delegates to a
// fresh build — a fresh sorted solve over the same multiset is
// byte-identical by the engine invariant, and the differential tests
// hold it there. Under local policies each machine's recorded list is
// refolded verbatim, re-checking every placement with the same
// admission predicate the original run passed: per-machine feasibility
// of the final state implies feasibility of every fold prefix (loads
// only grow along the fold and the bounds only tighten), so a
// legitimate snapshot always verifies, while a corrupted one is
// rejected instead of resurrected.
//
// Deprecated: use NewEngine with Options{Policy, Admission, Alpha,
// Placed}; this wrapper maps the Order enum onto the equivalent
// first-fit policies.
func Restore(ts task.Set, p machine.Platform, adm partition.AdmissionTest, alpha float64, ord Order, placed [][]int32) (*Engine, error) {
	pol, err := policyForOrder(ord)
	if err != nil {
		return nil, err
	}
	if placed == nil {
		// Restore always means "use the recorded lists": a nil record is
		// a corrupt snapshot and must fail verification, not silently
		// fall back to a fresh placement.
		placed = [][]int32{}
	}
	return NewEngine(ts, p, Options{Policy: pol, Admission: adm, Alpha: alpha, Placed: placed})
}

// RestoreConstrained is Restore for constrained-deadline engines built
// by NewConstrained; k is the same envelope depth the original used.
//
// Deprecated: use NewEngine with Options{Policy, Alpha, Deadlines,
// ApproxK, Placed}.
func RestoreConstrained(ts dbf.Set, p machine.Platform, alpha float64, ord Order, k int, placed [][]int32) (*Engine, error) {
	pol, err := policyForOrder(ord)
	if err != nil {
		return nil, err
	}
	if placed == nil {
		placed = [][]int32{} // see Restore: nil must fail verification
	}
	tts, dls := splitConstrained(ts)
	return NewEngine(tts, p, Options{Policy: pol, Alpha: alpha, Deadlines: dls, ApproxK: k, Placed: placed})
}

// splitConstrained decomposes a dbf.Set into the implicit task set and
// the parallel deadline slice NewEngine's Options take. The deadline
// slice is non-nil even for an empty set, so the constrained pipeline
// is always selected.
func splitConstrained(ts dbf.Set) (task.Set, []int64) {
	tts := make(task.Set, len(ts))
	dls := make([]int64, len(ts))
	for i, t := range ts {
		tts[i] = task.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		dls[i] = t.Deadline
	}
	return tts, dls
}

// restorePlacement refolds the recorded per-machine placed lists. Fold
// order within a machine is the recorded order; machines are mutually
// independent (every aggregate is per-machine), so the across-machine
// order is irrelevant to the resulting floats.
func (e *Engine) restorePlacement(placed [][]int32) error {
	n, m := len(e.tasks), len(e.p)
	if len(placed) != m {
		return fmt.Errorf("online: restore: %d placed lists for %d machines", len(placed), m)
	}
	seen := make([]bool, n)
	count := 0
	for j := range placed {
		for _, id := range placed[j] {
			if id < 0 || int(id) >= n {
				return fmt.Errorf("online: restore: machine %d places task id %d out of range [0, %d)", j, id, n)
			}
			if seen[id] {
				return fmt.Errorf("online: restore: task %d placed twice", id)
			}
			seen[id] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("online: restore: %d of %d tasks placed", count, n)
	}
	for j := range placed {
		for _, id := range placed[j] {
			ok := e.fitsAgg(j, id)
			if perr := e.takeProbeErr(); perr != nil {
				return fmt.Errorf("online: restore: %w", perr)
			}
			if !ok {
				return fmt.Errorf("online: restore: task %d does not satisfy machine %d's admission bound — recorded placement is inconsistent", id, j)
			}
			e.assign[id] = int32(j)
			e.assignPub[id] = j
			e.place(j, id)
		}
	}
	if e.cps != nil {
		e.cps.rebuildFrom(e, 0)
	}
	return nil
}
