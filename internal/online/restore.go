package online

import (
	"fmt"
	"math"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// PlacedLists returns a deep copy of every machine's placed task ids in
// fold order, indexed by machine input index. Together with Tasks()
// (which fixes the id space) this captures everything Restore needs to
// rebuild the engine bit-for-bit: in SortedOrder the lists are
// redundant (state is a function of the multiset — the engine's core
// invariant), but in ArrivalOrder they are history: removals splice and
// WCET updates re-admit at the tail, so the same resident multiset can
// sit in many placements.
func (e *Engine) PlacedLists() [][]int32 {
	out := make([][]int32, len(e.machs))
	for j := range e.machs {
		out[j] = append([]int32(nil), e.machs[j].placed...)
	}
	return out
}

// Restore rebuilds an implicit-deadline engine from state captured by
// Tasks() and PlacedLists(). SortedOrder delegates to New — a fresh
// sorted solve over the same multiset is byte-identical by the engine
// invariant, and the differential tests hold it there. ArrivalOrder
// refolds each machine's recorded list verbatim, re-checking every
// placement with the same admission predicate the original run passed:
// per-machine feasibility of the final state implies feasibility of
// every fold prefix (loads only grow along the fold and the bounds only
// tighten), so a legitimate snapshot always verifies, while a corrupted
// one is rejected instead of resurrected.
func Restore(ts task.Set, p machine.Platform, adm partition.AdmissionTest, alpha float64, ord Order, placed [][]int32) (*Engine, error) {
	if ord == SortedOrder {
		return New(ts, p, adm, alpha, ord)
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if alpha == 0 {
		alpha = 1
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("online: alpha %v must be positive", alpha)
	}
	e := &Engine{adm: adm, order: ord, alpha: alpha}
	switch adm.(type) {
	case partition.EDFAdmission:
		e.kind = admEDF
	case partition.RMSLLAdmission:
		e.kind = admLL
	case partition.RMSHyperbolicAdmission:
		e.kind = admHyperbolic
	default:
		return nil, fmt.Errorf("online: admission %q has no incremental state; use the batch solver", adm.Name())
	}
	if ord != ArrivalOrder {
		return nil, fmt.Errorf("online: unknown order %v", ord)
	}
	e.tasks = ts.Clone()
	e.p = append(machine.Platform(nil), p...)
	e.utils = make([]float64, len(ts))
	for i, t := range e.tasks {
		e.utils[i] = t.Utilization()
	}
	e.initState()
	if err := e.restorePlacement(placed); err != nil {
		return nil, err
	}
	return e, nil
}

// RestoreConstrained is Restore for constrained-deadline engines built
// by NewConstrained; k is the same envelope depth the original used.
func RestoreConstrained(ts dbf.Set, p machine.Platform, alpha float64, ord Order, k int, placed [][]int32) (*Engine, error) {
	if ord == SortedOrder {
		return NewConstrained(ts, p, alpha, ord, k)
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("online: empty task set")
	}
	for i := range ts {
		if err := validateConstrained(ts[i]); err != nil {
			return nil, fmt.Errorf("online: task %d: %w", i, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if alpha == 0 {
		alpha = 1
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("online: alpha %v must be positive", alpha)
	}
	if ord != ArrivalOrder {
		return nil, fmt.Errorf("online: unknown order %v", ord)
	}
	if k > maxApproxK {
		k = maxApproxK
	}
	e := &Engine{kind: admDBF, order: ord, alpha: alpha, approxK: k}
	e.tasks = make(task.Set, len(ts))
	e.p = append(machine.Platform(nil), p...)
	e.utils = make([]float64, len(ts))
	e.dl = make([]int64, len(ts))
	e.dens = make([]float64, len(ts))
	for i, t := range ts {
		e.tasks[i] = task.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		e.utils[i] = e.tasks[i].Utilization()
		e.dl[i] = t.Deadline
		e.dens[i] = float64(t.WCET) / float64(t.Deadline)
	}
	e.initState()
	if err := e.restorePlacement(placed); err != nil {
		return nil, err
	}
	return e, nil
}

// restorePlacement refolds the recorded per-machine placed lists. Fold
// order within a machine is the recorded order; machines are mutually
// independent (every aggregate is per-machine), so the across-machine
// order is irrelevant to the resulting floats.
func (e *Engine) restorePlacement(placed [][]int32) error {
	n, m := len(e.tasks), len(e.p)
	if len(placed) != m {
		return fmt.Errorf("online: restore: %d placed lists for %d machines", len(placed), m)
	}
	seen := make([]bool, n)
	count := 0
	for j := range placed {
		for _, id := range placed[j] {
			if id < 0 || int(id) >= n {
				return fmt.Errorf("online: restore: machine %d places task id %d out of range [0, %d)", j, id, n)
			}
			if seen[id] {
				return fmt.Errorf("online: restore: task %d placed twice", id)
			}
			seen[id] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("online: restore: %d of %d tasks placed", count, n)
	}
	for j := range placed {
		for _, id := range placed[j] {
			ok := e.fitsAgg(j, id)
			if perr := e.takeProbeErr(); perr != nil {
				return fmt.Errorf("online: restore: %w", perr)
			}
			if !ok {
				return fmt.Errorf("online: restore: task %d does not satisfy machine %d's admission bound — recorded placement is inconsistent", id, j)
			}
			e.assign[id] = int32(j)
			e.assignPub[id] = j
			e.place(j, id)
		}
	}
	if e.cps != nil {
		e.cps.rebuildFrom(e, 0)
	}
	return nil
}
