package online

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
)

// The differential generators keep every utilization and speed on the
// dyadic 1/64 grid: periods are powers of two ≤ 64 and speeds multiples
// of 1/4, so per-machine utilization sums are exact in float64 and the
// gap s−u is either exactly zero (the cheap hyperperiod branch — the
// lcm is ≤ 64) or at least ~1/64. That bounds every exact probe's
// checkpoint count, so ten-thousand-plus fresh FirstFit reference
// solves stay fast, and it makes the boundary u = s reachable exactly
// instead of only by float accident.

func randCTask(rng *rand.Rand) dbf.Task {
	p := int64(4) << rng.Intn(5) // 4, 8, 16, 32, 64
	c := 1 + rng.Int63n(p)
	d := c + rng.Int63n(p-c+1)
	return dbf.Task{WCET: c, Deadline: d, Period: p}
}

func randDyadicPlatform(rng *rand.Rand) machine.Platform {
	m := 1 + rng.Intn(3)
	speeds := make([]float64, m)
	for i := range speeds {
		speeds[i] = float64(1+rng.Intn(8)) / 4 // 0.25 .. 2.0
	}
	return machine.New(speeds...)
}

func cloneCSet(s dbf.Set) dbf.Set { return append(dbf.Set{}, s...) }

// freshDBF is the differential reference: the offline constrained
// first-fit with per-probe exact FeasibleEDF admission.
func freshDBF(ts dbf.Set, p machine.Platform, alpha float64) (bool, []int, error) {
	return dbf.FirstFit(ts, p, alpha, 0)
}

func sameAssign(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: assignment = %v, want %v", ctx, got, want)
	}
}

// checkOp compares one engine mutation against the fresh reference
// solve over the candidate multiset. Both sides must agree on the
// verdict, the assignment, and — when the exact analysis itself fails —
// on failing, with the engine left untouched.
func checkOp(t *testing.T, ctx string, res partition.Result, ok bool, opErr error,
	feas bool, as []int, refErr error) (applied bool) {
	t.Helper()
	if refErr != nil {
		if opErr == nil {
			t.Fatalf("%s: fresh solve failed (%v) but the engine op succeeded", ctx, refErr)
		}
		return false
	}
	if opErr != nil {
		t.Fatalf("%s: engine op error %v, fresh solve succeeded", ctx, opErr)
	}
	if ok != feas {
		t.Fatalf("%s: verdict = %v, fresh = %v", ctx, ok, feas)
	}
	sameAssign(t, ctx, append([]int(nil), res.Assignment...), as)
	return ok
}

// TestEngineDBFSortedDifferential is the tentpole's acceptance test:
// over randomized Admit/Remove/UpdateWCET/AdmitBatch sequences on
// constrained-deadline sets, every SortedOrder engine verdict and
// assignment must be identical to a fresh dbf.FirstFit (exact-admission)
// solve over the surviving multiset — no matter which tier answered.
// k = 0 runs the exact-only pipeline; the tiered depths must agree with
// it by agreeing with the same reference. The three depths × instances
// × ops exceed 10k compared mutations.
func TestEngineDBFSortedDifferential(t *testing.T) {
	const (
		instances = 12
		opsPer    = 300
	)
	for _, k := range []int{0, 1, 4} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(k)*7919 + 13))
			for inst := 0; inst < instances; inst++ {
				p := randDyadicPlatform(rng)
				alpha := []float64{1, 1, 1.5, 2.5}[rng.Intn(4)]
				cur := dbf.Set{{WCET: 1, Deadline: 64, Period: 64}}
				e, err := NewConstrained(cur, p, alpha, SortedOrder, k)
				if err != nil {
					t.Fatalf("inst %d: seed engine: %v", inst, err)
				}
				for op := 0; op < opsPer; op++ {
					ctx := fmt.Sprintf("inst %d op %d", inst, op)
					switch c := rng.Intn(10); {
					case c < 4: // admit
						tk := randCTask(rng)
						cand := append(cloneCSet(cur), tk)
						feas, as, refErr := freshDBF(cand, p, alpha)
						res, ok, err := e.AdmitConstrained(tk)
						if checkOp(t, ctx+" admit", res, ok, err, feas, as, refErr) {
							cur = cand
						}
					case c < 6 && len(cur) > 1: // remove
						id := rng.Intn(len(cur))
						shr := append(cloneCSet(cur[:id]), cur[id+1:]...)
						feas, as, refErr := freshDBF(shr, p, alpha)
						res, ok, err := e.Remove(id)
						if checkOp(t, ctx+" remove", res, ok, err, feas, as, refErr) {
							cur = shr
						}
					case c < 8: // update WCET
						id := rng.Intn(len(cur))
						w := 1 + rng.Int63n(cur[id].Deadline)
						upd := cloneCSet(cur)
						upd[id].WCET = w
						feas, as, refErr := freshDBF(upd, p, alpha)
						res, ok, err := e.UpdateWCET(id, w)
						if checkOp(t, ctx+" update", res, ok, err, feas, as, refErr) {
							cur = upd
						}
					default: // batch admit
						bn := 2 + rng.Intn(3)
						batch := make(dbf.Set, bn)
						for i := range batch {
							batch[i] = randCTask(rng)
						}
						if rng.Intn(2) == 0 { // AllOrNothing
							union := append(cloneCSet(cur), batch...)
							feas, as, refErr := freshDBF(union, p, alpha)
							_, admitted, err := e.AdmitBatchConstrained(batch, AllOrNothing)
							if refErr != nil {
								if err == nil {
									t.Fatalf("%s: fresh union solve failed (%v) but batch succeeded", ctx, refErr)
								}
								continue
							}
							if err != nil {
								t.Fatalf("%s: Batch: %v", ctx, err)
							}
							for i, a := range admitted {
								if a != feas {
									t.Fatalf("%s: batch admitted[%d]=%v, fresh=%v", ctx, i, a, feas)
								}
							}
							if feas {
								cur = union
								sameAssign(t, ctx+" batch", append([]int(nil), e.Result().Assignment...), as)
							}
						} else { // BestEffort = sequential-admit semantics
							wantAdm := make([]bool, bn)
							mirror := cloneCSet(cur)
							refFailed := false
							for i, tk := range batch {
								cand := append(cloneCSet(mirror), tk)
								feas, _, refErr := freshDBF(cand, p, alpha)
								if refErr != nil {
									refFailed = true
									break
								}
								wantAdm[i] = feas
								if feas {
									mirror = cand
								}
							}
							_, admitted, err := e.AdmitBatchConstrained(batch, BestEffort)
							if refFailed {
								if err == nil {
									t.Fatalf("%s: fresh sequential solve failed but batch succeeded", ctx)
								}
								continue
							}
							if err != nil {
								t.Fatalf("%s: Batch: %v", ctx, err)
							}
							if !reflect.DeepEqual(admitted, wantAdm) {
								t.Fatalf("%s: batch admitted=%v, want %v", ctx, admitted, wantAdm)
							}
							cur = mirror
						}
					}
					// The engine's resident state must match a fresh solve
					// after every few mutations, and its internals verify.
					if op%13 == 0 || op == opsPer-1 {
						_, as, refErr := freshDBF(cur, p, alpha)
						if refErr != nil {
							t.Fatalf("inst %d op %d: fresh state solve: %v", inst, op, refErr)
						}
						sameAssign(t, "state", append([]int(nil), e.Result().Assignment...), as)
						if err := e.SelfCheck(); err != nil {
							t.Fatalf("inst %d op %d: SelfCheck: %v", inst, op, err)
						}
					}
					if got := e.Len(); got != len(cur) {
						t.Fatalf("inst %d op %d: %d resident, want %d", inst, op, got, len(cur))
					}
				}
				if k >= 1 {
					d, a, x := e.TierCounts()
					if d+a+x == 0 {
						t.Fatalf("inst %d: tiered engine recorded no tier decisions", inst)
					}
				}
			}
		})
	}
}

// TestEngineDBFTierCounts pins the tiers actually firing: a lightly
// loaded tiered engine must answer most probes without the exact test,
// and per-op stats must report the deepest tier used.
func TestEngineDBFTierCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := machine.New(1, 1, 1, 1)
	seed := dbf.Set{{WCET: 1, Deadline: 1 << 18, Period: 1 << 18}}
	e, err := NewConstrained(seed, p, 1, SortedOrder, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		pp := int64(100 + rng.Intn(900))
		c := 1 + rng.Int63n(pp/50+1)
		d := c + (pp-c)/2
		_, admitted, err := e.AdmitConstrained(dbf.Task{WCET: c, Deadline: d, Period: pp})
		if err != nil {
			t.Fatal(err)
		}
		if admitted && e.LastOpStats().MaxTier == 0 {
			t.Fatalf("op %d: admitted with MaxTier 0 on a constrained engine", i)
		}
	}
	dn, ap, ex := e.TierCounts()
	if dn+ap == 0 {
		t.Fatalf("cheap tiers never fired: density=%d approx=%d exact=%d", dn, ap, ex)
	}
	if ex > (dn+ap+ex)/2 {
		t.Fatalf("exact tier dominated a low-load workload: density=%d approx=%d exact=%d", dn, ap, ex)
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDBFArrivalSmoke exercises the ArrivalOrder constrained
// engine: local admits, removals and updates with SelfCheck after every
// mutation (there is no offline reference for arrival order).
func TestEngineDBFArrivalSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := machine.New(0.5, 1, 2)
	cur := dbf.Set{{WCET: 1, Deadline: 64, Period: 64}}
	e, err := NewConstrained(cur, p, 1, ArrivalOrder, 4)
	if err != nil {
		t.Fatal(err)
	}
	live := 1
	for op := 0; op < 400; op++ {
		switch c := rng.Intn(10); {
		case c < 5:
			if _, ok, err := e.AdmitConstrained(randCTask(rng)); err != nil {
				t.Fatalf("op %d: Admit: %v", op, err)
			} else if ok {
				live++
			}
		case c < 7 && live > 1:
			if _, ok, err := e.Remove(rng.Intn(live)); err != nil {
				t.Fatalf("op %d: Remove: %v", op, err)
			} else if ok {
				live--
			}
		default:
			id := rng.Intn(live)
			w := 1 + rng.Int63n(e.Deadline(id))
			if _, _, err := e.UpdateWCET(id, w); err != nil {
				t.Fatalf("op %d: Update: %v", op, err)
			}
		}
		if err := e.SelfCheck(); err != nil {
			t.Fatalf("op %d: SelfCheck: %v", op, err)
		}
	}
}

// TestEngineDBFHorizonError verifies the engine surfaces FeasibleEDF's
// typed analysis errors exactly where the offline solve hits them: a
// candidate whose utilization equals the speed over near-coprime ~2^39
// periods sends the exact test down the hyperperiod branch, which
// overflows and reports ErrHorizonTooLarge instead of a wrong answer.
func TestEngineDBFHorizonError(t *testing.T) {
	p1 := int64(1)<<39 + 1
	p2 := int64(1)<<39 - 1
	t1 := dbf.Task{Name: "a", WCET: 1 << 30, Deadline: (p1 + 1) / 2, Period: p1}
	t2 := dbf.Task{Name: "b", WCET: 1 << 30, Deadline: (p2 + 1) / 2, Period: p2}
	speed := t1.Utilization() + t2.Utilization()
	plat := machine.New(speed)
	ts := dbf.Set{t1, t2}

	if _, _, err := dbf.FirstFit(ts, plat, 1, 0); !errors.Is(err, dbf.ErrHorizonTooLarge) {
		t.Fatalf("fresh FirstFit err = %v, want ErrHorizonTooLarge", err)
	}
	for _, k := range []int{0, 4} {
		if _, err := NewConstrained(ts, plat, 1, SortedOrder, k); !errors.Is(err, dbf.ErrHorizonTooLarge) {
			t.Fatalf("k=%d: NewConstrained err = %v, want ErrHorizonTooLarge", k, err)
		}
	}

	// The same candidate offered to a live engine must reject with the
	// same typed error and leave the engine untouched.
	e, err := NewConstrained(dbf.Set{t1}, plat, 1, SortedOrder, 4)
	if err != nil {
		t.Fatalf("single-task engine: %v", err)
	}
	if _, _, err := e.AdmitConstrained(t2); !errors.Is(err, dbf.ErrHorizonTooLarge) {
		t.Fatalf("Admit err = %v, want ErrHorizonTooLarge", err)
	}
	if e.Len() != 1 {
		t.Fatalf("failed admit mutated the engine: %d tasks", e.Len())
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDBFValidation covers the constrained-specific argument
// checks: the period cap, malformed deadlines, repartition refusal, and
// UpdateWCET's C ≤ D rule.
func TestEngineDBFValidation(t *testing.T) {
	p := machine.New(1, 1)
	seed := dbf.Set{{WCET: 1, Deadline: 100, Period: 100}}
	e, err := NewConstrained(seed, p, 1, SortedOrder, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.AdmitConstrained(dbf.Task{WCET: 1, Deadline: 2, Period: maxConstrainedPeriod + 1}); err == nil {
		t.Fatal("period above the cap admitted")
	}
	if _, _, err := e.AdmitConstrained(dbf.Task{WCET: 5, Deadline: 4, Period: 10}); err == nil {
		t.Fatal("D < C admitted")
	}
	if _, ok, err := e.AdmitConstrained(dbf.Task{WCET: 2, Deadline: 4, Period: 10}); err != nil || !ok {
		t.Fatalf("valid constrained admit failed: admitted=%v err=%v", ok, err)
	}
	if _, _, err := e.UpdateWCET(1, 5); err == nil {
		t.Fatal("UpdateWCET above the deadline accepted")
	}
	if _, err := e.PlanRepartition(); err == nil {
		t.Fatal("PlanRepartition on a constrained engine succeeded")
	}
	if _, err := NewConstrained(seed, p, 1, SortedOrder, maxApproxK+10); err != nil {
		t.Fatalf("oversized k must clamp, not fail: %v", err)
	}
	if _, err := NewConstrained(dbf.Set{}, p, 1, SortedOrder, 4); err == nil {
		t.Fatal("empty constrained set accepted")
	}
}
