package online

// checkpointStride is the default spacing K between prefix-state
// checkpoints along the sorted placement order. The commit-time rebuild
// sweep costs O(m) per checkpoint, so a stride of the same magnitude as
// the machine count amortizes to O(1) extra work per swept position;
// and with K ≈ m the expected number of placements one machine receives
// inside a window is K/m ≈ 1, so a checkpoint hint lands within one
// step of the exact prefix length. The engine's differential tests run
// with several strides (including degenerate ones) to pin that the
// stride is a pure performance knob, never a semantic one.
const checkpointStride = 64

// checkpoints is the engine's prefix-state snapshot table: entry c
// stores, for every machine, how many of its placed tasks sit strictly
// before sorted position (c+1)·stride — the "assignment prefix length".
// Together with the machine's own cumulative folds (cum / cumProd,
// which carry the EDF sums and hyperbolic products at every prefix),
// a prefix length recovers the full historical machine state at that
// position in O(1).
//
// Freshness contract: after every committed mutation the table is exact
// (SelfCheck enforces it). During a mutation the suffix of the table
// past the edit position is stale by the position shift of the edit in
// flight; lookups therefore go through hint(), whose callers treat the
// value as a starting point and correct it by a local scan — stale
// entries cost a step or two, never a wrong answer.
type checkpoints struct {
	stride int
	m      int
	plen   [][]int32 // plen[c][j]: machine j's prefix length at position (c+1)·stride
	free   [][]int32 // recycled rows, so steady-state rebuilds allocate nothing
	cnt    []int32   // rebuild scratch
}

func newCheckpoints(stride, m int) *checkpoints {
	if stride < 1 {
		stride = 1
	}
	return &checkpoints{stride: stride, m: m, cnt: make([]int32, m)}
}

// hint returns a starting estimate for machine j's prefix length at
// sorted position at: the snapshot at the nearest checkpoint at-or-
// before at, or 0 when at precedes the first checkpoint. The caller
// corrects it by a local scan, so staleness is benign.
func (cp *checkpoints) hint(j, at int) int {
	c := at / cp.stride // number of checkpoint positions ≤ at
	if c == 0 {
		return 0
	}
	if c > len(cp.plen) {
		c = len(cp.plen)
	}
	if c == 0 {
		return 0
	}
	return int(cp.plen[c-1][j])
}

// rebuildFrom restores exactness for every checkpoint whose position
// exceeds k, given the engine's committed post-mutation state: it drops
// invalidated rows, re-sweeps sorted[base:] counting per-machine
// placements, and snapshots at each stride boundary. Checkpoints at
// positions ≤ k cover an untouched prefix and are kept as-is.
func (cp *checkpoints) rebuildFrom(e *Engine, k int) {
	n := len(e.sorted)
	keep := k / cp.stride // rows still valid: positions stride, …, keep·stride ≤ k
	want := n / cp.stride // rows the rebuilt table must have
	for i := want; i < len(cp.plen); i++ {
		cp.free = append(cp.free, cp.plen[i])
	}
	if len(cp.plen) > want {
		cp.plen = cp.plen[:want]
	}
	if keep >= want {
		return
	}
	cnt := cp.cnt
	if keep == 0 {
		for j := range cnt {
			cnt[j] = 0
		}
	} else {
		copy(cnt, cp.plen[keep-1])
	}
	// One window per missing row; positions past the last stride boundary
	// never feed a snapshot, so the sweep stops at want·stride.
	assign, sorted := e.assign, e.sorted
	base := keep * cp.stride
	for c := keep; c < want; c++ {
		hi := base + cp.stride
		for _, id := range sorted[base:hi] {
			cnt[assign[id]]++
		}
		base = hi
		if c == len(cp.plen) {
			cp.plen = append(cp.plen, cp.row())
		}
		copy(cp.plen[c], cnt)
	}
}

// row returns a recycled (or fresh) per-machine count row.
func (cp *checkpoints) row() []int32 {
	if ln := len(cp.free); ln > 0 {
		r := cp.free[ln-1]
		cp.free = cp.free[:ln-1]
		return r
	}
	return make([]int32, cp.m)
}
