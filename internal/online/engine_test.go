package online

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// admissions under test: exactly the engine's incremental fast paths.
var testAdmissions = []partition.AdmissionTest{
	partition.EDFAdmission{},
	partition.RMSLLAdmission{},
	partition.RMSHyperbolicAdmission{},
}

func randTask(rng *rand.Rand) task.Task {
	p := int64(2 + rng.Intn(1000))
	c := 1 + rng.Int63n(p)
	return task.Task{WCET: c, Period: p}
}

func randPlatform(rng *rand.Rand) machine.Platform {
	m := 1 + rng.Intn(6)
	speeds := make([]float64, m)
	for j := range speeds {
		speeds[j] = 0.25 + 4*rng.Float64()
	}
	return machine.New(speeds...)
}

// sameResult asserts byte-identity: equal assignments and failure
// indices, and bitwise-equal per-machine loads (reflect.DeepEqual on
// floats is too weak: it treats 0 and -0 as equal and NaNs as unequal).
func sameResult(t *testing.T, ctx string, got, want partition.Result) {
	t.Helper()
	if got.Feasible != want.Feasible || got.FailedTask != want.FailedTask {
		t.Fatalf("%s: feasible/failed = %v/%d, want %v/%d", ctx, got.Feasible, got.FailedTask, want.Feasible, want.FailedTask)
	}
	if got.Alpha != want.Alpha {
		t.Fatalf("%s: alpha = %v, want %v", ctx, got.Alpha, want.Alpha)
	}
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Fatalf("%s: assignment = %v, want %v", ctx, got.Assignment, want.Assignment)
	}
	if len(got.Loads) != len(want.Loads) {
		t.Fatalf("%s: %d loads, want %d", ctx, len(got.Loads), len(want.Loads))
	}
	for j := range got.Loads {
		if math.Float64bits(got.Loads[j]) != math.Float64bits(want.Loads[j]) {
			t.Fatalf("%s: load[%d] = %x, want %x (values %v vs %v)",
				ctx, j, math.Float64bits(got.Loads[j]), math.Float64bits(want.Loads[j]), got.Loads[j], want.Loads[j])
		}
	}
}

func freshSorted(t *testing.T, ts task.Set, p machine.Platform, adm partition.AdmissionTest, alpha float64) partition.Result {
	t.Helper()
	res, err := partition.Partition(ts, p, partition.Paper(adm, alpha))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func freshArrival(t *testing.T, ts task.Set, p machine.Platform, adm partition.AdmissionTest, alpha float64) partition.Result {
	t.Helper()
	res, err := partition.Partition(ts, p, partition.Config{Admission: adm, Alpha: alpha, TaskOrder: partition.TasksAsGiven})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineSortedDifferential is the tentpole's acceptance test: over
// randomized admit/remove/update sequences, every SortedOrder engine
// decision — acceptance, rejection witness, assignment, and per-machine
// load bits — must be identical to a fresh sorted first-fit Solve(alpha)
// over the same surviving task multiset. The test mirrors the multiset
// independently and solves it from scratch after every operation.
func TestEngineSortedDifferential(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 104729))
			for inst := 0; inst < 12; inst++ {
				p := randPlatform(rng)
				alpha := []float64{1, 1, 1.5, 2.5}[rng.Intn(4)]
				cur := task.Set{{WCET: 1, Period: 1 << 20}} // near-zero seed task
				e, err := New(cur, p, adm, alpha, SortedOrder)
				if err != nil {
					t.Fatalf("inst %d: seed engine: %v", inst, err)
				}
				for op := 0; op < 120; op++ {
					switch k := rng.Intn(10); {
					case k < 5: // admit
						tk := randTask(rng)
						candidate := append(cur.Clone(), tk)
						want := freshSorted(t, candidate, p, adm, alpha)
						res, admitted, err := e.Admit(tk)
						if err != nil {
							t.Fatalf("inst %d op %d: Admit: %v", inst, op, err)
						}
						if admitted != want.Feasible {
							t.Fatalf("inst %d op %d: Admit=%v, fresh solve feasible=%v", inst, op, admitted, want.Feasible)
						}
						sameResult(t, "admit", res.Clone(), want)
						if admitted {
							cur = candidate
						}
					case k < 7 && len(cur) > 1: // remove
						id := rng.Intn(len(cur))
						shrunken := append(cur[:id:id].Clone(), cur[id+1:]...)
						want := freshSorted(t, shrunken, p, adm, alpha)
						res, ok, err := e.Remove(id)
						if err != nil {
							t.Fatalf("inst %d op %d: Remove: %v", inst, op, err)
						}
						if ok != want.Feasible {
							t.Fatalf("inst %d op %d: Remove=%v, fresh solve feasible=%v", inst, op, ok, want.Feasible)
						}
						sameResult(t, "remove", res.Clone(), want)
						if ok {
							cur = shrunken
						}
					default: // update WCET
						id := rng.Intn(len(cur))
						wcet := 1 + rng.Int63n(cur[id].Period)
						updated := cur.Clone()
						updated[id].WCET = wcet
						want := freshSorted(t, updated, p, adm, alpha)
						res, ok, err := e.UpdateWCET(id, wcet)
						if err != nil {
							t.Fatalf("inst %d op %d: UpdateWCET: %v", inst, op, err)
						}
						if ok != want.Feasible {
							t.Fatalf("inst %d op %d: UpdateWCET=%v, fresh solve feasible=%v", inst, op, ok, want.Feasible)
						}
						sameResult(t, "update", res.Clone(), want)
						if ok {
							cur = updated
						}
					}
					if err := e.SelfCheck(); err != nil {
						t.Fatalf("inst %d op %d: %v", inst, op, err)
					}
					// After a rejection the engine must still equal the
					// fresh solve of the surviving multiset.
					sameResult(t, "state", e.Result().Clone(), freshSorted(t, cur, p, adm, alpha))
					if !reflect.DeepEqual(e.Tasks(), cur) {
						t.Fatalf("inst %d op %d: resident tasks diverged", inst, op)
					}
				}
			}
		})
	}
}

// TestEngineArrivalAdmitDifferential holds ArrivalOrder pure-admit
// sequences byte-identical to the TasksAsGiven ablation solve: with no
// removals or updates, placing each arrival against live aggregates is
// exactly first-fit in input order.
func TestEngineArrivalAdmitDifferential(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 31337))
			for inst := 0; inst < 12; inst++ {
				p := randPlatform(rng)
				cur := task.Set{{WCET: 1, Period: 1 << 20}}
				e, err := New(cur, p, adm, 1, ArrivalOrder)
				if err != nil {
					t.Fatal(err)
				}
				for op := 0; op < 60; op++ {
					tk := randTask(rng)
					candidate := append(cur.Clone(), tk)
					want := freshArrival(t, candidate, p, adm, 1)
					res, admitted, err := e.Admit(tk)
					if err != nil {
						t.Fatal(err)
					}
					if admitted != want.Feasible {
						t.Fatalf("inst %d op %d: Admit=%v, as-given solve=%v", inst, op, admitted, want.Feasible)
					}
					sameResult(t, "arrival admit", res.Clone(), want)
					if admitted {
						cur = candidate
					}
					if err := e.SelfCheck(); err != nil {
						t.Fatalf("inst %d op %d: %v", inst, op, err)
					}
				}
			}
		})
	}
}

// TestEngineArrivalMixedOps exercises ArrivalOrder under the full
// mutation mix. Arrival placements depend on history, so there is no
// closed-form oracle; the invariants are that every operation keeps the
// engine self-consistent (bit-exact folds, one machine per task) and
// admission-feasible, and that rejected mutations leave the state
// unchanged.
func TestEngineArrivalMixedOps(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 271))
			for inst := 0; inst < 10; inst++ {
				p := randPlatform(rng)
				cur := task.Set{{WCET: 1, Period: 1 << 20}}
				e, err := New(cur, p, adm, 1, ArrivalOrder)
				if err != nil {
					t.Fatal(err)
				}
				for op := 0; op < 150; op++ {
					before := e.Result().Clone()
					beforeTasks := e.Tasks()
					switch k := rng.Intn(10); {
					case k < 5:
						tk := randTask(rng)
						_, admitted, err := e.Admit(tk)
						if err != nil {
							t.Fatal(err)
						}
						if !admitted {
							requireUnchanged(t, e, before, beforeTasks)
						}
					case k < 7 && e.Len() > 1:
						if _, ok, err := e.Remove(rng.Intn(e.Len())); err != nil {
							t.Fatal(err)
						} else if !ok {
							t.Fatal("arrival Remove must always succeed")
						}
					default:
						id := rng.Intn(e.Len())
						wcet := 1 + rng.Int63n(e.Tasks()[id].Period)
						_, ok, err := e.UpdateWCET(id, wcet)
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							requireUnchanged(t, e, before, beforeTasks)
						}
					}
					if err := e.SelfCheck(); err != nil {
						t.Fatalf("inst %d op %d: %v", inst, op, err)
					}
				}
			}
		})
	}
}

func requireUnchanged(t *testing.T, e *Engine, before partition.Result, beforeTasks task.Set) {
	t.Helper()
	sameResult(t, "rollback", e.Result().Clone(), before)
	if !reflect.DeepEqual(e.Tasks(), beforeTasks) {
		t.Fatal("rejected mutation changed the resident task set")
	}
}

// TestEngineRejectionWitness pins the failure-path contract on a small
// hand-built instance: the witness result equals the fresh solve of the
// candidate set, and the engine state survives untouched.
func TestEngineRejectionWitness(t *testing.T) {
	p := machine.New(1)
	cur := task.Set{{WCET: 3, Period: 10}, {WCET: 2, Period: 10}}
	e, err := New(cur, p, partition.EDFAdmission{}, 1, SortedOrder)
	if err != nil {
		t.Fatal(err)
	}
	hog := task.Task{WCET: 9, Period: 10}
	candidate := append(cur.Clone(), hog)
	want := freshSorted(t, candidate, p, partition.EDFAdmission{}, 1)
	if want.Feasible {
		t.Fatal("test instance must be infeasible")
	}
	res, admitted, err := e.Admit(hog)
	if err != nil {
		t.Fatal(err)
	}
	if admitted {
		t.Fatal("hog must be rejected")
	}
	sameResult(t, "witness", res.Clone(), want)
	sameResult(t, "state", e.Result().Clone(), freshSorted(t, cur, p, partition.EDFAdmission{}, 1))
}

// TestEngineInputValidation covers the constructor and mutation guards.
func TestEngineInputValidation(t *testing.T) {
	p := machine.New(1)
	ts := task.Set{{WCET: 1, Period: 10}}
	if _, err := New(ts, p, partition.RMSExactAdmission{}, 1, SortedOrder); err == nil {
		t.Fatal("generic admission must be rejected")
	}
	if _, err := New(ts, p, partition.EDFAdmission{}, -1, SortedOrder); err == nil {
		t.Fatal("negative alpha must be rejected")
	}
	if _, err := New(ts, p, partition.EDFAdmission{}, 1, Order(9)); err == nil {
		t.Fatal("unknown order must be rejected")
	}
	if _, err := New(task.Set{{WCET: 20, Period: 10}}, p, partition.EDFAdmission{}, 1, SortedOrder); err != ErrInfeasible {
		t.Fatal("infeasible seed must return ErrInfeasible")
	}
	e, err := New(ts, p, partition.EDFAdmission{}, 0, SortedOrder)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alpha() != 1 {
		t.Fatalf("alpha 0 must normalize to 1, got %v", e.Alpha())
	}
	if _, _, err := e.Remove(0); err == nil {
		t.Fatal("removing the last task must error")
	}
	if _, _, err := e.Remove(5); err == nil {
		t.Fatal("out-of-range Remove must error")
	}
	if _, _, err := e.UpdateWCET(0, 0); err == nil {
		t.Fatal("non-positive wcet must error")
	}
	if _, _, err := e.UpdateWCET(3, 1); err == nil {
		t.Fatal("out-of-range UpdateWCET must error")
	}
	if _, _, err := e.Admit(task.Task{WCET: 0, Period: 5}); err == nil {
		t.Fatal("invalid task must error")
	}
	if _, ok, err := e.UpdateWCET(0, 1); err != nil || !ok {
		t.Fatal("no-op UpdateWCET must succeed")
	}
}
