package online

import (
	"fmt"
	"math/rand"
	"testing"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// benchInstance builds the acceptance-criteria instance: m=64 machines,
// n=1000 resident tasks at moderate total utilization so admissions
// almost always succeed.
func benchInstance() (task.Set, machine.Platform) {
	rng := rand.New(rand.NewSource(97))
	const m, n = 64, 1000
	speeds := make([]float64, m)
	for j := range speeds {
		speeds[j] = 0.5 + 2*rng.Float64()
	}
	p := machine.New(speeds...)
	var total float64
	for _, s := range speeds {
		total += s
	}
	ts := make(task.Set, n)
	for i := range ts {
		per := int64(100 + rng.Intn(900))
		// Target ~40% of platform capacity in aggregate.
		u := 0.4 * total / n * (0.5 + rng.Float64())
		wc := int64(u * float64(per))
		if wc < 1 {
			wc = 1
		}
		ts[i] = task.Task{WCET: wc, Period: per}
	}
	return ts, p
}

// benchProbes: "tail" has a utilization below every resident task, so
// its sorted position is last and Admit takes the capacity-tree fast
// path — the typical case for a new small task joining a large set.
// "interior" lands mid-order and forces a suffix replay, first-fit's
// genuinely expensive case (removing it cascades later placements
// exactly as a fresh solve would).
var benchProbes = []struct {
	name string
	tk   task.Task
}{
	{"tail", task.Task{WCET: 1, Period: 1 << 20}},
	{"interior", task.Task{WCET: 7, Period: 100}},
}

// BenchmarkOnlineAdmit measures one incremental admit+remove round trip
// on a live engine — the operation pair a session performs for a
// rejected-then-rolled-back or probed mutation, and the engine-backed
// replacement for the full re-solve below. The acceptance comparison is
// sorted/tail (the path sessions hit for typical arrivals) against
// BenchmarkFullResolveAdmit.
func BenchmarkOnlineAdmit(b *testing.B) {
	ts, p := benchInstance()
	for _, ord := range []Order{SortedOrder, ArrivalOrder} {
		for _, probe := range benchProbes {
			if ord == ArrivalOrder && probe.name == "interior" {
				continue // arrival placement is position-independent
			}
			b.Run(ord.String()+"/"+probe.name, func(b *testing.B) {
				e, err := New(ts, p, partition.EDFAdmission{}, 1, ord)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok, err := e.Admit(probe.tk); err != nil || !ok {
						b.Fatalf("admit: ok=%v err=%v", ok, err)
					}
					if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
						b.Fatalf("remove: ok=%v err=%v", ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkOnlineAdmitBatch measures a 64-task interior batch admitted
// as one merged replay. The batch scatters interior insertions across
// the placement order, yet pays one checkpoint restore and one suffix
// walk for the whole batch, so the amortized ns/task metric lands
// within a small factor of a single tail admit instead of costing 64
// interior replays. Engine state is rebuilt outside the timer; the
// timed section is exactly the AdmitBatch call.
func BenchmarkOnlineAdmitBatch(b *testing.B) {
	ts, p := benchInstance()
	const batch = 64
	bt := make([]task.Task, batch)
	for i := range bt {
		// Utilizations spread across the resident range (~0.019–0.058)
		// so the batch scatters over many distinct interior positions.
		bt[i] = task.Task{WCET: 7, Period: int64(140 + 5*i)}
	}
	e, err := New(ts, p, partition.EDFAdmission{}, 1, SortedOrder)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the engine's arenas and checkpoint rows once so the timed
	// loop measures the steady state, then reuse one engine throughout:
	// cleanup removes the batch's tasks between iterations, untimed.
	undo := func() {
		for k := 0; k < batch; k++ {
			if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
				b.Fatalf("remove: ok=%v err=%v", ok, err)
			}
		}
	}
	if _, _, err := e.AdmitBatch(bt, BestEffort); err != nil {
		b.Fatal(err)
	}
	undo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, admitted, err := e.AdmitBatch(bt, BestEffort)
		if err != nil {
			b.Fatal(err)
		}
		for k, ok := range admitted {
			if !ok {
				b.Fatalf("batch task %d rejected", k)
			}
		}
		b.StopTimer()
		undo()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/task")
}

// BenchmarkFullResolveAdmit measures the path the engine replaces: the
// session's legacy admit, which clones the candidate set and re-solves
// the whole instance from scratch (NewSolver + Solve) per mutation.
func BenchmarkFullResolveAdmit(b *testing.B) {
	ts, p := benchInstance()
	cfg := partition.Paper(partition.EDFAdmission{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		candidate := append(ts.Clone(), benchProbes[0].tk)
		s, err := partition.NewSolver(candidate, p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Solve(1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("bench instance must be feasible")
		}
	}
}

// BenchmarkRepartitionPlan measures the drift measurement itself (a
// fresh sorted solve plus the diff) at the acceptance-criteria scale.
func BenchmarkRepartitionPlan(b *testing.B) {
	ts, p := benchInstance()
	e, err := New(ts, p, partition.EDFAdmission{}, 1, ArrivalOrder)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PlanRepartition(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConstrainedInstance mirrors benchInstance's scale (m=64, n=1000,
// ~40% aggregate utilization) with constrained deadlines and dyadic
// periods spread from 2^12 to 2^20. The spread is what separates the
// tiers: a machine holding a long-period task alongside short ones has
// an exact-test horizon of maxD·Σ1/P ≈ 10^4 checkpoints per probe,
// while the density fold answers the same probe in O(1) and the
// envelope band in O(n_j·k).
//
// Everything lives on an exact float64 grid — utilizations are
// multiples of 2^-12, speeds multiples of 1/4, periods powers of two —
// so a machine's utilization slack is either exactly zero (the cheap
// 2^20-hyperperiod branch) or at least 2^-12, which bounds the La
// horizon num/(s−u) every probe can see. Off-grid continuous draws
// admit probes with slack ~1e-5 whose checkpoint enumeration blows the
// analysis budget and aborts the solve.
func benchConstrainedInstance() (dbf.Set, machine.Platform) {
	rng := rand.New(rand.NewSource(97))
	const m, n = 64, 1000
	speeds := make([]float64, m)
	for j := range speeds {
		speeds[j] = float64(2+rng.Intn(9)) / 4
	}
	p := machine.New(speeds...)
	var total float64
	for _, s := range speeds {
		total += s
	}
	cs := make(dbf.Set, n)
	for i := range cs {
		per := int64(1) << (12 + rng.Intn(9))
		u := 0.4 * total / n * (0.5 + rng.Float64())
		q := int64(u*4096 + 0.5)
		if q < 1 {
			q = 1
		}
		// Deadline one tick under the period: the density excess over
		// utilization stays ~1e-4 per machine, so packed machines remain
		// answerable by the density tier while the exact test still runs
		// the full constrained analysis.
		cs[i] = dbf.Task{WCET: q * (per >> 12), Deadline: per - 1, Period: per}
	}
	return cs, p
}

// benchDBFProbes: the constrained analogues of benchProbes — "tail"
// has a density below every resident's, so it appends at the end of the
// sorted order (the steady-state arrival); "interior" lands mid-order,
// forcing a suffix replay through the tiered pipeline. Both stay on the
// instance's utilization grid (see benchConstrainedInstance).
var benchDBFProbes = []struct {
	name string
	tk   dbf.Task
}{
	{"tail", dbf.Task{WCET: 1, Deadline: 1 << 19, Period: 1 << 20}},
	{"interior", dbf.Task{WCET: 80, Deadline: 4095, Period: 4096}},
}

// BenchmarkOnlineAdmitDBF measures one constrained admit+remove round
// trip at the acceptance scale, in two configurations: "tiered" runs the
// full pipeline (density pre-filter, k=8 approximate envelope, exact
// fallback) and "exact" disables the cheap tiers (k=0) so every probe
// pays the full processor-demand test. The gap between them is the
// pipeline's value; each run also exports the fraction of feasibility
// decisions answered without the exact test as "cheap-tier-rate".
// Engines are built once and shared across reruns — every round trip
// restores the resident state exactly, which the differential tests
// prove — because the k=0 construction alone runs a full exact solve.
func BenchmarkOnlineAdmitDBF(b *testing.B) {
	cs, p := benchConstrainedInstance()
	engines := map[int]*Engine{}
	for _, k := range []int{8, 0} {
		e, err := NewConstrained(cs, p, 1, SortedOrder, k)
		if err != nil {
			b.Fatal(err)
		}
		engines[k] = e
	}
	for _, cfg := range []struct {
		name string
		k    int
	}{{"tiered", 8}, {"exact", 0}} {
		for _, probe := range benchDBFProbes {
			b.Run(cfg.name+"/"+probe.name, func(b *testing.B) {
				e := engines[cfg.k]
				// One untimed round trip warms arenas, checkpoint rows
				// and the exact-probe memo to their steady-state shape.
				if _, ok, err := e.AdmitConstrained(probe.tk); err != nil || !ok {
					b.Fatalf("warm admit: ok=%v err=%v", ok, err)
				}
				if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
					b.Fatalf("warm remove: ok=%v err=%v", ok, err)
				}
				d0, a0, x0 := e.TierCounts()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok, err := e.AdmitConstrained(probe.tk); err != nil || !ok {
						b.Fatalf("admit: ok=%v err=%v", ok, err)
					}
					if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
						b.Fatalf("remove: ok=%v err=%v", ok, err)
					}
				}
				b.StopTimer()
				d1, a1, x1 := e.TierCounts()
				if decisions := float64((d1 - d0) + (a1 - a0) + (x1 - x0)); decisions > 0 {
					b.ReportMetric(float64((d1-d0)+(a1-a0))/decisions, "cheap-tier-rate")
				}
			})
		}
	}
}

// TestBenchConstrainedInstanceFeasible keeps the constrained benchmark
// instance honest at both pipeline depths.
func TestBenchConstrainedInstanceFeasible(t *testing.T) {
	cs, p := benchConstrainedInstance()
	for _, k := range []int{0, 8} {
		if _, err := NewConstrained(cs, p, 1, SortedOrder, k); err != nil {
			t.Fatal(fmt.Errorf("k=%d: %w", k, err))
		}
	}
}

// TestBenchInstanceFeasible keeps the benchmark instance honest: it must
// be feasible in both modes so the loops above cannot silently no-op.
func TestBenchInstanceFeasible(t *testing.T) {
	ts, p := benchInstance()
	for _, ord := range []Order{SortedOrder, ArrivalOrder} {
		if _, err := New(ts, p, partition.EDFAdmission{}, 1, ord); err != nil {
			t.Fatal(fmt.Errorf("%v: %w", ord, err))
		}
	}
}
