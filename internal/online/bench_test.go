package online

import (
	"fmt"
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// benchInstance builds the acceptance-criteria instance: m=64 machines,
// n=1000 resident tasks at moderate total utilization so admissions
// almost always succeed.
func benchInstance() (task.Set, machine.Platform) {
	rng := rand.New(rand.NewSource(97))
	const m, n = 64, 1000
	speeds := make([]float64, m)
	for j := range speeds {
		speeds[j] = 0.5 + 2*rng.Float64()
	}
	p := machine.New(speeds...)
	var total float64
	for _, s := range speeds {
		total += s
	}
	ts := make(task.Set, n)
	for i := range ts {
		per := int64(100 + rng.Intn(900))
		// Target ~40% of platform capacity in aggregate.
		u := 0.4 * total / n * (0.5 + rng.Float64())
		wc := int64(u * float64(per))
		if wc < 1 {
			wc = 1
		}
		ts[i] = task.Task{WCET: wc, Period: per}
	}
	return ts, p
}

// benchProbes: "tail" has a utilization below every resident task, so
// its sorted position is last and Admit takes the capacity-tree fast
// path — the typical case for a new small task joining a large set.
// "interior" lands mid-order and forces a suffix replay, first-fit's
// genuinely expensive case (removing it cascades later placements
// exactly as a fresh solve would).
var benchProbes = []struct {
	name string
	tk   task.Task
}{
	{"tail", task.Task{WCET: 1, Period: 1 << 20}},
	{"interior", task.Task{WCET: 7, Period: 100}},
}

// BenchmarkOnlineAdmit measures one incremental admit+remove round trip
// on a live engine — the operation pair a session performs for a
// rejected-then-rolled-back or probed mutation, and the engine-backed
// replacement for the full re-solve below. The acceptance comparison is
// sorted/tail (the path sessions hit for typical arrivals) against
// BenchmarkFullResolveAdmit.
func BenchmarkOnlineAdmit(b *testing.B) {
	ts, p := benchInstance()
	for _, ord := range []Order{SortedOrder, ArrivalOrder} {
		for _, probe := range benchProbes {
			if ord == ArrivalOrder && probe.name == "interior" {
				continue // arrival placement is position-independent
			}
			b.Run(ord.String()+"/"+probe.name, func(b *testing.B) {
				e, err := New(ts, p, partition.EDFAdmission{}, 1, ord)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok, err := e.Admit(probe.tk); err != nil || !ok {
						b.Fatalf("admit: ok=%v err=%v", ok, err)
					}
					if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
						b.Fatalf("remove: ok=%v err=%v", ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkOnlineAdmitBatch measures a 64-task interior batch admitted
// as one merged replay. The batch scatters interior insertions across
// the placement order, yet pays one checkpoint restore and one suffix
// walk for the whole batch, so the amortized ns/task metric lands
// within a small factor of a single tail admit instead of costing 64
// interior replays. Engine state is rebuilt outside the timer; the
// timed section is exactly the AdmitBatch call.
func BenchmarkOnlineAdmitBatch(b *testing.B) {
	ts, p := benchInstance()
	const batch = 64
	bt := make([]task.Task, batch)
	for i := range bt {
		// Utilizations spread across the resident range (~0.019–0.058)
		// so the batch scatters over many distinct interior positions.
		bt[i] = task.Task{WCET: 7, Period: int64(140 + 5*i)}
	}
	e, err := New(ts, p, partition.EDFAdmission{}, 1, SortedOrder)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the engine's arenas and checkpoint rows once so the timed
	// loop measures the steady state, then reuse one engine throughout:
	// cleanup removes the batch's tasks between iterations, untimed.
	undo := func() {
		for k := 0; k < batch; k++ {
			if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
				b.Fatalf("remove: ok=%v err=%v", ok, err)
			}
		}
	}
	if _, _, err := e.AdmitBatch(bt, BestEffort); err != nil {
		b.Fatal(err)
	}
	undo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, admitted, err := e.AdmitBatch(bt, BestEffort)
		if err != nil {
			b.Fatal(err)
		}
		for k, ok := range admitted {
			if !ok {
				b.Fatalf("batch task %d rejected", k)
			}
		}
		b.StopTimer()
		undo()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/task")
}

// BenchmarkFullResolveAdmit measures the path the engine replaces: the
// session's legacy admit, which clones the candidate set and re-solves
// the whole instance from scratch (NewSolver + Solve) per mutation.
func BenchmarkFullResolveAdmit(b *testing.B) {
	ts, p := benchInstance()
	cfg := partition.Paper(partition.EDFAdmission{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		candidate := append(ts.Clone(), benchProbes[0].tk)
		s, err := partition.NewSolver(candidate, p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Solve(1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("bench instance must be feasible")
		}
	}
}

// BenchmarkRepartitionPlan measures the drift measurement itself (a
// fresh sorted solve plus the diff) at the acceptance-criteria scale.
func BenchmarkRepartitionPlan(b *testing.B) {
	ts, p := benchInstance()
	e, err := New(ts, p, partition.EDFAdmission{}, 1, ArrivalOrder)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PlanRepartition(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchInstanceFeasible keeps the benchmark instance honest: it must
// be feasible in both modes so the loops above cannot silently no-op.
func TestBenchInstanceFeasible(t *testing.T) {
	ts, p := benchInstance()
	for _, ord := range []Order{SortedOrder, ArrivalOrder} {
		if _, err := New(ts, p, partition.EDFAdmission{}, 1, ord); err != nil {
			t.Fatal(fmt.Errorf("%v: %w", ord, err))
		}
	}
}
