package online

// Constrained-deadline (DBF) admission for the online engine: the tiered
// pipeline of ISSUE 7. Engines of kind admDBF are built by NewConstrained
// and admit through a three-stage probe per machine:
//
//	tier 1 (density):   O(1) against the machine's cached folds — the
//	                    utilization pre-check rejects bitwise-identically
//	                    to FeasibleEDF's own, and a total density under
//	                    the speed accepts.
//	tier 2 (approx):    the Albers–Slomka k-point band over the machine's
//	                    cached demand envelope — exact int64 demand at a
//	                    cached point rejects, the approximate dbf under
//	                    the speed line at every jump point accepts.
//	tier 3 (exact):     dbf.FeasibleEDF over the candidate, memoized
//	                    against the machine's envelope generation.
//
// Every cheap-tier verdict is conclusive: it equals what FeasibleEDF
// would return for the same candidate, errors included, which is what
// keeps the engine's decisions and assignments byte-identical to a fresh
// dbf.FirstFit solve (the property the differential tests enforce). Any
// probe that cannot guarantee that — a margin case, an unsafe horizon —
// falls through to the exact test. See dbf.TieredFeasibleEDF for the
// single-shot version of the same pipeline and the conclusiveness
// arguments; the engine's variants only substitute cached folds and
// envelopes for the fresh scans.
//
// The envelope is maintained incrementally: placing a task folds its
// demand into every cached point and inserts its own first k deadlines
// (evaluating only the residents at genuinely new points); removals and
// truncations rebuild the machine's envelope from its surviving placed
// list. The exact-tier memo is keyed by (machine, envelope generation,
// candidate parameters); generations come from a never-reused global
// counter, so entries written during a later-rolled-back mutation can
// never collide with a live state.

import (
	"fmt"
	"math"
	"sort"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

const (
	// maxConstrainedPeriod caps periods (hence deadlines) on constrained
	// engines so every envelope point D + (k−1)·P stays below ~2^46 and
	// per-point demand arithmetic is far from int64 range.
	maxConstrainedPeriod = int64(1) << 40
	// maxApproxK caps the envelope depth; deeper linearizations add cost
	// with no measurable accuracy gain.
	maxApproxK = 64
	// dbfMemoCap bounds the exact-tier memo; the map is emptied (keeping
	// its buckets) when it fills.
	dbfMemoCap = 4096
)

// Tier indices recorded by noteTier; aligned with dbf.Tier.
const (
	tierDensity = int(dbf.TierDensity)
	tierApprox  = int(dbf.TierApprox)
	tierExact   = int(dbf.TierExact)
)

// dbfMemoKey identifies one exact-tier verdict: the machine, its demand
// envelope generation, and the candidate task's parameters.
type dbfMemoKey struct {
	j       int32
	gen     uint64
	c, d, p int64
}

// validateConstrained is the admission-time validity check for one
// constrained task: well-formed (C ≤ D ≤ P) and under the period cap.
func validateConstrained(t dbf.Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Period > maxConstrainedPeriod {
		return fmt.Errorf("task %q: period %d exceeds the constrained-deadline cap %d", t.Name, t.Period, maxConstrainedPeriod)
	}
	return nil
}

// NewConstrained builds an engine for a constrained-deadline task set
// with tiered DBF admission at augmentation alpha (0 means 1). k is the
// approximate tier's linearization depth (dbf.ApproxDBF's k, clamped to
// 64); k ≤ 0 disables the cheap tiers and the envelope entirely, so
// every probe runs the exact test — the baseline the benchmarks compare
// the tiers against. In SortedOrder every mutation leaves the engine
// byte-identical to a fresh dbf.FirstFit(ts, p, alpha, k ≤ 0) solve over
// the surviving multiset, regardless of which tiers answered.
//
// Deprecated: use NewEngine with Options{Policy, Alpha, Deadlines,
// ApproxK}; this wrapper maps the Order enum onto the equivalent
// first-fit policies and is equivalent bit-for-bit.
func NewConstrained(ts dbf.Set, p machine.Platform, alpha float64, ord Order, k int) (*Engine, error) {
	pol, err := policyForOrder(ord)
	if err != nil {
		return nil, err
	}
	tts, dls := splitConstrained(ts)
	return NewEngine(tts, p, Options{Policy: pol, Alpha: alpha, Deadlines: dls, ApproxK: k})
}

// AdmitConstrained offers one constrained-deadline task. On an
// implicit-deadline engine the task must itself be implicit (D = P) and
// is forwarded to Admit.
func (e *Engine) AdmitConstrained(t dbf.Task) (res partition.Result, admitted bool, err error) {
	if verr := validateConstrained(t); verr != nil {
		return partition.Result{}, false, fmt.Errorf("online: %w", verr)
	}
	tt := task.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
	if e.kind != admDBF {
		if t.Deadline != t.Period {
			return partition.Result{}, false, fmt.Errorf("online: implicit-deadline engine cannot admit constrained deadline %d < period %d", t.Deadline, t.Period)
		}
		return e.Admit(tt)
	}
	return e.admitOne(tt, t.Deadline)
}

// AdmitBatchConstrained is AdmitBatch for constrained-deadline tasks;
// the batch shares one merged replay exactly like the implicit path.
func (e *Engine) AdmitBatchConstrained(ts dbf.Set, mode BatchMode) (partition.Result, []bool, error) {
	switch mode {
	case BestEffort, AllOrNothing:
	default:
		return partition.Result{}, nil, fmt.Errorf("online: unknown batch mode %v", mode)
	}
	if e.kind != admDBF {
		return partition.Result{}, nil, fmt.Errorf("online: constrained batch admission needs a constrained-deadline engine")
	}
	tts := make([]task.Task, len(ts))
	dls := make([]int64, len(ts))
	for i, t := range ts {
		if err := validateConstrained(t); err != nil {
			return partition.Result{}, nil, fmt.Errorf("online: batch task %d: %w", i, err)
		}
		tts[i] = task.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		dls[i] = t.Deadline
	}
	return e.admitBatch(tts, dls, mode)
}

// ApproxK reports the tiered pipeline's linearization depth (≤ 0 means
// exact-only probes).
func (e *Engine) ApproxK() int { return e.approxK }

// Deadline returns task id's relative deadline (the period on
// implicit-deadline engines).
func (e *Engine) Deadline(id int) int64 {
	if e.kind == admDBF {
		return e.dl[id]
	}
	return e.tasks[id].Period
}

// TierCounts returns the cumulative number of admission probes decided
// by each tier since construction. All three are zero on
// implicit-deadline engines.
func (e *Engine) TierCounts() (density, approx, exact uint64) {
	return e.tierCnt[0], e.tierCnt[1], e.tierCnt[2]
}

// ConstrainedTasks returns a copy of the resident multiset as a dbf.Set
// in id order (implicit engines report D = P).
func (e *Engine) ConstrainedTasks() dbf.Set {
	s := make(dbf.Set, len(e.tasks))
	for i, t := range e.tasks {
		s[i] = dbf.Task{Name: t.Name, WCET: t.WCET, Deadline: e.Deadline(i), Period: t.Period}
	}
	return s
}

// noteTier records the tier that decided a probe.
func (e *Engine) noteTier(t int) {
	if t > e.stats.MaxTier {
		e.stats.MaxTier = t
	}
	e.tierCnt[t-1]++
}

// nextGen mints a fresh, never-reused envelope generation.
func (e *Engine) nextGen() uint64 {
	e.genCtr++
	return e.genCtr
}

// fitsDBF answers the DBF admission query for task id against machine
// j's current aggregates through the tiered pipeline. The verdict equals
// dbf.FeasibleEDF over the candidate built in placement order (with any
// error recorded in probeErr and surfaced by the mutation).
func (e *Engine) fitsDBF(j int, id int32) bool {
	mc := &e.machs[j]
	s := e.speeds[j]
	u := e.utils[id]
	// The fold total is the same addition chain a fresh TotalUtilization
	// performs over the machine's placed order, so this comparison is
	// bitwise FeasibleEDF's utilization pre-check over the candidate.
	newU := mc.load() + u
	if newU > s*(1+1e-12) {
		e.noteTier(tierDensity)
		return false
	}
	if e.approxK >= 1 && !mc.envBad {
		t := e.tasks[id]
		d := e.dl[id]
		dens := mc.densLoad() + e.dens[id]
		num := mc.numLoad() + float64(t.Period-d)*u
		invP := mc.invPLoad() + 1/float64(t.Period)
		maxD := mc.maxDLoad()
		if d > maxD {
			maxD = d
		}
		// The folds' rounding differs from a fresh summation by a few
		// ulps per resident; the 1e-9 inflation dominates it by orders of
		// magnitude, as HorizonSafe's contract requires.
		if dbf.HorizonSafe(s, newU*(1+1e-9), dens*(1+1e-9), invP*(1+1e-9), num*(1+1e-9), maxD, len(mc.placed)+1) {
			if dens <= s*(1-1e-9) {
				e.noteTier(tierDensity)
				return true
			}
			switch e.probeEnvelope(j, id, s, maxD) {
			case 1:
				e.noteTier(tierApprox)
				return true
			case -1:
				e.noteTier(tierApprox)
				return false
			}
		}
	}
	return e.exactProbe(j, id)
}

// probeEnvelope runs the approximate band for candidate id on machine j:
// +1 conclusive accept, −1 conclusive reject, 0 inconclusive. maxD is
// the candidate set's maximum deadline; the caller established
// HorizonSafe, so an exact int64 violation at a point ≤ maxD is a
// checkpoint FeasibleEDF provably reaches and rejects at, and an
// approximate pass at every jump point implies it never rejects (see
// dbf.approxBand for the full arguments — this is the same scan with the
// residents' share read from the cached envelope instead of recomputed).
func (e *Engine) probeEnvelope(j int, id int32, s float64, maxD int64) int {
	mc := &e.machs[j]
	k := e.approxK
	tk := e.tasks[id]
	C, D, P := tk.WCET, e.dl[id], tk.Period
	u := e.utils[id]
	approxOK := true
	// Pass 1: cached resident points, candidate folded in on the fly.
	// envE is exact and drift-free (int64), so the rejection comparison
	// is the checkDemand expression verbatim.
	for i, t := range mc.envT {
		st := s * float64(t)
		if t <= maxD {
			ce := candDemand(C, D, P, t)
			if ce < 0 || mc.envE[i] > math.MaxInt64-ce {
				return 0 // beyond the design envelope; let the exact tier decide
			}
			if float64(mc.envE[i]+ce) > st*(1+1e-12) {
				return -1
			}
		}
		if approxOK && mc.envA[i]+candApprox(C, D, P, u, k, t) > st*(1-1e-9) {
			approxOK = false
		}
		if !approxOK && t > maxD {
			return 0 // points ascend; nothing past here can still decide
		}
	}
	// Pass 2: the candidate's own first k deadlines (possibly uncached),
	// with the residents evaluated fresh.
	t := D
	for step := 0; step < k; step++ {
		st := s * float64(t)
		de := int64(step+1) * C // own exact demand at its (step+1)-th deadline
		da := candApprox(C, D, P, u, k, t)
		for _, pid := range mc.placed {
			pt := e.tasks[pid]
			if t <= maxD {
				ce := candDemand(pt.WCET, e.dl[pid], pt.Period, t)
				if ce < 0 || de > math.MaxInt64-ce {
					return 0
				}
				de += ce
			}
			da += candApprox(pt.WCET, e.dl[pid], pt.Period, e.utils[pid], k, t)
		}
		if t <= maxD && float64(de) > st*(1+1e-12) {
			return -1
		}
		if approxOK && da > st*(1-1e-9) {
			approxOK = false
		}
		if !approxOK && t > maxD {
			return 0
		}
		t += P // bounded by D + (k−1)·P ≤ ~2^46 under the period cap
	}
	if approxOK {
		return 1
	}
	return 0
}

// exactProbe runs the exact test for candidate id on machine j's current
// state, memoized against the machine's envelope generation (tiered
// engines only; exact-only engines probe fresh every time, which is the
// baseline the benchmarks measure). Errors are recorded in probeErr and
// reported as a rejection; the mutation surfaces them after the pass.
func (e *Engine) exactProbe(j int, id int32) bool {
	e.noteTier(tierExact)
	mc := &e.machs[j]
	t := e.tasks[id]
	var key dbfMemoKey
	if e.approxK >= 1 {
		key = dbfMemoKey{j: int32(j), gen: mc.envGen, c: t.WCET, d: e.dl[id], p: t.Period}
		if v, ok := e.memo[key]; ok {
			return v
		}
	}
	cb := e.candBuf[:0]
	for _, pid := range mc.placed {
		pt := e.tasks[pid]
		cb = append(cb, dbf.Task{Name: pt.Name, WCET: pt.WCET, Deadline: e.dl[pid], Period: pt.Period})
	}
	cb = append(cb, dbf.Task{Name: t.Name, WCET: t.WCET, Deadline: e.dl[id], Period: t.Period})
	e.candBuf = cb
	ok, err := dbf.FeasibleEDF(cb, e.speeds[j])
	if err != nil {
		if e.probeErr == nil {
			e.probeErr = err
		}
		return false
	}
	if e.approxK >= 1 {
		if e.memo == nil {
			e.memo = make(map[dbfMemoKey]bool, 64)
		} else if len(e.memo) >= dbfMemoCap {
			for mk := range e.memo {
				delete(e.memo, mk)
			}
		}
		e.memo[key] = ok
	}
	return ok
}

// fitsAtDBF answers the DBF admission query for task id against an
// untouched machine j's historical prefix of x placements. Tier 1 runs
// off the prefix folds; the deeper tiers have no cached envelope for
// historical states, so the candidate prefix is materialized and handed
// to the single-shot tiered pipeline.
func (e *Engine) fitsAtDBF(j int, id int32, x int) bool {
	mc := &e.machs[j]
	s := e.speeds[j]
	u := e.utils[id]
	var load float64
	if x > 0 {
		load = mc.cum[x-1]
	}
	newU := load + u
	if newU > s*(1+1e-12) {
		e.noteTier(tierDensity)
		return false
	}
	t := e.tasks[id]
	d := e.dl[id]
	if e.approxK >= 1 {
		var dens, num, invP float64
		var maxD int64
		if x > 0 {
			dens, num, invP, maxD = mc.cumDens[x-1], mc.cumNum[x-1], mc.cumInvP[x-1], mc.cumMaxD[x-1]
		}
		dens += e.dens[id]
		num += float64(t.Period-d) * u
		invP += 1 / float64(t.Period)
		if d > maxD {
			maxD = d
		}
		if dbf.HorizonSafe(s, newU*(1+1e-9), dens*(1+1e-9), invP*(1+1e-9), num*(1+1e-9), maxD, x+1) &&
			dens <= s*(1-1e-9) {
			e.noteTier(tierDensity)
			return true
		}
	}
	cb := e.candBuf[:0]
	for _, pid := range mc.placed[:x] {
		pt := e.tasks[pid]
		cb = append(cb, dbf.Task{Name: pt.Name, WCET: pt.WCET, Deadline: e.dl[pid], Period: pt.Period})
	}
	cb = append(cb, dbf.Task{Name: t.Name, WCET: t.WCET, Deadline: d, Period: t.Period})
	e.candBuf = cb
	ok, tier, err := dbf.TieredFeasibleEDF(cb, s, e.approxK)
	if err != nil {
		if e.probeErr == nil {
			e.probeErr = err
		}
		return false
	}
	e.noteTier(int(tier))
	return ok
}

// placeDBF extends machine j's DBF folds and envelope with task id. The
// caller (place) invokes it before appending to the placed list, so the
// fold tails and placed[:len] both describe the pre-placement residents.
func (e *Engine) placeDBF(j int, id int32) {
	mc := &e.machs[j]
	t := e.tasks[id]
	d := e.dl[id]
	mc.cumDens = append(mc.cumDens, mc.densLoad()+e.dens[id])
	mc.cumNum = append(mc.cumNum, mc.numLoad()+float64(t.Period-d)*e.utils[id])
	mc.cumInvP = append(mc.cumInvP, mc.invPLoad()+1/float64(t.Period))
	maxD := mc.maxDLoad()
	if d > maxD {
		maxD = d
	}
	mc.cumMaxD = append(mc.cumMaxD, maxD)
	if e.approxK >= 1 {
		e.envAdd(j, id, len(mc.placed))
		mc.envGen = e.nextGen()
	}
}

// envAdd merges task id into machine j's demand envelope: its demand is
// folded into every cached point, and its own first k deadlines are
// inserted where absent, evaluated over the cnt already-folded residents
// (placed[:cnt]) plus itself. During a rebuild cnt walks the placed list
// so not-yet-folded residents are never double counted.
func (e *Engine) envAdd(j int, id int32, cnt int) {
	mc := &e.machs[j]
	if mc.envBad {
		return
	}
	k := e.approxK
	t0 := e.tasks[id]
	C, D, P := t0.WCET, e.dl[id], t0.Period
	u := e.utils[id]
	for i, t := range mc.envT {
		ce := candDemand(C, D, P, t)
		if ce < 0 || mc.envE[i] > math.MaxInt64-ce {
			mc.envBad = true
			return
		}
		mc.envE[i] += ce
		mc.envA[i] += candApprox(C, D, P, u, k, t)
	}
	t := D
	for step := 0; step < k; step++ {
		at := sort.Search(len(mc.envT), func(i int) bool { return mc.envT[i] >= t })
		if at == len(mc.envT) || mc.envT[at] != t {
			de := int64(step+1) * C
			da := candApprox(C, D, P, u, k, t)
			for _, pid := range mc.placed[:cnt] {
				pt := e.tasks[pid]
				ce := candDemand(pt.WCET, e.dl[pid], pt.Period, t)
				if ce < 0 || de > math.MaxInt64-ce {
					mc.envBad = true
					return
				}
				de += ce
				da += candApprox(pt.WCET, e.dl[pid], pt.Period, e.utils[pid], k, t)
			}
			mc.envT = append(mc.envT, 0)
			copy(mc.envT[at+1:], mc.envT[at:])
			mc.envT[at] = t
			mc.envE = append(mc.envE, 0)
			copy(mc.envE[at+1:], mc.envE[at:])
			mc.envE[at] = de
			mc.envA = append(mc.envA, 0)
			copy(mc.envA[at+1:], mc.envA[at:])
			mc.envA[at] = da
		}
		t += P
	}
}

// rebuildEnvDBF recomputes machine j's envelope from its (already
// truncated or re-closed) placed list; makeDirty and splice call it
// after installing the new fold prefix. The DBF folds themselves were
// prefix-copied by the caller and need no rebuild.
func (e *Engine) rebuildEnvDBF(j int) {
	mc := &e.machs[j]
	mc.envT = mc.envT[:0]
	mc.envE = mc.envE[:0]
	mc.envA = mc.envA[:0]
	mc.envBad = false
	if e.approxK >= 1 {
		for x, pid := range mc.placed {
			e.envAdd(j, pid, x)
		}
		mc.envGen = e.nextGen()
	}
}

// candDemand is one task's exact demand contribution at time t
// (dbf.dbfChecked's per-task term), or −1 if jobs·C overflows.
func candDemand(C, D, P, t int64) int64 {
	if t < D {
		return 0
	}
	jobs := (t-D)/P + 1
	if jobs > math.MaxInt64/C {
		return -1
	}
	return jobs * C
}

// candApprox is one task's k-step approximate demand contribution at
// time t — branch-for-branch dbf.ApproxDBF's per-task term, so envelope
// sums differ from a fresh ApproxDBF only by summation-order rounding.
func candApprox(C, D, P int64, u float64, k int, t int64) float64 {
	if t < D {
		return 0
	}
	if sw := D + int64(k-1)*P; t < sw {
		jobs := (t-D)/P + 1
		return float64(jobs * C)
	}
	return float64(C) + u*float64(t-D)
}

// selfCheckDBF extends SelfCheck with the constrained-deadline
// invariants: per-task deadline/density consistency, bitwise fold
// re-derivation, envelope equality against a from-scratch rebuild, and
// exact EDF feasibility of every machine's resident set.
func (e *Engine) selfCheckDBF() error {
	n := len(e.tasks)
	if len(e.dl) != n || len(e.dens) != n {
		return fmt.Errorf("online: dbf per-task state lengths out of sync")
	}
	for id := 0; id < n; id++ {
		t := e.tasks[id]
		d := e.dl[id]
		if d < t.WCET || d > t.Period {
			return fmt.Errorf("online: task %d deadline %d outside [C=%d, P=%d]", id, d, t.WCET, t.Period)
		}
		if e.dens[id] != float64(t.WCET)/float64(d) {
			return fmt.Errorf("online: task %d density %v out of sync", id, e.dens[id])
		}
	}
	for j := range e.machs {
		mc := &e.machs[j]
		np := len(mc.placed)
		if len(mc.cumDens) != np || len(mc.cumNum) != np || len(mc.cumInvP) != np || len(mc.cumMaxD) != np {
			return fmt.Errorf("online: machine %d dbf fold length mismatch", j)
		}
		var dens, num, invP float64
		var maxD int64
		for x, id := range mc.placed {
			t := e.tasks[id]
			dens += e.dens[id]
			num += float64(t.Period-e.dl[id]) * e.utils[id]
			invP += 1 / float64(t.Period)
			if e.dl[id] > maxD {
				maxD = e.dl[id]
			}
			if math.Float64bits(dens) != math.Float64bits(mc.cumDens[x]) ||
				math.Float64bits(num) != math.Float64bits(mc.cumNum[x]) ||
				math.Float64bits(invP) != math.Float64bits(mc.cumInvP[x]) {
				return fmt.Errorf("online: machine %d dbf fold mismatch at %d", j, x)
			}
			if maxD != mc.cumMaxD[x] {
				return fmt.Errorf("online: machine %d cumMaxD[%d] = %d, refold %d", j, x, mc.cumMaxD[x], maxD)
			}
		}
		if np == 0 {
			if len(mc.envT) != 0 {
				return fmt.Errorf("online: machine %d empty but envelope has %d points", j, len(mc.envT))
			}
			continue
		}
		set := make(dbf.Set, 0, np)
		for _, id := range mc.placed {
			t := e.tasks[id]
			set = append(set, dbf.Task{Name: t.Name, WCET: t.WCET, Deadline: e.dl[id], Period: t.Period})
		}
		if ok, err := dbf.FeasibleEDF(set, e.speeds[j]); err != nil {
			return fmt.Errorf("online: machine %d exact test: %w", j, err)
		} else if !ok {
			return fmt.Errorf("online: machine %d infeasible under exact DBF", j)
		}
		if e.approxK < 1 || mc.envBad {
			continue
		}
		points := make([]int64, 0, np*e.approxK)
		for _, t := range set {
			tp := t.Deadline
			for s := 0; s < e.approxK; s++ {
				points = append(points, tp)
				tp += t.Period
			}
		}
		sort.Slice(points, func(a, b int) bool { return points[a] < points[b] })
		w := 0
		for i, t := range points {
			if i == 0 || t != points[w-1] {
				points[w] = t
				w++
			}
		}
		points = points[:w]
		if len(points) != len(mc.envT) || len(mc.envE) != len(mc.envT) || len(mc.envA) != len(mc.envT) {
			return fmt.Errorf("online: machine %d envelope has %d points, want %d", j, len(mc.envT), len(points))
		}
		for i, t := range points {
			if mc.envT[i] != t {
				return fmt.Errorf("online: machine %d envelope point %d = %d, want %d", j, i, mc.envT[i], t)
			}
			if de := set.DBF(t); de != mc.envE[i] {
				return fmt.Errorf("online: machine %d envE[%d] = %d, want %d", j, i, mc.envE[i], de)
			}
			da := set.ApproxDBF(t, e.approxK)
			if diff := math.Abs(da - mc.envA[i]); diff > 1e-6*(math.Abs(da)+1) {
				return fmt.Errorf("online: machine %d envA[%d] = %v, want ~%v", j, i, mc.envA[i], da)
			}
		}
	}
	return nil
}
