package online

import (
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/task"
)

// withStride swaps the engine's checkpoint table for one with the given
// stride and rebuilds it from scratch. Tests use it to pin that the
// stride is a pure performance knob: every stride — including the
// degenerate ones — must produce byte-identical decisions.
func withStride(t *testing.T, e *Engine, stride int) {
	t.Helper()
	e.cps = newCheckpoints(stride, len(e.machs))
	e.cps.rebuildFrom(e, 0)
	if err := e.SelfCheck(); err != nil {
		t.Fatalf("stride %d: %v", stride, err)
	}
}

// TestCheckpointStrides runs one mixed mutation sequence against
// engines that differ only in checkpoint stride (1 = checkpoint every
// position, 7 = misaligned, 64 = production, 1<<20 = effectively no
// checkpoints) and requires identical verdicts and bit-identical state
// after every operation.
func TestCheckpointStrides(t *testing.T) {
	strides := []int{1, 7, 64, 1 << 20}
	rng := rand.New(rand.NewSource(40487))
	for inst := 0; inst < 6; inst++ {
		p := randPlatform(rng)
		seed := task.Set{{WCET: 1, Period: 1 << 20}}
		engines := make([]*Engine, len(strides))
		for i, st := range strides {
			e, err := New(seed, p, testAdmissions[inst%len(testAdmissions)], 1, SortedOrder)
			if err != nil {
				t.Fatal(err)
			}
			withStride(t, e, st)
			engines[i] = e
		}
		for op := 0; op < 120; op++ {
			k := rng.Intn(10)
			id := rng.Intn(engines[0].Len())
			tk := randTask(rng)
			wcet := 1 + rng.Int63n(engines[0].Tasks()[id].Period)
			bt := randBatch(rng)
			var ref bool
			for i, e := range engines {
				var ok bool
				var err error
				switch {
				case k < 4:
					_, ok, err = e.Admit(tk)
				case k < 6:
					var admitted []bool
					_, admitted, err = e.AdmitBatch(bt, BestEffort)
					ok = countTrue(admitted) == len(bt)
				case k < 8 && e.Len() > 1:
					_, ok, err = e.Remove(id % e.Len())
				default:
					_, ok, err = e.UpdateWCET(id%e.Len(), wcet)
				}
				if err != nil {
					t.Fatalf("inst %d op %d stride %d: %v", inst, op, strides[i], err)
				}
				if i == 0 {
					ref = ok
				} else if ok != ref {
					t.Fatalf("inst %d op %d: stride %d verdict %v, stride %d verdict %v",
						inst, op, strides[0], ref, strides[i], ok)
				}
				if err := e.SelfCheck(); err != nil {
					t.Fatalf("inst %d op %d stride %d: %v", inst, op, strides[i], err)
				}
				if i > 0 {
					sameResult(t, "stride", e.Result().Clone(), engines[0].Result().Clone())
				}
			}
		}
	}
}

// TestCheckpointInvalidation drives each structural mutation that can
// invalidate checkpoint rows — Remove, UpdateWCET (which re-sorts the
// edited task), and a full repartition — and then requires the live
// engine to be indistinguishable from an engine freshly built over the
// surviving task set: same result bits, same checkpoint table.
func TestCheckpointInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(104729))
	for inst := 0; inst < 8; inst++ {
		p := randPlatform(rng)
		adm := testAdmissions[inst%len(testAdmissions)]
		ts := make(task.Set, 0, 80)
		for len(ts) < 80 {
			ts = append(ts, task.Task{WCET: 1, Period: int64(40 + len(ts))})
		}
		e, err := New(ts, p, adm, 1, SortedOrder)
		if err != nil {
			// Random platform may be too slow for the dense seed set;
			// thin it out until the seed fits.
			continue
		}
		for op := 0; op < 60; op++ {
			switch k := rng.Intn(10); {
			case k < 3:
				if _, _, err := e.Admit(randTask(rng)); err != nil {
					t.Fatal(err)
				}
			case k < 6 && e.Len() > 1:
				if _, _, err := e.Remove(rng.Intn(e.Len())); err != nil {
					t.Fatal(err)
				}
			case k < 8:
				id := rng.Intn(e.Len())
				wcet := 1 + rng.Int63n(e.Tasks()[id].Period)
				if _, _, err := e.UpdateWCET(id, wcet); err != nil {
					t.Fatal(err)
				}
			default:
				pl, err := e.PlanRepartition()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.ApplyRepartition(pl, -1); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.SelfCheck(); err != nil {
				t.Fatalf("inst %d op %d: %v", inst, op, err)
			}
			fresh, err := New(e.Tasks(), p, adm, e.Alpha(), SortedOrder)
			if err != nil {
				t.Fatalf("inst %d op %d: rebuilt engine: %v", inst, op, err)
			}
			sameResult(t, "rebuilt", e.Result().Clone(), fresh.Result().Clone())
			if len(e.cps.plen) != len(fresh.cps.plen) {
				t.Fatalf("inst %d op %d: %d checkpoint rows, rebuilt %d",
					inst, op, len(e.cps.plen), len(fresh.cps.plen))
			}
			for c := range e.cps.plen {
				if !reflect.DeepEqual(e.cps.plen[c], fresh.cps.plen[c]) {
					t.Fatalf("inst %d op %d: checkpoint row %d = %v, rebuilt %v",
						inst, op, c, e.cps.plen[c], fresh.cps.plen[c])
				}
			}
		}
	}
}

// TestEngineFuzzOps is the widest randomized cross-check: arbitrary
// interleavings of single admits, batches in both modes, removals, and
// WCET updates on a SortedOrder engine, with the fresh sorted solve of
// the independently-mirrored multiset as the oracle after every single
// operation, plus a full SelfCheck (which verifies fold bits, position
// maps, the public assignment mirror, and checkpoint exactness).
func TestEngineFuzzOps(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 52711))
			for inst := 0; inst < 8; inst++ {
				p := randPlatform(rng)
				cur := task.Set{{WCET: 1, Period: 1 << 20}}
				e, err := New(cur, p, adm, 1, SortedOrder)
				if err != nil {
					t.Fatal(err)
				}
				for op := 0; op < 100; op++ {
					switch k := rng.Intn(12); {
					case k < 4:
						tk := randTask(rng)
						_, ok, err := e.Admit(tk)
						if err != nil {
							t.Fatal(err)
						}
						if ok {
							cur = append(cur.Clone(), tk)
						}
					case k < 6:
						bt := randBatch(rng)
						_, admitted, err := e.AdmitBatch(bt, BestEffort)
						if err != nil {
							t.Fatal(err)
						}
						next := cur.Clone()
						for i, ok := range admitted {
							if ok {
								next = append(next, bt[i])
							}
						}
						cur = next
					case k < 8:
						bt := randBatch(rng)
						_, admitted, err := e.AdmitBatch(bt, AllOrNothing)
						if err != nil {
							t.Fatal(err)
						}
						if n := countTrue(admitted); n != 0 && n != len(bt) {
							t.Fatalf("inst %d op %d: all-or-nothing admitted %d/%d", inst, op, n, len(bt))
						}
						if countTrue(admitted) == len(bt) {
							cur = append(cur.Clone(), bt...)
						}
					case k < 10 && len(cur) > 1:
						id := rng.Intn(len(cur))
						_, ok, err := e.Remove(id)
						if err != nil {
							t.Fatal(err)
						}
						if ok {
							cur = append(cur[:id:id].Clone(), cur[id+1:]...)
						}
					default:
						id := rng.Intn(len(cur))
						wcet := 1 + rng.Int63n(cur[id].Period)
						_, ok, err := e.UpdateWCET(id, wcet)
						if err != nil {
							t.Fatal(err)
						}
						if ok {
							cur = cur.Clone()
							cur[id].WCET = wcet
						}
					}
					if err := e.SelfCheck(); err != nil {
						t.Fatalf("inst %d op %d: %v", inst, op, err)
					}
					sameResult(t, "fuzz", e.Result().Clone(), freshSorted(t, cur, p, adm, 1))
					if !reflect.DeepEqual(e.Tasks(), cur) {
						t.Fatalf("inst %d op %d: resident multiset diverged", inst, op)
					}
				}
			}
		})
	}
}
