package online

import (
	"math"
	"math/rand"
	"testing"
)

// TestCapTreeMatchesLinearScan drives random capacity updates and
// firstAtLeast queries against a plain slice scan.
func TestCapTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 100} {
		tr := newCapTree(n)
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = math.Inf(-1)
		}
		for step := 0; step < 2000; step++ {
			if rng.Intn(3) > 0 {
				pos := rng.Intn(n)
				cap := rng.Float64() * 4
				if rng.Intn(8) == 0 {
					cap = math.Inf(-1)
				}
				tr.set(pos, cap)
				ref[pos] = cap
			}
			u := rng.Float64() * 4
			from := rng.Intn(n + 2)
			want := -1
			for p := from; p < n; p++ {
				if ref[p] >= u {
					want = p
					break
				}
			}
			if got := tr.firstAtLeast(u, from); got != want {
				t.Fatalf("n=%d firstAtLeast(%v, %d) = %d, want %d (caps %v)", n, u, from, got, want, ref)
			}
		}
	}
}

func TestCapTreeEmpty(t *testing.T) {
	tr := newCapTree(0)
	if got := tr.firstAtLeast(0, 0); got != -1 {
		t.Fatalf("empty tree returned %d", got)
	}
}

// TestCapSlackCoversRounding checks the slack dominates the worst-case
// rounding gap between "cap ≥ u" and "load + u ≤ s" near the boundary:
// for values where the exact predicate accepts, the inflated capacity
// must accept too.
func TestCapSlackCoversRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200000; i++ {
		s := rng.Float64() * 8
		load := rng.Float64() * s
		u := s - load // straddles the boundary after rounding
		if rng.Intn(2) == 0 {
			u = math.Nextafter(u, 0)
		}
		if load+u <= s { // exact admission accepts
			cap := s - load + capSlack(s, load)
			if cap < u {
				t.Fatalf("slack too small: s=%v load=%v u=%v cap=%v", s, load, u, cap)
			}
		}
	}
}
