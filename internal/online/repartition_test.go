package online

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// TestRepartitionSortedNoDrift: a SortedOrder engine tracks the paper's
// solve exactly, so its plan is always empty with bitwise-zero load
// deltas — the "drift" the repartitioner measures is purely the
// arrival-order gap.
func TestRepartitionSortedNoDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for inst := 0; inst < 8; inst++ {
		p := randPlatform(rng)
		e, err := New(task.Set{{WCET: 1, Period: 1 << 20}}, p, partition.EDFAdmission{}, 1.5, SortedOrder)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, _, err := e.Admit(randTask(rng)); err != nil {
				t.Fatal(err)
			}
		}
		pl, err := e.PlanRepartition()
		if err != nil {
			t.Fatal(err)
		}
		if !pl.TargetFeasible {
			t.Fatal("target must be feasible: the engine state IS the sorted solve")
		}
		if len(pl.Moves) != 0 {
			t.Fatalf("sorted engine drifted: %v", pl.Moves)
		}
		if pl.MaxLoadDelta != 0 {
			t.Fatalf("sorted engine load delta %v, want 0", pl.MaxLoadDelta)
		}
		if pl.DriftFraction(e.Len()) != 0 {
			t.Fatal("drift fraction must be 0")
		}
	}
}

// driftedEngine builds an ArrivalOrder engine whose placement has
// drifted from the sorted solve: ascending-utilization arrivals are
// first-fit's worst case (Lupu et al.'s ordering sensitivity).
func driftedEngine(t *testing.T, rng *rand.Rand) *Engine {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		p := randPlatform(rng)
		e, err := New(task.Set{{WCET: 1, Period: 1 << 20}}, p, partition.EDFAdmission{}, 1, ArrivalOrder)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			per := int64(64 + rng.Intn(64))
			wc := 1 + int64(i)*per/64
			if wc > per {
				wc = per
			}
			if _, _, err := e.Admit(task.Task{WCET: wc, Period: per}); err != nil {
				t.Fatal(err)
			}
		}
		pl, err := e.PlanRepartition()
		if err != nil {
			t.Fatal(err)
		}
		if pl.TargetFeasible && len(pl.Moves) > 0 {
			return e
		}
	}
	t.Fatal("could not construct a drifted arrival engine")
	return nil
}

// TestRepartitionApplyFull applies a full plan and checks the engine
// lands exactly on the target: same assignment, bitwise-same loads, and
// a subsequent plan shows zero drift.
func TestRepartitionApplyFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for inst := 0; inst < 6; inst++ {
		e := driftedEngine(t, rng)
		pl, err := e.PlanRepartition()
		if err != nil {
			t.Fatal(err)
		}
		n, err := e.ApplyRepartition(pl, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(pl.Moves) {
			t.Fatalf("applied %d moves, plan had %d", n, len(pl.Moves))
		}
		if err := e.SelfCheck(); err != nil {
			t.Fatal(err)
		}
		res := e.Result()
		for id, j := range pl.Target.Assignment {
			if res.Assignment[id] != j {
				t.Fatalf("task %d on machine %d, target %d", id, res.Assignment[id], j)
			}
		}
		for j := range res.Loads {
			if math.Float64bits(res.Loads[j]) != math.Float64bits(pl.Target.Loads[j]) {
				t.Fatalf("load[%d] = %v, target %v", j, res.Loads[j], pl.Target.Loads[j])
			}
		}
		pl2, err := e.PlanRepartition()
		if err != nil {
			t.Fatal(err)
		}
		if len(pl2.Moves) != 0 {
			t.Fatalf("drift remains after full apply: %v", pl2.Moves)
		}
	}
}

// TestRepartitionApplyPartial drains drift in bounded rounds: every
// round applies at most maxMoves individually-feasible migrations, the
// engine self-checks after each, and the drift count never increases.
func TestRepartitionApplyPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for inst := 0; inst < 6; inst++ {
		e := driftedEngine(t, rng)
		prev := -1
		for round := 0; round < 200; round++ {
			pl, err := e.PlanRepartition()
			if err != nil {
				t.Fatal(err)
			}
			if !pl.TargetFeasible {
				t.Fatal("resident multiset is feasible under sorted solve by construction")
			}
			if prev >= 0 && len(pl.Moves) > prev {
				t.Fatalf("drift grew from %d to %d moves", prev, len(pl.Moves))
			}
			prev = len(pl.Moves)
			if len(pl.Moves) == 0 {
				return
			}
			applied, err := e.ApplyRepartition(pl, 2)
			if err != nil {
				t.Fatal(err)
			}
			if applied > 2 {
				t.Fatalf("applied %d moves with maxMoves=2", applied)
			}
			if err := e.SelfCheck(); err != nil {
				t.Fatal(err)
			}
			if applied == 0 {
				// No individually-feasible move this round: a bounded
				// greedy pass can legitimately stall (a swap would be
				// needed); the full apply must still land on target.
				if _, err := e.ApplyRepartition(pl, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestRepartitionStalePlan: a plan computed before a mutation must be
// refused, not applied onto the changed multiset.
func TestRepartitionStalePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	e := driftedEngine(t, rng)
	pl, err := e.PlanRepartition()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := e.Remove(0); err != nil || !ok {
		t.Fatalf("Remove: ok=%v err=%v", ok, err)
	}
	if _, err := e.ApplyRepartition(pl, 0); err == nil {
		t.Fatal("stale plan (wrong task count) must be rejected")
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionInfeasibleTarget(t *testing.T) {
	pl := Plan{TargetFeasible: false}
	e := &Engine{}
	if _, err := e.ApplyRepartition(pl, 0); err == nil {
		t.Fatal("infeasible target must be rejected")
	}
}
