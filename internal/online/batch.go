package online

import (
	"fmt"
	"sort"

	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// BatchMode selects how AdmitBatch treats a batch that does not fit in
// its entirety.
type BatchMode int

const (
	// BestEffort admits the subset a sequential Admit of the batch (in
	// input order) would admit: admitted tasks stay, rejected ones leave
	// no trace. The whole-batch case still runs as one merged replay.
	BestEffort BatchMode = iota
	// AllOrNothing admits the batch only if the union of the resident
	// set and the whole batch is feasible, as one transaction; otherwise
	// the engine is unchanged and the result is the failed fresh-solve
	// witness over the union.
	AllOrNothing
)

func (m BatchMode) String() string {
	switch m {
	case BestEffort:
		return "best_effort"
	case AllOrNothing:
		return "all_or_nothing"
	default:
		return fmt.Sprintf("BatchMode(%d)", int(m))
	}
}

// AdmitBatch offers several tasks at once. Admitted tasks receive
// consecutive ids in input order starting at the pre-call Len(); the
// returned slice reports each input task's verdict. In SortedOrder the
// batch is merged into the placement order and placed by a single
// suffix replay — one checkpoint restore and one pass regardless of how
// many insertions the batch scatters across the order — and the
// resulting state is byte-identical to admitting the tasks one by one
// (and hence to a fresh sorted solve over the surviving multiset). res
// is the engine's new state on (full or partial) success, or the
// rejection witness when nothing was admitted. An error means the batch
// was malformed and the engine is untouched.
func (e *Engine) AdmitBatch(ts []task.Task, mode BatchMode) (res partition.Result, admitted []bool, err error) {
	switch mode {
	case BestEffort, AllOrNothing:
	default:
		return partition.Result{}, nil, fmt.Errorf("online: unknown batch mode %v", mode)
	}
	for i := range ts {
		if err := ts[i].Validate(); err != nil {
			return partition.Result{}, nil, fmt.Errorf("online: batch task %d: %w", i, err)
		}
	}
	e.enterOp()
	res, admitted, err = e.admitBatch(ts, nil, mode)
	if e.exitOp(err == nil && anyTrue(admitted)) {
		res = e.Result() // re-snapshot past the applied repartition
	}
	return res, admitted, err
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// admitBatch is the shared batch core. dls carries per-task deadlines
// for constrained-deadline engines (nil means implicit, D = P); tasks
// and mode are already validated.
func (e *Engine) admitBatch(ts []task.Task, dls []int64, mode BatchMode) (res partition.Result, admitted []bool, err error) {
	if len(ts) == 0 {
		return e.Result(), nil, nil
	}
	if !e.ordered || len(ts) == 1 {
		return e.admitBatchSequential(ts, dls, mode)
	}

	// Merged transaction: append the batch, merge its ids into the
	// placement order in one backward two-pointer pass (the order is a
	// strict total order with an id tie-break, so the merged layout is
	// exactly the one sequential sort.Search insertions produce), then
	// replay once from the first merged position.
	n0 := len(e.tasks)
	for i, t := range ts {
		e.tasks = append(e.tasks, t)
		e.utils = append(e.utils, t.Utilization())
		e.assign = append(e.assign, -1)
		e.assignPub = append(e.assignPub, -1)
		e.pos = append(e.pos, 0)
		if e.kind == admDBF {
			d := t.Period
			if dls != nil {
				d = dls[i]
			}
			e.dl = append(e.dl, d)
			e.dens = append(e.dens, float64(t.WCET)/float64(d))
		}
	}
	ids := e.batchIDs[:0]
	for id := n0; id < n0+len(ts); id++ {
		ids = append(ids, int32(id))
	}
	sort.Slice(ids, func(a, b int) bool { return e.less(ids[a], ids[b]) })
	e.batchIDs = ids
	e.sorted = append(e.sorted, ids...)
	w := len(e.sorted) - 1
	oi := n0 - 1
	for b := len(ids) - 1; b >= 0; w-- {
		if oi >= 0 && e.less(ids[b], e.sorted[oi]) {
			e.sorted[w] = e.sorted[oi]
			oi--
		} else {
			e.sorted[w] = ids[b]
			b--
		}
	}
	kmin := w + 1 // final position of the batch's first task; prefix untouched
	e.recomputePos(kmin)
	e.begin(edit{op: opBatchInsert, id: n0, kOld: kmin})
	e.stats = OpStats{ReplayFrom: kmin, BatchSize: len(ts)}
	failID := e.replayFrom(kmin)
	if perr := e.takeProbeErr(); perr != nil {
		e.rollback()
		return partition.Result{}, nil, fmt.Errorf("online: %w", perr)
	}
	if failID < 0 {
		e.commit(kmin)
		admitted = make([]bool, len(ts))
		for i := range admitted {
			admitted[i] = true
		}
		return e.Result(), admitted, nil
	}
	res = e.failResult(failID, -1)
	e.rollback()
	if mode == AllOrNothing {
		return res, make([]bool, len(ts)), nil
	}
	// Best effort with a conflicting batch: fall back to the sequential
	// path, which is the mode's defining semantics.
	return e.admitBatchSequential(ts, dls, mode)
}

// admitBatchSequential admits the batch one task at a time. For
// AllOrNothing a failure undoes the already-admitted prefix (only
// reachable in ArrivalOrder, where removal always succeeds).
func (e *Engine) admitBatchSequential(ts []task.Task, dls []int64, mode BatchMode) (partition.Result, []bool, error) {
	admitted := make([]bool, len(ts))
	nAdmitted := 0
	var witness partition.Result
	rejected := false
	total := 0
	for i, t := range ts {
		d := t.Period
		if dls != nil {
			d = dls[i]
		}
		r, ok, err := e.admitOne(t, d)
		if err != nil {
			return partition.Result{}, nil, err
		}
		total += e.stats.Visited
		if ok {
			admitted[i] = true
			nAdmitted++
		} else {
			rejected = true
			witness = r
			if mode == AllOrNothing {
				break
			}
		}
	}
	e.stats = OpStats{ReplayFrom: -1, Visited: total, BatchSize: len(ts)}
	if mode == AllOrNothing && rejected {
		for ; nAdmitted > 0; nAdmitted-- {
			if _, ok, err := e.Remove(e.Len() - 1); err != nil || !ok {
				return partition.Result{}, nil, fmt.Errorf("online: batch undo failed: removed=%v err=%v", ok, err)
			}
		}
		e.stats = OpStats{ReplayFrom: -1, BatchSize: len(ts)}
		return witness, make([]bool, len(ts)), nil
	}
	if nAdmitted == 0 && rejected {
		return witness, admitted, nil
	}
	return e.Result(), admitted, nil
}
