// Package online implements an incremental version of the paper's §III
// partitioned feasibility test: an admission engine that keeps live
// per-machine load state (EDF utilization sums, Liu–Layland counts, the
// hyperbolic product) across Admit / Remove / UpdateWCET calls instead
// of re-solving the whole instance on every mutation.
//
// The engine runs in one of two placement orders:
//
//   - SortedOrder is the paper's order (utilization-descending tasks,
//     speed-ascending machines). Every mutation leaves the engine in
//     exactly the state a fresh partition.Solver.Solve(alpha) over the
//     surviving task multiset would produce — decisions, assignments and
//     per-machine load floats are byte-identical, which the differential
//     tests enforce. Mutations that land at the end of the order are
//     answered in O(log m) via a machine-capacity tree; interior
//     mutations replay only the affected suffix, skipping every task
//     whose placement provably cannot change (see replayFrom).
//
//   - ArrivalOrder places each task when it arrives and never revisits
//     earlier placements, so every operation is O(m) worst case and
//     O(log m) typical. This forfeits the sorted-order guarantee the
//     paper's bounds are proved for; the gap is observable as drift
//     against the sorted solve, and the repartitioner (repartition.go)
//     measures it and proposes bounded migration plans that restore it.
//
// All mutations are transactional: a mutation that would make the set
// infeasible is rolled back via an undo journal and the engine stays in
// its previous (feasible) state, while the caller still receives the
// failed partition witness a fresh solve would have reported.
package online

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

// Order selects the sequence tasks are offered to first-fit in.
type Order int

const (
	// SortedOrder is the paper's utilization-descending order; the
	// engine's state is always byte-identical to a fresh sorted solve.
	SortedOrder Order = iota
	// ArrivalOrder places tasks in admission order and never moves
	// earlier tasks, trading the paper's guarantee for O(m) mutations.
	ArrivalOrder
)

func (o Order) String() string {
	switch o {
	case SortedOrder:
		return "sorted"
	case ArrivalOrder:
		return "arrival"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// ErrInfeasible is returned by New when the initial task set does not
// partition at the requested augmentation: an engine only represents
// feasible states.
var ErrInfeasible = errors.New("online: initial task set infeasible at this augmentation")

// admKind mirrors the partition solver's fast-path selector; the engine
// supports exactly the admissions whose state folds incrementally.
type admKind int

const (
	admEDF admKind = iota
	admLL
	admHyperbolic
)

// mach is one machine's live placement state: the task ids assigned to
// it in placement order, plus the cumulative left-folds of the admission
// aggregates after each placement. cum[i] is the machine's utilization
// load after placing placed[:i+1] — the exact float sequence a fresh
// solver produces, which is what makes prefix states recoverable without
// re-summing (and without re-rounding).
type mach struct {
	placed  []int
	cum     []float64
	cumProd []float64 // hyperbolic only
}

func (mc *mach) load() float64 {
	if len(mc.cum) == 0 {
		return 0
	}
	return mc.cum[len(mc.cum)-1]
}

func (mc *mach) prod() float64 {
	if len(mc.cumProd) == 0 {
		return 1
	}
	return mc.cumProd[len(mc.cumProd)-1]
}

// machSnap is one journaled machine state (the pre-mutation slices are
// moved here intact; the live machine continues on fresh copies).
type machSnap struct {
	j  int
	mc mach
}

type assignSnap struct{ id, mach int }

type editOp int

const (
	opNone editOp = iota
	opInsert
	opRemove
	opUpdate
)

// edit records the structural change of the in-flight mutation so
// rollback can undo it without a full-state snapshot.
type edit struct {
	op      editOp
	id      int
	kOld    int // original placement-order position (opRemove, opUpdate)
	oldWCET int64
	oldUtil float64
}

// Engine is the incremental admission engine. It is not safe for
// concurrent use; callers serialize access (the service layer holds its
// per-session mutex around every call).
type Engine struct {
	adm   partition.AdmissionTest
	kind  admKind
	order Order
	alpha float64

	p       machine.Platform
	machIdx []int     // scan order (speed-ascending), machine input indices
	machPos []int     // machine input index → position in machIdx
	speeds  []float64 // α-scaled speeds, input order

	tasks task.Set // arrival order; slice indices are the public task ids
	utils []float64

	sorted []int // task ids in placement order
	pos    []int // task id → index in sorted
	assign []int // task id → machine input index

	machs []mach

	tree   *capTree
	treeOK bool

	epoch    int
	dirty    []int // machine input index → epoch last dirtied
	minDirty int   // min dirtied machine position this epoch; m when none

	jMachs   []machSnap
	jAssigns []assignSnap
	ed       edit

	loadsBuf []float64 // Result scratch
}

// New builds an engine for the task set, platform and admission test at
// augmentation alpha (0 means 1). Only the solver's incremental
// admissions are supported (EDF, RMS Liu–Layland, RMS hyperbolic); any
// other AdmissionTest is rejected. The inputs are copied. If the initial
// set does not partition, New returns ErrInfeasible: engines represent
// feasible states only.
func New(ts task.Set, p machine.Platform, adm partition.AdmissionTest, alpha float64, ord Order) (*Engine, error) {
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if alpha == 0 {
		alpha = 1
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("online: alpha %v must be positive", alpha)
	}
	e := &Engine{adm: adm, order: ord, alpha: alpha}
	switch adm.(type) {
	case partition.EDFAdmission:
		e.kind = admEDF
	case partition.RMSLLAdmission:
		e.kind = admLL
	case partition.RMSHyperbolicAdmission:
		e.kind = admHyperbolic
	default:
		return nil, fmt.Errorf("online: admission %q has no incremental state; use the batch solver", adm.Name())
	}
	switch ord {
	case SortedOrder, ArrivalOrder:
	default:
		return nil, fmt.Errorf("online: unknown order %v", ord)
	}

	n, m := len(ts), len(p)
	e.tasks = ts.Clone()
	e.p = append(machine.Platform(nil), p...)
	e.utils = make([]float64, n)
	for i, t := range e.tasks {
		e.utils[i] = t.Utilization()
	}
	e.speeds = make([]float64, m)
	for j := range e.p {
		e.speeds[j] = alpha * e.p[j].Speed
	}
	e.machIdx = make([]int, m)
	for j := range e.machIdx {
		e.machIdx[j] = j
	}
	sort.SliceStable(e.machIdx, func(a, b int) bool {
		return partition.MachineLessSpeedAsc(e.p, e.machIdx[a], e.machIdx[b])
	})
	e.machPos = make([]int, m)
	for pp, j := range e.machIdx {
		e.machPos[j] = pp
	}

	e.sorted = make([]int, n)
	for i := range e.sorted {
		e.sorted[i] = i
	}
	if ord == SortedOrder {
		sort.SliceStable(e.sorted, func(a, b int) bool {
			return partition.TaskLessUtilDesc(e.tasks, e.sorted[a], e.sorted[b])
		})
	}
	e.pos = make([]int, n)
	for i, id := range e.sorted {
		e.pos[id] = i
	}
	e.assign = make([]int, n)
	e.machs = make([]mach, m)
	e.dirty = make([]int, m)
	for j := range e.dirty {
		e.dirty[j] = -1
	}
	e.minDirty = m
	e.tree = newCapTree(m)
	e.loadsBuf = make([]float64, m)

	// Initial placement is a plain first-fit pass in placement order:
	// every machine state is final-so-far, so aggregate tests suffice.
	for _, id := range e.sorted {
		chosen := -1
		for _, j := range e.machIdx {
			if e.fitsAgg(j, id) {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			return nil, ErrInfeasible
		}
		e.assign[id] = chosen
		e.place(chosen, id)
	}
	return e, nil
}

// less is the engine's placement order on task ids.
func (e *Engine) less(a, b int) bool {
	if e.order == ArrivalOrder {
		return a < b
	}
	return partition.TaskLessUtilDesc(e.tasks, a, b)
}

// fitsAgg answers the admission query for task id on machine j against
// the machine's current aggregates — character-for-character the
// partition solver's fast paths, so both round identically.
func (e *Engine) fitsAgg(j, id int) bool {
	u := e.utils[id]
	speed := e.speeds[j]
	mc := &e.machs[j]
	switch e.kind {
	case admEDF:
		return mc.load()+u <= speed
	case admLL:
		return mc.load()+u <= sched.LiuLaylandBound(len(mc.placed)+1)*speed
	default: // admHyperbolic
		if speed <= 0 {
			return false
		}
		return mc.prod()*(u/speed+1) <= 2
	}
}

// prefixLen returns how many of machine j's placed tasks come strictly
// before placement-order position at. Placed lists are ordered by
// position, so the machine's exact state at that point is the
// corresponding prefix of its cumulative folds.
func (e *Engine) prefixLen(j, at int) int {
	mc := &e.machs[j]
	return sort.Search(len(mc.placed), func(x int) bool { return e.pos[mc.placed[x]] >= at })
}

// fitsAt answers the admission query for task id on an untouched machine
// j as of placement-order position at, reading the machine's historical
// state from its cumulative folds. Same expressions as fitsAgg.
func (e *Engine) fitsAt(j, id, at int) bool {
	u := e.utils[id]
	speed := e.speeds[j]
	mc := &e.machs[j]
	x := e.prefixLen(j, at)
	var load float64
	if x > 0 {
		load = mc.cum[x-1]
	}
	switch e.kind {
	case admEDF:
		return load+u <= speed
	case admLL:
		return load+u <= sched.LiuLaylandBound(x+1)*speed
	default: // admHyperbolic
		if speed <= 0 {
			return false
		}
		prod := 1.0
		if x > 0 {
			prod = mc.cumProd[x-1]
		}
		return prod*(u/speed+1) <= 2
	}
}

// place appends task id to machine j's fold. The caller has already
// established admission and (during replays) journaled j.
func (e *Engine) place(j, id int) {
	mc := &e.machs[j]
	newLoad := mc.load() + e.utils[id]
	mc.placed = append(mc.placed, id)
	mc.cum = append(mc.cum, newLoad)
	if e.kind == admHyperbolic {
		mc.cumProd = append(mc.cumProd, mc.prod()*(e.utils[id]/e.speeds[j]+1))
	}
	if e.treeOK {
		e.tree.set(e.machPos[j], e.nextCap(j))
	}
}

// nextCap is machine j's capacity for one more task, slack-inflated for
// the capacity tree (see capTree).
func (e *Engine) nextCap(j int) float64 {
	s := e.speeds[j]
	mc := &e.machs[j]
	switch e.kind {
	case admEDF:
		return s - mc.load() + capSlack(s, mc.load())
	case admLL:
		return sched.LiuLaylandBound(len(mc.placed)+1)*s - mc.load() + capSlack(s, mc.load())
	default: // admHyperbolic
		if s <= 0 {
			return math.Inf(-1)
		}
		return s*(2/mc.prod()-1) + capSlack(s, mc.load())
	}
}

func (e *Engine) ensureTree() {
	if e.treeOK {
		return
	}
	for pp, j := range e.machIdx {
		e.tree.set(pp, e.nextCap(j))
	}
	e.treeOK = true
}

// firstFitAgg finds the first-fit machine for task id against current
// aggregates, using the capacity tree with exact re-verification at each
// candidate. Decisions are identical to a linear fitsAgg scan.
func (e *Engine) firstFitAgg(id int) int {
	e.ensureTree()
	u := e.utils[id]
	from := 0
	for {
		pp := e.tree.firstAtLeast(u, from)
		if pp < 0 {
			return -1
		}
		j := e.machIdx[pp]
		if e.fitsAgg(j, id) {
			return j
		}
		from = pp + 1
	}
}

func (e *Engine) dirtyAt(j int) bool { return e.dirty[j] == e.epoch }

// begin opens a mutation's undo scope.
func (e *Engine) begin(ed edit) {
	e.epoch++
	e.minDirty = len(e.machIdx)
	e.jMachs = e.jMachs[:0]
	e.jAssigns = e.jAssigns[:0]
	e.ed = ed
}

// makeDirty journals machine j and truncates its placement to the exact
// state it had before placement-order position at; the truncated tasks
// all lie in the suffix being replayed and will be re-placed (possibly
// elsewhere) when the replay reaches them.
func (e *Engine) makeDirty(j, at int) {
	mc := &e.machs[j]
	e.jMachs = append(e.jMachs, machSnap{j: j, mc: *mc})
	x := e.prefixLen(j, at)
	nm := mach{
		placed: append(make([]int, 0, x+4), mc.placed[:x]...),
		cum:    append(make([]float64, 0, x+4), mc.cum[:x]...),
	}
	if e.kind == admHyperbolic {
		nm.cumProd = append(make([]float64, 0, x+4), mc.cumProd[:x]...)
	}
	*mc = nm
	e.dirty[j] = e.epoch
	if e.machPos[j] < e.minDirty {
		e.minDirty = e.machPos[j]
	}
	e.treeOK = false
}

func (e *Engine) journalAssign(id int) {
	e.jAssigns = append(e.jAssigns, assignSnap{id: id, mach: e.assign[id]})
}

func (e *Engine) recomputePos(from int) {
	for i := from; i < len(e.sorted); i++ {
		e.pos[e.sorted[i]] = i
	}
}

// replayFrom re-runs first-fit for sorted[k:] after a structural edit at
// position k, returning the id of the first unplaceable task or -1 on
// success. The prefix sorted[:k] is untouched by construction, so only
// the suffix can change — and most of it provably cannot:
//
//   - A suffix task still sitting on an untouched machine whose scan
//     position precedes every dirtied machine keeps its placement: the
//     machines it was rejected by and the machine that accepted it are
//     all in states identical to the previous run at that point (O(1)
//     skip).
//   - Otherwise, untouched machines that rejected the task before
//     still reject it (same state, same query), so only dirtied
//     machines before its old position plus everything from its old
//     position onward need re-testing; untouched machines are tested
//     against their historical prefix folds.
//
// Machines are journaled and truncated the first time the replay
// actually changes them, which both bounds the work and provides the
// undo log for rollback.
func (e *Engine) replayFrom(k int) int {
	m := len(e.machIdx)
	for i := k; i < len(e.sorted); i++ {
		id := e.sorted[i]
		old := e.assign[id]
		if old >= 0 && !e.dirtyAt(old) {
			oldP := e.machPos[old]
			if oldP < e.minDirty {
				continue // no machine it ever saw has changed
			}
			moved := -1
			for pp := e.minDirty; pp < oldP; pp++ {
				j := e.machIdx[pp]
				if e.dirtyAt(j) && e.fitsAgg(j, id) {
					moved = j
					break
				}
			}
			if moved < 0 {
				continue // stays exactly where it was
			}
			e.makeDirty(old, i) // drops id (and later entries) from old
			e.journalAssign(id)
			e.assign[id] = moved
			e.place(moved, id)
			continue
		}
		// Fresh task (old == -1) or its machine was truncated: full
		// first-fit scan, skipping untouched machines its previous run
		// already rejected. The skip is void for the edited task itself —
		// its utilization changed, so old rejections prove nothing — and
		// for a task that was never placed.
		skipBefore := -1
		if old >= 0 && !(e.ed.op == opUpdate && id == e.ed.id) {
			skipBefore = e.machPos[old]
		}
		chosen := -1
		for pp := 0; pp < m; pp++ {
			j := e.machIdx[pp]
			if e.dirtyAt(j) {
				if e.fitsAgg(j, id) {
					chosen = j
					break
				}
			} else if pp < skipBefore {
				continue // untouched: previous rejection stands
			} else if e.fitsAt(j, id, i) {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			return id
		}
		if !e.dirtyAt(chosen) {
			e.makeDirty(chosen, i)
		}
		e.journalAssign(id)
		e.assign[id] = chosen
		e.place(chosen, id)
	}
	return -1
}

// failResult builds the partition.Result a fresh Solve over the
// surviving multiset reports when task failID cannot be placed: the
// prefix before the failure keeps its (byte-identical) assignment, the
// failing task and everything after it is unplaced, and per-machine
// loads are the folds as of the failure point. exclude ≥ 0 compacts
// task ids for a removal in flight (fresh solves of the shrunken set
// number tasks without it). The result is freshly allocated.
func (e *Engine) failResult(failID, exclude int) partition.Result {
	at := e.pos[failID]
	n := len(e.tasks)
	if exclude >= 0 {
		n--
	}
	as := make([]int, n)
	for id := 0; id < len(e.tasks); id++ {
		if id == exclude {
			continue
		}
		nid := id
		if exclude >= 0 && id > exclude {
			nid--
		}
		if id != failID && e.pos[id] < at {
			as[nid] = e.assign[id]
		} else {
			as[nid] = -1
		}
	}
	loads := make([]float64, len(e.p))
	for j := range e.machs {
		if e.dirtyAt(j) {
			loads[j] = e.machs[j].load()
		} else if x := e.prefixLen(j, at); x > 0 {
			loads[j] = e.machs[j].cum[x-1]
		}
	}
	failed := failID
	if exclude >= 0 && failID > exclude {
		failed--
	}
	return partition.Result{Assignment: as, FailedTask: failed, Loads: loads, Alpha: e.alpha}
}

// rollback restores the pre-mutation state from the undo journal.
func (e *Engine) rollback() {
	for i := range e.jMachs {
		e.machs[e.jMachs[i].j] = e.jMachs[i].mc
	}
	for i := len(e.jAssigns) - 1; i >= 0; i-- {
		e.assign[e.jAssigns[i].id] = e.jAssigns[i].mach
	}
	switch e.ed.op {
	case opInsert:
		k := e.pos[e.ed.id]
		e.sorted = append(e.sorted[:k], e.sorted[k+1:]...)
		e.tasks = e.tasks[:len(e.tasks)-1]
		e.utils = e.utils[:len(e.utils)-1]
		e.assign = e.assign[:len(e.assign)-1]
		e.pos = e.pos[:len(e.pos)-1]
		e.recomputePos(k)
	case opRemove:
		e.insertSorted(e.ed.id, e.ed.kOld)
		e.recomputePos(e.ed.kOld)
	case opUpdate:
		e.tasks[e.ed.id].WCET = e.ed.oldWCET
		e.utils[e.ed.id] = e.ed.oldUtil
		cur := e.pos[e.ed.id]
		e.sorted = append(e.sorted[:cur], e.sorted[cur+1:]...)
		e.insertSorted(e.ed.id, e.ed.kOld)
		if cur < e.ed.kOld {
			e.recomputePos(cur)
		} else {
			e.recomputePos(e.ed.kOld)
		}
	}
	e.ed = edit{}
	e.treeOK = false
}

func (e *Engine) insertSorted(id, k int) {
	e.sorted = append(e.sorted, 0)
	copy(e.sorted[k+1:], e.sorted[k:])
	e.sorted[k] = id
}

// Admit offers one more task to the engine. On acceptance the task joins
// the set with the id Len()-1 had before the call (arrival ids are
// stable append order) and res is the engine's new state; on rejection
// the engine is unchanged and res is the failed fresh-solve witness over
// the candidate set. res aliases no engine scratch on rejection; on
// acceptance it follows Result's aliasing rules.
func (e *Engine) Admit(t task.Task) (res partition.Result, admitted bool, err error) {
	if err := t.Validate(); err != nil {
		return partition.Result{}, false, fmt.Errorf("online: %w", err)
	}
	id := len(e.tasks)
	e.tasks = append(e.tasks, t)
	e.utils = append(e.utils, t.Utilization())
	e.assign = append(e.assign, -1)

	k := len(e.sorted)
	if e.order == SortedOrder {
		k = sort.Search(len(e.sorted), func(i int) bool { return e.less(id, e.sorted[i]) })
	}
	e.pos = append(e.pos, 0)
	e.insertSorted(id, k)
	e.recomputePos(k)
	e.begin(edit{op: opInsert, id: id})

	if k == len(e.sorted)-1 {
		// End of the placement order: every machine's current aggregate
		// is its state at this point, so this is a single O(log m)
		// capacity query (plus exact verification).
		chosen := e.firstFitAgg(id)
		if chosen < 0 {
			res = e.failResult(id, -1)
			e.rollback()
			return res, false, nil
		}
		e.journalAssign(id)
		e.assign[id] = chosen
		e.place(chosen, id)
		return e.Result(), true, nil
	}
	if failID := e.replayFrom(k); failID >= 0 {
		res = e.failResult(failID, -1)
		e.rollback()
		return res, false, nil
	}
	return e.Result(), true, nil
}

// Remove deletes task id (later ids shift down by one, mirroring the
// caller's slice semantics). In SortedOrder the remainder is re-placed
// exactly as a fresh solve would place it; first-fit is not monotone
// under removals, so the shrunken set can fail — in that case the engine
// rolls back, ok is false, and res is the failed fresh-solve witness for
// the shrunken set. In ArrivalOrder removal is local (the machine's fold
// is re-closed over the surviving tasks) and always succeeds.
func (e *Engine) Remove(id int) (res partition.Result, ok bool, err error) {
	if id < 0 || id >= len(e.tasks) {
		return partition.Result{}, false, fmt.Errorf("online: Remove task %d out of range [0, %d)", id, len(e.tasks))
	}
	if len(e.tasks) == 1 {
		return partition.Result{}, false, fmt.Errorf("online: cannot remove the last task")
	}
	if e.order == ArrivalOrder {
		// Local removal: close the machine's fold over the survivors.
		// Every admission aggregate shrinks, so feasibility is preserved
		// and the operation always commits. sorted is the identity in
		// this mode, so the order edit is a plain splice too.
		e.begin(edit{op: opNone})
		e.sorted = append(e.sorted[:id], e.sorted[id+1:]...)
		e.recomputePos(id)
		e.splice(e.assign[id], id)
		e.compact(id)
		return e.Result(), true, nil
	}

	o := e.assign[id]
	k := e.pos[id]
	e.begin(edit{op: opRemove, id: id, kOld: k})
	e.sorted = append(e.sorted[:k], e.sorted[k+1:]...)
	e.recomputePos(k)
	e.makeDirty(o, k) // drops id and every later entry on its machine
	if failID := e.replayFrom(k); failID >= 0 {
		res = e.failResult(failID, id)
		e.rollback()
		return res, false, nil
	}
	e.compact(id)
	return e.Result(), true, nil
}

// UpdateWCET changes task id's worst-case execution time. In SortedOrder
// the task is re-ranked and the affected suffix replayed, leaving the
// engine byte-identical to a fresh solve over the updated multiset; on
// infeasibility the change is rolled back (ok false) and res is the
// failed fresh-solve witness for the updated set. In ArrivalOrder the
// task is re-admitted against current aggregates; if no machine fits it
// the change rolls back likewise.
func (e *Engine) UpdateWCET(id int, wcet int64) (res partition.Result, ok bool, err error) {
	if id < 0 || id >= len(e.tasks) {
		return partition.Result{}, false, fmt.Errorf("online: UpdateWCET task %d out of range [0, %d)", id, len(e.tasks))
	}
	if wcet <= 0 {
		return partition.Result{}, false, fmt.Errorf("online: UpdateWCET wcet %d must be positive", wcet)
	}
	if wcet == e.tasks[id].WCET {
		return e.Result(), true, nil
	}
	o := e.assign[id]
	if e.order == ArrivalOrder {
		// Local re-admission: splice the task out of its machine's fold,
		// then first-fit it against current aggregates. The placement
		// order (arrival order) is untouched either way.
		e.begin(edit{op: opNone})
		oldWCET, oldUtil := e.tasks[id].WCET, e.utils[id]
		e.tasks[id].WCET = wcet
		e.utils[id] = e.tasks[id].Utilization()
		e.splice(o, id)
		e.journalAssign(id)
		chosen := e.firstFitAgg(id)
		if chosen < 0 {
			res = e.arrivalFailResult(id)
			e.tasks[id].WCET = oldWCET
			e.utils[id] = oldUtil
			e.rollback()
			return res, false, nil
		}
		e.assign[id] = chosen
		e.place(chosen, id)
		return e.Result(), true, nil
	}

	kOld := e.pos[id]
	e.begin(edit{op: opUpdate, id: id, kOld: kOld, oldWCET: e.tasks[id].WCET, oldUtil: e.utils[id]})
	e.tasks[id].WCET = wcet
	e.utils[id] = e.tasks[id].Utilization()

	e.sorted = append(e.sorted[:kOld], e.sorted[kOld+1:]...)
	kNew := sort.Search(len(e.sorted), func(i int) bool { return e.less(id, e.sorted[i]) })
	e.insertSorted(id, kNew)
	k := kOld
	if kNew < k {
		k = kNew
	}
	e.recomputePos(k)
	e.makeDirty(o, k)
	if failID := e.replayFrom(k); failID >= 0 {
		res = e.failResult(failID, -1)
		e.rollback()
		return res, false, nil
	}
	return e.Result(), true, nil
}

// splice removes task id from machine j's fold locally, journaling j and
// re-closing the cumulative folds over the surviving tasks (ArrivalOrder
// only; sorted-order removals go through the replay).
func (e *Engine) splice(j, id int) {
	mc := &e.machs[j]
	e.jMachs = append(e.jMachs, machSnap{j: j, mc: *mc})
	x := -1
	for i, pid := range mc.placed {
		if pid == id {
			x = i
			break
		}
	}
	nm := mach{
		placed: append(make([]int, 0, len(mc.placed)), mc.placed[:x]...),
		cum:    append(make([]float64, 0, len(mc.placed)), mc.cum[:x]...),
	}
	if e.kind == admHyperbolic {
		nm.cumProd = append(make([]float64, 0, len(mc.placed)), mc.cumProd[:x]...)
	}
	*mc = nm
	for _, pid := range e.jMachs[len(e.jMachs)-1].mc.placed[x+1:] {
		e.place(j, pid)
	}
	e.dirty[j] = e.epoch
	e.treeOK = false
}

// arrivalFailResult is the rejection witness for a local (ArrivalOrder)
// mutation: every other task keeps its current machine, the failing task
// is unplaced, loads are the current folds without it.
func (e *Engine) arrivalFailResult(failID int) partition.Result {
	as := make([]int, len(e.tasks))
	for id := range as {
		as[id] = e.assign[id]
	}
	as[failID] = -1
	loads := make([]float64, len(e.p))
	for j := range e.machs {
		loads[j] = e.machs[j].load()
	}
	return partition.Result{Assignment: as, FailedTask: failID, Loads: loads, Alpha: e.alpha}
}

// compact renumbers task ids after a successful removal of r: ids above
// r shift down by one everywhere (tasks, folds, order, assignment).
func (e *Engine) compact(r int) {
	n := len(e.tasks)
	copy(e.tasks[r:], e.tasks[r+1:])
	e.tasks = e.tasks[:n-1]
	copy(e.utils[r:], e.utils[r+1:])
	e.utils = e.utils[:n-1]
	copy(e.assign[r:], e.assign[r+1:])
	e.assign = e.assign[:n-1]
	copy(e.pos[r:], e.pos[r+1:])
	e.pos = e.pos[:n-1]
	for i, id := range e.sorted {
		if id > r {
			e.sorted[i] = id - 1
		}
	}
	for j := range e.machs {
		for x, id := range e.machs[j].placed {
			if id > r {
				e.machs[j].placed[x] = id - 1
			}
		}
	}
}

// Result snapshots the engine's current (feasible) state. Assignment and
// Loads alias engine-owned buffers and are only valid until the next
// mutation; use Result.Clone to retain one.
func (e *Engine) Result() partition.Result {
	for j := range e.machs {
		e.loadsBuf[j] = e.machs[j].load()
	}
	return partition.Result{
		Feasible:   true,
		Assignment: e.assign,
		FailedTask: -1,
		Loads:      e.loadsBuf,
		Alpha:      e.alpha,
	}
}

// Len returns the number of resident tasks.
func (e *Engine) Len() int { return len(e.tasks) }

// Alpha returns the fixed augmentation every decision is made at.
func (e *Engine) Alpha() float64 { return e.alpha }

// OrderMode returns the engine's placement order.
func (e *Engine) OrderMode() Order { return e.order }

// Tasks returns a copy of the resident task multiset in id order.
func (e *Engine) Tasks() task.Set { return e.tasks.Clone() }

// SelfCheck verifies the engine's internal invariants: the placement
// order is a valid permutation sorted by the order relation, positions
// invert it, every task sits on exactly one machine matching its
// assignment, placed lists are position-ordered (SortedOrder), every
// cumulative fold re-derives bit-identically, and every machine's final
// state satisfies its admission bound. It is O(n log n + n·m) and meant
// for tests and debugging, not the hot path.
func (e *Engine) SelfCheck() error {
	n := len(e.tasks)
	if len(e.utils) != n || len(e.assign) != n || len(e.pos) != n || len(e.sorted) != n {
		return fmt.Errorf("online: inconsistent lengths")
	}
	seen := make([]bool, n)
	for i, id := range e.sorted {
		if id < 0 || id >= n || seen[id] {
			return fmt.Errorf("online: sorted is not a permutation at %d", i)
		}
		seen[id] = true
		if e.pos[id] != i {
			return fmt.Errorf("online: pos[%d] = %d, want %d", id, e.pos[id], i)
		}
		if i > 0 && !e.less(e.sorted[i-1], id) {
			return fmt.Errorf("online: sorted out of order at %d", i)
		}
	}
	placedOn := make([]int, n)
	for i := range placedOn {
		placedOn[i] = -1
	}
	for j := range e.machs {
		mc := &e.machs[j]
		if len(mc.cum) != len(mc.placed) {
			return fmt.Errorf("online: machine %d fold length mismatch", j)
		}
		load, prod := 0.0, 1.0
		for x, id := range mc.placed {
			if id < 0 || id >= n || placedOn[id] >= 0 {
				return fmt.Errorf("online: task %d multiply placed", id)
			}
			placedOn[id] = j
			if e.order == SortedOrder && x > 0 && e.pos[mc.placed[x-1]] >= e.pos[id] {
				return fmt.Errorf("online: machine %d placed list out of position order at %d", j, x)
			}
			load += e.utils[id]
			if math.Float64bits(load) != math.Float64bits(mc.cum[x]) {
				return fmt.Errorf("online: machine %d cum[%d] = %v, refold %v", j, x, mc.cum[x], load)
			}
			if e.kind == admHyperbolic {
				prod *= e.utils[id]/e.speeds[j] + 1
				if math.Float64bits(prod) != math.Float64bits(mc.cumProd[x]) {
					return fmt.Errorf("online: machine %d cumProd[%d] mismatch", j, x)
				}
			}
		}
		switch e.kind {
		case admEDF:
			if mc.load() > e.speeds[j] {
				return fmt.Errorf("online: machine %d overloaded: %v > %v", j, mc.load(), e.speeds[j])
			}
		case admLL:
			if len(mc.placed) > 0 && mc.load() > sched.LiuLaylandBound(len(mc.placed))*e.speeds[j] {
				return fmt.Errorf("online: machine %d violates Liu–Layland", j)
			}
		case admHyperbolic:
			if mc.prod() > 2 {
				return fmt.Errorf("online: machine %d violates hyperbolic bound", j)
			}
		}
	}
	for id := 0; id < n; id++ {
		if placedOn[id] != e.assign[id] {
			return fmt.Errorf("online: task %d assigned to %d but placed on %d", id, e.assign[id], placedOn[id])
		}
	}
	return nil
}
