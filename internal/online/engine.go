// Package online implements an incremental version of the paper's §III
// partitioned feasibility test: an admission engine that keeps live
// per-machine load state (EDF utilization sums, Liu–Layland counts, the
// hyperbolic product) across Admit / Remove / UpdateWCET calls instead
// of re-solving the whole instance on every mutation.
//
// Where a task lands is decided by a pluggable placement Policy
// (policy.go); the engine runs in one of two regimes according to
// Policy.Ordered():
//
//   - The ordered policy (FirstFitSorted) is the paper's order
//     (utilization-descending tasks, speed-ascending machines,
//     first-fit). Every mutation leaves the engine in exactly the state
//     a fresh partition.Solver.Solve(alpha) over the surviving task
//     multiset would produce — decisions, assignments and per-machine
//     load floats are byte-identical, which the differential tests
//     enforce. Mutations that land at the end of the order are
//     answered in O(log m) via a machine-capacity tree; interior
//     mutations replay only the affected suffix, and the replay walks
//     that suffix densely but does near-zero work per stationary task:
//     per-machine prefix-state checkpoints every K positions make
//     historical-state queries O(1) amortized, cached per-machine
//     admission thresholds let one comparison against a prefix maximum
//     over the dirtied machines dismiss a task whose placement provably
//     cannot change, and consecutive tasks re-folding onto the same
//     dirtied machine are fused into a run with deferred bookkeeping
//     (see replayFrom). Mutations recycle journal buffers through an
//     arena, so steady-state Admit/Remove/UpdateWCET allocate nothing.
//
// Batches of admissions go through AdmitBatch, which merges the whole
// batch into the placement order and runs one replay for all of its
// insertions, with all-or-nothing and best-effort failure modes.
//
//   - Local policies (FirstFitArrival, BestFit, WorstFit, KChoices,
//     PeriodicRepartition) place each task when it arrives by one
//     Policy.Select call against current aggregates and never revisit
//     earlier placements, so every operation is O(m) worst case and
//     O(log m) typical for the first-fit selectors. This forfeits the
//     sorted-order guarantee the paper's bounds are proved for; the gap
//     is observable as drift against the sorted solve, and the
//     repartitioner (repartition.go) measures it and proposes bounded
//     migration plans that restore it — automatically on a cadence
//     under the PeriodicRepartition policy wrapper.
//
// All mutations are transactional: a mutation that would make the set
// infeasible is rolled back via an undo journal and the engine stays in
// its previous (feasible) state, while the caller still receives the
// failed partition witness a fresh solve would have reported.
package online

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

// Order selects the sequence tasks are offered to first-fit in.
//
// Deprecated: orders generalized to placement policies. SortedOrder is
// FirstFitSorted() and ArrivalOrder is FirstFitArrival(), bit-for-bit;
// the Order-taking constructors remain as thin wrappers over NewEngine.
type Order int

const (
	// SortedOrder is the paper's utilization-descending order; the
	// engine's state is always byte-identical to a fresh sorted solve.
	SortedOrder Order = iota
	// ArrivalOrder places tasks in admission order and never moves
	// earlier tasks, trading the paper's guarantee for O(m) mutations.
	ArrivalOrder
)

func (o Order) String() string {
	switch o {
	case SortedOrder:
		return "sorted"
	case ArrivalOrder:
		return "arrival"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// ErrInfeasible is returned by New when the initial task set does not
// partition at the requested augmentation: an engine only represents
// feasible states.
var ErrInfeasible = errors.New("online: initial task set infeasible at this augmentation")

// admKind mirrors the partition solver's fast-path selector; the engine
// supports exactly the admissions whose state folds incrementally.
type admKind int

const (
	admEDF admKind = iota
	admLL
	admHyperbolic
	// admDBF is the constrained-deadline tiered pipeline (dbfstate.go);
	// engines of this kind are built by NewConstrained, not New.
	admDBF
)

// mach is one machine's live placement state: the task ids assigned to
// it in placement order, plus the cumulative left-folds of the admission
// aggregates after each placement. cum[i] is the machine's utilization
// load after placing placed[:i+1] — the exact float sequence a fresh
// solver produces, which is what makes prefix states recoverable without
// re-summing (and without re-rounding).
type mach struct {
	placed  []int32
	cum     []float64
	cumProd []float64 // hyperbolic only

	// admDBF only: parallel left-folds of the quantities the tiered
	// pipeline needs in O(1) — density sum, Σ(P−D)·w, Σ1/P and the
	// running max deadline — plus the machine's cached demand envelope:
	// the merged ascending testing-point set (each resident task's first
	// k deadlines, deduplicated) with per-point exact cumulative demand
	// (int64, drift-free) and approximate k-point demand (float64).
	cumDens []float64
	cumNum  []float64
	cumInvP []float64
	cumMaxD []int64
	envT    []int64
	envE    []int64
	envA    []float64
	// envGen is the machine's demand-envelope generation: a globally
	// unique, monotone stamp refreshed on every composition change, which
	// keys the exact-tier memo (stale entries can never collide because
	// generations are never reused, even across rollbacks).
	envGen uint64
	// envBad disables the envelope tiers until the next rebuild after an
	// int64 overflow in a cumulative demand (beyond the design envelope;
	// purely defensive).
	envBad bool
}

func (mc *mach) load() float64 {
	if len(mc.cum) == 0 {
		return 0
	}
	return mc.cum[len(mc.cum)-1]
}

func (mc *mach) prod() float64 {
	if len(mc.cumProd) == 0 {
		return 1
	}
	return mc.cumProd[len(mc.cumProd)-1]
}

func (mc *mach) densLoad() float64 {
	if len(mc.cumDens) == 0 {
		return 0
	}
	return mc.cumDens[len(mc.cumDens)-1]
}

func (mc *mach) numLoad() float64 {
	if len(mc.cumNum) == 0 {
		return 0
	}
	return mc.cumNum[len(mc.cumNum)-1]
}

func (mc *mach) invPLoad() float64 {
	if len(mc.cumInvP) == 0 {
		return 0
	}
	return mc.cumInvP[len(mc.cumInvP)-1]
}

func (mc *mach) maxDLoad() int64 {
	if len(mc.cumMaxD) == 0 {
		return 0
	}
	return mc.cumMaxD[len(mc.cumMaxD)-1]
}

// machSnap is one journaled machine state (the pre-mutation slices are
// moved here intact; the live machine continues on fresh copies).
type machSnap struct {
	j  int
	mc mach
}

type assignSnap struct{ id, mach int32 }

type editOp int

const (
	opNone editOp = iota
	opInsert
	opRemove
	opUpdate
	opBatchInsert
)

// edit records the structural change of the in-flight mutation so
// rollback can undo it without a full-state snapshot.
type edit struct {
	op      editOp
	id      int // task id; first batch id for opBatchInsert
	kOld    int // original placement-order position (opRemove, opUpdate); first merged position (opBatchInsert)
	oldWCET int64
	oldUtil float64
	oldDens float64 // admDBF only: pre-update density (opUpdate)
}

// OpStats describes how the engine executed its most recent mutation;
// the service layer reads it to classify admissions for metrics.
type OpStats struct {
	Tail       bool // end-of-order fast path or arrival-order local op
	ReplayFrom int  // first replayed position; -1 when no replay ran
	Visited    int  // suffix positions the replay actually visited
	BatchSize  int  // number of tasks offered (>1 for AdmitBatch)
	// MaxTier is the deepest admission tier any probe of the mutation
	// reached on a constrained-deadline engine: 1 density, 2 approximate
	// DBF, 3 exact FeasibleEDF; 0 on implicit-deadline engines.
	MaxTier int
}

// Engine is the incremental admission engine. It is not safe for
// concurrent use; callers serialize access (the service layer holds its
// per-session mutex around every call).
type Engine struct {
	adm     partition.AdmissionTest
	kind    admKind
	pol     Policy
	ordered bool // pol.Ordered(): the paper's sorted placement order
	alpha   float64

	p       machine.Platform
	machIdx []int     // scan order (speed-ascending), machine input indices
	machPos []int     // machine input index → position in machIdx
	speeds  []float64 // α-scaled speeds, input order

	tasks task.Set // arrival order; slice indices are the public task ids
	utils []float64

	sorted []int32 // task ids in placement order
	pos    []int32 // task id → index in sorted (int32: n < 2^31)
	assign []int32 // task id → machine input index

	// assignPub mirrors assign as []int for Result, maintained
	// incrementally at commit time: tasks whose machine changed are
	// exactly the journaled ones, so the refresh is O(changes), and a
	// rolled-back mutation never reaches the mirror.
	assignPub []int

	machs []mach

	tree   *capTree
	treeOK bool

	epoch    int
	dirty    []int // machine input index → epoch last dirtied
	minDirty int   // min dirtied machine position this epoch; m when none

	// Replay acceleration (per-epoch; reset by begin). dirtyPos lists
	// dirtied machines' scan positions ascending; dirtyTheta is the
	// parallel cache of each one's slack-inflated one-more-task capacity
	// (nextCap); dirtyIdx maps a dirtied machine's input index to its
	// slot in both. pmax caches inclusive prefix maxima of dirtyTheta
	// (pmax[i] = max(dirtyTheta[:i+1])); entries below the pmaxN
	// watermark are valid, the rest are recomputed lazily on read, so
	// "can any dirtied machine before position P admit u?" is one
	// comparison on the replay's hot path instead of a scan.
	dirtyPos   []int
	dirtyTheta []float64
	dirtyIdx   []int
	pmax       []float64
	pmaxN      int
	// thetaPos flattens the dirty set by scan position: thetaPos[pp] is
	// the cached threshold of the dirtied machine at position pp, NaN for
	// untouched machines. The replay's forward scan reads one float per
	// position instead of chasing dirty/dirtyIdx/dirtyTheta. Entries are
	// kept in sync with dirtyTheta and cleared lazily at the next begin.
	thetaPos []float64

	cps      *checkpoints // prefix-state checkpoints (SortedOrder only)
	machPool []mach       // retired state triples (see arena.go)
	batchIDs []int32      // AdmitBatch scratch

	jMachs   []machSnap
	jAssigns []assignSnap
	ed       edit
	edTreeOK bool // treeOK at begin; commit/rollback restore it incrementally

	stats    OpStats
	loadsBuf []float64 // Result scratch

	// Periodic-repartition hook (PeriodicRepartition policies): after
	// every repartEvery-th successful top-level mutation the engine
	// plans and applies a full sorted-first-fit repartition. hookDepth
	// guards nested public calls (the batch undo path calls Remove)
	// from firing the hook mid-operation.
	repartEvery int
	repartCnt   int
	hookDepth   int

	// Constrained-deadline state (admDBF only; see dbfstate.go).
	dl       []int64   // task id → relative deadline
	dens     []float64 // task id → density C/D
	approxK  int       // envelope depth; ≤ 0 runs exact-only probes
	genCtr   uint64    // monotone source for mach.envGen
	tierCnt  [3]uint64 // cumulative probes decided per tier (density, approx, exact)
	memo     map[dbfMemoKey]bool
	candBuf  dbf.Set // scratch candidate for exact probes
	probeErr error   // first exact-test error of the in-flight mutation
}

// New builds an engine for the task set, platform and admission test at
// augmentation alpha (0 means 1). Only the solver's incremental
// admissions are supported (EDF, RMS Liu–Layland, RMS hyperbolic); any
// other AdmissionTest is rejected. The inputs are copied. If the initial
// set does not partition, New returns ErrInfeasible: engines represent
// feasible states only.
//
// Deprecated: use NewEngine with Options{Policy, Admission, Alpha};
// this wrapper maps SortedOrder to FirstFitSorted and ArrivalOrder to
// FirstFitArrival and is equivalent bit-for-bit.
func New(ts task.Set, p machine.Platform, adm partition.AdmissionTest, alpha float64, ord Order) (*Engine, error) {
	pol, err := policyForOrder(ord)
	if err != nil {
		return nil, err
	}
	return NewEngine(ts, p, Options{Policy: pol, Admission: adm, Alpha: alpha})
}

// initCommon finishes construction once the kind-specific per-task state
// (tasks, utils and, for admDBF, dl/dens) is populated: machine order,
// placement order, state buffers and the initial first-fit placement.
func (e *Engine) initCommon() error {
	e.initState()
	return e.initPlacement()
}

// initState builds everything that does not depend on where tasks end
// up: machine scan order, placement order, and the empty state buffers.
// Restore (restore.go) calls it and then folds recorded placed lists
// instead of running the first-fit pass.
func (e *Engine) initState() {
	n, m := len(e.tasks), len(e.p)
	e.speeds = make([]float64, m)
	for j := range e.p {
		e.speeds[j] = e.alpha * e.p[j].Speed
	}
	e.machIdx = make([]int, m)
	for j := range e.machIdx {
		e.machIdx[j] = j
	}
	sort.SliceStable(e.machIdx, func(a, b int) bool {
		return partition.MachineLessSpeedAsc(e.p, e.machIdx[a], e.machIdx[b])
	})
	e.machPos = make([]int, m)
	for pp, j := range e.machIdx {
		e.machPos[j] = pp
	}

	e.sorted = make([]int32, n)
	for i := range e.sorted {
		e.sorted[i] = int32(i)
	}
	if e.ordered {
		sort.SliceStable(e.sorted, func(a, b int) bool {
			return e.less(e.sorted[a], e.sorted[b])
		})
	}
	e.pos = make([]int32, n)
	e.recomputePos(0)
	e.assign = make([]int32, n)
	e.assignPub = make([]int, n)
	e.machs = make([]mach, m)
	e.dirty = make([]int, m)
	for j := range e.dirty {
		e.dirty[j] = -1
	}
	e.minDirty = m
	e.tree = newCapTree(m)
	e.loadsBuf = make([]float64, m)
	e.dirtyPos = make([]int, 0, m)
	e.dirtyTheta = make([]float64, 0, m)
	e.dirtyIdx = make([]int, m)
	e.thetaPos = make([]float64, m)
	for i := range e.thetaPos {
		e.thetaPos[i] = math.NaN()
	}
	if e.ordered {
		e.cps = newCheckpoints(checkpointStride, m)
	}
}

// initPlacement runs the initial placement pass in placement order:
// every machine state is final-so-far, so aggregate tests (one policy
// Select per task) suffice.
func (e *Engine) initPlacement() error {
	for _, id := range e.sorted {
		chosen := e.selectPlace(id)
		if err := e.takeProbeErr(); err != nil {
			return err
		}
		if chosen < 0 {
			return ErrInfeasible
		}
		e.assign[id] = int32(chosen)
		e.assignPub[id] = chosen
		e.place(chosen, id)
	}
	if e.cps != nil {
		e.cps.rebuildFrom(e, 0)
	}
	return nil
}

// takeProbeErr returns and clears the first exact-test error recorded by
// a constrained-deadline probe during the current pass (nil otherwise).
func (e *Engine) takeProbeErr() error {
	err := e.probeErr
	e.probeErr = nil
	return err
}

// LastOpStats reports how the engine executed its most recent mutation.
func (e *Engine) LastOpStats() OpStats { return e.stats }

// less is the engine's placement order on task ids. For admDBF it is
// dbf.FirstFit's stable sort made strict — density descending (the same
// float comparison), deadline ascending, then arrival id, which is
// exactly the tie-break a stable sort of ids gives.
func (e *Engine) less(a, b int32) bool {
	if !e.ordered {
		return a < b
	}
	if e.kind == admDBF {
		if da, db := e.dens[a], e.dens[b]; da != db {
			return da > db
		}
		if e.dl[a] != e.dl[b] {
			return e.dl[a] < e.dl[b]
		}
		return a < b
	}
	return partition.TaskLessUtilDesc(e.tasks, int(a), int(b))
}

// fitsAgg answers the admission query for task id on machine j against
// the machine's current aggregates — character-for-character the
// partition solver's fast paths, so both round identically.
func (e *Engine) fitsAgg(j int, id int32) bool {
	u := e.utils[id]
	speed := e.speeds[j]
	mc := &e.machs[j]
	switch e.kind {
	case admEDF:
		return mc.load()+u <= speed
	case admLL:
		return mc.load()+u <= sched.LiuLaylandBound(len(mc.placed)+1)*speed
	case admDBF:
		return e.fitsDBF(j, id)
	default: // admHyperbolic
		if speed <= 0 {
			return false
		}
		return mc.prod()*(u/speed+1) <= 2
	}
}

// prefixLen returns how many of machine j's placed tasks come strictly
// before placement-order position at. Placed lists are ordered by
// position, so the machine's exact state at that point is the
// corresponding prefix of its cumulative folds. The nearest checkpoint
// at-or-before at supplies a starting estimate; the bidirectional local
// scan makes the answer exact regardless of checkpoint staleness, and
// with fresh checkpoints it terminates within the stride's worth of
// placements (typically 0–2 steps).
func (e *Engine) prefixLen(j, at int) int {
	mc := &e.machs[j]
	x := 0
	if e.cps != nil {
		x = e.cps.hint(j, at)
		if x > len(mc.placed) {
			x = len(mc.placed)
		}
	}
	for x > 0 && int(e.pos[mc.placed[x-1]]) >= at {
		x--
	}
	for x < len(mc.placed) && int(e.pos[mc.placed[x]]) < at {
		x++
	}
	return x
}

// fitsAt answers the admission query for task id on an untouched machine
// j as of placement-order position at, reading the machine's historical
// state from its cumulative folds. Same expressions as fitsAgg.
func (e *Engine) fitsAt(j int, id int32, at int) bool {
	u := e.utils[id]
	speed := e.speeds[j]
	mc := &e.machs[j]
	x := e.prefixLen(j, at)
	var load float64
	if x > 0 {
		load = mc.cum[x-1]
	}
	switch e.kind {
	case admEDF:
		return load+u <= speed
	case admLL:
		return load+u <= sched.LiuLaylandBound(x+1)*speed
	case admDBF:
		return e.fitsAtDBF(j, id, x)
	default: // admHyperbolic
		if speed <= 0 {
			return false
		}
		prod := 1.0
		if x > 0 {
			prod = mc.cumProd[x-1]
		}
		return prod*(u/speed+1) <= 2
	}
}

// place appends task id to machine j's fold. The caller has already
// established admission and (during replays) journaled j.
func (e *Engine) place(j int, id int32) {
	mc := &e.machs[j]
	newLoad := mc.load() + e.utils[id]
	if e.kind == admDBF {
		// Fold the tier-1 aggregates before appending, then carry the
		// envelope forward (placeDBF reads the pre-append folds).
		e.placeDBF(j, id)
	}
	mc.placed = append(mc.placed, id)
	mc.cum = append(mc.cum, newLoad)
	if e.kind == admHyperbolic {
		mc.cumProd = append(mc.cumProd, mc.prod()*(e.utils[id]/e.speeds[j]+1))
	}
	if e.treeOK {
		e.tree.set(e.machPos[j], e.nextCap(j))
	}
	if e.dirty[j] == e.epoch {
		// Refresh the machine's cached threshold in place (same value
		// nextCap computes, reusing newLoad) — this runs once per
		// placement during replays.
		di := e.dirtyIdx[j]
		s := e.speeds[j]
		var th float64
		switch e.kind {
		case admEDF:
			th = s - newLoad + capSlack(s, newLoad)
		case admDBF:
			// The DBF admission's only utilization-shaped necessary
			// condition is FeasibleEDF's pre-check load+u ≤ s·(1+1e-12), so
			// that is the capacity the threshold over-estimates: skipping on
			// cap < u then exactly matches the pre-check rejection.
			th = s*(1+1e-12) - newLoad + capSlack(s, newLoad)
		case admLL:
			th = sched.LiuLaylandBound(len(mc.placed)+1)*s - newLoad + capSlack(s, newLoad)
		default: // admHyperbolic; s > 0 by construction
			th = s*(2/mc.prod()-1) + capSlack(s, newLoad)
		}
		e.dirtyTheta[di] = th
		e.thetaPos[e.machPos[j]] = th
		if di < e.pmaxN {
			e.pmaxN = di
		}
	}
}

// nextCap is machine j's capacity for one more task, slack-inflated for
// the capacity tree (see capTree).
func (e *Engine) nextCap(j int) float64 {
	s := e.speeds[j]
	mc := &e.machs[j]
	switch e.kind {
	case admEDF:
		return s - mc.load() + capSlack(s, mc.load())
	case admDBF:
		// Utilization keys against FeasibleEDF's pre-check capacity
		// s·(1+1e-12): a tree entry below u means load+u lands above the
		// pre-check tolerance, a conclusive (false, nil) DBF rejection —
		// never an error, because the pre-check runs first. (Density-based
		// keys would be unsound: density sums above the speed can still be
		// exactly feasible, so they would skip admissible machines and
		// break first-fit fidelity.)
		return s*(1+1e-12) - mc.load() + capSlack(s, mc.load())
	case admLL:
		return sched.LiuLaylandBound(len(mc.placed)+1)*s - mc.load() + capSlack(s, mc.load())
	default: // admHyperbolic
		if s <= 0 {
			return math.Inf(-1)
		}
		return s*(2/mc.prod()-1) + capSlack(s, mc.load())
	}
}

func (e *Engine) ensureTree() {
	if e.treeOK {
		return
	}
	for pp, j := range e.machIdx {
		e.tree.set(pp, e.nextCap(j))
	}
	e.treeOK = true
}

// firstFitAgg finds the first-fit machine for task id against current
// aggregates, using the capacity tree with exact re-verification at each
// candidate. Decisions are identical to a linear fitsAgg scan.
func (e *Engine) firstFitAgg(id int32) int {
	e.ensureTree()
	u := e.utils[id]
	from := 0
	for {
		pp := e.tree.firstAtLeast(u, from)
		if pp < 0 {
			return -1
		}
		j := e.machIdx[pp]
		if e.fitsAgg(j, id) {
			return j
		}
		from = pp + 1
	}
}

// selectPlace asks the policy for task id's machine against current
// aggregates — the local decision every non-replay placement makes
// (initial placement, tail admits, local WCET re-admission). Under
// FirstFitSorted and FirstFitArrival this is exactly the capacity-tree
// probe (firstFitAgg), so those engines behave identically to the
// pre-Policy orders; replayFrom never consults the policy because
// suffix replay is defined only for the ordered (first-fit) policy.
func (e *Engine) selectPlace(id int32) int { return e.pol.Select(View{e: e}, id) }

// enterOp / exitOp bracket every public mutation. When the outermost
// mutation of a PeriodicRepartition engine commits, exitOp counts it
// and, on every repartEvery-th commit, folds accumulated drift back by
// planning and applying a full sorted-first-fit repartition. Nested
// public calls (the all-or-nothing batch undo path calls Remove) never
// fire the hook mid-operation, and a failed repartition (infeasible
// target) is dropped: the engine's own state is feasible regardless,
// and the next window retries. exitOp reports whether a repartition
// was applied, so callers re-snapshot their Result only when the hook
// actually moved tasks — the common no-hook admit path must not pay a
// second O(m) snapshot.
func (e *Engine) enterOp() { e.hookDepth++ }

func (e *Engine) exitOp(mutated bool) bool {
	e.hookDepth--
	if !mutated || e.hookDepth != 0 || e.repartEvery <= 0 {
		return false
	}
	e.repartCnt++
	if e.repartCnt < e.repartEvery {
		return false
	}
	e.repartCnt = 0
	if pl, err := e.PlanRepartition(); err == nil && pl.TargetFeasible {
		e.ApplyRepartition(pl, 0)
		return true
	}
	return false
}

// RepartCount reports the periodic-repartition hook's position in its
// cadence window: mutations committed since the last rebuild. Snapshot
// it alongside PlacedLists and hand it back via Options.RepartCnt, so a
// restored engine fires its next rebuild at the same mutation its
// never-restored twin does. Always 0 for non-repartitioning policies.
func (e *Engine) RepartCount() int { return e.repartCnt }

func (e *Engine) dirtyAt(j int) bool { return e.dirty[j] == e.epoch }

// begin opens a mutation's undo scope.
func (e *Engine) begin(ed edit) {
	e.edTreeOK = e.treeOK
	e.epoch++
	e.minDirty = len(e.machIdx)
	e.jMachs = e.jMachs[:0]
	e.jAssigns = e.jAssigns[:0]
	for _, pp := range e.dirtyPos { // clear the previous epoch's flat view
		e.thetaPos[pp] = math.NaN()
	}
	e.dirtyPos = e.dirtyPos[:0]
	e.dirtyTheta = e.dirtyTheta[:0]
	e.pmax = e.pmax[:0]
	e.pmaxN = 0
	e.ed = ed
}

// commit closes a successful mutation: the journaled pre-mutation state
// buffers return to the arena and the checkpoints past the edit position
// (the only ones the mutation could invalidate) are rebuilt exactly.
//
// If the capacity tree was fresh when the mutation began, it is brought
// back to fresh here by re-keying just the journaled machines instead of
// invalidating all m leaves: machines that changed without being
// journaled only ever gained load, so their (over-estimating) entries
// stay sound for the tree's probe-then-verify protocol, while every
// machine whose capacity grew was journaled by makeDirty or splice.
func (e *Engine) commit(from int) {
	refresh := e.edTreeOK && !e.treeOK
	for i := range e.jMachs {
		if refresh {
			j := e.jMachs[i].j
			e.tree.set(e.machPos[j], e.nextCap(j))
		}
		e.recycleMach(e.jMachs[i].mc)
		e.jMachs[i] = machSnap{}
	}
	if refresh {
		e.treeOK = true
	}
	e.jMachs = e.jMachs[:0]
	for i := range e.jAssigns {
		id := e.jAssigns[i].id
		e.assignPub[id] = int(e.assign[id])
	}
	e.jAssigns = e.jAssigns[:0]
	e.ed = edit{}
	if e.cps != nil {
		e.cps.rebuildFrom(e, from)
	}
}

// makeDirty journals machine j and truncates its placement to the exact
// state it had before placement-order position at; the truncated tasks
// all lie in the suffix being replayed (still assigned to j, which is
// now marked dirty — exactly how the replay recognizes them) and will
// be re-placed, possibly elsewhere, when the dense walk reaches them.
func (e *Engine) makeDirty(j, at int) {
	mc := &e.machs[j]
	e.jMachs = append(e.jMachs, machSnap{j: j, mc: *mc})
	x := e.prefixLen(j, at)
	nm := e.grabMach()
	nm.placed = append(nm.placed, mc.placed[:x]...)
	nm.cum = append(nm.cum, mc.cum[:x]...)
	if e.kind == admHyperbolic {
		nm.cumProd = append(nm.cumProd, mc.cumProd[:x]...)
	}
	if e.kind == admDBF {
		nm.cumDens = append(nm.cumDens, mc.cumDens[:x]...)
		nm.cumNum = append(nm.cumNum, mc.cumNum[:x]...)
		nm.cumInvP = append(nm.cumInvP, mc.cumInvP[:x]...)
		nm.cumMaxD = append(nm.cumMaxD, mc.cumMaxD[:x]...)
	}
	*mc = nm
	if e.kind == admDBF {
		e.rebuildEnvDBF(j)
	}
	e.noteDirty(j)
	e.treeOK = false
}

// noteDirty registers machine j as dirtied this epoch: marks its epoch,
// lowers minDirty, and inserts its scan position and threshold into the
// ascending dirtyPos/dirtyTheta arrays (few entries; linear shift,
// re-pointing dirtyIdx for each shifted machine).
func (e *Engine) noteDirty(j int) {
	e.dirty[j] = e.epoch
	pp := e.machPos[j]
	if pp < e.minDirty {
		e.minDirty = pp
	}
	di := len(e.dirtyPos)
	e.dirtyPos = append(e.dirtyPos, 0)
	e.dirtyTheta = append(e.dirtyTheta, 0)
	e.pmax = append(e.pmax, 0)
	for di > 0 && e.dirtyPos[di-1] > pp {
		e.dirtyPos[di] = e.dirtyPos[di-1]
		e.dirtyTheta[di] = e.dirtyTheta[di-1]
		e.dirtyIdx[e.machIdx[e.dirtyPos[di]]] = di
		di--
	}
	e.dirtyPos[di] = pp
	e.dirtyTheta[di] = e.nextCap(j)
	e.thetaPos[pp] = e.dirtyTheta[di]
	e.dirtyIdx[j] = di
	if di < e.pmaxN {
		e.pmaxN = di
	}
}

// preMax returns the largest inflated one-more-task capacity over the
// first lim entries of the dirty set, i.e. over every dirtied machine
// scanned before dirtyPos[lim] (-Inf when lim is 0). No task with a
// larger utilization can be admitted by any of those machines, so the
// replay collapses "scan the dirtied prefix" to this one comparison.
// Cascades dirty machines in ascending scan order and re-place onto the
// newest one, so the watermark almost always sits at the tail and the
// amortized cost is O(1) per query. (Keeping pmax exact — invalidating
// on every threshold refresh — measures ~3.5x faster end-to-end than a
// stale-upper-bound variant: the initial post-truncation thresholds are
// large, and freezing them into pmax makes the skip guard pass
// spuriously for most stationary tasks.)
func (e *Engine) preMax(lim int) float64 {
	if e.pmaxN < lim {
		return e.preMaxSlow(lim)
	}
	if lim <= 0 {
		return negInf
	}
	return e.pmax[lim-1]
}

// negInf hoists math.Inf(-1) so preMax stays within the inlining budget.
var negInf = math.Inf(-1)

// preMaxSlow extends the prefix-max watermark up to lim (> pmaxN ≥ 0 by
// the fast-path guard). Split out of preMax so the watermark-already-
// valid fast path inlines at call sites.
func (e *Engine) preMaxSlow(lim int) float64 {
	mt := negInf
	if e.pmaxN > 0 {
		mt = e.pmax[e.pmaxN-1]
	}
	for i := e.pmaxN; i < lim; i++ {
		if th := e.dirtyTheta[i]; th > mt {
			mt = th
		}
		e.pmax[i] = mt
	}
	e.pmaxN = lim
	return e.pmax[lim-1]
}

// firstDirtyGE returns the first dirty-set index below lim whose cached
// threshold is at least u. Prefix maxima are non-decreasing and the
// first index where the prefix max reaches u is exactly the first index
// where a threshold does, so this is a binary search over pmax instead
// of a linear threshold scan. The caller must have just observed
// preMax(lim) ≥ u, which both validates pmax[:lim] and guarantees a hit.
func (e *Engine) firstDirtyGE(u float64, lim int) int {
	lo, hi := 0, lim-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.pmax[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (e *Engine) journalAssign(id int32) {
	e.jAssigns = append(e.jAssigns, assignSnap{id: id, mach: e.assign[id]})
}

// recomputePos refreshes pos (task id → placement position) for
// sorted[from:]; every edit of sorted runs through here with from at or
// before the first changed position.
func (e *Engine) recomputePos(from int) {
	pos, sorted := e.pos, e.sorted
	for i := from; i < len(sorted); i++ {
		pos[sorted[i]] = int32(i)
	}
}

// replayFrom re-runs first-fit for sorted[k:] after a structural edit at
// position k, returning the id of the first unplaceable task or -1 on
// success. The prefix sorted[:k] is untouched by construction, so only
// the suffix can change — and most of it provably cannot:
//
//   - A suffix task still sitting on an untouched machine whose scan
//     position precedes every dirtied machine keeps its placement: the
//     machines it was rejected by and the machine that accepted it are
//     all in states identical to the previous run at that point.
//   - Otherwise, untouched machines that rejected the task before
//     still reject it (same state, same query), so only dirtied
//     machines before its old position plus everything from its old
//     position onward need re-testing; untouched machines are tested
//     against their historical prefix folds.
//
// The walk is dense — every suffix position is examined — because the
// classification needs no auxiliary marking: a task whose machine is
// dirty this epoch is pending re-placement (makeDirty truncated it), a
// task with no machine is a fresh insert, and anything else is a
// stationary candidate dismissed in O(1) when its machine precedes every
// dirtied one. Examining a position that turns out inert is always
// semantics-preserving; only placements change state.
//
// The dominant shape of a cascade is a run: consecutive truncated tasks
// re-folding onto the same dirtied machine, with every earlier dirtied
// machine too full to poach them. The run fast path fuses that case —
// one threshold comparison against the frozen prefix-max of earlier
// dirtied thresholds (their state cannot change while the run only
// appends to its own machine), the exact admission predicate on locally
// carried aggregates, and the fold append. No journaling (the
// assignment is unchanged), no threshold refresh (flushed once when the
// run breaks). Anything that falls out of the pattern — a poachable
// task, a rejection, another machine's task — flushes the run and takes
// the general path, which re-derives the decision from scratch, so
// decisions are byte-identical to the plain linear loop.
//
// Machines are journaled and truncated the first time the replay
// actually changes them, which both bounds the work and provides the
// undo log for rollback.
func (e *Engine) replayFrom(k int) int {
	m := len(e.machIdx)
	n := len(e.sorted)
	sorted, assign, utils := e.sorted, e.assign, e.utils
	kind := e.kind
	visited := 0

	// The edited task of an opUpdate must never ride a fast path: its
	// utilization changed, so its previous placement proves nothing.
	updID := int32(-1)
	if e.ed.op == opUpdate {
		updID = int32(e.ed.id)
	}

	// Active run: truncated tasks re-folding onto machine runF (-2 when
	// none; -1 would collide with a fresh task's unassigned machine).
	// Run fusion is disabled for admDBF — the fused inner loop appends
	// folds without maintaining the demand envelope, and a DBF admission
	// is not a pure fold over the carried locals anyway — so runF stays
	// -2 and every placement takes the general path.
	runF := -2
	fuse := kind != admDBF
	var mcF *mach
	var sF, loadF, prodF, preMaxF float64

	for i := k; i < n; i++ {
		id := sorted[i]
		old := int(assign[id])
		if old == runF && id != updID {
			// Fused inner loop: consume the whole run of consecutive
			// truncated tasks re-folding onto runF with the fold slice
			// headers held in locals, and write them back before anything
			// else can observe the machine.
			plF, cumF, cpF := mcF.placed, mcF.cum, mcF.cumProd
			for {
				u := utils[id]
				if u <= preMaxF { // an earlier dirtied machine may take it
					break
				}
				ok := false
				var newLoad, newProd float64
				switch kind {
				case admEDF:
					newLoad = loadF + u
					ok = newLoad <= sF
				case admLL:
					newLoad = loadF + u
					ok = newLoad <= sched.LiuLaylandBound(len(plF)+1)*sF
				default: // admHyperbolic
					newProd = prodF * (u/sF + 1)
					newLoad = loadF + u
					ok = newProd <= 2
				}
				if !ok {
					break
				}
				plF = append(plF, id)
				cumF = append(cumF, newLoad)
				if kind == admHyperbolic {
					cpF = append(cpF, newProd)
				}
				loadF, prodF = newLoad, newProd
				visited++
				i++
				if i >= n {
					break
				}
				id = sorted[i]
				old = int(assign[id])
				if old != runF || id == updID {
					break
				}
			}
			mcF.placed, mcF.cum, mcF.cumProd = plF, cumF, cpF
			if i >= n {
				break
			}
			if old == runF && id != updID {
				// The run machine (or an earlier dirtied one) now answers
				// differently for id: the run is over, re-derive below.
				e.flushRun(runF)
				runF = -2
			}
		}
		u := utils[id]
		if old >= 0 && !e.dirtyAt(old) {
			oldP := e.machPos[old]
			if oldP < e.minDirty {
				continue // no machine it ever saw has changed
			}
			moved := -1
			if diLim := e.dirtyBefore(oldP); diLim > 0 && u <= e.preMax(diLim) {
				for di := e.firstDirtyGE(u, diLim); di < diLim; di++ {
					if u <= e.dirtyTheta[di] {
						if j := e.machIdx[e.dirtyPos[di]]; e.fitsAgg(j, id) {
							moved = j
							break
						}
					}
				}
			}
			if moved < 0 {
				continue // stays exactly where it was
			}
			visited++
			if runF >= 0 {
				// makeDirty below may register a machine ahead of the run
				// machine in scan order; the frozen preMaxF would not cover
				// it, so the run cannot survive this placement.
				e.flushRun(runF)
			}
			e.makeDirty(old, i) // drops id (and later entries) from old
			e.journalAssign(id)
			e.assign[id] = int32(moved)
			e.place(moved, id)
			if fuse {
				runF = moved
				mcF = &e.machs[moved]
				sF = e.speeds[moved]
				loadF = mcF.load()
				prodF = mcF.prod()
				preMaxF = e.preMax(e.dirtyIdx[moved])
			}
			continue
		}
		visited++
		// Fresh task (old == -1) or its machine was truncated: full
		// first-fit scan, skipping untouched machines its previous run
		// already rejected. The skip is void for the edited task itself —
		// its utilization changed, so old rejections prove nothing — and
		// for a task that was never placed. Below the skip horizon only
		// dirtied machines can matter, so only they are probed there —
		// and usually not even they: a truncated task's machine sits at a
		// known dirty slot, every dirtied machine before it occupies the
		// slots below, and one preMax comparison rules them all out.
		skipBefore := -1
		diLim := 0
		if old >= 0 && id != updID {
			skipBefore = e.machPos[old]
			if e.dirtyAt(old) {
				diLim = e.dirtyIdx[old]
			} else {
				diLim = e.dirtyBefore(skipBefore)
			}
		}
		chosen := -1
		start := 0
		if skipBefore > 0 {
			if diLim > 0 && u <= e.preMax(diLim) {
				for di := e.firstDirtyGE(u, diLim); di < diLim; di++ {
					if u <= e.dirtyTheta[di] {
						if j := e.machIdx[e.dirtyPos[di]]; e.fitsAgg(j, id) {
							chosen = j
							break
						}
					}
				}
			}
			start = skipBefore
		}
		if chosen < 0 {
			thetaPos := e.thetaPos
			for pp := start; pp < m; pp++ {
				if th := thetaPos[pp]; th == th { // dirtied machine at pp
					if u <= th {
						if j := e.machIdx[pp]; e.fitsAgg(j, id) {
							chosen = j
							break
						}
					}
				} else if j := e.machIdx[pp]; e.fitsAt(j, id, i) {
					chosen = j
					break
				}
			}
		}
		if chosen < 0 {
			e.stats.Visited += visited
			return int(id)
		}
		if !e.dirtyAt(chosen) {
			e.makeDirty(chosen, i)
		}
		if int(e.assign[id]) != chosen {
			e.journalAssign(id)
			e.assign[id] = int32(chosen)
		}
		e.place(chosen, id)
		// Seed the refill run: subsequent tasks truncated off this (now
		// dirtied) machine can fuse until the pattern breaks. preMaxF is
		// computed after any makeDirty above, so it covers every dirtied
		// machine currently ahead of the run machine.
		if runF >= 0 && runF != chosen {
			e.flushRun(runF)
		}
		if fuse {
			runF = chosen
			mcF = &e.machs[chosen]
			sF = e.speeds[chosen]
			loadF = mcF.load()
			prodF = mcF.prod()
			preMaxF = e.preMax(e.dirtyIdx[chosen])
		}
	}
	if runF >= 0 {
		e.flushRun(runF)
	}
	e.stats.Visited += visited
	return -1
}

// flushRun writes a broken run's deferred threshold refresh: the run
// machine's cached theta and the prefix-max watermark, exactly as the
// final fused place would have left them.
func (e *Engine) flushRun(f int) {
	di := e.dirtyIdx[f]
	th := e.nextCap(f)
	e.dirtyTheta[di] = th
	e.thetaPos[e.machPos[f]] = th
	if di < e.pmaxN {
		e.pmaxN = di
	}
}

// dirtyBefore returns how many dirtied machines occupy scan positions
// strictly before pp (dirtyPos is ascending; inlined binary search).
func (e *Engine) dirtyBefore(pp int) int {
	lo, hi := 0, len(e.dirtyPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.dirtyPos[mid] < pp {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// failResult builds the partition.Result a fresh Solve over the
// surviving multiset reports when task failID cannot be placed: the
// prefix before the failure keeps its (byte-identical) assignment, the
// failing task and everything after it is unplaced, and per-machine
// loads are the folds as of the failure point. exclude ≥ 0 compacts
// task ids for a removal in flight (fresh solves of the shrunken set
// number tasks without it). The result is freshly allocated.
func (e *Engine) failResult(failID, exclude int) partition.Result {
	at := int(e.pos[failID])
	n := len(e.tasks)
	if exclude >= 0 {
		n--
	}
	as := make([]int, n)
	for id := 0; id < len(e.tasks); id++ {
		if id == exclude {
			continue
		}
		nid := id
		if exclude >= 0 && id > exclude {
			nid--
		}
		if id != failID && int(e.pos[id]) < at {
			as[nid] = int(e.assign[id])
		} else {
			as[nid] = -1
		}
	}
	loads := make([]float64, len(e.p))
	for j := range e.machs {
		if e.dirtyAt(j) {
			loads[j] = e.machs[j].load()
		} else if x := e.prefixLen(j, at); x > 0 {
			loads[j] = e.machs[j].cum[x-1]
		}
	}
	failed := failID
	if exclude >= 0 && failID > exclude {
		failed--
	}
	return partition.Result{Assignment: as, FailedTask: failed, Loads: loads, Alpha: e.alpha}
}

// rollback restores the pre-mutation state from the undo journal. The
// abandoned working buffers of every journaled machine return to the
// arena; checkpoints were never touched mid-mutation, so they are
// exact for the restored state as-is.
func (e *Engine) rollback() {
	refresh := e.edTreeOK && !e.treeOK
	for i := range e.jMachs {
		j := e.jMachs[i].j
		e.recycleMach(e.machs[j])
		e.machs[j] = e.jMachs[i].mc
		e.jMachs[i] = machSnap{}
		if refresh {
			e.tree.set(e.machPos[j], e.nextCap(j))
		}
	}
	if refresh {
		e.treeOK = true
	}
	e.jMachs = e.jMachs[:0]
	for i := len(e.jAssigns) - 1; i >= 0; i-- {
		e.assign[e.jAssigns[i].id] = e.jAssigns[i].mach
	}
	e.jAssigns = e.jAssigns[:0]
	switch e.ed.op {
	case opInsert:
		k := int(e.pos[e.ed.id])
		e.sorted = append(e.sorted[:k], e.sorted[k+1:]...)
		e.tasks = e.tasks[:len(e.tasks)-1]
		e.utils = e.utils[:len(e.utils)-1]
		e.assign = e.assign[:len(e.assign)-1]
		e.assignPub = e.assignPub[:len(e.assignPub)-1]
		e.pos = e.pos[:len(e.pos)-1]
		if e.kind == admDBF {
			e.dl = e.dl[:len(e.dl)-1]
			e.dens = e.dens[:len(e.dens)-1]
		}
		e.recomputePos(k)
	case opRemove:
		e.insertSorted(int32(e.ed.id), e.ed.kOld)
		e.recomputePos(e.ed.kOld)
	case opUpdate:
		e.tasks[e.ed.id].WCET = e.ed.oldWCET
		e.utils[e.ed.id] = e.ed.oldUtil
		if e.kind == admDBF {
			e.dens[e.ed.id] = e.ed.oldDens
		}
		cur := int(e.pos[e.ed.id])
		e.sorted = append(e.sorted[:cur], e.sorted[cur+1:]...)
		e.insertSorted(int32(e.ed.id), e.ed.kOld)
		if cur < e.ed.kOld {
			e.recomputePos(cur)
		} else {
			e.recomputePos(e.ed.kOld)
		}
	case opBatchInsert:
		n0 := int32(e.ed.id)
		w := 0
		for _, id := range e.sorted {
			if id < n0 {
				e.sorted[w] = id
				w++
			}
		}
		e.sorted = e.sorted[:w]
		e.tasks = e.tasks[:e.ed.id]
		e.utils = e.utils[:e.ed.id]
		e.assign = e.assign[:e.ed.id]
		e.assignPub = e.assignPub[:e.ed.id]
		e.pos = e.pos[:e.ed.id]
		if e.kind == admDBF {
			e.dl = e.dl[:e.ed.id]
			e.dens = e.dens[:e.ed.id]
		}
		e.recomputePos(e.ed.kOld)
	}
	e.ed = edit{}
}

func (e *Engine) insertSorted(id int32, k int) {
	e.sorted = append(e.sorted, 0)
	copy(e.sorted[k+1:], e.sorted[k:])
	e.sorted[k] = id
}

// Admit offers one more task to the engine. On acceptance the task joins
// the set with the id Len()-1 had before the call (arrival ids are
// stable append order) and res is the engine's new state; on rejection
// the engine is unchanged and res is the failed fresh-solve witness over
// the candidate set. res aliases no engine scratch on rejection; on
// acceptance it follows Result's aliasing rules.
func (e *Engine) Admit(t task.Task) (res partition.Result, admitted bool, err error) {
	if err := t.Validate(); err != nil {
		return partition.Result{}, false, fmt.Errorf("online: %w", err)
	}
	// On a constrained-deadline engine an implicit task is D = P.
	e.enterOp()
	res, admitted, err = e.admitOne(t, t.Period)
	if e.exitOp(admitted && err == nil) {
		res = e.Result() // re-snapshot past the applied repartition
	}
	return res, admitted, err
}

// admitOne is the shared single-admit body; the caller has validated t
// (and, for admDBF, the relative deadline d — ignored otherwise).
func (e *Engine) admitOne(t task.Task, d int64) (res partition.Result, admitted bool, err error) {
	id := int32(len(e.tasks))
	e.tasks = append(e.tasks, t)
	e.utils = append(e.utils, t.Utilization())
	e.assign = append(e.assign, -1)
	e.assignPub = append(e.assignPub, -1)
	if e.kind == admDBF {
		e.dl = append(e.dl, d)
		e.dens = append(e.dens, float64(t.WCET)/float64(d))
	}

	k := len(e.sorted)
	if e.ordered {
		k = sort.Search(len(e.sorted), func(i int) bool { return e.less(id, e.sorted[i]) })
	}
	e.pos = append(e.pos, 0)
	e.insertSorted(id, k)
	e.recomputePos(k)
	e.begin(edit{op: opInsert, id: int(id)})

	if k == len(e.sorted)-1 {
		// End of the placement order: every machine's current aggregate
		// is its state at this point, so the policy selects against live
		// state — for the first-fit policies a single O(log m) capacity
		// query (plus exact verification).
		e.stats = OpStats{Tail: true, ReplayFrom: -1, BatchSize: 1}
		chosen := e.selectPlace(id)
		if perr := e.takeProbeErr(); perr != nil {
			e.rollback()
			return partition.Result{}, false, fmt.Errorf("online: %w", perr)
		}
		if chosen < 0 {
			res = e.failResult(int(id), -1)
			e.rollback()
			return res, false, nil
		}
		e.journalAssign(id)
		e.assign[id] = int32(chosen)
		e.assignPub[id] = chosen
		e.place(chosen, id)
		e.commit(k)
		return e.Result(), true, nil
	}
	e.stats = OpStats{ReplayFrom: k, BatchSize: 1}
	failID := e.replayFrom(k)
	if perr := e.takeProbeErr(); perr != nil {
		e.rollback()
		return partition.Result{}, false, fmt.Errorf("online: %w", perr)
	}
	if failID >= 0 {
		res = e.failResult(failID, -1)
		e.rollback()
		return res, false, nil
	}
	e.commit(k)
	return e.Result(), true, nil
}

// Remove deletes task id (later ids shift down by one, mirroring the
// caller's slice semantics). Under the ordered policy the remainder is
// re-placed exactly as a fresh solve would place it; first-fit is not
// monotone under removals, so the shrunken set can fail — in that case
// the engine rolls back, ok is false, and res is the failed fresh-solve
// witness for the shrunken set. Under local policies removal is local
// (the machine's fold is re-closed over the surviving tasks) and always
// succeeds.
func (e *Engine) Remove(id int) (res partition.Result, ok bool, err error) {
	e.enterOp()
	res, ok, err = e.removeInner(id)
	if e.exitOp(ok && err == nil) {
		res = e.Result() // re-snapshot past the applied repartition
	}
	return res, ok, err
}

func (e *Engine) removeInner(id int) (res partition.Result, ok bool, err error) {
	if id < 0 || id >= len(e.tasks) {
		return partition.Result{}, false, fmt.Errorf("online: Remove task %d out of range [0, %d)", id, len(e.tasks))
	}
	if len(e.tasks) == 1 {
		return partition.Result{}, false, fmt.Errorf("online: cannot remove the last task")
	}
	if !e.ordered {
		// Local removal: close the machine's fold over the survivors.
		// Every admission aggregate shrinks, so feasibility is preserved
		// and the operation always commits. sorted is the identity in
		// this mode, so the order edit is a plain splice too.
		e.begin(edit{op: opNone})
		e.stats = OpStats{Tail: true, ReplayFrom: -1}
		e.sorted = append(e.sorted[:id], e.sorted[id+1:]...)
		e.recomputePos(id)
		e.splice(int(e.assign[id]), int32(id))
		// Commit before compact: the mirror refresh keys off journaled
		// (pre-renumber) ids, and checkpoints/tree are machine-keyed, so
		// id renumbering cannot invalidate them.
		e.commit(id)
		e.compact(id)
		return e.Result(), true, nil
	}

	o := int(e.assign[id])
	k := int(e.pos[id])
	e.begin(edit{op: opRemove, id: id, kOld: k})
	e.stats = OpStats{ReplayFrom: k}
	e.sorted = append(e.sorted[:k], e.sorted[k+1:]...)
	e.recomputePos(k)
	e.makeDirty(o, k) // drops id and every later entry on its machine
	failID := e.replayFrom(k)
	if perr := e.takeProbeErr(); perr != nil {
		e.rollback()
		return partition.Result{}, false, fmt.Errorf("online: %w", perr)
	}
	if failID >= 0 {
		res = e.failResult(failID, id)
		e.rollback()
		return res, false, nil
	}
	e.commit(k) // before compact; see the ArrivalOrder branch
	e.compact(id)
	return e.Result(), true, nil
}

// UpdateWCET changes task id's worst-case execution time. Under the
// ordered policy the task is re-ranked and the affected suffix
// replayed, leaving the engine byte-identical to a fresh solve over the
// updated multiset; on infeasibility the change is rolled back (ok
// false) and res is the failed fresh-solve witness for the updated set.
// Under local policies the task is re-admitted against current
// aggregates via the policy's Select; if no machine fits it the change
// rolls back likewise.
func (e *Engine) UpdateWCET(id int, wcet int64) (res partition.Result, ok bool, err error) {
	e.enterOp()
	res, ok, err = e.updateWCETInner(id, wcet)
	if e.exitOp(ok && err == nil) {
		res = e.Result() // re-snapshot past the applied repartition
	}
	return res, ok, err
}

func (e *Engine) updateWCETInner(id int, wcet int64) (res partition.Result, ok bool, err error) {
	if id < 0 || id >= len(e.tasks) {
		return partition.Result{}, false, fmt.Errorf("online: UpdateWCET task %d out of range [0, %d)", id, len(e.tasks))
	}
	if wcet <= 0 {
		return partition.Result{}, false, fmt.Errorf("online: UpdateWCET wcet %d must be positive", wcet)
	}
	if e.kind == admDBF && wcet > e.dl[id] {
		return partition.Result{}, false, fmt.Errorf("online: UpdateWCET wcet %d exceeds deadline %d (constrained model)", wcet, e.dl[id])
	}
	if wcet == e.tasks[id].WCET {
		return e.Result(), true, nil
	}
	o := e.assign[id]
	if !e.ordered {
		// Local re-admission: splice the task out of its machine's fold,
		// then re-select against current aggregates via the policy. The
		// placement order (arrival order) is untouched either way.
		e.begin(edit{op: opNone})
		e.stats = OpStats{Tail: true, ReplayFrom: -1}
		oldWCET, oldUtil := e.tasks[id].WCET, e.utils[id]
		var oldDens float64
		e.tasks[id].WCET = wcet
		e.utils[id] = e.tasks[id].Utilization()
		if e.kind == admDBF {
			oldDens = e.dens[id]
			e.dens[id] = float64(wcet) / float64(e.dl[id])
		}
		undo := func() {
			e.tasks[id].WCET = oldWCET
			e.utils[id] = oldUtil
			if e.kind == admDBF {
				e.dens[id] = oldDens
			}
		}
		e.splice(int(o), int32(id))
		e.journalAssign(int32(id))
		chosen := e.selectPlace(int32(id))
		if perr := e.takeProbeErr(); perr != nil {
			undo()
			e.rollback()
			return partition.Result{}, false, fmt.Errorf("online: %w", perr)
		}
		if chosen < 0 {
			res = e.arrivalFailResult(id)
			undo()
			e.rollback()
			return res, false, nil
		}
		e.assign[id] = int32(chosen)
		e.place(chosen, int32(id))
		e.commit(0)
		return e.Result(), true, nil
	}

	kOld := int(e.pos[id])
	ed := edit{op: opUpdate, id: id, kOld: kOld, oldWCET: e.tasks[id].WCET, oldUtil: e.utils[id]}
	if e.kind == admDBF {
		ed.oldDens = e.dens[id]
	}
	e.begin(ed)
	e.tasks[id].WCET = wcet
	e.utils[id] = e.tasks[id].Utilization()
	if e.kind == admDBF {
		e.dens[id] = float64(wcet) / float64(e.dl[id])
	}

	e.sorted = append(e.sorted[:kOld], e.sorted[kOld+1:]...)
	kNew := sort.Search(len(e.sorted), func(i int) bool { return e.less(int32(id), e.sorted[i]) })
	e.insertSorted(int32(id), kNew)
	k := kOld
	if kNew < k {
		k = kNew
	}
	e.stats = OpStats{ReplayFrom: k}
	e.recomputePos(k)
	e.makeDirty(int(o), k)
	failID := e.replayFrom(k)
	if perr := e.takeProbeErr(); perr != nil {
		e.rollback()
		return partition.Result{}, false, fmt.Errorf("online: %w", perr)
	}
	if failID >= 0 {
		res = e.failResult(failID, -1)
		e.rollback()
		return res, false, nil
	}
	e.commit(k)
	return e.Result(), true, nil
}

// splice removes task id from machine j's fold locally, journaling j and
// re-closing the cumulative folds over the surviving tasks (ArrivalOrder
// only; sorted-order removals go through the replay).
func (e *Engine) splice(j int, id int32) {
	mc := &e.machs[j]
	e.jMachs = append(e.jMachs, machSnap{j: j, mc: *mc})
	x := -1
	for i, pid := range mc.placed {
		if pid == id {
			x = i
			break
		}
	}
	nm := e.grabMach()
	nm.placed = append(nm.placed, mc.placed[:x]...)
	nm.cum = append(nm.cum, mc.cum[:x]...)
	if e.kind == admHyperbolic {
		nm.cumProd = append(nm.cumProd, mc.cumProd[:x]...)
	}
	if e.kind == admDBF {
		nm.cumDens = append(nm.cumDens, mc.cumDens[:x]...)
		nm.cumNum = append(nm.cumNum, mc.cumNum[:x]...)
		nm.cumInvP = append(nm.cumInvP, mc.cumInvP[:x]...)
		nm.cumMaxD = append(nm.cumMaxD, mc.cumMaxD[:x]...)
	}
	*mc = nm
	if e.kind == admDBF {
		e.rebuildEnvDBF(j)
	}
	for _, pid := range e.jMachs[len(e.jMachs)-1].mc.placed[x+1:] {
		e.place(j, pid)
	}
	e.noteDirty(j)
	e.treeOK = false
}

// arrivalFailResult is the rejection witness for a local (ArrivalOrder)
// mutation: every other task keeps its current machine, the failing task
// is unplaced, loads are the current folds without it.
func (e *Engine) arrivalFailResult(failID int) partition.Result {
	as := make([]int, len(e.tasks))
	for id := range as {
		as[id] = int(e.assign[id])
	}
	as[failID] = -1
	loads := make([]float64, len(e.p))
	for j := range e.machs {
		loads[j] = e.machs[j].load()
	}
	return partition.Result{Assignment: as, FailedTask: failID, Loads: loads, Alpha: e.alpha}
}

// compact renumbers task ids after a successful removal of r: ids above
// r shift down by one everywhere (tasks, folds, order, assignment).
func (e *Engine) compact(r int) {
	n := len(e.tasks)
	copy(e.tasks[r:], e.tasks[r+1:])
	e.tasks = e.tasks[:n-1]
	copy(e.utils[r:], e.utils[r+1:])
	e.utils = e.utils[:n-1]
	copy(e.assign[r:], e.assign[r+1:])
	e.assign = e.assign[:n-1]
	copy(e.assignPub[r:], e.assignPub[r+1:])
	e.assignPub = e.assignPub[:n-1]
	copy(e.pos[r:], e.pos[r+1:])
	e.pos = e.pos[:n-1]
	if e.kind == admDBF {
		copy(e.dl[r:], e.dl[r+1:])
		e.dl = e.dl[:n-1]
		copy(e.dens[r:], e.dens[r+1:])
		e.dens = e.dens[:n-1]
	}
	if r == n-1 {
		return // removed the largest id; nothing to renumber
	}
	r32 := int32(r)
	for i, id := range e.sorted {
		if id > r32 {
			e.sorted[i] = id - 1
		}
	}
	for j := range e.machs {
		for x, id := range e.machs[j].placed {
			if id > r32 {
				e.machs[j].placed[x] = id - 1
			}
		}
	}
}

// Result snapshots the engine's current (feasible) state. Assignment and
// Loads alias engine-owned buffers and are only valid until the next
// mutation; use Result.Clone to retain one.
func (e *Engine) Result() partition.Result {
	for j := range e.machs {
		e.loadsBuf[j] = e.machs[j].load()
	}
	return partition.Result{
		Feasible:   true,
		Assignment: e.assignPub,
		FailedTask: -1,
		Loads:      e.loadsBuf,
		Alpha:      e.alpha,
	}
}

// Len returns the number of resident tasks.
func (e *Engine) Len() int { return len(e.tasks) }

// Alpha returns the fixed augmentation every decision is made at.
func (e *Engine) Alpha() float64 { return e.alpha }

// OrderMode returns the engine's placement order.
//
// Deprecated: orders generalized to policies; use PlacementPolicy.
// Every local policy reports ArrivalOrder.
func (e *Engine) OrderMode() Order {
	if e.ordered {
		return SortedOrder
	}
	return ArrivalOrder
}

// PlacementPolicy returns the engine's placement policy.
func (e *Engine) PlacementPolicy() Policy { return e.pol }

// Tasks returns a copy of the resident task multiset in id order.
func (e *Engine) Tasks() task.Set { return e.tasks.Clone() }

// SelfCheck verifies the engine's internal invariants: the placement
// order is a valid permutation sorted by the order relation, positions
// invert it, every task sits on exactly one machine matching its
// assignment, placed lists are position-ordered (SortedOrder), every
// cumulative fold re-derives bit-identically, and every machine's final
// state satisfies its admission bound. It is O(n log n + n·m) and meant
// for tests and debugging, not the hot path.
func (e *Engine) SelfCheck() error {
	n := len(e.tasks)
	if len(e.utils) != n || len(e.assign) != n || len(e.pos) != n || len(e.sorted) != n {
		return fmt.Errorf("online: inconsistent lengths")
	}
	seen := make([]bool, n)
	for i, id := range e.sorted {
		if id < 0 || int(id) >= n || seen[id] {
			return fmt.Errorf("online: sorted is not a permutation at %d", i)
		}
		seen[id] = true
		if int(e.pos[id]) != i {
			return fmt.Errorf("online: pos[%d] = %d, want %d", id, e.pos[id], i)
		}
		if i > 0 && !e.less(e.sorted[i-1], id) {
			return fmt.Errorf("online: sorted out of order at %d", i)
		}
	}
	placedOn := make([]int, n)
	for i := range placedOn {
		placedOn[i] = -1
	}
	for j := range e.machs {
		mc := &e.machs[j]
		if len(mc.cum) != len(mc.placed) {
			return fmt.Errorf("online: machine %d fold length mismatch", j)
		}
		load, prod := 0.0, 1.0
		for x, id := range mc.placed {
			if id < 0 || int(id) >= n || placedOn[id] >= 0 {
				return fmt.Errorf("online: task %d multiply placed", id)
			}
			placedOn[id] = j
			if e.ordered && x > 0 && e.pos[mc.placed[x-1]] >= e.pos[id] {
				return fmt.Errorf("online: machine %d placed list out of position order at %d", j, x)
			}
			load += e.utils[id]
			if math.Float64bits(load) != math.Float64bits(mc.cum[x]) {
				return fmt.Errorf("online: machine %d cum[%d] = %v, refold %v", j, x, mc.cum[x], load)
			}
			if e.kind == admHyperbolic {
				prod *= e.utils[id]/e.speeds[j] + 1
				if math.Float64bits(prod) != math.Float64bits(mc.cumProd[x]) {
					return fmt.Errorf("online: machine %d cumProd[%d] mismatch", j, x)
				}
			}
		}
		switch e.kind {
		case admEDF:
			if mc.load() > e.speeds[j] {
				return fmt.Errorf("online: machine %d overloaded: %v > %v", j, mc.load(), e.speeds[j])
			}
		case admLL:
			if len(mc.placed) > 0 && mc.load() > sched.LiuLaylandBound(len(mc.placed))*e.speeds[j] {
				return fmt.Errorf("online: machine %d violates Liu–Layland", j)
			}
		case admHyperbolic:
			if mc.prod() > 2 {
				return fmt.Errorf("online: machine %d violates hyperbolic bound", j)
			}
		}
	}
	for id := 0; id < n; id++ {
		if placedOn[id] != int(e.assign[id]) {
			return fmt.Errorf("online: task %d assigned to %d but placed on %d", id, e.assign[id], placedOn[id])
		}
		if e.assignPub[id] != int(e.assign[id]) {
			return fmt.Errorf("online: task %d assignPub %d out of sync with assign %d", id, e.assignPub[id], e.assign[id])
		}
	}
	if len(e.assignPub) != n {
		return fmt.Errorf("online: assignPub length %d, want %d", len(e.assignPub), n)
	}
	if e.cps != nil {
		// Checkpoints must be exact between mutations: entry c holds every
		// machine's placement count strictly before position (c+1)·stride.
		if want := n / e.cps.stride; len(e.cps.plen) != want {
			return fmt.Errorf("online: %d checkpoints, want %d", len(e.cps.plen), want)
		}
		cnt := make([]int32, len(e.machs))
		for i := 0; i <= n; i++ {
			if i > 0 && i%e.cps.stride == 0 {
				row := e.cps.plen[i/e.cps.stride-1]
				for j := range cnt {
					if row[j] != cnt[j] {
						return fmt.Errorf("online: checkpoint at %d machine %d = %d, recount %d", i, j, row[j], cnt[j])
					}
				}
			}
			if i == n {
				break
			}
			cnt[e.assign[e.sorted[i]]]++
		}
	}
	if e.kind == admDBF {
		if err := e.selfCheckDBF(); err != nil {
			return err
		}
	}
	return nil
}
