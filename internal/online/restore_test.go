package online

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// sameFloatBits compares float slices bitwise — restore must reproduce
// the exact fold floats, not merely close ones.
func sameFloatBits(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %x, want %x (values %v vs %v)",
				ctx, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// sameEngineState asserts the restored engine reproduced the original
// bit for bit: placement order, positions, assignments, and every
// per-machine fold sequence (caches like the capacity tree and the
// envelope generation stamps are excluded — they are lazily derived and
// never affect verdicts).
func sameEngineState(t *testing.T, ctx string, got, want *Engine) {
	t.Helper()
	if !reflect.DeepEqual(got.sorted, want.sorted) {
		t.Fatalf("%s: sorted = %v, want %v", ctx, got.sorted, want.sorted)
	}
	if !reflect.DeepEqual(got.pos, want.pos) {
		t.Fatalf("%s: pos mismatch", ctx)
	}
	if !reflect.DeepEqual(got.assign, want.assign) {
		t.Fatalf("%s: assign = %v, want %v", ctx, got.assign, want.assign)
	}
	if !reflect.DeepEqual(got.assignPub, want.assignPub) {
		t.Fatalf("%s: assignPub mismatch", ctx)
	}
	if !reflect.DeepEqual(got.tasks, want.tasks) {
		t.Fatalf("%s: tasks mismatch", ctx)
	}
	sameFloatBits(t, ctx+": utils", got.utils, want.utils)
	if len(got.machs) != len(want.machs) {
		t.Fatalf("%s: %d machines, want %d", ctx, len(got.machs), len(want.machs))
	}
	for j := range got.machs {
		g, w := &got.machs[j], &want.machs[j]
		if len(g.placed) != len(w.placed) {
			t.Fatalf("%s: machine %d placed %v, want %v", ctx, j, g.placed, w.placed)
		}
		for x := range g.placed {
			if g.placed[x] != w.placed[x] {
				t.Fatalf("%s: machine %d placed = %v, want %v", ctx, j, g.placed, w.placed)
			}
		}
		sameFloatBits(t, ctx+": cum", g.cum, w.cum)
		sameFloatBits(t, ctx+": cumProd", g.cumProd, w.cumProd)
		sameFloatBits(t, ctx+": cumDens", g.cumDens, w.cumDens)
		sameFloatBits(t, ctx+": cumNum", g.cumNum, w.cumNum)
		sameFloatBits(t, ctx+": cumInvP", g.cumInvP, w.cumInvP)
		if len(g.cumMaxD) != len(w.cumMaxD) {
			t.Fatalf("%s: machine %d cumMaxD length %d, want %d", ctx, j, len(g.cumMaxD), len(w.cumMaxD))
		}
		for x := range g.cumMaxD {
			if g.cumMaxD[x] != w.cumMaxD[x] {
				t.Fatalf("%s: machine %d cumMaxD mismatch at %d", ctx, j, x)
			}
		}
	}
	if !reflect.DeepEqual(got.dl, want.dl) || !reflect.DeepEqual(got.dens, want.dens) {
		t.Fatalf("%s: constrained per-task state mismatch", ctx)
	}
}

// TestRestoreArrivalDifferential drives an ArrivalOrder engine through
// random mixed ops — the history-dependent mode, where splices and
// tail re-admissions make placement a function of the whole op sequence
// — and periodically rebuilds it from Tasks() + PlacedLists(). The
// restored engine must match bit for bit AND answer the next admission
// probe identically (same verdict, witness, and load bits).
func TestRestoreArrivalDifferential(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 977))
			for inst := 0; inst < 6; inst++ {
				p := randPlatform(rng)
				e, err := New(task.Set{{WCET: 1, Period: 1 << 20}}, p, adm, 1, ArrivalOrder)
				if err != nil {
					t.Fatal(err)
				}
				for op := 0; op < 120; op++ {
					switch k := rng.Intn(10); {
					case k < 5:
						if _, _, err := e.Admit(randTask(rng)); err != nil {
							t.Fatal(err)
						}
					case k < 7 && e.Len() > 1:
						if _, _, err := e.Remove(rng.Intn(e.Len())); err != nil {
							t.Fatal(err)
						}
					default:
						id := rng.Intn(e.Len())
						if _, _, err := e.UpdateWCET(id, 1+rng.Int63n(e.Tasks()[id].Period)); err != nil {
							t.Fatal(err)
						}
					}
					if op%20 != 19 {
						continue
					}
					r, err := Restore(e.Tasks(), p, adm, 1, ArrivalOrder, e.PlacedLists())
					if err != nil {
						t.Fatalf("inst %d op %d: Restore: %v", inst, op, err)
					}
					sameEngineState(t, "restore", r, e)
					if err := r.SelfCheck(); err != nil {
						t.Fatalf("inst %d op %d: restored SelfCheck: %v", inst, op, err)
					}
					probe := randTask(rng)
					resE, okE, errE := e.Admit(probe)
					resR, okR, errR := r.Admit(probe)
					if errE != nil || errR != nil || okE != okR {
						t.Fatalf("inst %d op %d: probe diverged: (%v,%v) vs (%v,%v)", inst, op, okE, errE, okR, errR)
					}
					sameResult(t, "probe", resR.Clone(), resE.Clone())
				}
			}
		})
	}
}

// TestRestoreSortedMatchesLive confirms the SortedOrder delegate: after
// arbitrary committed mutations the live engine equals a fresh solve
// over its multiset, so Restore (which defers to New) reproduces it.
func TestRestoreSortedMatchesLive(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 1409))
			p := randPlatform(rng)
			e, err := New(task.Set{{WCET: 1, Period: 1 << 20}}, p, adm, 1, SortedOrder)
			if err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 80; op++ {
				switch k := rng.Intn(10); {
				case k < 6:
					if _, _, err := e.Admit(randTask(rng)); err != nil {
						t.Fatal(err)
					}
				case k < 8 && e.Len() > 1:
					if _, _, err := e.Remove(rng.Intn(e.Len())); err != nil {
						t.Fatal(err)
					}
				default:
					id := rng.Intn(e.Len())
					if _, _, err := e.UpdateWCET(id, 1+rng.Int63n(e.Tasks()[id].Period)); err != nil {
						t.Fatal(err)
					}
				}
			}
			r, err := Restore(e.Tasks(), p, adm, 1, SortedOrder, e.PlacedLists())
			if err != nil {
				t.Fatal(err)
			}
			sameEngineState(t, "restore", r, e)
		})
	}
}

// TestRestoreConstrainedArrival is the ArrivalOrder differential for
// the constrained-deadline (tiered DBF) engine.
func TestRestoreConstrainedArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for inst := 0; inst < 4; inst++ {
		p := randDyadicPlatform(rng)
		e, err := NewConstrained(dbf.Set{{WCET: 1, Deadline: 64, Period: 64}}, p, 1, ArrivalOrder, 4)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 120; op++ {
			switch c := rng.Intn(10); {
			case c < 5:
				if _, _, err := e.AdmitConstrained(randCTask(rng)); err != nil {
					t.Fatalf("op %d: Admit: %v", op, err)
				}
			case c < 7 && e.Len() > 1:
				if _, _, err := e.Remove(rng.Intn(e.Len())); err != nil {
					t.Fatalf("op %d: Remove: %v", op, err)
				}
			default:
				id := rng.Intn(e.Len())
				if _, _, err := e.UpdateWCET(id, 1+rng.Int63n(e.Deadline(id))); err != nil {
					t.Fatalf("op %d: Update: %v", op, err)
				}
			}
			if op%30 != 29 {
				continue
			}
			r, err := RestoreConstrained(e.ConstrainedTasks(), p, 1, ArrivalOrder, e.ApproxK(), e.PlacedLists())
			if err != nil {
				t.Fatalf("inst %d op %d: RestoreConstrained: %v", inst, op, err)
			}
			sameEngineState(t, "restore", r, e)
			if err := r.SelfCheck(); err != nil {
				t.Fatalf("inst %d op %d: restored SelfCheck: %v", inst, op, err)
			}
			probe := randCTask(rng)
			resE, okE, errE := e.AdmitConstrained(probe)
			resR, okR, errR := r.AdmitConstrained(probe)
			if errE != nil || errR != nil || okE != okR {
				t.Fatalf("inst %d op %d: probe diverged: (%v,%v) vs (%v,%v)", inst, op, okE, errE, okR, errR)
			}
			sameResult(t, "probe", resR.Clone(), resE.Clone())
		}
	}
}

// TestRestoreRejectsInconsistentPlacement: restore re-verifies every
// recorded placement with the engine's own admission predicate, so a
// tampered or half-written snapshot is rejected instead of resurrected.
func TestRestoreRejectsInconsistentPlacement(t *testing.T) {
	p := machine.New(1, 1)
	ts := task.Set{{WCET: 3, Period: 5}, {WCET: 3, Period: 5}} // u = 0.6 each
	adm := testAdmissions[0]                                   // EDF

	cases := []struct {
		name   string
		placed [][]int32
	}{
		{"overloaded machine", [][]int32{{0, 1}, {}}},
		{"task placed twice", [][]int32{{0, 0}, {1}}},
		{"task missing", [][]int32{{0}, {}}},
		{"id out of range", [][]int32{{0}, {7}}},
		{"machine count mismatch", [][]int32{{0, 1}}},
		{"nil lists", nil},
	}
	for _, tc := range cases {
		if _, err := Restore(ts, p, adm, 1, ArrivalOrder, tc.placed); err == nil {
			t.Errorf("%s: Restore accepted inconsistent placement", tc.name)
		}
	}

	// The legitimate split restores fine.
	if _, err := Restore(ts, p, adm, 1, ArrivalOrder, [][]int32{{0}, {1}}); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
}
