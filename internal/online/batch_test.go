package online

import (
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// randBatch draws a batch of 1–12 random tasks.
func randBatch(rng *rand.Rand) []task.Task {
	bt := make([]task.Task, 1+rng.Intn(12))
	for i := range bt {
		bt[i] = randTask(rng)
	}
	return bt
}

// TestAdmitBatchDifferential pins the batch tentpole's semantic
// contract: for any batch, the merged-replay AdmitBatch must leave the
// engine byte-identical to a twin engine admitting the same tasks one
// by one with plain Admit — same verdicts, same assignment, same
// bit-exact loads — and hence identical to the fresh sorted solve of
// the surviving multiset.
func TestAdmitBatchDifferential(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 7919))
			for inst := 0; inst < 10; inst++ {
				p := randPlatform(rng)
				cur := task.Set{{WCET: 1, Period: 1 << 20}}
				e, err := New(cur, p, adm, 1, SortedOrder)
				if err != nil {
					t.Fatal(err)
				}
				twin, err := New(cur, p, adm, 1, SortedOrder)
				if err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 25; round++ {
					bt := randBatch(rng)
					res, admitted, err := e.AdmitBatch(bt, BestEffort)
					if err != nil {
						t.Fatalf("inst %d round %d: AdmitBatch: %v", inst, round, err)
					}
					for i, tk := range bt {
						_, ok, err := twin.Admit(tk)
						if err != nil {
							t.Fatalf("inst %d round %d: twin Admit: %v", inst, round, err)
						}
						if ok != admitted[i] {
							t.Fatalf("inst %d round %d task %d: batch verdict %v, sequential %v",
								inst, round, i, admitted[i], ok)
						}
						if ok {
							cur = append(cur, tk)
						}
					}
					sameResult(t, "batch state", e.Result().Clone(), twin.Result().Clone())
					sameResult(t, "batch vs fresh", e.Result().Clone(), freshSorted(t, cur, p, adm, 1))
					if nAdm := countTrue(admitted); nAdm == len(bt) || nAdm > 0 {
						sameResult(t, "batch result", res.Clone(), twin.Result().Clone())
					}
					if err := e.SelfCheck(); err != nil {
						t.Fatalf("inst %d round %d: %v", inst, round, err)
					}
					if !reflect.DeepEqual(e.Tasks(), twin.Tasks()) {
						t.Fatalf("inst %d round %d: task sets diverged", inst, round)
					}
				}
			}
		})
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// TestAdmitBatchAllOrNothing pins the transactional mode: a batch whose
// union with the resident set is feasible is admitted in full; any
// other batch leaves the engine bit-identical to its pre-call state and
// returns the failed fresh-solve witness over the union.
func TestAdmitBatchAllOrNothing(t *testing.T) {
	for _, adm := range testAdmissions {
		adm := adm
		t.Run(adm.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(adm.Name())) * 6151))
			for inst := 0; inst < 10; inst++ {
				p := randPlatform(rng)
				cur := task.Set{{WCET: 1, Period: 1 << 20}}
				e, err := New(cur, p, adm, 1, SortedOrder)
				if err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 25; round++ {
					bt := randBatch(rng)
					union := append(cur.Clone(), bt...)
					want := freshSorted(t, union, p, adm, 1)
					before := e.Result().Clone()
					res, admitted, err := e.AdmitBatch(bt, AllOrNothing)
					if err != nil {
						t.Fatalf("inst %d round %d: %v", inst, round, err)
					}
					if want.Feasible {
						if countTrue(admitted) != len(bt) {
							t.Fatalf("inst %d round %d: feasible union but %d/%d admitted",
								inst, round, countTrue(admitted), len(bt))
						}
						sameResult(t, "aon admit", res.Clone(), want)
						cur = union
					} else {
						if countTrue(admitted) != 0 {
							t.Fatalf("inst %d round %d: infeasible union but %d admitted",
								inst, round, countTrue(admitted))
						}
						sameResult(t, "aon witness", res.Clone(), want)
						sameResult(t, "aon rollback", e.Result().Clone(), before)
					}
					if err := e.SelfCheck(); err != nil {
						t.Fatalf("inst %d round %d: %v", inst, round, err)
					}
					sameResult(t, "aon state", e.Result().Clone(), freshSorted(t, cur, p, adm, 1))
				}
			}
		})
	}
}

// TestAdmitBatchMidFailureRollback forces the merged replay to fail
// partway through a multi-insertion batch and checks the rollback
// restores the engine exactly: a batch whose small tasks fit but whose
// hog does not must leave no trace in AllOrNothing mode.
func TestAdmitBatchMidFailureRollback(t *testing.T) {
	p := machine.New(1)
	cur := task.Set{
		{WCET: 3, Period: 10}, {WCET: 2, Period: 12}, {WCET: 1, Period: 9},
	}
	e, err := New(cur, p, partition.EDFAdmission{}, 1, SortedOrder)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Result().Clone()
	// Two easy tasks around a hog that cannot fit on the machine.
	bt := []task.Task{
		{WCET: 1, Period: 1000},
		{WCET: 9, Period: 10},
		{WCET: 1, Period: 500},
	}
	res, admitted, err := e.AdmitBatch(bt, AllOrNothing)
	if err != nil {
		t.Fatal(err)
	}
	if countTrue(admitted) != 0 {
		t.Fatalf("hog batch admitted %d tasks", countTrue(admitted))
	}
	if res.Feasible {
		t.Fatal("witness must be infeasible")
	}
	sameResult(t, "mid-failure rollback", e.Result().Clone(), before)
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	// BestEffort on the same batch admits exactly the two easy tasks.
	_, admitted, err = e.AdmitBatch(bt, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if !admitted[0] || admitted[1] || !admitted[2] {
		t.Fatalf("best-effort verdicts = %v, want [true false true]", admitted)
	}
	want := freshSorted(t, append(cur.Clone(), bt[0], bt[2]), p, partition.EDFAdmission{}, 1)
	sameResult(t, "best-effort survivors", e.Result().Clone(), want)
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitBatchArrival covers the sequential delegation path: in
// ArrivalOrder a batch is defined as one Admit per task in input order,
// and AllOrNothing undoes the admitted prefix on failure.
func TestAdmitBatchArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randPlatform(rng)
	cur := task.Set{{WCET: 1, Period: 1 << 20}}
	e, err := New(cur, p, partition.EDFAdmission{}, 1, ArrivalOrder)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := New(cur, p, partition.EDFAdmission{}, 1, ArrivalOrder)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		bt := randBatch(rng)
		_, admitted, err := e.AdmitBatch(bt, BestEffort)
		if err != nil {
			t.Fatal(err)
		}
		for i, tk := range bt {
			_, ok, err := twin.Admit(tk)
			if err != nil {
				t.Fatal(err)
			}
			if ok != admitted[i] {
				t.Fatalf("round %d task %d: batch %v, sequential %v", round, i, admitted[i], ok)
			}
		}
		sameResult(t, "arrival batch", e.Result().Clone(), twin.Result().Clone())
		if err := e.SelfCheck(); err != nil {
			t.Fatal(err)
		}
	}
	// AllOrNothing with an unplaceable tail: the admitted prefix must be
	// undone and the state restored exactly.
	before := e.Result().Clone()
	bt := []task.Task{{WCET: 1, Period: 700}, {WCET: 1 << 40, Period: 1 << 40}}
	_, admitted, err := e.AdmitBatch(bt, AllOrNothing)
	if err != nil {
		t.Fatal(err)
	}
	if countTrue(admitted) != 0 {
		t.Fatal("arrival all-or-nothing must admit nothing on failure")
	}
	sameResult(t, "arrival aon undo", e.Result().Clone(), before)
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitBatchValidation covers the malformed-batch guards.
func TestAdmitBatchValidation(t *testing.T) {
	p := randPlatform(rand.New(rand.NewSource(3)))
	e, err := New(task.Set{{WCET: 1, Period: 10}}, p, partition.EDFAdmission{}, 1, SortedOrder)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.AdmitBatch([]task.Task{{WCET: 0, Period: 5}}, BestEffort); err == nil {
		t.Fatal("invalid batch task must error")
	}
	if _, _, err := e.AdmitBatch([]task.Task{{WCET: 1, Period: 5}}, BatchMode(9)); err == nil {
		t.Fatal("unknown mode must error")
	}
	res, admitted, err := e.AdmitBatch(nil, BestEffort)
	if err != nil || len(admitted) != 0 {
		t.Fatalf("empty batch: admitted=%v err=%v", admitted, err)
	}
	if !res.Feasible {
		t.Fatal("empty batch must return the current feasible state")
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
