package online

// The engine's mutation path used to allocate three fresh slices every
// time a machine was journaled (copy-on-truncation) — the dominant
// allocation source on interior mutations (hundreds of allocs per op).
// Instead, retired machine-state slice triples are kept in an
// engine-owned pool: makeDirty/splice take a recycled triple for the
// machine's new working state, commit recycles the journaled
// pre-mutation triples, and rollback recycles the abandoned working
// triples. Pool entries grow to the instance's high-water marks, after
// which every steady-state mutation runs without allocating.

// grabMach returns a recycled machine-state triple (empty, capacity
// preserved) or a zero triple whose slices grow on first use.
func (e *Engine) grabMach() mach {
	if ln := len(e.machPool); ln > 0 {
		mc := e.machPool[ln-1]
		e.machPool[ln-1] = mach{}
		e.machPool = e.machPool[:ln-1]
		return mc
	}
	return mach{}
}

// recycleMach returns a no-longer-referenced triple to the pool.
func (e *Engine) recycleMach(mc mach) {
	mc.placed = mc.placed[:0]
	mc.cum = mc.cum[:0]
	mc.cumProd = mc.cumProd[:0]
	mc.cumDens = mc.cumDens[:0]
	mc.cumNum = mc.cumNum[:0]
	mc.cumInvP = mc.cumInvP[:0]
	mc.cumMaxD = mc.cumMaxD[:0]
	mc.envT = mc.envT[:0]
	mc.envE = mc.envE[:0]
	mc.envA = mc.envA[:0]
	mc.envGen = 0
	mc.envBad = false
	e.machPool = append(e.machPool, mc)
}
