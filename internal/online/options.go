package online

import (
	"errors"
	"fmt"
	"math"

	"partfeas/internal/dbf"
	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// Options configures NewEngine, collapsing the former constructor
// sprawl (New / NewConstrained / Restore / RestoreConstrained) into one
// declarative surface. The zero value is the paper's engine: sorted
// first-fit, EDF-class admission supplied via Admission, alpha 1.
type Options struct {
	// Policy is the placement policy; nil means FirstFitSorted (the
	// paper's order, the only policy with the sorted-solve guarantee).
	Policy Policy

	// Alpha is the speed augmentation every decision is made at; 0
	// means 1.
	Alpha float64

	// Admission selects the implicit-deadline admission test (EDF, RMS
	// Liu–Layland or RMS hyperbolic — the tests with incremental
	// state). Required when Deadlines is nil; ignored otherwise.
	Admission partition.AdmissionTest

	// Deadlines switches the engine to the constrained-deadline tiered
	// DBF pipeline: Deadlines[i] is task i's relative deadline
	// (C ≤ D ≤ P enforced), len(Deadlines) must equal len(ts), and the
	// admission test is dbf.FeasibleEDF through the density/approx/
	// exact tiers. nil builds an implicit-deadline engine.
	Deadlines []int64

	// ApproxK is the constrained pipeline's linearization depth
	// (clamped to 64; ≤ 0 runs exact-only probes). Ignored when
	// Deadlines is nil.
	ApproxK int

	// Placed, when non-nil, restores a previously captured placement
	// (Tasks() + PlacedLists()) instead of running the initial
	// placement pass: each machine's recorded list is refolded verbatim
	// with every placement re-verified against the admission bound, so
	// corrupted snapshots are rejected. Only local (non-ordered)
	// policies consult it — an ordered engine's state is a pure
	// function of the multiset, so it is rebuilt fresh and Placed is
	// ignored.
	Placed [][]int32

	// RepartCnt restores the PeriodicRepartition cadence counter
	// (Engine.RepartCount): mutations committed since the hook's last
	// rebuild. A snapshot-restored engine must resume the window where
	// the snapshot left it, or replaying the same ops fires rebuilds at
	// different mutations and the restored state diverges from the
	// original. Ignored (and clamped into the window) unless the policy
	// repartitions.
	RepartCnt int
}

// NewEngine builds an engine for the task set and platform under opts.
// The inputs are copied. If the initial set does not place under the
// policy, NewEngine returns ErrInfeasible: engines represent feasible
// states only.
func NewEngine(ts task.Set, p machine.Platform, opts Options) (*Engine, error) {
	pol := opts.Policy
	if pol == nil {
		pol = FirstFitSorted()
	}
	constrained := opts.Deadlines != nil

	if constrained {
		if len(ts) == 0 {
			return nil, fmt.Errorf("online: empty task set")
		}
		if len(opts.Deadlines) != len(ts) {
			return nil, fmt.Errorf("online: %d deadlines for %d tasks", len(opts.Deadlines), len(ts))
		}
		for i := range ts {
			dt := dbf.Task{Name: ts[i].Name, WCET: ts[i].WCET, Deadline: opts.Deadlines[i], Period: ts[i].Period}
			if err := validateConstrained(dt); err != nil {
				return nil, fmt.Errorf("online: task %d: %w", i, err)
			}
		}
	} else {
		if err := ts.Validate(); err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("online: alpha %v must be positive", alpha)
	}

	e := &Engine{pol: pol, ordered: pol.Ordered(), alpha: alpha}
	if rp, ok := pol.(repartitioning); ok {
		if constrained {
			return nil, fmt.Errorf("online: policy %q: repartition is not supported for constrained-deadline engines", pol.Name())
		}
		e.repartEvery = rp.repartitionEvery()
		if opts.RepartCnt > 0 {
			e.repartCnt = opts.RepartCnt % e.repartEvery
		}
	}

	if constrained {
		e.kind = admDBF
		k := opts.ApproxK
		if k > maxApproxK {
			k = maxApproxK
		}
		e.approxK = k
		e.dl = append([]int64(nil), opts.Deadlines...)
		e.dens = make([]float64, len(ts))
		for i := range ts {
			e.dens[i] = float64(ts[i].WCET) / float64(e.dl[i])
		}
	} else {
		if opts.Admission == nil {
			return nil, fmt.Errorf("online: implicit-deadline engine needs an admission test (or set Deadlines for the constrained pipeline)")
		}
		switch opts.Admission.(type) {
		case partition.EDFAdmission:
			e.kind = admEDF
		case partition.RMSLLAdmission:
			e.kind = admLL
		case partition.RMSHyperbolicAdmission:
			e.kind = admHyperbolic
		default:
			return nil, fmt.Errorf("online: admission %q has no incremental state; use the batch solver", opts.Admission.Name())
		}
		e.adm = opts.Admission
	}

	e.tasks = ts.Clone()
	e.p = append(machine.Platform(nil), p...)
	e.utils = make([]float64, len(ts))
	for i := range e.tasks {
		e.utils[i] = e.tasks[i].Utilization()
	}

	e.initState()
	if opts.Placed != nil && !e.ordered {
		if err := e.restorePlacement(opts.Placed); err != nil {
			return nil, err
		}
		return e, nil
	}
	if err := e.initPlacement(); err != nil {
		// The constrained pipeline's exact-tier probes can error;
		// ErrInfeasible passes through bare, probe errors gain the
		// package prefix (the constrained constructor's historical
		// wrapping).
		if constrained && !errors.Is(err, ErrInfeasible) {
			return nil, fmt.Errorf("online: %w", err)
		}
		return nil, err
	}
	return e, nil
}

// policyForOrder maps the deprecated Order enum onto the policies that
// reproduce it bit-for-bit.
func policyForOrder(ord Order) (Policy, error) {
	switch ord {
	case SortedOrder:
		return FirstFitSorted(), nil
	case ArrivalOrder:
		return FirstFitArrival(), nil
	default:
		return nil, fmt.Errorf("online: unknown order %v", ord)
	}
}
