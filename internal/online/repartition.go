package online

import (
	"fmt"
	"math"
	"sort"

	"partfeas/internal/partition"
)

// Move is one task migration in a repartition plan.
type Move struct {
	Task int // task id
	From int // current machine (input index)
	To   int // machine under the paper's sorted first-fit
}

// Plan measures how far the engine's current placement has drifted from
// the paper's sorted first-fit over the same task multiset, and lists
// the migrations that would erase the drift. In SortedOrder the engine
// tracks the sorted solve exactly, so the plan is always empty; in
// ArrivalOrder each plan quantifies the guarantee forfeited by placing
// tasks in arrival order (the ordering gap of Lupu et al.).
type Plan struct {
	// Moves are the tasks whose current machine differs from the target,
	// in task-id order. Empty means zero drift.
	Moves []Move
	// TargetFeasible is false when the sorted solve itself fails at the
	// engine's augmentation — possible in ArrivalOrder because first-fit
	// is not monotone in placement order; the engine's own state is
	// feasible regardless. Moves is empty in that case.
	TargetFeasible bool
	// Target is the sorted solve's result (caller-owned copy). When
	// TargetFeasible is false it carries the failure witness.
	Target partition.Result
	// MaxLoadDelta is the largest |current − target| per-machine load.
	MaxLoadDelta float64
}

// DriftFraction is the fraction of resident tasks that would move,
// against n resident tasks.
func (pl Plan) DriftFraction(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(len(pl.Moves)) / float64(n)
}

// PlanRepartition solves the paper's sorted first-fit fresh over the
// engine's resident multiset at its augmentation and diffs the result
// against the live placement. The engine is not modified.
func (e *Engine) PlanRepartition() (Plan, error) {
	if e.kind == admDBF {
		// The DBF engine's reference solve is dbf.FirstFit, not the
		// utilization partitioner; SortedOrder DBF engines track it
		// exactly, so drift plans have nothing to measure.
		return Plan{}, fmt.Errorf("online: repartition is not supported for constrained-deadline engines")
	}
	res, err := partition.Partition(e.tasks, e.p, partition.Config{
		Admission: e.adm,
		Alpha:     e.alpha,
	})
	if err != nil {
		return Plan{}, fmt.Errorf("online: repartition solve: %w", err)
	}
	pl := Plan{Target: res, TargetFeasible: res.Feasible}
	for j := range e.machs {
		d := math.Abs(e.machs[j].load() - res.Loads[j])
		if d > pl.MaxLoadDelta {
			pl.MaxLoadDelta = d
		}
	}
	if !res.Feasible {
		return pl, nil
	}
	for id := range e.assign {
		if int(e.assign[id]) != res.Assignment[id] {
			pl.Moves = append(pl.Moves, Move{Task: id, From: int(e.assign[id]), To: res.Assignment[id]})
		}
	}
	return pl, nil
}

// ApplyRepartition migrates the engine toward the plan's target.
//
// maxMoves ≤ 0 or ≥ len(plan.Moves) applies the full plan: the engine is
// rebuilt to the target placement (folds re-run in the paper's order, so
// a SortedOrder engine remains byte-identical to a fresh solve) and the
// final state is re-verified against every machine's admission bound
// before committing. A smaller maxMoves applies a bounded prefix
// greedily: moves are attempted in the target's placement order and a
// move is taken only when the destination machine admits the task
// against its current aggregates, so the engine stays feasible after
// every individual migration — the invariant a live service needs while
// draining drift across multiple bounded rounds.
//
// Returns the number of moves applied. The plan must be fresh (computed
// since the last mutation) — a stale plan fails verification rather than
// corrupting state.
func (e *Engine) ApplyRepartition(pl Plan, maxMoves int) (int, error) {
	if !pl.TargetFeasible {
		return 0, fmt.Errorf("online: repartition target infeasible; nothing to apply")
	}
	if len(pl.Moves) == 0 {
		return 0, nil
	}
	if len(pl.Target.Assignment) != len(e.tasks) {
		return 0, fmt.Errorf("online: stale repartition plan: %d tasks in plan, %d resident", len(pl.Target.Assignment), len(e.tasks))
	}
	if maxMoves > 0 && maxMoves < len(pl.Moves) {
		return e.applyPartial(pl, maxMoves)
	}
	return len(pl.Moves), e.applyFull(pl)
}

// applyFull rebuilds every machine's fold to the target assignment,
// iterating tasks in the paper's utilization-descending order — the
// order the target solve folded in — so the rebuilt per-machine loads
// are byte-identical to the plan's Target.Loads and the admission
// re-verification repeats the solve's exact checks. (For a SortedOrder
// engine that order is e.sorted, so placed lists stay position-ordered.)
// All machines are journaled first; verification failure (a stale plan)
// rolls everything back.
func (e *Engine) applyFull(pl Plan) error {
	order := e.sorted
	if !e.ordered {
		order = make([]int32, len(e.tasks))
		for i := range order {
			order[i] = int32(i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return partition.TaskLessUtilDesc(e.tasks, int(order[a]), int(order[b]))
		})
	}
	e.begin(edit{op: opNone})
	for j := range e.machs {
		e.makeDirty(j, 0) // journals and empties the machine
	}
	for _, id := range order {
		j := pl.Target.Assignment[id]
		if j < 0 || j >= len(e.machs) {
			e.rollback()
			return fmt.Errorf("online: repartition plan assigns task %d to machine %d", id, j)
		}
		if !e.fitsAgg(j, id) {
			// The target placement re-folds differently than the plan
			// promised — the plan predates a mutation. Restore.
			e.rollback()
			return fmt.Errorf("online: stale repartition plan: task %d no longer fits machine %d", id, j)
		}
		e.journalAssign(id)
		e.assign[id] = int32(j)
		e.place(j, id)
	}
	// Every machine was rebuilt, so every checkpoint is invalidated;
	// commit recycles the journal and re-sweeps them from position 0.
	e.commit(0)
	return nil
}

// applyPartial performs up to maxMoves individually-feasible migrations
// from the plan, in engine placement order, skipping moves whose source
// no longer matches or whose destination does not currently admit the
// task. Each move is its own transaction, so the engine is feasible
// after every migration. Only reachable in ArrivalOrder (SortedOrder
// plans are empty), so splicing-and-appending folds is safe.
func (e *Engine) applyPartial(pl Plan, maxMoves int) (int, error) {
	moves := append([]Move(nil), pl.Moves...)
	sort.SliceStable(moves, func(a, b int) bool {
		return e.pos[moves[a].Task] < e.pos[moves[b].Task]
	})
	applied := 0
	for _, mv := range moves {
		if applied >= maxMoves {
			break
		}
		id := mv.Task
		if id < 0 || id >= len(e.tasks) || int(e.assign[id]) != mv.From {
			continue // stale entry; skip rather than fail the round
		}
		e.begin(edit{op: opNone})
		e.splice(mv.From, int32(id))
		if !e.fitsAgg(mv.To, int32(id)) {
			e.rollback()
			continue // destination full right now; a later round retries
		}
		e.journalAssign(int32(id))
		e.assign[id] = int32(mv.To)
		e.place(mv.To, int32(id))
		e.commit(0)
		applied++
	}
	return applied, nil
}
