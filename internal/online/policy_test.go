package online

import (
	"math/rand"
	"strings"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/task"
)

// testPolicies are the local (non-ordered) built-ins the behavioral and
// differential sweeps run over.
func testPolicies() []Policy {
	return []Policy{
		FirstFitArrival(),
		BestFit(),
		WorstFit(),
		KChoices(2),
		KChoices(4),
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "first_fit_sorted"},
		{"first_fit_sorted", "first_fit_sorted"},
		{"sorted", "first_fit_sorted"}, // legacy WAL/snapshot alias
		{"first_fit_arrival", "first_fit_arrival"},
		{"arrival", "first_fit_arrival"}, // legacy alias
		{"best_fit", "best_fit"},
		{"worst_fit", "worst_fit"},
		{"k_choices", "k_choices"},
		{"k_choices_4", "k_choices_4"},
	}
	for _, tc := range cases {
		pol, err := ParsePolicy(tc.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.in, err)
		}
		if pol.Name() != tc.want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", tc.in, pol.Name(), tc.want)
		}
	}
	for _, bad := range []string{"firstfit", "k_choices_1", "k_choices_x", "round_robin"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("ParsePolicy(%q) error does not name the value: %v", bad, err)
		}
	}
}

// TestPolicyNameRoundTrip: every built-in's Name parses back to a
// policy with the same name (the wire format is total on the set).
func TestPolicyNameRoundTrip(t *testing.T) {
	pols := append(testPolicies(), FirstFitSorted())
	for _, pol := range pols {
		back, err := ParsePolicy(pol.Name())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", pol.Name(), err)
		}
		if back.Name() != pol.Name() {
			t.Errorf("round trip %q -> %q", pol.Name(), back.Name())
		}
	}
	if FirstFitSorted().Ordered() != true {
		t.Error("FirstFitSorted must be ordered")
	}
	for _, pol := range testPolicies() {
		if pol.Ordered() {
			t.Errorf("%s must not be ordered", pol.Name())
		}
	}
}

// TestWrapperEquivalence: the deprecated Order-enum constructors are
// bit-identical to NewEngine with the corresponding first-fit policy,
// across admissions, orders and randomized mutation sequences.
func TestWrapperEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, adm := range testAdmissions {
		for _, ord := range []Order{SortedOrder, ArrivalOrder} {
			pol := FirstFitSorted()
			if ord == ArrivalOrder {
				pol = FirstFitArrival()
			}
			for inst := 0; inst < 5; inst++ {
				p := randPlatform(rng)
				seed := task.Set{randTask(rng)}
				old, errOld := New(seed, p, adm, 1, ord)
				neu, errNew := NewEngine(seed, p, Options{Policy: pol, Admission: adm})
				if (errOld == nil) != (errNew == nil) {
					t.Fatalf("%s/%v: construction diverged: %v vs %v", adm.Name(), ord, errOld, errNew)
				}
				if errOld != nil {
					continue
				}
				for op := 0; op < 60; op++ {
					opRng := rand.New(rand.NewSource(int64(inst*1000 + op)))
					switch opRng.Intn(3) {
					case 0:
						tk := randTask(opRng)
						_, okO, errO := old.Admit(tk)
						_, okN, errN := neu.Admit(tk)
						if okO != okN || (errO == nil) != (errN == nil) {
							t.Fatalf("%s/%v op %d: Admit diverged", adm.Name(), ord, op)
						}
					case 1:
						if old.Len() < 2 {
							continue
						}
						id := opRng.Intn(old.Len())
						_, okO, _ := old.Remove(id)
						_, okN, _ := neu.Remove(id)
						if okO != okN {
							t.Fatalf("%s/%v op %d: Remove diverged", adm.Name(), ord, op)
						}
					default:
						id := opRng.Intn(old.Len())
						w := 1 + opRng.Int63n(old.tasks[id].Period)
						_, okO, _ := old.UpdateWCET(id, w)
						_, okN, _ := neu.UpdateWCET(id, w)
						if okO != okN {
							t.Fatalf("%s/%v op %d: UpdateWCET diverged", adm.Name(), ord, op)
						}
					}
					sameEngineState(t, adm.Name(), neu, old)
				}
			}
		}
	}
}

// TestRestoreWrapperEquivalence: Restore == NewEngine{Placed}.
func TestRestoreWrapperEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	adm := testAdmissions[0]
	p := randPlatform(rng)
	e, err := New(task.Set{randTask(rng)}, p, adm, 1, ArrivalOrder)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		e.Admit(randTask(rng))
	}
	ts, placed := e.Tasks(), e.PlacedLists()
	old, errOld := Restore(ts, p, adm, 1, ArrivalOrder, placed)
	neu, errNew := NewEngine(ts, p, Options{Policy: FirstFitArrival(), Admission: adm, Placed: placed})
	if errOld != nil || errNew != nil {
		t.Fatalf("restore: %v / %v", errOld, errNew)
	}
	sameEngineState(t, "restore", neu, old)
	sameEngineState(t, "restore vs original", neu, e)
}

// TestNewEngineValidation: the Options surface rejects malformed input
// with actionable errors.
func TestNewEngineValidation(t *testing.T) {
	p := machine.New(1)
	ts := task.Set{{WCET: 1, Period: 4}}
	if _, err := NewEngine(ts, p, Options{}); err == nil {
		t.Error("nil Admission accepted for implicit engine")
	}
	if _, err := NewEngine(ts, p, Options{Admission: partition.EDFAdmission{}, Deadlines: []int64{2, 3}}); err == nil {
		t.Error("deadline length mismatch accepted")
	}
	if _, err := NewEngine(ts, p, Options{Deadlines: []int64{8}}); err == nil {
		t.Error("deadline above period accepted")
	}
	if _, err := NewEngine(ts, p, Options{
		Policy:    PeriodicRepartition(FirstFitArrival(), 4),
		Deadlines: []int64{3},
	}); err == nil {
		t.Error("periodic repartition accepted on a constrained engine")
	}
	// Constrained build ignores Admission entirely.
	e, err := NewEngine(ts, p, Options{Deadlines: []int64{3}, ApproxK: 8})
	if err != nil {
		t.Fatalf("constrained build: %v", err)
	}
	if e.Deadline(0) != 3 || e.ApproxK() != 8 {
		t.Errorf("constrained state: D=%d k=%d", e.Deadline(0), e.ApproxK())
	}
}

// TestBestFitWorstFitSelection: hand-built platform where the heuristics
// provably differ from first-fit.
func TestBestFitWorstFitSelection(t *testing.T) {
	// Scan order is speed-ascending: machine 0 (speed 1), machine 1
	// (speed 2). Pre-load machine 0 lightly so both fit the probe task:
	// best-fit must pick the tighter machine 0, worst-fit the emptier
	// machine 1, first-fit the first in scan order (machine 0).
	p := machine.New(1, 2)
	seed := task.Set{{WCET: 1, Period: 2}} // u=0.5, lands on machine 0 under every policy's first probe? best_fit: slack0=1 < slack1=2 -> machine 0. worst_fit -> machine 1.
	probe := task.Task{WCET: 1, Period: 4} // u=0.25

	bf, err := NewEngine(seed, p, Options{Policy: BestFit(), Admission: partition.EDFAdmission{}})
	if err != nil {
		t.Fatal(err)
	}
	res, ok, err := bf.Admit(probe)
	if err != nil || !ok {
		t.Fatalf("best_fit admit: ok=%v err=%v", ok, err)
	}
	if res.Assignment[1] != 0 {
		t.Errorf("best_fit placed probe on %d, want 0 (tightest)", res.Assignment[1])
	}

	wf, err := NewEngine(seed, p, Options{Policy: WorstFit(), Admission: partition.EDFAdmission{}})
	if err != nil {
		t.Fatal(err)
	}
	// Seed task: worst-fit sends it to the emptiest machine (1, speed 2).
	if wf.Result().Assignment[0] != 1 {
		t.Fatalf("worst_fit seeded on %d, want 1", wf.Result().Assignment[0])
	}
	res, ok, err = wf.Admit(probe)
	if err != nil || !ok {
		t.Fatalf("worst_fit admit: ok=%v err=%v", ok, err)
	}
	if res.Assignment[1] != 1 {
		t.Errorf("worst_fit placed probe on %d, want 1 (emptiest)", res.Assignment[1])
	}
}

// TestLocalPoliciesStayFeasible: randomized op sequences under every
// local policy keep SelfCheck invariants and never corrupt state; a
// rebuilt twin driven with the identical accepted op sequence lands in
// the identical state (determinism / replayability of every policy).
func TestLocalPoliciesStayFeasible(t *testing.T) {
	type op struct {
		kind int
		t    task.Task
		id   int
		w    int64
	}
	for _, pol := range testPolicies() {
		rng := rand.New(rand.NewSource(47))
		p := machine.New(0.5, 1, 1, 2, 3)
		seed := task.Set{{WCET: 1, Period: 8}}
		e, err := NewEngine(seed, p, Options{Policy: pol, Admission: partition.EDFAdmission{}})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		var accepted []op
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				tk := randTask(rng)
				_, ok, err := e.Admit(tk)
				if err != nil {
					t.Fatalf("%s op %d: %v", pol.Name(), i, err)
				}
				if ok {
					accepted = append(accepted, op{kind: 0, t: tk})
				}
			case 2:
				if e.Len() < 2 {
					continue
				}
				id := rng.Intn(e.Len())
				_, ok, err := e.Remove(id)
				if err != nil {
					t.Fatalf("%s op %d: %v", pol.Name(), i, err)
				}
				if ok {
					accepted = append(accepted, op{kind: 1, id: id})
				}
			default:
				id := rng.Intn(e.Len())
				w := 1 + rng.Int63n(e.tasks[id].Period)
				_, ok, err := e.UpdateWCET(id, w)
				if err != nil {
					t.Fatalf("%s op %d: %v", pol.Name(), i, err)
				}
				if ok {
					accepted = append(accepted, op{kind: 2, id: id, w: w})
				}
			}
			if i%37 == 0 {
				if err := e.SelfCheck(); err != nil {
					t.Fatalf("%s op %d: SelfCheck: %v", pol.Name(), i, err)
				}
			}
		}
		if err := e.SelfCheck(); err != nil {
			t.Fatalf("%s final SelfCheck: %v", pol.Name(), err)
		}

		// Twin: replay exactly the accepted ops. Every accepted op must
		// be accepted again with the same resulting state — Select is a
		// pure function of engine state.
		twin, err := NewEngine(seed, p, Options{Policy: pol, Admission: partition.EDFAdmission{}})
		if err != nil {
			t.Fatalf("%s twin: %v", pol.Name(), err)
		}
		for i, o := range accepted {
			var ok bool
			switch o.kind {
			case 0:
				_, ok, err = twin.Admit(o.t)
			case 1:
				_, ok, err = twin.Remove(o.id)
			default:
				_, ok, err = twin.UpdateWCET(o.id, o.w)
			}
			if err != nil || !ok {
				t.Fatalf("%s twin op %d: ok=%v err=%v", pol.Name(), i, ok, err)
			}
		}
		sameEngineState(t, pol.Name()+" twin", twin, e)
	}
}

// TestKChoicesFallsBackToFirstFit: when none of the hashed candidates
// admit the task but some machine does, k-choices must not reject.
func TestKChoicesFallsBackToFirstFit(t *testing.T) {
	// Many machines, all tiny except one big one: random candidates are
	// overwhelmingly likely to miss the only viable machine at least
	// once across the probes, exercising the fallback.
	speeds := make([]float64, 32)
	for i := range speeds {
		speeds[i] = 0.05
	}
	speeds[31] = 8
	p := machine.New(speeds...)
	seed := task.Set{{WCET: 1, Period: 2}}
	e, err := NewEngine(seed, p, Options{Policy: KChoices(2), Admission: partition.EDFAdmission{}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	admitted := 0
	for i := 0; i < 24; i++ {
		// u in (0.1, 0.6]: never fits a 0.05 machine, always needs the
		// big one until it fills.
		pd := int64(1000 + rng.Intn(1000))
		tk := task.Task{WCET: pd/10 + rng.Int63n(pd/2), Period: pd}
		_, ok, err := e.Admit(tk)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			admitted++
		}
	}
	if admitted == 0 {
		t.Error("k_choices admitted nothing; fallback to first-fit is broken")
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodicRepartitionFoldsDrift: after every N-th successful
// mutation the wrapped engine's placement must equal the paper's fresh
// sorted first-fit over the resident multiset — drift is folded back on
// the cadence, while between repartition points the inner policy runs.
func TestPeriodicRepartitionFoldsDrift(t *testing.T) {
	const every = 5
	rng := rand.New(rand.NewSource(53))
	p := machine.New(1, 1.5, 2, 3)
	adm := partition.EDFAdmission{}
	seed := task.Set{{WCET: 1, Period: 4}}
	e, err := NewEngine(seed, p, Options{Policy: PeriodicRepartition(FirstFitArrival(), every), Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	mutations := 0
	for i := 0; i < 120; i++ {
		_, ok, err := e.Admit(randTask(rng))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		mutations++
		if mutations%every != 0 {
			continue
		}
		// At the cadence point the engine must match the fresh sorted
		// solve over its residents (when that solve is feasible — the
		// hook drops infeasible targets).
		res := freshSorted(t, e.Tasks(), p, adm, 1)
		if !res.Feasible {
			continue
		}
		got := e.Result()
		for id := range res.Assignment {
			if got.Assignment[id] != res.Assignment[id] {
				t.Fatalf("mutation %d: task %d on machine %d, sorted solve places %d",
					mutations, id, got.Assignment[id], res.Assignment[id])
			}
		}
		if err := e.SelfCheck(); err != nil {
			t.Fatalf("mutation %d: SelfCheck: %v", mutations, err)
		}
	}
	if mutations < every {
		t.Fatalf("only %d mutations accepted; test vacuous", mutations)
	}
	if want := "first_fit_arrival+repartition_5"; e.PlacementPolicy().Name() != want {
		t.Errorf("policy name %q, want %q", e.PlacementPolicy().Name(), want)
	}
}

// TestBatchUndoDoesNotFireRepartition: the all-or-nothing undo path
// calls Remove internally; the repartition hook must count the batch as
// one mutation and never fire mid-undo (hookDepth guard).
func TestBatchUndoDoesNotFireRepartition(t *testing.T) {
	p := machine.New(1)
	seed := task.Set{{WCET: 1, Period: 10}}
	e, err := NewEngine(seed, p, Options{Policy: PeriodicRepartition(FirstFitArrival(), 1), Admission: partition.EDFAdmission{}})
	if err != nil {
		t.Fatal(err)
	}
	// Batch that cannot fully fit: first task fits, second overloads.
	batch := []task.Task{{WCET: 1, Period: 10}, {WCET: 9, Period: 10}}
	res, admitted, err := e.AdmitBatch(batch, AllOrNothing)
	if err != nil {
		t.Fatal(err)
	}
	if admitted[0] || admitted[1] {
		t.Fatalf("all-or-nothing batch partially admitted: %v", admitted)
	}
	if res.Feasible {
		t.Error("rejected batch reported feasible result")
	}
	if e.Len() != 1 {
		t.Fatalf("engine has %d tasks after undone batch, want 1", e.Len())
	}
	if err := e.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
