package online

import "math"

// capTree indexes machines by scan position with the capacity each one
// has for a single additional task, so the common admission case — a
// task that lands at the end of the placement order — finds its
// first-fit machine in O(log m) instead of scanning all m machines.
//
// Stored capacities are slightly inflated (see capSlack) so that any
// machine whose exact admission predicate would accept a task of
// utilization u is guaranteed to satisfy cap ≥ u in the tree. The tree
// therefore never skips an admissible machine; candidate leaves are
// re-verified with the exact predicate by the caller, which keeps every
// decision byte-identical to the linear scan while only costing extra
// probes in the rare near-boundary case.
type capTree struct {
	n    int       // leaves in use (machine positions)
	size int       // leaf offset; power of two ≥ n
	max  []float64 // 1-based segment tree over leaf capacities
}

func newCapTree(n int) *capTree {
	size := 1
	for size < n {
		size <<= 1
	}
	if n == 0 {
		size = 1
	}
	t := &capTree{n: n, size: size, max: make([]float64, 2*size)}
	for i := range t.max {
		t.max[i] = math.Inf(-1)
	}
	return t
}

// set updates the capacity at leaf pos and the path above it.
func (t *capTree) set(pos int, cap float64) {
	i := t.size + pos
	t.max[i] = cap
	for i >>= 1; i >= 1; i >>= 1 {
		l, r := t.max[2*i], t.max[2*i+1]
		if l >= r {
			t.max[i] = l
		} else {
			t.max[i] = r
		}
	}
}

// firstAtLeast returns the leftmost position ≥ from whose capacity is at
// least u, or -1 when no such position exists.
func (t *capTree) firstAtLeast(u float64, from int) int {
	if from >= t.n || t.max[1] < u {
		return -1
	}
	return t.descend(1, 0, t.size-1, u, from)
}

func (t *capTree) descend(node, lo, hi int, u float64, from int) int {
	if hi < from || t.max[node] < u {
		return -1
	}
	if lo == hi {
		if lo >= t.n {
			return -1
		}
		return lo
	}
	mid := (lo + hi) / 2
	if p := t.descend(2*node, lo, mid, u, from); p >= 0 {
		return p
	}
	return t.descend(2*node+1, mid+1, hi, u, from)
}

// capSlack is the inflation added to a machine's computed capacity
// before it enters the tree: a bound on the rounding error between
// "capacity ≥ u" (the tree's phrasing) and the solver's exact admission
// predicate (e.g. load+u ≤ s), both evaluated in float64. 2⁻⁴⁰ relative
// to the operand magnitudes over-covers the few-ulp true error by orders
// of magnitude; the cost of the surplus is only an occasional extra
// verification probe.
// Speeds are validated positive at engine construction and loads are
// sums of positive utilizations, so the operands are their own absolute
// values; this sits on the per-placement hot path.
func capSlack(speed, load float64) float64 {
	const rel = 1.0 / (1 << 40)
	return rel * (speed + load + 1)
}
