package core

import (
	"fmt"
	"math"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// MaxWCET returns the largest integer WCET for task i at which the
// feasibility test still accepts the set (all other tasks unchanged), at
// the given scheduler and augmentation — the task's execution-time
// headroom, a standard sensitivity-analysis question when budgeting
// worst-case execution times. ok is false when the test rejects even the
// current WCET.
//
// Acceptance is monotone in a single task's WCET for both admissions
// (growing C_i only raises utilization terms), so binary search over the
// integer range is exact.
func MaxWCET(ts task.Set, p machine.Platform, sch Scheduler, alpha float64, i int) (wcet int64, ok bool, err error) {
	if i < 0 || i >= len(ts) {
		return 0, false, fmt.Errorf("core: MaxWCET task index %d out of range [0, %d)", i, len(ts))
	}
	if err := ts.Validate(); err != nil {
		return 0, false, err
	}
	if err := p.Validate(); err != nil {
		return 0, false, err
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return 0, false, fmt.Errorf("core: MaxWCET alpha %v must be positive", alpha)
	}

	// One Tester serves every probe: the solver clones the task set, and
	// UpdateWCET re-establishes the task order in place, so each probe is
	// an allocation-free re-solve instead of a clone + full re-sort.
	tester, err := NewTester(ts, p, sch)
	if err != nil {
		return 0, false, err
	}
	probe := func(c int64) (bool, error) {
		if err := tester.UpdateWCET(i, c); err != nil {
			return false, err
		}
		rep, err := tester.Test(alpha)
		if err != nil {
			return false, err
		}
		return rep.Accepted, nil
	}

	accepted, err := probe(ts[i].WCET)
	if err != nil {
		return 0, false, err
	}
	if !accepted {
		return 0, false, nil
	}
	// Upper bracket: the task must at least fit alone on the fastest
	// machine, so C ≤ α·s_max·P (+1 to make the bracket exclusive).
	hi := int64(math.Ceil(alpha*p.MaxSpeed()*float64(ts[i].Period))) + 1
	lo := ts[i].WCET // known accepted
	if hi <= lo {
		return lo, true, nil
	}
	// Invariant: lo accepted, hi rejected (or the true bound).
	if okHi, err := probe(hi); err != nil {
		return 0, false, err
	} else if okHi {
		return hi, true, nil
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		accepted, err := probe(mid)
		if err != nil {
			return 0, false, err
		}
		if accepted {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true, nil
}

// WCETHeadroom runs MaxWCET for every task, returning the per-task ratio
// MaxWCET_i / C_i (1.0 = no slack). Entries are NaN for tasks whose
// current WCET is already rejected (only possible when the whole set is
// rejected).
func WCETHeadroom(ts task.Set, p machine.Platform, sch Scheduler, alpha float64) ([]float64, error) {
	out := make([]float64, len(ts))
	for i := range ts {
		c, ok, err := MaxWCET(ts, p, sch, alpha, i)
		if err != nil {
			return nil, err
		}
		if !ok {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(c) / float64(ts[i].WCET)
	}
	return out, nil
}
