package core

import (
	"fmt"
	"math"
)

// Constants holds the four analysis constants (§IV for EDF, §V for RMS)
// that the paper's migratory-adversary proofs tune: c_s separates medium
// from fast machines (fast speed ≥ c_s·w_n/α), c_f is the fast-vs-total
// speed split between the two proof cases, and f_w, f_f split tasks by how
// much of them the LP runs on fast machines.
type Constants struct {
	Cs float64 // c_s > 1
	Cf float64 // c_f > 1
	Fw float64 // f_w ∈ [0, 1]
	Ff float64 // f_f ∈ [0, 1]
}

// PaperConstantsEDF are the §IV values supporting α = 2.98.
var PaperConstantsEDF = Constants{Cs: 2.868, Cf: 28.412, Fw: 0.811, Ff: 0.125}

// PaperConstantsRMS are the §V values supporting α = 3.34.
var PaperConstantsRMS = Constants{Cs: 2.00, Cf: 13.25, Fw: 0.72, Ff: 0.1956}

// Validate checks the structural ranges the proofs require.
func (c Constants) Validate() error {
	if !(c.Cs > 1) {
		return fmt.Errorf("core: constants: c_s %v must be > 1", c.Cs)
	}
	if !(c.Cf > 1) {
		return fmt.Errorf("core: constants: c_f %v must be > 1", c.Cf)
	}
	if c.Fw < 0 || c.Fw > 1 || math.IsNaN(c.Fw) {
		return fmt.Errorf("core: constants: f_w %v must be in [0,1]", c.Fw)
	}
	if c.Ff < 0 || c.Ff > 1 || math.IsNaN(c.Ff) {
		return fmt.Errorf("core: constants: f_f %v must be in [0,1]", c.Ff)
	}
	return nil
}

// InequalityValues are the left-hand sides of the three > 1 inequalities
// the proof of each migratory-adversary theorem reduces to. The proof goes
// through iff all three exceed 1.
type InequalityValues struct {
	// FastCase is the "powerful fast machines" contradiction
	// (Lemma IV.1 / V.1): (α−1)·(load coefficient) > 1.
	FastCase float64
	// SlowCaseSplit is the task-split contradiction (Lemma IV.5 / V.5):
	// work forced onto fast machines exceeds their LP capacity.
	SlowCaseSplit float64
	// SlowCaseMedium is the medium-machine contradiction
	// (Lemma IV.4 / V.4): work forced onto medium machines exceeds their
	// LP capacity. Uses f_{i,m} ≥ (1 + α·f_f − α) / (α(1/c_s − 1))
	// (Lemma IV.7 / V.7).
	SlowCaseMedium float64
}

// AllHold reports whether every inequality strictly exceeds 1.
func (v InequalityValues) AllHold() bool {
	return v.FastCase > 1 && v.SlowCaseSplit > 1 && v.SlowCaseMedium > 1
}

// Min returns the smallest of the three values — the slack of the
// weakest link.
func (v InequalityValues) Min() float64 {
	return math.Min(v.FastCase, math.Min(v.SlowCaseSplit, v.SlowCaseMedium))
}

// fIM is the Lemma IV.7 / V.7 lower bound on the fraction of an S_s task
// the LP must process on medium machines.
func (c Constants) fIM(alpha float64) float64 {
	return (1 + alpha*c.Ff - alpha) / (alpha * (1/c.Cs - 1))
}

// EDFInequalities evaluates the §IV proof obligations at augmentation
// alpha. The per-machine load guarantees after the algorithm fails are
// 1/2 (medium machines, since tasks are utilization-sorted) and 1 − 1/c_s
// (fast machines).
func (c Constants) EDFInequalities(alpha float64) InequalityValues {
	return InequalityValues{
		FastCase:       (alpha - 1) * (0.5 + 1/(2*c.Cf) - 1/(c.Cs*c.Cf)),
		SlowCaseSplit:  alpha * c.Cf * c.Ff * (1 - c.Fw) / 2,
		SlowCaseMedium: alpha / 2 * c.fIM(alpha) * c.Fw,
	}
}

// RMSInequalities evaluates the §V proof obligations at augmentation
// alpha. The per-machine load guarantees are √2−1 (all machines fast
// enough for τ_n, Lemma V.3) and ln 2 − 1/c_s (fast machines, Lemma V.2).
func (c Constants) RMSInequalities(alpha float64) InequalityValues {
	sq := math.Sqrt2 - 1
	return InequalityValues{
		FastCase:       (alpha - 1) * (sq + (math.Ln2-1/c.Cs)/c.Cf),
		SlowCaseSplit:  sq * alpha * c.Cf * c.Ff * (1 - c.Fw),
		SlowCaseMedium: sq * alpha * c.fIM(alpha) * c.Fw,
	}
}

// Inequalities dispatches on scheduler.
func (c Constants) Inequalities(sch Scheduler, alpha float64) (InequalityValues, error) {
	switch sch {
	case EDF:
		return c.EDFInequalities(alpha), nil
	case RMS:
		return c.RMSInequalities(alpha), nil
	default:
		return InequalityValues{}, fmt.Errorf("core: unknown scheduler %d", int(sch))
	}
}

// MinAlphaForConstants returns the smallest α (within tol) at which all
// three proof inequalities hold for the given constants, or ok=false when
// even alphaMax does not suffice. Every inequality's LHS is strictly
// increasing in α (FastCase linearly; the slow cases because f_{i,m}
// increases in α), so bisection is exact.
func MinAlphaForConstants(c Constants, sch Scheduler, alphaMax, tol float64) (alpha float64, ok bool, err error) {
	if err := c.Validate(); err != nil {
		return 0, false, err
	}
	if tol <= 0 {
		tol = 1e-9
	}
	vals, err := c.Inequalities(sch, alphaMax)
	if err != nil {
		return 0, false, err
	}
	if !vals.AllHold() {
		return 0, false, nil
	}
	lo, hi := 1.0, alphaMax
	valsLo, err := c.Inequalities(sch, lo)
	if err != nil {
		return 0, false, err
	}
	if valsLo.AllHold() {
		return lo, true, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		vals, err = c.Inequalities(sch, mid)
		if err != nil {
			return 0, false, err
		}
		if vals.AllHold() {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}
