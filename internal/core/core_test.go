package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"partfeas/internal/exact"
	"partfeas/internal/fractional"
	"partfeas/internal/machine"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

func mustSet(t testing.TB, us []float64) task.Set {
	t.Helper()
	s, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEnumStrings(t *testing.T) {
	if EDF.String() != "EDF" || RMS.String() != "RMS" {
		t.Error("scheduler strings")
	}
	if PartitionedAdversary.String() != "partitioned" || MigratoryAdversary.String() != "migratory-LP" {
		t.Error("adversary strings")
	}
	for _, thm := range Theorems {
		if thm.String() == "" {
			t.Error("theorem string empty")
		}
	}
	if Scheduler(9).String() == "" || Adversary(9).String() == "" || Theorem(9).String() == "" {
		t.Error("unknown enum strings")
	}
}

func TestTheoremMetadata(t *testing.T) {
	cases := []struct {
		thm   Theorem
		sch   Scheduler
		adv   Adversary
		alpha float64
	}{
		{TheoremI1, EDF, PartitionedAdversary, 2.0},
		{TheoremI2, RMS, PartitionedAdversary, math.Sqrt2 + 1},
		{TheoremI3, EDF, MigratoryAdversary, 2.98},
		{TheoremI4, RMS, MigratoryAdversary, 3.34},
	}
	for _, tc := range cases {
		if tc.thm.Scheduler() != tc.sch {
			t.Errorf("%v scheduler = %v, want %v", tc.thm, tc.thm.Scheduler(), tc.sch)
		}
		if tc.thm.Adversary() != tc.adv {
			t.Errorf("%v adversary = %v, want %v", tc.thm, tc.thm.Adversary(), tc.adv)
		}
		if math.Abs(tc.thm.Alpha()-tc.alpha) > 1e-12 {
			t.Errorf("%v alpha = %v, want %v", tc.thm, tc.thm.Alpha(), tc.alpha)
		}
	}
	if !math.IsNaN(Theorem(9).Alpha()) {
		t.Error("unknown theorem alpha should be NaN")
	}
	if _, err := Scheduler(9).Admission(); err == nil {
		t.Error("unknown scheduler admission should error")
	}
}

func TestTestAcceptReject(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.5})
	p := machine.New(1, 1)
	rep, err := Test(ts, p, EDF, 1)
	if err != nil || !rep.Accepted {
		t.Errorf("trivially feasible set rejected: %+v (%v)", rep, err)
	}
	ts2 := mustSet(t, []float64{0.9, 0.9, 0.9})
	rep, err = Test(ts2, p, EDF, 1)
	if err != nil || rep.Accepted {
		t.Errorf("overloaded set accepted: %+v (%v)", rep, err)
	}
	if rep.Partition.FailedTask == -1 {
		t.Error("failure report missing τ_n")
	}
	if _, err := TestTheorem(ts, p, Theorem(9)); err == nil {
		t.Error("unknown theorem should error")
	}
}

func TestTestTheoremRunsAtTheoremAlpha(t *testing.T) {
	ts := mustSet(t, []float64{0.5})
	p := machine.New(1)
	for _, thm := range Theorems {
		rep, err := TestTheorem(ts, p, thm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.Alpha-thm.Alpha()) > 1e-12 {
			t.Errorf("%v ran at α=%v, want %v", thm, rep.Alpha, thm.Alpha())
		}
		if rep.Scheduler != thm.Scheduler() {
			t.Errorf("%v ran %v", thm, rep.Scheduler)
		}
	}
}

// Theorem I.1 as an executable property: if the partitioned adversary is
// feasible at speeds σ·s (σ = σ_part exactly), the test accepts at α = 2
// on that platform.
func TestTheoremI1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		res, err := exact.MinScaling(ts, p, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Platform on which the partitioned adversary is exactly feasible.
		adv := p.Scaled(res.Sigma * (1 + 1e-9))
		rep, err := TestTheorem(ts, adv, TheoremI1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("trial %d: I.1 violated: σ_part=%v but FF-EDF rejects at 2σ (us=%v speeds=%v)",
				trial, res.Sigma, us, speeds)
		}
	}
}

// Theorem I.2: partitioned adversary feasible ⇒ FF-RMS accepts at
// α = 1/(√2−1).
func TestTheoremI2Property(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		res, err := exact.MinScaling(ts, p, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		adv := p.Scaled(res.Sigma * (1 + 1e-9))
		rep, err := TestTheorem(ts, adv, TheoremI2)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("trial %d: I.2 violated: σ_part=%v (us=%v speeds=%v)", trial, res.Sigma, us, speeds)
		}
	}
}

// Theorem I.3: LP adversary feasible ⇒ FF-EDF accepts at α = 2.98.
func TestTheoremI3Property(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(24)
		m := 1 + rng.Intn(8)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()*1.5
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*3
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		sigma, err := fractional.MinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		adv := p.Scaled(sigma * (1 + 1e-9))
		rep, err := TestTheorem(ts, adv, TheoremI3)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("trial %d: I.3 violated: σ_LP=%v (us=%v speeds=%v)", trial, sigma, us, speeds)
		}
	}
}

// Theorem I.4: LP adversary feasible ⇒ FF-RMS accepts at α = 3.34.
func TestTheoremI4Property(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(24)
		m := 1 + rng.Intn(8)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()*1.5
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*3
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		sigma, err := fractional.MinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		adv := p.Scaled(sigma * (1 + 1e-9))
		rep, err := TestTheorem(ts, adv, TheoremI4)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("trial %d: I.4 violated: σ_LP=%v (us=%v speeds=%v)", trial, sigma, us, speeds)
		}
	}
}

// Soundness of accept: the witness partition satisfies the scheduler's
// single-machine test on the augmented platform.
func TestAcceptWitnessSound(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(5)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		sch := Scheduler(rng.Intn(2))
		alpha := 1 + rng.Float64()*2.5
		rep, err := Test(ts, p, sch, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			continue
		}
		sets := rep.Partition.MachineSets(ts, m)
		for j, assigned := range sets {
			if len(assigned) == 0 {
				continue
			}
			speed := alpha * p[j].Speed
			switch sch {
			case EDF:
				if !sched.EDFFeasibleSet(assigned, speed*(1+1e-12)) {
					t.Fatalf("trial %d: EDF witness overloads machine %d", trial, j)
				}
			case RMS:
				if !sched.RMSFeasibleLLSet(assigned, speed*(1+1e-12)) {
					t.Fatalf("trial %d: RMS witness violates LL on machine %d", trial, j)
				}
			}
		}
	}
}

func TestMinAlpha(t *testing.T) {
	// Three 2/3 tasks on two unit machines: FF-EDF needs α = 4/3 exactly.
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 2, Period: 3}, {WCET: 2, Period: 3},
	}
	p := machine.New(1, 1)
	alpha, ok, err := MinAlpha(ts, p, EDF, 1, 4, 1e-9)
	if err != nil || !ok {
		t.Fatalf("MinAlpha: %v %v", ok, err)
	}
	if math.Abs(alpha-4.0/3) > 1e-6 {
		t.Errorf("α = %v, want 4/3", alpha)
	}
	// Already feasible at 1.
	ts2 := mustSet(t, []float64{0.25})
	alpha, ok, err = MinAlpha(ts2, p, EDF, 1, 4, 1e-9)
	if err != nil || !ok || alpha != 1 {
		t.Errorf("MinAlpha trivial = %v %v (%v), want 1", alpha, ok, err)
	}
	// Not feasible even at hi.
	ts3 := mustSet(t, []float64{3, 3, 3, 3})
	_, ok, err = MinAlpha(ts3, p, EDF, 1, 1.5, 1e-9)
	if err != nil || ok {
		t.Errorf("MinAlpha impossible = %v (%v), want !ok", ok, err)
	}
	if _, _, err := MinAlpha(ts, p, EDF, 2, 0.5, 1e-9); err == nil {
		t.Error("hi < lo should error")
	}
	if _, _, err := MinAlpha(ts, p, EDF, 0, 2, 1e-9); err == nil {
		t.Error("lo <= 0 should error")
	}
}

func TestConstantsValidate(t *testing.T) {
	if err := PaperConstantsEDF.Validate(); err != nil {
		t.Error(err)
	}
	if err := PaperConstantsRMS.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Constants{
		{Cs: 1, Cf: 2, Fw: 0.5, Ff: 0.5},
		{Cs: 2, Cf: 0.5, Fw: 0.5, Ff: 0.5},
		{Cs: 2, Cf: 2, Fw: -0.1, Ff: 0.5},
		{Cs: 2, Cf: 2, Fw: 0.5, Ff: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad constants %d accepted: %+v", i, c)
		}
	}
}

// E12 seed: the paper's constants make all proof inequalities hold at the
// claimed α and fail slightly below it — the claimed factors are tight for
// this analysis.
func TestPaperConstantsSupportClaimedAlphas(t *testing.T) {
	edf := PaperConstantsEDF.EDFInequalities(2.98)
	if !edf.AllHold() {
		t.Errorf("EDF inequalities at 2.98: %+v", edf)
	}
	if PaperConstantsEDF.EDFInequalities(2.97).AllHold() {
		t.Error("EDF inequalities unexpectedly hold at 2.97")
	}
	rms := PaperConstantsRMS.RMSInequalities(3.34)
	if !rms.AllHold() {
		t.Errorf("RMS inequalities at 3.34: %+v", rms)
	}
	if PaperConstantsRMS.RMSInequalities(3.32).AllHold() {
		t.Error("RMS inequalities unexpectedly hold at 3.32")
	}
	// The paper reports the fast-case slack ≈ 1.005 (EDF) and ≈ 1.004 (RMS).
	if edf.FastCase > 1.01 || rms.FastCase > 1.01 {
		t.Errorf("fast-case slack larger than the paper suggests: %v, %v", edf.FastCase, rms.FastCase)
	}
}

func TestMinAlphaForConstants(t *testing.T) {
	a, ok, err := MinAlphaForConstants(PaperConstantsEDF, EDF, 4, 1e-9)
	if err != nil || !ok {
		t.Fatalf("EDF: %v %v", ok, err)
	}
	if a > 2.98 || a < 2.95 {
		t.Errorf("EDF minimal α = %v, want ≈2.98", a)
	}
	a, ok, err = MinAlphaForConstants(PaperConstantsRMS, RMS, 4, 1e-9)
	if err != nil || !ok {
		t.Fatalf("RMS: %v %v", ok, err)
	}
	if a > 3.34 || a < 3.30 {
		t.Errorf("RMS minimal α = %v, want ≈3.34", a)
	}
	// Constants that never work: f_f = 0 kills the slow-case split.
	_, ok, err = MinAlphaForConstants(Constants{Cs: 2, Cf: 2, Fw: 0.5, Ff: 0}, EDF, 100, 1e-9)
	if err != nil || ok {
		t.Errorf("degenerate constants: ok=%v err=%v", ok, err)
	}
	if _, _, err := MinAlphaForConstants(Constants{}, EDF, 4, 1e-9); err == nil {
		t.Error("invalid constants should error")
	}
	if _, _, err := MinAlphaForConstants(PaperConstantsEDF, Scheduler(9), 4, 1e-6); err == nil {
		t.Error("unknown scheduler should error")
	}
}

func TestInequalityValuesHelpers(t *testing.T) {
	v := InequalityValues{FastCase: 1.2, SlowCaseSplit: 1.1, SlowCaseMedium: 0.9}
	if v.AllHold() {
		t.Error("AllHold with one below 1")
	}
	if v.Min() != 0.9 {
		t.Errorf("Min = %v", v.Min())
	}
	if _, err := PaperConstantsEDF.Inequalities(EDF, 3); err != nil {
		t.Error(err)
	}
	if _, err := PaperConstantsEDF.Inequalities(Scheduler(9), 3); err == nil {
		t.Error("unknown scheduler")
	}
}

func BenchmarkTestTheoremI1(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	us := make([]float64, 64)
	for i := range us {
		us[i] = rng.Float64()
	}
	ts, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	speeds := make([]float64, 8)
	for j := range speeds {
		speeds[j] = 0.5 + rng.Float64()*4
	}
	p := machine.New(speeds...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TestTheorem(ts, p, TheoremI1); err != nil {
			b.Fatal(err)
		}
	}
}

// Scale invariance: augmenting by α on platform p decides identically to
// augmenting by 1 on p scaled by α — the identity the ratio measurements
// and theorem checks rely on.
func TestQuickScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		alpha := 0.5 + rng.Float64()*2.5
		sch := Scheduler(rng.Intn(2))
		a, err := Test(ts, p, sch, alpha)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Test(ts, p.Scaled(alpha), sch, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Accepted != b.Accepted {
			t.Fatalf("trial %d: Test(p, %v)=%v but Test(p·%v, 1)=%v", trial, alpha, a.Accepted, alpha, b.Accepted)
		}
	}
}

// TestTesterMatchesOneShot holds the reusable Tester to bit-identical
// Reports against the one-shot Test across schedulers and augmentations,
// interleaved so scratch reuse cannot leak state between queries.
func TestTesterMatchesOneShot(t *testing.T) {
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 3, Period: 7}, {WCET: 1, Period: 2},
		{WCET: 5, Period: 11}, {WCET: 2, Period: 5},
	}
	p := machine.New(0.5, 1, 2)
	for _, sch := range []Scheduler{EDF, RMS} {
		tester, err := NewTester(ts, p, sch)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{2, 0.8, 1, 3.34, 1.1, 2} {
			got, err := tester.Test(alpha)
			if err != nil {
				t.Fatal(err)
			}
			got.Partition = got.Partition.Clone()
			want, err := Test(ts, p, sch, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v α=%v: tester %+v != one-shot %+v", sch, alpha, got, want)
			}
		}
	}
}

// TestTesterMinAlphaMatchesPackageLevel pins the Tester bisection to the
// package-level MinAlpha on the same bracket.
func TestTesterMinAlphaMatchesPackageLevel(t *testing.T) {
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 2, Period: 3}, {WCET: 2, Period: 3},
	}
	p := machine.New(1, 1)
	tester, err := NewTester(ts, p, EDF)
	if err != nil {
		t.Fatal(err)
	}
	got, gotOK, err := tester.MinAlpha(1, 4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want, wantOK, err := MinAlpha(ts, p, EDF, 1, 4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || gotOK != wantOK {
		t.Errorf("tester MinAlpha = (%v, %v), package = (%v, %v)", got, gotOK, want, wantOK)
	}
	if _, _, err := tester.MinAlpha(2, 0.5, 1e-9); err == nil {
		t.Error("hi < lo should error")
	}
}

// TestTesterRepeatQueryAllocationFree asserts the bisection contract:
// repeat Test queries on one Tester do not allocate.
func TestTesterRepeatQueryAllocationFree(t *testing.T) {
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 3, Period: 7}, {WCET: 1, Period: 2},
		{WCET: 5, Period: 11}, {WCET: 2, Period: 5},
	}
	p := machine.New(0.5, 1, 2)
	for _, sch := range []Scheduler{EDF, RMS} {
		tester, err := NewTester(ts, p, sch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tester.Test(1); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(50, func() {
			for _, alpha := range []float64{0.9, 1.4, 2.2, 3.1} {
				if _, err := tester.Test(alpha); err != nil {
					t.Fatal(err)
				}
			}
		})
		if avg != 0 {
			t.Errorf("%v: %v allocs per 4 queries, want 0", sch, avg)
		}
	}
}
