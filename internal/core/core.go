// Package core implements the paper's contribution: approximate
// partitioned feasibility tests for implicit-deadline sporadic tasks on
// uniform (related) machines, with the approximation guarantees of
// Theorems I.1–I.4.
//
// The test is the §III algorithm — first-fit over utilization-descending
// tasks and speed-ascending machines with a per-machine admission test —
// run at a speed augmentation α chosen per theorem:
//
//	I.1  EDF vs partitioned adversary   α = 2
//	I.2  RMS vs partitioned adversary   α = 1/(√2−1) ≈ 2.414
//	I.3  EDF vs migratory/LP adversary  α = 2.98
//	I.4  RMS vs migratory/LP adversary  α = 3.34
//
// Accept means: the set is schedulable by the stated per-machine policy on
// the α-augmented platform, witnessed by the returned partition. Reject at
// the theorem's α means: the corresponding adversary cannot schedule the
// set at the original speeds.
package core

import (
	"context"
	"fmt"
	"math"

	"partfeas/internal/machine"
	"partfeas/internal/partition"
	"partfeas/internal/pipeline"
	"partfeas/internal/task"
)

// Scheduler is the per-machine scheduling policy.
type Scheduler int

const (
	// EDF uses the exact utilization admission (Theorem II.2).
	EDF Scheduler = iota
	// RMS uses the Liu–Layland admission (Theorem II.3).
	RMS
)

func (s Scheduler) String() string {
	switch s {
	case EDF:
		return "EDF"
	case RMS:
		return "RMS"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Admission returns the partition.AdmissionTest the paper pairs with the
// scheduler.
func (s Scheduler) Admission() (partition.AdmissionTest, error) {
	switch s {
	case EDF:
		return partition.EDFAdmission{}, nil
	case RMS:
		return partition.RMSLLAdmission{}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler %d", int(s))
	}
}

// Adversary is the optimal scheduler the approximation factor is measured
// against.
type Adversary int

const (
	// PartitionedAdversary must assign each task to one machine
	// (Theorems I.1, I.2).
	PartitionedAdversary Adversary = iota
	// MigratoryAdversary may split tasks across machines as the §II LP
	// allows (Theorems I.3, I.4).
	MigratoryAdversary
)

func (a Adversary) String() string {
	switch a {
	case PartitionedAdversary:
		return "partitioned"
	case MigratoryAdversary:
		return "migratory-LP"
	default:
		return fmt.Sprintf("Adversary(%d)", int(a))
	}
}

// The paper's proved approximation factors.
const (
	// AlphaEDFPartitioned is Theorem I.1's factor.
	AlphaEDFPartitioned = 2.0
	// AlphaRMSPartitioned is Theorem I.2's factor, 1/(√2−1) = √2+1.
	AlphaRMSPartitioned = math.Sqrt2 + 1
	// AlphaEDFMigratory is Theorem I.3's factor.
	AlphaEDFMigratory = 2.98
	// AlphaRMSMigratory is Theorem I.4's factor.
	AlphaRMSMigratory = 3.34
)

// Theorem identifies one of the paper's four results.
type Theorem int

const (
	// TheoremI1: EDF vs partitioned, α = 2.
	TheoremI1 Theorem = iota
	// TheoremI2: RMS vs partitioned, α ≈ 2.414.
	TheoremI2
	// TheoremI3: EDF vs migratory LP, α = 2.98.
	TheoremI3
	// TheoremI4: RMS vs migratory LP, α = 3.34.
	TheoremI4
)

// Theorems lists all four results in paper order.
var Theorems = []Theorem{TheoremI1, TheoremI2, TheoremI3, TheoremI4}

func (t Theorem) String() string {
	switch t {
	case TheoremI1:
		return "I.1"
	case TheoremI2:
		return "I.2"
	case TheoremI3:
		return "I.3"
	case TheoremI4:
		return "I.4"
	default:
		return fmt.Sprintf("Theorem(%d)", int(t))
	}
}

// Scheduler returns the per-machine policy the theorem is about.
func (t Theorem) Scheduler() Scheduler {
	switch t {
	case TheoremI1, TheoremI3:
		return EDF
	default:
		return RMS
	}
}

// Adversary returns the optimal scheduler the theorem compares against.
func (t Theorem) Adversary() Adversary {
	switch t {
	case TheoremI1, TheoremI2:
		return PartitionedAdversary
	default:
		return MigratoryAdversary
	}
}

// Alpha returns the theorem's proved approximation factor.
func (t Theorem) Alpha() float64 {
	switch t {
	case TheoremI1:
		return AlphaEDFPartitioned
	case TheoremI2:
		return AlphaRMSPartitioned
	case TheoremI3:
		return AlphaEDFMigratory
	case TheoremI4:
		return AlphaRMSMigratory
	default:
		return math.NaN()
	}
}

// Report is the outcome of one feasibility test run.
type Report struct {
	// Accepted is true when every task was placed: the set is schedulable
	// by Scheduler on the Alpha-augmented platform.
	Accepted bool
	// Scheduler is the per-machine policy used.
	Scheduler Scheduler
	// Alpha is the speed augmentation the test ran at.
	Alpha float64
	// Partition is the witness (or the failed attempt, with FailedTask
	// the paper's τ_n).
	Partition partition.Result
}

// Tester answers the paper's feasibility test for one (task set,
// platform, scheduler) triple at many augmentations. Construction builds
// a partition.Solver once — sort orders, per-task utilizations and
// scratch buffers are then shared by every query, so a repeat Test call
// allocates nothing. This is the engine behind MinAlpha bisections,
// MaxWCET sweeps and the Monte-Carlo experiment loops.
//
// A Tester is not safe for concurrent use; construct one per goroutine.
type Tester struct {
	sch    Scheduler
	solver *partition.Solver
}

// NewTester validates the instance and precomputes the α-independent
// state for the scheduler's admission test.
func NewTester(ts task.Set, p machine.Platform, sch Scheduler) (*Tester, error) {
	adm, err := sch.Admission()
	if err != nil {
		return nil, err
	}
	s, err := partition.NewSolver(ts, p, partition.Paper(adm, 1))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Tester{sch: sch, solver: s}, nil
}

// Test runs the paper's algorithm at augmentation alpha. The decisions
// are identical to the package-level Test. The Report's Partition field
// aliases the Tester's scratch buffers and is only valid until the next
// query; use Partition.Clone to retain it.
func (t *Tester) Test(alpha float64) (Report, error) {
	res, err := t.solver.Solve(alpha)
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	return Report{
		Accepted:  res.Feasible,
		Scheduler: t.sch,
		Alpha:     res.Alpha,
		Partition: res,
	}, nil
}

// TestCtx is Test observing ctx: a query against an expired or cancelled
// context returns a *pipeline.Error wrapping the ctx cause instead of
// running. One query is a single polynomial first-fit pass, so this is
// the whole cancellation story for Test — there is no mid-pass
// checkpoint to interrupt.
func (t *Tester) TestCtx(ctx context.Context, alpha float64) (Report, error) {
	if cerr := ctx.Err(); cerr != nil {
		return Report{}, pipeline.New(pipeline.StageAnalyze, "Test", cerr)
	}
	return t.Test(alpha)
}

// UpdateWCET changes task i's WCET for subsequent queries (invalidating
// previously returned Reports' Partition fields).
func (t *Tester) UpdateWCET(i int, wcet int64) error {
	if err := t.solver.UpdateWCET(i, wcet); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// MinAlpha bisects for the smallest accepted augmentation in [lo, hi],
// reusing the Tester's solver for every probe. See the package-level
// MinAlpha for the contract.
func (t *Tester) MinAlpha(lo, hi, tol float64) (alpha float64, ok bool, err error) {
	return t.MinAlphaCtx(context.Background(), lo, hi, tol)
}

// MinAlphaCtx is MinAlpha observing ctx between bisection probes (each
// probe is one polynomial first-fit pass, so cancellation latency is one
// probe). An interrupted bisection returns a *pipeline.Error wrapping
// the ctx cause.
func (t *Tester) MinAlphaCtx(ctx context.Context, lo, hi, tol float64) (alpha float64, ok bool, err error) {
	if !(lo > 0) || hi < lo {
		return 0, false, fmt.Errorf("core: MinAlpha bracket [%v, %v] invalid", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	rep, err := t.Test(hi)
	if err != nil {
		return 0, false, err
	}
	if !rep.Accepted {
		return 0, false, nil
	}
	rep, err = t.Test(lo)
	if err != nil {
		return 0, false, err
	}
	if rep.Accepted {
		return lo, true, nil
	}
	// Invariant: test rejects at lo, accepts at hi.
	for hi-lo > tol {
		if cerr := ctx.Err(); cerr != nil {
			return 0, false, pipeline.New(pipeline.StageAnalyze, "MinAlpha", cerr)
		}
		mid := (lo + hi) / 2
		rep, err = t.Test(mid)
		if err != nil {
			return 0, false, err
		}
		if rep.Accepted {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// Test runs the paper's algorithm for the given scheduler at augmentation
// alpha (≥ 1). One-shot: repeated queries on the same instance should use
// a Tester.
func Test(ts task.Set, p machine.Platform, sch Scheduler, alpha float64) (Report, error) {
	t, err := NewTester(ts, p, sch)
	if err != nil {
		return Report{}, err
	}
	// The Tester is discarded, so the Report's aliasing of its scratch is
	// harmless: the caller becomes the sole owner.
	return t.Test(alpha)
}

// TestTheorem runs the test at the theorem's proved α. A false Accepted
// certifies that the theorem's adversary cannot schedule the set at the
// original speeds.
func TestTheorem(ts task.Set, p machine.Platform, thm Theorem) (Report, error) {
	alpha := thm.Alpha()
	if math.IsNaN(alpha) {
		return Report{}, fmt.Errorf("core: unknown theorem %d", int(thm))
	}
	return Test(ts, p, thm.Scheduler(), alpha)
}

// MinAlpha returns the smallest augmentation (within tol) at which the
// test accepts the set, searched over [lo, hi] by bisection; ok is false
// when even hi does not suffice. Augmentations below 1 are legal and
// model a uniformly slower platform (Test(p, α) decides identically to
// Test(p.Scaled(α), 1)), which is what the approximation-ratio
// measurements need.
//
// The returned value is always one at which the test actually accepted
// (the final bisection verifies it); if the test already accepts at lo,
// lo itself is returned. Acceptance of the paper's first-fit tests is
// monotone in α in practice, but callers needing a proof-grade bracket
// should pick lo below the adversary scaling — any accepting α implies a
// feasible partition at scaling α, so the test provably rejects below
// σ_part.
func MinAlpha(ts task.Set, p machine.Platform, sch Scheduler, lo, hi, tol float64) (alpha float64, ok bool, err error) {
	t, err := NewTester(ts, p, sch)
	if err != nil {
		// Preserve the bracket check's precedence over instance errors for
		// callers that probe with invalid brackets on invalid instances.
		if !(lo > 0) || hi < lo {
			return 0, false, fmt.Errorf("core: MinAlpha bracket [%v, %v] invalid", lo, hi)
		}
		return 0, false, err
	}
	return t.MinAlpha(lo, hi, tol)
}
