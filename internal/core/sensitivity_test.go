package core

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func TestMaxWCETSimple(t *testing.T) {
	// One task C=2, P=10 on speed 1, EDF, α=1: headroom up to C=10.
	ts := task.Set{{Name: "a", WCET: 2, Period: 10}}
	p := machine.New(1)
	c, ok, err := MaxWCET(ts, p, EDF, 1, 0)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if c != 10 {
		t.Errorf("MaxWCET = %d, want 10", c)
	}
	// With a second task eating half the machine: headroom to C=5.
	ts2 := task.Set{
		{Name: "a", WCET: 2, Period: 10},
		{Name: "b", WCET: 5, Period: 10},
	}
	c, ok, err = MaxWCET(ts2, p, EDF, 1, 0)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if c != 5 {
		t.Errorf("MaxWCET = %d, want 5", c)
	}
}

func TestMaxWCETAlphaScales(t *testing.T) {
	ts := task.Set{{WCET: 2, Period: 10}}
	p := machine.New(1)
	c, ok, err := MaxWCET(ts, p, EDF, 2, 0)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if c != 20 {
		t.Errorf("MaxWCET at α=2 = %d, want 20", c)
	}
}

func TestMaxWCETRejectedSet(t *testing.T) {
	ts := task.Set{{WCET: 9, Period: 10}, {WCET: 9, Period: 10}}
	p := machine.New(1)
	_, ok, err := MaxWCET(ts, p, EDF, 1, 0)
	if err != nil || ok {
		t.Errorf("rejected set: ok=%v err=%v", ok, err)
	}
}

func TestMaxWCETValidation(t *testing.T) {
	ts := task.Set{{WCET: 1, Period: 2}}
	p := machine.New(1)
	if _, _, err := MaxWCET(ts, p, EDF, 1, 5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, _, err := MaxWCET(ts, p, EDF, -1, 0); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, _, err := MaxWCET(task.Set{}, p, EDF, 1, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := MaxWCET(ts, machine.Platform{}, EDF, 1, 0); err == nil {
		t.Error("empty platform accepted")
	}
}

// Property: the returned WCET is accepted and WCET+1 is rejected.
func TestMaxWCETIsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(3)
		ts := make(task.Set, n)
		for i := range ts {
			p := int64(10 + rng.Intn(100))
			c := int64(1 + rng.Intn(int(p)/4))
			ts[i] = task.Task{WCET: c, Period: p}
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.5 + rng.Float64()*2
		}
		p := machine.New(speeds...)
		sch := Scheduler(rng.Intn(2))
		i := rng.Intn(n)
		cMax, ok, err := MaxWCET(ts, p, sch, 1, i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		mod := ts.Clone()
		mod[i].WCET = cMax
		rep, err := Test(mod, p, sch, 1)
		if err != nil || !rep.Accepted {
			t.Fatalf("trial %d: MaxWCET %d not accepted (%v)", trial, cMax, err)
		}
		mod[i].WCET = cMax + 1
		rep, err = Test(mod, p, sch, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Accepted {
			t.Fatalf("trial %d: MaxWCET %d not maximal", trial, cMax)
		}
	}
}

func TestWCETHeadroom(t *testing.T) {
	ts := task.Set{
		{Name: "a", WCET: 2, Period: 10},
		{Name: "b", WCET: 5, Period: 10},
	}
	p := machine.New(1)
	h, err := WCETHeadroom(ts, p, EDF, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[0]-2.5) > 1e-9 { // 5/2
		t.Errorf("headroom[0] = %v, want 2.5", h[0])
	}
	if math.Abs(h[1]-1.6) > 1e-9 { // 8/5
		t.Errorf("headroom[1] = %v, want 1.6", h[1])
	}
	// Rejected set: NaN entries.
	bad := task.Set{{WCET: 9, Period: 10}, {WCET: 9, Period: 10}}
	h, err = WCETHeadroom(bad, p, EDF, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range h {
		if !math.IsNaN(v) {
			t.Errorf("headroom[%d] = %v, want NaN", i, v)
		}
	}
}
