// Package benchfmt is the repository's benchmark interchange format:
// parsing of `go test -bench` output lines, the JSON suite document the
// results/BENCH_N.json files carry, and baseline comparison so a later
// run can gate on regressions against an earlier one. It is shared by
// cmd/benchjson (which produces the files) and cmd/loadgen (which
// records load-test latencies in the same shape).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Extra carries custom units emitted via
// testing.B.ReportMetric (e.g. the serve benchmarks' p50/p99 latency and
// requests-per-second figures), keyed by the unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Metric reads a named metric off the result: the standard field names
// ns_per_op / bytes_per_op / allocs_per_op, or any Extra unit string.
func (r Result) Metric(name string) (float64, bool) {
	switch name {
	case "ns_per_op":
		return r.NsPerOp, true
	case "bytes_per_op":
		return r.BytesPerOp, true
	case "allocs_per_op":
		return r.AllocsPerOp, true
	}
	v, ok := r.Extra[name]
	return v, ok
}

// Suite is the file-level document.
type Suite struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// Find returns the named result.
func (s Suite) Find(name string) (Result, bool) {
	for _, r := range s.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// gomaxprocsSuffix strips the benchmark name's -N GOMAXPROCS suffix so
// records compare across hosts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseLine parses one `go test -bench` output line such as
//
//	BenchmarkMinAlpha-8   6266   58375 ns/op   3840 B/op   15 allocs/op
//	BenchmarkServeTest-8  912    131k ns/op    220 p50-µs  850 p99-µs
//
// The fields after the iteration count are (value, unit) pairs: ns/op,
// B/op and allocs/op land in the standard Result fields, any other unit
// (testing.B.ReportMetric) lands in Extra. A line without ns/op is not a
// benchmark result.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}

// ParseOutput collects every benchmark result line in a `go test -bench`
// transcript.
func ParseOutput(raw []byte) []Result {
	var out []Result
	for _, line := range strings.Split(string(raw), "\n") {
		if r, ok := ParseLine(strings.TrimSpace(line)); ok {
			out = append(out, r)
		}
	}
	return out
}

// Load reads a suite document from disk.
func Load(path string) (Suite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, err
	}
	var s Suite
	if err := json.Unmarshal(raw, &s); err != nil {
		return Suite{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return s, nil
}

// Write renders the suite as indented JSON at path.
func (s Suite) Write(path string) error {
	doc, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}

// Regression is one metric that got worse between two suites, as a
// fraction of the baseline value (0.5 = 50% slower).
type Regression struct {
	Name     string
	Metric   string
	Baseline float64
	Current  float64
	Fraction float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %g -> %g (+%.1f%%)", r.Name, r.Metric, r.Baseline, r.Current, r.Fraction*100)
}

// Compare reports every benchmark present in both suites whose metric
// regressed by more than maxRegress (a fraction; lower metric values are
// better, which holds for every unit the suite records). Benchmarks only
// one side has, and baselines at zero, are skipped — the gate compares
// trajectories, it does not demand identical suites.
func Compare(baseline, current Suite, metric string, maxRegress float64) []Regression {
	var regs []Regression
	for _, cur := range current.Results {
		base, ok := baseline.Find(cur.Name)
		if !ok {
			continue
		}
		bv, bok := base.Metric(metric)
		cv, cok := cur.Metric(metric)
		if !bok || !cok || bv <= 0 {
			continue
		}
		if frac := (cv - bv) / bv; frac > maxRegress {
			regs = append(regs, Regression{Name: cur.Name, Metric: metric, Baseline: bv, Current: cv, Fraction: frac})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Fraction > regs[j].Fraction })
	return regs
}
