package benchfmt

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	for _, tc := range []struct {
		line string
		want Result
		ok   bool
	}{
		{
			line: "BenchmarkMinAlpha-8   \t6266\t     58375 ns/op\t    3840 B/op\t      15 allocs/op",
			want: Result{Name: "BenchmarkMinAlpha", Iterations: 6266, NsPerOp: 58375, BytesPerOp: 3840, AllocsPerOp: 15},
			ok:   true,
		},
		{
			line: "BenchmarkSolverReuse/solver-4 \t304632\t       986.6 ns/op\t       0 B/op\t       0 allocs/op",
			want: Result{Name: "BenchmarkSolverReuse/solver", Iterations: 304632, NsPerOp: 986.6},
			ok:   true,
		},
		{
			line: "BenchmarkNoMem \t100\t 12 ns/op",
			want: Result{Name: "BenchmarkNoMem", Iterations: 100, NsPerOp: 12},
			ok:   true,
		},
		{
			// testing.B.ReportMetric custom units land in Extra.
			line: "BenchmarkServeTest-8 \t912\t 131000 ns/op\t 220.5 p50-µs/op\t 850 p99-µs/op\t 7633 req/s",
			want: Result{Name: "BenchmarkServeTest", Iterations: 912, NsPerOp: 131000,
				Extra: map[string]float64{"p50-µs/op": 220.5, "p99-µs/op": 850, "req/s": 7633}},
			ok: true,
		},
		{line: "PASS", ok: false},
		{line: "ok  \tpartfeas\t1.718s", ok: false},
		{line: "goos: linux", ok: false},
		{line: "BenchmarkBroken \t100\t twelve ns/op", ok: false},
	} {
		got, ok := ParseLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parse(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parse(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

func TestParseOutput(t *testing.T) {
	raw := []byte("goos: linux\nBenchmarkA-8 \t100\t 50 ns/op\nnoise\nBenchmarkB-8 \t200\t 70 ns/op\t 3 widgets/op\nPASS\n")
	got := ParseOutput(raw)
	if len(got) != 2 || got[0].Name != "BenchmarkA" || got[1].Extra["widgets/op"] != 3 {
		t.Fatalf("ParseOutput = %+v", got)
	}
}

func TestSuiteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	s := Suite{
		Generated: "2026-01-01T00:00:00Z",
		GoVersion: "go1.22",
		Bench:     ".",
		Results: []Result{
			{Name: "BenchmarkX", Iterations: 10, NsPerOp: 123.5, Extra: map[string]float64{"p99-µs": 9}},
		},
	}
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, s)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load(missing) succeeded")
	}
}

func TestCompare(t *testing.T) {
	base := Suite{Results: []Result{
		{Name: "BenchmarkFast", NsPerOp: 100},
		{Name: "BenchmarkSlow", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
		{Name: "BenchmarkZero", NsPerOp: 0},
		{Name: "BenchmarkLat", NsPerOp: 10, Extra: map[string]float64{"p99-µs": 200}},
	}}
	cur := Suite{Results: []Result{
		{Name: "BenchmarkFast", NsPerOp: 109},   // +9%: under the gate
		{Name: "BenchmarkSlow", NsPerOp: 1500},  // +50%: regression
		{Name: "BenchmarkNew", NsPerOp: 999999}, // no baseline: skipped
		{Name: "BenchmarkZero", NsPerOp: 5},     // zero baseline: skipped
		{Name: "BenchmarkLat", NsPerOp: 10, Extra: map[string]float64{"p99-µs": 500}},
	}}
	regs := Compare(base, cur, "ns_per_op", 0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("Compare ns_per_op = %+v, want only BenchmarkSlow", regs)
	}
	if regs[0].Fraction != 0.5 {
		t.Errorf("Fraction = %g, want 0.5", regs[0].Fraction)
	}
	if s := regs[0].String(); s == "" {
		t.Error("empty Regression string")
	}
	// Custom units gate the same way.
	regs = Compare(base, cur, "p99-µs", 0.10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkLat" || regs[0].Current != 500 {
		t.Fatalf("Compare p99-µs = %+v, want only BenchmarkLat", regs)
	}
	// An improvement is never a regression.
	if regs := Compare(cur, base, "ns_per_op", 0); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}
