package faultinject

import (
	"strings"
	"sync"
	"testing"
)

func TestInactiveIsNoop(t *testing.T) {
	Hit(SiteTrial, 0) // must not panic
}

func TestFiresOnceAtMatchingIndex(t *testing.T) {
	fired := 0
	off := Activate(Plan{Site: SiteTrial, N: 5, OnFire: func() { fired++ }})
	defer off()
	for i := int64(0); i < 10; i++ {
		Hit(SiteTrial, i)
	}
	Hit(SiteTrial, 5) // repeated index must not re-fire
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
}

func TestSiteMismatchDoesNotFire(t *testing.T) {
	off := Activate(Plan{Site: SiteSimEvent, N: 1, Panic: true})
	defer off()
	Hit(SiteTrial, 1) // different site: no panic
}

func TestPanicPayloadNamesSiteAndIndex(t *testing.T) {
	off := Activate(Plan{Site: SiteSimMachine, N: 2, Panic: true})
	defer off()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, string(SiteSimMachine)) || !strings.Contains(msg, "2") {
			t.Errorf("payload %q missing site/index", msg)
		}
	}()
	Hit(SiteSimMachine, 2)
}

func TestConcurrentHitsFireOnce(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	off := Activate(Plan{Site: SiteExactNode, N: 7, OnFire: func() {
		mu.Lock()
		fired++
		mu.Unlock()
	}})
	defer off()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Hit(SiteExactNode, 7)
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Errorf("fired %d times under concurrency, want 1", fired)
	}
}

func TestDoubleActivatePanics(t *testing.T) {
	off := Activate(Plan{Site: SiteTrial, N: 0})
	defer off()
	defer func() {
		if recover() == nil {
			t.Error("second Activate did not panic")
		}
	}()
	Activate(Plan{Site: SiteTrial, N: 1})
}
