package faultinject

import (
	"strings"
	"sync"
	"testing"
)

func TestInactiveIsNoop(t *testing.T) {
	Hit(SiteTrial, 0) // must not panic
}

func TestFiresOnceAtMatchingIndex(t *testing.T) {
	fired := 0
	off := Activate(Plan{Site: SiteTrial, N: 5, OnFire: func() { fired++ }})
	defer off()
	for i := int64(0); i < 10; i++ {
		Hit(SiteTrial, i)
	}
	Hit(SiteTrial, 5) // repeated index must not re-fire
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
}

func TestSiteMismatchDoesNotFire(t *testing.T) {
	off := Activate(Plan{Site: SiteSimEvent, N: 1, Panic: true})
	defer off()
	Hit(SiteTrial, 1) // different site: no panic
}

func TestPanicPayloadNamesSiteAndIndex(t *testing.T) {
	off := Activate(Plan{Site: SiteSimMachine, N: 2, Panic: true})
	defer off()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, string(SiteSimMachine)) || !strings.Contains(msg, "2") {
			t.Errorf("payload %q missing site/index", msg)
		}
	}()
	Hit(SiteSimMachine, 2)
}

func TestConcurrentHitsFireOnce(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	off := Activate(Plan{Site: SiteExactNode, N: 7, OnFire: func() {
		mu.Lock()
		fired++
		mu.Unlock()
	}})
	defer off()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Hit(SiteExactNode, 7)
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Errorf("fired %d times under concurrency, want 1", fired)
	}
}

func TestNthHitTriggerIgnoresIndex(t *testing.T) {
	fired := -1
	off := Activate(Plan{Site: SiteWALAppend, Nth: 3, OnFire: func() { fired = 1 }})
	defer off()
	// Indices deliberately all zero: only the call count may trigger.
	Hit(SiteWALAppend, 0)
	if fired != -1 {
		t.Fatal("fired on hit 1, want hit 3")
	}
	Hit(SiteWALAppend, 0)
	if fired != -1 {
		t.Fatal("fired on hit 2, want hit 3")
	}
	Hit(SiteWALAppend, 0)
	if fired != 1 {
		t.Fatal("did not fire on hit 3")
	}
	fired = 0
	Hit(SiteWALAppend, 0) // hit 4: must not re-fire
	if fired != 0 {
		t.Error("re-fired after the Nth hit")
	}
}

func TestNthHitCountsOnlyMatchingSite(t *testing.T) {
	fired := 0
	off := Activate(Plan{Site: SiteWALFsync, Nth: 2, OnFire: func() { fired++ }})
	defer off()
	Hit(SiteWALAppend, 0) // other site: not counted
	Hit(SiteWALFsync, 0)  // hit 1
	if fired != 0 {
		t.Fatal("fired early: foreign site was counted")
	}
	Hit(SiteWALFsync, 0) // hit 2
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
}

func TestCheckErrReturnsInjectedError(t *testing.T) {
	injected := errInjected
	off := Activate(Plan{Site: SiteWALAppend, Nth: 2, Err: injected, Partial: 7})
	defer off()
	if _, ok := CheckErr(SiteWALAppend, 0); ok {
		t.Fatal("fired on hit 1, want hit 2")
	}
	p, ok := CheckErr(SiteWALAppend, 0)
	if !ok {
		t.Fatal("did not fire on hit 2")
	}
	if p.Err != injected || p.Partial != 7 {
		t.Errorf("plan = %+v, want Err=errInjected Partial=7", p)
	}
	if _, ok := CheckErr(SiteWALAppend, 0); ok {
		t.Error("re-fired after firing once")
	}
}

func TestCheckErrInactiveIsNoop(t *testing.T) {
	if _, ok := CheckErr(SiteWALAppend, 0); ok {
		t.Error("fired with no active plan")
	}
}

var errInjected = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "injected" }

func TestDoubleActivatePanics(t *testing.T) {
	off := Activate(Plan{Site: SiteTrial, N: 0})
	defer off()
	defer func() {
		if recover() == nil {
			t.Error("second Activate did not panic")
		}
	}()
	Activate(Plan{Site: SiteTrial, N: 1})
}
