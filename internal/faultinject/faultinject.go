// Package faultinject provides deterministic, test-only fault hooks for
// the long-running pipeline stages: the experiment trial executor, the
// partition-simulation worker pool, the simulator event loop and the
// exact branch-and-bound search.
//
// Instrumented code calls Hit(site, idx) at each unit of work, passing a
// deterministic index (trial number, machine number, event count, node
// count). When a Plan is active for that site and its N matches idx, the
// configured fault fires: an optional callback (typically a context
// cancel), an optional delay, and optionally a panic. Because firing is
// keyed on the index the instrumented code supplies — not on global call
// order — the same fault hits the same unit of work at any worker count,
// which is what lets the robustness tests run the full matrix under
// -race.
//
// When no plan is active, Hit is a single atomic pointer load, so the
// hooks are safe to leave in production paths. Activation is process
// global and not meant for concurrent tests; tests that inject faults
// must not run in t.Parallel.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Site identifies one instrumented point.
type Site string

// The instrumented sites.
const (
	// SiteTrial fires per experiment trial; idx is the trial index.
	SiteTrial Site = "experiments/trial"
	// SiteSimMachine fires per machine replay; idx is the machine index.
	SiteSimMachine Site = "sim/machine"
	// SiteSimEvent fires per simulator scheduling event; idx is the
	// machine-local event count.
	SiteSimEvent Site = "sim/event"
	// SiteExactNode fires periodically inside the exact search; idx is
	// the visited-node count at the check.
	SiteExactNode Site = "exact/node"
)

// Plan describes one deterministic fault.
type Plan struct {
	// Site selects the instrumented point.
	Site Site
	// N is the index at which the fault fires (matched against the idx
	// the instrumented code passes to Hit).
	N int64
	// OnFire, when non-nil, runs first — typically a context cancel.
	OnFire func()
	// Delay, when positive, sleeps before returning or panicking.
	Delay time.Duration
	// Panic, when true, panics with a recognizable payload after OnFire
	// and Delay.
	Panic bool
}

type state struct {
	plan  Plan
	fired atomic.Bool
}

var active atomic.Pointer[state]

// Activate installs the plan and returns a deactivate function. Only one
// plan can be active at a time; Activate panics if one already is, which
// surfaces tests that forgot to deactivate.
func Activate(p Plan) (deactivate func()) {
	st := &state{plan: p}
	if !active.CompareAndSwap(nil, st) {
		panic("faultinject: a plan is already active")
	}
	return func() { active.CompareAndSwap(st, nil) }
}

// Hit is called by instrumented code with its deterministic work index.
// It fires the active plan at most once, when site and index match.
func Hit(site Site, idx int64) {
	st := active.Load()
	if st == nil || st.plan.Site != site || idx != st.plan.N {
		return
	}
	if !st.fired.CompareAndSwap(false, true) {
		return
	}
	p := st.plan
	if p.OnFire != nil {
		p.OnFire()
	}
	if p.Delay > 0 {
		time.Sleep(p.Delay)
	}
	if p.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at %s idx %d", site, idx))
	}
}
