// Package faultinject provides deterministic, test-only fault hooks for
// the long-running pipeline stages: the experiment trial executor, the
// partition-simulation worker pool, the simulator event loop, the exact
// branch-and-bound search, and the durability layer's write-ahead log.
//
// Instrumented code calls Hit(site, idx) at each unit of work, passing a
// deterministic index (trial number, machine number, event count, node
// count). When a Plan is active for that site and its trigger matches,
// the configured fault fires: an optional callback (typically a context
// cancel), an optional delay, and optionally a panic. Two triggers
// exist:
//
//   - N matches the index the instrumented code supplies, so the same
//     fault hits the same unit of work at any worker count — what lets
//     the robustness tests run the full matrix under -race.
//   - Nth (when > 0) instead counts calls: the plan fires on the Nth
//     hit of the site regardless of the supplied index. Crash-matrix
//     tests use it to land a fault in the middle of a group-commit
//     batch, where per-record indices are not known up front.
//
// IO-shaped code calls CheckErr(site, idx) instead, which additionally
// returns the plan's Err so the fault can surface as a failed syscall
// (and, for torn-write simulation, reports how many bytes of the
// pending record to write before failing — Plan.Partial).
//
// When no plan is active, Hit and CheckErr are a single atomic pointer
// load, so the hooks are safe to leave in production paths. Activation
// is process global and not meant for concurrent tests; tests that
// inject faults must not run in t.Parallel.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Site identifies one instrumented point.
type Site string

// The instrumented sites.
const (
	// SiteTrial fires per experiment trial; idx is the trial index.
	SiteTrial Site = "experiments/trial"
	// SiteSimMachine fires per machine replay; idx is the machine index.
	SiteSimMachine Site = "sim/machine"
	// SiteSimEvent fires per simulator scheduling event; idx is the
	// machine-local event count.
	SiteSimEvent Site = "sim/event"
	// SiteExactNode fires periodically inside the exact search; idx is
	// the visited-node count at the check.
	SiteExactNode Site = "exact/node"

	// SiteWALAppend fires inside the write-ahead log's append, before
	// the record body is written; idx is the record's op index. With
	// Partial ≥ 0 only that many bytes of the record reach the file —
	// the torn-write crash.
	SiteWALAppend Site = "oplog/append"
	// SiteWALFsync fires before a WAL fsync; idx is the op index the
	// sync would make durable.
	SiteWALFsync Site = "oplog/fsync"
	// SiteWALRotate fires before a segment rotation; idx is the first
	// op index of the would-be new segment.
	SiteWALRotate Site = "oplog/rotate"
	// SiteSnapshotWrite fires inside snapshot persistence, before the
	// temp file is renamed into place; idx is the snapshot's op index.
	SiteSnapshotWrite Site = "oplog/snapshot"
	// SiteWALReplay fires per replayed op during recovery; idx is the
	// op index about to be applied.
	SiteWALReplay Site = "oplog/replay"

	// The session-migration crash points, in protocol order. idx is 0
	// except at SiteMigrateReplay, where it is the tail-op index about to
	// be applied on the destination.
	//
	// SiteMigrateSnapshot fires on the source before the prepared
	// snapshot is sent to the destination.
	SiteMigrateSnapshot Site = "migrate/snapshot"
	// SiteMigrateStream fires on the source after the session is fenced
	// and the MigrateOut record is durable, before the WAL tail is
	// streamed in the commit request.
	SiteMigrateStream Site = "migrate/stream"
	// SiteMigrateReplay fires on the destination per replayed tail op
	// during migration commit.
	SiteMigrateReplay Site = "migrate/replay"
	// SiteMigrateCutover fires on the source before the MigrateOut fence
	// record is appended (the ownership cutover point).
	SiteMigrateCutover Site = "migrate/cutover"
)

// Plan describes one deterministic fault.
type Plan struct {
	// Site selects the instrumented point.
	Site Site
	// N is the index at which the fault fires (matched against the idx
	// the instrumented code passes to Hit/CheckErr). Ignored when Nth
	// is set.
	N int64
	// Nth, when > 0, switches the trigger to a hit counter: the plan
	// fires on the Nth call for the site (1-based), regardless of the
	// supplied index. This is what lets a crash-matrix test target the
	// middle of a group-commit batch.
	Nth int64
	// OnFire, when non-nil, runs first — typically a context cancel or
	// a "the crash happened" marker for matrix tests.
	OnFire func()
	// Delay, when positive, sleeps before returning or panicking.
	Delay time.Duration
	// Panic, when true, panics with a recognizable payload after OnFire
	// and Delay.
	Panic bool
	// Err, when non-nil, is returned by CheckErr on fire — the injected
	// syscall failure. Hit ignores it.
	Err error
	// Partial is honored by SiteWALAppend plans: the number of bytes of
	// the pending record to write before failing — the torn-write
	// crash. ≤ 0 writes nothing (a clean crash before the record);
	// ≥ the record length writes it whole (the record is durable but
	// its append still reports the injected error, i.e. unacknowledged).
	Partial int
}

type state struct {
	plan  Plan
	hits  atomic.Int64
	fired atomic.Bool
}

var active atomic.Pointer[state]

// Activate installs the plan and returns a deactivate function. Only one
// plan can be active at a time; Activate panics if one already is, which
// surfaces tests that forgot to deactivate.
func Activate(p Plan) (deactivate func()) {
	st := &state{plan: p}
	if !active.CompareAndSwap(nil, st) {
		panic("faultinject: a plan is already active")
	}
	return func() { active.CompareAndSwap(st, nil) }
}

// matches decides whether this call triggers the plan: a hit-count match
// when Nth is set, an index match otherwise.
func (st *state) matches(site Site, idx int64) bool {
	if st.plan.Site != site {
		return false
	}
	if st.plan.Nth > 0 {
		return st.hits.Add(1) == st.plan.Nth
	}
	return idx == st.plan.N
}

// Hit is called by instrumented code with its deterministic work index.
// It fires the active plan at most once, when the trigger matches.
func Hit(site Site, idx int64) {
	st := active.Load()
	if st == nil || !st.matches(site, idx) {
		return
	}
	st.fire(site, idx)
}

// CheckErr is Hit for IO-shaped code: when the plan fires it returns the
// plan (with its Err) and true, so the caller can surface the injected
// failure as a syscall error and honor Partial. Like Hit it fires at
// most once.
func CheckErr(site Site, idx int64) (Plan, bool) {
	st := active.Load()
	if st == nil || !st.matches(site, idx) {
		return Plan{}, false
	}
	if !st.fire(site, idx) {
		return Plan{}, false
	}
	return st.plan, true
}

// fire runs the plan's effects exactly once; it reports whether this
// call was the firing one.
func (st *state) fire(site Site, idx int64) bool {
	if !st.fired.CompareAndSwap(false, true) {
		return false
	}
	p := st.plan
	if p.OnFire != nil {
		p.OnFire()
	}
	if p.Delay > 0 {
		time.Sleep(p.Delay)
	}
	if p.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at %s idx %d", site, idx))
	}
	return true
}
