package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/dbf"
	"partfeas/internal/partition"
	"partfeas/internal/task"
	"partfeas/internal/workload"
)

// E15ConstrainedDeadlines extends the algorithm beyond the paper's
// implicit-deadline model: tasks get deadlines D = ratio·P and the
// first-fit admission becomes processor-demand analysis. The experiment
// sweeps the deadline ratio and compares admissions: exact DBF, the
// (1+1/k)-approximate DBF for k ∈ {1, 4}, and the simple density test
// (Σ C/D ≤ α·s) — quantifying the acceptance each cheaper test gives up
// as deadlines tighten.
func E15ConstrainedDeadlines(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	n, m := 10, 3
	if cfg.Quick {
		n = 8
	}
	t := &Table{
		ID:      "E15",
		Title:   fmt.Sprintf("Constrained deadlines: first-fit admission comparison (n=%d, m=%d, α=1)", n, m),
		Columns: []string{"D/P", "density", "approx k=1", "approx k=4", "exact DBF"},
	}
	ratios := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5}
	if cfg.Quick {
		ratios = []float64{1.0, 0.7, 0.5}
	}
	for _, ratio := range ratios {
		counts := make([]int, 4) // density, k=1, k=4, exact
		var mu sync.Mutex
		expName := fmt.Sprintf("E15/%.2f", ratio)
		err := cfg.forEachTrial("E15", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			plat, err := workload.SpeedsUniform.Platform(rng, m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, n, 0.55*plat.TotalSpeed())
			if err != nil {
				return err
			}
			set := make(dbf.Set, n)
			for i, u := range us {
				p, err := workload.LogUniformPeriod(rng, 20, 2000)
				if err != nil {
					return err
				}
				c := int64(u * float64(p))
				if c < 1 {
					c = 1
				}
				d := int64(ratio * float64(p))
				if d < c {
					d = c
				}
				if d > p {
					d = p
				}
				set[i] = dbf.Task{Name: fmt.Sprintf("t%d", i), WCET: c, Deadline: d, Period: p}
			}
			if set.Validate() != nil {
				return nil
			}
			accepted := make([]bool, 4)
			// Density baseline: FF-EDF on the density transformation
			// (period := deadline), a sufficient constrained test.
			dense := make(task.Set, n)
			for i, tk := range set {
				dense[i] = task.Task{Name: tk.Name, WCET: tk.WCET, Period: tk.Deadline}
			}
			res, err := partition.Partition(dense, plat, partition.Paper(partition.EDFAdmission{}, 1))
			if err != nil {
				return err
			}
			accepted[0] = res.Feasible
			for idx, k := range []int{1, 4, 0} {
				ok, _, err := dbf.FirstFit(set, plat, 1, k)
				if err != nil {
					return err
				}
				accepted[idx+1] = ok
			}
			mu.Lock()
			for i, a := range accepted {
				if a {
					counts[i]++
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		den := float64(trials)
		t.AddRow(ratio, float64(counts[0])/den, float64(counts[1])/den,
			float64(counts[2])/den, float64(counts[3])/den)
	}
	t.Notes = append(t.Notes,
		"expected dominance at every ratio: exact ≥ approx k=4 ≥ approx k=1 ≥ density",
		"at D/P = 1 all four coincide with the paper's implicit-deadline utilization test",
		fmt.Sprintf("seed=%d trials/ratio=%d total-load=0.55·Σs", cfg.Seed, trials),
	)
	return t, nil
}
