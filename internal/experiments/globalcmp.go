package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/fractional"
	"partfeas/internal/sim"
	"partfeas/internal/workload"
)

// E14GlobalBaseline compares the partitioned test against the scheduler
// class the paper gives up: global EDF with free migration, simulated
// over one hyperperiod. Neither dominates — global EDF handles some
// unpartitionable sets, while the Dhall effect makes it miss on sets any
// partition handles easily — which motivates the paper's choice to bound
// the loss of partitioning against the *fluid* adversary instead.
func E14GlobalBaseline(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	n, m := 8, 3
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("Partitioned FF-EDF vs simulated global EDF (n=%d, m=%d, identical speeds)", n, m),
		Columns: []string{"U/Σs", "LP-feasible", "FF-EDF ok", "global-EDF ok", "part-only", "global-only"},
	}
	loads := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	if cfg.Quick {
		loads = []float64{0.6, 0.8, 0.95}
	}
	for _, load := range loads {
		var (
			mu                             sync.Mutex
			lpOK, ffOK, glOK, pOnly, gOnly int
		)
		expName := fmt.Sprintf("E14/%.2f", load)
		err := cfg.forEachTrial("E14", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			plat, err := workload.SpeedsIdentical.Platform(rng, m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, n, load*plat.TotalSpeed())
			if err != nil {
				return err
			}
			periods, err := workload.DivisorGridPeriods(rng, n, 2520)
			if err != nil {
				return err
			}
			ts, err := workload.TasksFromUtilizations(us, periods, 0)
			if err != nil {
				return err
			}
			lp := fractional.FeasibleHLS(ts, plat)
			rep, err := core.Test(ts, plat, core.EDF, 1)
			if err != nil {
				return err
			}
			hp, err := ts.Hyperperiod()
			if err != nil {
				return err
			}
			g, err := sim.SimulateGlobal(ts, plat, sim.PolicyEDF, hp)
			if err != nil {
				return err
			}
			gOK := len(g.Misses) == 0
			mu.Lock()
			defer mu.Unlock()
			if lp {
				lpOK++
			}
			if rep.Accepted {
				ffOK++
			}
			if gOK {
				glOK++
			}
			if rep.Accepted && !gOK {
				pOnly++
			}
			if gOK && !rep.Accepted {
				gOnly++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		den := float64(trials)
		t.AddRow(load, float64(lpOK)/den, float64(ffOK)/den, float64(glOK)/den, pOnly, gOnly)
	}
	t.Notes = append(t.Notes,
		"part-only: FF-EDF accepts (provably miss-free) while global EDF misses — the Dhall effect",
		"global-only: migration rescues sets no first-fit partition handles at α=1",
		fmt.Sprintf("seed=%d trials/load=%d", cfg.Seed, trials),
	)
	return t, nil
}
