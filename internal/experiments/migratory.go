package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/fractional"
	"partfeas/internal/openshop"
	"partfeas/internal/workload"
)

// E13MigratorySchedule makes the LP adversary constructive: for every
// HLS-feasible instance it solves the paper's LP, decomposes the witness
// into a cyclic open-shop schedule (Gonzalez–Sahni / Birkhoff), and
// verifies the schedule meets every deadline — including instances the
// partitioned test rejects at α = 1, which demonstrates the genuine
// partitioned/migratory gap the theorems quantify.
func E13MigratorySchedule(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	t := &Table{
		ID:      "E13",
		Title:   "Constructive migratory adversary: LP witness → open-shop schedule → deadlines",
		Columns: []string{"n", "m", "feasible", "built", "verified", "FF-EDF rejects", "avg slices", "max slices"},
	}
	cells := []struct{ n, m int }{{6, 2}, {10, 3}, {16, 4}, {24, 8}}
	if cfg.Quick {
		cells = []struct{ n, m int }{{6, 2}, {10, 3}}
	}
	for _, cell := range cells {
		var (
			mu          sync.Mutex
			feasible    int
			built       int
			verified    int
			ffRejects   int
			totalSlices int
			maxSlices   int
		)
		expName := fmt.Sprintf("E13/%dx%d", cell.n, cell.m)
		err := cfg.forEachTrial("E13", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			plat, err := workload.SpeedsUniform.Platform(rng, cell.m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, cell.n, rng.Range(0.7, 0.98)*plat.TotalSpeed())
			if err != nil {
				return err
			}
			ts, err := workload.TasksFromUtilizations(us, nil, 1000)
			if err != nil {
				return err
			}
			if !fractional.FeasibleHLS(ts, plat) {
				return nil
			}
			ok, u, err := fractional.SolveLP(ts, plat)
			if err != nil {
				return err
			}
			if !ok {
				return nil // boundary disagreement; skip
			}
			sched, err := openshop.FromLP(u, plat, 1e-9)
			if err != nil {
				return fmt.Errorf("%s trial %d: decompose: %w", expName, trial, err)
			}
			verr := openshop.VerifyDeadlines(sched, ts, plat, 1e-5)
			rep, err := core.Test(ts, plat, core.EDF, 1)
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			feasible++
			built++
			if verr == nil {
				verified++
			}
			if !rep.Accepted {
				ffRejects++
			}
			totalSlices += len(sched.Slices)
			if len(sched.Slices) > maxSlices {
				maxSlices = len(sched.Slices)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		avg := 0.0
		if built > 0 {
			avg = float64(totalSlices) / float64(built)
		}
		t.AddRow(cell.n, cell.m, feasible, built, verified, ffRejects, avg, maxSlices)
	}
	t.Notes = append(t.Notes,
		"verified must equal built: every LP-feasible instance admits an explicit migrating schedule",
		"'FF-EDF rejects' counts instances only the migratory scheduler handles at α=1 — the partitioning gap",
		"slices per unit window bound the migration/preemption overhead of the constructed schedule",
		fmt.Sprintf("seed=%d trials/cell=%d", cfg.Seed, trials),
	)
	return t, nil
}
