package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"partfeas/internal/workload"
)

func quickCfg() Config { return Config{Seed: 12345, Quick: true} }

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"hello"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow("needs,quote", 2)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T0 — demo") || !strings.Contains(out, "1.5000") || !strings.Contains(out, "note: hello") {
		t.Errorf("render:\n%s", out)
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, "a,b") || !strings.Contains(csv, "\"needs,quote\"") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestTrialRNGDeterministicAndDistinct(t *testing.T) {
	a := trialRNG(1, "E1", 0)
	b := trialRNG(1, "E1", 0)
	if a.Uint64() != b.Uint64() {
		t.Error("same trial diverged")
	}
	c := trialRNG(1, "E1", 1)
	d := trialRNG(1, "E2", 0)
	a = trialRNG(1, "E1", 0)
	av := a.Uint64()
	if av == c.Uint64() || av == d.Uint64() {
		t.Error("trial streams collide")
	}
}

func TestForEachTrialRunsAll(t *testing.T) {
	seen := make([]bool, 100)
	err := Config{Workers: 8}.forEachTrial("test", 100, func(trial int) error {
		seen[trial] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("trial %d not run", i)
		}
	}
}

func TestForEachTrialPropagatesError(t *testing.T) {
	err := Config{Workers: 4}.forEachTrial("test", 10, func(trial int) error {
		if trial == 5 {
			return strconv.ErrRange
		}
		return nil
	})
	if err != strconv.ErrRange {
		t.Errorf("err = %v", err)
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d, registry has %d", len(ids), len(Registry))
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E"+strconv.Itoa(len(Registry)) {
		t.Errorf("order: %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", quickCfg(), nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// violationCount extracts the "violations" column total from a theorem
// validation table's notes.
func violationNote(tab *Table) string {
	for _, n := range tab.Notes {
		if strings.Contains(n, "violations") {
			return n
		}
	}
	return ""
}

func TestE1NoViolations(t *testing.T) {
	tab, err := E1TheoremI1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(violationNote(tab), "total bound violations: 0") {
		t.Errorf("E1: %v", tab.Notes)
	}
	// Ratios never exceed the bound.
	assertRatioColumnBelow(t, tab, 7, 2.0)
}

func TestE2NoViolations(t *testing.T) {
	tab, err := E2TheoremI2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(violationNote(tab), "total bound violations: 0") {
		t.Errorf("E2: %v", tab.Notes)
	}
	assertRatioColumnBelow(t, tab, 7, 2.4143)
}

func TestE3NoViolations(t *testing.T) {
	tab, err := E3TheoremI3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(violationNote(tab), "total bound violations: 0") {
		t.Errorf("E3: %v", tab.Notes)
	}
	assertRatioColumnBelow(t, tab, 7, 2.98)
}

func TestE4NoViolations(t *testing.T) {
	tab, err := E4TheoremI4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(violationNote(tab), "total bound violations: 0") {
		t.Errorf("E4: %v", tab.Notes)
	}
	assertRatioColumnBelow(t, tab, 7, 3.34)
}

func assertRatioColumnBelow(t *testing.T, tab *Table, col int, bound float64) {
	t.Helper()
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("ratio cell %q: %v", row[col], err)
		}
		if v > bound+1e-6 {
			t.Errorf("ratio %v exceeds bound %v in row %v", v, bound, row)
		}
	}
}

func TestE5Runs(t *testing.T) {
	tab, err := E5RatioDistribution(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("E5 rows = %d, want 4", len(tab.Rows))
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "violations") && !strings.Contains(n, "0 bound") {
			t.Errorf("E5 violations: %s", n)
		}
	}
	// Headroom (last column) must be non-negative: max ratio under bound.
	for _, row := range tab.Rows {
		h, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if h < -1e-6 {
			t.Errorf("negative headroom in %v", row)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tab, err := E6AcceptanceCurves(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Dominance: LP ≥ partitioned ≥ FF-EDF pointwise.
	for _, row := range tab.Rows {
		lp, _ := strconv.ParseFloat(row[1], 64)
		part, _ := strconv.ParseFloat(row[2], 64)
		ffE, _ := strconv.ParseFloat(row[3], 64)
		if part > lp+1e-9 {
			t.Errorf("partitioned acceptance %v above LP %v at load %s", part, lp, row[0])
		}
		if ffE > part+1e-9 {
			t.Errorf("FF-EDF acceptance %v above partitioned %v at load %s", ffE, part, row[0])
		}
	}
}

func TestE7PaperWinsOverNextFit(t *testing.T) {
	tab, err := E7HeuristicAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	frac := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		frac[row[0]] = v
	}
	if frac["paper (FF, util desc, speed asc)"] < frac["next-fit"] {
		t.Errorf("paper FF %v below next-fit %v", frac["paper (FF, util desc, speed asc)"], frac["next-fit"])
	}
}

func TestE8Runs(t *testing.T) {
	tab, err := E8Scaling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("E8 empty")
	}
}

func TestE9SoundnessAndControls(t *testing.T) {
	tab, err := E9Simulation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		misses, _ := strconv.Atoi(row[4])
		if misses != 0 {
			t.Errorf("%s accepted partitions missed %d deadlines", row[0], misses)
		}
		jitterMisses, _ := strconv.Atoi(row[5])
		if jitterMisses != 0 {
			t.Errorf("%s accepted partitions missed %d deadlines under jittered arrivals", row[0], jitterMisses)
		}
		controls, _ := strconv.Atoi(row[6])
		controlMiss, _ := strconv.Atoi(row[7])
		if controls > 0 && controlMiss != controls {
			t.Errorf("%s: only %d/%d overloaded controls missed", row[0], controlMiss, controls)
		}
		accepted, _ := strconv.Atoi(row[2])
		if accepted == 0 {
			t.Errorf("%s: no accepted instances exercised", row[0])
		}
	}
}

func TestE10BelowBounds(t *testing.T) {
	tab, err := E10Tightness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		bound, _ := strconv.ParseFloat(row[1], 64)
		best, _ := strconv.ParseFloat(row[2], 64)
		if best > bound+1e-6 {
			t.Errorf("theorem %s: found ratio %v above bound %v — falsifies the theorem", row[0], best, bound)
		}
		if best <= 0 {
			t.Errorf("theorem %s: no ratio found", row[0])
		}
	}
}

func TestE11Dominance(t *testing.T) {
	tab, err := E11AdmissionAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ll, _ := strconv.ParseFloat(row[1], 64)
		hyp, _ := strconv.ParseFloat(row[2], 64)
		exact, _ := strconv.ParseFloat(row[3], 64)
		if hyp < ll-1e-9 || exact < hyp-1e-9 {
			t.Errorf("admission dominance violated at load %s: ll=%v hyp=%v exact=%v", row[0], ll, hyp, exact)
		}
	}
}

func TestE12InequalitiesHold(t *testing.T) {
	tab, err := E12Constants(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("E12 rows = %d", len(tab.Rows))
	}
	// Paper rows: all three inequality columns > 1 and min α present.
	for _, row := range tab.Rows[:2] {
		for col := 5; col <= 7; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v <= 1 {
				t.Errorf("row %v: inequality column %d = %v not > 1", row[0], col, v)
			}
		}
		if row[8] == "n/a" {
			t.Errorf("row %v: no min α", row[0])
		}
	}
}

func TestE13AllVerified(t *testing.T) {
	tab, err := E13MigratorySchedule(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sawGap := false
	for _, row := range tab.Rows {
		built, _ := strconv.Atoi(row[3])
		verified, _ := strconv.Atoi(row[4])
		if built == 0 {
			t.Errorf("cell %sx%s: no schedules built", row[0], row[1])
		}
		if verified != built {
			t.Errorf("cell %sx%s: %d/%d schedules verified", row[0], row[1], verified, built)
		}
		if rejects, _ := strconv.Atoi(row[5]); rejects > 0 {
			sawGap = true
		}
	}
	_ = sawGap // the gap is workload-dependent; its presence is informative, not required
}

func TestE14GlobalBaseline(t *testing.T) {
	tab, err := E14GlobalBaseline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		lp, _ := strconv.ParseFloat(row[1], 64)
		ff, _ := strconv.ParseFloat(row[2], 64)
		gl, _ := strconv.ParseFloat(row[3], 64)
		// LP upper-bounds both realizable schedulers.
		if ff > lp+1e-9 || gl > lp+1e-9 {
			t.Errorf("load %s: a scheduler beats the fluid bound (lp=%v ff=%v gl=%v)", row[0], lp, ff, gl)
		}
	}
}

func TestE15Dominance(t *testing.T) {
	tab, err := E15ConstrainedDeadlines(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		density, _ := strconv.ParseFloat(row[1], 64)
		k1, _ := strconv.ParseFloat(row[2], 64)
		k4, _ := strconv.ParseFloat(row[3], 64)
		exact, _ := strconv.ParseFloat(row[4], 64)
		if k1 < density-1e-9 || k4 < k1-1e-9 || exact < k4-1e-9 {
			t.Errorf("dominance violated at D/P=%s: density=%v k1=%v k4=%v exact=%v",
				row[0], density, k1, k4, exact)
		}
	}
}

func TestE16Decomposition(t *testing.T) {
	tab, err := E16RMSLossDecomposition(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	total, _ := strconv.ParseFloat(tab.Rows[0][4], 64)
	intrinsic, _ := strconv.ParseFloat(tab.Rows[2][4], 64)
	if total > 2.415 {
		t.Errorf("total max ratio %v exceeds Theorem I.2 bound", total)
	}
	if intrinsic > 1/0.6931471805599453+1e-6 {
		t.Errorf("intrinsic RM loss %v exceeds 1/ln2", intrinsic)
	}
}

func TestE17EDFBeatsDM(t *testing.T) {
	tab, err := E17FixedPriorityConstrained(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		edf, _ := strconv.ParseFloat(row[1], 64)
		dm, _ := strconv.ParseFloat(row[2], 64)
		if dm > edf+0.05 {
			t.Errorf("D/P=%s: DM acceptance %v well above EDF %v", row[0], dm, edf)
		}
	}
}

func TestE18Agreement(t *testing.T) {
	tab, err := E18ParallelSolver(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Errorf("n=%s m=%s: parallel solver disagreed with sequential", row[0], row[1])
		}
	}
}

func TestE19HeadroomAboveOne(t *testing.T) {
	tab, err := E19WCETHeadroom(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		minH, _ := strconv.ParseFloat(row[5], 64)
		if minH < 1-1e-9 {
			t.Errorf("load %s: bottleneck headroom %v below 1 on accepted instances", row[0], minH)
		}
	}
}

func TestE20PolicyDominance(t *testing.T) {
	tab, err := E20ArbitraryDeadlinePolicies(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		dm, _ := strconv.ParseFloat(row[1], 64)
		opa, _ := strconv.ParseFloat(row[2], 64)
		edf, _ := strconv.ParseFloat(row[3], 64)
		if opa < dm-1e-9 {
			t.Errorf("D/P=%s: OPA %v below DM %v — contradicts optimality", row[0], opa, dm)
		}
		if edf < opa-1e-9 {
			t.Errorf("D/P=%s: EDF %v below OPA %v — contradicts EDF optimality", row[0], edf, opa)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in quick mode still takes a few seconds")
	}
	var buf bytes.Buffer
	tables, err := RunAll(quickCfg(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Registry) {
		t.Errorf("ran %d tables, want %d", len(tables), len(Registry))
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, id+" — ") {
			t.Errorf("output missing %s", id)
		}
	}
}

// tablesEqual compares two rendered tables cell-for-cell.
func tablesEqual(a, b *Table) bool {
	if a.ID != b.ID || a.Title != b.Title || len(a.Rows) != len(b.Rows) || len(a.Notes) != len(b.Notes) {
		return false
	}
	for i := range a.Rows {
		if strings.Join(a.Rows[i], "|") != strings.Join(b.Rows[i], "|") {
			return false
		}
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			return false
		}
	}
	return true
}

// TestParallelExecutorDeterministic asserts the worker pool is invisible
// in the results: E1 and E6 produce bit-identical tables at 1, 2 and 8
// workers (1 worker being the sequential runner).
func TestParallelExecutorDeterministic(t *testing.T) {
	for _, run := range []struct {
		id string
		fn Runner
	}{{"E1", E1TheoremI1}, {"E6", E6AcceptanceCurves}} {
		cfg := quickCfg()
		cfg.Workers = 1
		seq, err := run.fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			par, err := run.fn(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !tablesEqual(seq, par) {
				t.Errorf("%s: table at %d workers differs from sequential run\nseq:  %v\npar:  %v",
					run.id, workers, seq.Rows, par.Rows)
			}
		}
	}
}

// TestRunTrialsOrderedAndWrapsErrors pins the executor contract: results
// land at their trial index, and errors carry experiment and trial.
func TestRunTrialsOrderedAndWrapsErrors(t *testing.T) {
	cfg := Config{Seed: 9, Workers: 4}
	out, err := runTrials(cfg, "X", 50, func(trial int, rng *workload.RNG) (int, error) {
		return trial * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	_, err = runTrials(cfg, "X", 10, func(trial int, rng *workload.RNG) (int, error) {
		if trial == 7 {
			return 0, strconv.ErrRange
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "X trial 7") {
		t.Errorf("err = %v, want wrapped trial error", err)
	}
}

// TestRunTrialsRNGMatchesSequentialDerivation asserts the executor hands
// each trial exactly the RNG stream the sequential runner would use.
func TestRunTrialsRNGMatchesSequentialDerivation(t *testing.T) {
	cfg := Config{Seed: 123, Workers: 8}
	out, err := runTrials(cfg, "E9/rng", 20, func(trial int, rng *workload.RNG) (uint64, error) {
		return rng.Uint64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial, got := range out {
		if want := trialRNG(cfg.Seed, "E9/rng", trial).Uint64(); got != want {
			t.Fatalf("trial %d: rng stream diverged", trial)
		}
	}
}
