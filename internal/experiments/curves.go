package experiments

import (
	"errors"
	"fmt"

	"partfeas/internal/core"
	"partfeas/internal/exact"
	"partfeas/internal/fractional"
	"partfeas/internal/partition"
	"partfeas/internal/workload"
)

// E6AcceptanceCurves sweeps normalized load U/Σs and reports acceptance
// fractions: the LP adversary, the exact partitioned adversary, and the
// paper's FF-EDF / FF-RMS tests at α = 1 (no augmentation) — the
// figure-style series showing where each test's acceptance collapses and
// how far the unaugmented greedy test trails the adversaries.
func E6AcceptanceCurves(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	n, m := 12, 4
	if cfg.Quick {
		n, m = 8, 3
	}
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Acceptance vs normalized load (UUniFast n=%d, uniform speeds m=%d, α=1)", n, m),
		Columns: []string{"U/Σs", "LP-feasible", "part-feasible", "FF-EDF", "FF-RMS(LL)", "skipped"},
	}
	loads := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0, 1.05, 1.1, 1.2}
	if cfg.Quick {
		loads = []float64{0.5, 0.7, 0.9, 1.0, 1.1}
	}
	// acceptance is one trial's verdicts, reduced in trial order after the
	// worker pool drains. Exported fields so trials JSON round-trip
	// through a Checkpoint.
	type acceptance struct {
		LP, Part, EDF, RMS bool
		Skip               bool
	}
	for _, load := range loads {
		expName := fmt.Sprintf("E6/%.3f", load)
		results, err := runTrials(cfg, expName, trials, func(trial int, rng *workload.RNG) (acceptance, error) {
			plat, err := workload.SpeedsUniform.Platform(rng, m)
			if err != nil {
				return acceptance{}, err
			}
			us, err := workload.UUniFast(rng, n, load*plat.TotalSpeed())
			if err != nil {
				return acceptance{}, err
			}
			ts, err := workload.TasksFromUtilizations(us, nil, 1000)
			if err != nil {
				return acceptance{}, err
			}
			lpOK := fractional.FeasibleHLS(ts, plat)
			partOK, err := exact.Feasible(ts, plat, exact.Options{})
			if errors.Is(err, exact.ErrBudgetExceeded) {
				return acceptance{Skip: true}, nil
			}
			if err != nil {
				return acceptance{}, err
			}
			repE, err := core.Test(ts, plat, core.EDF, 1)
			if err != nil {
				return acceptance{}, err
			}
			repR, err := core.Test(ts, plat, core.RMS, 1)
			if err != nil {
				return acceptance{}, err
			}
			return acceptance{LP: lpOK, Part: partOK, EDF: repE.Accepted, RMS: repR.Accepted}, nil
		})
		if err != nil {
			return nil, err
		}
		var accLP, accPart, accE, accR, skipped int
		for _, res := range results {
			switch {
			case res.Skip:
				skipped++
			default:
				if res.LP {
					accLP++
				}
				if res.Part {
					accPart++
				}
				if res.EDF {
					accE++
				}
				if res.RMS {
					accR++
				}
			}
		}
		den := float64(trials - skipped)
		if den <= 0 {
			den = 1
		}
		t.AddRow(load, float64(accLP)/den, float64(accPart)/den,
			float64(accE)/den, float64(accR)/den, skipped)
	}
	t.Notes = append(t.Notes,
		"expected shape: LP ≥ partitioned ≥ FF-EDF ≥ FF-RMS(LL) pointwise; all collapse past U/Σs = 1",
		fmt.Sprintf("seed=%d trials/load=%d", cfg.Seed, trials),
	)
	return t, nil
}

// E7HeuristicAblation compares the paper's first-fit configuration
// against bin-packing alternatives (best/worst/next-fit) and order
// ablations (unsorted tasks, fastest-first machines) at a near-critical
// load, reporting acceptance fractions — why the paper's choices matter.
func E7HeuristicAblation(cfg Config) (*Table, error) {
	trials := cfg.trials(400, 40)
	n, m := 12, 4
	load := 0.8
	if cfg.Quick {
		n, m = 8, 3
	}
	type variant struct {
		name string
		cfg  partition.Config
	}
	mk := func(h partition.Heuristic, to partition.TaskOrder, mo partition.MachineOrder) partition.Config {
		return partition.Config{
			Admission:    partition.EDFAdmission{},
			Alpha:        1,
			Heuristic:    h,
			TaskOrder:    to,
			MachineOrder: mo,
		}
	}
	variants := []variant{
		{"paper (FF, util desc, speed asc)", mk(partition.FirstFit, partition.TasksByUtilizationDesc, partition.MachinesBySpeedAsc)},
		{"best-fit", mk(partition.BestFit, partition.TasksByUtilizationDesc, partition.MachinesBySpeedAsc)},
		{"worst-fit", mk(partition.WorstFit, partition.TasksByUtilizationDesc, partition.MachinesBySpeedAsc)},
		{"next-fit", mk(partition.NextFit, partition.TasksByUtilizationDesc, partition.MachinesBySpeedAsc)},
		{"FF, tasks as given", mk(partition.FirstFit, partition.TasksAsGiven, partition.MachinesBySpeedAsc)},
		{"FF, tasks util asc", mk(partition.FirstFit, partition.TasksByUtilizationAsc, partition.MachinesBySpeedAsc)},
		{"FF, machines speed desc", mk(partition.FirstFit, partition.TasksByUtilizationDesc, partition.MachinesBySpeedDesc)},
	}
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("Partitioning heuristic ablation (EDF admission, α=1, U/Σs=%.2f, n=%d, m=%d)", load, n, m),
		Columns: []string{"variant", "accepted", "of", "fraction"},
	}
	// Same instance stream for every variant: differences are purely the
	// heuristic's.
	type inst struct {
		i instance
	}
	instances := make([]inst, trials)
	for trial := 0; trial < trials; trial++ {
		rng := trialRNG(cfg.Seed, "E7", trial)
		plat, err := workload.SpeedsUniform.Platform(rng, m)
		if err != nil {
			return nil, err
		}
		us, err := workload.UUniFast(rng, n, load*plat.TotalSpeed())
		if err != nil {
			return nil, err
		}
		ts, err := workload.TasksFromUtilizations(us, nil, 1000)
		if err != nil {
			return nil, err
		}
		instances[trial] = inst{instance{ts: ts, plat: plat}}
	}
	for _, v := range variants {
		v := v
		verdicts, err := runTrials(cfg, "E7/"+v.name, trials, func(trial int, _ *workload.RNG) (bool, error) {
			res, err := partition.Partition(instances[trial].i.ts, instances[trial].i.plat, v.cfg)
			if err != nil {
				return false, err
			}
			return res.Feasible, nil
		})
		if err != nil {
			return nil, err
		}
		accepted := 0
		for _, ok := range verdicts {
			if ok {
				accepted++
			}
		}
		t.AddRow(v.name, accepted, trials, float64(accepted)/float64(trials))
	}
	t.Notes = append(t.Notes,
		"identical instance stream for every variant",
		fmt.Sprintf("seed=%d trials=%d", cfg.Seed, trials),
	)
	return t, nil
}
