package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/machine"
	"partfeas/internal/sim"
	"partfeas/internal/task"
	"partfeas/internal/workload"
)

// E9Simulation replays accepted partitions in the exact discrete-event
// simulator: every instance the test accepts must run one full
// hyperperiod of synchronous periodic releases with zero deadline misses
// (Theorems II.2/II.3 made executable). As a control, rejected instances
// are forced entirely onto the slowest machine — overloaded by
// construction — and must produce misses, proving the miss detector
// actually fires.
func E9Simulation(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	t := &Table{
		ID:      "E9",
		Title:   "End-to-end soundness: accepted partitions simulate miss-free over a hyperperiod",
		Columns: []string{"scheduler", "policy", "accepted", "jobs", "misses", "jittered misses", "control(overload)", "control misses>0"},
	}
	type cellT struct {
		mu              sync.Mutex
		accepted        int
		jobs            int64
		misses          int
		jitterMisses    int
		controls        int
		controlsMissing int
	}
	schedulers := []struct {
		sch    core.Scheduler
		policy sim.Policy
	}{
		{core.EDF, sim.PolicyEDF},
		{core.RMS, sim.PolicyRM},
	}
	for _, sc := range schedulers {
		cell := &cellT{}
		expName := "E9/" + sc.sch.String()
		err := cfg.forEachTrial("E9", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			n := 4 + rng.Intn(8)
			m := 2 + rng.Intn(3)
			// Integer-friendly platform (exact rational speeds) and
			// divisor-grid periods keep hyperperiods small and simulation
			// exact.
			sf := workload.SpeedsBigLittle
			if rng.Intn(2) == 0 {
				sf = workload.SpeedsIdentical
			}
			plat, err := sf.Platform(rng, m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, n, rng.Range(0.4, 0.9)*plat.TotalSpeed())
			if err != nil {
				return err
			}
			periods, err := workload.DivisorGridPeriods(rng, n, 2520)
			if err != nil {
				return err
			}
			ts, err := workload.TasksFromUtilizations(us, periods, 0)
			if err != nil {
				return err
			}
			rep, err := core.Test(ts, plat, sc.sch, 1)
			if err != nil {
				return err
			}
			if rep.Accepted {
				pres, err := sim.SimulatePartition(ts, plat, rep.Partition.Assignment, sc.policy, 1, 0)
				if err != nil {
					return err
				}
				// Sporadic (sparser) arrivals must be miss-free too:
				// replay each machine's subset under jittered releases.
				jitterMisses, err := simulateJittered(ts, plat, rep.Partition.Assignment, sc.policy, uint64(trial))
				if err != nil {
					return err
				}
				cell.mu.Lock()
				cell.accepted++
				cell.jobs += pres.TotalJobs
				cell.misses += pres.TotalMisses
				cell.jitterMisses += jitterMisses
				cell.mu.Unlock()
				return nil
			}
			// Control: force everything onto the slowest machine —
			// overloaded by construction whenever total utilization
			// exceeds its speed — and confirm the simulator reports
			// misses.
			slowest := 0
			for j := range plat {
				if plat[j].Speed < plat[slowest].Speed {
					slowest = j
				}
			}
			if ts.TotalUtilization() <= plat[slowest].Speed {
				return nil // not actually overloaded; skip control
			}
			forced := make([]int, len(ts))
			for i := range forced {
				forced[i] = slowest
			}
			pres, err := sim.SimulatePartition(ts, plat, forced, sc.policy, 1, 0)
			if err != nil {
				return err
			}
			cell.mu.Lock()
			cell.controls++
			if pres.TotalMisses > 0 {
				cell.controlsMissing++
			}
			cell.mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sc.sch.String(), sc.policy.String(), cell.accepted, cell.jobs,
			cell.misses, cell.jitterMisses, cell.controls, cell.controlsMissing)
	}
	t.Notes = append(t.Notes,
		"misses and jittered misses must be 0 for accepted instances; every overloaded control must miss",
		fmt.Sprintf("seed=%d trials/scheduler=%d horizon=hyperperiod (≤2520)", cfg.Seed, trials),
	)
	return t, nil
}

// simulateJittered replays the partition under sparser, jitter-separated
// sporadic arrivals over a fixed horizon and returns the total miss count
// (expected: zero for accepted partitions — reducing arrival density
// never hurts EDF or fixed priorities). The jitter model is threaded
// through SimulatePartitionOpts, which hands it input-set task indices,
// so each task's arrival sequence is a property of the task alone and the
// same seed replays identically under any partition.
func simulateJittered(ts task.Set, plat machine.Platform, assignment []int, policy sim.Policy, seed uint64) (int, error) {
	pres, err := sim.SimulatePartitionOpts(ts, plat, assignment, policy, 1, 2520, sim.PartitionOptions{
		Arrivals: sim.JitteredArrivals{Seed: seed, MaxJitter: 7},
	})
	if err != nil {
		return 0, err
	}
	return pres.TotalMisses, nil
}
