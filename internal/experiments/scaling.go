package experiments

import (
	"time"

	"partfeas/internal/core"
	"partfeas/internal/workload"
)

// E8Scaling measures the running time of the paper's test across an
// (n, m) grid and reports time/(n·m), which should be near-constant if
// the implementation matches the paper's O(nm) claim (§I; the sort adds
// an O(n log n) term visible only at small m).
func E8Scaling(cfg Config) (*Table, error) {
	sizes := []struct{ n, m int }{
		{64, 4}, {256, 4}, {1024, 4},
		{256, 16}, {1024, 16}, {4096, 16},
		{1024, 64}, {4096, 64}, {16384, 64},
	}
	reps := 50
	if cfg.Quick {
		sizes = []struct{ n, m int }{{64, 4}, {256, 8}, {1024, 16}}
		reps = 5
	}
	t := &Table{
		ID:      "E8",
		Title:   "Running time of FF-EDF at α=2 (O(nm) claim)",
		Columns: []string{"n", "m", "reps", "total", "per-call", "ns/(n·m)"},
	}
	rng := workload.NewRNG(cfg.Seed ^ 0xe8)
	for _, sz := range sizes {
		plat, err := workload.SpeedsUniform.Platform(rng, sz.m)
		if err != nil {
			return nil, err
		}
		us, err := workload.UUniFast(rng, sz.n, 0.8*plat.TotalSpeed())
		if err != nil {
			return nil, err
		}
		ts, err := workload.TasksFromUtilizations(us, nil, 1000)
		if err != nil {
			return nil, err
		}
		// Warm-up run, then timed reps.
		if _, err := core.Test(ts, plat, core.EDF, 2); err != nil {
			return nil, err
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := core.Test(ts, plat, core.EDF, 2); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		perCall := elapsed / time.Duration(reps)
		nsPerNM := float64(perCall.Nanoseconds()) / float64(sz.n*sz.m)
		t.AddRow(sz.n, sz.m, reps, elapsed.Round(time.Microsecond).String(),
			perCall.Round(time.Microsecond).String(), nsPerNM)
	}
	t.Notes = append(t.Notes,
		"ns/(n·m) should be roughly flat down the table if the engine is O(nm)",
		"wall-clock measurement: expect noise; see bench_test.go for testing.B versions",
	)
	return t, nil
}
