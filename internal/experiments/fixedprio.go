package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/dbf"
	"partfeas/internal/workload"
)

// E17FixedPriorityConstrained compares dynamic against static priorities
// in the constrained-deadline first-fit: exact-DBF admission (EDF on each
// machine) versus exact response-time admission under deadline-monotonic
// priorities (the optimal fixed-priority order for D ≤ P). The gap is the
// constrained-deadline analogue of the paper's EDF-vs-RMS split, with
// exact tests on both sides — no Liu–Layland pessimism involved.
func E17FixedPriorityConstrained(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	n, m := 10, 3
	if cfg.Quick {
		n = 8
	}
	t := &Table{
		ID:      "E17",
		Title:   fmt.Sprintf("Constrained deadlines: FF-EDF(DBF) vs FF-DM(RTA) acceptance (n=%d, m=%d, α=1)", n, m),
		Columns: []string{"D/P", "FF-EDF(DBF)", "FF-DM(RTA)", "EDF-only", "DM-only"},
	}
	ratios := []float64{1.0, 0.8, 0.6, 0.5}
	if cfg.Quick {
		ratios = []float64{1.0, 0.6}
	}
	for _, ratio := range ratios {
		var (
			mu                           sync.Mutex
			edfOK, dmOK, edfOnly, dmOnly int
		)
		expName := fmt.Sprintf("E17/%.2f", ratio)
		err := cfg.forEachTrial("E17", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			plat, err := workload.SpeedsUniform.Platform(rng, m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, n, 0.6*plat.TotalSpeed())
			if err != nil {
				return err
			}
			periods, err := workload.AutomotivePeriods(rng, n)
			if err != nil {
				return err
			}
			set := make(dbf.Set, n)
			for i, u := range us {
				p := periods[i]
				c := int64(u * float64(p))
				if c < 1 {
					c = 1
				}
				d := int64(ratio * float64(p))
				if d < c {
					d = c
				}
				if d > p {
					d = p
				}
				set[i] = dbf.Task{Name: fmt.Sprintf("t%d", i), WCET: c, Deadline: d, Period: p}
			}
			if set.Validate() != nil {
				return nil
			}
			okEDF, _, err := dbf.FirstFit(set, plat, 1, 0)
			if err != nil {
				return err
			}
			okDM, _, err := dbf.FirstFitDM(set, plat, 1)
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if okEDF {
				edfOK++
			}
			if okDM {
				dmOK++
			}
			if okEDF && !okDM {
				edfOnly++
			}
			if okDM && !okEDF {
				dmOnly++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		den := float64(trials)
		t.AddRow(ratio, float64(edfOK)/den, float64(dmOK)/den, edfOnly, dmOnly)
	}
	t.Notes = append(t.Notes,
		"automotive period grid (1–1000 ms, WATERS-style weights); load 0.6·Σs",
		"DM-only counts should be near zero: per-machine EDF dominates DM, so any DM-only case is a first-fit trajectory artifact",
		fmt.Sprintf("seed=%d trials/ratio=%d", cfg.Seed, trials),
	)
	return t, nil
}
