package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"partfeas/internal/exact"
	"partfeas/internal/workload"
)

// E18ParallelSolver measures the parallel branch-and-bound against the
// sequential solver on progressively harder exact-adversary instances:
// wall-clock speedup and the (mandatory) agreement of the computed
// σ_part. The parallel solver backs partfeas.PartitionedMinScaling.
func E18ParallelSolver(cfg Config) (*Table, error) {
	sizes := []struct{ n, m int }{{14, 3}, {16, 4}, {18, 4}, {20, 4}}
	reps := 3
	if cfg.Quick {
		sizes = []struct{ n, m int }{{12, 3}, {14, 4}}
		reps = 1
	}
	t := &Table{
		ID: "E18",
		Title: fmt.Sprintf("Parallel exact adversary: sequential vs %d-way branch-and-bound",
			maxInt(2, runtime.GOMAXPROCS(0))),
		Columns: []string{"n", "m", "seq", "par", "speedup", "σ agree"},
	}
	for _, sz := range sizes {
		rng := workload.NewRNG(cfg.Seed ^ uint64(0xe18+sz.n))
		// Near-critical loads make the B&B work hard.
		plat, err := workload.SpeedsUniform.Platform(rng, sz.m)
		if err != nil {
			return nil, err
		}
		us, err := workload.UUniFast(rng, sz.n, 0.93*plat.TotalSpeed())
		if err != nil {
			return nil, err
		}
		ts, err := workload.TasksFromUtilizations(us, nil, 1000)
		if err != nil {
			return nil, err
		}
		// Exercise the concurrent machinery even on single-CPU hosts.
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		opts := exact.Options{NodeBudget: 500_000_000, Workers: workers}

		var seqTotal, parTotal time.Duration
		agree := true
		for r := 0; r < reps; r++ {
			start := time.Now()
			seq, err := exact.MinScaling(ts, plat, opts)
			if err != nil {
				return nil, err
			}
			seqTotal += time.Since(start)

			start = time.Now()
			par, err := exact.MinScalingParallel(ts, plat, opts)
			if err != nil {
				return nil, err
			}
			parTotal += time.Since(start)
			if math.Abs(seq.Sigma-par.Sigma) > 1e-12 {
				agree = false
			}
		}
		speedup := float64(seqTotal) / float64(parTotal)
		t.AddRow(sz.n, sz.m,
			(seqTotal / time.Duration(reps)).Round(time.Microsecond).String(),
			(parTotal / time.Duration(reps)).Round(time.Microsecond).String(),
			speedup, agree)
	}
	t.Notes = append(t.Notes,
		"σ agree must be true on every row: parallelism may change node counts, never the optimum",
		"speedup < 1 on easy instances is expected (spawn overhead dominates sub-millisecond solves)",
		fmt.Sprintf("seed=%d reps=%d workers=%d", cfg.Seed, reps, runtime.GOMAXPROCS(0)),
	)
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
