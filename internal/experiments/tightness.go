package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/machine"
	"partfeas/internal/workload"
)

// E10Tightness probes how close real instances can push the empirical
// ratio α_FF/σ_adv toward each theorem's bound, via random-restart
// hill-climbing over utilizations and speeds. The best instance found per
// theorem is reported; a large gap between "best found" and the proved
// bound is evidence the analysis may not be tight on these instance
// shapes (the paper proves upper bounds only and gives no matching lower
// bounds).
func E10Tightness(cfg Config) (*Table, error) {
	restarts := cfg.trials(24, 4)
	steps := 120
	if cfg.Quick {
		steps = 25
	}
	t := &Table{
		ID:      "E10",
		Title:   "Tightness probes: worst empirical ratio found by hill-climbing",
		Columns: []string{"theorem", "bound", "best ratio found", "gap", "n", "m"},
	}
	for _, thm := range core.Theorems {
		var (
			mu        sync.Mutex
			bestRatio float64
			bestN     int
			bestM     int
		)
		// Small instances keep the exact adversary fast and are where
		// first-fit pathologies live.
		nLo, nHi := 3, 9
		mLo, mHi := 2, 4
		expName := "E10/" + thm.String()
		err := cfg.forEachTrial("E10", restarts, func(restart int) error {
			rng := trialRNG(cfg.Seed, expName, restart)
			n := nLo + rng.Intn(nHi-nLo+1)
			m := mLo + rng.Intn(mHi-mLo+1)
			us := make([]float64, n)
			for i := range us {
				us[i] = rng.Range(0.1, 1.2)
			}
			speeds := make([]float64, m)
			for j := range speeds {
				speeds[j] = rng.Range(0.3, 3)
			}
			cur, err := tightnessRatio(thm, us, speeds)
			if err != nil {
				return err
			}
			for step := 0; step < steps; step++ {
				cand := climbNeighbor(rng, us, speeds)
				r, err := tightnessRatio(thm, cand.us, cand.speeds)
				if err != nil {
					return err
				}
				if r > cur {
					cur = r
					us, speeds = cand.us, cand.speeds
				}
			}
			mu.Lock()
			if cur > bestRatio {
				bestRatio, bestN, bestM = cur, n, m
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(thm.String(), thm.Alpha(), bestRatio, thm.Alpha()-bestRatio, bestN, bestM)
	}
	t.Notes = append(t.Notes,
		"ratios can approach but must never exceed the bound; exceeding would falsify the theorem",
		fmt.Sprintf("seed=%d restarts=%d steps=%d", cfg.Seed, restarts, steps),
	)
	return t, nil
}

type climbState struct {
	us     []float64
	speeds []float64
}

// climbNeighbor perturbs one random utilization or speed multiplicatively.
func climbNeighbor(rng *workload.RNG, us, speeds []float64) climbState {
	nu := append([]float64(nil), us...)
	ns := append([]float64(nil), speeds...)
	factor := 1 + rng.Range(-0.25, 0.25)
	if rng.Intn(2) == 0 {
		i := rng.Intn(len(nu))
		nu[i] *= factor
		if nu[i] < 0.01 {
			nu[i] = 0.01
		}
		if nu[i] > 3 {
			nu[i] = 3
		}
	} else {
		j := rng.Intn(len(ns))
		ns[j] *= factor
		if ns[j] < 0.05 {
			ns[j] = 0.05
		}
		if ns[j] > 10 {
			ns[j] = 10
		}
	}
	return climbState{us: nu, speeds: ns}
}

// tightnessRatio evaluates α_FF/σ_adv for raw utilizations and speeds.
// Budget-exceeded exact solves score 0 so the climb routes around them.
func tightnessRatio(thm core.Theorem, us, speeds []float64) (float64, error) {
	ts, err := workload.TasksFromUtilizations(us, nil, 1_000_000)
	if err != nil {
		return 0, err
	}
	plat := machine.New(speeds...)
	inst := instance{ts: ts, plat: plat}
	sigma, skip, err := adversaryScaling(thm, inst)
	if err != nil {
		return 0, err
	}
	if skip || sigma <= 0 {
		return 0, nil
	}
	hi := thm.Alpha() * sigma * (1 + 1e-6)
	alphaFF, ok, err := core.MinAlpha(ts, plat, thm.Scheduler(), sigma/2, hi, sigma*1e-7)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	return alphaFF / sigma, nil
}
