package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// checkpointVersion is the on-disk format version. A file with a
// different version is discarded and rebuilt, never misread.
const checkpointVersion = 1

// defaultFlushEvery is how many recorded trials pass between automatic
// checkpoint flushes when Checkpoint.Every is zero.
const defaultFlushEvery = 64

// Checkpoint persists completed trial results of an experiment run so an
// interrupted sweep can resume without redoing work. The file maps
// (experiment name, trial index) to the trial's JSON-encoded result;
// because every trial's RNG stream is a pure function of (seed,
// experiment, trial) and aggregation runs sequentially over the
// trial-indexed result slice, a resumed run's tables are bit-identical
// to an uninterrupted run at any worker count.
//
// Writes are atomic (temp file + rename in the destination directory),
// so a crash mid-flush leaves the previous checkpoint intact. A
// Checkpoint is safe for concurrent use by the trial workers.
type Checkpoint struct {
	// Every is how many recorded trials trigger an automatic flush;
	// zero means defaultFlushEvery.
	Every int

	mu    sync.Mutex
	path  string
	dirty int
	data  checkpointFile
}

type checkpointFile struct {
	Version  int                           `json:"version"`
	Seed     uint64                        `json:"seed"`
	Sections map[string]*checkpointSection `json:"sections"`
}

// checkpointSection holds one experiment's completed trials. Done is
// keyed by the decimal trial index (JSON object keys must be strings).
type checkpointSection struct {
	Trials int                        `json:"trials"`
	Done   map[string]json.RawMessage `json:"done"`
}

// OpenCheckpoint loads the checkpoint at path, or starts a fresh one
// when the file does not exist. A file whose seed or version does not
// match is discarded (resuming someone else's run would silently corrupt
// determinism), not errored on: the next flush overwrites it.
func OpenCheckpoint(path string, seed uint64) (*Checkpoint, error) {
	c := &Checkpoint{
		path: path,
		data: checkpointFile{
			Version:  checkpointVersion,
			Seed:     seed,
			Sections: map[string]*checkpointSection{},
		},
	}
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return c, nil
	case err != nil:
		return nil, fmt.Errorf("experiments: checkpoint %s: %w", path, err)
	}
	var loaded checkpointFile
	if jerr := json.Unmarshal(raw, &loaded); jerr != nil || loaded.Version != checkpointVersion || loaded.Seed != seed {
		// Stale or foreign checkpoint: start fresh.
		return c, nil
	}
	if loaded.Sections != nil {
		c.data.Sections = loaded.Sections
	}
	return c, nil
}

// Path returns the checkpoint's file path.
func (c *Checkpoint) Path() string { return c.path }

// Completed returns how many trials the checkpoint currently holds
// across all sections.
func (c *Checkpoint) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, sec := range c.data.Sections {
		n += len(sec.Done)
	}
	return n
}

// restore hands every stored result of the (exp, trials) section to
// apply, in no particular order, and returns how many were accepted.
// A section recorded with a different trial count is skipped entirely —
// its indices would not mean the same instances.
func (c *Checkpoint) restore(exp string, trials int, apply func(trial int, raw json.RawMessage) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	sec := c.data.Sections[exp]
	if sec == nil || sec.Trials != trials {
		return 0
	}
	n := 0
	for key, raw := range sec.Done {
		trial, err := strconv.Atoi(key)
		if err != nil || trial < 0 || trial >= trials {
			continue
		}
		if apply(trial, raw) {
			n++
		}
	}
	return n
}

// record stores one completed trial's result and flushes when Every
// records have accumulated since the last flush.
func (c *Checkpoint) record(exp string, trials, trial int, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiments: checkpoint %s trial %d: %w", exp, trial, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sec := c.data.Sections[exp]
	if sec == nil || sec.Trials != trials {
		sec = &checkpointSection{Trials: trials, Done: map[string]json.RawMessage{}}
		c.data.Sections[exp] = sec
	}
	sec.Done[strconv.Itoa(trial)] = raw
	c.dirty++
	every := c.Every
	if every <= 0 {
		every = defaultFlushEvery
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Flush writes the checkpoint atomically. Call it after an interrupted
// run so the final partial state is durable.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Checkpoint) flushLocked() error {
	raw, err := json.Marshal(&c.data)
	if err != nil {
		return fmt.Errorf("experiments: checkpoint encode: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(c.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiments: checkpoint: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint rename: %w", err)
	}
	c.dirty = 0
	return nil
}
