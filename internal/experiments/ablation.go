package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/partition"
	"partfeas/internal/workload"
)

// E11AdmissionAblation swaps the RMS admission test inside the paper's
// first-fit loop — Liu–Layland (the paper's choice), the hyperbolic bound
// and exact response-time analysis — and reports acceptance fractions at
// α = 1 across loads. The paper's analysis needs the LL bound's algebraic
// form; this experiment quantifies the acceptance it gives up relative to
// stronger admissions a practitioner could plug in.
func E11AdmissionAblation(cfg Config) (*Table, error) {
	trials := cfg.trials(300, 30)
	n, m := 12, 4
	if cfg.Quick {
		n, m = 8, 3
	}
	admissions := []partition.AdmissionTest{
		partition.RMSLLAdmission{},
		partition.RMSHyperbolicAdmission{},
		partition.RMSExactAdmission{},
	}
	loads := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	if cfg.Quick {
		loads = []float64{0.6, 0.8}
	}
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("RMS admission-test ablation inside first-fit (α=1, n=%d, m=%d)", n, m),
		Columns: []string{"U/Σs", "rms-ll", "rms-hyperbolic", "rms-exact"},
	}
	for _, load := range loads {
		counts := make([]int, len(admissions))
		var mu sync.Mutex
		expName := fmt.Sprintf("E11/%.2f", load)
		err := cfg.forEachTrial("E11", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			plat, err := workload.SpeedsUniform.Platform(rng, m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, n, load*plat.TotalSpeed())
			if err != nil {
				return err
			}
			periods, err := workload.DivisorGridPeriods(rng, n, 2520)
			if err != nil {
				return err
			}
			ts, err := workload.TasksFromUtilizations(us, periods, 0)
			if err != nil {
				return err
			}
			accepted := make([]bool, len(admissions))
			for k, adm := range admissions {
				res, err := partition.Partition(ts, plat, partition.Paper(adm, 1))
				if err != nil {
					return err
				}
				accepted[k] = res.Feasible
			}
			mu.Lock()
			for k, a := range accepted {
				if a {
					counts[k]++
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(load,
			float64(counts[0])/float64(trials),
			float64(counts[1])/float64(trials),
			float64(counts[2])/float64(trials))
	}
	t.Notes = append(t.Notes,
		"expected dominance: rms-exact ≥ rms-hyperbolic ≥ rms-ll at every load",
		fmt.Sprintf("seed=%d trials/load=%d", cfg.Seed, trials),
	)
	return t, nil
}

// E12Constants reproduces the analysis-constant side of the paper: it
// evaluates the three proof inequalities at the published constants and
// claimed α, then grid-searches (c_s, c_f, f_w, f_f) for the smallest α
// each analysis supports — checking the published factors are what this
// proof technique actually yields.
func E12Constants(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Analysis constants: proof inequalities and minimal achievable α",
		Columns: []string{"case", "c_s", "c_f", "f_w", "f_f", "fast", "split", "medium", "min α"},
	}
	addCase := func(name string, sch core.Scheduler, c core.Constants, alphaClaim float64) error {
		vals, err := c.Inequalities(sch, alphaClaim)
		if err != nil {
			return err
		}
		minAlpha, ok, err := core.MinAlphaForConstants(c, sch, alphaClaim+1, 1e-9)
		if err != nil {
			return err
		}
		cell := "n/a"
		if ok {
			cell = fmt.Sprintf("%.4f", minAlpha)
		}
		t.AddRow(name, c.Cs, c.Cf, c.Fw, c.Ff, vals.FastCase, vals.SlowCaseSplit, vals.SlowCaseMedium, cell)
		return nil
	}
	if err := addCase("EDF paper @2.98", core.EDF, core.PaperConstantsEDF, 2.98); err != nil {
		return nil, err
	}
	if err := addCase("RMS paper @3.34", core.RMS, core.PaperConstantsRMS, 3.34); err != nil {
		return nil, err
	}

	// Grid search for better constants.
	for _, sc := range []struct {
		name string
		sch  core.Scheduler
		hi   float64
	}{
		{"EDF grid-search", core.EDF, 3.2},
		{"RMS grid-search", core.RMS, 3.6},
	} {
		best, bestAlpha, err := gridSearchConstants(sc.sch, sc.hi, cfg.Quick)
		if err != nil {
			return nil, err
		}
		vals, err := best.Inequalities(sc.sch, bestAlpha)
		if err != nil {
			return nil, err
		}
		t.AddRow(sc.name, best.Cs, best.Cf, best.Fw, best.Ff,
			vals.FastCase, vals.SlowCaseSplit, vals.SlowCaseMedium, fmt.Sprintf("%.4f", bestAlpha))
	}
	t.Notes = append(t.Notes,
		"all three inequality columns must exceed 1 at the claimed α",
		"grid-search rows show the smallest α this proof structure supports over a constants grid",
	)
	return t, nil
}

// gridSearchConstants scans a coarse-to-fine grid over the four constants
// minimizing the α at which all proof inequalities hold.
func gridSearchConstants(sch core.Scheduler, alphaMax float64, quick bool) (core.Constants, float64, error) {
	steps := 14
	rounds := 3
	if quick {
		steps = 6
		rounds = 2
	}
	lo := core.Constants{Cs: 1.2, Cf: 2, Fw: 0.4, Ff: 0.02}
	hi := core.Constants{Cs: 5, Cf: 60, Fw: 0.98, Ff: 0.5}
	best := core.Constants{}
	bestAlpha := alphaMax + 1
	for round := 0; round < rounds; round++ {
		stepOf := func(a, b float64, i int) float64 {
			return a + (b-a)*float64(i)/float64(steps-1)
		}
		for i := 0; i < steps; i++ {
			for j := 0; j < steps; j++ {
				for k := 0; k < steps; k++ {
					for l := 0; l < steps; l++ {
						c := core.Constants{
							Cs: stepOf(lo.Cs, hi.Cs, i),
							Cf: stepOf(lo.Cf, hi.Cf, j),
							Fw: stepOf(lo.Fw, hi.Fw, k),
							Ff: stepOf(lo.Ff, hi.Ff, l),
						}
						a, ok, err := core.MinAlphaForConstants(c, sch, alphaMax, 1e-6)
						if err != nil {
							return core.Constants{}, 0, err
						}
						if ok && a < bestAlpha {
							bestAlpha = a
							best = c
						}
					}
				}
			}
		}
		if bestAlpha > alphaMax {
			break // nothing found; refining an empty region is pointless
		}
		// Zoom the grid around the incumbent.
		shrink := func(v, a, b float64) (float64, float64) {
			span := (b - a) / 4
			nl, nh := v-span, v+span
			if nl < a {
				nl = a
			}
			if nh > b {
				nh = b
			}
			return nl, nh
		}
		lo.Cs, hi.Cs = shrink(best.Cs, lo.Cs, hi.Cs)
		lo.Cf, hi.Cf = shrink(best.Cf, lo.Cf, hi.Cf)
		lo.Fw, hi.Fw = shrink(best.Fw, lo.Fw, hi.Fw)
		lo.Ff, hi.Ff = shrink(best.Ff, lo.Ff, hi.Ff)
	}
	if bestAlpha > alphaMax {
		return core.Constants{}, 0, fmt.Errorf("experiments: grid search found no feasible constants below α=%v", alphaMax)
	}
	return best, bestAlpha, nil
}
