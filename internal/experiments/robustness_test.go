package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"partfeas/internal/faultinject"
	"partfeas/internal/leakcheck"
	"partfeas/internal/pipeline"
	"partfeas/internal/workload"
)

// slowTrial is a trial function slow enough that a sweep can reliably be
// interrupted partway through.
func slowTrial(trial int, rng *workload.RNG) (float64, error) {
	time.Sleep(time.Millisecond)
	return rng.Float64() + float64(trial), nil
}

func TestRunTrialsCancelReturnsPartialResults(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	cfg := Config{Seed: 1, Workers: 2}.WithContext(ctx)
	start := time.Now()
	out, err := runTrials(cfg, "cancel-test", 10_000, func(trial int, rng *workload.RNG) (float64, error) {
		executed.Add(1)
		return slowTrial(trial, rng)
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancel latency %v exceeds 500ms", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
	var pe *pipeline.Error
	if !errors.As(err, &pe) || pe.Stage != pipeline.StageExperiment {
		t.Errorf("err = %v, want *pipeline.Error at experiment stage", err)
	}
	n := executed.Load()
	if n == 0 || n >= 10_000 {
		t.Errorf("executed %d trials, want partial progress", n)
	}
	// Completed trials' results are in the slice even though the run
	// errored.
	if len(out) != 10_000 {
		t.Fatalf("partial result slice has %d slots", len(out))
	}
}

func TestRunTrialsPanicIsolatedToOneTrial(t *testing.T) {
	leakcheck.Check(t)
	const victim = 7
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:  faultinject.SiteTrial,
		N:     victim,
		Panic: true,
	})
	defer deactivate()
	cfg := Config{Seed: 1, Workers: 4}
	out, err := runTrials(cfg, "panic-test", 32, func(trial int, rng *workload.RNG) (float64, error) {
		return float64(trial) + 1, nil
	})
	if err == nil {
		t.Fatal("injected panic did not surface")
	}
	if !errors.Is(err, pipeline.ErrPanic) {
		t.Fatalf("err = %v, want wrapped pipeline.ErrPanic", err)
	}
	var pe *pipeline.Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *pipeline.Error", err)
	}
	if pe.Trial != victim {
		t.Errorf("panic attributed to trial %d, want %d", pe.Trial, victim)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	// Every other trial still ran to completion.
	for i, v := range out {
		if i == victim {
			continue
		}
		if v != float64(i)+1 {
			t.Fatalf("trial %d result %v lost to the panic", i, v)
		}
	}
}

func TestForEachTrialPanicIsolated(t *testing.T) {
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:  faultinject.SiteTrial,
		N:     2,
		Panic: true,
	})
	defer deactivate()
	var ran atomic.Int64
	err := Config{Workers: 3}.forEachTrial("E99", 16, func(trial int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, pipeline.ErrPanic) {
		t.Fatalf("err = %v, want wrapped pipeline.ErrPanic", err)
	}
	var pe *pipeline.Error
	if !errors.As(err, &pe) || pe.Op != "E99" {
		t.Errorf("err = %v, want op E99", err)
	}
	if got := ran.Load(); got != 15 {
		t.Errorf("%d trials ran, want 15 (all but the panicking one)", got)
	}
}

func TestRunAllCtxCancelledStopsBetweenExperiments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tables, err := RunAllCtx(ctx, quickCfg(), nil)
	if err == nil {
		t.Fatal("cancelled suite returned nil error")
	}
	if !pipeline.Canceled(err) {
		t.Errorf("err = %v, want cancellation", err)
	}
	if len(tables) != 0 {
		t.Errorf("pre-cancelled suite still produced %d tables", len(tables))
	}
}

func TestRunCtxDeliversContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, "E1", quickCfg(), nil)
	if err == nil {
		t.Fatal("cancelled E1 returned nil error")
	}
	if !pipeline.Canceled(err) {
		t.Errorf("err = %v, want cancellation", err)
	}
}

// TestCheckpointResumeBitIdentical is the tentpole acceptance test: a
// sweep interrupted partway and resumed at a different worker count must
// produce results bit-identical to an uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const trials = 200
	fn := func(trial int, rng *workload.RNG) (float64, error) {
		// A value with plenty of low-order float bits, so any drift in
		// restore (e.g. lossy JSON round-trip) is caught.
		return rng.Float64() / 3.0 * rng.Float64(), nil
	}
	baseline, err := runTrials(Config{Seed: 9, Workers: 1}, "ckpt-exp", trials, fn)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, 9)
	if err != nil {
		t.Fatal(err)
	}
	ck.Every = 16
	// Interrupt the first attempt partway via the deterministic fault
	// hook: cancel when trial 60 starts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:   faultinject.SiteTrial,
		N:      60,
		OnFire: cancel,
	})
	cfg := Config{Seed: 9, Workers: 4, Checkpoint: ck}.WithContext(ctx)
	_, err = runTrials(cfg, "ckpt-exp", trials, fn)
	deactivate()
	if err == nil {
		t.Fatal("interrupted sweep returned nil error")
	}
	done := ck.Completed()
	if done == 0 || done >= trials {
		t.Fatalf("checkpoint holds %d trials, want partial progress", done)
	}

	// Resume from disk with a different worker count; restored trials
	// must be skipped and the final slice bit-identical to the baseline.
	ck2, err := OpenCheckpoint(path, 9)
	if err != nil {
		t.Fatal(err)
	}
	restored := ck2.Completed()
	if restored == 0 {
		t.Fatal("nothing restored from checkpoint file")
	}
	var executed atomic.Int64
	resumed, err := runTrials(Config{Seed: 9, Workers: 7, Checkpoint: ck2}, "ckpt-exp", trials, func(trial int, rng *workload.RNG) (float64, error) {
		executed.Add(1)
		return fn(trial, rng)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(executed.Load()); got != trials-restored {
		t.Errorf("resume executed %d trials, want %d (restored %d)", got, trials-restored, restored)
	}
	for i := range baseline {
		if resumed[i] != baseline[i] {
			t.Fatalf("trial %d: resumed %x differs from baseline %x", i, resumed[i], baseline[i])
		}
	}
}

// TestCheckpointResumeFullExperiment runs a real experiment (E1) with an
// injected mid-sweep cancellation, resumes it from the checkpoint file
// and asserts the resumed table is byte-identical to an uninterrupted
// run.
func TestCheckpointResumeFullExperiment(t *testing.T) {
	want, err := E1TheoremI1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "e1.ckpt")
	ck, err := OpenCheckpoint(path, quickCfg().Seed)
	if err != nil {
		t.Fatal(err)
	}
	ck.Every = 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:   faultinject.SiteTrial,
		N:      20,
		OnFire: cancel,
	})
	cfg := quickCfg()
	cfg.Workers = 3
	cfg.Checkpoint = ck
	_, err = E1TheoremI1(cfg.WithContext(ctx))
	deactivate()
	if err == nil {
		t.Fatal("interrupted E1 returned nil error")
	}

	ck2, err := OpenCheckpoint(path, quickCfg().Seed)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Completed() == 0 {
		t.Fatal("nothing restored from checkpoint")
	}
	cfg2 := quickCfg()
	cfg2.Workers = 6
	cfg2.Checkpoint = ck2
	got, err := E1TheoremI1(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(want, got) {
		t.Error("resumed E1 table differs from uninterrupted run")
	}
}

func TestCheckpointStaleSeedDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.record("exp", 10, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCheckpoint(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n := reopened.Completed(); n != 0 {
		t.Errorf("checkpoint with mismatched seed restored %d trials, want 0", n)
	}
	// Matching seed restores.
	same, err := OpenCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := same.Completed(); n != 1 {
		t.Errorf("checkpoint with matching seed restored %d trials, want 1", n)
	}
}

func TestCheckpointTrialsMismatchIgnored(t *testing.T) {
	ck, err := OpenCheckpoint(filepath.Join(t.TempDir(), "c"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.record("exp", 10, 3, 2.0); err != nil {
		t.Fatal(err)
	}
	n := ck.restore("exp", 20, func(int, json.RawMessage) bool {
		t.Error("restore applied a section with a different trial count")
		return true
	})
	if n != 0 {
		t.Errorf("restore returned %d", n)
	}
}

func TestCheckpointCorruptFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path, 1)
	if err != nil {
		t.Fatalf("corrupt checkpoint should start fresh, got %v", err)
	}
	if ck.Completed() != 0 {
		t.Error("corrupt checkpoint restored trials")
	}
	// And the next flush atomically replaces the corrupt file.
	if err := ck.record("exp", 4, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Completed() != 1 {
		t.Error("flushed checkpoint did not replace the corrupt file")
	}
}

func TestCheckpointFlushLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(filepath.Join(dir, "run.ckpt"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ck.record("exp", 5, i, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := ck.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("checkpoint dir contents = %v, want only run.ckpt", names)
	}
}
