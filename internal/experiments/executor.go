package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sync"

	"partfeas/internal/faultinject"
	"partfeas/internal/pipeline"
	"partfeas/internal/workload"
)

// This file is the experiment suite's parallel trial executor. Every
// Monte-Carlo runner fans its trials out over Config.Workers goroutines
// (default GOMAXPROCS) while staying bit-identical to a sequential run at
// any worker count, because:
//
//   - each trial derives its RNG purely from (Config.Seed, experiment
//     name, trial index) — worker scheduling never touches a shared
//     stream;
//   - results land in a slice indexed by trial, and all aggregation
//     (counting, ratio collection, histograms) happens sequentially over
//     that slice after the pool drains — no order-dependent reductions on
//     worker goroutines.
//
// The pool is also the pipeline's robustness boundary: a panicking trial
// is recovered into a *pipeline.Error naming the trial (other trials run
// to completion), and a cancelled Config context stops the feeder so the
// pool drains within the in-flight trials. runTrials is the high-level
// entry; Config.forEachTrial is the underlying pool for callers that
// manage their own result storage.

// runTrials runs fn for every trial index in [0, trials) across the
// worker pool, handing each invocation its deterministic per-trial RNG,
// and returns the results in trial order. fn must be safe for concurrent
// invocation on distinct trial indices; errors are wrapped with the
// experiment name and trial index, and the first one wins. On error the
// completed trials' results are still returned alongside it.
//
// When cfg.Checkpoint is set, every completed trial is recorded there
// (JSON-encoded, flushed atomically every Checkpoint.Every records) and
// trials already present in the checkpoint are restored instead of
// re-run. Restored results decode to the exact float64 bits that were
// recorded, and aggregation is sequential over the trial-indexed slice,
// so a resumed run's output is bit-identical to an uninterrupted one.
func runTrials[T any](cfg Config, expName string, trials int, fn func(trial int, rng *workload.RNG) (T, error)) ([]T, error) {
	out := make([]T, trials)
	ck := cfg.Checkpoint
	pending := make([]int, 0, trials)
	if ck != nil {
		done := make([]bool, trials)
		ck.restore(expName, trials, func(trial int, raw json.RawMessage) bool {
			if json.Unmarshal(raw, &out[trial]) != nil {
				return false
			}
			done[trial] = true
			return true
		})
		for trial := 0; trial < trials; trial++ {
			if !done[trial] {
				pending = append(pending, trial)
			}
		}
	} else {
		for trial := 0; trial < trials; trial++ {
			pending = append(pending, trial)
		}
	}
	err := forEachIndex(cfg.context(), cfg.workers(), expName, pending, func(trial int) error {
		v, err := fn(trial, trialRNG(cfg.Seed, expName, trial))
		if err != nil {
			return fmt.Errorf("%s trial %d: %w", expName, trial, err)
		}
		out[trial] = v
		if ck != nil {
			if cerr := ck.record(expName, trials, trial, v); cerr != nil {
				return cerr
			}
		}
		return nil
	})
	if ck != nil {
		if ferr := ck.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return out, err
}

// forEachTrial runs fn for trial indices [0, trials) across the config's
// worker pool with the same cancellation and panic-isolation guarantees
// as runTrials, for runners that manage their own result storage. op
// labels panic/cancellation errors (usually the experiment ID).
func (c Config) forEachTrial(op string, trials int, fn func(trial int) error) error {
	idxs := make([]int, trials)
	for i := range idxs {
		idxs[i] = i
	}
	return forEachIndex(c.context(), c.workers(), op, idxs, fn)
}

// forEachIndex runs fn over the given indices across a bounded worker
// pool. A fn error does not cancel the remaining indices (they still
// run), but the first error is returned. Once ctx is done the feeder
// stops handing out work, so only the ≤workers in-flight invocations
// finish before the pool drains; the cancellation surfaces as a
// *pipeline.Error unless a fn error beat it. A panicking fn is recovered
// into a *pipeline.Error carrying the index and stack. fn must be safe
// for concurrent invocation on distinct indices.
func forEachIndex(ctx context.Context, workers int, op string, idxs []int, fn func(i int) error) error {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(idxs) {
		workers = len(idxs)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				if err := runSafely(op, i, fn); err != nil {
					record(err)
				}
			}
		}()
	}
feed:
	for _, i := range idxs {
		select {
		case ch <- i:
		case <-ctx.Done():
			record(pipeline.New(pipeline.StageExperiment, op, ctx.Err()))
			break feed
		}
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// runSafely invokes fn(i) with panic isolation: a panic becomes a
// *pipeline.Error naming the trial and carrying the stack, so one bad
// trial cannot take down the sweep. The fault-injection hook fires here
// so injected panics and delays exercise exactly this recovery path.
func runSafely(op string, i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = pipeline.FromPanic(pipeline.StageExperiment, op, r, debug.Stack()).AtTrial(i)
		}
	}()
	faultinject.Hit(faultinject.SiteTrial, int64(i))
	return fn(i)
}
