package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/workload"
)

// This file is the experiment suite's parallel trial executor. Every
// Monte-Carlo runner fans its trials out over Config.Workers goroutines
// (default GOMAXPROCS) while staying bit-identical to a sequential run at
// any worker count, because:
//
//   - each trial derives its RNG purely from (Config.Seed, experiment
//     name, trial index) — worker scheduling never touches a shared
//     stream;
//   - results land in a slice indexed by trial, and all aggregation
//     (counting, ratio collection, histograms) happens sequentially over
//     that slice after the pool drains — no order-dependent reductions on
//     worker goroutines.
//
// runTrials is the high-level entry; forEachTrial is the underlying pool
// for callers that manage their own result storage.

// runTrials runs fn for every trial index in [0, trials) across the
// worker pool, handing each invocation its deterministic per-trial RNG,
// and returns the results in trial order. fn must be safe for concurrent
// invocation on distinct trial indices; errors are wrapped with the
// experiment name and trial index, and the first one wins.
func runTrials[T any](cfg Config, expName string, trials int, fn func(trial int, rng *workload.RNG) (T, error)) ([]T, error) {
	out := make([]T, trials)
	err := forEachTrial(cfg.workers(), trials, func(trial int) error {
		v, err := fn(trial, trialRNG(cfg.Seed, expName, trial))
		if err != nil {
			return fmt.Errorf("%s trial %d: %w", expName, trial, err)
		}
		out[trial] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachTrial runs fn for trial indices [0, trials) across a bounded
// worker pool. The first error cancels nothing (remaining trials still
// run) but is returned. fn must be safe for concurrent invocation on
// distinct trial indices.
func forEachTrial(workers, trials int, fn func(trial int) error) error {
	if workers <= 0 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range ch {
				if err := fn(trial); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for trial := 0; trial < trials; trial++ {
		ch <- trial
	}
	close(ch)
	wg.Wait()
	return firstErr
}
