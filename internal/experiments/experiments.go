// Package experiments implements the evaluation suite E1–E12 described in
// DESIGN.md.
//
// The paper proves four approximation factors but reports no experiments;
// this package is the reproduction's evaluation section. Every runner
// returns a Table that prints like a paper table (fixed-width text) or
// machine-readably (CSV). Experiments are deterministic from Config.Seed
// and scale down under Config.Quick so the full suite can run in tests.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"

	"partfeas/internal/workload"
)

// Config controls every experiment runner.
type Config struct {
	// Seed makes runs bit-reproducible. Each trial derives its own RNG
	// from (Seed, experiment, trial), so worker scheduling cannot change
	// results.
	Seed uint64
	// Trials is the number of random instances per table cell. Zero
	// means the per-experiment default.
	Trials int
	// Workers bounds the number of concurrent trial goroutines. Zero
	// means GOMAXPROCS.
	Workers int
	// Quick shrinks instance sizes and trial counts so the suite runs in
	// seconds; used by tests and -short benchmarks.
	Quick bool
	// Checkpoint, when non-nil, records every completed trial so an
	// interrupted sweep can resume without redoing work. See Checkpoint
	// for the determinism guarantees.
	Checkpoint *Checkpoint

	// ctx carries cancellation into the trial executor; set via
	// WithContext. nil means context.Background().
	ctx context.Context
}

// WithContext returns a copy of the config whose runners observe ctx:
// the trial pool stops feeding work once ctx is done and the run returns
// the partial results together with a *pipeline.Error.
func (c Config) WithContext(ctx context.Context) Config {
	c.ctx = ctx
	return c
}

func (c Config) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) trials(def, quickDef int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quickDef
	}
	return def
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("E1", …).
	ID string
	// Title is the human-readable headline.
	Title string
	// Columns are header labels.
	Columns []string
	// Rows hold pre-formatted cells, row-major.
	Rows [][]string
	// Notes are free-form lines printed under the table (observations,
	// violation counts, seeds).
	Notes []string
}

// AddRow appends a row, formatting each value with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		fmt.Fprintf(&b, "%s  ", strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoted where needed).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// trialRNG derives a deterministic RNG for one trial of one experiment.
func trialRNG(seed uint64, experiment string, trial int) *workload.RNG {
	h := seed
	for _, b := range []byte(experiment) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h ^= uint64(trial) * 0x9e3779b97f4a7c15
	return workload.NewRNG(h)
}
