package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/stats"
	"partfeas/internal/workload"
)

// E19WCETHeadroom sweeps system load and reports how much any single
// task's worst-case execution time can grow before the feasibility test
// flips — the sensitivity question a WCET-budgeting engineer asks. The
// bottleneck headroom (min over tasks of MaxWCET_i/C_i) quantifies how
// brittle an accepted configuration is at each load level.
func E19WCETHeadroom(cfg Config) (*Table, error) {
	trials := cfg.trials(200, 20)
	n, m := 10, 3
	if cfg.Quick {
		n = 8
	}
	t := &Table{
		ID:      "E19",
		Title:   fmt.Sprintf("WCET sensitivity: bottleneck headroom min_i MaxWCET_i/C_i (EDF, α=1, n=%d, m=%d)", n, m),
		Columns: []string{"U/Σs", "accepted", "mean", "p50", "p05", "min"},
	}
	loads := []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if cfg.Quick {
		loads = []float64{0.5, 0.8}
	}
	for _, load := range loads {
		var (
			mu       sync.Mutex
			headroom []float64
		)
		expName := fmt.Sprintf("E19/%.2f", load)
		err := cfg.forEachTrial("E19", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			plat, err := workload.SpeedsUniform.Platform(rng, m)
			if err != nil {
				return err
			}
			us, err := workload.UUniFast(rng, n, load*plat.TotalSpeed())
			if err != nil {
				return err
			}
			ts, err := workload.TasksFromUtilizations(us, nil, 1000)
			if err != nil {
				return err
			}
			hs, err := core.WCETHeadroom(ts, plat, core.EDF, 1)
			if err != nil {
				return err
			}
			minH := math.Inf(1)
			for _, h := range hs {
				if math.IsNaN(h) {
					return nil // instance rejected; no headroom defined
				}
				if h < minH {
					minH = h
				}
			}
			mu.Lock()
			headroom = append(headroom, minH)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(headroom)
		if err != nil {
			return nil, err
		}
		p05 := 0.0
		if sum.Count > 0 {
			sorted := append([]float64(nil), headroom...)
			sort.Float64s(sorted)
			p05 = stats.Percentile(sorted, 0.05)
		}
		t.AddRow(load, sum.Count, sum.Mean, sum.P50, p05, sum.Min)
	}
	t.Notes = append(t.Notes,
		"headroom 1.0 means some task's WCET budget is exhausted; larger is safer",
		fmt.Sprintf("seed=%d trials/load=%d", cfg.Seed, trials),
	)
	return t, nil
}
