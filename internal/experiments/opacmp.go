package experiments

import (
	"fmt"
	"sync"

	"partfeas/internal/dbf"
	"partfeas/internal/workload"
)

// E20ArbitraryDeadlinePolicies sweeps the deadline ratio through and past
// the period (D = ratio·P, ratio up to 2) and measures single-machine
// feasibility under deadline-monotonic priorities, Audsley's optimal
// priority assignment, and EDF. For D ≤ P, DM and OPA coincide (DM is
// optimal there); for D > P a gap opens — the reason OPA exists — and EDF
// upper-bounds both.
func E20ArbitraryDeadlinePolicies(cfg Config) (*Table, error) {
	trials := cfg.trials(400, 40)
	n := 5
	t := &Table{
		ID:      "E20",
		Title:   fmt.Sprintf("Arbitrary deadlines on one machine: DM vs OPA vs EDF feasibility (n=%d, U=0.85)", n),
		Columns: []string{"D/P", "DM", "OPA", "EDF", "OPA-only", "EDF-only"},
	}
	ratios := []float64{0.8, 1.0, 1.2, 1.5, 2.0}
	if cfg.Quick {
		ratios = []float64{1.0, 1.5}
	}
	for _, ratio := range ratios {
		var (
			mu                                   sync.Mutex
			dmOK, opaOK, edfOK, opaOnly, edfOnly int
		)
		expName := fmt.Sprintf("E20/%.2f", ratio)
		err := cfg.forEachTrial("E20", trials, func(trial int) error {
			rng := trialRNG(cfg.Seed, expName, trial)
			us, err := workload.UUniFast(rng, n, 0.85)
			if err != nil {
				return err
			}
			set := make(dbf.Set, n)
			for i, u := range us {
				p, err := workload.LogUniformPeriod(rng, 10, 1000)
				if err != nil {
					return err
				}
				c := int64(u * float64(p))
				if c < 1 {
					c = 1
				}
				d := int64(ratio * float64(p))
				if d < c {
					d = c
				}
				set[i] = dbf.Task{Name: fmt.Sprintf("t%d", i), WCET: c, Deadline: d, Period: p}
			}
			if set.ValidateArbitrary() != nil {
				return nil
			}
			dm, err := dbf.FeasibleDMArbitrary(set, 1)
			if err != nil {
				return err
			}
			opa, err := dbf.FeasibleOPA(set, 1)
			if err != nil {
				return err
			}
			edf, err := dbf.FeasibleEDFArbitrary(set, 1)
			if err != nil {
				return nil // horizon too large: skip
			}
			mu.Lock()
			defer mu.Unlock()
			if dm {
				dmOK++
			}
			if opa {
				opaOK++
			}
			if edf {
				edfOK++
			}
			if opa && !dm {
				opaOnly++
			}
			if edf && !opa {
				edfOnly++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		den := float64(trials)
		t.AddRow(ratio, float64(dmOK)/den, float64(opaOK)/den, float64(edfOK)/den, opaOnly, edfOnly)
	}
	t.Notes = append(t.Notes,
		"invariants: OPA ≥ DM always (optimality); EDF ≥ OPA always (dynamic beats static)",
		"for D/P ≤ 1 DM equals OPA (deadline-monotonic is optimal for constrained deadlines)",
		fmt.Sprintf("seed=%d trials/ratio=%d", cfg.Seed, trials),
	)
	return t, nil
}
