package experiments

import (
	"errors"
	"fmt"
	"sync"

	"partfeas/internal/core"
	"partfeas/internal/exact"
	"partfeas/internal/stats"
	"partfeas/internal/workload"
)

// E16RMSLossDecomposition splits the FF-RMS test's empirical loss into
// its two sources. Theorem I.2 charges everything to one factor of
// 2.414 against the EDF-partitioned optimum; with the exact partitioned
// *RMS* optimum (σ_partRMS, branch-and-bound over RTA-feasible
// partitions) the loss decomposes as
//
//	α_FF/σ_part = (α_FF/σ_partRMS) · (σ_partRMS/σ_part)
//	  total     =  first-fit+LL loss · intrinsic RM-vs-EDF loss.
func E16RMSLossDecomposition(cfg Config) (*Table, error) {
	trials := cfg.trials(250, 25)
	t := &Table{
		ID:      "E16",
		Title:   "FF-RMS loss decomposition: first-fit/LL loss vs intrinsic RM loss",
		Columns: []string{"ratio", "mean", "p50", "p95", "max"},
	}
	type sample struct {
		total, ffll, intrinsic float64
	}
	var (
		mu      sync.Mutex
		samples []sample
		skipped int
	)
	err := cfg.forEachTrial("E16", trials, func(trial int) error {
		rng := trialRNG(cfg.Seed, "E16", trial)
		n := 4 + rng.Intn(6)
		m := 2 + rng.Intn(2)
		uf := workload.UtilizationFamilies[rng.Intn(len(workload.UtilizationFamilies))]
		sf := workload.SpeedFamilies[rng.Intn(len(workload.SpeedFamilies))]
		inst, err := genInstance(rng, uf, sf, n, m)
		if err != nil {
			return err
		}
		res, err := exact.MinScaling(inst.ts, inst.plat, exact.Options{})
		if errors.Is(err, exact.ErrBudgetExceeded) {
			mu.Lock()
			skipped++
			mu.Unlock()
			return nil
		}
		if err != nil {
			return err
		}
		rms, err := exact.MinScalingRMS(inst.ts, inst.plat, exact.Options{})
		if errors.Is(err, exact.ErrBudgetExceeded) {
			mu.Lock()
			skipped++
			mu.Unlock()
			return nil
		}
		if err != nil {
			return err
		}
		hi := core.AlphaRMSPartitioned * res.Sigma * (1 + 1e-6)
		alphaFF, ok, err := core.MinAlpha(inst.ts, inst.plat, core.RMS, res.Sigma/2, hi, res.Sigma*1e-7)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("E16 trial %d: Theorem I.2 violated", trial)
		}
		mu.Lock()
		samples = append(samples, sample{
			total:     alphaFF / res.Sigma,
			ffll:      alphaFF / rms,
			intrinsic: rms / res.Sigma,
		})
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name string
		get  func(sample) float64
	}{
		{"total: α_FF/σ_part (Thm I.2 charges 2.414)", func(s sample) float64 { return s.total }},
		{"first-fit+LL: α_FF/σ_partRMS", func(s sample) float64 { return s.ffll }},
		{"intrinsic RM: σ_partRMS/σ_part (≤ 1/ln2)", func(s sample) float64 { return s.intrinsic }},
	}
	for _, r := range rows {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = r.get(s)
		}
		sum, err := stats.Summarize(vals)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.name, sum.Mean, sum.P50, sum.P95, sum.Max)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("samples=%d skipped=%d (exact-solver budget)", len(samples), skipped),
		"the two factor rows multiply (per instance) to the total row",
		fmt.Sprintf("seed=%d trials=%d", cfg.Seed, trials),
	)
	return t, nil
}
