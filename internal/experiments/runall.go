package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"partfeas/internal/pipeline"
)

// Runner is one experiment entry point.
type Runner func(Config) (*Table, error)

// Registry maps experiment IDs to runners, in DESIGN.md order.
var Registry = map[string]Runner{
	"E1":  E1TheoremI1,
	"E2":  E2TheoremI2,
	"E3":  E3TheoremI3,
	"E4":  E4TheoremI4,
	"E5":  E5RatioDistribution,
	"E6":  E6AcceptanceCurves,
	"E7":  E7HeuristicAblation,
	"E8":  E8Scaling,
	"E9":  E9Simulation,
	"E10": E10Tightness,
	"E11": E11AdmissionAblation,
	"E12": E12Constants,
	"E13": E13MigratorySchedule,
	"E14": E14GlobalBaseline,
	"E15": E15ConstrainedDeadlines,
	"E16": E16RMSLossDecomposition,
	"E17": E17FixedPriorityConstrained,
	"E18": E18ParallelSolver,
	"E19": E19WCETHeadroom,
	"E20": E20ArbitraryDeadlinePolicies,
}

// IDs returns the registered experiment IDs in run order (E1, E2, …).
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		// Numeric sort on the suffix after 'E'.
		var x, y int
		fmt.Sscanf(ids[a], "E%d", &x)
		fmt.Sscanf(ids[b], "E%d", &y)
		return x < y
	})
	return ids
}

// Run executes one experiment by ID and renders it to w.
func Run(id string, cfg Config, w io.Writer) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	t, err := r(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RunCtx is Run with cancellation: the experiment's trial pool observes
// ctx and an interrupted run fails with a *pipeline.Error wrapping the
// ctx cause (completed trials are still in cfg.Checkpoint, if set).
func RunCtx(ctx context.Context, id string, cfg Config, w io.Writer) (*Table, error) {
	return Run(id, cfg.WithContext(ctx), w)
}

// RunAll executes the full suite in order, rendering each table to w,
// and returns all tables.
func RunAll(cfg Config, w io.Writer) ([]*Table, error) {
	return RunAllCtx(context.Background(), cfg, w)
}

// RunAllCtx executes the full suite in order, observing ctx between and
// within experiments. On cancellation it returns the tables completed so
// far together with a *pipeline.Error.
func RunAllCtx(ctx context.Context, cfg Config, w io.Writer) ([]*Table, error) {
	cfg = cfg.WithContext(ctx)
	var tables []*Table
	for _, id := range IDs() {
		if err := ctx.Err(); err != nil {
			return tables, pipeline.New(pipeline.StageExperiment, id, err)
		}
		t, err := Run(id, cfg, w)
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
