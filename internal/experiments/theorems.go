package experiments

import (
	"errors"
	"fmt"
	"sort"

	"partfeas/internal/core"
	"partfeas/internal/exact"
	"partfeas/internal/fractional"
	"partfeas/internal/machine"
	"partfeas/internal/stats"
	"partfeas/internal/task"
	"partfeas/internal/workload"
)

// instance is one random (task set, platform) pair.
type instance struct {
	ts   task.Set
	plat machine.Platform
}

// genInstance draws an instance from the given families. The UUniFast
// budget is tied to the platform's total speed so instances straddle the
// feasibility boundary, where approximation ratios are interesting.
func genInstance(rng *workload.RNG, uf workload.UtilizationFamily, sf workload.SpeedFamily, n, m int) (instance, error) {
	plat, err := sf.Platform(rng, m)
	if err != nil {
		return instance{}, err
	}
	budget := rng.Range(0.3, 1.1) * plat.TotalSpeed()
	us, err := uf.Utilizations(rng, n, budget)
	if err != nil {
		return instance{}, err
	}
	periods := make([]int64, n)
	for i := range periods {
		periods[i], err = workload.LogUniformPeriod(rng, 10, 10000)
		if err != nil {
			return instance{}, err
		}
	}
	ts, err := workload.TasksFromUtilizations(us, periods, 0)
	if err != nil {
		return instance{}, err
	}
	return instance{ts: ts, plat: plat}, nil
}

// adversaryScaling returns σ_adv for the theorem's adversary, or
// skip=true when the exact solver exceeded its budget.
func adversaryScaling(thm core.Theorem, inst instance) (sigma float64, skip bool, err error) {
	switch thm.Adversary() {
	case core.PartitionedAdversary:
		res, err := exact.MinScaling(inst.ts, inst.plat, exact.Options{})
		if errors.Is(err, exact.ErrBudgetExceeded) {
			return 0, true, nil
		}
		if err != nil {
			return 0, false, err
		}
		return res.Sigma, false, nil
	case core.MigratoryAdversary:
		sigma, err := fractional.MinScaling(inst.ts, inst.plat)
		return sigma, false, err
	default:
		return 0, false, fmt.Errorf("experiments: unknown adversary %v", thm.Adversary())
	}
}

// theoremTrial measures one instance against one theorem: the direct
// acceptance check at the proved bound, and the empirical ratio
// α_FF / σ_adv from bisection. Fields are exported so trials JSON
// round-trip through a Checkpoint (float64 survives exactly).
type theoremTrial struct {
	Ratio     float64 `json:"ratio"`
	Violation bool    `json:"violation,omitempty"`
	Skip      bool    `json:"skip,omitempty"`
}

func runTheoremTrial(rng *workload.RNG, thm core.Theorem, uf workload.UtilizationFamily, sf workload.SpeedFamily, n, m int) (theoremTrial, error) {
	inst, err := genInstance(rng, uf, sf, n, m)
	if err != nil {
		return theoremTrial{}, err
	}
	sigma, skip, err := adversaryScaling(thm, inst)
	if err != nil {
		return theoremTrial{}, err
	}
	if skip {
		return theoremTrial{Skip: true}, nil
	}

	// Direct check of the theorem: adversary feasible at speeds σ·s ⇒
	// the test accepts at the proved α on that platform.
	rep, err := core.Test(inst.ts, inst.plat.Scaled(sigma*(1+1e-9)), thm.Scheduler(), thm.Alpha())
	if err != nil {
		return theoremTrial{}, err
	}
	violation := !rep.Accepted

	// Empirical ratio via bisection. The bracket is proof-grade: the
	// theorem guarantees acceptance at bound·σ_adv, and any acceptance at
	// α implies a feasible partition at scaling α, so the test provably
	// rejects at σ_adv/2 < σ_part.
	hi := thm.Alpha() * sigma * (1 + 1e-6)
	alphaFF, ok, err := core.MinAlpha(inst.ts, inst.plat, thm.Scheduler(), sigma/2, hi, sigma*1e-7)
	if err != nil {
		return theoremTrial{}, err
	}
	if !ok {
		// Only possible when the direct check also failed.
		return theoremTrial{Violation: true}, nil
	}
	return theoremTrial{Ratio: alphaFF / sigma, Violation: violation}, nil
}

// theoremSizes returns the (n, m) instance sizes per adversary: the exact
// partitioned solver caps n, the LP adversary scales further.
func theoremSizes(thm core.Theorem, quick bool) (nLo, nHi, mLo, mHi int) {
	if thm.Adversary() == core.PartitionedAdversary {
		if quick {
			return 4, 8, 2, 3
		}
		return 6, 16, 2, 5
	}
	if quick {
		return 8, 24, 2, 6
	}
	return 16, 128, 2, 32
}

// theoremCell aggregates one table row, reduced sequentially over the
// executor's trial-ordered results.
type theoremCell struct {
	ratios     []float64
	violations int
	skipped    int
}

func (c *theoremCell) add(res theoremTrial) {
	switch {
	case res.Skip:
		c.skipped++
	case res.Violation:
		c.violations++
	default:
		c.ratios = append(c.ratios, res.Ratio)
	}
}

// runTheoremValidation is the shared engine behind E1–E4: per
// (utilization family × speed family) cell, generate instances, compute
// the adversary scaling, check acceptance at the proved bound, and record
// empirical ratios. Trials fan out over the worker pool; aggregation
// happens after the pool drains, in trial order.
func runTheoremValidation(cfg Config, id string, thm core.Theorem) (*Table, error) {
	trials := cfg.trials(400, 40)
	nLo, nHi, mLo, mHi := theoremSizes(thm, cfg.Quick)

	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Theorem %v: FF-%v vs %v adversary — accept at α=%.3f·σ_adv",
			thm, thm.Scheduler(), thm.Adversary(), thm.Alpha()),
		Columns: []string{"utils", "speeds", "trials", "skipped", "violations", "ratio mean", "ratio p95", "ratio max", "bound"},
	}

	totalViolations := 0
	for _, uf := range workload.UtilizationFamilies {
		for _, sf := range workload.SpeedFamilies {
			expName := fmt.Sprintf("%s/%v/%v", id, uf, sf)
			results, err := runTrials(cfg, expName, trials, func(trial int, rng *workload.RNG) (theoremTrial, error) {
				n := nLo + rng.Intn(nHi-nLo+1)
				m := mLo + rng.Intn(mHi-mLo+1)
				return runTheoremTrial(rng, thm, uf, sf, n, m)
			})
			if err != nil {
				return nil, err
			}
			cell := &theoremCell{}
			for _, res := range results {
				cell.add(res)
			}
			sum, err := stats.Summarize(cell.ratios)
			if err != nil {
				return nil, err
			}
			totalViolations += cell.violations
			t.AddRow(uf.String(), sf.String(), trials, cell.skipped, cell.violations,
				sum.Mean, sum.P95, sum.Max, thm.Alpha())
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total bound violations: %d (theorem predicts 0)", totalViolations),
		fmt.Sprintf("seed=%d trials/cell=%d n∈[%d,%d] m∈[%d,%d]", cfg.Seed, trials, nLo, nHi, mLo, mHi),
	)
	return t, nil
}

// E1TheoremI1 validates Theorem I.1 (FF-EDF vs partitioned OPT, bound 2).
func E1TheoremI1(cfg Config) (*Table, error) {
	return runTheoremValidation(cfg, "E1", core.TheoremI1)
}

// E2TheoremI2 validates Theorem I.2 (FF-RMS vs partitioned OPT, bound
// 1/(√2−1) ≈ 2.414).
func E2TheoremI2(cfg Config) (*Table, error) {
	return runTheoremValidation(cfg, "E2", core.TheoremI2)
}

// E3TheoremI3 validates Theorem I.3 (FF-EDF vs migratory LP, bound 2.98).
func E3TheoremI3(cfg Config) (*Table, error) {
	return runTheoremValidation(cfg, "E3", core.TheoremI3)
}

// E4TheoremI4 validates Theorem I.4 (FF-RMS vs migratory LP, bound 3.34).
func E4TheoremI4(cfg Config) (*Table, error) {
	return runTheoremValidation(cfg, "E4", core.TheoremI4)
}

// E5RatioDistribution reports the empirical approximation-ratio
// distribution per theorem over a mixed-family workload, plus a histogram
// of the I.1 ratios — "how much of the proved factor does a typical
// instance actually need?".
func E5RatioDistribution(cfg Config) (*Table, error) {
	trials := cfg.trials(600, 60)
	t := &Table{
		ID:      "E5",
		Title:   "Empirical approximation ratio α_FF/σ_adv per theorem (mixed families)",
		Columns: []string{"theorem", "scheduler", "adversary", "bound", "trials", "mean", "p50", "p95", "p99", "max", "headroom"},
	}
	var histNote string
	for _, thm := range core.Theorems {
		nLo, nHi, mLo, mHi := theoremSizes(thm, cfg.Quick)
		expName := "E5/" + thm.String()
		results, err := runTrials(cfg, expName, trials, func(trial int, rng *workload.RNG) (theoremTrial, error) {
			uf := workload.UtilizationFamilies[rng.Intn(len(workload.UtilizationFamilies))]
			sf := workload.SpeedFamilies[rng.Intn(len(workload.SpeedFamilies))]
			n := nLo + rng.Intn(nHi-nLo+1)
			m := mLo + rng.Intn(mHi-mLo+1)
			return runTheoremTrial(rng, thm, uf, sf, n, m)
		})
		if err != nil {
			return nil, err
		}
		cell := &theoremCell{}
		for _, res := range results {
			cell.add(res)
		}
		sum, err := stats.Summarize(cell.ratios)
		if err != nil {
			return nil, err
		}
		headroom := thm.Alpha() - sum.Max
		t.AddRow(thm.String(), thm.Scheduler().String(), thm.Adversary().String(),
			thm.Alpha(), sum.Count, sum.Mean, sum.P50, sum.P95, sum.P99, sum.Max, headroom)
		if cell.violations > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("theorem %v: %d bound violations (should be 0)", thm, cell.violations))
		}
		if thm == core.TheoremI1 && len(cell.ratios) > 0 {
			h, err := stats.NewHistogram(0.95, 2.05, 11)
			if err != nil {
				return nil, err
			}
			sorted := append([]float64(nil), cell.ratios...)
			sort.Float64s(sorted)
			for _, r := range sorted {
				h.Add(r)
			}
			histNote = "I.1 ratio histogram:\n" + h.Render(40)
		}
	}
	if histNote != "" {
		t.Notes = append(t.Notes, histNote)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("seed=%d trials/theorem=%d", cfg.Seed, trials))
	return t, nil
}
