package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"partfeas/internal/task"
)

func TestEDFFeasible(t *testing.T) {
	tests := []struct {
		util, speed float64
		want        bool
	}{
		{0.5, 1, true},
		{1.0, 1, true},
		{1.0 + 1e-9, 1, false},
		{2.0, 2, true},
		{2.1, 2, false},
		{0, 0.1, true},
	}
	for _, tc := range tests {
		if got := EDFFeasible(tc.util, tc.speed); got != tc.want {
			t.Errorf("EDFFeasible(%v, %v) = %v, want %v", tc.util, tc.speed, got, tc.want)
		}
	}
}

func TestEDFFeasibleSet(t *testing.T) {
	s := task.Set{{WCET: 1, Period: 2}, {WCET: 1, Period: 2}}
	if !EDFFeasibleSet(s, 1) {
		t.Error("total utilization exactly 1 should pass EDF on speed 1")
	}
	if EDFFeasibleSet(s, 0.99) {
		t.Error("utilization 1 must fail on speed 0.99")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); got != 1 {
		t.Errorf("LL(1) = %v, want 1", got)
	}
	want2 := 2 * (math.Sqrt2 - 1) // ≈ 0.8284
	if got := LiuLaylandBound(2); math.Abs(got-want2) > 1e-12 {
		t.Errorf("LL(2) = %v, want %v", got, want2)
	}
	if got := LiuLaylandBound(0); got != 0 {
		t.Errorf("LL(0) = %v, want 0", got)
	}
	if got := LiuLaylandBound(-3); got != 0 {
		t.Errorf("LL(-3) = %v, want 0", got)
	}
	// Monotone decreasing toward ln 2.
	prev := LiuLaylandBound(1)
	for n := 2; n <= 1000; n++ {
		cur := LiuLaylandBound(n)
		if cur > prev {
			t.Fatalf("LL not monotone at n=%d: %v > %v", n, cur, prev)
		}
		prev = cur
	}
	if prev < Ln2 {
		t.Errorf("LL(1000) = %v below ln2 %v", prev, Ln2)
	}
	if prev-Ln2 > 1e-3 {
		t.Errorf("LL(1000) = %v far from ln2", prev)
	}
}

func TestRMSFeasibleLL(t *testing.T) {
	// Classic: one task up to 1.0; two tasks up to 0.828; many tasks ln 2.
	if !RMSFeasibleLL(1.0, 1, 1) {
		t.Error("single task u=1 passes LL")
	}
	if RMSFeasibleLL(0.84, 2, 1) {
		t.Error("two tasks u=0.84 must fail LL (bound 0.828)")
	}
	if !RMSFeasibleLL(0.82, 2, 1) {
		t.Error("two tasks u=0.82 passes LL")
	}
	// Speed scales the bound.
	if !RMSFeasibleLL(1.6, 2, 2) {
		t.Error("speed-2 machine doubles LL budget")
	}
}

func TestRMSFeasibleHyperbolic(t *testing.T) {
	// Two tasks u = 0.41 each: LL bound 0.828 fails at 0.84 total,
	// hyperbolic (1.42)^2 = 2.0164 > 2 fails too; u = 0.41, 0.41 gives
	// 1.41*1.41 = 1.9881 <= 2 passes.
	s, err := task.FromUtilizations([]float64{0.41, 0.41}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !RMSFeasibleHyperbolic(s, 1) {
		t.Error("hyperbolic should accept 0.41+0.41")
	}
	s2, err := task.FromUtilizations([]float64{0.45, 0.45}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if RMSFeasibleHyperbolic(s2, 1) {
		t.Error("hyperbolic should reject 0.45+0.45 (1.45^2 = 2.1025)")
	}
	if !RMSFeasibleHyperbolic(task.Set{}, 0) {
		t.Error("empty set on zero speed is trivially schedulable")
	}
	if RMSFeasibleHyperbolic(s, 0) {
		t.Error("nonempty set on zero speed is not schedulable")
	}
}

func TestHyperbolicDominatesLL(t *testing.T) {
	// Everything LL accepts, hyperbolic accepts too.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(8)
		us := make([]float64, n)
		for i := range us {
			us[i] = rng.Float64() * 0.9
		}
		s, err := task.FromUtilizations(us, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if RMSFeasibleLLSet(s, 1) && !RMSFeasibleHyperbolic(s, 1) {
			t.Fatalf("hyperbolic rejected an LL-accepted set: %v", s)
		}
	}
}

func TestResponseTimesClassic(t *testing.T) {
	// Liu & Layland's style example: T1=(1,4), T2=(2,6), T3=(3,12) on speed 1.
	// R1 = 1. R2 = 2 + ceil(R2/4)*1 → 3. R3: 3 + ceil(R/4)*1 + ceil(R/6)*2.
	// R=3: 3+1+2=6; R=6: 3+2+2=7; R=7: 3+2+4=9; R=9: 3+3+4=10; R=10: 3+3+4=10 → 10.
	s := task.Set{
		{Name: "t1", WCET: 1, Period: 4},
		{Name: "t2", WCET: 2, Period: 6},
		{Name: "t3", WCET: 3, Period: 12},
	}
	rts, err := ResponseTimes(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 10}
	for i := range want {
		if math.Abs(rts[i]-want[i]) > 1e-9 {
			t.Errorf("R[%d] = %v, want %v", i, rts[i], want[i])
		}
	}
	ok, err := RMSFeasibleExact(s, 1)
	if err != nil || !ok {
		t.Errorf("classic set should be exactly schedulable: %v %v", ok, err)
	}
}

func TestResponseTimesUnschedulable(t *testing.T) {
	// Total utilization 1.1 > 1 cannot be RM schedulable.
	s := task.Set{
		{WCET: 6, Period: 10},
		{WCET: 5, Period: 10},
	}
	rts, err := ResponseTimes(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Periods tie, so WCET 5 gets priority; the WCET-6 task (index 0)
	// cannot finish by its deadline.
	if !math.IsInf(rts[0], 1) {
		t.Errorf("lower-priority response should be +Inf, got %v", rts[0])
	}
	if math.Abs(rts[1]-5) > 1e-9 {
		t.Errorf("higher-priority response = %v, want 5", rts[1])
	}
	ok, err := RMSFeasibleExact(s, 1)
	if err != nil || ok {
		t.Errorf("overloaded set reported schedulable")
	}
}

func TestResponseTimesSpeedScaling(t *testing.T) {
	s := task.Set{
		{WCET: 2, Period: 4},
		{WCET: 4, Period: 8},
	}
	// On speed 1: R2 = 4 + ceil(R/4)*2; R=4→4+2*2=8; R=8→4+2*2=8 → exactly 8 = deadline.
	ok, err := RMSFeasibleExact(s, 1)
	if err != nil || !ok {
		t.Errorf("harmonic full-utilization set should pass on speed 1: %v %v", ok, err)
	}
	// On speed 2: R1 = 1; R2 = 2 + ceil(R/4)*1 fixes at 3.
	rts, err := ResponseTimes(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rts[0]-1) > 1e-9 || math.Abs(rts[1]-3) > 1e-9 {
		t.Errorf("speed-2 response times = %v, want [1 3]", rts)
	}
}

func TestResponseTimesErrors(t *testing.T) {
	if _, err := ResponseTimes(task.Set{}, 1); err == nil {
		t.Error("empty set should error (validation)")
	}
	s := task.Set{{WCET: 1, Period: 2}}
	if _, err := ResponseTimes(s, 0); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := ResponseTimes(s, math.NaN()); err == nil {
		t.Error("NaN speed should error")
	}
	if ok, err := RMSFeasibleExact(task.Set{}, 1); err != nil || !ok {
		t.Error("empty set is trivially schedulable")
	}
}

// Exact RTA accepts everything LL accepts (LL is sufficient).
func TestExactDominatesLL(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		s := make(task.Set, n)
		for i := range s {
			p := int64(1 + rng.Intn(30))
			c := int64(1 + rng.Intn(int(p)))
			s[i] = task.Task{WCET: c, Period: p}
		}
		if RMSFeasibleLLSet(s, 1) {
			ok, err := RMSFeasibleExact(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("exact RTA rejected an LL-accepted set: %v", s)
			}
		}
	}
}

// Exact RTA accepts everything hyperbolic accepts.
func TestExactDominatesHyperbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		s := make(task.Set, n)
		for i := range s {
			p := int64(1 + rng.Intn(30))
			c := int64(1 + rng.Intn(int(p)))
			s[i] = task.Task{WCET: c, Period: p}
		}
		if RMSFeasibleHyperbolic(s, 1) {
			ok, err := RMSFeasibleExact(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("exact RTA rejected a hyperbolic-accepted set: %v", s)
			}
		}
	}
}

// Property: response times are monotone in speed — faster machine, no
// larger response time.
func TestQuickResponseMonotoneInSpeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		s := make(task.Set, n)
		for i := range s {
			p := int64(2 + rng.Intn(20))
			c := int64(1 + rng.Intn(int(p)))
			s[i] = task.Task{WCET: c, Period: p}
		}
		r1, err1 := ResponseTimes(s, 1)
		r2, err2 := ResponseTimes(s, 1.5)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range r1 {
			if r2[i] > r1[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxTasksAtBound(t *testing.T) {
	// totalUtil 0 always fits more tasks.
	if got := MaxTasksAtBound(0, 1); got < 1000 {
		t.Errorf("MaxTasksAtBound(0,1) = %d, want huge", got)
	}
	// Below ln2: unbounded.
	if got := MaxTasksAtBound(0.69, 1); got < 1000 {
		t.Errorf("MaxTasksAtBound(0.69,1) = %d, want huge", got)
	}
	// Exactly above single-task bound.
	if got := MaxTasksAtBound(1.01, 1); got != 0 {
		t.Errorf("MaxTasksAtBound(1.01,1) = %d, want 0", got)
	}
	// Between LL(2) = 0.828 and LL(1) = 1: exactly one task fits.
	if got := MaxTasksAtBound(0.9, 1); got != 1 {
		t.Errorf("MaxTasksAtBound(0.9,1) = %d, want 1", got)
	}
	if got := MaxTasksAtBound(0.5, 0); got != 0 {
		t.Errorf("MaxTasksAtBound on zero speed = %d, want 0", got)
	}
}

func BenchmarkResponseTimes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := make(task.Set, 50)
	for i := range s {
		p := int64(10 + rng.Intn(1000))
		c := int64(1 + rng.Intn(int(p)/10))
		s[i] = task.Task{WCET: c, Period: p}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResponseTimes(s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyperbolic(b *testing.B) {
	s, err := task.FromUtilizations([]float64{0.1, 0.2, 0.15, 0.05, 0.1}, 1000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		RMSFeasibleHyperbolic(s, 1)
	}
}

// TestLiuLaylandBoundMemoMatchesClosedForm asserts the precomputed table
// is indistinguishable from the closed form on both sides of the table
// boundary, and that lookups do not allocate.
func TestLiuLaylandBoundMemoMatchesClosedForm(t *testing.T) {
	for n := 1; n <= llTableSize+8; n++ {
		if got, want := LiuLaylandBound(n), liuLaylandClosed(n); got != want {
			t.Fatalf("LiuLaylandBound(%d) = %v, closed form %v", n, got, want)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		for n := 1; n < 64; n++ {
			_ = LiuLaylandBound(n)
		}
	}); avg != 0 {
		t.Errorf("LiuLaylandBound allocates: %v", avg)
	}
}
