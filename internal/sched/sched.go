// Package sched implements single-machine schedulability tests for
// implicit-deadline sporadic task sets on a speed-s processor.
//
// These are the building blocks the paper's partitioned tests compose:
//
//   - EDF utilization test (Theorem II.2, Liu & Layland): a set S is
//     EDF-schedulable on speed s iff Σ w_i <= s. Exact for implicit
//     deadlines.
//   - RMS Liu–Layland bound (Theorem II.3): S is RM-schedulable on speed s
//     if Σ w_i <= |S|(2^{1/|S|} − 1)·s; the bound decreases to ln 2.
//     Sufficient, not necessary.
//   - Hyperbolic bound (Bini & Buttazzo): S is RM-schedulable if
//     Π (w_i/s + 1) <= 2. Strictly dominates Liu–Layland. Used as an
//     ablation admission test (experiment E11).
//   - Exact response-time analysis (Joseph & Pandya / Audsley) for
//     rate-monotonic fixed priorities: necessary and sufficient.
//
// All tests take the task utilizations as already divided by nothing —
// speed is passed separately so callers can apply speed augmentation α by
// scaling s.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"partfeas/internal/task"
)

// ErrNoConvergence is returned by response-time analysis when the fixed
// point iteration exceeds its iteration budget (only possible for
// pathological near-1 utilizations due to float rounding).
var ErrNoConvergence = errors.New("sched: response-time iteration did not converge")

// EDFFeasible reports whether the utilization total fits EDF on a machine
// of the given speed: Σ w_i <= s. This is exact (necessary and
// sufficient) for implicit-deadline sporadic sets.
func EDFFeasible(totalUtil, speed float64) bool {
	return totalUtil <= speed
}

// EDFFeasibleSet is EDFFeasible applied to a task set.
func EDFFeasibleSet(s task.Set, speed float64) bool {
	return EDFFeasible(s.TotalUtilization(), speed)
}

// llTableSize bounds the memoized Liu–Layland values. The bound sits in
// the innermost admission loop of the partitioner, where recomputing
// 2^{1/(n+1)} per query dominates; per-machine task counts beyond this
// size are far outside every workload family, and the closed form remains
// as fallback.
const llTableSize = 256

var llTable = func() [llTableSize + 1]float64 {
	var t [llTableSize + 1]float64
	for n := 1; n <= llTableSize; n++ {
		t[n] = liuLaylandClosed(n)
	}
	return t
}()

func liuLaylandClosed(n int) float64 {
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// LiuLaylandBound returns n(2^{1/n} − 1), the RM utilization bound for n
// tasks. By convention the bound for n <= 0 is 0 (nothing fits on no
// tasks' worth of budget) and the bound decreases monotonically toward
// ln 2 ≈ 0.6931 as n grows. Values for n ≤ 256 are served from a
// precomputed table (identical to the closed form).
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= llTableSize {
		return llTable[n]
	}
	return liuLaylandClosed(n)
}

// Ln2 is the limiting Liu–Layland bound.
const Ln2 = math.Ln2

// RMSFeasibleLL reports whether n tasks of total utilization totalUtil
// pass the Liu–Layland sufficient test on a machine of the given speed:
// Σ w_i <= n(2^{1/n} − 1)·s.
func RMSFeasibleLL(totalUtil float64, n int, speed float64) bool {
	return totalUtil <= LiuLaylandBound(n)*speed
}

// RMSFeasibleLLSet is RMSFeasibleLL applied to a task set.
func RMSFeasibleLLSet(s task.Set, speed float64) bool {
	return RMSFeasibleLL(s.TotalUtilization(), len(s), speed)
}

// RMSFeasibleHyperbolic reports whether the set passes the Bini–Buttazzo
// hyperbolic sufficient test on the given speed: Π (w_i/s + 1) <= 2.
func RMSFeasibleHyperbolic(s task.Set, speed float64) bool {
	if speed <= 0 {
		return len(s) == 0
	}
	prod := 1.0
	for _, t := range s {
		prod *= t.Utilization()/speed + 1
		if prod > 2 {
			return false
		}
	}
	return prod <= 2
}

// ResponseTimes computes the exact worst-case response time of every task
// in s under rate-monotonic preemptive fixed-priority scheduling on a
// machine of the given speed. Priorities are assigned by period (smaller
// period = higher priority), ties broken by WCET then name for
// determinism. The returned slice is indexed like s.
//
// The response time of task i solves R = C_i/s + Σ_{j∈hp(i)} ⌈R/P_j⌉·C_j/s.
// When the iteration exceeds the deadline P_i the task is unschedulable
// and its entry is +Inf.
func ResponseTimes(s task.Set, speed float64) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: ResponseTimes: %w", err)
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("sched: ResponseTimes: speed %v must be positive and finite", speed)
	}
	// Priority order: rate monotonic.
	idx := rmOrder(s)
	res := make([]float64, len(s))
	for rank, i := range idx {
		r, err := responseTime(s, idx[:rank], i, speed)
		if err != nil {
			return nil, err
		}
		res[i] = r
	}
	return res, nil
}

// RMSFeasibleExact reports whether the set is exactly RM-schedulable on
// the given speed, via response-time analysis. This is necessary and
// sufficient for the synchronous (critical-instant) release pattern,
// which is the worst case for sporadic tasks.
func RMSFeasibleExact(s task.Set, speed float64) (bool, error) {
	if len(s) == 0 {
		return true, nil
	}
	rts, err := ResponseTimes(s, speed)
	if err != nil {
		return false, err
	}
	for i, r := range rts {
		if r > float64(s[i].Period) {
			return false, nil
		}
	}
	return true, nil
}

// rmOrder returns task indices sorted by rate-monotonic priority (highest
// first).
func rmOrder(s task.Set) []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := s[idx[a]], s[idx[b]]
		if ta.Period != tb.Period {
			return ta.Period < tb.Period
		}
		if ta.WCET != tb.WCET {
			return ta.WCET < tb.WCET
		}
		return ta.Name < tb.Name
	})
	return idx
}

// responseTime computes the fixed point for task i given the indices of
// strictly-higher-priority tasks hp. Returns +Inf when the response
// exceeds the deadline (no need to iterate past it).
func responseTime(s task.Set, hp []int, i int, speed float64) (float64, error) {
	ci := float64(s[i].WCET) / speed
	deadline := float64(s[i].Period)
	r := ci
	const maxIter = 1 << 20
	for iter := 0; iter < maxIter; iter++ {
		next := ci
		for _, j := range hp {
			next += math.Ceil(r/float64(s[j].Period)) * float64(s[j].WCET) / speed
		}
		if next > deadline {
			return math.Inf(1), nil
		}
		if next <= r {
			// Fixed point reached (next can only grow with r; next == r
			// terminates, next < r means rounding noise — accept r).
			return next, nil
		}
		r = next
	}
	return 0, ErrNoConvergence
}

// MaxTasksAtBound returns the largest k such that adding a (k+1)-th task
// could still pass the Liu–Layland test at the given utilization headroom,
// i.e. the admission capacity hint used by first-fit diagnostics. It
// returns 0 when even one task cannot fit.
func MaxTasksAtBound(totalUtil, speed float64) int {
	if speed <= 0 {
		return 0
	}
	// LiuLaylandBound(n) decreases monotonically toward ln 2, so any
	// utilization at or below ln2·speed fits arbitrarily many tasks.
	if totalUtil <= Ln2*speed {
		return math.MaxInt32
	}
	// Otherwise scan the decreasing bound; LL(n)·speed crosses below
	// totalUtil at n ≈ ln²2 / (2(totalUtil/speed − ln2)), capped to keep
	// the scan bounded for utilizations barely above the limit.
	const cap = 1 << 20
	for n := 1; n <= cap; n++ {
		if totalUtil > LiuLaylandBound(n)*speed {
			return n - 1
		}
	}
	return cap
}
