// Package leakcheck asserts that a test leaves no goroutines behind. It
// is a hand-rolled runtime.NumGoroutine before/after comparison (no
// external dependencies): worker pools that drain cleanly return to the
// baseline within the grace window; a leaked worker keeps the count high
// and fails the test.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that fails
// t if, after a grace period for in-flight goroutines to exit, the count
// still exceeds the snapshot. Call it at the top of any test that spins
// up worker pools (including cancel-mid-flight and panic-injection
// cases).
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Poll: pool goroutines observe the closed channel / cancelled
		// context asynchronously, so give them up to ~2s to unwind before
		// declaring a leak.
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("leakcheck: %d goroutines before, %d after\n%s", before, after, buf[:n])
		}
	})
}
