package exact

import (
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/core"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func TestFeasibleRMSValidation(t *testing.T) {
	ts := mustSet(t, []float64{0.5})
	p := machine.New(1)
	if _, err := FeasibleRMS(task.Set{}, p, 1, Options{}); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := FeasibleRMS(ts, machine.Platform{}, 1, Options{}); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := FeasibleRMS(ts, p, 0, Options{}); err == nil {
		t.Error("zero alpha should fail")
	}
	if _, err := FeasibleRMS(ts, p, math.NaN(), Options{}); err == nil {
		t.Error("NaN alpha should fail")
	}
}

func TestFeasibleRMSBasic(t *testing.T) {
	// Harmonic set: RM schedules up to utilization 1 on one machine.
	ts := task.Set{
		{WCET: 1, Period: 2},
		{WCET: 1, Period: 4},
		{WCET: 1, Period: 4},
	}
	ok, err := FeasibleRMS(ts, machine.New(1), 1, Options{})
	if err != nil || !ok {
		t.Errorf("harmonic U=1: %v (%v), want feasible", ok, err)
	}
	// The classic RM-infeasible pair on one machine…
	pair := task.Set{
		{WCET: 2, Period: 5},
		{WCET: 4, Period: 7},
	}
	ok, err = FeasibleRMS(pair, machine.New(1), 1, Options{})
	if err != nil || ok {
		t.Errorf("(2,5),(4,7) on one machine: %v (%v), want infeasible", ok, err)
	}
	// …fits trivially on two machines.
	ok, err = FeasibleRMS(pair, machine.New(1, 1), 1, Options{})
	if err != nil || !ok {
		t.Errorf("(2,5),(4,7) on two machines: %v (%v), want feasible", ok, err)
	}
}

// σ_part ≤ σ_partRMS ≤ σ_part/ln2: the RMS optimum sits between the EDF
// optimum and its Liu–Layland inflation.
func TestMinScalingRMSBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(3)
		ts := make(task.Set, n)
		for i := range ts {
			p := int64(2 + rng.Intn(20))
			c := int64(1 + rng.Intn(int(p)))
			ts[i] = task.Task{WCET: c, Period: p}
		}
		p := machine.New(func() []float64 {
			ss := make([]float64, m)
			for j := range ss {
				ss[j] = 0.5 + rng.Float64()*2
			}
			return ss
		}()...)
		edf, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rms, err := MinScalingRMS(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rms < edf.Sigma-1e-6 {
			t.Fatalf("trial %d: σ_partRMS %v < σ_part %v", trial, rms, edf.Sigma)
		}
		if rms > edf.Sigma/math.Ln2+1e-6 {
			t.Fatalf("trial %d: σ_partRMS %v > σ_part/ln2 %v", trial, rms, edf.Sigma/math.Ln2)
		}
		// Verify minimality bracketing: feasible at rms·(1+ε), infeasible
		// just below (unless rms == edf.Sigma, the bracket floor).
		ok, err := FeasibleRMS(ts, p, rms*(1+1e-6), Options{})
		if err != nil || !ok {
			t.Fatalf("trial %d: infeasible at reported σ_partRMS: %v (%v)", trial, ok, err)
		}
		if rms > edf.Sigma*(1+1e-6) {
			ok, err := FeasibleRMS(ts, p, rms*(1-1e-4), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("trial %d: feasible below reported σ_partRMS %v", trial, rms)
			}
		}
	}
}

// The paper's FF-RMS test accepts at 2.414·σ_part (Theorem I.2); against
// the weaker RMS-partitioned adversary the same acceptance certainly
// holds at 2.414·σ_partRMS.
func TestFFRMSAgainstRMSOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(3)
		ts := make(task.Set, n)
		for i := range ts {
			p := int64(2 + rng.Intn(20))
			c := int64(1 + rng.Intn(int(p)))
			ts[i] = task.Task{WCET: c, Period: p}
		}
		p := machine.New(func() []float64 {
			ss := make([]float64, m)
			for j := range ss {
				ss[j] = 0.5 + rng.Float64()*2
			}
			return ss
		}()...)
		rms, err := MinScalingRMS(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.TestTheorem(ts, p.Scaled(rms*(1+1e-9)), core.TheoremI2)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("trial %d: FF-RMS rejected at 2.414·σ_partRMS (σ=%v)", trial, rms)
		}
	}
}

func BenchmarkMinScalingRMS(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ts := make(task.Set, 8)
	for i := range ts {
		p := int64(2 + rng.Intn(20))
		c := int64(1 + rng.Intn(int(p)))
		ts[i] = task.Task{WCET: c, Period: p}
	}
	p := machine.New(1, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinScalingRMS(ts, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
