package exact

import (
	"fmt"
	"math"
	"sort"

	"partfeas/internal/machine"
	"partfeas/internal/sched"
	"partfeas/internal/task"
)

// FeasibleRMS reports whether some partition exists in which every
// machine's assigned set passes exact rate-monotonic response-time
// analysis at speed alpha·s_j — the optimal *partitioned RMS* scheduler,
// a strictly weaker adversary than the EDF-partitioned optimum of
// Theorems I.1/I.2. Branch-and-bound: tasks in non-increasing utilization
// order, per-node admission via RTA (monotone: adding tasks never helps),
// equal-machine symmetry pruning, and a fast utilization-based prune
// (RTA-feasible implies utilization ≤ speed).
func FeasibleRMS(ts task.Set, p machine.Platform, alpha float64, opts Options) (bool, error) {
	if err := ts.Validate(); err != nil {
		return false, fmt.Errorf("exact: %w", err)
	}
	if err := p.Validate(); err != nil {
		return false, fmt.Errorf("exact: %w", err)
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return false, fmt.Errorf("exact: alpha %v must be positive", alpha)
	}
	budget := opts.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}

	n, m := len(ts), len(p)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	utils := ts.Utilizations()
	sort.SliceStable(order, func(a, b int) bool { return utils[order[a]] > utils[order[b]] })

	speeds := make([]float64, m)
	for j := range p {
		speeds[j] = alpha * p[j].Speed
	}

	s := &rmsSolver{
		ts:     ts,
		order:  order,
		speeds: speeds,
		loads:  make([]float64, m),
		sets:   make([]task.Set, m),
		budget: budget,
	}
	ok := s.dfs(0)
	if s.exceeded {
		return false, fmt.Errorf("exact: RMS n=%d m=%d: %w", n, m, ErrBudgetExceeded)
	}
	return ok, nil
}

type rmsSolver struct {
	ts       task.Set
	order    []int
	speeds   []float64
	loads    []float64
	sets     []task.Set
	nodes    int64
	budget   int64
	exceeded bool
}

func (s *rmsSolver) dfs(k int) bool {
	s.nodes++
	if s.nodes > s.budget {
		s.exceeded = true
		return false
	}
	if k == len(s.order) {
		return true
	}
	tk := s.ts[s.order[k]]
	w := tk.Utilization()
	for j := range s.speeds {
		// Symmetry: skip machines identical (speed and current content
		// signature) to an earlier sibling.
		if s.duplicate(j) {
			continue
		}
		// Necessary condition first — RTA is the expensive check.
		if s.loads[j]+w > s.speeds[j]+1e-12 {
			continue
		}
		candidate := append(s.sets[j], tk)
		ok, err := sched.RMSFeasibleExact(candidate, s.speeds[j])
		if err != nil || !ok {
			continue
		}
		s.sets[j] = candidate
		s.loads[j] += w
		if s.dfs(k + 1) {
			return true
		}
		s.sets[j] = s.sets[j][:len(s.sets[j])-1]
		s.loads[j] -= w
		if s.exceeded {
			return false
		}
	}
	return false
}

func (s *rmsSolver) duplicate(j int) bool {
	for i := 0; i < j; i++ {
		if s.speeds[i] == s.speeds[j] && s.loads[i] == s.loads[j] && len(s.sets[i]) == len(s.sets[j]) {
			same := true
			for t := range s.sets[i] {
				if s.sets[i][t] != s.sets[j][t] {
					same = false
					break
				}
			}
			if same {
				return true
			}
		}
	}
	return false
}

// MinScalingRMS computes σ_partRMS: the minimal uniform speed scaling at
// which a partitioned RMS schedule exists, by bisection over FeasibleRMS.
// The bracket comes from the EDF-partitioned optimum σ_part: RMS needs
// at least as much speed as EDF (lo = σ_part) and at most σ_part/ln 2
// (the same partition passes the Liu–Layland bound there).
func MinScalingRMS(ts task.Set, p machine.Platform, opts Options) (float64, error) {
	base, err := MinScaling(ts, p, opts)
	if err != nil {
		return 0, err
	}
	lo := base.Sigma
	hi := base.Sigma / math.Ln2 * (1 + 1e-9)
	okHi, err := FeasibleRMS(ts, p, hi, opts)
	if err != nil {
		return 0, err
	}
	if !okHi {
		return 0, fmt.Errorf("exact: RMS bracket top %v unexpectedly infeasible", hi)
	}
	okLo, err := FeasibleRMS(ts, p, lo, opts)
	if err != nil {
		return 0, err
	}
	if okLo {
		return lo, nil
	}
	for hi-lo > 1e-7*lo {
		mid := (lo + hi) / 2
		ok, err := FeasibleRMS(ts, p, mid, opts)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
