// Package exact computes the partitioned-optimal adversary of Theorems
// I.1 and I.2: the best possible partitioned scheduler.
//
// A partitioned scheduler assigns every task to exactly one machine; the
// optimal per-machine policy for implicit-deadline sporadic tasks is EDF,
// which succeeds iff the machine's assigned utilization does not exceed
// its speed (Theorem II.2). The adversary's power is therefore captured by
// a single number,
//
//	σ_part(τ, M) = min over assignments A of max_j load_j(A) / s_j,
//
// the minimal uniform speed scaling under which some partition fits.
// Deciding σ_part ≤ 1 is strongly NP-hard (bin packing with variable bin
// sizes), so the solver is a branch-and-bound exact search intended for
// the small instances the experiments compare against (n ≲ 20): depth-
// first over tasks in non-increasing utilization order with an LPT-style
// incumbent, load/total lower bounds, and equal-machine symmetry pruning.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"partfeas/internal/faultinject"
	"partfeas/internal/machine"
	"partfeas/internal/pipeline"
	"partfeas/internal/task"
)

// ErrBudgetExceeded is returned when the search visits more nodes than the
// configured budget. Callers can treat it as "instance too large for the
// exact adversary".
var ErrBudgetExceeded = errors.New("exact: node budget exceeded")

// DefaultNodeBudget bounds the number of search nodes visited by a single
// MinScaling call. At ~50ns/node this is a few hundred milliseconds worst
// case.
const DefaultNodeBudget = 20_000_000

// cancelCheckInterval is how many search nodes pass between cooperative
// context checks: frequent enough that cancellation latency stays in the
// microseconds, sparse enough that the atomic/ctx overhead vanishes
// against the per-node arithmetic.
const cancelCheckInterval = 4096

// Options tunes the solver.
type Options struct {
	// NodeBudget overrides DefaultNodeBudget when positive.
	NodeBudget int64
	// Workers overrides GOMAXPROCS for MinScalingParallel when positive.
	// The sequential solver ignores it.
	Workers int
}

// Result is the outcome of an exact solve.
type Result struct {
	// Sigma is σ_part: the minimal uniform speed scaling admitting a
	// partition. When Degraded is true it is instead the best upper
	// bound the interrupted search certified (at worst the polynomial
	// LPT-greedy bound the search was seeded with).
	Sigma float64
	// Assignment maps each task index (in the order of the input set) to
	// a machine index (in the order of the input platform) achieving
	// Sigma.
	Assignment []int
	// Nodes is the number of search nodes visited.
	Nodes int64
	// Degraded is true when the search stopped early (node budget,
	// deadline or cancellation) and Sigma is the incumbent upper bound
	// rather than the proved optimum.
	Degraded bool
}

// orders computes the task and machine permutations the solver explores:
// tasks in non-increasing utilization order (big rocks first shrink the
// tree), machines in non-increasing speed order, both remembering
// original indices for the assignment translation.
func orders(ts task.Set, p machine.Platform) (order, mOrder []int, utils, speeds []float64) {
	n, m := len(ts), len(p)
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	utils = ts.Utilizations()
	sort.SliceStable(order, func(a, b int) bool { return utils[order[a]] > utils[order[b]] })
	mOrder = make([]int, m)
	for j := range mOrder {
		mOrder[j] = j
	}
	speeds = p.Speeds()
	sort.SliceStable(mOrder, func(a, b int) bool { return speeds[mOrder[a]] > speeds[mOrder[b]] })
	return order, mOrder, utils, speeds
}

// MinScaling computes σ_part exactly. It is Search without cancellation.
func MinScaling(ts task.Set, p machine.Platform, opts Options) (Result, error) {
	return Search(context.Background(), ts, p, opts)
}

// Search computes σ_part exactly, observing ctx cooperatively (checked
// every cancelCheckInterval nodes alongside the node budget, so
// cancellation latency is bounded by a few thousand node expansions).
//
// On budget exhaustion, deadline expiry or cancellation, Search returns
// the partial Result — the incumbent upper bound and its assignment,
// marked Degraded — together with the error (ErrBudgetExceeded, or a
// *pipeline.Error wrapping the ctx cause). The incumbent is never worse
// than the polynomial LPT-greedy bound the search is seeded with, so a
// degraded result is always usable as a graceful fallback.
func Search(ctx context.Context, ts task.Set, p machine.Platform, opts Options) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	budget := opts.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}

	n, m := len(ts), len(p)
	order, mOrder, utils, speeds := orders(ts, p)

	s := &solver{
		n: n, m: m,
		util:  make([]float64, n),
		speed: make([]float64, m),
		load:  make([]float64, m),
		asg:   make([]int, n),
		best:  make([]int, n),
		ctx:   ctx,
	}
	for k, i := range order {
		s.util[k] = utils[i]
	}
	for k, j := range mOrder {
		s.speed[k] = speeds[j]
	}
	// Suffix sums of remaining utilization for the total-capacity bound.
	s.suffix = make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		s.suffix[k] = s.suffix[k+1] + s.util[k]
	}
	s.totalSpeed = 0
	for _, sp := range s.speed {
		s.totalSpeed += sp
	}
	s.budget = budget

	// Incumbent: LPT greedy (assign each task to the machine minimizing
	// the resulting normalized load). Always yields a finite bound.
	s.incumbent = s.greedy()
	copy(s.best, s.asgGreedy)

	s.dfs(0, 0)

	// Translate the permuted assignment back to input indexing. On an
	// interrupted search this is the incumbent's assignment — the best
	// partition certified so far.
	assignment := make([]int, n)
	for k, i := range order {
		assignment[i] = mOrder[s.best[k]]
	}
	res := Result{Sigma: s.incumbent, Assignment: assignment, Nodes: s.nodes}
	switch {
	case s.cancelErr != nil:
		res.Degraded = true
		return res, pipeline.New(pipeline.StageExact, fmt.Sprintf("n=%d m=%d", n, m), s.cancelErr)
	case s.exceeded:
		res.Degraded = true
		return res, fmt.Errorf("exact: n=%d m=%d: %w", n, m, ErrBudgetExceeded)
	}
	return res, nil
}

// MinScalingBounded is Search with graceful degradation: when the search
// runs out of node budget or ctx deadline, it returns the Degraded
// incumbent bound with a nil error instead of failing. Explicit
// cancellation (context.Canceled) still propagates as an error — the
// caller asked the whole pipeline to stop, not to degrade.
func MinScalingBounded(ctx context.Context, ts task.Set, p machine.Platform, opts Options) (Result, error) {
	res, err := Search(ctx, ts, p, opts)
	if err == nil || errors.Is(err, ErrBudgetExceeded) || errors.Is(err, context.DeadlineExceeded) {
		return res, nil
	}
	return res, err
}

// Feasible reports whether some partition fits the platform at its
// original speeds (σ_part ≤ 1, with a hair of tolerance for boundary
// instances).
func Feasible(ts task.Set, p machine.Platform, opts Options) (bool, error) {
	res, err := MinScaling(ts, p, opts)
	if err != nil {
		return false, err
	}
	return res.Sigma <= 1+1e-12, nil
}

type solver struct {
	n, m       int
	util       []float64 // tasks, non-increasing
	speed      []float64 // machines, non-increasing
	load       []float64 // current load per machine
	suffix     []float64 // suffix[k] = Σ_{i>=k} util[i]
	totalSpeed float64
	asg        []int // current assignment (task k → machine index)
	best       []int
	asgGreedy  []int
	incumbent  float64
	nodes      int64
	budget     int64
	exceeded   bool
	ctx        context.Context // nil = never cancelled
	cancelErr  error           // ctx cause once observed
}

// stopped reports whether the search must unwind (budget or ctx), and
// performs the periodic cooperative checks.
func (s *solver) stopped() bool {
	if s.exceeded || s.cancelErr != nil {
		return true
	}
	if s.nodes > s.budget {
		s.exceeded = true
		return true
	}
	if s.nodes%cancelCheckInterval == 0 {
		faultinject.Hit(faultinject.SiteExactNode, s.nodes)
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				s.cancelErr = err
				return true
			}
		}
	}
	return false
}

// greedy computes the LPT incumbent and records its assignment.
func (s *solver) greedy() float64 {
	loads := make([]float64, s.m)
	s.asgGreedy = make([]int, s.n)
	worst := 0.0
	for k := 0; k < s.n; k++ {
		bestJ, bestVal := 0, math.Inf(1)
		for j := 0; j < s.m; j++ {
			v := (loads[j] + s.util[k]) / s.speed[j]
			if v < bestVal-1e-15 {
				bestVal, bestJ = v, j
			}
		}
		loads[bestJ] += s.util[k]
		s.asgGreedy[k] = bestJ
		if bestVal > worst {
			worst = bestVal
		}
	}
	return worst
}

// dfs assigns task k given the maximum normalized load so far.
func (s *solver) dfs(k int, maxNorm float64) {
	s.nodes++
	if s.stopped() {
		return
	}
	if maxNorm >= s.incumbent-1e-15 {
		return // cannot improve
	}
	if k == s.n {
		s.incumbent = maxNorm
		copy(s.best, s.asg)
		return
	}
	// Total-capacity lower bound: even spreading all work perfectly
	// cannot beat total utilization / total speed.
	lb := s.suffix[0] / s.totalSpeed
	if lb >= s.incumbent-1e-15 && lb > maxNorm {
		// The global average bound is static; only prune when it alone
		// already meets the incumbent.
		return
	}

	// Try machines; skip equivalent siblings (same speed, same load).
	for j := 0; j < s.m; j++ {
		if dup := s.duplicateSibling(j); dup {
			continue
		}
		newNorm := (s.load[j] + s.util[k]) / s.speed[j]
		cand := math.Max(maxNorm, newNorm)
		if cand >= s.incumbent-1e-15 {
			continue
		}
		s.load[j] += s.util[k]
		s.asg[k] = j
		s.dfs(k+1, cand)
		s.load[j] -= s.util[k]
		if s.exceeded || s.cancelErr != nil {
			return
		}
	}
}

// duplicateSibling reports whether an earlier machine has identical speed
// and identical current load — trying this one would explore a symmetric
// subtree.
func (s *solver) duplicateSibling(j int) bool {
	for i := 0; i < j; i++ {
		if s.speed[i] == s.speed[j] && s.load[i] == s.load[j] {
			return true
		}
	}
	return false
}

// BruteForceMinScaling enumerates all m^n assignments. Exponential; only
// for cross-validating the branch-and-bound in tests (n·m small).
func BruteForceMinScaling(ts task.Set, p machine.Platform) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, fmt.Errorf("exact: %w", err)
	}
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("exact: %w", err)
	}
	n, m := len(ts), len(p)
	if pow := math.Pow(float64(m), float64(n)); pow > 5e7 {
		return 0, fmt.Errorf("exact: brute force too large (%v assignments)", pow)
	}
	utils := ts.Utilizations()
	speeds := p.Speeds()
	asg := make([]int, n)
	best := math.Inf(1)
	loads := make([]float64, m)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			worst := 0.0
			for j := 0; j < m; j++ {
				if v := loads[j] / speeds[j]; v > worst {
					worst = v
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for j := 0; j < m; j++ {
			asg[k] = j
			loads[j] += utils[k]
			rec(k + 1)
			loads[j] -= utils[k]
		}
	}
	rec(0)
	return best, nil
}
