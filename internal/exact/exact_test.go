package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"partfeas/internal/fractional"
	"partfeas/internal/machine"
	"partfeas/internal/task"
)

func mustSet(t testing.TB, us []float64) task.Set {
	t.Helper()
	s, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMinScalingTrivial(t *testing.T) {
	// One task, one machine: σ = w/s.
	ts := mustSet(t, []float64{0.5})
	res, err := MinScaling(ts, machine.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sigma-0.25) > 1e-9 {
		t.Errorf("σ = %v, want 0.25", res.Sigma)
	}
	if len(res.Assignment) != 1 || res.Assignment[0] != 0 {
		t.Errorf("assignment = %v", res.Assignment)
	}
}

func TestMinScalingThreeHalvesOnTwo(t *testing.T) {
	// Three 2/3 tasks on two unit machines: best partition puts two on one
	// machine → σ = 4/3 (the migratory adversary manages σ = 1; see
	// fractional tests — this is exactly the partitioned/migratory gap).
	ts := task.Set{
		{WCET: 2, Period: 3}, {WCET: 2, Period: 3}, {WCET: 2, Period: 3},
	}
	res, err := MinScaling(ts, machine.New(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sigma-4.0/3) > 1e-9 {
		t.Errorf("σ = %v, want 4/3", res.Sigma)
	}
}

func TestMinScalingHeterogeneous(t *testing.T) {
	// Tasks 0.9 and 0.2; machines speed 1 and 0.25.
	// Options: both on fast: 1.1; split big→fast small→slow: max(0.9, 0.8) = 0.9;
	// split big→slow: 3.6. Best σ = 0.9.
	ts := mustSet(t, []float64{0.9, 0.2})
	res, err := MinScaling(ts, machine.New(1, 0.25), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sigma-0.9) > 1e-9 {
		t.Errorf("σ = %v, want 0.9", res.Sigma)
	}
}

func TestAssignmentAchievesSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		res, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		loads := make([]float64, m)
		for i, j := range res.Assignment {
			if j < 0 || j >= m {
				t.Fatalf("trial %d: assignment out of range: %v", trial, res.Assignment)
			}
			loads[j] += ts[i].Utilization()
		}
		worst := 0.0
		for j := range loads {
			if v := loads[j] / speeds[j]; v > worst {
				worst = v
			}
		}
		if math.Abs(worst-res.Sigma) > 1e-9 {
			t.Fatalf("trial %d: assignment achieves %v, reported σ %v", trial, worst, res.Sigma)
		}
	}
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(3)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		res, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceMinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Sigma-bf) > 1e-9 {
			t.Fatalf("trial %d: B&B σ=%v, brute force σ=%v (n=%d m=%d us=%v speeds=%v)",
				trial, res.Sigma, bf, n, m, us, speeds)
		}
	}
}

// σ_LP ≤ σ_part always: the migratory adversary is at least as strong.
func TestLPWeakerThanPartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		res, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sigmaLP, err := fractional.MinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if sigmaLP > res.Sigma+1e-9 {
			t.Fatalf("trial %d: σ_LP %v > σ_part %v", trial, sigmaLP, res.Sigma)
		}
	}
}

func TestFeasible(t *testing.T) {
	ts := mustSet(t, []float64{0.5, 0.5})
	ok, err := Feasible(ts, machine.New(1, 1), Options{})
	if err != nil || !ok {
		t.Errorf("two halves on two units: %v (%v)", ok, err)
	}
	ts2 := mustSet(t, []float64{0.9, 0.9, 0.9})
	ok, err = Feasible(ts2, machine.New(1, 1), Options{})
	if err != nil || ok {
		t.Errorf("three 0.9 on two units: %v (%v), want infeasible", ok, err)
	}
	// Exact boundary: loads exactly equal speeds.
	ts3 := task.Set{{WCET: 1, Period: 1}, {WCET: 1, Period: 2}}
	ok, err = Feasible(ts3, machine.New(1, 0.5), Options{})
	if err != nil || !ok {
		t.Errorf("exact-fit instance: %v (%v), want feasible", ok, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := MinScaling(task.Set{}, machine.New(1), Options{}); err == nil {
		t.Error("empty set should fail")
	}
	ts := mustSet(t, []float64{0.5})
	if _, err := MinScaling(ts, machine.Platform{}, Options{}); err == nil {
		t.Error("empty platform should fail")
	}
	if _, err := BruteForceMinScaling(task.Set{}, machine.New(1)); err == nil {
		t.Error("brute force empty set should fail")
	}
	if _, err := BruteForceMinScaling(ts, machine.Platform{}); err == nil {
		t.Error("brute force empty platform should fail")
	}
}

func TestBudgetExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	us := make([]float64, 18)
	for i := range us {
		us[i] = 0.3 + rng.Float64()*0.2
	}
	ts := mustSet(t, us)
	p := machine.New(1, 1.1, 1.2, 1.3)
	_, err := MinScaling(ts, p, Options{NodeBudget: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	us := make([]float64, 30)
	for i := range us {
		us[i] = 0.1
	}
	ts := mustSet(t, us)
	if _, err := BruteForceMinScaling(ts, machine.New(1, 1, 1, 1)); err == nil {
		t.Error("30 tasks on 4 machines should exceed brute force limit")
	}
}

// Symmetry pruning must not change results on platforms with many equal
// machines.
func TestEqualMachinesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		ts := mustSet(t, us)
		p := machine.New(1, 1, 1)
		res, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceMinScaling(ts, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Sigma-bf) > 1e-9 {
			t.Fatalf("trial %d: σ=%v, brute=%v", trial, res.Sigma, bf)
		}
	}
}

func BenchmarkMinScaling12x4(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	us := make([]float64, 12)
	for i := range us {
		us[i] = 0.1 + rng.Float64()*0.8
	}
	ts, err := task.FromUtilizations(us, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	p := machine.New(0.5, 1, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinScaling(ts, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// The parallel solver must return exactly the sequential optimum.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(4)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		seq, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := MinScalingParallel(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Sigma-par.Sigma) > 1e-12 {
			t.Fatalf("trial %d: sequential σ=%v parallel σ=%v", trial, seq.Sigma, par.Sigma)
		}
		// The parallel assignment must achieve its σ.
		loads := make([]float64, m)
		for i, j := range par.Assignment {
			loads[j] += ts[i].Utilization()
		}
		worst := 0.0
		for j := range loads {
			if v := loads[j] / speeds[j]; v > worst {
				worst = v
			}
		}
		if math.Abs(worst-par.Sigma) > 1e-9 {
			t.Fatalf("trial %d: parallel assignment achieves %v, reported %v", trial, worst, par.Sigma)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := MinScalingParallel(task.Set{}, machine.New(1), Options{}); err == nil {
		t.Error("empty set accepted")
	}
	ts := mustSet(t, []float64{0.5})
	if _, err := MinScalingParallel(ts, machine.Platform{}, Options{}); err == nil {
		t.Error("empty platform accepted")
	}
	// Tiny instances route to the sequential path.
	res, err := MinScalingParallel(ts, machine.New(2), Options{})
	if err != nil || math.Abs(res.Sigma-0.25) > 1e-9 {
		t.Errorf("tiny instance: %v (%v)", res.Sigma, err)
	}
}

// The concurrent path must also match when forced with multiple workers
// on any host.
func TestParallelForcedWorkersMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(9)
		m := 2 + rng.Intn(3)
		us := make([]float64, n)
		for i := range us {
			us[i] = 0.05 + rng.Float64()
		}
		speeds := make([]float64, m)
		for j := range speeds {
			speeds[j] = 0.25 + rng.Float64()*2
		}
		ts := mustSet(t, us)
		p := machine.New(speeds...)
		seq, err := MinScaling(ts, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := MinScalingParallel(ts, p, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Sigma-par.Sigma) > 1e-12 {
			t.Fatalf("trial %d: forced-workers σ=%v, sequential σ=%v", trial, par.Sigma, seq.Sigma)
		}
	}
}
