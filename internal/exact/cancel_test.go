package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"partfeas/internal/faultinject"
	"partfeas/internal/machine"
	"partfeas/internal/pipeline"
	"partfeas/internal/task"
)

// hardInstance builds an instance whose branch-and-bound tree is far too
// large to finish within any test's patience: many near-equal mid-size
// utilizations defeat both the symmetry and the bound pruning.
func hardInstance(t testing.TB, n int) (task.Set, machine.Platform) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	us := make([]float64, n)
	for i := range us {
		us[i] = 0.28 + rng.Float64()*0.24
	}
	return mustSet(t, us), machine.New(1, 1.07, 1.13, 1.19)
}

func TestSearchCancelReturnsPartialResult(t *testing.T) {
	ts, p := hardInstance(t, 26)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Search(ctx, ts, p, Options{NodeBudget: 1 << 60})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled search returned nil error (instance finished too fast to test cancellation)")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancel latency %v exceeds 500ms", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
	var pe *pipeline.Error
	if !errors.As(err, &pe) || pe.Stage != pipeline.StageExact {
		t.Errorf("err = %#v, want *pipeline.Error at stage exact", err)
	}
	if !res.Degraded {
		t.Error("interrupted result not marked Degraded")
	}
	// The partial result must still be a valid certified bound: a full
	// assignment whose worst normalized load equals Sigma (within float
	// tolerance) — the greedy incumbent guarantees one exists.
	if len(res.Assignment) != len(ts) {
		t.Fatalf("partial assignment has %d entries, want %d", len(res.Assignment), len(ts))
	}
	loads := make([]float64, len(p))
	for i, j := range res.Assignment {
		if j < 0 || j >= len(p) {
			t.Fatalf("assignment[%d] = %d out of range", i, j)
		}
		loads[j] += ts[i].Utilization()
	}
	worst := 0.0
	for j := range p {
		if v := loads[j] / p[j].Speed; v > worst {
			worst = v
		}
	}
	if worst > res.Sigma*(1+1e-9) {
		t.Errorf("incumbent assignment achieves %v, worse than reported Sigma %v", worst, res.Sigma)
	}
}

func TestSearchBudgetReturnsDegradedIncumbent(t *testing.T) {
	// Small enough to solve exactly with the default budget, hard enough
	// that 500 nodes cannot finish it.
	ts, p := hardInstance(t, 14)
	res, err := Search(context.Background(), ts, p, Options{NodeBudget: 500})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !res.Degraded {
		t.Error("budget-exhausted result not marked Degraded")
	}
	if res.Sigma <= 0 || len(res.Assignment) != len(ts) {
		t.Errorf("degraded result unusable: sigma=%v assignment=%d", res.Sigma, len(res.Assignment))
	}
	// The degraded bound must never be below the true optimum.
	full, err := Search(context.Background(), ts, p, Options{})
	if err != nil {
		t.Fatalf("full search: %v", err)
	}
	if res.Sigma < full.Sigma*(1-1e-9) {
		t.Errorf("degraded bound %v below the optimum %v", res.Sigma, full.Sigma)
	}
}

func TestMinScalingBoundedDegradesOnBudgetAndDeadline(t *testing.T) {
	ts, p := hardInstance(t, 24)
	// Budget exhaustion: nil error, degraded bound.
	res, err := MinScalingBounded(context.Background(), ts, p, Options{NodeBudget: 5000})
	if err != nil {
		t.Fatalf("budget exhaustion should degrade, got %v", err)
	}
	if !res.Degraded || res.Sigma <= 0 {
		t.Errorf("res = %+v, want Degraded with positive Sigma", res)
	}
	// Deadline expiry: nil error, degraded bound.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err = MinScalingBounded(ctx, ts, p, Options{NodeBudget: 1 << 60})
	if err != nil {
		t.Fatalf("deadline expiry should degrade, got %v", err)
	}
	if !res.Degraded || res.Sigma <= 0 {
		t.Errorf("res = %+v, want Degraded with positive Sigma", res)
	}
	// Explicit cancellation is not degradation: the caller asked the
	// pipeline to stop, so the error propagates.
	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	_, err = MinScalingBounded(canceled, ts, p, Options{NodeBudget: 1 << 60})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSearchParallelCancelReturnsPartialResult(t *testing.T) {
	ts, p := hardInstance(t, 26)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := SearchParallel(ctx, ts, p, Options{NodeBudget: 1 << 60, Workers: 4})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled parallel search returned nil error")
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancel latency %v exceeds 500ms", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
	if !res.Degraded || res.Sigma <= 0 || len(res.Assignment) != len(ts) {
		t.Errorf("partial result unusable: %+v", res)
	}
}

func TestSearchParallelBoundedDegradesOnBudget(t *testing.T) {
	ts, p := hardInstance(t, 22)
	res, err := SearchParallelBounded(context.Background(), ts, p, Options{NodeBudget: 20000, Workers: 4})
	if err != nil {
		t.Fatalf("budget exhaustion should degrade, got %v", err)
	}
	if !res.Degraded || res.Sigma <= 0 {
		t.Errorf("res = %+v, want Degraded with positive Sigma", res)
	}
}

// TestSearchCancelViaFaultInjection drives the cancellation through the
// deterministic fault hook: the plan fires at a fixed node count, so the
// search is interrupted at the same point in the tree on every run.
func TestSearchCancelViaFaultInjection(t *testing.T) {
	ts, p := hardInstance(t, 24)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deactivate := faultinject.Activate(faultinject.Plan{
		Site:   faultinject.SiteExactNode,
		N:      3 * cancelCheckInterval,
		OnFire: cancel,
	})
	defer deactivate()
	res, err := Search(ctx, ts, p, Options{NodeBudget: 1 << 60})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Degraded {
		t.Error("result not marked Degraded")
	}
	// The cooperative check runs every cancelCheckInterval nodes, so the
	// search must stop within one interval of the injection point.
	if res.Nodes < 3*cancelCheckInterval || res.Nodes > 4*cancelCheckInterval {
		t.Errorf("search stopped after %d nodes, want within one check interval of %d", res.Nodes, 3*cancelCheckInterval)
	}
}

// TestErrBudgetExceededPropagation pins the wrapping contract: callers
// several layers up must be able to detect budget exhaustion with
// errors.Is, through both the sequential and parallel entry points.
func TestErrBudgetExceededPropagation(t *testing.T) {
	ts, p := hardInstance(t, 20)
	for name, call := range map[string]func() error{
		"MinScaling": func() error {
			_, err := MinScaling(ts, p, Options{NodeBudget: 1000})
			return err
		},
		"MinScalingParallel": func() error {
			_, err := MinScalingParallel(ts, p, Options{NodeBudget: 1000, Workers: 2})
			return err
		},
		"Feasible": func() error {
			_, err := Feasible(ts, p, Options{NodeBudget: 1000})
			return err
		},
	} {
		err := call()
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrBudgetExceeded", name, err)
		}
	}
}
