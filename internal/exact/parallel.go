package exact

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"partfeas/internal/machine"
	"partfeas/internal/pipeline"
	"partfeas/internal/task"
)

// MinScalingParallel computes σ_part exactly like MinScaling but explores
// the branch-and-bound tree with a pool of worker goroutines sharing one
// incumbent. It is SearchParallel without cancellation.
func MinScalingParallel(ts task.Set, p machine.Platform, opts Options) (Result, error) {
	return SearchParallel(context.Background(), ts, p, opts)
}

// SearchParallel is the parallel counterpart of Search. The tree is split
// at the root: every assignment of the first splitDepth tasks becomes an
// independent subtree; workers drain the subtree queue and publish
// incumbent improvements through a mutex-guarded bound that all subtrees
// prune against. Results are identical to the sequential solver (the
// optimum is unique even if visit order is not).
//
// Each worker checks ctx cooperatively inside its subtree search, and the
// queue feeder stops handing out subtrees once ctx is done, so the pool
// drains with bounded latency. Like Search, an interrupted run returns
// the partial Degraded result (best incumbent across all workers) plus
// the error.
func SearchParallel(ctx context.Context, ts task.Set, p machine.Platform, opts Options) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	budget := opts.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n, m := len(ts), len(p)
	if n <= 2 || workers == 1 {
		return Search(ctx, ts, p, opts)
	}

	// Order tasks and machines as the sequential solver does.
	order, mOrder, utils, speeds := orders(ts, p)
	sortedUtil := make([]float64, n)
	for k, i := range order {
		sortedUtil[k] = utils[i]
	}
	sortedSpeed := make([]float64, m)
	for k, j := range mOrder {
		sortedSpeed[k] = speeds[j]
	}
	suffix := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + sortedUtil[k]
	}
	totalSpeed := 0.0
	for _, sp := range sortedSpeed {
		totalSpeed += sp
	}

	// Shared incumbent, seeded by the greedy bound.
	seed := &solver{
		n: n, m: m,
		util: sortedUtil, speed: sortedSpeed,
		load: make([]float64, m), asg: make([]int, n), best: make([]int, n),
		suffix: suffix, totalSpeed: totalSpeed,
	}
	greedyVal := seed.greedy()

	type shared struct {
		mu        sync.Mutex
		incumbent float64
		best      []int
		nodes     int64
		exceeded  bool
		cancelErr error
	}
	sh := &shared{incumbent: greedyVal, best: append([]int(nil), seed.asgGreedy...)}

	// Enumerate prefix assignments of the first splitDepth tasks,
	// pruning symmetric machine choices (identical speed, same prefix
	// content signature only matters through loads — equal loads on
	// equal speeds are interchangeable).
	splitDepth := 1
	for branches := m; branches < 4*workers && splitDepth < n-1 && splitDepth < 3; {
		splitDepth++
		branches *= m
	}
	var prefixes [][]int
	var gen func(depth int, cur []int)
	gen = func(depth int, cur []int) {
		if depth == splitDepth {
			prefixes = append(prefixes, append([]int(nil), cur...))
			return
		}
		loads := make([]float64, m)
		for k, j := range cur {
			loads[j] += sortedUtil[k]
		}
		for j := 0; j < m; j++ {
			dup := false
			for i := 0; i < j; i++ {
				if sortedSpeed[i] == sortedSpeed[j] && loads[i] == loads[j] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			gen(depth+1, append(cur, j))
		}
	}
	gen(0, nil)

	perBudget := budget / int64(len(prefixes))
	if perBudget < 1024 {
		perBudget = 1024
	}

	queue := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for prefix := range queue {
				s := &solver{
					n: n, m: m,
					util: sortedUtil, speed: sortedSpeed,
					load: make([]float64, m), asg: make([]int, n), best: make([]int, n),
					suffix: suffix, totalSpeed: totalSpeed,
					budget: perBudget,
					ctx:    ctx,
				}
				sh.mu.Lock()
				s.incumbent = sh.incumbent
				sh.mu.Unlock()
				maxNorm := 0.0
				ok := true
				for k, j := range prefix {
					s.load[j] += sortedUtil[k]
					s.asg[k] = j
					if v := s.load[j] / s.speed[j]; v > maxNorm {
						maxNorm = v
					}
					if maxNorm >= s.incumbent {
						ok = false
						break
					}
				}
				if ok {
					s.dfs(len(prefix), maxNorm)
				}
				sh.mu.Lock()
				sh.nodes += s.nodes
				if s.exceeded {
					sh.exceeded = true
				}
				if s.cancelErr != nil && sh.cancelErr == nil {
					sh.cancelErr = s.cancelErr
				}
				if s.incumbent < sh.incumbent {
					sh.incumbent = s.incumbent
					copy(sh.best, s.best)
				}
				sh.mu.Unlock()
			}
		}()
	}
	// The feeder stops handing out subtrees once ctx is done; in-flight
	// subtrees notice the cancellation through their own cooperative
	// checks, so the pool drains with bounded latency.
feed:
	for _, prefix := range prefixes {
		select {
		case queue <- prefix:
		case <-ctx.Done():
			sh.mu.Lock()
			if sh.cancelErr == nil {
				sh.cancelErr = ctx.Err()
			}
			sh.mu.Unlock()
			break feed
		}
	}
	close(queue)
	wg.Wait()

	// Guard against numeric edge: the greedy seed may remain the best.
	if sh.incumbent > greedyVal {
		sh.incumbent = greedyVal
		copy(sh.best, seed.asgGreedy)
	}
	assignment := make([]int, n)
	for k, i := range order {
		assignment[i] = mOrder[sh.best[k]]
	}
	res := Result{Sigma: sh.incumbent, Assignment: assignment, Nodes: sh.nodes}
	switch {
	case sh.cancelErr != nil:
		res.Degraded = true
		return res, pipeline.New(pipeline.StageExact, fmt.Sprintf("parallel n=%d m=%d", n, m), sh.cancelErr)
	case sh.exceeded:
		res.Degraded = true
		return res, fmt.Errorf("exact: parallel n=%d m=%d: %w", n, m, ErrBudgetExceeded)
	}
	return res, nil
}

// SearchParallelBounded is SearchParallel with the MinScalingBounded
// degradation rule: budget or deadline exhaustion yields the Degraded
// incumbent with nil error; explicit cancellation propagates.
func SearchParallelBounded(ctx context.Context, ts task.Set, p machine.Platform, opts Options) (Result, error) {
	res, err := SearchParallel(ctx, ts, p, opts)
	if err == nil || errors.Is(err, ErrBudgetExceeded) || errors.Is(err, context.DeadlineExceeded) {
		return res, nil
	}
	return res, err
}
