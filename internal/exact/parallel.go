package exact

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"partfeas/internal/machine"
	"partfeas/internal/task"
)

// MinScalingParallel computes σ_part exactly like MinScaling but explores
// the branch-and-bound tree with a pool of worker goroutines sharing one
// incumbent. The tree is split at the root: every assignment of the first
// splitDepth tasks becomes an independent subtree; workers drain the
// subtree queue and publish incumbent improvements through a mutex-guarded
// bound that all subtrees prune against. Results are identical to the
// sequential solver (the optimum is unique even if visit order is not).
func MinScalingParallel(ts task.Set, p machine.Platform, opts Options) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	budget := opts.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n, m := len(ts), len(p)
	if n <= 2 || workers == 1 {
		return MinScaling(ts, p, opts)
	}

	// Order tasks and machines as the sequential solver does.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	utils := ts.Utilizations()
	sort.SliceStable(order, func(a, b int) bool { return utils[order[a]] > utils[order[b]] })
	mOrder := make([]int, m)
	for j := range mOrder {
		mOrder[j] = j
	}
	speeds := p.Speeds()
	sort.SliceStable(mOrder, func(a, b int) bool { return speeds[mOrder[a]] > speeds[mOrder[b]] })

	sortedUtil := make([]float64, n)
	for k, i := range order {
		sortedUtil[k] = utils[i]
	}
	sortedSpeed := make([]float64, m)
	for k, j := range mOrder {
		sortedSpeed[k] = speeds[j]
	}
	suffix := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + sortedUtil[k]
	}
	totalSpeed := 0.0
	for _, sp := range sortedSpeed {
		totalSpeed += sp
	}

	// Shared incumbent, seeded by the greedy bound.
	seed := &solver{
		n: n, m: m,
		util: sortedUtil, speed: sortedSpeed,
		load: make([]float64, m), asg: make([]int, n), best: make([]int, n),
		suffix: suffix, totalSpeed: totalSpeed,
	}
	greedyVal := seed.greedy()

	type shared struct {
		mu        sync.Mutex
		incumbent float64
		best      []int
		nodes     int64
		exceeded  bool
	}
	sh := &shared{incumbent: greedyVal, best: append([]int(nil), seed.asgGreedy...)}

	// Enumerate prefix assignments of the first splitDepth tasks,
	// pruning symmetric machine choices (identical speed, same prefix
	// content signature only matters through loads — equal loads on
	// equal speeds are interchangeable).
	splitDepth := 1
	for branches := m; branches < 4*workers && splitDepth < n-1 && splitDepth < 3; {
		splitDepth++
		branches *= m
	}
	var prefixes [][]int
	var gen func(depth int, cur []int)
	gen = func(depth int, cur []int) {
		if depth == splitDepth {
			prefixes = append(prefixes, append([]int(nil), cur...))
			return
		}
		loads := make([]float64, m)
		for k, j := range cur {
			loads[j] += sortedUtil[k]
		}
		for j := 0; j < m; j++ {
			dup := false
			for i := 0; i < j; i++ {
				if sortedSpeed[i] == sortedSpeed[j] && loads[i] == loads[j] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			gen(depth+1, append(cur, j))
		}
	}
	gen(0, nil)

	perBudget := budget / int64(len(prefixes))
	if perBudget < 1024 {
		perBudget = 1024
	}

	queue := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for prefix := range queue {
				s := &solver{
					n: n, m: m,
					util: sortedUtil, speed: sortedSpeed,
					load: make([]float64, m), asg: make([]int, n), best: make([]int, n),
					suffix: suffix, totalSpeed: totalSpeed,
					budget: perBudget,
				}
				sh.mu.Lock()
				s.incumbent = sh.incumbent
				sh.mu.Unlock()
				maxNorm := 0.0
				ok := true
				for k, j := range prefix {
					s.load[j] += sortedUtil[k]
					s.asg[k] = j
					if v := s.load[j] / s.speed[j]; v > maxNorm {
						maxNorm = v
					}
					if maxNorm >= s.incumbent {
						ok = false
						break
					}
				}
				if ok {
					s.dfs(len(prefix), maxNorm)
				}
				sh.mu.Lock()
				sh.nodes += s.nodes
				if s.exceeded {
					sh.exceeded = true
				}
				if s.incumbent < sh.incumbent {
					sh.incumbent = s.incumbent
					copy(sh.best, s.best)
				}
				sh.mu.Unlock()
			}
		}()
	}
	for _, prefix := range prefixes {
		queue <- prefix
	}
	close(queue)
	wg.Wait()

	if sh.exceeded {
		return Result{}, fmt.Errorf("exact: parallel n=%d m=%d: %w", n, m, ErrBudgetExceeded)
	}
	// Guard against numeric edge: the greedy seed may remain the best.
	if sh.incumbent > greedyVal {
		sh.incumbent = greedyVal
		copy(sh.best, seed.asgGreedy)
	}

	assignment := make([]int, n)
	for k, i := range order {
		assignment[i] = mOrder[sh.best[k]]
	}
	return Result{Sigma: sh.incumbent, Assignment: assignment, Nodes: sh.nodes}, nil
}
