package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"partfeas"
)

// TestSessionAdmitBatchEndpoint drives POST /v1/sessions/{id}/admit-batch
// end to end: a fitting best-effort batch admits everything in one call,
// a mixed batch admits exactly the sequentially-admissible subset, and
// an all-or-nothing batch with a hog leaves the session untouched.
func TestSessionAdmitBatchEndpoint(t *testing.T) {
	s := newTestServer(t)
	id := stressSession(t, s, "sorted")

	w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch",
		`{"tasks":[{"wcet":1,"period":50},{"wcet":2,"period":60},{"wcet":3,"period":70}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	var resp BatchAdmissionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "best_effort" || resp.NAdmitted != 3 || resp.NTasks != 7 {
		t.Fatalf("batch response: %s", w.Body)
	}
	for i, ok := range resp.Admitted {
		if !ok {
			t.Fatalf("task %d rejected: %s", i, w.Body)
		}
	}
	if !resp.Test.Accepted {
		t.Fatalf("post-batch state rejected: %s", w.Body)
	}

	// The session's verdict list must match admitting the same batch
	// sequentially into an identical twin session.
	mixed := `{"tasks":[{"wcet":1,"period":90},{"wcet":700,"period":100},{"wcet":2,"period":80}]}`
	twin := stressSession(t, s, "sorted")
	for _, tk := range []string{`{"wcet":1,"period":50}`, `{"wcet":2,"period":60}`, `{"wcet":3,"period":70}`} {
		if w := do(t, s, http.MethodPost, "/v1/sessions/"+twin+"/tasks", `{"task":`+tk+`}`); w.Code != http.StatusOK {
			t.Fatalf("twin seed: %d %s", w.Code, w.Body)
		}
	}
	w = do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch", mixed)
	if w.Code != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var seq []bool
	for _, tk := range []string{`{"wcet":1,"period":90}`, `{"wcet":700,"period":100}`, `{"wcet":2,"period":80}`} {
		w := do(t, s, http.MethodPost, "/v1/sessions/"+twin+"/tasks", `{"task":`+tk+`}`)
		if w.Code != http.StatusOK {
			t.Fatalf("twin admit: %d %s", w.Code, w.Body)
		}
		var ar AdmissionResponse
		if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
			t.Fatal(err)
		}
		seq = append(seq, ar.Admitted)
	}
	for i := range seq {
		if resp.Admitted[i] != seq[i] {
			t.Fatalf("verdicts diverged from sequential: batch %v, sequential %v", resp.Admitted, seq)
		}
	}
	// Both sessions hold the same multiset now; their states must agree.
	a := do(t, s, http.MethodGet, "/v1/sessions/"+id, "")
	b := do(t, s, http.MethodGet, "/v1/sessions/"+twin, "")
	var as, bs SessionResponse
	if err := json.Unmarshal(a.Body.Bytes(), &as); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Body.Bytes(), &bs); err != nil {
		t.Fatal(err)
	}
	if encode(t, as.Test) != encode(t, bs.Test) {
		t.Fatalf("batch and sequential sessions diverged:\n%s\n%s", encode(t, as.Test), encode(t, bs.Test))
	}

	// All-or-nothing with a hog: nothing admitted, session unchanged.
	before := as
	w = do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch",
		`{"tasks":[{"wcet":1,"period":1000},{"wcet":900,"period":100}],"mode":"all_or_nothing"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("aon batch: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NAdmitted != 0 || resp.NTasks != len(before.Tasks) {
		t.Fatalf("aon hog batch mutated the session: %s", w.Body)
	}
	if resp.Test.Accepted {
		t.Fatalf("aon witness must be a rejection: %s", w.Body)
	}
	after := do(t, s, http.MethodGet, "/v1/sessions/"+id, "")
	var afterState SessionResponse
	if err := json.Unmarshal(after.Body.Bytes(), &afterState); err != nil {
		t.Fatal(err)
	}
	if encode(t, afterState.Test) != encode(t, before.Test) {
		t.Fatal("session state changed after rejected all-or-nothing batch")
	}
}

// TestSessionAdmitBatchValidation covers the endpoint's guards.
func TestSessionAdmitBatchValidation(t *testing.T) {
	s := newTestServer(t)
	id := stressSession(t, s, "")
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch",
		`{"tasks":[{"wcet":0,"period":5}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid task: %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch",
		`{"tasks":[{"wcet":1,"period":5}],"mode":"sometimes"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad mode: %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/sessions/s-999/admit-batch",
		`{"tasks":[{"wcet":1,"period":5}]}`); w.Code != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", w.Code)
	}
	w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch", `{"tasks":[]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("empty batch: %d %s", w.Code, w.Body)
	}
}

// TestAdmissionMetricsMove asserts the per-path admission counters and
// latency histograms actually record: tail and interior single admits,
// an explicit batch, and a forced coalesced group must each move their
// counter, and the /metrics exposition must carry all four paths.
func TestAdmissionMetricsMove(t *testing.T) {
	s := newTestServer(t)
	id := stressSession(t, s, "sorted")

	// Tail admit: tiny utilization sorts last.
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/tasks",
		`{"task":{"wcet":1,"period":10000}}`); w.Code != http.StatusOK {
		t.Fatalf("tail admit: %d %s", w.Code, w.Body)
	}
	// Interior admit: larger utilization than the residents sorts first.
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/tasks",
		`{"task":{"wcet":30,"period":100}}`); w.Code != http.StatusOK {
		t.Fatalf("interior admit: %d %s", w.Code, w.Body)
	}
	// Batch admit.
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/admit-batch",
		`{"tasks":[{"wcet":1,"period":300},{"wcet":1,"period":400}]}`); w.Code != http.StatusOK {
		t.Fatalf("batch admit: %d %s", w.Code, w.Body)
	}

	// Forced coalescing: hold the session lock, queue several admits,
	// release — the first waiter to win the lock must drain the whole
	// group as one engine batch.
	sess, err := s.sessions.get(id)
	if err != nil {
		t.Fatal(err)
	}
	const group = 4
	sess.mu.Lock()
	var wg sync.WaitGroup
	for i := 0; i < group; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := sess.addTask(context.Background(),
				partfeas.Task{WCET: 1, Period: int64(500 + i)}, 0, false)
			if err != nil {
				t.Errorf("coalesced admit %d: %v", i, err)
				return
			}
			if !resp.Admitted {
				t.Errorf("coalesced admit %d rejected", i)
			}
		}()
	}
	// Wait until every waiter is queued before releasing the lock.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.pendMu.Lock()
		n := len(sess.pending)
		sess.pendMu.Unlock()
		if n == group {
			break
		}
		if time.Now().After(deadline) {
			sess.mu.Unlock()
			t.Fatalf("only %d/%d admits queued", n, group)
		}
		time.Sleep(time.Millisecond)
	}
	sess.mu.Unlock()
	wg.Wait()

	m := s.Metrics()
	for p, want := range map[AdmissionPath]uint64{
		PathTail:      1,
		PathInterior:  1,
		PathBatch:     1,
		PathCoalesced: group,
	} {
		if got := m.admitCnt[p].Load(); got < want {
			t.Errorf("path %v count = %d, want ≥ %d", p, got, want)
		}
	}
	w := do(t, s, http.MethodGet, "/metrics", "")
	out := w.Body.String()
	for _, want := range []string{
		`partfeas_admissions_total{path="tail"} 1`,
		`partfeas_admissions_total{path="interior"} 1`,
		`partfeas_admissions_total{path="batch"} 1`,
		fmt.Sprintf(`partfeas_admissions_total{path="coalesced"} %d`, group),
		`partfeas_admission_duration_seconds{path="interior",quantile="0.99"}`,
		`partfeas_admission_duration_seconds_count{path="coalesced"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
