package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"partfeas"
	"partfeas/internal/dbf"
	"partfeas/internal/online"
	"partfeas/internal/oplog"
	"partfeas/internal/partition"
	"partfeas/internal/pipeline"
)

// session is one live admission-control session: a task set under
// negotiation against a fixed platform and scheduler.
//
// Mutations are served by an incremental online.Engine that keeps live
// per-machine load state, so an admit/remove/update costs a suffix
// replay (typically O(log m)) instead of the full re-solve the first
// version of this service performed. The engine only represents feasible
// states; when a client force-commits an infeasible set the session
// falls back to the batch Tester path (eng == nil) and re-arms the
// engine on the next feasible commit.
//
// Placement is the engine's placement policy (online.Policy):
// first_fit_sorted sessions stay byte-identical to the paper's fresh
// sorted solve at every step; every other policy (first_fit_arrival,
// best_fit, worst_fit, k_choices) places tasks as they arrive — the
// drift that accumulates against the sorted guarantee is measured and
// repaired via repartition().
//
// The per-session mutex serializes operations, so concurrent clients of
// one session see a linearizable task set; distinct sessions share
// nothing and proceed in parallel.
type session struct {
	mu        sync.Mutex
	id        string
	in        partfeas.Instance
	alpha     float64
	placement online.Policy
	eng       *online.Engine   // nil while the resident set is (force-)infeasible
	tester    *partfeas.Tester // batch fallback; nil when stale (rebuilt lazily)
	closed    bool
	mx        *Metrics    // per-path admission metrics; nil in bare tests
	dur       *durability // WAL ack gate; nil without -data-dir (all calls nil-safe)

	// Cluster ownership (see migrate.go). epoch is the session's
	// ownership epoch: 1 at creation, incremented once per completed
	// migration, and the fencing token that keeps a stale owner from
	// acknowledging mutations the new owner's state lacks. fenced refuses
	// mutations while a handoff is between its fence and cutover points;
	// migrating marks an outbound transfer whose post-snapshot ops are
	// being captured into tail; noLog suppresses WAL appends while a
	// staged inbound copy replays its tail (the MigrateIn record carries
	// the final state instead).
	epoch     uint64
	fenced    bool
	migrating bool
	noLog     bool
	tail      []*oplog.Op

	// Constrained-deadline sessions (deadline_model "constrained") admit
	// through the engine's tiered DBF pipeline and are engine-only: the
	// engine is always armed, force commits and repartition are refused,
	// and dls holds each resident task's relative deadline (parallel to
	// in.Tasks).
	constrained bool
	dls         []int64

	// Admit coalescing: concurrent non-force single admits enqueue here
	// and whichever request acquires s.mu next drains the whole queue as
	// one merged engine batch (see addTask). pendMu is always acquired
	// after s.mu or alone, never the other way around.
	pendMu  sync.Mutex
	pending []*admitWaiter
}

// admitWaiter is one queued single-task admission awaiting a coalesced
// drain. done is closed by the draining request after resp/err are set.
type admitWaiter struct {
	ctx  context.Context
	t    partfeas.Task
	dl   int64 // relative deadline (0 = implicit) on constrained sessions
	resp AdmissionResponse
	err  error
	done chan struct{}
}

// sessionStore owns the id → session map.
type sessionStore struct {
	mu  sync.Mutex
	seq uint64
	max int
	m   map[string]*session
	mx  *Metrics    // propagated into every session it creates
	dur *durability // propagated likewise; nil without -data-dir

	// staging holds inbound migrations between prepare and commit, keyed
	// by session id; moved holds outbound tombstones (id → new owner)
	// that answer every later request with a 421 redirect. A moved entry
	// retains the session's final state until the destination
	// acknowledges the commit, so a source that crashed (or lost the ack)
	// can re-drive the handoff idempotently.
	staging map[string]*stagedSession
	moved   map[string]*movedSession
}

func newSessionStore(max int) *sessionStore {
	if max <= 0 {
		max = 1024
	}
	return &sessionStore{
		max:     max,
		m:       map[string]*session{},
		staging: map[string]*stagedSession{},
		moved:   map[string]*movedSession{},
	}
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// create validates nothing itself — the handler passes a decoded,
// validated instance. The instance is deep-copied so later request
// buffers cannot alias session state. id, when non-empty, is a
// caller-assigned session id (the cluster coordinator assigns ids so the
// consistent-hash ring can route the session before it exists); empty
// means the store assigns the next "s-<n>".
func (st *sessionStore) create(in partfeas.Instance, alpha float64, placement online.Policy, id string) (*session, error) {
	defer st.dur.rlock()()
	tester, err := partfeas.NewTester(in.Tasks, in.Platform, in.Scheduler)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	s := &session{
		in: partfeas.Instance{
			Tasks:     in.Tasks.Clone(),
			Platform:  in.Platform.Clone(),
			Scheduler: in.Scheduler,
		},
		alpha:     alpha,
		placement: placement,
		tester:    tester,
		epoch:     1,
		mx:        st.mx,
		dur:       st.dur,
	}
	s.armEngine() // sessions may open infeasible; they just start on the batch path
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.assignID(s, id); err != nil {
		return nil, err
	}
	if err := st.dur.logOp(createOp(s, nil)); err != nil {
		if id == "" {
			st.seq--
		}
		return nil, err
	}
	st.m[s.id] = s
	return s, nil
}

// assignID gives s its id under st.mu: the next "s-<n>" when id is
// empty, or the caller's explicit id after uniqueness and shape checks.
// Explicit auto-shaped ids advance seq past their number so a later
// store-assigned id can never collide (WAL replay recreates sessions by
// their recorded explicit ids and relies on this).
func (st *sessionStore) assignID(s *session, id string) error {
	if len(st.m) >= st.max {
		return &httpError{code: http.StatusTooManyRequests, msg: fmt.Sprintf("session limit %d reached", st.max)}
	}
	if id == "" {
		st.seq++
		s.id = fmt.Sprintf("s-%d", st.seq)
		return nil
	}
	if err := checkSessionID(id); err != nil {
		return err
	}
	if _, ok := st.m[id]; ok {
		return &httpError{code: http.StatusConflict, msg: fmt.Sprintf("session %q already exists", id)}
	}
	if _, ok := st.moved[id]; ok {
		return &httpError{code: http.StatusConflict, msg: fmt.Sprintf("session id %q was migrated away and is retired here", id)}
	}
	if n, ok := autoSeq(id); ok && n > st.seq {
		st.seq = n
	}
	s.id = id
	return nil
}

// checkSessionID vets an explicit session id at the boundary.
func checkSessionID(id string) error {
	if len(id) > 128 {
		return badRequest("session id longer than 128 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return badRequest("session id %q contains %q (want [A-Za-z0-9._-])", id, string(c))
		}
	}
	return nil
}

// autoSeq parses a store-assigned "s-<n>" id; ok is false for any other
// shape (coordinator ids, client ids).
func autoSeq(id string) (uint64, bool) {
	if len(id) < 3 || id[0] != 's' || id[1] != '-' || id[2] == '0' {
		return 0, false
	}
	var n uint64
	for i := 2; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' || n > (^uint64(0)-uint64(c-'0'))/10 {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// createOp encodes a session creation (the last fallible step before the
// store insert, so a logged create always replays successfully). dls is
// non-nil only for constrained sessions.
func createOp(s *session, dls []int64) *oplog.Op {
	op := &oplog.Op{
		Type:      oplog.TypeCreate,
		Session:   s.id,
		Alpha:     s.alpha,
		Scheduler: s.in.Scheduler.String(),
		Placement: s.placement.Name(),
		Machines:  make([]oplog.Machine, len(s.in.Platform)),
		Tasks:     make([]oplog.Task, len(s.in.Tasks)),
	}
	if s.constrained {
		op.DeadlineModel = "constrained"
	}
	for i, m := range s.in.Platform {
		op.Machines[i] = oplog.Machine{Name: m.Name, Speed: m.Speed}
	}
	for i, t := range s.in.Tasks {
		op.Tasks[i] = oplog.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		if dls != nil {
			op.Tasks[i].Deadline = dls[i]
		}
	}
	return op
}

func (st *sessionStore) get(id string) (*session, error) {
	st.mu.Lock()
	s, ok := st.m[id]
	var mv *movedSession
	if !ok {
		mv = st.moved[id]
	}
	st.mu.Unlock()
	if !ok {
		if mv != nil {
			return nil, movedErr(id, mv.target)
		}
		return nil, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown session %q", id)}
	}
	return s, nil
}

func (st *sessionStore) remove(id string) error {
	defer st.dur.rlock()()
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[id]
	if !ok {
		if mv := st.moved[id]; mv != nil {
			return movedErr(id, mv.target)
		}
		return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown session %q", id)}
	}
	// The destroy record must be the session's last WAL op. Every
	// per-session mutation checks s.closed under s.mu before logging its
	// own op, so holding s.mu across the TypeDestroy append and the close
	// guarantees no mutation record can land after it — replay would
	// otherwise apply the destroy first and refuse to start on the
	// orphaned mutation op. (Lock order st.mu → s.mu matches the
	// documented gate → store → session hierarchy; nothing acquires them
	// in the opposite order.)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fenced {
		return errFenced
	}
	if s.migrating {
		// Destroy wins over an in-flight outbound transfer: abort the
		// capture here; the migration goroutine observes migrating ==
		// false at its fence step and reports the transfer failed.
		s.migrating = false
		s.tail = nil
	}
	if err := st.dur.logOp(&oplog.Op{Type: oplog.TypeDestroy, Session: id}); err != nil {
		return err
	}
	s.closed = true
	delete(st.m, id)
	return nil
}

var errSessionClosed = &httpError{code: http.StatusNotFound, msg: "session closed"}

// errFenced answers mutations that land between a migration's fence and
// its cutover: the op was not acknowledged; retry shortly and the 421
// redirect (or the unfenced session, if the transfer aborted) will
// answer. The migration flag marks the 503 as a transient handoff stall
// so forwarders can retry it internally instead of surfacing it — unlike
// the WAL-degraded 503, which must reach the client unchanged.
var errFenced = &httpError{
	code:       http.StatusServiceUnavailable,
	msg:        "session ownership is being transferred; retry",
	retryAfter: 1,
	migration:  true,
}

// movedErr is the tombstone answer after cutover: the session lives on
// another replica, named in the X-Session-Owner header.
func movedErr(id, target string) *httpError {
	return &httpError{
		code:  http.StatusMisdirectedRequest,
		msg:   fmt.Sprintf("session %q migrated to %s", id, target),
		owner: target,
	}
}

// guard is every mutation's closed/fenced check, taken under s.mu before
// the op is logged: a fenced session acknowledges nothing, which is what
// makes the ownership epoch a real fence and not advice.
func (s *session) guard() error {
	if s.closed {
		return errSessionClosed
	}
	if s.fenced {
		return errFenced
	}
	return nil
}

// logOp is the session-level acknowledgement point: the WAL append (ack)
// plus, while an outbound migration is capturing, the tail record that
// will be streamed to the new owner. Caller holds s.mu, which is what
// makes "tail = exactly the acknowledged ops after the snapshot" exact.
func (s *session) logOp(op *oplog.Op) error {
	if s.noLog {
		return nil // staged inbound replay: the MigrateIn record carries the state
	}
	if err := s.dur.logOp(op); err != nil {
		return err
	}
	if s.migrating {
		s.tail = append(s.tail, op)
	}
	return nil
}

// armEngine (re)builds the incremental engine over the current task set,
// leaving it nil when the set is infeasible at the session augmentation
// (the batch path then serves every query). Caller holds s.mu (or sole
// ownership during create).
func (s *session) armEngine() {
	s.eng = nil
	adm, err := s.in.Scheduler.Admission()
	if err != nil {
		return
	}
	eng, err := online.NewEngine(s.in.Tasks, s.in.Platform, online.Options{
		Policy: s.placement, Admission: adm, Alpha: s.alpha,
	})
	if err != nil {
		return // ErrInfeasible or unsupported: stay on the batch path
	}
	s.eng = eng
}

// batchTester returns the session's batch Tester, rebuilding it when a
// prior engine-path mutation left it stale.
func (s *session) batchTester() (*partfeas.Tester, error) {
	if s.tester == nil {
		t, err := partfeas.NewTester(s.in.Tasks, s.in.Platform, s.in.Scheduler)
		if err != nil {
			return nil, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		s.tester = t
	}
	return s.tester, nil
}

// ctxGuard mirrors Tester.TestCtx's contract on the engine path: an
// expired or cancelled context yields the same *pipeline.Error shape, so
// clients cannot tell which path answered.
func ctxGuard(ctx context.Context) error {
	if cerr := ctx.Err(); cerr != nil {
		return pipeline.New(pipeline.StageAnalyze, "Test", cerr)
	}
	return nil
}

// engReport wraps an engine partition result as the library Report the
// wire layer encodes.
func (s *session) engReport(res partition.Result) partfeas.Report {
	return partfeas.Report{
		Accepted:  res.Feasible,
		Scheduler: s.in.Scheduler,
		Alpha:     res.Alpha,
		Partition: res,
	}
}

// currentReport answers "test the resident set at the session alpha"
// from the engine when armed, else from the batch tester.
func (s *session) currentReport(ctx context.Context) (partfeas.Report, error) {
	if s.eng != nil {
		if err := ctxGuard(ctx); err != nil {
			return partfeas.Report{}, err
		}
		return s.engReport(s.eng.Result()), nil
	}
	t, err := s.batchTester()
	if err != nil {
		return partfeas.Report{}, err
	}
	return t.TestCtx(ctx, s.alpha)
}

// state snapshots the session and re-tests it at its alpha.
func (s *session) state(ctx context.Context) (SessionResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SessionResponse{}, errSessionClosed
	}
	rep, err := s.currentReport(ctx)
	if err != nil {
		return SessionResponse{}, err
	}
	resp := SessionResponse{
		ID:        s.id,
		Scheduler: s.in.Scheduler.String(),
		Alpha:     s.alpha,
		Placement: s.placement.Name(),
		Tasks:     make([]TaskJSON, len(s.in.Tasks)),
		Machines:  make([]MachineJSON, len(s.in.Platform)),
		Test:      TestResponseFrom(rep),
	}
	if s.constrained {
		resp.DeadlineModel = "constrained"
	}
	for i, t := range s.in.Tasks {
		resp.Tasks[i] = TaskJSON{Name: t.Name, WCET: t.WCET, Period: t.Period}
		if s.constrained && s.dls[i] != t.Period {
			resp.Tasks[i].Deadline = s.dls[i]
		}
	}
	for i, m := range s.in.Platform {
		resp.Machines[i] = MachineJSON{Name: m.Name, Speed: m.Speed}
	}
	return resp, nil
}

// test re-tests the current set; alpha 0 keeps the session augmentation.
// Ad-hoc alphas always run the batch sorted test (the engine's state is
// only valid at the session alpha).
func (s *session) test(ctx context.Context, alpha float64) (TestResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return TestResponse{}, errSessionClosed
	}
	if alpha == 0 || alpha == s.alpha {
		rep, err := s.currentReport(ctx)
		if err != nil {
			return TestResponse{}, err
		}
		return TestResponseFrom(rep), nil
	}
	if s.constrained {
		// No batch tester exists for constrained sets; ad-hoc alphas run
		// a fresh exact constrained first-fit solve.
		if err := ctxGuard(ctx); err != nil {
			return TestResponse{}, err
		}
		rep, err := s.freshConstrainedReport(alpha)
		if err != nil {
			return TestResponse{}, err
		}
		return TestResponseFrom(rep), nil
	}
	t, err := s.batchTester()
	if err != nil {
		return TestResponse{}, err
	}
	rep, err := t.TestCtx(ctx, alpha)
	if err != nil {
		return TestResponse{}, err
	}
	return TestResponseFrom(rep), nil
}

// addTask tentatively admits one more task: committed only on acceptance
// (or force). The armed engine answers incrementally; a force-committed
// rejection drops to the batch path until the set is feasible again.
//
// Non-force admits coalesce opportunistically: the request enqueues its
// task, then takes the session lock; whichever request gets the lock
// first drains every queued admit as one merged engine batch (best-
// effort semantics, identical verdicts to admitting them in queue
// order) and completes the others' responses. Under contention n
// queued interior admits cost one suffix replay instead of n; with no
// contention the queue holds a single entry and the plain path runs.
func (s *session) addTask(ctx context.Context, t partfeas.Task, dl int64, force bool) (AdmissionResponse, error) {
	defer s.dur.rlock()()
	if err := s.checkDeadlineArg(dl, t.Period, force); err != nil {
		return AdmissionResponse{}, err
	}
	if force {
		// Force commits can disarm the engine mid-group; keep them out
		// of coalesced batches. They serialize on s.mu like everything
		// else, so verdict linearizability is unaffected.
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.addTaskLocked(ctx, t, dl, true)
	}
	w := &admitWaiter{ctx: ctx, t: t, dl: dl, done: make(chan struct{})}
	s.pendMu.Lock()
	s.pending = append(s.pending, w)
	s.pendMu.Unlock()
	s.mu.Lock()
	s.pendMu.Lock()
	group := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	s.drainAdmits(group) // may be empty, may not include w, may be w alone
	s.mu.Unlock()
	<-w.done // completed by this drain or an earlier one
	return w.resp, w.err
}

// drainAdmits serves a coalesced group of queued single admits; the
// caller holds s.mu. A singleton group runs the plain single-admit
// path; larger groups run one engine AdmitBatch in queue order and
// share the group's final state as their test response (each verdict
// still equals what a sequential admit at that queue position would
// have answered).
func (s *session) drainAdmits(group []*admitWaiter) {
	if len(group) == 0 {
		return
	}
	live := group[:0]
	for _, w := range group {
		switch {
		case s.guard() != nil:
			w.err = s.guard()
			close(w.done)
		case ctxGuard(w.ctx) != nil:
			w.err = ctxGuard(w.ctx)
			close(w.done)
		default:
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 || s.eng == nil {
		// No useful merge: the plain path answers each waiter (and keeps
		// single-admit witness semantics and tail/interior metrics).
		for _, w := range live {
			w.resp, w.err = s.addTaskLocked(w.ctx, w.t, w.dl, false)
			close(w.done)
		}
		return
	}
	// The coalesced group commits as one logged best-effort batch: replay
	// admits the same tasks in the same queue order through AdmitBatch,
	// which the engine keeps verdict-identical to sequential admission.
	batch := &oplog.Op{
		Type: oplog.TypeAdmitBatch, Session: s.id,
		BatchMode: online.BestEffort.String(),
		Tasks:     make([]oplog.Task, len(live)),
	}
	for i, w := range live {
		batch.Tasks[i] = oplog.Task{Name: w.t.Name, WCET: w.t.WCET, Period: w.t.Period, Deadline: w.dl}
	}
	if lerr := s.logOp(batch); lerr != nil {
		for _, w := range live {
			w.err = lerr
			close(w.done)
		}
		return
	}
	start := time.Now()
	var res partition.Result
	var admitted []bool
	var err error
	if s.constrained {
		cs := make(dbf.Set, len(live))
		for i, w := range live {
			cs[i] = s.constrainedTask(w.t, w.dl)
		}
		res, admitted, err = s.eng.AdmitBatchConstrained(cs, online.BestEffort)
	} else {
		ts := make(partfeas.TaskSet, len(live))
		for i, w := range live {
			ts[i] = w.t
		}
		res, admitted, err = s.eng.AdmitBatch(ts, online.BestEffort)
	}
	if err != nil {
		herr := &httpError{code: http.StatusBadRequest, msg: err.Error()}
		for _, w := range live {
			w.err = herr
			close(w.done)
		}
		return
	}
	if s.mx != nil {
		d := time.Since(start)
		for range live {
			s.mx.AdmissionObserved(PathCoalesced, d)
		}
		s.observeTier(d)
	}
	any := false
	for i, ok := range admitted {
		if ok {
			s.in.Tasks = append(s.in.Tasks, live[i].t)
			if s.constrained {
				s.dls = append(s.dls, s.deadlineOf(live[i].t, live[i].dl))
			}
			any = true
		}
	}
	if any {
		s.tester = nil
	}
	test := TestResponseFrom(s.engReport(res))
	for i, w := range live {
		w.resp = AdmissionResponse{
			Admitted:   admitted[i],
			RolledBack: !admitted[i],
			NTasks:     len(s.in.Tasks),
			Test:       test,
		}
		close(w.done)
	}
}

// addTaskLocked is the single-admit body; the caller holds s.mu. The op
// is acknowledged (logged) before any state changes and applied with
// cancellation stripped, so a durable admit is all-or-nothing.
func (s *session) addTaskLocked(ctx context.Context, t partfeas.Task, dl int64, force bool) (AdmissionResponse, error) {
	if err := s.guard(); err != nil {
		return AdmissionResponse{}, err
	}
	if err := ctxGuard(ctx); err != nil {
		return AdmissionResponse{}, err
	}
	if err := s.logOp(&oplog.Op{
		Type: oplog.TypeAdmit, Session: s.id, Force: force,
		Tasks: []oplog.Task{{Name: t.Name, WCET: t.WCET, Period: t.Period, Deadline: dl}},
	}); err != nil {
		return AdmissionResponse{}, err
	}
	ctx = s.dur.applyCtx(ctx)
	if s.eng != nil {
		start := time.Now()
		var res partition.Result
		var admitted bool
		var err error
		if s.constrained {
			res, admitted, err = s.eng.AdmitConstrained(s.constrainedTask(t, dl))
		} else {
			res, admitted, err = s.eng.Admit(t)
		}
		if err != nil {
			return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		s.observeAdmission(start)
		resp := AdmissionResponse{Admitted: admitted || force, Test: TestResponseFrom(s.engReport(res))}
		switch {
		case admitted:
			s.in.Tasks = append(s.in.Tasks, t)
			if s.constrained {
				s.dls = append(s.dls, s.deadlineOf(t, dl))
			}
			s.tester = nil
		case force:
			if err := s.commitInfeasible(append(s.in.Tasks.Clone(), t)); err != nil {
				return AdmissionResponse{}, err
			}
		default:
			resp.RolledBack = true
		}
		resp.NTasks = len(s.in.Tasks)
		return resp, nil
	}

	cand := append(s.in.Tasks.Clone(), t)
	tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
	if err != nil {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	rep, err := tester.TestCtx(ctx, s.alpha)
	if err != nil {
		return AdmissionResponse{}, err
	}
	resp := AdmissionResponse{Admitted: rep.Accepted || force, Test: TestResponseFrom(rep)}
	if resp.Admitted {
		s.in.Tasks = cand
		s.tester = tester
		if rep.Accepted {
			s.armEngine()
		}
	} else {
		resp.RolledBack = true
	}
	resp.NTasks = len(s.in.Tasks)
	return resp, nil
}

// observeAdmission classifies the engine's most recent single admit as
// tail or interior and records its latency; constrained admissions also
// record which DBF tier decided them. Caller holds s.mu and must call
// this immediately after the engine operation.
func (s *session) observeAdmission(start time.Time) {
	if s.mx == nil {
		return
	}
	p := PathInterior
	if s.eng.LastOpStats().Tail {
		p = PathTail
	}
	d := time.Since(start)
	s.mx.AdmissionObserved(p, d)
	s.observeTier(d)
}

// observeTier records the deepest DBF tier the engine's last op used
// (no-op for implicit-deadline ops). Caller holds s.mu.
func (s *session) observeTier(d time.Duration) {
	if s.mx == nil || s.eng == nil {
		return
	}
	if tp, ok := TierPath(s.eng.LastOpStats().MaxTier); ok {
		s.mx.AdmissionObserved(tp, d)
	}
}

// addTaskBatch admits several tasks in one call. With an armed engine
// the whole batch is one merged suffix replay; per-task verdicts are
// identical to admitting the tasks one at a time in input order
// (best-effort mode) or the batch commits atomically or not at all
// (all-or-nothing mode). While the resident set is infeasible the
// fallback answers each task through the batch tester with best-effort
// semantics; all-or-nothing then degenerates to reject-all, since
// adding tasks cannot restore feasibility.
func (s *session) addTaskBatch(ctx context.Context, ts []partfeas.Task, dls []int64, mode online.BatchMode) (BatchAdmissionResponse, error) {
	defer s.dur.rlock()()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guard(); err != nil {
		return BatchAdmissionResponse{}, err
	}
	for i := range ts {
		var dl int64
		if dls != nil {
			dl = dls[i]
		}
		if err := s.checkDeadlineArg(dl, ts[i].Period, false); err != nil {
			return BatchAdmissionResponse{}, err
		}
	}
	if len(ts) == 0 {
		rep, err := s.currentReport(ctx)
		if err != nil {
			return BatchAdmissionResponse{}, err
		}
		return BatchAdmissionResponse{
			Mode:     mode.String(),
			Admitted: []bool{},
			NTasks:   len(s.in.Tasks),
			Test:     TestResponseFrom(rep),
		}, nil
	}
	if err := ctxGuard(ctx); err != nil {
		return BatchAdmissionResponse{}, err
	}
	batch := &oplog.Op{
		Type: oplog.TypeAdmitBatch, Session: s.id,
		BatchMode: mode.String(),
		Tasks:     make([]oplog.Task, len(ts)),
	}
	for i, t := range ts {
		batch.Tasks[i] = oplog.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		if dls != nil {
			batch.Tasks[i].Deadline = dls[i]
		}
	}
	if err := s.logOp(batch); err != nil {
		return BatchAdmissionResponse{}, err
	}
	ctx = s.dur.applyCtx(ctx)
	if s.eng != nil {
		start := time.Now()
		var res partition.Result
		var admitted []bool
		var err error
		if s.constrained {
			cs := make(dbf.Set, len(ts))
			for i, t := range ts {
				var dl int64
				if dls != nil {
					dl = dls[i]
				}
				cs[i] = s.constrainedTask(t, dl)
			}
			res, admitted, err = s.eng.AdmitBatchConstrained(cs, mode)
		} else {
			res, admitted, err = s.eng.AdmitBatch(ts, mode)
		}
		if err != nil {
			return BatchAdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		if s.mx != nil {
			d := time.Since(start)
			s.mx.AdmissionObserved(PathBatch, d)
			s.observeTier(d)
		}
		n := 0
		for i, ok := range admitted {
			if ok {
				s.in.Tasks = append(s.in.Tasks, ts[i])
				if s.constrained {
					var dl int64
					if dls != nil {
						dl = dls[i]
					}
					s.dls = append(s.dls, s.deadlineOf(ts[i], dl))
				}
				n++
			}
		}
		if n > 0 {
			s.tester = nil
		}
		return BatchAdmissionResponse{
			Mode:      mode.String(),
			Admitted:  admitted,
			NAdmitted: n,
			NTasks:    len(s.in.Tasks),
			Test:      TestResponseFrom(s.engReport(res)),
		}, nil
	}

	// Batch-tester fallback (resident set infeasible). All-or-nothing:
	// one union test decides the whole batch. Best-effort: admit each
	// task in order against the then-current set.
	admitted := make([]bool, len(ts))
	if mode == online.AllOrNothing {
		cand := append(s.in.Tasks.Clone(), ts...)
		tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
		if err != nil {
			return BatchAdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		rep, err := tester.TestCtx(ctx, s.alpha)
		if err != nil {
			return BatchAdmissionResponse{}, err
		}
		n := 0
		if rep.Accepted {
			s.in.Tasks = cand
			s.tester = tester
			s.armEngine()
			for i := range admitted {
				admitted[i] = true
			}
			n = len(ts)
		}
		return BatchAdmissionResponse{
			Mode:      mode.String(),
			Admitted:  admitted,
			NAdmitted: n,
			NTasks:    len(s.in.Tasks),
			Test:      TestResponseFrom(rep),
		}, nil
	}
	n := 0
	var last partfeas.Report
	for i, t := range ts {
		cand := append(s.in.Tasks.Clone(), t)
		tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
		if err != nil {
			return BatchAdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		rep, err := tester.TestCtx(ctx, s.alpha)
		if err != nil {
			return BatchAdmissionResponse{}, err
		}
		last = rep
		if rep.Accepted {
			admitted[i] = true
			n++
			s.in.Tasks = cand
			s.tester = tester
			s.armEngine()
			if s.eng != nil {
				// Feasibility returned mid-batch: the engine finishes it.
				rest, err := s.addTaskBatchEngine(ctx, ts[i+1:], admitted[i+1:])
				if err != nil {
					return BatchAdmissionResponse{}, err
				}
				n += rest
				break
			}
		}
	}
	resp := BatchAdmissionResponse{
		Mode:      mode.String(),
		Admitted:  admitted,
		NAdmitted: n,
		NTasks:    len(s.in.Tasks),
	}
	if s.eng != nil {
		resp.Test = TestResponseFrom(s.engReport(s.eng.Result()))
	} else {
		resp.Test = TestResponseFrom(last)
	}
	return resp, nil
}

// addTaskBatchEngine finishes a best-effort batch on the engine after
// the tester fallback restored feasibility partway through. Caller
// holds s.mu; verdicts land in the admitted slice.
func (s *session) addTaskBatchEngine(ctx context.Context, ts []partfeas.Task, admitted []bool) (int, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	if err := ctxGuard(ctx); err != nil {
		return 0, err
	}
	_, adm, err := s.eng.AdmitBatch(ts, online.BestEffort)
	if err != nil {
		return 0, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	n := 0
	for i, ok := range adm {
		admitted[i] = ok
		if ok {
			s.in.Tasks = append(s.in.Tasks, ts[i])
			n++
		}
	}
	if n > 0 {
		s.tester = nil
	}
	return n, nil
}

// commitInfeasible installs a set the engine refused (force commits and
// removal anomalies): the batch tester takes over and the engine is
// disarmed until feasibility returns. Caller holds s.mu.
func (s *session) commitInfeasible(cand partfeas.TaskSet) error {
	tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
	if err != nil {
		return &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	s.in.Tasks = cand
	s.tester = tester
	s.eng = nil
	return nil
}

// removeTask always commits (releasing load cannot be refused) and
// reports the re-test of the shrunken set. Sorted first-fit is not
// monotone under removals, so the engine can (rarely) refuse a removal
// whose shrunken set re-solves infeasible — the session still commits
// it, on the batch path.
func (s *session) removeTask(ctx context.Context, idx int) (AdmissionResponse, error) {
	defer s.dur.rlock()()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guard(); err != nil {
		return AdmissionResponse{}, err
	}
	if idx < 0 || idx >= len(s.in.Tasks) {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("task index %d out of range [0, %d)", idx, len(s.in.Tasks))}
	}
	if len(s.in.Tasks) == 1 {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: "cannot remove the last task; delete the session instead"}
	}
	if err := ctxGuard(ctx); err != nil {
		return AdmissionResponse{}, err
	}
	if err := s.logOp(&oplog.Op{Type: oplog.TypeRemove, Session: s.id, Target: idx}); err != nil {
		return AdmissionResponse{}, err
	}
	ctx = s.dur.applyCtx(ctx)
	if s.eng != nil {
		res, ok, err := s.eng.Remove(idx)
		if err != nil {
			return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		resp := AdmissionResponse{Admitted: ok, Test: TestResponseFrom(s.engReport(res))}
		cand := append(s.in.Tasks[:idx].Clone(), s.in.Tasks[idx+1:]...)
		switch {
		case ok:
			s.in.Tasks = cand
			if s.constrained {
				s.dls = append(s.dls[:idx], s.dls[idx+1:]...)
			}
			s.tester = nil
		case s.constrained:
			// Constrained sessions have no infeasible fallback path: the
			// (rare) removal whose shrunken set re-solves infeasible stays
			// resident and the client sees the rejection witness.
			resp.RolledBack = true
		default:
			if err := s.commitInfeasible(cand); err != nil {
				return AdmissionResponse{}, err
			}
		}
		resp.NTasks = len(s.in.Tasks)
		return resp, nil
	}

	cand := append(s.in.Tasks[:idx].Clone(), s.in.Tasks[idx+1:]...)
	tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
	if err != nil {
		return AdmissionResponse{}, err
	}
	rep, err := tester.TestCtx(ctx, s.alpha)
	if err != nil {
		return AdmissionResponse{}, err
	}
	s.in.Tasks = cand
	s.tester = tester
	if rep.Accepted {
		s.armEngine()
	}
	return AdmissionResponse{
		Admitted: rep.Accepted,
		NTasks:   len(s.in.Tasks),
		Test:     TestResponseFrom(rep),
	}, nil
}

// updateWCET changes one task's WCET through the engine's incremental
// path, rolling back when the re-test rejects and force is unset.
func (s *session) updateWCET(ctx context.Context, idx int, wcet int64, force bool) (AdmissionResponse, error) {
	defer s.dur.rlock()()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guard(); err != nil {
		return AdmissionResponse{}, err
	}
	if idx < 0 || idx >= len(s.in.Tasks) {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("task index %d out of range [0, %d)", idx, len(s.in.Tasks))}
	}
	if s.constrained && force {
		return AdmissionResponse{}, errConstrainedForce
	}
	if err := ctxGuard(ctx); err != nil {
		return AdmissionResponse{}, err
	}
	if err := s.logOp(&oplog.Op{Type: oplog.TypeUpdateWCET, Session: s.id, Target: idx, WCET: wcet, Force: force}); err != nil {
		return AdmissionResponse{}, err
	}
	ctx = s.dur.applyCtx(ctx)
	if s.eng != nil {
		res, ok, err := s.eng.UpdateWCET(idx, wcet)
		if err != nil {
			return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
		}
		resp := AdmissionResponse{Admitted: ok || force, Test: TestResponseFrom(s.engReport(res))}
		switch {
		case ok:
			s.in.Tasks[idx].WCET = wcet
			s.tester = nil
		case force:
			cand := s.in.Tasks.Clone()
			cand[idx].WCET = wcet
			if err := s.commitInfeasible(cand); err != nil {
				return AdmissionResponse{}, err
			}
		default:
			resp.RolledBack = true
		}
		resp.NTasks = len(s.in.Tasks)
		return resp, nil
	}

	tester, err := s.batchTester()
	if err != nil {
		return AdmissionResponse{}, err
	}
	old := s.in.Tasks[idx].WCET
	if err := tester.UpdateWCET(idx, wcet); err != nil {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	rep, err := tester.TestCtx(ctx, s.alpha)
	if err != nil {
		// Leave the session as the client knew it.
		_ = tester.UpdateWCET(idx, old)
		return AdmissionResponse{}, err
	}
	resp := AdmissionResponse{Admitted: rep.Accepted || force, Test: TestResponseFrom(rep)}
	if resp.Admitted {
		s.in.Tasks[idx].WCET = wcet
		if rep.Accepted {
			s.armEngine()
		}
	} else {
		resp.RolledBack = true
		if err := tester.UpdateWCET(idx, old); err != nil {
			return AdmissionResponse{}, err
		}
	}
	resp.NTasks = len(s.in.Tasks)
	return resp, nil
}

// errNoEngine is the repartition answer for sessions whose resident set
// is infeasible (engine disarmed): there is no feasible target to drift
// from.
var errNoEngine = &httpError{code: http.StatusConflict, msg: "session has no armed engine (resident set infeasible); restore feasibility first"}

// repartition measures drift between the session's live placement and
// the paper's sorted first-fit over the same task multiset, optionally
// applying up to maxMoves migrations. Sorted sessions report zero drift
// by construction; arrival sessions accumulate it and drain it here.
func (s *session) repartition(ctx context.Context, maxMoves int, apply bool) (RepartitionResponse, error) {
	defer s.dur.rlock()()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guard(); err != nil {
		return RepartitionResponse{}, err
	}
	if s.constrained {
		return RepartitionResponse{}, errConstrainedRepartition
	}
	if s.eng == nil {
		return RepartitionResponse{}, errNoEngine
	}
	if err := ctxGuard(ctx); err != nil {
		return RepartitionResponse{}, err
	}
	if apply {
		// Logged before planning: re-planning over the identical engine
		// state is deterministic, so replay re-derives the same moves.
		if err := s.logOp(&oplog.Op{Type: oplog.TypeRepartition, Session: s.id, Target: maxMoves}); err != nil {
			return RepartitionResponse{}, err
		}
	}
	ctx = s.dur.applyCtx(ctx)
	pl, err := s.eng.PlanRepartition()
	if err != nil {
		return RepartitionResponse{}, &httpError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	resp := RepartitionResponse{
		Placement:      s.placement.Name(),
		TargetFeasible: pl.TargetFeasible,
		MovesTotal:     len(pl.Moves),
		DriftFraction:  pl.DriftFraction(s.eng.Len()),
		MaxLoadDelta:   pl.MaxLoadDelta,
		Moves:          make([]MoveJSON, len(pl.Moves)),
	}
	for i, mv := range pl.Moves {
		resp.Moves[i] = MoveJSON{Task: mv.Task, From: mv.From, To: mv.To}
	}
	if apply && pl.TargetFeasible && len(pl.Moves) > 0 {
		applied, err := s.eng.ApplyRepartition(pl, maxMoves)
		if err != nil {
			// A stale plan is impossible under s.mu; surface anything else.
			return RepartitionResponse{}, &httpError{code: http.StatusInternalServerError, msg: err.Error()}
		}
		resp.Applied = applied
		resp.Partial = applied < len(pl.Moves)
	}
	rep, err := s.currentReport(ctx)
	if err != nil {
		return RepartitionResponse{}, err
	}
	resp.Test = TestResponseFrom(rep)
	return resp, nil
}
