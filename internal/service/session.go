package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"partfeas"
)

// session is one live admission-control session: a task set under
// negotiation against a fixed platform and scheduler, backed by a
// private reusable Tester. Add/remove rebuild the tester (the instance
// identity changes); UpdateWCET goes through the tester's incremental
// path — the solver reorders one task and keeps everything else.
//
// The per-session mutex serializes operations, so concurrent clients of
// one session see a linearizable task set; distinct sessions share
// nothing and proceed in parallel.
type session struct {
	mu     sync.Mutex
	id     string
	in     partfeas.Instance
	alpha  float64
	tester *partfeas.Tester
	closed bool
}

// sessionStore owns the id → session map.
type sessionStore struct {
	mu  sync.Mutex
	seq uint64
	max int
	m   map[string]*session
}

func newSessionStore(max int) *sessionStore {
	if max <= 0 {
		max = 1024
	}
	return &sessionStore{max: max, m: map[string]*session{}}
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// create validates nothing itself — the handler passes a decoded,
// validated instance. The instance is deep-copied so later request
// buffers cannot alias session state.
func (st *sessionStore) create(in partfeas.Instance, alpha float64) (*session, error) {
	tester, err := partfeas.NewTester(in.Tasks, in.Platform, in.Scheduler)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	s := &session{
		in: partfeas.Instance{
			Tasks:     in.Tasks.Clone(),
			Platform:  in.Platform.Clone(),
			Scheduler: in.Scheduler,
		},
		alpha:  alpha,
		tester: tester,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.m) >= st.max {
		return nil, &httpError{code: http.StatusTooManyRequests, msg: fmt.Sprintf("session limit %d reached", st.max)}
	}
	st.seq++
	s.id = fmt.Sprintf("s-%d", st.seq)
	st.m[s.id] = s
	return s, nil
}

func (st *sessionStore) get(id string) (*session, error) {
	st.mu.Lock()
	s, ok := st.m[id]
	st.mu.Unlock()
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown session %q", id)}
	}
	return s, nil
}

func (st *sessionStore) remove(id string) error {
	st.mu.Lock()
	s, ok := st.m[id]
	delete(st.m, id)
	st.mu.Unlock()
	if !ok {
		return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown session %q", id)}
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

var errSessionClosed = &httpError{code: http.StatusNotFound, msg: "session closed"}

// state snapshots the session and re-tests it at its alpha.
func (s *session) state(ctx context.Context) (SessionResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SessionResponse{}, errSessionClosed
	}
	rep, err := s.tester.TestCtx(ctx, s.alpha)
	if err != nil {
		return SessionResponse{}, err
	}
	resp := SessionResponse{
		ID:        s.id,
		Scheduler: s.in.Scheduler.String(),
		Alpha:     s.alpha,
		Tasks:     make([]TaskJSON, len(s.in.Tasks)),
		Machines:  make([]MachineJSON, len(s.in.Platform)),
		Test:      TestResponseFrom(rep),
	}
	for i, t := range s.in.Tasks {
		resp.Tasks[i] = TaskJSON{Name: t.Name, WCET: t.WCET, Period: t.Period}
	}
	for i, m := range s.in.Platform {
		resp.Machines[i] = MachineJSON{Name: m.Name, Speed: m.Speed}
	}
	return resp, nil
}

// test re-tests the current set; alpha 0 keeps the session augmentation.
func (s *session) test(ctx context.Context, alpha float64) (TestResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return TestResponse{}, errSessionClosed
	}
	if alpha == 0 {
		alpha = s.alpha
	}
	rep, err := s.tester.TestCtx(ctx, alpha)
	if err != nil {
		return TestResponse{}, err
	}
	return TestResponseFrom(rep), nil
}

// addTask tentatively admits one more task: the candidate set is tested
// at the session alpha and committed only on acceptance (or force).
func (s *session) addTask(ctx context.Context, t partfeas.Task, force bool) (AdmissionResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return AdmissionResponse{}, errSessionClosed
	}
	cand := append(s.in.Tasks.Clone(), t)
	tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
	if err != nil {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	rep, err := tester.TestCtx(ctx, s.alpha)
	if err != nil {
		return AdmissionResponse{}, err
	}
	resp := AdmissionResponse{Admitted: rep.Accepted || force, Test: TestResponseFrom(rep)}
	if resp.Admitted {
		s.in.Tasks = cand
		s.tester = tester
	} else {
		resp.RolledBack = true
	}
	resp.NTasks = len(s.in.Tasks)
	return resp, nil
}

// removeTask always commits (releasing load cannot be refused) and
// reports the re-test of the shrunken set.
func (s *session) removeTask(ctx context.Context, idx int) (AdmissionResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return AdmissionResponse{}, errSessionClosed
	}
	if idx < 0 || idx >= len(s.in.Tasks) {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("task index %d out of range [0, %d)", idx, len(s.in.Tasks))}
	}
	if len(s.in.Tasks) == 1 {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: "cannot remove the last task; delete the session instead"}
	}
	cand := append(s.in.Tasks[:idx].Clone(), s.in.Tasks[idx+1:]...)
	tester, err := partfeas.NewTester(cand, s.in.Platform, s.in.Scheduler)
	if err != nil {
		return AdmissionResponse{}, err
	}
	rep, err := tester.TestCtx(ctx, s.alpha)
	if err != nil {
		return AdmissionResponse{}, err
	}
	s.in.Tasks = cand
	s.tester = tester
	return AdmissionResponse{
		Admitted: rep.Accepted,
		NTasks:   len(s.in.Tasks),
		Test:     TestResponseFrom(rep),
	}, nil
}

// updateWCET changes one task's WCET through the tester's incremental
// path (no solver rebuild) and rolls the change back when the re-test
// rejects and force is unset.
func (s *session) updateWCET(ctx context.Context, idx int, wcet int64, force bool) (AdmissionResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return AdmissionResponse{}, errSessionClosed
	}
	if idx < 0 || idx >= len(s.in.Tasks) {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("task index %d out of range [0, %d)", idx, len(s.in.Tasks))}
	}
	old := s.in.Tasks[idx].WCET
	if err := s.tester.UpdateWCET(idx, wcet); err != nil {
		return AdmissionResponse{}, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	rep, err := s.tester.TestCtx(ctx, s.alpha)
	if err != nil {
		// Leave the session as the client knew it.
		_ = s.tester.UpdateWCET(idx, old)
		return AdmissionResponse{}, err
	}
	resp := AdmissionResponse{Admitted: rep.Accepted || force, Test: TestResponseFrom(rep)}
	if resp.Admitted {
		s.in.Tasks[idx].WCET = wcet
	} else {
		resp.RolledBack = true
		if err := s.tester.UpdateWCET(idx, old); err != nil {
			return AdmissionResponse{}, err
		}
	}
	resp.NTasks = len(s.in.Tasks)
	return resp, nil
}
