package service

// Epoch-fenced live session migration: the mechanism that lets the
// cluster coordinator move a session between replicas without losing an
// acknowledged op and without ever letting two replicas acknowledge
// mutations for the same session.
//
// The protocol (source-driven, five phases):
//
//  1. snapshot — under s.mu the source marks the transfer active and
//     encodes the session at an op boundary (the same sessionSnap codec
//     snapshots and recovery use). Mutations keep flowing; each one is,
//     after its WAL ack, also captured into the session's tail.
//  2. prepare — the snapshot is staged on the destination, which
//     restores it through the real engine-restore path (a corrupt or
//     tampered snapshot is rejected here, before any cutover).
//  3. fence + cutover — under s.mu the source fences the session (no
//     further acks), collects the tail, and encodes the final state at
//     the new epoch. It then appends a TypeMigrateOut record carrying
//     that state *before* telling the destination to commit: a source
//     crash after this point recovers as a fenced tombstone with the
//     retained state and can re-drive the handoff; a failure before it
//     simply unfences, and the transfer never happened.
//  4. commit — the destination replays the tail through the same
//     mutation paths recovery uses, stamps the new epoch, appends a
//     TypeMigrateIn record with its final encoded state, and activates
//     the session. Its response carries that encoding; the source
//     byte-compares it against its own final state.
//  5. release — the source drops the retained state; the tombstone stays
//     and answers every later request with a 421 + X-Session-Owner
//     redirect.
//
// At-least-once with idempotence: any commit failure (lost staging, lost
// ack, destination crash) is retried by re-driving prepare(final state) +
// commit(empty tail). A destination that already activated the epoch
// answers "already" instead of double-applying; a destination that lost
// everything restores from the final state. Epochs only ever increase,
// so a stale owner can never re-acquire a session it ceded.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"partfeas/internal/faultinject"
	"partfeas/internal/oplog"
)

const (
	migratePreparePath = "/internal/v1/migration/prepare"
	migrateCommitPath  = "/internal/v1/migration/commit"
)

// stagedSession is an inbound migration between prepare and commit: the
// restored session (detached from metrics and WAL until activation) and
// the epoch it will assume.
type stagedSession struct {
	s     *session
	epoch uint64
}

// movedSession is an outbound tombstone: where the session went, at what
// epoch, and — until the destination confirms the commit — the retained
// final state that makes the handoff re-drivable.
type movedSession struct {
	target string
	epoch  uint64
	state  []byte
}

// MigrateRequest asks a replica to hand one of its sessions to target
// (a replica base URL).
type MigrateRequest struct {
	Target    string `json:"target"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// MigrateResponse reports a completed handoff.
type MigrateResponse struct {
	Migrated   bool    `json:"migrated"`
	ID         string  `json:"id"`
	Target     string  `json:"target"`
	Epoch      uint64  `json:"epoch"`
	TailOps    int     `json:"tail_ops"`
	Bytes      int     `json:"bytes"`
	Redriven   bool    `json:"redriven,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

type migratePrepare struct {
	ID       string `json:"id"`
	Epoch    uint64 `json:"epoch"`
	Snapshot []byte `json:"snapshot"`
}

type migratePrepareResponse struct {
	Staged bool `json:"staged,omitempty"`
	// Already means the destination holds the session active at this (or
	// a later) epoch: the handoff is complete and must not re-apply.
	Already bool `json:"already,omitempty"`
}

type migrateCommit struct {
	ID    string      `json:"id"`
	Epoch uint64      `json:"epoch"`
	Tail  []*oplog.Op `json:"tail,omitempty"`
}

type migrateCommitResponse struct {
	Already bool `json:"already,omitempty"`
	// State is the destination's final encoded session, which the source
	// byte-compares against its own.
	State []byte `json:"state,omitempty"`
}

// SessionInfo is one row of the internal session index.
type SessionInfo struct {
	ID     string `json:"id"`
	Epoch  uint64 `json:"epoch"`
	NTasks int    `json:"n_tasks"`
}

// MovedInfo is one outbound tombstone of the internal session index;
// Retained marks a handoff the destination has not confirmed yet.
type MovedInfo struct {
	ID       string `json:"id"`
	Target   string `json:"target"`
	Epoch    uint64 `json:"epoch"`
	Retained bool   `json:"retained,omitempty"`
}

// SessionIndex is the coordinator-facing inventory of a replica.
type SessionIndex struct {
	Sessions []SessionInfo `json:"sessions"`
	Moved    []MovedInfo   `json:"moved,omitempty"`
}

// errDiverged marks a commit whose destination state did not byte-match
// the source's: never expected (replay is deterministic), never masked
// by a re-drive.
var errDiverged = errors.New("destination state diverged from source")

// handleSessionIndex lists live sessions and tombstones — what the
// coordinator rebalances from.
func (s *Server) handleSessionIndex(_ http.ResponseWriter, _ *http.Request) (any, int, error) {
	st := s.sessions
	st.mu.Lock()
	sessions := make([]*session, 0, len(st.m))
	for _, sess := range st.m {
		sessions = append(sessions, sess)
	}
	moved := make([]MovedInfo, 0, len(st.moved))
	for id, mv := range st.moved {
		moved = append(moved, MovedInfo{ID: id, Target: mv.target, Epoch: mv.epoch, Retained: mv.state != nil})
	}
	st.mu.Unlock()
	idx := SessionIndex{Sessions: make([]SessionInfo, len(sessions)), Moved: moved}
	for i, sess := range sessions {
		sess.mu.Lock()
		idx.Sessions[i] = SessionInfo{ID: sess.id, Epoch: sess.epoch, NTasks: len(sess.in.Tasks)}
		sess.mu.Unlock()
	}
	sort.Slice(idx.Sessions, func(i, j int) bool { return idx.Sessions[i].ID < idx.Sessions[j].ID })
	sort.Slice(idx.Moved, func(i, j int) bool { return idx.Moved[i].ID < idx.Moved[j].ID })
	if len(idx.Moved) == 0 {
		idx.Moved = nil
	}
	return &idx, 0, nil
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req MigrateRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	if !strings.HasPrefix(req.Target, "http://") && !strings.HasPrefix(req.Target, "https://") {
		return nil, 0, badRequest("migration target %q must be a replica base URL", req.Target)
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.migrateTo(ctx, r.PathValue("id"), req.Target)
	return resp, 0, err
}

func (s *Server) handleMigratePrepare(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req migratePrepare
	if err := decodeInternal(w, r, &req); err != nil {
		return nil, 0, err
	}
	return s.stagePrepare(&req)
}

func (s *Server) handleMigrateCommit(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req migrateCommit
	if err := decodeInternal(w, r, &req); err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	resp, err := s.commitMigration(ctx, &req)
	return resp, 0, err
}

// decodeInternal is decode with the body cap migration payloads need (a
// full session snapshot plus WAL tail can exceed the public 1 MiB cap).
func decodeInternal[T any](w http.ResponseWriter, r *http.Request, dst *T) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<26)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// migrateTo hands session id to the replica at target. See the package
// comment for the protocol; every early exit leaves the session in one
// of exactly three states: unfenced and live here (the transfer never
// happened), fenced with retained state (re-drivable), or tombstoned
// with the destination active (complete).
func (s *Server) migrateTo(ctx context.Context, id, target string) (*MigrateResponse, error) {
	start := time.Now()
	st := s.sessions

	// A tombstone with retained state is a handoff an earlier attempt
	// fenced but could not confirm: re-drive it. Only the recorded target
	// may be re-driven — the MigrateOut record named it, and a second
	// destination at the same epoch would be split brain.
	st.mu.Lock()
	if mv := st.moved[id]; mv != nil {
		state, tgt, epoch := mv.state, mv.target, mv.epoch
		st.mu.Unlock()
		if state == nil {
			return nil, movedErr(id, tgt)
		}
		if target != tgt {
			return nil, &httpError{code: http.StatusConflict,
				msg: fmt.Sprintf("session %q has an unconfirmed handoff to %s; re-drive must target it", id, tgt)}
		}
		if err := s.driveHandoff(ctx, id, tgt, epoch, state); err != nil {
			s.metrics.MigrationFailed()
			return nil, &httpError{code: http.StatusBadGateway, msg: fmt.Sprintf("re-driving handoff of %q: %v", id, err)}
		}
		st.mu.Lock()
		if mv := st.moved[id]; mv != nil && mv.epoch == epoch {
			mv.state = nil
		}
		st.mu.Unlock()
		s.metrics.MigrationOut(time.Since(start))
		return &MigrateResponse{
			Migrated: true, ID: id, Target: tgt, Epoch: epoch, Redriven: true,
			Bytes: len(state), DurationMS: durationMS(start),
		}, nil
	}
	st.mu.Unlock()

	sess, err := st.get(id)
	if err != nil {
		return nil, err
	}

	// Phase 1 — snapshot at an op boundary; tail capture starts here.
	sess.mu.Lock()
	if gerr := sess.guard(); gerr != nil {
		sess.mu.Unlock()
		return nil, gerr
	}
	if sess.migrating {
		sess.mu.Unlock()
		return nil, &httpError{code: http.StatusConflict, msg: fmt.Sprintf("session %q is already migrating", id)}
	}
	sess.migrating = true
	sess.tail = nil
	newEpoch := sess.epoch + 1
	snap, err := encodeSession(sess)
	sess.mu.Unlock()
	if err != nil {
		s.abortMigration(sess)
		return nil, fmt.Errorf("encoding session %q: %w", id, err)
	}

	// Phase 2 — stage the snapshot on the destination.
	// A fired plan with a nil Err is a pure hook (OnFire/Delay) — the
	// crash tests use it to land mutations deterministically inside the
	// tail-capture window; only a non-nil Err fails the phase.
	if p, ok := faultinject.CheckErr(faultinject.SiteMigrateSnapshot, 0); ok && p.Err != nil {
		s.abortMigration(sess)
		s.metrics.MigrationFailed()
		return nil, &httpError{code: http.StatusBadGateway, msg: fmt.Sprintf("migration snapshot send: %v", p.Err)}
	}
	var prep migratePrepareResponse
	if err := s.postPeer(ctx, target, migratePreparePath, &migratePrepare{ID: id, Epoch: newEpoch, Snapshot: snap}, &prep); err != nil {
		s.abortMigration(sess)
		s.metrics.MigrationFailed()
		return nil, err
	}
	if prep.Already {
		// The destination is already the owner at this epoch or later —
		// possible only if a previous handoff completed without this
		// replica learning; refuse rather than guess.
		s.abortMigration(sess)
		s.metrics.MigrationFailed()
		return nil, &httpError{code: http.StatusConflict,
			msg: fmt.Sprintf("destination already owns session %q at epoch ≥ %d", id, newEpoch)}
	}

	// Phase 3 — fence, then durably cede ownership.
	sess.mu.Lock()
	if !sess.migrating || sess.closed {
		sess.mu.Unlock()
		s.metrics.MigrationFailed()
		return nil, &httpError{code: http.StatusConflict, msg: fmt.Sprintf("session %q was destroyed during migration", id)}
	}
	tail := sess.tail
	sess.tail = nil
	sess.fenced = true
	fss := snapOf(sess)
	fss.Epoch = newEpoch
	final, err := json.Marshal(&fss)
	sess.mu.Unlock()
	if err != nil {
		s.unfence(sess)
		s.metrics.MigrationFailed()
		return nil, fmt.Errorf("encoding final state of %q: %w", id, err)
	}
	if p, ok := faultinject.CheckErr(faultinject.SiteMigrateCutover, 0); ok && p.Err != nil {
		// Failure before the MigrateOut record is durable: the cutover
		// never happened; unfence and report. (A process crash here
		// recovers the same way — the WAL has no trace of the transfer.)
		s.unfence(sess)
		s.metrics.MigrationFailed()
		return nil, &httpError{code: http.StatusInternalServerError, msg: fmt.Sprintf("migration cutover: %v", p.Err)}
	}
	unlock := s.dur.rlock()
	if err := s.dur.logOp(&oplog.Op{Type: oplog.TypeMigrateOut, Session: id, Peer: target, Epoch: newEpoch, Snapshot: final}); err != nil {
		unlock()
		s.unfence(sess)
		s.metrics.MigrationFailed()
		return nil, err
	}
	st.mu.Lock()
	sess.mu.Lock()
	sess.closed = true
	sess.migrating = false
	delete(st.m, id)
	st.moved[id] = &movedSession{target: target, epoch: newEpoch, state: final}
	sess.mu.Unlock()
	st.mu.Unlock()
	unlock()

	// Phase 4 — commit on the destination; one idempotent re-drive on
	// any transport or staging failure.
	var commitErr error
	if p, ok := faultinject.CheckErr(faultinject.SiteMigrateStream, 0); ok && p.Err != nil {
		commitErr = p.Err
	} else {
		commitErr = s.confirmCommit(ctx, id, target, newEpoch, final, tail)
	}
	if commitErr != nil && !errors.Is(commitErr, errDiverged) {
		commitErr = s.driveHandoff(ctx, id, target, newEpoch, final)
	}
	if commitErr != nil {
		s.metrics.MigrationFailed()
		return nil, &httpError{code: http.StatusBadGateway,
			msg: fmt.Sprintf("session %q fenced but handoff unconfirmed (%v); re-POST the migration to re-drive", id, commitErr)}
	}

	// Phase 5 — the destination owns the session; drop the retained
	// state, keep the redirect.
	st.mu.Lock()
	if mv := st.moved[id]; mv != nil && mv.epoch == newEpoch {
		mv.state = nil
	}
	st.mu.Unlock()
	s.metrics.MigrationOut(time.Since(start))
	return &MigrateResponse{
		Migrated: true, ID: id, Target: target, Epoch: newEpoch,
		TailOps: len(tail), Bytes: len(final), DurationMS: durationMS(start),
	}, nil
}

// confirmCommit streams the tail and byte-checks the destination's final
// state against ours.
func (s *Server) confirmCommit(ctx context.Context, id, target string, epoch uint64, final []byte, tail []*oplog.Op) error {
	var res migrateCommitResponse
	if err := s.postPeer(ctx, target, migrateCommitPath, &migrateCommit{ID: id, Epoch: epoch, Tail: tail}, &res); err != nil {
		return err
	}
	if !res.Already && !bytes.Equal(res.State, final) {
		return fmt.Errorf("%w (%d vs %d bytes)", errDiverged, len(res.State), len(final))
	}
	return nil
}

// driveHandoff (re-)establishes a fenced handoff from its retained final
// state: prepare(state) + commit(no tail). Safe to repeat — a
// destination already active at the epoch answers "already".
func (s *Server) driveHandoff(ctx context.Context, id, target string, epoch uint64, state []byte) error {
	var prep migratePrepareResponse
	if err := s.postPeer(ctx, target, migratePreparePath, &migratePrepare{ID: id, Epoch: epoch, Snapshot: state}, &prep); err != nil {
		return err
	}
	if prep.Already {
		return nil
	}
	var res migrateCommitResponse
	if err := s.postPeer(ctx, target, migrateCommitPath, &migrateCommit{ID: id, Epoch: epoch}, &res); err != nil {
		return err
	}
	if !res.Already && !bytes.Equal(res.State, state) {
		return fmt.Errorf("%w on re-drive", errDiverged)
	}
	return nil
}

func (s *Server) abortMigration(sess *session) {
	sess.mu.Lock()
	sess.migrating = false
	sess.tail = nil
	sess.mu.Unlock()
}

func (s *Server) unfence(sess *session) {
	sess.mu.Lock()
	sess.fenced = false
	sess.migrating = false
	sess.tail = nil
	sess.mu.Unlock()
}

// stagePrepare restores an inbound snapshot into the staging area,
// replacing any previous staging for the id (prepare is idempotent).
func (s *Server) stagePrepare(req *migratePrepare) (any, int, error) {
	st := s.sessions
	st.mu.Lock()
	if cur, ok := st.m[req.ID]; ok {
		cur.mu.Lock()
		e := cur.epoch
		cur.mu.Unlock()
		st.mu.Unlock()
		if e >= req.Epoch {
			return &migratePrepareResponse{Already: true}, 0, nil
		}
		// An active local copy at an older epoch means this replica
		// believes it owns the session — accepting the inbound copy
		// would fork it. Refuse; the operator resolves.
		return nil, 0, &httpError{code: http.StatusConflict,
			msg: fmt.Sprintf("session %q active here at epoch %d; refusing inbound epoch %d", req.ID, e, req.Epoch)}
	}
	st.mu.Unlock()
	var ss sessionSnap
	if err := json.Unmarshal(req.Snapshot, &ss); err != nil {
		return nil, 0, badRequest("decoding inbound snapshot: %v", err)
	}
	if ss.ID != req.ID {
		return nil, 0, badRequest("inbound snapshot is for session %q, not %q", ss.ID, req.ID)
	}
	sess, err := st.restoreSession(&ss)
	if err != nil {
		// The engine re-verified every recorded placement and refused:
		// the snapshot does not describe a state this server would hold.
		return nil, 0, &httpError{code: http.StatusUnprocessableEntity, msg: fmt.Sprintf("restoring inbound snapshot: %v", err)}
	}
	// Detached until activation: tail replay must not re-log (the
	// MigrateIn record carries the final state) nor count as admissions.
	sess.noLog = true
	sess.mx = nil
	st.mu.Lock()
	st.staging[req.ID] = &stagedSession{s: sess, epoch: req.Epoch}
	st.mu.Unlock()
	return &migratePrepareResponse{Staged: true}, 0, nil
}

// commitMigration replays the streamed tail onto the staged copy, logs
// the arrival, and activates the session. Any failure discards the
// staging — the source re-drives from its retained state.
func (s *Server) commitMigration(ctx context.Context, req *migrateCommit) (*migrateCommitResponse, error) {
	st := s.sessions
	st.mu.Lock()
	if cur, ok := st.m[req.ID]; ok {
		cur.mu.Lock()
		e := cur.epoch
		cur.mu.Unlock()
		st.mu.Unlock()
		if e >= req.Epoch {
			return &migrateCommitResponse{Already: true}, nil
		}
		return nil, &httpError{code: http.StatusConflict,
			msg: fmt.Sprintf("session %q active here at epoch %d; refusing inbound epoch %d", req.ID, e, req.Epoch)}
	}
	stg := st.staging[req.ID]
	if stg == nil || stg.epoch != req.Epoch {
		st.mu.Unlock()
		return nil, &httpError{code: http.StatusConflict,
			msg: fmt.Sprintf("no staged snapshot for session %q at epoch %d (re-prepare)", req.ID, req.Epoch)}
	}
	delete(st.staging, req.ID) // single-shot: any failure below discards it
	st.mu.Unlock()

	sess := stg.s
	ctx = s.dur.applyCtx(ctx)
	for i, op := range req.Tail {
		if p, ok := faultinject.CheckErr(faultinject.SiteMigrateReplay, int64(i)); ok && p.Err != nil {
			s.metrics.MigrationFailed()
			return nil, &httpError{code: http.StatusInternalServerError, msg: fmt.Sprintf("migration replay: %v", p.Err)}
		}
		err := applySessionOp(ctx, sess, op)
		var he *httpError
		if err != nil && !errors.As(err, &he) {
			s.metrics.MigrationFailed()
			return nil, &httpError{code: http.StatusUnprocessableEntity,
				msg: fmt.Sprintf("replaying tail op %d (%s): %v", i, op.Type, err)}
		}
	}
	sess.mu.Lock()
	sess.epoch = req.Epoch
	sess.noLog = false
	sess.mx = st.mx
	state, err := encodeSession(sess)
	sess.mu.Unlock()
	if err != nil {
		s.metrics.MigrationFailed()
		return nil, fmt.Errorf("encoding migrated session %q: %w", req.ID, err)
	}

	// Durable arrival and activation are one unit under the snapshot
	// gate, so a snapshot can never record the MigrateIn without the
	// session (or vice versa).
	defer s.dur.rlock()()
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.m) >= st.max {
		s.metrics.MigrationFailed()
		return nil, &httpError{code: http.StatusTooManyRequests, msg: fmt.Sprintf("session limit %d reached", st.max)}
	}
	if err := s.dur.logOp(&oplog.Op{Type: oplog.TypeMigrateIn, Session: req.ID, Epoch: req.Epoch, Snapshot: state}); err != nil {
		s.metrics.MigrationFailed()
		return nil, err // degraded: the source keeps its retained state and re-drives later
	}
	st.m[req.ID] = sess
	delete(st.moved, req.ID) // the session came home; retire the redirect
	if n, ok := autoSeq(req.ID); ok && n > st.seq {
		st.seq = n
	}
	s.metrics.MigrationIn()
	return &migrateCommitResponse{State: state}, nil
}

// applyMigrateOut replays an ownership handoff during recovery: the
// session (if the snapshot still had it) leaves the store and the
// tombstone — with retained state, since a recovering source cannot know
// whether the destination committed — takes its place. Re-driving from
// it is idempotent either way.
func (st *sessionStore) applyMigrateOut(op *oplog.Op) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if sess, ok := st.m[op.Session]; ok {
		sess.mu.Lock()
		sess.closed = true
		sess.fenced = true
		sess.mu.Unlock()
		delete(st.m, op.Session)
	}
	st.moved[op.Session] = &movedSession{
		target: op.Peer,
		epoch:  op.Epoch,
		state:  append([]byte(nil), op.Snapshot...),
	}
	return nil
}

// applyMigrateIn replays a session arrival during recovery from its
// recorded final state.
func (st *sessionStore) applyMigrateIn(op *oplog.Op) error {
	var ss sessionSnap
	if err := json.Unmarshal(op.Snapshot, &ss); err != nil {
		return fmt.Errorf("op %d: decoding migrate-in state: %w", op.Index, err)
	}
	if ss.ID != op.Session {
		return fmt.Errorf("op %d: migrate-in state is for session %q, not %q", op.Index, ss.ID, op.Session)
	}
	sess, err := st.restoreSession(&ss)
	if err != nil {
		return fmt.Errorf("op %d: restoring migrate-in state: %w", op.Index, err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.m[sess.id] = sess
	delete(st.moved, sess.id)
	if n, ok := autoSeq(sess.id); ok && n > st.seq {
		st.seq = n
	}
	return nil
}

// postPeer POSTs a JSON body to another replica's internal endpoint and
// decodes the 2xx response into out. Failures surface as 502s carrying
// the peer's answer, so the coordinator (and operators) see what the
// destination actually said.
func (s *Server) postPeer(ctx context.Context, base, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(base, "/")+path, bytes.NewReader(b))
	if err != nil {
		return badRequest("building peer request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := s.peerClient.Do(req)
	if err != nil {
		return &httpError{code: http.StatusBadGateway, msg: fmt.Sprintf("peer %s: %v", base, err)}
	}
	defer res.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(res.Body, 1<<26))
	if res.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 512 {
			msg = msg[:512]
		}
		return &httpError{code: http.StatusBadGateway, msg: fmt.Sprintf("peer %s%s: %s: %s", base, path, res.Status, msg)}
	}
	if rerr != nil {
		return &httpError{code: http.StatusBadGateway, msg: fmt.Sprintf("peer %s%s: reading response: %v", base, path, rerr)}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return &httpError{code: http.StatusBadGateway, msg: fmt.Sprintf("peer %s%s: decoding response: %v", base, path, err)}
		}
	}
	return nil
}

func durationMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
