package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"partfeas"
)

// demoInstances builds a few distinct instances that exercise both
// schedulers, named and unnamed machines, and accept/reject outcomes.
func demoInstances() []partfeas.Instance {
	base := partfeas.TaskSet{
		{Name: "video", WCET: 9, Period: 30},
		{Name: "audio", WCET: 1, Period: 4},
		{Name: "net", WCET: 3, Period: 10},
		{Name: "ui", WCET: 2, Period: 12},
		{Name: "sensor", WCET: 1, Period: 20},
	}
	tight := partfeas.TaskSet{
		{Name: "a", WCET: 3, Period: 4},
		{Name: "b", WCET: 3, Period: 4},
		{Name: "c", WCET: 1, Period: 2},
	}
	return []partfeas.Instance{
		{Tasks: base, Platform: partfeas.NewPlatform(1, 1, 4), Scheduler: partfeas.EDF},
		{Tasks: base, Platform: partfeas.NewPlatform(1, 1, 4), Scheduler: partfeas.RMS},
		{Tasks: tight, Platform: partfeas.NewPlatform(1, 1), Scheduler: partfeas.EDF},
		{Tasks: base, Platform: partfeas.Platform{{Name: "big", Speed: 4}, {Name: "small", Speed: 0.5}}, Scheduler: partfeas.EDF},
		{Tasks: tight, Platform: partfeas.NewPlatform(2), Scheduler: partfeas.RMS},
	}
}

func TestInstanceKeyIdentity(t *testing.T) {
	ins := demoInstances()
	seen := map[string]int{}
	for i, in := range ins {
		k := instanceKey(in)
		if j, dup := seen[k]; dup {
			t.Errorf("instances %d and %d share a key", j, i)
		}
		seen[k] = i
	}
	// Equal content, independently built values → equal key.
	a, b := demoInstances()[0], demoInstances()[0]
	if instanceKey(a) != instanceKey(b) {
		t.Error("identical instances produced different keys")
	}
	// Every field the solver's decisions can depend on must change the key.
	mutations := []func(*partfeas.Instance){
		func(in *partfeas.Instance) { in.Scheduler = partfeas.RMS },
		func(in *partfeas.Instance) { in.Tasks[0].Name = "vídeo" },
		func(in *partfeas.Instance) { in.Tasks[0].WCET++ },
		func(in *partfeas.Instance) { in.Tasks[0].Period++ },
		func(in *partfeas.Instance) { in.Tasks = in.Tasks[:4] },
		func(in *partfeas.Instance) { in.Platform[2].Speed = 4.5 },
		func(in *partfeas.Instance) { in.Platform[0].Name = "m00" },
		func(in *partfeas.Instance) { in.Platform = in.Platform[:2] },
	}
	for i, mutate := range mutations {
		in := demoInstances()[0]
		in.Tasks = in.Tasks.Clone()
		in.Platform = in.Platform.Clone()
		mutate(&in)
		if instanceKey(in) == instanceKey(demoInstances()[0]) {
			t.Errorf("mutation %d did not change the key", i)
		}
	}
}

func TestPoolHitMissAndIdleCap(t *testing.T) {
	p := NewTesterPool(4, 2, 0)
	in := demoInstances()[0]

	t1, key, hit, err := p.Acquire(in)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first acquire reported a cache hit")
	}
	p.Release(key, t1)
	t2, _, hit, err := p.Acquire(in)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("acquire after release missed")
	}
	if t2 != t1 {
		t.Error("pool handed back a different tester than was released")
	}
	// Three releases under a cap of two: the third is dropped.
	extra, key2, _, err := p.Acquire(in)
	if err != nil {
		t.Fatal(err)
	}
	third, _, _, err := p.Acquire(in)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(key, t2)
	p.Release(key2, extra)
	p.Release(key, third)
	st := p.Stats()
	if st.Idle != 2 {
		t.Errorf("idle = %d after capped releases, want 2", st.Idle)
	}
	if st.Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 1 hit / 3 misses", st)
	}
	p.Release(key, nil) // must be a no-op
	if got := p.Stats().Idle; got != 2 {
		t.Errorf("idle = %d after nil release, want 2", got)
	}
}

func TestPoolRejectsInvalidInstance(t *testing.T) {
	p := NewTesterPool(0, 0, 0)
	in := demoInstances()[0]
	in.Platform = partfeas.NewPlatform(1, -3)
	if _, _, _, err := p.Acquire(in); err == nil {
		t.Error("Acquire accepted a platform with a negative speed")
	}
}

// TestPoolConcurrentBitIdentical hammers one shared pool from many
// goroutines (run under -race by the Makefile's race target) and checks
// every response is byte-identical to a direct, single-threaded library
// call for the same instance and alpha.
func TestPoolConcurrentBitIdentical(t *testing.T) {
	ins := demoInstances()
	alphas := []float64{0.5, 1, 2, 2.98}

	// Ground truth: direct library calls, no pool, no concurrency.
	want := map[string][]byte{}
	for i, in := range ins {
		for _, alpha := range alphas {
			rep, err := partfeas.TestCtx(context.Background(), in, alpha)
			if err != nil {
				t.Fatal(err)
			}
			buf, err := json.Marshal(TestResponseFrom(rep))
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%d/%g", i, alpha)] = buf
		}
	}

	pool := NewTesterPool(4, 3, 0)
	const goroutines = 16
	const iters = 60
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(ins)
				alpha := alphas[(g*7+it)%len(alphas)]
				tester, key, _, err := pool.Acquire(ins[i])
				if err != nil {
					errc <- err
					return
				}
				rep, err := tester.TestCtx(ctx, alpha)
				if err != nil {
					errc <- err
					return
				}
				got, err := json.Marshal(TestResponseFrom(rep))
				pool.Release(key, tester)
				if err != nil {
					errc <- err
					return
				}
				if wantBuf := want[fmt.Sprintf("%d/%g", i, alpha)]; string(got) != string(wantBuf) {
					errc <- fmt.Errorf("instance %d α=%g: pooled %s != direct %s", i, alpha, got, wantBuf)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := pool.Stats()
	if st.Hits == 0 {
		t.Error("no cache hits across repeated concurrent queries")
	}
	if st.Hits+st.Misses != goroutines*iters {
		t.Errorf("hits %d + misses %d != %d requests", st.Hits, st.Misses, goroutines*iters)
	}
}

// poolInstance builds the i-th of a family of distinct single-task
// instances (distinct WCET → distinct canonical key).
func poolInstance(i int) partfeas.Instance {
	return partfeas.Instance{
		Tasks:     partfeas.TaskSet{{WCET: int64(i + 1), Period: 1000}},
		Platform:  partfeas.NewPlatform(4),
		Scheduler: partfeas.EDF,
	}
}

// TestPoolKeyEviction: the pool-wide key bound must evict least recently
// used keys instead of growing without bound — the leak this bound
// fixes: one client cycling through distinct instances used to pin every
// key's idle slice forever.
func TestPoolKeyEviction(t *testing.T) {
	p := NewTesterPool(1, 4, 3) // one shard → deterministic LRU across keys
	for i := 0; i < 5; i++ {
		tt, key, hit, err := p.Acquire(poolInstance(i))
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("instance %d cannot be cached yet", i)
		}
		p.Release(key, tt)
	}
	st := p.Stats()
	if st.Keys != 3 {
		t.Fatalf("Keys = %d, want 3", st.Keys)
	}
	if st.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", st.Evictions)
	}
	// Oldest keys (0, 1) were evicted; newest (2..4) remain cached.
	if _, _, hit, _ := p.Acquire(poolInstance(0)); hit {
		t.Fatal("evicted key 0 still cached")
	}
	if _, _, hit, _ := p.Acquire(poolInstance(4)); !hit {
		t.Fatal("resident key 4 missed")
	}
}

// TestPoolKeyEvictionCrossShard: the key bound is pool-wide, not
// per-shard — even when distinct keys hash to distinct shards, the
// global count must converge to the cap.
func TestPoolKeyEvictionCrossShard(t *testing.T) {
	p := NewTesterPool(16, 4, 2)
	for i := 0; i < 6; i++ {
		tt, key, _, err := p.Acquire(poolInstance(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Release(key, tt)
	}
	st := p.Stats()
	if st.Keys > 2 {
		t.Fatalf("Keys = %d after 6 releases, want <= 2", st.Keys)
	}
	if st.Evictions < 4 {
		t.Fatalf("Evictions = %d, want >= 4", st.Evictions)
	}
}

// TestPoolKeyEvictionLRUOrder: releasing under an existing key must
// refresh its recency, so the bound evicts the stalest key, not the
// first-inserted one.
func TestPoolKeyEvictionLRUOrder(t *testing.T) {
	p := NewTesterPool(1, 4, 2)
	acquire := func(i int) (*partfeas.Tester, string, bool) {
		tt, key, hit, err := p.Acquire(poolInstance(i))
		if err != nil {
			t.Fatal(err)
		}
		return tt, key, hit
	}
	tA1, keyA, _ := acquire(0)
	tA2, _, _ := acquire(0)
	tB, keyB, _ := acquire(1)
	tC, keyC, _ := acquire(2)
	p.Release(keyA, tA1)
	p.Release(keyB, tB)
	p.Release(keyA, tA2) // refresh A: B becomes the LRU key
	p.Release(keyC, tC)  // bound 2 → evict B
	if st := p.Stats(); st.Evictions != 1 || st.Keys != 2 {
		t.Fatalf("Evictions=%d Keys=%d, want 1 and 2", st.Evictions, st.Keys)
	}
	if _, _, hit := acquire(1); hit {
		t.Fatal("stale key B survived the refresh of A")
	}
	if _, _, hit := acquire(0); !hit {
		t.Fatal("refreshed key A was evicted")
	}
	if _, _, hit := acquire(2); !hit {
		t.Fatal("newest key C was evicted")
	}
}
