package service

// Live-migration tests. The correctness bar mirrors the durability
// layer's: a migrated session must serialize byte-identically (epoch
// aside — migration advances it by design) to a twin that executed the
// same op sequence on one server and never moved. The crash matrix arms
// one fault per protocol site and accepts only acked-consistent
// outcomes: every acknowledged op is in exactly one replica's state, a
// fenced source never acknowledges another mutation, and an interrupted
// handoff re-drives to completion.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"partfeas"
	"partfeas/internal/faultinject"
	"partfeas/internal/online"
)

// startHTTP puts a Server on a real loopback listener (migration is an
// HTTP protocol; the destination must be reachable).
func startHTTP(t testing.TB, srv *Server) string {
	t.Helper()
	if err := srv.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.hs.Close() })
	return "http://" + srv.Addr()
}

func testServer(t testing.TB) *Server {
	t.Helper()
	return New(Config{Addr: "127.0.0.1:0", Logf: t.Logf})
}

// sessionBytes serializes one live session.
func sessionBytes(t testing.TB, srv *Server, id string) []byte {
	t.Helper()
	s, err := srv.sessions.get(id)
	if err != nil {
		t.Fatalf("get %s: %v", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := encodeSession(s)
	if err != nil {
		t.Fatalf("encodeSession: %v", err)
	}
	return b
}

// normEpoch zeroes the epoch in an encoded session so a migrated
// session (epoch e+1) can be byte-compared against its never-migrated
// twin (epoch 1). Everything else must match exactly.
func normEpoch(t testing.TB, b []byte) []byte {
	t.Helper()
	var ss sessionSnap
	if err := json.Unmarshal(b, &ss); err != nil {
		t.Fatalf("decoding session state: %v", err)
	}
	ss.Epoch = 0
	out, err := json.Marshal(&ss)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// migOp is one step of a randomized session script.
type migOp func(ctx context.Context, s *session) error

// migScript derives a deterministic op sequence from seed: admissions
// across the tail/interior utilization range, removals, WCET updates,
// and (implicit sessions only) applied repartitions. Engine rejections
// are fine — they are deterministic too and both twins see them.
func migScript(seed int64, n int, constrained bool) []migOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]migOp, n)
	for i := range ops {
		switch k := rng.Intn(10); {
		case k < 6: // admit
			w := int64(1 + rng.Intn(4))
			p := w * int64(2+rng.Intn(20))
			dl := int64(0)
			if constrained {
				dl = p - int64(rng.Intn(int(p/2+1)))
				if dl < w {
					dl = w
				}
			}
			name := fmt.Sprintf("t%d", i)
			ops[i] = func(ctx context.Context, s *session) error {
				_, err := s.addTask(ctx, partfeas.Task{Name: name, WCET: w, Period: p}, dl, false)
				return err
			}
		case k < 8: // remove a pseudo-random resident
			pick := rng.Intn(64)
			ops[i] = func(ctx context.Context, s *session) error {
				s.mu.Lock()
				n := len(s.in.Tasks)
				s.mu.Unlock()
				if n == 0 {
					return nil
				}
				_, err := s.removeTask(ctx, pick%n)
				return err
			}
		case k < 9: // WCET update on a pseudo-random resident
			pick, w := rng.Intn(64), int64(1+rng.Intn(5))
			ops[i] = func(ctx context.Context, s *session) error {
				s.mu.Lock()
				n := len(s.in.Tasks)
				s.mu.Unlock()
				if n == 0 {
					return nil
				}
				_, err := s.updateWCET(ctx, pick%n, w, false)
				return err
			}
		default: // repartition (implicit only; constrained refuses it)
			if constrained {
				w := int64(1 + rng.Intn(3))
				p := w * int64(4+rng.Intn(10))
				name := fmt.Sprintf("r%d", i)
				ops[i] = func(ctx context.Context, s *session) error {
					_, err := s.addTask(ctx, partfeas.Task{Name: name, WCET: w, Period: p}, p, false)
					return err
				}
			} else {
				ops[i] = func(ctx context.Context, s *session) error {
					_, err := s.repartition(ctx, 0, true)
					return err
				}
			}
		}
	}
	return ops
}

// applyOps runs script ops, tolerating deterministic engine rejections
// (httpErrors) but failing on anything structural.
func applyOps(t testing.TB, s *session, ops []migOp) {
	t.Helper()
	ctx := context.Background()
	for i, op := range ops {
		if err := op(ctx, s); err != nil {
			var he *httpError
			if !errors.As(err, &he) {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
}

type migCase struct {
	name        string
	constrained bool
	sched       partfeas.Scheduler
	policy      online.Policy
}

func migCases() []migCase {
	return []migCase{
		{"edf-sorted", false, partfeas.EDF, online.FirstFitSorted()},
		{"rms-arrival", false, partfeas.RMS, online.FirstFitArrival()},
		{"edf-bestfit", false, partfeas.EDF, online.BestFit()},
		{"rms-worstfit", false, partfeas.RMS, online.WorstFit()},
		{"edf-kchoices", false, partfeas.EDF, online.KChoices(2)},
		{"edf-repartition", false, partfeas.EDF, online.PeriodicRepartition(online.FirstFitArrival(), 5)},
		{"constrained-sorted", true, partfeas.EDF, online.FirstFitSorted()},
		{"constrained-bestfit", true, partfeas.EDF, online.BestFit()},
	}
}

func createMigSession(t testing.TB, srv *Server, c migCase, id string) *session {
	t.Helper()
	in := partfeas.Instance{
		Tasks: partfeas.TaskSet{
			{Name: "video", WCET: 9, Period: 30},
			{Name: "audio", WCET: 1, Period: 4},
			{Name: "net", WCET: 3, Period: 10},
		},
		Platform:  partfeas.Platform{{Name: "m0", Speed: 1}, {Name: "m1", Speed: 1}, {Name: "m2", Speed: 4}},
		Scheduler: c.sched,
	}
	var s *session
	var err error
	if c.constrained {
		s, err = srv.sessions.createConstrained(in, []int64{20, 3, 8}, 1, c.policy, id)
	} else {
		s, err = srv.sessions.create(in, 1, c.policy, id)
	}
	if err != nil {
		t.Fatalf("create %s: %v", c.name, err)
	}
	return s
}

// TestMigrationDeterminism is the tentpole correctness claim: run a
// randomized script with a migration in the middle — including ops that
// land inside the tail-capture window, between the snapshot and the
// fence — and the migrated session must equal (bytes, epoch aside) a
// twin that ran the whole script on one server.
func TestMigrationDeterminism(t *testing.T) {
	for _, c := range migCases() {
		t.Run(c.name, func(t *testing.T) {
			src, dst := testServer(t), testServer(t)
			startHTTP(t, src)
			dstURL := startHTTP(t, dst)

			ops := migScript(11, 24, c.constrained)
			pre, tail, post := ops[:10], ops[10:13], ops[13:]

			sess := createMigSession(t, src, c, "m-1")
			applyOps(t, sess, pre)

			// The tail ops fire from inside migrateTo, after the snapshot
			// is encoded but before the fence: exactly the window whose
			// mutations must be captured and replayed on the destination.
			deactivate := faultinject.Activate(faultinject.Plan{
				Site:   faultinject.SiteMigrateSnapshot,
				OnFire: func() { applyOps(t, sess, tail) },
			})
			resp, err := src.migrateTo(context.Background(), "m-1", dstURL)
			deactivate()
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}
			if !resp.Migrated || resp.Epoch != 2 {
				t.Fatalf("migrate response %+v", resp)
			}
			if resp.TailOps == 0 {
				t.Fatalf("no tail ops captured; the window test is vacuous")
			}

			moved, err := dst.sessions.get("m-1")
			if err != nil {
				t.Fatalf("session missing on destination: %v", err)
			}
			applyOps(t, moved, post)

			twinSrv := testServer(t)
			twin := createMigSession(t, twinSrv, c, "m-1")
			applyOps(t, twin, pre)
			applyOps(t, twin, tail)
			applyOps(t, twin, post)

			got := normEpoch(t, sessionBytes(t, dst, "m-1"))
			want := normEpoch(t, sessionBytes(t, twinSrv, "m-1"))
			if !bytes.Equal(got, want) {
				t.Errorf("migrated state diverged from never-migrated twin\n got: %s\nwant: %s", got, want)
			}

			// The source must answer every further request with a
			// redirect naming the new owner.
			if _, err := src.sessions.get("m-1"); err == nil {
				t.Fatal("source still serves the migrated session")
			} else {
				var he *httpError
				if !errors.As(err, &he) || he.code != http.StatusMisdirectedRequest || he.owner != dstURL {
					t.Errorf("tombstone error = %v (owner %q), want 421 → %s", err, he.owner, dstURL)
				}
			}
		})
	}
}

// TestMigrationFenceStaleOwner drives a mutation at the worst possible
// instant — after the fence, before the cutover record — and through
// the stale source after completion. Neither may be acknowledged.
func TestMigrationFenceStaleOwner(t *testing.T) {
	src, dst := testServer(t), testServer(t)
	startHTTP(t, src)
	dstURL := startHTTP(t, dst)
	sess := createMigSession(t, src, migCases()[0], "f-1")

	var fenceErr error
	fired := false
	deactivate := faultinject.Activate(faultinject.Plan{
		Site: faultinject.SiteMigrateCutover,
		OnFire: func() {
			fired = true
			_, fenceErr = sess.addTask(context.Background(), partfeas.Task{Name: "late", WCET: 1, Period: 50}, 0, false)
		},
	})
	_, err := src.migrateTo(context.Background(), "f-1", dstURL)
	deactivate()
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if !fired {
		t.Fatal("cutover hook never fired")
	}
	var he *httpError
	if !errors.As(fenceErr, &he) || he.code != http.StatusServiceUnavailable || !he.migration {
		t.Fatalf("fenced mutation answered %v, want 503 + X-Migration", fenceErr)
	}

	// The destination's state must not contain the rejected task.
	var ss sessionSnap
	if err := json.Unmarshal(sessionBytes(t, dst, "f-1"), &ss); err != nil {
		t.Fatal(err)
	}
	for _, tk := range ss.Tasks {
		if tk.Name == "late" {
			t.Fatal("destination holds a mutation the source never acknowledged")
		}
	}

	// And the stale source can never acknowledge again: the old handle is
	// closed, the store redirects.
	if _, err := sess.addTask(context.Background(), partfeas.Task{Name: "later", WCET: 1, Period: 50}, 0, false); err == nil {
		t.Fatal("stale owner acknowledged a post-migration mutation")
	}
	if err := src.sessions.remove("f-1"); err == nil {
		t.Fatal("stale owner destroyed a migrated session")
	}
}

// TestMigrationCrashMatrix arms one fault per protocol site. For each,
// the only acceptable outcomes are: the transfer never happened (session
// live and mutable on the source, nothing durable changed hands), or the
// transfer is re-drivable and completes idempotently with the exact
// state a clean run would have produced.
func TestMigrationCrashMatrix(t *testing.T) {
	for _, site := range []faultinject.Site{
		faultinject.SiteMigrateSnapshot,
		faultinject.SiteMigrateCutover,
		faultinject.SiteMigrateStream,
		faultinject.SiteMigrateReplay,
	} {
		t.Run(string(site), func(t *testing.T) {
			src, dst := testServer(t), testServer(t)
			startHTTP(t, src)
			dstURL := startHTTP(t, dst)
			c := migCases()[0]
			sess := createMigSession(t, src, c, "x-1")
			ops := migScript(7, 12, false)
			applyOps(t, sess, ops[:8])
			wantState := normEpoch(t, sessionBytes(t, src, "x-1"))

			// The injected failure also cancels the context, so the
			// source's automatic in-call re-drive fails too and the test
			// can observe the interrupted state.
			ctx, cancel := context.WithCancel(context.Background())
			tailed := false
			var deactivate func()
			switch site {
			case faultinject.SiteMigrateSnapshot:
				// The hook lands an acknowledged op in the tail window,
				// then the Err aborts the transfer.
				deactivate = faultinject.Activate(faultinject.Plan{
					Site:   site,
					OnFire: func() { tailed = true; applyOps(t, sess, ops[8:9]) },
					Err:    errInjectedDisk,
				})
			case faultinject.SiteMigrateReplay:
				// The replay site fires per tail op, so an empty tail would
				// make this case vacuous. Chain plans: a nil-Err hook at
				// the snapshot site applies a tail op, then swaps itself
				// for the replay fault before the commit streams it.
				var hook func()
				hook = faultinject.Activate(faultinject.Plan{
					Site: faultinject.SiteMigrateSnapshot,
					OnFire: func() {
						tailed = true
						applyOps(t, sess, ops[8:9])
						hook()
						deactivate = faultinject.Activate(faultinject.Plan{
							Site:   faultinject.SiteMigrateReplay,
							OnFire: cancel,
							Err:    errInjectedDisk,
						})
					},
				})
				deactivate = hook
			case faultinject.SiteMigrateStream:
				deactivate = faultinject.Activate(faultinject.Plan{
					Site: site, OnFire: cancel, Err: errInjectedDisk,
				})
			default:
				deactivate = faultinject.Activate(faultinject.Plan{
					Site: site, Err: errInjectedDisk,
				})
			}
			_, err := src.migrateTo(ctx, "x-1", dstURL)
			deactivate()
			cancel()
			if err == nil {
				t.Fatalf("migration succeeded despite fault at %s", site)
			}

			switch site {
			case faultinject.SiteMigrateSnapshot, faultinject.SiteMigrateCutover:
				// Pre-cutover faults: the transfer never happened. The
				// session lives, unfenced, and keeps acknowledging.
				s, gerr := src.sessions.get("x-1")
				if gerr != nil {
					t.Fatalf("session gone after pre-cutover fault: %v", gerr)
				}
				if _, aerr := s.addTask(context.Background(), partfeas.Task{Name: "post", WCET: 1, Period: 40}, 0, false); aerr != nil {
					t.Fatalf("session not mutable after aborted migration: %v", aerr)
				}
			case faultinject.SiteMigrateStream, faultinject.SiteMigrateReplay:
				// Post-cutover faults: the source is fenced with retained
				// state; mutations redirect; a re-drive completes with the
				// state every acknowledged op produced.
				if _, gerr := src.sessions.get("x-1"); gerr == nil {
					t.Fatal("session still live on source after cutover")
				}
				src.sessions.mu.Lock()
				mv := src.sessions.moved["x-1"]
				src.sessions.mu.Unlock()
				if mv == nil || mv.state == nil {
					t.Fatalf("no re-drivable tombstone after %s fault", site)
				}
				resp, rerr := src.migrateTo(context.Background(), "x-1", dstURL)
				if rerr != nil {
					t.Fatalf("re-drive: %v", rerr)
				}
				if !resp.Redriven {
					t.Fatalf("re-drive response %+v", resp)
				}
				got := normEpoch(t, sessionBytes(t, dst, "x-1"))
				want := wantState
				if tailed {
					// The tail op was acknowledged pre-fence; recompute the
					// expected state including it on a twin.
					twinSrv := testServer(t)
					twin := createMigSession(t, twinSrv, c, "x-1")
					applyOps(t, twin, ops[:9])
					want = normEpoch(t, sessionBytes(t, twinSrv, "x-1"))
				}
				if !bytes.Equal(got, want) {
					t.Errorf("re-driven state diverged\n got: %s\nwant: %s", got, want)
				}
				// Re-driving to a different destination must be refused —
				// two destinations at one epoch would be split brain.
				other := testServer(t)
				otherURL := startHTTP(t, other)
				if _, serr := src.migrateTo(context.Background(), "x-1", otherURL); serr == nil {
					t.Fatal("re-drive to a different destination accepted")
				}
			}
		})
	}
}

// TestMigrationWALRecovery crashes both ends of a completed handoff and
// replays their logs: the source must recover the tombstone (with
// retained state — it cannot know the commit was confirmed) and the
// destination must recover the migrated session byte-identically.
func TestMigrationWALRecovery(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src := mustDurable(t, srcDir, Config{Addr: "127.0.0.1:0", FsyncInterval: -1, SnapshotEvery: -1})
	dst := mustDurable(t, dstDir, Config{Addr: "127.0.0.1:0", FsyncInterval: -1, SnapshotEvery: -1})
	startHTTP(t, src)
	dstURL := startHTTP(t, dst)

	c := migCases()[0]
	sess := createMigSession(t, src, c, "w-1")
	applyOps(t, sess, migScript(3, 8, false)[:8])
	if _, err := src.migrateTo(context.Background(), "w-1", dstURL); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	wantDst := sessionBytes(t, dst, "w-1")

	src.Crash()
	dst.Crash()
	src2 := mustDurable(t, srcDir, Config{FsyncInterval: -1, SnapshotEvery: -1})
	dst2 := mustDurable(t, dstDir, Config{FsyncInterval: -1, SnapshotEvery: -1})

	if got := sessionBytes(t, dst2, "w-1"); !bytes.Equal(got, wantDst) {
		t.Errorf("destination recovery diverged\n got: %s\nwant: %s", got, wantDst)
	}
	_, err := src2.sessions.get("w-1")
	var he *httpError
	if !errors.As(err, &he) || he.code != http.StatusMisdirectedRequest || he.owner != dstURL {
		t.Fatalf("recovered source answers %v, want 421 → %s", err, dstURL)
	}
	src2.sessions.mu.Lock()
	mv := src2.sessions.moved["w-1"]
	src2.sessions.mu.Unlock()
	if mv == nil || mv.state == nil || mv.epoch != 2 {
		t.Fatalf("recovered tombstone %+v, want retained state at epoch 2", mv)
	}

	// Re-driving the recovered tombstone against a destination that
	// already owns the epoch must be a no-op success.
	resp, err := src2.migrateTo(context.Background(), "w-1", dstURL)
	if err != nil {
		t.Fatalf("idempotent re-drive: %v", err)
	}
	if !resp.Redriven {
		t.Fatalf("re-drive response %+v", resp)
	}
	if got := sessionBytes(t, dst2, "w-1"); !bytes.Equal(got, wantDst) {
		t.Errorf("idempotent re-drive changed destination state")
	}
}

// TestMigrateHTTPFlow exercises the public endpoint end to end: create
// with an explicit X-Session-ID, migrate via POST, mutate via the new
// owner, and read the 421 + X-Session-Owner redirect from the old one.
func TestMigrateHTTPFlow(t *testing.T) {
	src, dst := testServer(t), testServer(t)
	srcURL := startHTTP(t, src)
	dstURL := startHTTP(t, dst)

	body := `{"tasks":[{"name":"a","wcet":1,"period":4}],"speeds":[1,2],"scheduler":"edf"}`
	req, _ := http.NewRequest(http.MethodPost, srcURL+"/v1/sessions", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Session-ID", "web-7")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("create with X-Session-ID: %d", res.StatusCode)
	}

	res, err = http.Post(srcURL+"/v1/sessions/web-7/migrate", "application/json",
		strings.NewReader(fmt.Sprintf(`{"target":%q}`, dstURL)))
	if err != nil {
		t.Fatal(err)
	}
	var mr MigrateResponse
	if err := json.NewDecoder(res.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !mr.Migrated {
		t.Fatalf("migrate: %d %+v", res.StatusCode, mr)
	}

	res, err = http.Post(dstURL+"/v1/sessions/web-7/tasks", "application/json",
		strings.NewReader(`{"task":{"wcet":1,"period":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("admit on new owner: %d", res.StatusCode)
	}

	res, err = http.Get(srcURL + "/v1/sessions/web-7")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusMisdirectedRequest || res.Header.Get("X-Session-Owner") != dstURL {
		t.Fatalf("old owner answers %d (owner %q), want 421 → %s", res.StatusCode, res.Header.Get("X-Session-Owner"), dstURL)
	}
}

// TestMigrationDestroyAborts destroys the session mid-transfer (inside
// the tail window); the migration must abort, not resurrect it.
func TestMigrationDestroyAborts(t *testing.T) {
	src, dst := testServer(t), testServer(t)
	startHTTP(t, src)
	dstURL := startHTTP(t, dst)
	createMigSession(t, src, migCases()[0], "d-1")

	deactivate := faultinject.Activate(faultinject.Plan{
		Site: faultinject.SiteMigrateSnapshot,
		OnFire: func() {
			if err := src.sessions.remove("d-1"); err != nil {
				t.Errorf("destroy during migration: %v", err)
			}
		},
	})
	_, err := src.migrateTo(context.Background(), "d-1", dstURL)
	deactivate()
	if err == nil {
		t.Fatal("migration of a destroyed session succeeded")
	}
	if _, err := dst.sessions.get("d-1"); err == nil {
		t.Fatal("destroyed session resurrected on destination")
	}
	time.Sleep(10 * time.Millisecond)
}

// TestMigrationMetricsMove asserts the migration counters move: one
// completed handoff records an out on the source, an in on the
// destination, and a failed attempt records a failure.
func TestMigrationMetricsMove(t *testing.T) {
	src, dst := testServer(t), testServer(t)
	startHTTP(t, src)
	dstURL := startHTTP(t, dst)
	createMigSession(t, src, migCases()[0], "mm-1")
	// Dead-target attempt first, while the session is still live (after
	// a successful migration it would be a redirect, not a failure).
	if _, err := src.migrateTo(context.Background(), "mm-1", "http://127.0.0.1:1"); err == nil {
		t.Fatal("migration to a dead target succeeded")
	}
	if got := src.metrics.migrFailed.Load(); got == 0 {
		t.Error("failed migration not counted")
	}
	if _, err := src.migrateTo(context.Background(), "mm-1", dstURL); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if got := src.metrics.migrOut.Load(); got != 1 {
		t.Errorf("source migrations out = %d, want 1", got)
	}
	if got := dst.metrics.migrIn.Load(); got != 1 {
		t.Errorf("destination migrations in = %d, want 1", got)
	}
	var buf bytes.Buffer
	src.metrics.WritePrometheus(&buf)
	for _, want := range []string{
		`partfeas_migrations_total{direction="out"} 1`,
		"partfeas_migration_failures_total 1",
		"partfeas_migration_duration_seconds_count 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
