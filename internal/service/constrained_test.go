package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestConstrainedSessionLifecycle drives a constrained-deadline session
// end to end through the HTTP handlers: create with per-task deadlines,
// single and batch admits, a rejection witness, WCET updates against the
// C ≤ D rule, and the constrained-specific refusals (force, repartition,
// non-EDF schedulers, deadlines outside constrained sessions).
func TestConstrainedSessionLifecycle(t *testing.T) {
	s := newTestServer(t)

	w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"name":"a","wcet":2,"period":10,"deadline":5},{"name":"b","wcet":1,"period":8}],`+
			`"speeds":[1,0.25],"deadline_model":"constrained"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var st SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.DeadlineModel != "constrained" {
		t.Fatalf("deadline_model = %q, want constrained", st.DeadlineModel)
	}
	if st.Tasks[0].Deadline != 5 || st.Tasks[1].Deadline != 0 {
		t.Fatalf("echoed deadlines = %d, %d; want 5 and 0 (implicit)", st.Tasks[0].Deadline, st.Tasks[1].Deadline)
	}
	if !st.Test.Accepted {
		t.Fatalf("feasible constrained set rejected at create: %+v", st.Test)
	}
	base := "/v1/sessions/" + st.ID

	// A constrained admit that fits.
	w = do(t, s, "POST", base+"/tasks", `{"task":{"name":"c","wcet":1,"period":6,"deadline":3}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("admit: %d %s", w.Code, w.Body)
	}
	var ar AdmissionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Admitted || ar.NTasks != 3 {
		t.Fatalf("admit: %+v", ar)
	}

	// A density-1 task monopolizes the only machine that can hold it
	// (first-fit places it alone on the speed-1 machine, leaving task a
	// with no feasible home): rejected and rolled back, set unchanged.
	w = do(t, s, "POST", base+"/tasks", `{"task":{"name":"hog","wcet":9,"period":10,"deadline":9}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("reject admit: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Admitted || !ar.RolledBack || ar.NTasks != 3 {
		t.Fatalf("reject admit: %+v", ar)
	}

	// Batch admit with mixed implicit and constrained deadlines.
	w = do(t, s, "POST", base+"/admit-batch",
		`{"tasks":[{"wcet":1,"period":12,"deadline":6},{"wcet":1,"period":16}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body)
	}
	var br BatchAdmissionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if br.NAdmitted != 2 || br.NTasks != 5 {
		t.Fatalf("batch: %+v", br)
	}

	// WCET above the task's deadline violates C ≤ D.
	w = do(t, s, "POST", base+"/wcet", `{"index":0,"wcet":7}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("wcet > deadline: %d %s", w.Code, w.Body)
	}
	// A WCET within the deadline re-tests incrementally.
	w = do(t, s, "POST", base+"/wcet", `{"index":0,"wcet":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("wcet update: %d %s", w.Code, w.Body)
	}

	// Remove commits and shrinks the deadline bookkeeping.
	w = do(t, s, "DELETE", base+"/tasks/1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Admitted || ar.NTasks != 4 {
		t.Fatalf("remove: %+v", ar)
	}

	// Ad-hoc alpha re-test runs a fresh constrained solve.
	w = do(t, s, "POST", base+"/test", `{"alpha":2.5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ad-hoc test: %d %s", w.Code, w.Body)
	}

	// Constrained refusals.
	for _, tc := range []struct {
		name, method, path, body string
		code                     int
	}{
		{"force admit", "POST", base + "/tasks", `{"task":{"wcet":1,"period":30},"force":true}`, http.StatusBadRequest},
		{"force wcet", "POST", base + "/wcet", `{"index":0,"wcet":1,"force":true}`, http.StatusBadRequest},
		{"repartition", "POST", base + "/repartition", `{}`, http.StatusConflict},
	} {
		if w := do(t, s, tc.method, tc.path, tc.body); w.Code != tc.code {
			t.Fatalf("%s: %d %s (want %d)", tc.name, w.Code, w.Body, tc.code)
		}
	}

	// Model guards outside constrained sessions.
	if w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"wcet":1,"period":4,"deadline":2}],"speeds":[1],"scheduler":"rms","deadline_model":"constrained"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("rms constrained: %d %s", w.Code, w.Body)
	}
	if w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"wcet":1,"period":4,"deadline":2}],"speeds":[1]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("implicit session with deadline: %d %s", w.Code, w.Body)
	}
	if w := do(t, s, "POST", "/v1/test",
		`{"tasks":[{"wcet":1,"period":4,"deadline":2}],"speeds":[1]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("stateless with deadline: %d %s", w.Code, w.Body)
	}
	if w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"wcet":1,"period":4}],"speeds":[1],"deadline_model":"sporadic"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad model: %d %s", w.Code, w.Body)
	}
	// Infeasible constrained creation is a conflict, not a batch-path session.
	if w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"wcet":9,"period":10,"deadline":9},{"wcet":9,"period":10,"deadline":9}],"speeds":[1],"deadline_model":"constrained"}`); w.Code != http.StatusConflict {
		t.Fatalf("infeasible constrained create: %d %s", w.Code, w.Body)
	}
}

// TestConstrainedAdmissionMetrics asserts the per-tier admission
// counters move under a constrained-deadline session: after a burst of
// single admits the scrape must show nonzero decisions on the tier
// paths, alongside the tail/interior classification.
func TestConstrainedAdmissionMetrics(t *testing.T) {
	s := newTestServer(t)
	w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"wcet":1,"period":64,"deadline":32}],"speeds":[1,1],"deadline_model":"constrained"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var st SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	base := "/v1/sessions/" + st.ID
	for i := 0; i < 24; i++ {
		body := fmt.Sprintf(`{"task":{"wcet":1,"period":%d,"deadline":%d}}`, 32+i, 16+i)
		if w := do(t, s, "POST", base+"/tasks", body); w.Code != http.StatusOK {
			t.Fatalf("admit %d: %d %s", i, w.Code, w.Body)
		}
	}

	scrape := do(t, s, "GET", "/metrics", "")
	if scrape.Code != http.StatusOK {
		t.Fatalf("metrics: %d", scrape.Code)
	}
	out := scrape.Body.String()
	tierTotal := uint64(0)
	for _, path := range []string{"density", "dbf_approx", "dbf_exact"} {
		marker := fmt.Sprintf("partfeas_admissions_total{path=%q} ", path)
		at := strings.Index(out, marker)
		if at < 0 {
			t.Fatalf("scrape missing %q:\n%s", marker, out)
		}
		var v uint64
		if _, err := fmt.Sscanf(out[at+len(marker):], "%d", &v); err != nil {
			t.Fatalf("parse %q counter: %v", path, err)
		}
		tierTotal += v
		// Each tier path also exposes its latency summary.
		if q := fmt.Sprintf("partfeas_admission_duration_seconds_count{path=%q} ", path); !strings.Contains(out, q) {
			t.Fatalf("scrape missing %q", q)
		}
	}
	if tierTotal == 0 {
		t.Fatalf("no tier-path admissions recorded:\n%s", out)
	}
	if !strings.Contains(out, `partfeas_admissions_total{path="tail"}`) {
		t.Fatalf("tail path missing from scrape")
	}
}
