package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestSessionCreatePolicyNames checks that session create accepts every
// canonical placement policy name (plus the legacy aliases) and echoes
// the resolved canonical name back, and that an unknown name is a 400
// naming the offending value.
func TestSessionCreatePolicyNames(t *testing.T) {
	s := newTestServer(t)
	cases := []struct{ request, want string }{
		{"", "first_fit_sorted"},
		{"first_fit_sorted", "first_fit_sorted"},
		{"sorted", "first_fit_sorted"},
		{"first_fit_arrival", "first_fit_arrival"},
		{"arrival", "first_fit_arrival"},
		{"best_fit", "best_fit"},
		{"worst_fit", "worst_fit"},
		{"k_choices", "k_choices"},
		{"k_choices_4", "k_choices_4"},
	}
	for _, tc := range cases {
		body := fmt.Sprintf(`{"tasks":[{"wcet":1,"period":8},{"wcet":3,"period":8}],"speeds":[1,2],"scheduler":"edf","placement":%q}`, tc.request)
		w := do(t, s, http.MethodPost, "/v1/sessions", body)
		if w.Code != http.StatusCreated {
			t.Fatalf("placement %q: %d %s", tc.request, w.Code, w.Body)
		}
		var sess SessionResponse
		if err := json.Unmarshal(w.Body.Bytes(), &sess); err != nil {
			t.Fatal(err)
		}
		if sess.Placement != tc.want {
			t.Errorf("placement %q: response echoes %q, want %q", tc.request, sess.Placement, tc.want)
		}
		// The engine must actually run the policy: one more admit works
		// under every lane (total util 0.5+1 on speeds 1+2).
		if w := do(t, s, http.MethodPost, "/v1/sessions/"+sess.ID+"/tasks", `{"task":{"wcet":2,"period":8}}`); w.Code != http.StatusOK {
			t.Errorf("placement %q: admit: %d %s", tc.request, w.Code, w.Body)
		}
	}

	w := do(t, s, http.MethodPost, "/v1/sessions",
		`{"tasks":[{"wcet":1,"period":8}],"speeds":[1],"scheduler":"edf","placement":"telepathy_fit"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown placement: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "telepathy_fit") || !strings.Contains(w.Body.String(), "first_fit_sorted") {
		t.Fatalf("400 body should name the value and the valid set: %s", w.Body)
	}
}

// TestSessionCreatePolicyConstrained checks the constrained pipeline
// takes the new policy names too, and still refuses repartition lanes.
func TestSessionCreatePolicyConstrained(t *testing.T) {
	s := newTestServer(t)
	body := `{"tasks":[{"wcet":1,"period":8,"deadline":4},{"wcet":2,"period":8,"deadline":8}],"speeds":[1,2],"scheduler":"edf","deadline_model":"constrained","placement":"best_fit"}`
	w := do(t, s, http.MethodPost, "/v1/sessions", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var sess SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sess); err != nil {
		t.Fatal(err)
	}
	if sess.Placement != "best_fit" {
		t.Fatalf("placement = %q", sess.Placement)
	}
	bad := strings.Replace(body, `"placement":"best_fit"`, `"placement":"best_fit+repartition_5"`, 1)
	if w := do(t, s, http.MethodPost, "/v1/sessions", bad); w.Code != http.StatusBadRequest {
		t.Fatalf("constrained repartition policy: %d %s", w.Code, w.Body)
	}
}
