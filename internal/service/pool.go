package service

import (
	"sync"
	"sync/atomic"

	"partfeas"
)

// TesterPool is a sharded, concurrency-safe cache of reusable
// partfeas.Testers keyed by the canonical instance encoding. A Tester is
// single-goroutine by contract, so the pool hands each one out
// exclusively: Acquire pops an idle tester for the instance (a cache hit
// — the repeat query then runs on the zero-alloc precomputed-solver
// path) or builds a fresh one (a miss); Release returns it for the next
// request. Concurrent requests for the same instance each get their own
// tester, so correctness never depends on request serialization.
//
// Two bounds keep the pool's memory finite: maxIdle caps testers cached
// per key, and maxKeys caps distinct keys pool-wide — without the key
// bound, a client cycling through distinct instances would grow the
// idle map forever even though every individual key stayed tiny. The
// key bound is tracked globally (an atomic count) and enforced by
// evicting the least-recently-used key of the fullest shard, so it
// holds regardless of how the hash distributes keys over shards; with
// concurrent releases the count can transiently overshoot by the number
// of in-flight insertions.
type TesterPool struct {
	shards  []poolShard
	maxIdle int // testers per key
	maxKeys int // distinct keys pool-wide

	keys      atomic.Int64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64 // keys evicted by the LRU bound
}

type poolShard struct {
	mu      sync.Mutex
	entries map[string]*poolEntry
	// Intrusive LRU list over entries; head is most recently used.
	head, tail *poolEntry
}

type poolEntry struct {
	key        string
	idle       []*partfeas.Tester
	prev, next *poolEntry
}

func (sh *poolShard) unlink(e *poolEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *poolShard) pushFront(e *poolEntry) {
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// NewTesterPool builds a pool with the given shard count (<= 0 means 16),
// per-instance idle cap (<= 0 means 4) and pool-wide key cap (<= 0 means
// 1024). Testers released beyond the idle cap are dropped for the GC;
// keys beyond the key cap evict a least-recently-used key.
func NewTesterPool(shards, maxIdlePerKey, maxKeys int) *TesterPool {
	if shards <= 0 {
		shards = 16
	}
	if maxIdlePerKey <= 0 {
		maxIdlePerKey = 4
	}
	if maxKeys <= 0 {
		maxKeys = 1024
	}
	p := &TesterPool{
		shards:  make([]poolShard, shards),
		maxIdle: maxIdlePerKey,
		maxKeys: maxKeys,
	}
	for i := range p.shards {
		p.shards[i].entries = map[string]*poolEntry{}
	}
	return p
}

// Acquire returns an exclusive Tester for the instance plus the cache key
// to Release it under. hit reports whether the tester came from the cache.
// The instance must already be validated (the handlers validate at
// decode); construction errors are still surfaced.
func (p *TesterPool) Acquire(in partfeas.Instance) (t *partfeas.Tester, key string, hit bool, err error) {
	key = instanceKey(in)
	sh := &p.shards[shardOf(key, len(p.shards))]
	sh.mu.Lock()
	if e := sh.entries[key]; e != nil && len(e.idle) > 0 {
		t = e.idle[len(e.idle)-1]
		e.idle[len(e.idle)-1] = nil
		e.idle = e.idle[:len(e.idle)-1]
		if len(e.idle) == 0 {
			sh.unlink(e)
			delete(sh.entries, key)
			p.keys.Add(-1)
		} else {
			sh.unlink(e)
			sh.pushFront(e)
		}
		sh.mu.Unlock()
		p.hits.Add(1)
		return t, key, true, nil
	}
	sh.mu.Unlock()
	p.misses.Add(1)
	t, err = partfeas.NewTester(in.Tasks, in.Platform, in.Scheduler)
	if err != nil {
		return nil, "", false, err
	}
	return t, key, false, nil
}

// Release returns a tester acquired for key to the pool. Testers whose
// state was mutated (UpdateWCET) must not be released — sessions keep
// their testers privately for exactly that reason.
func (p *TesterPool) Release(key string, t *partfeas.Tester) {
	if t == nil {
		return
	}
	sh := &p.shards[shardOf(key, len(p.shards))]
	sh.mu.Lock()
	e := sh.entries[key]
	inserted := e == nil
	if inserted {
		e = &poolEntry{key: key}
		sh.entries[key] = e
	} else {
		sh.unlink(e)
	}
	sh.pushFront(e)
	if len(e.idle) < p.maxIdle {
		e.idle = append(e.idle, t)
	}
	sh.mu.Unlock()
	if inserted && p.keys.Add(1) > int64(p.maxKeys) {
		p.evictOne(sh)
	}
}

// evictOne drops the least-recently-used key of the fullest shard —
// cross-shard LRU is approximated, the pool-wide count is exact. The
// fresh key the caller just inserted is spared when it is its shard's
// only entry (evicting it would make the insertion pointless); the
// bound then holds on the next insertion.
func (p *TesterPool) evictOne(fresh *poolShard) {
	var best *poolShard
	bestN := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n := len(sh.entries)
		sh.mu.Unlock()
		if n > bestN || (n == bestN && n > 0 && best == fresh) {
			best, bestN = sh, n
		}
	}
	if best == nil || bestN == 0 {
		return
	}
	best.mu.Lock()
	if victim := best.tail; victim != nil && !(best == fresh && len(best.entries) == 1) {
		best.unlink(victim)
		delete(best.entries, victim.key)
		best.mu.Unlock()
		p.keys.Add(-1)
		p.evictions.Add(1)
		return
	}
	best.mu.Unlock()
}

// PoolStats is a point-in-time cache snapshot.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // keys dropped by the LRU key bound
	Idle      int    // testers currently cached across all shards
	Keys      int    // distinct keys currently cached across all shards
}

// Stats reads the hit/miss/eviction counters and counts idle testers.
func (p *TesterPool) Stats() PoolStats {
	st := PoolStats{Hits: p.hits.Load(), Misses: p.misses.Load(), Evictions: p.evictions.Load()}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			st.Idle += len(e.idle)
			st.Keys++
		}
		sh.mu.Unlock()
	}
	return st
}
