package service

import (
	"sync"
	"sync/atomic"

	"partfeas"
)

// TesterPool is a sharded, concurrency-safe cache of reusable
// partfeas.Testers keyed by the canonical instance encoding. A Tester is
// single-goroutine by contract, so the pool hands each one out
// exclusively: Acquire pops an idle tester for the instance (a cache hit
// — the repeat query then runs on the zero-alloc precomputed-solver
// path) or builds a fresh one (a miss); Release returns it for the next
// request. Concurrent requests for the same instance each get their own
// tester, so correctness never depends on request serialization.
type TesterPool struct {
	shards  []poolShard
	maxIdle int // per key, per shard (keys live in exactly one shard)

	hits   atomic.Uint64
	misses atomic.Uint64
}

type poolShard struct {
	mu   sync.Mutex
	idle map[string][]*partfeas.Tester
}

// NewTesterPool builds a pool with the given shard count (<= 0 means 16)
// and per-instance idle cap (<= 0 means 4). The idle cap bounds memory:
// testers released beyond it are dropped for the GC.
func NewTesterPool(shards, maxIdlePerKey int) *TesterPool {
	if shards <= 0 {
		shards = 16
	}
	if maxIdlePerKey <= 0 {
		maxIdlePerKey = 4
	}
	p := &TesterPool{shards: make([]poolShard, shards), maxIdle: maxIdlePerKey}
	for i := range p.shards {
		p.shards[i].idle = map[string][]*partfeas.Tester{}
	}
	return p
}

// Acquire returns an exclusive Tester for the instance plus the cache key
// to Release it under. hit reports whether the tester came from the cache.
// The instance must already be validated (the handlers validate at
// decode); construction errors are still surfaced.
func (p *TesterPool) Acquire(in partfeas.Instance) (t *partfeas.Tester, key string, hit bool, err error) {
	key = instanceKey(in)
	sh := &p.shards[shardOf(key, len(p.shards))]
	sh.mu.Lock()
	if idle := sh.idle[key]; len(idle) > 0 {
		t = idle[len(idle)-1]
		idle[len(idle)-1] = nil
		sh.idle[key] = idle[:len(idle)-1]
		sh.mu.Unlock()
		p.hits.Add(1)
		return t, key, true, nil
	}
	sh.mu.Unlock()
	p.misses.Add(1)
	t, err = partfeas.NewTester(in.Tasks, in.Platform, in.Scheduler)
	if err != nil {
		return nil, "", false, err
	}
	return t, key, false, nil
}

// Release returns a tester acquired for key to the pool. Testers whose
// state was mutated (UpdateWCET) must not be released — sessions keep
// their testers privately for exactly that reason.
func (p *TesterPool) Release(key string, t *partfeas.Tester) {
	if t == nil {
		return
	}
	sh := &p.shards[shardOf(key, len(p.shards))]
	sh.mu.Lock()
	if len(sh.idle[key]) < p.maxIdle {
		sh.idle[key] = append(sh.idle[key], t)
	}
	sh.mu.Unlock()
}

// PoolStats is a point-in-time cache snapshot.
type PoolStats struct {
	Hits   uint64
	Misses uint64
	Idle   int // testers currently cached across all shards
}

// Stats reads the hit/miss counters and counts idle testers.
func (p *TesterPool) Stats() PoolStats {
	st := PoolStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, idle := range sh.idle {
			st.Idle += len(idle)
		}
		sh.mu.Unlock()
	}
	return st
}
