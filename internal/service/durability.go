package service

// The durability layer: every session-mutating operation is appended to
// a write-ahead log before it is applied, and the append is the
// acknowledgement point — a 200 means the op is on disk. Because every
// apply path is deterministic (the engine invariants the online package
// tests), recovery is snapshot + WAL-suffix replay through the same code
// the live server runs, and the recovered store is byte-identical to the
// pre-crash one for all acknowledged ops.
//
// Log-then-apply discipline. A mutation validates its arguments, checks
// its context, appends the op, and only then mutates state — with the
// context's cancellation stripped, so an acknowledged op can never be
// half-applied by a client hanging up. Ops whose apply fails
// deterministically (an engine rejection, a validation the engine
// itself performs) are safe to keep in the log: replaying them fails the
// same way and changes nothing.
//
// Consistency gate. Snapshots must capture a store where exactly the
// ops 1..index are applied. Every mutator holds gate.RLock across its
// append+apply; the snapshotter takes gate.Lock, so when it runs, every
// acknowledged append has finished applying and no new append can start.
// Lock order is always gate → store.mu → session.mu.
//
// Degraded mode. A WAL write or fsync failure latches the log failed
// (oplog's sticky error); from then on every mutation answers 503 with a
// Retry-After header, while reads keep serving from memory.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partfeas"
	"partfeas/internal/online"
	"partfeas/internal/oplog"
)

// walSegmentBytes overrides the WAL's rotation threshold (0 keeps the
// oplog default). The crash-matrix test shrinks it so rotations happen
// within a short op script.
var walSegmentBytes int64

// errDegraded is every mutation's answer once the WAL has latched a
// persistent disk failure: read-only, try again later (or restart).
var errDegraded = &httpError{
	code:       http.StatusServiceUnavailable,
	msg:        "durability layer failed; session store is degraded to read-only (check the data directory's disk and restart)",
	retryAfter: 30,
}

// durability owns one data directory: the WAL, the snapshot files, and
// the policy connecting them to the session store. All methods are safe
// on a nil receiver (a server without -data-dir), which is what keeps
// the non-durable hot path free of any new branches beyond a nil check.
type durability struct {
	dir  string
	wal  *oplog.WAL
	st   *sessionStore
	logf func(format string, args ...any)

	// gate serializes snapshots against mutations; see the package
	// comment. Mutators take it shared before any store or session lock.
	gate sync.RWMutex

	// replaying suppresses re-logging while recovery drives ops through
	// the live mutation paths. Written only during single-threaded
	// startup, before any handler goroutine exists.
	replaying bool
	replayed  int // ops replayed at the last open (drain tests read it)

	snapEvery int // acknowledged ops between automatic snapshots; 0 = never

	degraded atomic.Bool

	mu        sync.Mutex
	sinceSnap int
	lastSnap  uint64
	snapCount uint64
	snapFails uint64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// WALStats is the scrape-time view of the durability layer, exported as
// the partfeas_wal_* metrics family.
type WALStats struct {
	oplog.Stats
	Snapshots        uint64
	SnapshotFailures uint64
	LastSnapshot     uint64
	Degraded         bool
}

// openDurability loads the newest valid snapshot (falling back past
// corrupt ones), opens the WAL positioned after it, replays the suffix
// through the real session paths, and starts the snapshot goroutine.
func openDurability(dir string, fsync time.Duration, snapEvery int, st *sessionStore, logf func(string, ...any)) (*durability, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	d := &durability{
		dir:       dir,
		st:        st,
		logf:      logf,
		snapEvery: snapEvery,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	st.dur = d
	idx, payload, skipped, err := oplog.LoadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		logf("service: skipped %d corrupt snapshot(s); recovering from index %d", skipped, idx)
	}
	if payload != nil {
		if err := d.restoreStore(payload); err != nil {
			return nil, fmt.Errorf("service: snapshot %d: %w", idx, err)
		}
	}
	w, err := oplog.Open(dir, oplog.Options{FsyncInterval: fsync, SegmentBytes: walSegmentBytes, Start: idx + 1})
	if err != nil {
		return nil, err
	}
	d.wal = w
	d.lastSnap = idx
	d.replaying = true
	err = w.Replay(idx+1, func(op *oplog.Op) error {
		d.replayed++
		return d.apply(op)
	})
	d.replaying = false
	if err != nil {
		w.Close()
		return nil, fmt.Errorf("service: replay: %w", err)
	}
	logf("service: durability on %s: %d session(s) recovered (%d op(s) replayed after snapshot %d)",
		dir, st.count(), d.replayed, idx)
	go d.snapshotLoop()
	return d, nil
}

// rlock takes the snapshot gate shared; every mutating entry point calls
// it before any other lock and defers the returned unlock.
func (d *durability) rlock() func() {
	if d == nil {
		return func() {}
	}
	d.gate.RLock()
	return d.gate.RUnlock
}

// logOp is the acknowledgement point: it appends op to the WAL and
// returns only once the record has reached the file (and, with a zero
// fsync interval, the platter). Callers must not mutate state before it
// returns nil. Nil receiver and replay mode are no-ops.
func (d *durability) logOp(op *oplog.Op) error {
	if d == nil || d.replaying {
		return nil
	}
	if _, err := d.wal.Append(op); err != nil {
		if d.degraded.CompareAndSwap(false, true) {
			d.logf("service: WAL append failed; entering degraded read-only mode: %v", err)
		}
		return errDegraded
	}
	if d.snapEvery > 0 {
		d.mu.Lock()
		d.sinceSnap++
		due := d.sinceSnap >= d.snapEvery
		d.mu.Unlock()
		if due {
			select {
			case d.kick <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

// applyCtx strips cancellation from ctx once an op is acknowledged, so
// the apply cannot be aborted halfway by a client hang-up. Without a
// durability layer the context passes through untouched — opt-in means
// zero behavior change.
func (d *durability) applyCtx(ctx context.Context) context.Context {
	if d == nil {
		return ctx
	}
	return context.WithoutCancel(ctx)
}

// mode is the wire-visible durability mode ("wal" or "none").
func (d *durability) mode() string {
	if d == nil {
		return "none"
	}
	return "wal"
}

func (d *durability) snapshotLoop() {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		case <-d.kick:
			if err := d.Snapshot(); err != nil {
				d.logf("service: snapshot: %v", err)
			}
		}
	}
}

// Snapshot atomically persists the full store at the current applied
// index, prunes to the two newest snapshots, and truncates WAL segments
// the older retained snapshot makes redundant (so the newest snapshot
// stays re-derivable from disk even if it later reads back corrupt).
func (d *durability) Snapshot() error {
	if d == nil {
		return nil
	}
	d.gate.Lock()
	defer d.gate.Unlock()
	// Under the exclusive gate every acknowledged append has finished
	// applying, so the store state is exactly ops 1..NextIndex-1.
	idx := d.wal.NextIndex() - 1
	d.mu.Lock()
	last := d.lastSnap
	d.mu.Unlock()
	if idx <= last {
		return nil
	}
	payload, err := d.encodeStore()
	if err != nil {
		return d.snapshotFailed(err)
	}
	if err := oplog.WriteSnapshot(d.dir, idx, payload); err != nil {
		return d.snapshotFailed(err)
	}
	// sinceSnap resets only now that the snapshot is durably on disk: a
	// failed attempt keeps the counter at/above snapEvery, so the next
	// acknowledged op kicks a retry instead of waiting a full window.
	d.mu.Lock()
	prev := d.lastSnap
	d.lastSnap = idx
	d.snapCount++
	d.sinceSnap = 0
	d.mu.Unlock()
	if err := oplog.PruneSnapshots(d.dir, 2); err != nil {
		return err
	}
	if prev > 0 {
		return d.wal.TruncateThrough(prev)
	}
	return nil
}

// Close drains the layer: stops the snapshot goroutine, flushes the
// group-commit buffer, writes a final snapshot (so a restart after a
// clean drain replays zero WAL records), and closes the WAL.
func (d *durability) Close() error {
	if d == nil {
		return nil
	}
	var err error
	d.once.Do(func() {
		close(d.stop)
		<-d.done
		serr := d.wal.Sync()
		snerr := d.Snapshot()
		cerr := d.wal.Close()
		for _, e := range []error{serr, snerr, cerr} {
			if err == nil && e != nil {
				err = e
			}
		}
	})
	return err
}

// crash abandons the layer without flushing or snapshotting — exactly
// the on-disk state a process kill leaves behind. For the crash-matrix
// tests and loadgen's kill/restart mode; the store must not be used
// afterwards.
func (d *durability) crash() {
	if d == nil {
		return
	}
	d.once.Do(func() {
		close(d.stop)
		<-d.done
		d.wal.Crash()
	})
}

// snapshotFailed counts a failed snapshot attempt (surfaced as
// partfeas_wal_snapshot_failures_total so operators notice persistent
// failure before the WAL grows huge) and passes the error through.
func (d *durability) snapshotFailed(err error) error {
	d.mu.Lock()
	d.snapFails++
	d.mu.Unlock()
	return err
}

// walStats is the metrics callback.
func (d *durability) walStats() WALStats {
	d.mu.Lock()
	snaps, fails, last := d.snapCount, d.snapFails, d.lastSnap
	d.mu.Unlock()
	return WALStats{
		Stats:            d.wal.Stats(),
		Snapshots:        snaps,
		SnapshotFailures: fails,
		LastSnapshot:     last,
		Degraded:         d.degraded.Load(),
	}
}

// apply dispatches one replayed op through the same session paths the
// live server runs. Deterministic rejections (httpErrors) are tolerated
// for mutations — the live server answered the same error after the
// append was acknowledged, so state did not change then either. Create
// and destroy log after their last fallible step, so their replay must
// succeed; any error there is real corruption.
func (d *durability) apply(op *oplog.Op) error {
	switch op.Type {
	case oplog.TypeCreate:
		return d.applyCreate(op)
	case oplog.TypeDestroy:
		return d.st.remove(op.Session)
	case oplog.TypeMigrateOut:
		return d.st.applyMigrateOut(op)
	case oplog.TypeMigrateIn:
		return d.st.applyMigrateIn(op)
	}
	s, err := d.st.get(op.Session)
	if err != nil {
		return fmt.Errorf("op %d (%s) targets unknown session %q", op.Index, op.Type, op.Session)
	}
	err = applySessionOp(context.Background(), s, op)
	var he *httpError
	if errors.As(err, &he) {
		return nil // deterministic rejection: a no-op live, a no-op now
	}
	return err
}

// applySessionOp drives one logged per-session mutation through the same
// paths the live server runs. Shared by recovery replay and migration
// commit (the destination replays the source's WAL tail through it).
// httpErrors are deterministic rejections and propagate for the caller
// to tolerate.
func applySessionOp(ctx context.Context, s *session, op *oplog.Op) error {
	var err error
	switch op.Type {
	case oplog.TypeAdmit:
		if len(op.Tasks) != 1 {
			return fmt.Errorf("op %d: admit with %d tasks", op.Index, len(op.Tasks))
		}
		t := op.Tasks[0]
		_, err = s.addTask(ctx, partfeas.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}, t.Deadline, op.Force)
	case oplog.TypeAdmitBatch:
		mode, merr := parseBatchMode(op.BatchMode)
		if merr != nil {
			return fmt.Errorf("op %d: %w", op.Index, merr)
		}
		ts := make([]partfeas.Task, len(op.Tasks))
		dls := make([]int64, len(op.Tasks))
		for i, t := range op.Tasks {
			ts[i] = partfeas.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
			dls[i] = t.Deadline
		}
		_, err = s.addTaskBatch(ctx, ts, dls, mode)
	case oplog.TypeRemove:
		_, err = s.removeTask(ctx, op.Target)
	case oplog.TypeUpdateWCET:
		_, err = s.updateWCET(ctx, op.Target, op.WCET, op.Force)
	case oplog.TypeRepartition:
		_, err = s.repartition(ctx, op.Target, true)
	default:
		return fmt.Errorf("op %d: unknown type %v", op.Index, op.Type)
	}
	return err
}

func (d *durability) applyCreate(op *oplog.Op) error {
	in, dls, placement, err := instanceFromOp(op)
	if err != nil {
		return fmt.Errorf("op %d: %w", op.Index, err)
	}
	// The recorded id is replayed explicitly, so coordinator-assigned and
	// store-assigned ids alike reconstruct byte-identically.
	if op.DeadlineModel == "constrained" {
		_, err = d.st.createConstrained(in, dls, op.Alpha, placement, op.Session)
	} else {
		_, err = d.st.create(in, op.Alpha, placement, op.Session)
	}
	if err != nil {
		return fmt.Errorf("op %d: replay create: %w", op.Index, err)
	}
	return nil
}

// instanceFromOp rebuilds a create op's instance, deadlines and
// placement policy.
func instanceFromOp(op *oplog.Op) (partfeas.Instance, []int64, online.Policy, error) {
	var in partfeas.Instance
	sched, err := parseScheduler(op.Scheduler)
	if err != nil {
		return in, nil, nil, err
	}
	in.Scheduler = sched
	placement, err := parsePlacement(op.Placement)
	if err != nil {
		return in, nil, nil, err
	}
	in.Tasks = make(partfeas.TaskSet, len(op.Tasks))
	dls := make([]int64, len(op.Tasks))
	for i, t := range op.Tasks {
		in.Tasks[i] = partfeas.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		dls[i] = t.Deadline
	}
	in.Platform = make(partfeas.Platform, len(op.Machines))
	for i, m := range op.Machines {
		in.Platform[i] = partfeas.Machine{Name: m.Name, Speed: m.Speed}
	}
	return in, dls, placement, nil
}

// parseScheduler inverts Scheduler.String() (records store the canonical
// "EDF"/"RMS" form).
func parseScheduler(s string) (partfeas.Scheduler, error) {
	switch s {
	case partfeas.EDF.String():
		return partfeas.EDF, nil
	case partfeas.RMS.String():
		return partfeas.RMS, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}

// parsePlacement resolves a recorded placement name. ParsePolicy keeps
// the legacy "sorted"/"arrival" aliases older WALs and snapshots wrote,
// so pre-policy durable state replays unchanged.
func parsePlacement(s string) (online.Policy, error) {
	return online.ParsePolicy(s)
}

func parseBatchMode(s string) (online.BatchMode, error) {
	switch s {
	case "", online.BestEffort.String():
		return online.BestEffort, nil
	case online.AllOrNothing.String():
		return online.AllOrNothing, nil
	}
	return 0, fmt.Errorf("unknown batch mode %q", s)
}

// The snapshot payload: the store serialized as JSON inside oplog's
// checksummed snapshot container. Sessions are ordered by id so equal
// stores serialize to equal bytes. Floats round-trip exactly —
// encoding/json emits the shortest representation that parses back to
// the same float64 — so restored alphas and speeds are bit-identical.
type storeSnap struct {
	Seq      uint64        `json:"seq"`
	Sessions []sessionSnap `json:"sessions"`
}

type sessionSnap struct {
	ID          string        `json:"id"`
	Scheduler   string        `json:"scheduler"`
	Alpha       float64       `json:"alpha"`
	Placement   string        `json:"placement"`
	Constrained bool          `json:"constrained,omitempty"`
	Tasks       []oplog.Task  `json:"tasks"`
	Machines    []MachineJSON `json:"machines"`
	// Engine records whether the incremental engine was armed (false =
	// force-infeasible resident set, batch path). Placed is the engine's
	// per-machine placement history, which arrival-order restores refold
	// verbatim; sorted-order engines re-solve and ignore it.
	Engine bool      `json:"engine"`
	Placed [][]int32 `json:"placed,omitempty"`
	// RepartCnt is the PeriodicRepartition cadence counter; without it a
	// restored engine would fire its next rebuild at a different
	// mutation than the original and replayed state would diverge.
	RepartCnt int `json:"repart_cnt,omitempty"`
	// Epoch is the session's ownership epoch (see migrate.go); omitted
	// (and restored as 1) in pre-cluster snapshots.
	Epoch uint64 `json:"epoch,omitempty"`
}

// snapOf builds one session's snapshot record. Caller holds s.mu (or has
// sole ownership).
func snapOf(s *session) sessionSnap {
	ss := sessionSnap{
		ID:          s.id,
		Scheduler:   s.in.Scheduler.String(),
		Alpha:       s.alpha,
		Placement:   s.placement.Name(),
		Constrained: s.constrained,
		Tasks:       make([]oplog.Task, len(s.in.Tasks)),
		Machines:    make([]MachineJSON, len(s.in.Platform)),
		Engine:      s.eng != nil,
		Epoch:       s.epoch,
	}
	for i, t := range s.in.Tasks {
		ss.Tasks[i] = oplog.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
		if s.constrained {
			ss.Tasks[i].Deadline = s.dls[i]
		}
	}
	for i, m := range s.in.Platform {
		ss.Machines[i] = MachineJSON{Name: m.Name, Speed: m.Speed}
	}
	if s.eng != nil {
		ss.Placed = s.eng.PlacedLists()
		ss.RepartCnt = s.eng.RepartCount()
	}
	return ss
}

// encodeSession serializes one session's state. Restore followed by
// re-encode is byte-stable, which is what lets migration prove the
// destination's copy equals the source's with one comparison. Caller
// holds s.mu.
func encodeSession(s *session) ([]byte, error) {
	ss := snapOf(s)
	return json.Marshal(&ss)
}

// encodeStore serializes every session. Caller holds the exclusive gate,
// so per-session locks are uncontended and the view is an op boundary.
func (d *durability) encodeStore() ([]byte, error) {
	d.st.mu.Lock()
	snap := storeSnap{Seq: d.st.seq, Sessions: make([]sessionSnap, 0, len(d.st.m))}
	sessions := make([]*session, 0, len(d.st.m))
	for _, s := range d.st.m {
		sessions = append(sessions, s)
	}
	d.st.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool {
		a, b := sessions[i].id, sessions[j].id
		if len(a) != len(b) { // "s-<n>" ids: shorter means smaller n; any total order works
			return len(a) < len(b)
		}
		return a < b
	})
	for _, s := range sessions {
		s.mu.Lock()
		ss := snapOf(s)
		s.mu.Unlock()
		snap.Sessions = append(snap.Sessions, ss)
	}
	return json.Marshal(snap)
}

// restoreStore rebuilds the session store from a snapshot payload.
// Engines are restored through online.Restore/RestoreConstrained, which
// re-verify every recorded placement with the engine's own admission
// predicate — a tampered snapshot is rejected, not resurrected.
func (d *durability) restoreStore(payload []byte) error {
	var snap storeSnap
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	d.st.mu.Lock()
	d.st.seq = snap.Seq
	d.st.mu.Unlock()
	for i := range snap.Sessions {
		s, err := d.st.restoreSession(&snap.Sessions[i])
		if err != nil {
			return fmt.Errorf("session %s: %w", snap.Sessions[i].ID, err)
		}
		d.st.mu.Lock()
		d.st.m[s.id] = s
		d.st.mu.Unlock()
	}
	return nil
}

// snapPlaced normalizes a snapshot's placed lists for NewEngine: a nil
// record is a corrupt snapshot and must fail placement verification,
// not silently rebuild a fresh placement.
func snapPlaced(placed [][]int32) [][]int32 {
	if placed == nil {
		return [][]int32{}
	}
	return placed
}

// restoreSession rebuilds one session from its snapshot record. Used by
// snapshot recovery, MigrateIn replay, and migration staging (which
// detaches mx/noLog until activation).
func (st *sessionStore) restoreSession(ss *sessionSnap) (*session, error) {
	sched, err := parseScheduler(ss.Scheduler)
	if err != nil {
		return nil, err
	}
	placement, err := parsePlacement(ss.Placement)
	if err != nil {
		return nil, err
	}
	s := &session{
		id:          ss.ID,
		alpha:       ss.Alpha,
		placement:   placement,
		constrained: ss.Constrained,
		epoch:       ss.Epoch,
		mx:          st.mx,
		dur:         st.dur,
	}
	if s.epoch == 0 {
		s.epoch = 1 // pre-cluster snapshot
	}
	s.in.Scheduler = sched
	s.in.Tasks = make(partfeas.TaskSet, len(ss.Tasks))
	for i, t := range ss.Tasks {
		s.in.Tasks[i] = partfeas.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
	}
	s.in.Platform = make(partfeas.Platform, len(ss.Machines))
	for i, m := range ss.Machines {
		s.in.Platform[i] = partfeas.Machine{Name: m.Name, Speed: m.Speed}
	}
	if ss.Constrained {
		if !ss.Engine {
			return nil, fmt.Errorf("constrained session snapshotted without an engine")
		}
		s.dls = make([]int64, len(ss.Tasks))
		for i, t := range ss.Tasks {
			s.dls[i] = t.Deadline
		}
		eng, err := online.NewEngine(s.in.Tasks, s.in.Platform, online.Options{
			Policy: placement, Alpha: ss.Alpha, Deadlines: s.dls,
			ApproxK: sessionApproxK, Placed: snapPlaced(ss.Placed),
		})
		if err != nil {
			return nil, err
		}
		s.eng = eng
		return s, nil
	}
	if !ss.Engine {
		return s, nil // batch path; the tester is rebuilt lazily
	}
	adm, err := sched.Admission()
	if err != nil {
		return nil, err
	}
	eng, err := online.NewEngine(s.in.Tasks, s.in.Platform, online.Options{
		Policy: placement, Admission: adm, Alpha: ss.Alpha,
		Placed: snapPlaced(ss.Placed), RepartCnt: ss.RepartCnt,
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}
