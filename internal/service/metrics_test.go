package service

import (
	"strings"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{time.Millisecond, 10}, // 1µs·2^10 = 1.024ms
		{time.Second, 20},      // 1µs·2^20 ≈ 1.049s
		{time.Hour, histBuckets},
	} {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	m := NewMetrics(nil, nil)
	if q := m.quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
	// 90 fast requests (~100µs), 10 slow (~50ms): p50 lands in the fast
	// bucket's upper bound, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		m.RequestStarted()
		m.RequestDone("/v1/test", 200, 100*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.RequestStarted()
		m.RequestDone("/v1/test", 200, 50*time.Millisecond)
	}
	p50, p99 := m.quantile(0.5), m.quantile(0.99)
	if p50 > time.Millisecond {
		t.Errorf("p50 = %v, want ≤ 1ms", p50)
	}
	if p99 < 10*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want a slow-bucket bound", p99)
	}
	if p50 >= p99 {
		t.Errorf("p50 %v not below p99 %v", p50, p99)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	m := NewMetrics(func() int { return 3 }, func() PoolStats { return PoolStats{Hits: 6, Misses: 2, Idle: 1} })
	m.RequestStarted()
	m.RequestDone("/v1/test", 200, time.Millisecond)
	m.RequestStarted() // still in flight at scrape time
	m.RequestCanceled()

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`partfeas_http_requests_total{endpoint="/v1/test",code="200"} 1`,
		"partfeas_http_in_flight 1",
		"partfeas_http_requests_canceled_total 1",
		"partfeas_tester_cache_hits_total 6",
		"partfeas_tester_cache_misses_total 2",
		"partfeas_tester_cache_idle 1",
		"partfeas_tester_cache_hit_ratio 0.75",
		"partfeas_sessions_active 3",
		`partfeas_http_request_duration_seconds{quantile="0.99"}`,
		"partfeas_http_request_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" — two fields.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if got := len(strings.Fields(line)); got != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	m.RequestDone("/v1/test", 200, time.Millisecond)
}
