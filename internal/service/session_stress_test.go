package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"partfeas"
)

// stressSession opens a session with headroom for concurrent mutation.
func stressSession(t *testing.T, s *Server, placement string) string {
	t.Helper()
	body := `{"tasks":[{"wcet":1,"period":100},{"wcet":1,"period":100},{"wcet":1,"period":100},{"wcet":1,"period":100}],` +
		`"speeds":[1,1,2,4],"scheduler":"edf"`
	if placement != "" {
		body += fmt.Sprintf(`,"placement":%q`, placement)
	}
	body += `}`
	w := do(t, s, http.MethodPost, "/v1/sessions", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var resp SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.ID
}

// TestSessionConcurrentMutation hammers one session with parallel
// add/remove/UpdateWCET through the real handlers (run under -race in
// CI). The session mutex makes some serial order of the operations real;
// the assertions are the ones every serial order satisfies: no panics or
// 5xx, and a final state whose test response is byte-identical to a
// fresh library solve over whatever task multiset survived — i.e. the
// engine's rollback journal never corrupted the incremental load sums.
func TestSessionConcurrentMutation(t *testing.T) {
	for _, placement := range []string{"sorted", "arrival"} {
		placement := placement
		t.Run(placement, func(t *testing.T) {
			s := newTestServer(t)
			id := stressSession(t, s, placement)

			const workers = 8
			var wg sync.WaitGroup
			for wkr := 0; wkr < workers; wkr++ {
				wkr := wkr
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(wkr)))
					for i := 0; i < 40; i++ {
						var w int
						switch k := rng.Intn(10); {
						case k < 5:
							body := fmt.Sprintf(`{"task":{"wcet":%d,"period":%d}}`, 1+rng.Intn(40), 50+rng.Intn(100))
							w = do(t, s, http.MethodPost, "/v1/sessions/"+id+"/tasks", body).Code
						case k < 7:
							w = do(t, s, http.MethodDelete, fmt.Sprintf("/v1/sessions/%s/tasks/%d", id, rng.Intn(6)), "").Code
						default:
							body := fmt.Sprintf(`{"index":%d,"wcet":%d}`, rng.Intn(6), 1+rng.Intn(60))
							w = do(t, s, http.MethodPost, "/v1/sessions/"+id+"/wcet", body).Code
						}
						// 200 (applied or rolled back) and 400 (index raced
						// out of range, last-task guard) are both legal;
						// anything else is a server bug.
						if w != http.StatusOK && w != http.StatusBadRequest {
							t.Errorf("worker %d: status %d", wkr, w)
							return
						}
					}
				}()
			}
			wg.Wait()

			w := do(t, s, http.MethodGet, "/v1/sessions/"+id, "")
			if w.Code != http.StatusOK {
				t.Fatalf("final state: %d %s", w.Code, w.Body)
			}
			var got SessionResponse
			if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
				t.Fatal(err)
			}
			ts := make(partfeas.TaskSet, len(got.Tasks))
			for i, tj := range got.Tasks {
				ts[i] = partfeas.Task{Name: tj.Name, WCET: tj.WCET, Period: tj.Period}
			}
			if placement == "sorted" {
				// Sorted sessions must still answer exactly as a fresh
				// library solve of the surviving multiset.
				tester, err := partfeas.NewTester(ts, partfeas.NewPlatform(1, 1, 2, 4), partfeas.EDF)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := tester.TestCtx(context.Background(), 1)
				if err != nil {
					t.Fatal(err)
				}
				if want := encode(t, TestResponseFrom(rep)); encode(t, got.Test) != want {
					t.Fatalf("final state diverged from fresh solve\ngot  %s\nwant %s", encode(t, got.Test), want)
				}
			} else if !got.Test.Accepted {
				// Arrival placements differ from the sorted solve, but the
				// resident set must still be feasible under them.
				t.Fatalf("arrival session ended infeasible: %s", w.Body)
			}
		})
	}
}

// TestSessionRepartitionEndpoint drives the drift lifecycle over HTTP:
// an arrival session fed ascending-utilization tasks drifts from the
// sorted solve, a plan-only call reports the moves without mutating, a
// bounded apply performs at most max_moves, and a full apply drains the
// drift to zero.
func TestSessionRepartitionEndpoint(t *testing.T) {
	s := newTestServer(t)
	body := `{"tasks":[{"wcet":1,"period":64}],"speeds":[1,1,2],"scheduler":"edf","placement":"arrival"}`
	w := do(t, s, http.MethodPost, "/v1/sessions", body)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}
	var sess SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sess); err != nil {
		t.Fatal(err)
	}
	// The response echoes the resolved canonical policy name, even when
	// the request used the legacy "arrival" alias.
	if sess.Placement != "first_fit_arrival" {
		t.Fatalf("placement = %q", sess.Placement)
	}
	// Ascending utilizations are first-fit's worst arrival order.
	for i := 1; i <= 12; i++ {
		body := fmt.Sprintf(`{"task":{"wcet":%d,"period":64}}`, i)
		if w := do(t, s, http.MethodPost, "/v1/sessions/"+sess.ID+"/tasks", body); w.Code != http.StatusOK {
			t.Fatalf("add %d: %d %s", i, w.Code, w.Body)
		}
	}

	var plan RepartitionResponse
	w = do(t, s, http.MethodPost, "/v1/sessions/"+sess.ID+"/repartition", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &plan); err != nil {
		t.Fatal(err)
	}
	if !plan.TargetFeasible {
		t.Fatalf("sorted target infeasible: %s", w.Body)
	}
	if plan.MovesTotal == 0 {
		t.Skip("instance did not drift; adjust the arrival sequence")
	}
	if plan.Applied != 0 {
		t.Fatalf("plan-only call applied %d moves", plan.Applied)
	}

	var bounded RepartitionResponse
	w = do(t, s, http.MethodPost, "/v1/sessions/"+sess.ID+"/repartition", `{"apply":true,"max_moves":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("bounded apply: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &bounded); err != nil {
		t.Fatal(err)
	}
	if bounded.Applied > 1 {
		t.Fatalf("bounded apply moved %d tasks", bounded.Applied)
	}
	if !bounded.Test.Accepted {
		t.Fatal("session infeasible after bounded apply")
	}

	var full RepartitionResponse
	w = do(t, s, http.MethodPost, "/v1/sessions/"+sess.ID+"/repartition", `{"apply":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("full apply: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.MovesTotal > 0 && (full.Applied != full.MovesTotal || full.Partial) {
		t.Fatalf("full apply left drift: %s", w.Body)
	}

	var after RepartitionResponse
	w = do(t, s, http.MethodPost, "/v1/sessions/"+sess.ID+"/repartition", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("post-apply plan: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.MovesTotal != 0 || after.DriftFraction != 0 {
		t.Fatalf("drift remains after full apply: %s", w.Body)
	}
}

// TestSessionRepartitionConflict: a session whose resident set was
// force-committed infeasible has no engine, so repartition answers 409
// until feasibility returns.
func TestSessionRepartitionConflict(t *testing.T) {
	s := newTestServer(t)
	id := stressSession(t, s, "")
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/tasks", `{"task":{"wcet":999,"period":100},"force":true}`); w.Code != http.StatusOK {
		t.Fatalf("force add: %d %s", w.Code, w.Body)
	}
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/repartition", `{}`); w.Code != http.StatusConflict {
		t.Fatalf("repartition on infeasible session: %d, want 409", w.Code)
	}
	// Removing the hog restores feasibility and re-arms the engine.
	if w := do(t, s, http.MethodDelete, "/v1/sessions/"+id+"/tasks/4", ""); w.Code != http.StatusOK {
		t.Fatalf("remove hog: %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/repartition", `{}`); w.Code != http.StatusOK {
		t.Fatalf("repartition after recovery: %d %s", w.Code, w.Body)
	}
	// A sorted session never drifts.
	w := do(t, s, http.MethodPost, "/v1/sessions/"+id+"/repartition", `{}`)
	var plan RepartitionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.MovesTotal != 0 {
		t.Fatalf("sorted session drifted: %s", w.Body)
	}
}
