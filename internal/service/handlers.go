package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"partfeas"
	"partfeas/internal/online"
)

// StatusClientClosedRequest is recorded (nginx's 499 convention) when a
// client abandons its request mid-flight; nothing readable is written,
// the code exists for the metrics.
const StatusClientClosedRequest = 499

// httpError carries a status code with a client-facing message. Session
// and handler code returns these for every anticipated failure; anything
// else is a 500.
type httpError struct {
	code int
	msg  string
	// retryAfter, when non-zero, is rendered as a Retry-After header —
	// used by the degraded read-only mode's 503s.
	retryAfter int
	// owner, when non-empty, is rendered as an X-Session-Owner header —
	// the 421 redirect a migrated session's tombstone answers with.
	owner string
	// migration marks a transient mid-handoff 503 (X-Migration header) so
	// the coordinator can retry it internally; the WAL-degraded 503 does
	// not set it and passes through to the client unchanged.
	migration bool
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// checkAlpha rejects non-positive and non-finite augmentations at the
// HTTP boundary, so a client mistake reads as a 400, not a 500 from deep
// inside the solver.
func checkAlpha(a float64) error {
	if !(a > 0) || math.IsInf(a, 0) {
		return badRequest("alpha %v must be a positive finite number", a)
	}
	return nil
}

// routes builds the server's mux. Every /v1 endpoint goes through wrap,
// which owns metrics, panic isolation and error rendering.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/test", s.wrap("/v1/test", s.handleTest))
	mux.HandleFunc("POST /v1/minalpha", s.wrap("/v1/minalpha", s.handleMinAlpha))
	mux.HandleFunc("POST /v1/analyze", s.wrap("/v1/analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/sessions", s.wrap("/v1/sessions", s.handleSessionCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", s.wrap("/v1/sessions/{id}", s.handleSessionGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.wrap("/v1/sessions/{id}", s.handleSessionDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/test", s.wrap("/v1/sessions/{id}/test", s.handleSessionTest))
	mux.HandleFunc("POST /v1/sessions/{id}/tasks", s.wrap("/v1/sessions/{id}/tasks", s.handleSessionAddTask))
	mux.HandleFunc("POST /v1/sessions/{id}/admit-batch", s.wrap("/v1/sessions/{id}/admit-batch", s.handleSessionAdmitBatch))
	mux.HandleFunc("DELETE /v1/sessions/{id}/tasks/{index}", s.wrap("/v1/sessions/{id}/tasks/{index}", s.handleSessionRemoveTask))
	mux.HandleFunc("POST /v1/sessions/{id}/wcet", s.wrap("/v1/sessions/{id}/wcet", s.handleSessionUpdateWCET))
	mux.HandleFunc("POST /v1/sessions/{id}/repartition", s.wrap("/v1/sessions/{id}/repartition", s.handleSessionRepartition))
	mux.HandleFunc("POST /v1/sessions/{id}/migrate", s.wrap("/v1/sessions/{id}/migrate", s.handleMigrate))
	mux.HandleFunc("GET /internal/v1/sessions", s.wrap("/internal/v1/sessions", s.handleSessionIndex))
	mux.HandleFunc("POST /internal/v1/migration/prepare", s.wrap("/internal/v1/migration/prepare", s.handleMigratePrepare))
	mux.HandleFunc("POST /internal/v1/migration/commit", s.wrap("/internal/v1/migration/commit", s.handleMigrateCommit))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// wrap is the shared request spine: in-flight gauge, latency recording,
// panic isolation (one poisoned request answers 500, the server lives),
// uniform error rendering. Handlers return (body, status, error); status
// 0 means 200, a nil body with a status writes an empty response.
func (s *Server) wrap(endpoint string, fn func(w http.ResponseWriter, r *http.Request) (any, int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.RequestStarted()
		start := time.Now()
		code := http.StatusOK
		defer func() {
			if v := recover(); v != nil {
				code = http.StatusInternalServerError
				s.logf("service: panic serving %s: %v\n%s", endpoint, v, debug.Stack())
				writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf("internal error: %v", v)})
			}
			s.metrics.RequestDone(endpoint, code, time.Since(start))
		}()
		resp, st, err := fn(w, r)
		if err != nil {
			code = s.statusFor(r, err)
			var he *httpError
			if errors.As(err, &he) {
				if he.retryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
				}
				if he.owner != "" {
					w.Header().Set("X-Session-Owner", he.owner)
				}
				if he.migration {
					w.Header().Set("X-Migration", "in-progress")
				}
			}
			writeJSON(w, code, ErrorResponse{Error: err.Error()})
			return
		}
		if st != 0 {
			code = st
		}
		if resp == nil {
			w.WriteHeader(code)
			return
		}
		writeJSON(w, code, resp)
	}
}

// statusFor maps an error to its response code: explicit httpErrors keep
// theirs, cancellations split into client-gone (499) vs request deadline
// (504), everything else is a 500.
func (s *Server) statusFor(r *http.Request, err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.code
	}
	if partfeas.IsCanceled(err) {
		if r.Context().Err() != nil {
			s.metrics.RequestCanceled()
			return StatusClientClosedRequest
		}
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decode reads a strict JSON body (unknown fields rejected, 1 MiB cap).
func decode[T any](w http.ResponseWriter, r *http.Request, dst *T) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("decoding request: %v", err)
	}
	return nil
}

// requestCtx derives the per-request deadline: the request's own
// timeout_ms when given, else the server default, both clamped to the
// server maximum. The returned context descends from the client's, so a
// dropped connection cancels in-flight work either way.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleTest(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req TestRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	in, err := req.Instance()
	if err != nil {
		return nil, 0, badRequest("%v", err)
	}
	if req.Alpha == 0 {
		req.Alpha = 1
	}
	if err := checkAlpha(req.Alpha); err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	t, key, hit, err := s.pool.Acquire(in)
	if err != nil {
		return nil, 0, err
	}
	rep, err := t.TestCtx(ctx, req.Alpha)
	if err != nil {
		// The tester is stateless between queries; an interrupted query
		// leaves it reusable.
		s.pool.Release(key, t)
		return nil, 0, err
	}
	resp := TestResponseFrom(rep) // deep copy, so release after this
	s.pool.Release(key, t)
	w.Header().Set("X-Cache", cacheHeader(hit))
	return resp, 0, nil
}

func (s *Server) handleMinAlpha(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req MinAlphaRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	in, err := req.Instance()
	if err != nil {
		return nil, 0, badRequest("%v", err)
	}
	if req.Lo == 0 {
		req.Lo = 0.01
	}
	if req.Hi == 0 {
		req.Hi = 8
	}
	if req.Tol == 0 {
		req.Tol = 1e-6
	}
	if !(req.Lo > 0) || req.Hi < req.Lo || !(req.Tol > 0) {
		return nil, 0, badRequest("bisection bracket [lo=%v, hi=%v] tol=%v invalid", req.Lo, req.Hi, req.Tol)
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	t, key, hit, err := s.pool.Acquire(in)
	if err != nil {
		return nil, 0, err
	}
	alpha, ok, err := t.MinAlphaCtx(ctx, req.Lo, req.Hi, req.Tol)
	if err != nil {
		s.pool.Release(key, t)
		return nil, 0, err
	}
	s.pool.Release(key, t)
	w.Header().Set("X-Cache", cacheHeader(hit))
	return MinAlphaResponse{Alpha: alpha, OK: ok}, 0, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req AnalyzeRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	in, err := req.Instance()
	if err != nil {
		return nil, 0, badRequest("%v", err)
	}
	budget := req.ExactBudget
	if budget <= 0 {
		budget = s.cfg.AnalyzeBudget
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	a, err := partfeas.AnalyzeCtx(ctx, in.Tasks, in.Platform, partfeas.AnalyzeOptions{ExactBudget: budget})
	if err != nil {
		return nil, 0, err
	}
	return AnalyzeResponseFrom(a), 0, nil
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req CreateSessionRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	constrained := false
	switch req.DeadlineModel {
	case "", "implicit":
	case "constrained":
		constrained = true
	default:
		return nil, 0, badRequest("unknown deadline_model %q (want \"implicit\" or \"constrained\")", req.DeadlineModel)
	}
	in, err := req.instance(constrained)
	if err != nil {
		return nil, 0, badRequest("%v", err)
	}
	if req.Alpha == 0 {
		req.Alpha = 1
	}
	if err := checkAlpha(req.Alpha); err != nil {
		return nil, 0, err
	}
	placement, err := online.ParsePolicy(req.Placement)
	if err != nil {
		return nil, 0, badRequest("%v", err)
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	// X-Session-ID is the coordinator's pre-assigned id: the
	// consistent-hash ring routes by id, so the id must exist before the
	// session does. Direct clients normally omit it and get "s-<n>".
	id := r.Header.Get("X-Session-ID")
	var sess *session
	if constrained {
		sess, err = s.sessions.createConstrained(in, req.Deadlines(), req.Alpha, placement, id)
	} else {
		sess, err = s.sessions.create(in, req.Alpha, placement, id)
	}
	if err != nil {
		return nil, 0, err
	}
	state, err := sess.state(ctx)
	if err != nil {
		_ = s.sessions.remove(sess.id)
		return nil, 0, err
	}
	s.markDurability(w, &state.Durability)
	return state, http.StatusCreated, nil
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) (any, int, error) {
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	state, err := sess.state(ctx)
	if err != nil {
		return nil, 0, err
	}
	return state, 0, nil
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) (any, int, error) {
	if err := s.sessions.remove(r.PathValue("id")); err != nil {
		return nil, 0, err
	}
	var discard string
	s.markDurability(w, &discard)
	return nil, http.StatusNoContent, nil
}

func (s *Server) handleSessionTest(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req SessionTestRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	if req.Alpha != 0 { // 0 keeps the session augmentation
		if err := checkAlpha(req.Alpha); err != nil {
			return nil, 0, err
		}
	}
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := sess.test(ctx, req.Alpha)
	if err != nil {
		return nil, 0, err
	}
	return resp, 0, nil
}

func (s *Server) handleSessionAddTask(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req AddTaskRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	t := partfeas.Task{Name: req.Task.Name, WCET: req.Task.WCET, Period: req.Task.Period}
	if err := t.Validate(); err != nil {
		return nil, 0, badRequest("%v", err)
	}
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := sess.addTask(ctx, t, req.Task.Deadline, req.Force)
	if err != nil {
		return nil, 0, err
	}
	s.markDurability(w, &resp.Durability)
	return resp, 0, nil
}

func (s *Server) handleSessionAdmitBatch(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req AdmitBatchRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	var mode online.BatchMode
	switch req.Mode {
	case "", online.BestEffort.String():
		mode = online.BestEffort
	case online.AllOrNothing.String():
		mode = online.AllOrNothing
	default:
		return nil, 0, badRequest("unknown mode %q (want %q or %q)", req.Mode, online.BestEffort, online.AllOrNothing)
	}
	ts := make([]partfeas.Task, len(req.Tasks))
	dls := make([]int64, len(req.Tasks))
	for i, tj := range req.Tasks {
		ts[i] = partfeas.Task{Name: tj.Name, WCET: tj.WCET, Period: tj.Period}
		dls[i] = tj.Deadline
		if err := ts[i].Validate(); err != nil {
			return nil, 0, badRequest("batch task %d: %v", i, err)
		}
	}
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := sess.addTaskBatch(ctx, ts, dls, mode)
	if err != nil {
		return nil, 0, err
	}
	s.markDurability(w, &resp.Durability)
	return resp, 0, nil
}

func (s *Server) handleSessionRemoveTask(w http.ResponseWriter, r *http.Request) (any, int, error) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		return nil, 0, badRequest("task index %q is not an integer", r.PathValue("index"))
	}
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	resp, err := sess.removeTask(ctx, idx)
	if err != nil {
		return nil, 0, err
	}
	s.markDurability(w, &resp.Durability)
	return resp, 0, nil
}

func (s *Server) handleSessionUpdateWCET(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req UpdateWCETRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := sess.updateWCET(ctx, req.Index, req.WCET, req.Force)
	if err != nil {
		return nil, 0, err
	}
	s.markDurability(w, &resp.Durability)
	return resp, 0, nil
}

func (s *Server) handleSessionRepartition(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req RepartitionRequest
	if err := decode(w, r, &req); err != nil {
		return nil, 0, err
	}
	if req.MaxMoves < 0 {
		return nil, 0, badRequest("max_moves %d must be non-negative", req.MaxMoves)
	}
	sess, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := sess.repartition(ctx, req.MaxMoves, req.Apply)
	if err != nil {
		return nil, 0, err
	}
	if req.Apply {
		s.markDurability(w, &resp.Durability)
	}
	return resp, 0, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// markDurability stamps a mutation response with the durability level its
// acknowledgement carries: "wal" means the op was appended to the
// write-ahead log before the response was produced, "none" means the
// server runs without -data-dir and the op lives only in memory.
func (s *Server) markDurability(w http.ResponseWriter, field *string) {
	m := s.dur.mode()
	*field = m
	w.Header().Set("X-Durability", m)
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
