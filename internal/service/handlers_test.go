package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"partfeas"
)

func newTestServer(t testing.TB) *Server {
	t.Helper()
	return New(Config{Logf: t.Logf})
}

// do runs one request straight through the handler, no sockets.
func do(t testing.TB, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	return doCtx(t, s, context.Background(), method, path, body)
}

func doCtx(t testing.TB, s *Server, ctx context.Context, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r.WithContext(ctx))
	return w
}

// encode marshals exactly like the server's writeJSON (Encoder appends a
// newline), so bodies compare byte-for-byte.
func encode(t testing.TB, v any) string {
	t.Helper()
	var sb strings.Builder
	if err := json.NewEncoder(&sb).Encode(v); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

const demoBody = `{"tasks":[{"name":"video","wcet":9,"period":30},{"name":"audio","wcet":1,"period":4},` +
	`{"name":"net","wcet":3,"period":10},{"name":"ui","wcet":2,"period":12},{"name":"sensor","wcet":1,"period":20}],` +
	`"speeds":[1,1,4]`

// TestHandlerGoldenJSON pins exact response bodies for the stateless
// endpoints: hand-written goldens for the simple cases, library-derived
// goldens (the acceptance criterion: served answers byte-identical to
// direct calls) for the rest.
func TestHandlerGoldenJSON(t *testing.T) {
	ts, p := demoInstances()[0].Tasks, demoInstances()[0].Platform
	acceptRep, err := partfeas.Test(ts, p, partfeas.EDF, 1)
	if err != nil {
		t.Fatal(err)
	}
	rejectRep, err := partfeas.Test(ts, p, partfeas.EDF, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rmsRep, err := partfeas.Test(ts, p, partfeas.RMS, 2)
	if err != nil {
		t.Fatal(err)
	}
	minAlpha, minOK, err := partfeas.MinAlpha(ts, p, partfeas.EDF, 0.01, 8, 1e-6)
	if err != nil || !minOK {
		t.Fatalf("MinAlpha: %v %v %v", minAlpha, minOK, err)
	}

	for _, tc := range []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantBody string // empty = not checked here
	}{
		{
			name: "trivial accept, literal golden", method: "POST", path: "/v1/test",
			body:     `{"tasks":[{"wcet":1,"period":2}],"speeds":[1]}`,
			wantCode: 200,
			wantBody: `{"accepted":true,"scheduler":"EDF","alpha":1,"assignment":[0],"loads":[0.5],"failed_task":-1}` + "\n",
		},
		{
			name: "demo accept matches direct library call", method: "POST", path: "/v1/test",
			body:     demoBody + `}`,
			wantCode: 200,
			wantBody: encode(t, TestResponseFrom(acceptRep)),
		},
		{
			name: "demo reject at α=0.5 matches direct library call", method: "POST", path: "/v1/test",
			body:     demoBody + `,"alpha":0.5}`,
			wantCode: 200,
			wantBody: encode(t, TestResponseFrom(rejectRep)),
		},
		{
			name: "rms via named machines matches direct library call", method: "POST", path: "/v1/test",
			body: `{"tasks":[{"name":"video","wcet":9,"period":30},{"name":"audio","wcet":1,"period":4},` +
				`{"name":"net","wcet":3,"period":10},{"name":"ui","wcet":2,"period":12},{"name":"sensor","wcet":1,"period":20}],` +
				`"machines":[{"name":"m0","speed":1},{"name":"m1","speed":1},{"name":"m2","speed":4}],"scheduler":"rms","alpha":2}`,
			wantCode: 200,
			wantBody: encode(t, TestResponseFrom(rmsRep)),
		},
		{
			name: "minalpha matches direct bisection", method: "POST", path: "/v1/minalpha",
			body:     demoBody + `}`,
			wantCode: 200,
			wantBody: encode(t, MinAlphaResponse{Alpha: minAlpha, OK: true}),
		},
		{
			name: "minalpha unbracketed hi reports ok=false", method: "POST", path: "/v1/minalpha",
			body:     `{"tasks":[{"wcet":9,"period":10},{"wcet":9,"period":10}],"speeds":[1],"hi":1.5}`,
			wantCode: 200,
			wantBody: `{"alpha":0,"ok":false}` + "\n",
		},
		{
			name: "healthz", method: "GET", path: "/healthz", body: "",
			wantCode: 200,
			wantBody: `{"status":"ok"}` + "\n",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, newTestServer(t), tc.method, tc.path, tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d (body %s)", w.Code, tc.wantCode, w.Body)
			}
			if got := w.Body.String(); got != tc.wantBody {
				t.Errorf("body:\n got %q\nwant %q", got, tc.wantBody)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
		})
	}
}

// TestHandlerBadInput walks the 4xx surface: malformed JSON, schema
// violations, and semantically invalid instances all answer 400 with an
// ErrorResponse body.
func TestHandlerBadInput(t *testing.T) {
	for _, tc := range []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantIn   string // substring of the error message
	}{
		{"truncated JSON", "POST", "/v1/test", `{"tasks":[`, 400, "decoding request"},
		{"unknown field", "POST", "/v1/test", `{"tasks":[{"wcet":1,"period":2}],"speeds":[1],"bogus":1}`, 400, "bogus"},
		{"empty body", "POST", "/v1/test", ``, 400, "decoding request"},
		{"no tasks", "POST", "/v1/test", `{"speeds":[1]}`, 400, "task set"},
		{"speeds and machines both", "POST", "/v1/test",
			`{"tasks":[{"wcet":1,"period":2}],"speeds":[1],"machines":[{"speed":1}]}`, 400, "not both"},
		{"zero speed names machine", "POST", "/v1/test",
			`{"tasks":[{"wcet":1,"period":2}],"speeds":[1,0]}`, 400, "machine 1"},
		{"negative speed names machine", "POST", "/v1/test",
			`{"tasks":[{"wcet":1,"period":2}],"machines":[{"speed":2},{"name":"slow","speed":-1}]}`, 400, "machine 1"},
		{"unknown scheduler", "POST", "/v1/test",
			`{"tasks":[{"wcet":1,"period":2}],"speeds":[1],"scheduler":"fifo"}`, 400, "scheduler"},
		{"negative alpha", "POST", "/v1/test",
			`{"tasks":[{"wcet":1,"period":2}],"speeds":[1],"alpha":-1}`, 400, "alpha"},
		{"nonpositive task wcet", "POST", "/v1/test",
			`{"tasks":[{"wcet":0,"period":2}],"speeds":[1]}`, 400, "task 0"},
		{"invalid bisection bracket", "POST", "/v1/minalpha",
			`{"tasks":[{"wcet":1,"period":2}],"speeds":[1],"lo":3,"hi":2}`, 400, "bracket"},
		{"analyze bad platform", "POST", "/v1/analyze",
			`{"tasks":[{"wcet":1,"period":2}],"speeds":[0]}`, 400, "machine 0"},
		{"session unknown id", "GET", "/v1/sessions/s-999", ``, 404, "unknown session"},
		{"session delete unknown id", "DELETE", "/v1/sessions/s-999", ``, 404, "unknown session"},
		{"method not allowed", "GET", "/v1/test", ``, 405, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, newTestServer(t), tc.method, tc.path, tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d (body %s)", w.Code, tc.wantCode, w.Body)
			}
			if tc.wantIn == "" {
				return
			}
			var er ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
				t.Fatalf("non-JSON error body %q: %v", w.Body, err)
			}
			if !strings.Contains(er.Error, tc.wantIn) {
				t.Errorf("error %q does not mention %q", er.Error, tc.wantIn)
			}
		})
	}
}

// TestHandlerDeadlineExpiry pins the 504 path: a server whose default
// per-request deadline is 1ns expires every context before the solver
// runs, deterministically.
func TestHandlerDeadlineExpiry(t *testing.T) {
	s := New(Config{DefaultTimeout: time.Nanosecond, MaxTimeout: -1, Logf: t.Logf})
	for _, path := range []string{"/v1/test", "/v1/minalpha"} {
		w := do(t, s, "POST", path, demoBody+`}`)
		if w.Code != http.StatusGatewayTimeout {
			t.Errorf("%s: code = %d, want 504 (body %s)", path, w.Code, w.Body)
		}
	}
	// /v1/analyze is the exception by design: a deadline is a budget for
	// the exact stage, which degrades to its certified bound — the request
	// still answers 200.
	if w := do(t, s, "POST", "/v1/analyze", demoBody+`}`); w.Code != http.StatusOK {
		t.Errorf("/v1/analyze under expired deadline: code = %d, want 200 (body %s)", w.Code, w.Body)
	}
	// Session creation re-tests the set under the same expired deadline and
	// must not leave a half-created session behind.
	w := do(t, s, "POST", "/v1/sessions", demoBody+`}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("sessions: code = %d, want 504 (body %s)", w.Code, w.Body)
	}
	if n := s.sessions.count(); n != 0 {
		t.Errorf("%d sessions left after failed create", n)
	}
}

// TestHandlerClientGone pins the 499 path: the client's own context is
// already cancelled, so the failure is recorded as client-closed, not as
// a server timeout.
func TestHandlerClientGone(t *testing.T) {
	s := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := doCtx(t, s, ctx, "POST", "/v1/test", demoBody+`}`)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("code = %d, want %d (body %s)", w.Code, StatusClientClosedRequest, w.Body)
	}
	var sb strings.Builder
	s.Metrics().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "partfeas_http_requests_canceled_total 1") {
		t.Error("cancelled request not counted in metrics")
	}
}

func TestHandlerCacheHeaderAndMetrics(t *testing.T) {
	s := newTestServer(t)
	first := do(t, s, "POST", "/v1/test", demoBody+`}`)
	second := do(t, s, "POST", "/v1/test", demoBody+`}`)
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if first.Body.String() != second.Body.String() {
		t.Error("cache hit changed the response body")
	}

	w := do(t, s, "GET", "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("/metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		`partfeas_http_requests_total{endpoint="/v1/test",code="200"} 2`,
		"partfeas_tester_cache_hits_total 1",
		"partfeas_tester_cache_misses_total 1",
		"partfeas_tester_cache_hit_ratio 0.5",
		"partfeas_http_in_flight 0",
		"partfeas_sessions_active 0",
		"partfeas_http_request_duration_seconds_count 2",
	} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, w.Body)
		}
	}

	// /debug/vars serves the expvar JSON document.
	w = do(t, s, "GET", "/debug/vars", "")
	if w.Code != 200 {
		t.Fatalf("/debug/vars: %d", w.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
}

// TestHandlerAnalyze compares the served analysis against a direct
// AnalyzeCtx call, byte for byte.
func TestHandlerAnalyze(t *testing.T) {
	in := demoInstances()[0]
	a, err := partfeas.AnalyzeCtx(context.Background(), in.Tasks, in.Platform, partfeas.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, newTestServer(t), "POST", "/v1/analyze", demoBody+`}`)
	if w.Code != 200 {
		t.Fatalf("code = %d (body %s)", w.Code, w.Body)
	}
	if want := encode(t, AnalyzeResponseFrom(a)); w.Body.String() != want {
		t.Errorf("analyze body:\n got %s\nwant %s", w.Body, want)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Theorems) != 4 || resp.Degraded {
		t.Errorf("unexpected analysis %+v", resp)
	}
}

// TestSessionLifecycle drives one session through create, re-test,
// admit/reject/force, incremental WCET updates with rollback, removal,
// and deletion — asserting the response JSON at each step.
func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t)

	// Create: two light tasks on one unit machine.
	w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"name":"a","wcet":1,"period":4},{"name":"b","wcet":1,"period":4}],"speeds":[1]}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d (body %s)", w.Code, w.Body)
	}
	var st SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || !st.Test.Accepted || len(st.Tasks) != 2 || st.Alpha != 1 {
		t.Fatalf("create state %+v", st)
	}
	base := "/v1/sessions/" + st.ID

	admission := func(w *httptest.ResponseRecorder) AdmissionResponse {
		t.Helper()
		if w.Code != 200 {
			t.Fatalf("code = %d (body %s)", w.Code, w.Body)
		}
		var ar AdmissionResponse
		if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}

	// A fitting task is admitted.
	ar := admission(do(t, s, "POST", base+"/tasks", `{"task":{"name":"c","wcet":1,"period":4}}`))
	if !ar.Admitted || ar.RolledBack || ar.NTasks != 3 {
		t.Fatalf("admit fitting: %+v", ar)
	}
	// An oversized task is rejected and rolled back...
	ar = admission(do(t, s, "POST", base+"/tasks", `{"task":{"name":"hog","wcet":9,"period":10}}`))
	if ar.Admitted || !ar.RolledBack || ar.NTasks != 3 || ar.Test.Accepted {
		t.Fatalf("reject oversized: %+v", ar)
	}
	// ...unless forced.
	ar = admission(do(t, s, "POST", base+"/tasks", `{"task":{"name":"hog","wcet":9,"period":10},"force":true}`))
	if !ar.Admitted || ar.RolledBack || ar.NTasks != 4 {
		t.Fatalf("force oversized: %+v", ar)
	}
	// The forced set fails its re-test.
	w = do(t, s, "POST", base+"/test", `{}`)
	var tr TestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Accepted {
		t.Fatalf("forced-overload set should fail re-test: %+v", tr)
	}
	// Removing the hog (index 3) restores feasibility; removal always commits.
	ar = admission(do(t, s, "DELETE", base+"/tasks/3", ""))
	if !ar.Admitted || ar.NTasks != 3 {
		t.Fatalf("remove hog: %+v", ar)
	}
	// Incremental WCET growth within capacity is admitted.
	ar = admission(do(t, s, "POST", base+"/wcet", `{"index":0,"wcet":2}`))
	if !ar.Admitted || ar.RolledBack {
		t.Fatalf("wcet grow: %+v", ar)
	}
	// Growth beyond capacity is rejected and rolled back.
	ar = admission(do(t, s, "POST", base+"/wcet", `{"index":0,"wcet":4}`))
	if ar.Admitted || !ar.RolledBack {
		t.Fatalf("wcet overgrow: %+v", ar)
	}
	// The rollback really restored WCET=2: session state must be
	// byte-identical to a direct library call on the post-update set.
	w = do(t, s, "GET", base, "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	wantTasks := partfeas.TaskSet{
		{Name: "a", WCET: 2, Period: 4},
		{Name: "b", WCET: 1, Period: 4},
		{Name: "c", WCET: 1, Period: 4},
	}
	rep, err := partfeas.TestCtx(context.Background(),
		partfeas.Instance{Tasks: wantTasks, Platform: partfeas.NewPlatform(1), Scheduler: partfeas.EDF}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encode(t, st.Test), encode(t, TestResponseFrom(rep)); got != want {
		t.Errorf("session state after rollback:\n got %s\nwant %s", got, want)
	}

	// Index and boundary errors.
	for _, tc := range []struct {
		method, path, body string
		wantCode           int
	}{
		{"POST", base + "/wcet", `{"index":7,"wcet":1}`, 400},
		{"POST", base + "/wcet", `{"index":0,"wcet":0}`, 400},
		{"DELETE", base + "/tasks/7", "", 400},
		{"DELETE", base + "/tasks/x", "", 400},
		{"POST", base + "/test", `{"alpha":-2}`, 400},
	} {
		if w := do(t, s, tc.method, tc.path, tc.body); w.Code != tc.wantCode {
			t.Errorf("%s %s: code = %d, want %d (body %s)", tc.method, tc.path, w.Code, tc.wantCode, w.Body)
		}
	}

	// Cannot remove the last task: shrink to one first.
	ar = admission(do(t, s, "DELETE", base+"/tasks/2", ""))
	ar = admission(do(t, s, "DELETE", base+"/tasks/1", ""))
	if ar.NTasks != 1 {
		t.Fatalf("shrink: %+v", ar)
	}
	if w := do(t, s, "DELETE", base+"/tasks/0", ""); w.Code != 400 {
		t.Errorf("removing last task: code = %d, want 400", w.Code)
	}

	// Delete, then every path answers 404.
	if w := do(t, s, "DELETE", base, ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	for _, tc := range []struct{ method, path, body string }{
		{"GET", base, ""},
		{"DELETE", base, ""},
		{"POST", base + "/test", `{}`},
		{"POST", base + "/tasks", `{"task":{"wcet":1,"period":4}}`},
		{"POST", base + "/wcet", `{"index":0,"wcet":1}`},
	} {
		if w := do(t, s, tc.method, tc.path, tc.body); w.Code != http.StatusNotFound {
			t.Errorf("%s %s after delete: code = %d, want 404", tc.method, tc.path, w.Code)
		}
	}
	if n := s.sessions.count(); n != 0 {
		t.Errorf("%d sessions alive after delete", n)
	}
}

func TestSessionLimit(t *testing.T) {
	s := New(Config{MaxSessions: 2, Logf: t.Logf})
	body := `{"tasks":[{"wcet":1,"period":4}],"speeds":[1]}`
	for i := 0; i < 2; i++ {
		if w := do(t, s, "POST", "/v1/sessions", body); w.Code != http.StatusCreated {
			t.Fatalf("create %d: %d", i, w.Code)
		}
	}
	w := do(t, s, "POST", "/v1/sessions", body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: code = %d, want 429", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/sessions/s-1", ""); w.Code != http.StatusNoContent {
		t.Fatal("delete to free a slot failed")
	}
	if w := do(t, s, "POST", "/v1/sessions", body); w.Code != http.StatusCreated {
		t.Errorf("create after free: code = %d, want 201", w.Code)
	}
}

// TestSessionIncrementalMatchesRebuild proves the incremental
// UpdateWCET path decides bit-identically to a from-scratch tester at
// every step of a growth sweep.
func TestSessionIncrementalMatchesRebuild(t *testing.T) {
	s := newTestServer(t)
	w := do(t, s, "POST", "/v1/sessions",
		`{"tasks":[{"name":"a","wcet":2,"period":10},{"name":"b","wcet":3,"period":10},{"name":"c","wcet":1,"period":5}],"speeds":[1,1],"scheduler":"rms"}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d (body %s)", w.Code, w.Body)
	}
	var st SessionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	tasks := partfeas.TaskSet{
		{Name: "a", WCET: 2, Period: 10},
		{Name: "b", WCET: 3, Period: 10},
		{Name: "c", WCET: 1, Period: 5},
	}
	plat := partfeas.NewPlatform(1, 1)
	for step, upd := range []struct {
		idx  int
		wcet int64
	}{{0, 5}, {1, 1}, {2, 3}, {0, 2}, {2, 4}, {1, 6}} {
		w := do(t, s, "POST", "/v1/sessions/"+st.ID+"/wcet",
			fmt.Sprintf(`{"index":%d,"wcet":%d,"force":true}`, upd.idx, upd.wcet))
		if w.Code != 200 {
			t.Fatalf("step %d: %d (body %s)", step, w.Code, w.Body)
		}
		var ar AdmissionResponse
		if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
			t.Fatal(err)
		}
		tasks[upd.idx].WCET = upd.wcet // force always commits
		rep, err := partfeas.TestCtx(context.Background(),
			partfeas.Instance{Tasks: tasks, Platform: plat, Scheduler: partfeas.RMS}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := encode(t, ar.Test), encode(t, TestResponseFrom(rep)); got != want {
			t.Errorf("step %d: incremental %s != rebuilt %s", step, got, want)
		}
	}
}
