// Package service is the JSON-over-HTTP admission-control layer on top
// of the partfeas public API: stateless feasibility queries (/v1/test,
// /v1/minalpha, /v1/analyze), stateful admission sessions (/v1/sessions)
// with incremental WCET re-tests, a sharded cache of reusable Testers
// keyed by a canonical instance hash, and a Prometheus-text /metrics
// endpoint.
//
// Every decision the server makes goes through the same context-first
// library entry points an in-process caller would use (TestCtx,
// MinAlphaCtx, AnalyzeCtx), so server responses are byte-identical to
// direct library calls for the same instances — the handler tests and
// the servesmoke gate hold it to that.
package service

import (
	"fmt"

	"partfeas"
)

// TaskJSON is the wire form of one sporadic task. Deadline is only
// meaningful in constrained-deadline sessions: 0 (or omitted) means
// D = P, and any explicit value must satisfy WCET ≤ D ≤ P. Stateless
// endpoints and implicit-deadline sessions reject a deadline below the
// period rather than silently ignoring it.
type TaskJSON struct {
	Name     string `json:"name,omitempty"`
	WCET     int64  `json:"wcet"`
	Period   int64  `json:"period"`
	Deadline int64  `json:"deadline,omitempty"`
}

// MachineJSON is the wire form of one machine.
type MachineJSON struct {
	Name  string  `json:"name,omitempty"`
	Speed float64 `json:"speed"`
}

// InstanceRequest is the instance description shared by every request
// body. The platform is given either as bare "speeds" (machines named
// m0, m1, … like partfeas.NewPlatform) or as explicit "machines";
// exactly one of the two must be present.
type InstanceRequest struct {
	Tasks     []TaskJSON    `json:"tasks"`
	Speeds    []float64     `json:"speeds,omitempty"`
	Machines  []MachineJSON `json:"machines,omitempty"`
	Scheduler string        `json:"scheduler,omitempty"` // "edf" (default) or "rms"
}

// Instance converts and validates the wire form eagerly: a bad machine
// speed is rejected here, naming the machine index, before any solver is
// built. Constrained deadlines are rejected — only constrained-deadline
// sessions (which convert via instance(true)) accept them.
func (r InstanceRequest) Instance() (partfeas.Instance, error) {
	return r.instance(false)
}

// Deadlines resolves the wire tasks' relative deadlines (0 → period).
func (r InstanceRequest) Deadlines() []int64 {
	dls := make([]int64, len(r.Tasks))
	for i, t := range r.Tasks {
		dls[i] = t.Deadline
		if dls[i] == 0 {
			dls[i] = t.Period
		}
	}
	return dls
}

func (r InstanceRequest) instance(allowDeadlines bool) (partfeas.Instance, error) {
	var in partfeas.Instance
	if !allowDeadlines {
		for i, t := range r.Tasks {
			if t.Deadline != 0 && t.Deadline != t.Period {
				return in, fmt.Errorf("task %d: deadline %d below the period requires a constrained-deadline session", i, t.Deadline)
			}
		}
	}
	in.Tasks = make(partfeas.TaskSet, len(r.Tasks))
	for i, t := range r.Tasks {
		in.Tasks[i] = partfeas.Task{Name: t.Name, WCET: t.WCET, Period: t.Period}
	}
	switch {
	case len(r.Speeds) > 0 && len(r.Machines) > 0:
		return in, fmt.Errorf(`give the platform as "speeds" or "machines", not both`)
	case len(r.Speeds) > 0:
		in.Platform = partfeas.NewPlatform(r.Speeds...)
	default:
		in.Platform = make(partfeas.Platform, len(r.Machines))
		for i, m := range r.Machines {
			in.Platform[i] = partfeas.Machine{Name: m.Name, Speed: m.Speed}
		}
	}
	switch r.Scheduler {
	case "", "edf", "EDF":
		in.Scheduler = partfeas.EDF
	case "rms", "RMS":
		in.Scheduler = partfeas.RMS
	default:
		return in, fmt.Errorf("unknown scheduler %q (want \"edf\" or \"rms\")", r.Scheduler)
	}
	if err := in.Validate(); err != nil {
		return in, err
	}
	return in, nil
}

// TestRequest asks for one feasibility test.
type TestRequest struct {
	InstanceRequest
	// Alpha is the speed augmentation; 0 means 1 (original speeds).
	Alpha float64 `json:"alpha,omitempty"`
	// TimeoutMS bounds the request's wall time; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TestResponse is the outcome of one feasibility test. It is a pure
// function of the library Report (see TestResponseFrom), which is what
// makes served responses comparable byte-for-byte with direct calls.
type TestResponse struct {
	Accepted   bool      `json:"accepted"`
	Scheduler  string    `json:"scheduler"`
	Alpha      float64   `json:"alpha"`
	Assignment []int     `json:"assignment"`
	Loads      []float64 `json:"loads"`
	// FailedTask is the input index of the paper's τ_n on rejection, -1 on
	// acceptance.
	FailedTask int `json:"failed_task"`
}

// TestResponseFrom builds the wire response for a library Report. The
// slices are deep-copied, so the response stays valid after the Report's
// backing Tester answers its next query.
func TestResponseFrom(rep partfeas.Report) TestResponse {
	resp := TestResponse{
		Accepted:   rep.Accepted,
		Scheduler:  rep.Scheduler.String(),
		Alpha:      rep.Alpha,
		Assignment: append([]int(nil), rep.Partition.Assignment...),
		Loads:      append([]float64(nil), rep.Partition.Loads...),
		FailedTask: rep.Partition.FailedTask,
	}
	return resp
}

// MinAlphaRequest asks for the smallest accepted augmentation.
type MinAlphaRequest struct {
	InstanceRequest
	// Lo and Hi bracket the bisection; defaults 0.01 and 8.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Tol is the bisection tolerance; default 1e-6.
	Tol       float64 `json:"tol,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// MinAlphaResponse reports the bisection outcome; OK is false when even
// Hi does not suffice (Alpha is then 0).
type MinAlphaResponse struct {
	Alpha float64 `json:"alpha"`
	OK    bool    `json:"ok"`
}

// AnalyzeRequest asks for the full Analysis of one instance (the
// scheduler field is ignored: the analysis covers both).
type AnalyzeRequest struct {
	InstanceRequest
	// ExactBudget bounds the exact adversary's branch-and-bound nodes;
	// 0 uses the server default. Exhaustion degrades, it does not fail.
	ExactBudget int64 `json:"exact_budget,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
}

// TheoremJSON is one theorem test inside an AnalyzeResponse.
type TheoremJSON struct {
	Theorem   string  `json:"theorem"`
	Scheduler string  `json:"scheduler"`
	Alpha     float64 `json:"alpha"`
	Accepted  bool    `json:"accepted"`
}

// AnalyzeResponse mirrors partfeas.Analysis on the wire.
type AnalyzeResponse struct {
	SigmaPartitioned      float64       `json:"sigma_partitioned"`
	SigmaPartitionedExact bool          `json:"sigma_partitioned_exact"`
	Degraded              bool          `json:"degraded"`
	SigmaMigratory        float64       `json:"sigma_migratory"`
	Theorems              []TheoremJSON `json:"theorems"`
	MinAlphaEDF           float64       `json:"min_alpha_edf"`
	MinAlphaRMS           float64       `json:"min_alpha_rms"`
}

// AnalyzeResponseFrom builds the wire response for a library Analysis.
func AnalyzeResponseFrom(a *partfeas.Analysis) AnalyzeResponse {
	resp := AnalyzeResponse{
		SigmaPartitioned:      a.SigmaPartitioned,
		SigmaPartitionedExact: a.SigmaPartitionedExact,
		Degraded:              a.Degraded,
		SigmaMigratory:        a.SigmaMigratory,
		Theorems:              make([]TheoremJSON, len(partfeas.Theorems)),
		MinAlphaEDF:           a.MinAlphaEDF,
		MinAlphaRMS:           a.MinAlphaRMS,
	}
	for i, thm := range partfeas.Theorems {
		resp.Theorems[i] = TheoremJSON{
			Theorem:   thm.String(),
			Scheduler: a.Reports[i].Scheduler.String(),
			Alpha:     a.Reports[i].Alpha,
			Accepted:  a.Reports[i].Accepted,
		}
	}
	return resp
}

// CreateSessionRequest opens a stateful admission session.
type CreateSessionRequest struct {
	InstanceRequest
	// Alpha is the augmentation every admission decision in this session
	// is made at; 0 means 1.
	Alpha float64 `json:"alpha,omitempty"`
	// Placement selects the session engine's placement policy:
	// "first_fit_sorted" (default) keeps every decision byte-identical
	// to the paper's fresh utilization-sorted solve; "first_fit_arrival",
	// "best_fit", "worst_fit" and "k_choices" place tasks as they arrive
	// — O(m) mutations that forfeit the sorted-order guarantee, with the
	// drift measured and repaired via the repartition endpoint. The
	// legacy names "sorted" and "arrival" are accepted as aliases; the
	// response's placement field always echoes the resolved canonical
	// name. Unknown values are a 400 naming the offending value.
	Placement string `json:"placement,omitempty"`
	// DeadlineModel selects the admission analysis: "implicit" (default)
	// tests utilization bounds with D = P; "constrained" accepts per-task
	// deadlines D ≤ P and admits through the tiered demand-bound-function
	// pipeline (density pre-filter → approximate DBF band → exact test).
	// Constrained sessions require the EDF scheduler, are engine-only (no
	// force commits, no infeasible resident states, no repartition), and
	// their decisions stay identical to a fresh exact constrained
	// first-fit solve over the resident set.
	DeadlineModel string `json:"deadline_model,omitempty"`
	TimeoutMS     int64  `json:"timeout_ms,omitempty"`
}

// SessionResponse describes a session's current state.
type SessionResponse struct {
	ID            string        `json:"id"`
	Scheduler     string        `json:"scheduler"`
	Alpha         float64       `json:"alpha"`
	Placement     string        `json:"placement"`
	DeadlineModel string        `json:"deadline_model,omitempty"`
	Tasks         []TaskJSON    `json:"tasks"`
	Machines      []MachineJSON `json:"machines"`
	Test          TestResponse  `json:"test"`
	// Durability reports how the acknowledgement is backed: "wal" when
	// the op was appended to the write-ahead log before this response,
	// "none" when the server runs without a data directory.
	Durability string `json:"durability,omitempty"`
}

// AddTaskRequest admits one more task into a session.
type AddTaskRequest struct {
	Task TaskJSON `json:"task"`
	// Force commits the change even when the re-test rejects.
	Force     bool  `json:"force,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AdmitBatchRequest offers several tasks to a session at once. The
// engine places the whole batch with one merged suffix replay, so a
// batch of interior-landing tasks costs roughly one replay instead of
// one per task; verdicts are identical to admitting the tasks one at a
// time in input order.
type AdmitBatchRequest struct {
	Tasks []TaskJSON `json:"tasks"`
	// Mode is "best_effort" (default: admit the subset sequential
	// admission would admit) or "all_or_nothing" (the batch commits
	// atomically or not at all).
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// BatchAdmissionResponse is the outcome of one admit-batch call.
type BatchAdmissionResponse struct {
	Mode string `json:"mode"`
	// Admitted holds one verdict per input task, in input order.
	Admitted []bool `json:"admitted"`
	// NAdmitted counts true verdicts; NTasks is the session's task count
	// after the operation.
	NAdmitted int `json:"n_admitted"`
	NTasks    int `json:"n_tasks"`
	// Test is the session state after the batch on any admission, or the
	// rejection witness when nothing was admitted.
	Test TestResponse `json:"test"`
	// Durability reports how the acknowledgement is backed: "wal" when
	// the op was appended to the write-ahead log before this response,
	// "none" when the server runs without a data directory.
	Durability string `json:"durability,omitempty"`
}

// UpdateWCETRequest changes one task's WCET (incremental re-test via
// the session's online engine, or the batch Tester's UpdateWCET while
// the resident set is infeasible — never a solver rebuild).
type UpdateWCETRequest struct {
	Index     int   `json:"index"`
	WCET      int64 `json:"wcet"`
	Force     bool  `json:"force,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SessionTestRequest re-tests a session, optionally at a different
// augmentation (0 keeps the session alpha).
type SessionTestRequest struct {
	Alpha     float64 `json:"alpha,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// AdmissionResponse is the outcome of a mutating session operation.
type AdmissionResponse struct {
	// Admitted is true when the mutated set passes the session's test (or
	// Force was set).
	Admitted bool `json:"admitted"`
	// RolledBack is true when the mutation was undone because the re-test
	// rejected and Force was not set.
	RolledBack bool `json:"rolled_back"`
	// NTasks is the session's task count after the operation.
	NTasks int `json:"n_tasks"`
	// Test is the re-test outcome for the mutated (or rolled-back
	// tentative) set.
	Test TestResponse `json:"test"`
	// Durability reports how the acknowledgement is backed: "wal" when
	// the op was appended to the write-ahead log before this response,
	// "none" when the server runs without a data directory.
	Durability string `json:"durability,omitempty"`
}

// RepartitionRequest measures (and optionally repairs) the drift between
// a session's live placement and the paper's sorted first-fit over the
// same task multiset.
type RepartitionRequest struct {
	// Apply migrates tasks toward the sorted placement; false only
	// reports the plan.
	Apply bool `json:"apply,omitempty"`
	// MaxMoves bounds the number of migrations applied in this call
	// (each applied move is individually feasibility-preserving); 0 or
	// ≥ the plan size applies the full plan atomically.
	MaxMoves  int   `json:"max_moves,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MoveJSON is one task migration in a repartition plan.
type MoveJSON struct {
	Task int `json:"task"`
	From int `json:"from"`
	To   int `json:"to"`
}

// RepartitionResponse reports a session's drift from the sorted solve
// and what, if anything, was migrated.
type RepartitionResponse struct {
	Placement string `json:"placement"`
	// TargetFeasible is false when the sorted solve over the resident
	// multiset fails at the session alpha (possible for arrival-order
	// sessions; nothing is applied then).
	TargetFeasible bool `json:"target_feasible"`
	// MovesTotal is the full plan size; Moves lists it.
	MovesTotal int        `json:"moves_total"`
	Moves      []MoveJSON `json:"moves"`
	// DriftFraction is MovesTotal over the resident task count.
	DriftFraction float64 `json:"drift_fraction"`
	// MaxLoadDelta is the largest per-machine |current − target| load.
	MaxLoadDelta float64 `json:"max_load_delta"`
	// Applied counts migrations performed by this call; Partial is true
	// when drift remains (MaxMoves was binding or moves were skipped).
	Applied int  `json:"applied"`
	Partial bool `json:"partial"`
	// Test is the session's state after any migrations.
	Test TestResponse `json:"test"`
	// Durability reports how the acknowledgement is backed: "wal" when
	// the op was appended to the write-ahead log before this response,
	// "none" when the server runs without a data directory.
	Durability string `json:"durability,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
