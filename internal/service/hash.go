package service

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"partfeas"
)

// instanceKey encodes an instance canonically: two instances produce the
// same key iff every field the test's decisions can depend on is equal —
// scheduler, and each task's and machine's name and parameters in input
// order (names participate in the solver's deterministic tie-breaks, so
// they are part of the identity; input order matters because Assignment
// indices are input-order).
//
// The key is the full encoding, not a digest, so distinct instances can
// never collide into the same cache slot; the FNV hash in shardOf is only
// used to spread keys across pool shards.
func instanceKey(in partfeas.Instance) string {
	n := 2 + 11
	for _, t := range in.Tasks {
		n += len(t.Name) + 3*binary.MaxVarintLen64
	}
	for _, m := range in.Platform {
		n += len(m.Name) + 2*binary.MaxVarintLen64
	}
	b := make([]byte, 0, n)
	b = append(b, byte(in.Scheduler))
	b = binary.AppendUvarint(b, uint64(len(in.Tasks)))
	for _, t := range in.Tasks {
		b = binary.AppendUvarint(b, uint64(len(t.Name)))
		b = append(b, t.Name...)
		b = binary.AppendVarint(b, t.WCET)
		b = binary.AppendVarint(b, t.Period)
	}
	b = binary.AppendUvarint(b, uint64(len(in.Platform)))
	for _, m := range in.Platform {
		b = binary.AppendUvarint(b, uint64(len(m.Name)))
		b = append(b, m.Name...)
		b = binary.AppendUvarint(b, math.Float64bits(m.Speed))
	}
	return string(b)
}

// shardOf spreads keys across nShards pool shards by FNV-1a.
func shardOf(key string, nShards int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(nShards))
}
